// Callheavy reproduces the paper's §5 motivation on the call-heavy
// workloads: dead save/restore elimination under the LVM (saves only) and
// LVM-Stack (saves and restores) schemes, across cache port counts — the
// data-bandwidth sensitivity of Figure 11.
package main

import (
	"fmt"
	"log"

	"dvi"
)

func run(w dvi.Workload, scheme dvi.Scheme, level dvi.DVILevel, ports int) dvi.MachineStats {
	cfg := dvi.DefaultMachineConfig()
	cfg.MaxInsts = 400_000
	cfg.CachePorts = ports
	cfg.Emu.Scheme = scheme
	if level == dvi.DVINone {
		cfg.Emu.DVI = dvi.DVIConfig{Level: dvi.DVINone}
	}
	st, err := dvi.Simulate(w, 1, cfg)
	if err != nil {
		log.Fatal(err)
	}
	return st
}

func main() {
	fmt.Println("Dead save/restore elimination on call-heavy workloads")
	fmt.Println("(speedup of each scheme over the no-DVI baseline)")
	fmt.Println()
	fmt.Printf("%-9s %-6s %12s %12s %14s\n", "bench", "ports", "base IPC", "LVM (saves)", "LVM-Stack")
	for _, name := range []string{"li", "perl", "gcc", "vortex"} {
		w, ok := dvi.WorkloadByName(name)
		if !ok {
			log.Fatalf("missing workload %s", name)
		}
		for _, ports := range []int{1, 2} {
			base := run(w, dvi.ElimOff, dvi.DVINone, ports)
			lvm := run(w, dvi.ElimLVM, dvi.DVIFull, ports)
			stack := run(w, dvi.ElimLVMStack, dvi.DVIFull, ports)
			fmt.Printf("%-9s %-6d %12.3f %+11.1f%% %+13.1f%%\n",
				name, ports, base.IPC(),
				100*(lvm.IPC()/base.IPC()-1),
				100*(stack.IPC()/base.IPC()-1))
		}
	}
	fmt.Println()
	fmt.Println("The benefit grows as cache ports shrink: eliminated saves and")
	fmt.Println("restores stop competing for data bandwidth (paper §5.3).")
}
