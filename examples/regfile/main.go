// Regfile reproduces the paper's §4 study in miniature: IPC as a function
// of physical register file size with and without DVI, converted to
// overall performance with the CACTI access-time model (Figures 5 and 6).
package main

import (
	"fmt"
	"log"

	"dvi"
)

func main() {
	sizes := []int{34, 40, 48, 56, 64, 80, 96}
	suite := []string{"gcc", "li", "perl"}
	model := dvi.DefaultRegfileTiming()

	meanIPC := func(level dvi.DVILevel, regs int) float64 {
		var sum float64
		for _, name := range suite {
			w, _ := dvi.WorkloadByName(name)
			cfg := dvi.DefaultMachineConfig()
			cfg.MaxInsts = 150_000
			cfg.PhysRegs = regs
			cfg.Emu.Scheme = dvi.ElimOff // isolate the reclamation effect
			if level == dvi.DVINone {
				cfg.Emu.DVI = dvi.DVIConfig{Level: dvi.DVINone}
			}
			st, err := dvi.Simulate(w, 1, cfg)
			if err != nil {
				log.Fatal(err)
			}
			sum += st.IPC()
		}
		return sum / float64(len(suite))
	}

	fmt.Println("IPC and performance (IPC / register file access time) vs file size")
	fmt.Printf("%6s  %18s  %18s\n", "", "------ IPC ------", "-- performance --")
	fmt.Printf("%6s  %8s %9s  %8s %9s\n", "regs", "no DVI", "full DVI", "no DVI", "full DVI")

	type point struct{ perfNone, perfFull float64 }
	best := map[string]struct {
		regs int
		perf float64
	}{}
	for _, regs := range sizes {
		ipcNone := meanIPC(dvi.DVINone, regs)
		ipcFull := meanIPC(dvi.DVIFull, regs)
		pNone := model.RelativePerformance(ipcNone, regs, 4)
		pFull := model.RelativePerformance(ipcFull, regs, 4)
		fmt.Printf("%6d  %8.3f %9.3f  %8.3f %9.3f\n", regs, ipcNone, ipcFull, pNone, pFull)
		if b := best["none"]; pNone > b.perf {
			best["none"] = struct {
				regs int
				perf float64
			}{regs, pNone}
		}
		if b := best["full"]; pFull > b.perf {
			best["full"] = struct {
				regs int
				perf float64
			}{regs, pFull}
		}
		_ = point{}
	}
	fmt.Println()
	fmt.Printf("peak performance: no DVI at %d registers, full DVI at %d registers\n",
		best["none"].regs, best["full"].regs)
	fmt.Printf("DVI lets the design point shrink by %d registers (%+.1f%% performance)\n",
		best["none"].regs-best["full"].regs,
		100*(best["full"].perf/best["none"].perf-1))
}
