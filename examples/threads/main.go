// Threads reproduces the paper's §6 scenario: preemptive multithreading
// where the context switch code uses live-stores, live-loads, and
// lvm-save/lvm-load to skip dead registers. Registers whose restore was
// eliminated are poisoned, so correct results prove the liveness
// information sound.
package main

import (
	"fmt"
	"log"

	"dvi"
)

func buildThread(name string) (*dvi.Emulator, uint64) {
	w, ok := dvi.WorkloadByName(name)
	if !ok {
		log.Fatalf("missing workload %s", name)
	}
	pr, img, err := dvi.Build(w, 1, true)
	if err != nil {
		log.Fatal(err)
	}
	cfg := dvi.EmulatorConfig{DVI: dvi.DefaultDVIConfig(), Scheme: dvi.ElimLVMStack}
	// Reference run: standalone execution for the expected checksum.
	ref := dvi.NewEmulator(pr, img, cfg)
	if err := ref.Run(0); err != nil {
		log.Fatal(err)
	}
	return dvi.NewEmulator(pr, img, cfg), ref.Checksum
}

func main() {
	names := []string{"gcc", "li", "perl"}
	var threads []*dvi.Emulator
	var want []uint64
	for _, n := range names {
		e, sum := buildThread(n)
		threads = append(threads, e)
		want = append(want, sum)
	}

	const quantum = 1009 // instructions between preemptions

	// Baseline kernel: saves and restores every register at every switch.
	var baseThreads []*dvi.Emulator
	for _, n := range names {
		e, _ := buildThread(n)
		baseThreads = append(baseThreads, e)
	}
	baseSched := dvi.NewThreadScheduler(quantum, false, baseThreads...)
	if err := baseSched.Run(0); err != nil {
		log.Fatal(err)
	}

	// DVI kernel: live-store/live-load switch code plus lvm-save/lvm-load.
	sched := dvi.NewThreadScheduler(quantum, true, threads...)
	if err := sched.Run(0); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("ran %d threads preemptively, quantum %d instructions\n", len(names), quantum)
	for i, n := range names {
		status := "OK"
		if threads[i].Checksum != want[i] {
			status = "CORRUPTED"
		}
		fmt.Printf("  %-6s checksum %#016x  %s\n", n, threads[i].Checksum, status)
	}
	b, d := baseSched.Stats, sched.Stats
	fmt.Printf("\ncontext switches: %d\n", d.Switches)
	fmt.Printf("baseline kernel:  %d saves + %d restores\n", b.SavesExecuted, b.RestoresExecuted)
	fmt.Printf("DVI kernel:       %d saves + %d restores (%d + %d eliminated)\n",
		d.SavesExecuted, d.RestoresExecuted, d.SavesEliminated, d.RestoresEliminated)
	fmt.Printf("reduction:        %.1f%% of save/restore traffic (paper §6: 51%% average)\n",
		100*d.ReductionPct())
}
