// Quickstart: run one benchmark with and without Dead Value Information
// and print what the DVI hardware bought.
package main

import (
	"fmt"
	"log"

	"dvi"
)

func main() {
	w, ok := dvi.WorkloadByName("perl")
	if !ok {
		log.Fatal("perl workload missing")
	}

	// Baseline: no DVI hardware, plain binary.
	base := dvi.DefaultMachineConfig()
	base.Emu.DVI = dvi.DVIConfig{Level: dvi.DVINone}
	base.Emu.Scheme = dvi.ElimOff
	baseStats, err := dvi.Simulate(w, 1, base)
	if err != nil {
		log.Fatal(err)
	}

	// Full DVI: kill-annotated binary, LVM + LVM-Stack hardware.
	full := dvi.DefaultMachineConfig()
	fullStats, err := dvi.Simulate(w, 1, full)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("benchmark: perl (bytecode interpreter)")
	fmt.Printf("  no DVI:   %8d cycles, IPC %.3f\n", baseStats.Cycles, baseStats.IPC())
	fmt.Printf("  full DVI: %8d cycles, IPC %.3f (%+.1f%%)\n",
		fullStats.Cycles, fullStats.IPC(), 100*(fullStats.IPC()/baseStats.IPC()-1))
	fmt.Printf("  saves eliminated:    %d\n", fullStats.ElimSaves)
	fmt.Printf("  restores eliminated: %d\n", fullStats.ElimRests)
	fmt.Printf("  physical registers reclaimed early: %d\n", fullStats.EarlyReclaimed)
	fmt.Printf("  peak physical registers in use: %d (no DVI: %d)\n",
		fullStats.MaxPhysInUse, baseStats.MaxPhysInUse)
}
