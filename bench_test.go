// Benchmarks: one per table and figure of the paper's evaluation, plus the
// ablations from DESIGN.md §7. Each runs its experiment at a reduced scale
// per iteration and reports the headline quantity via b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// regenerates (small versions of) every result. cmd/dvibench produces the
// full-scale tables recorded in EXPERIMENTS.md.
package dvi_test

import (
	"io"
	"strconv"
	"strings"
	"testing"

	"dvi"
	"dvi/internal/core"
	"dvi/internal/emu"
	"dvi/internal/harness"
	"dvi/internal/ooo"
	"dvi/internal/sample"
	"dvi/internal/workload"
)

// benchOpts are per-iteration experiment sizes: large enough for stable
// shapes, small enough for tolerable -bench runtimes.
func benchOpts() harness.Options {
	return harness.Options{Scale: 1, MaxInsts: 60_000, SweepMaxInsts: 25_000}
}

func firstPct(b *testing.B, s string) float64 {
	b.Helper()
	s = strings.TrimSuffix(s, "%")
	s = strings.TrimPrefix(s, "+")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		b.Fatalf("bad percent %q", s)
	}
	return v
}

// BenchmarkFig02MachineConfig renders the machine configuration table.
func BenchmarkFig02MachineConfig(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(harness.Fig2MachineConfig().Rows) == 0 {
			b.Fatal("empty config")
		}
	}
}

// BenchmarkFig03Characterization regenerates the benchmark
// characterization table (functional runs of all seven programs).
func BenchmarkFig03Characterization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := harness.Fig3Characterization(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if len(t.Rows) != 7 {
			b.Fatal("wrong row count")
		}
	}
}

// BenchmarkFig05RegfileIPC sweeps register file sizes across the three DVI
// levels (reduced grid) and reports the IPC recovered by DVI at the
// smallest file.
func BenchmarkFig05RegfileIPC(b *testing.B) {
	saved := harness.Fig5Sizes
	harness.Fig5Sizes = []int{34, 50, 64, 96}
	defer func() { harness.Fig5Sizes = saved }()
	var gain float64
	for i := 0; i < b.N; i++ {
		_, points, err := harness.Fig5RegfileIPC(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		var none34, full34 float64
		for _, p := range points {
			if p.Regs == 34 && p.Level == core.None {
				none34 = p.IPC
			}
			if p.Regs == 34 && p.Level == core.Full {
				full34 = p.IPC
			}
		}
		gain = full34/none34 - 1
	}
	b.ReportMetric(100*gain, "%IPC-gain@34regs")
}

// BenchmarkFig06RegfilePerformance runs the reduced sweep and reports the
// peak register file size with DVI (the paper's 64 -> 50 headline).
func BenchmarkFig06RegfilePerformance(b *testing.B) {
	saved := harness.Fig5Sizes
	harness.Fig5Sizes = []int{34, 42, 50, 58, 64, 72, 96}
	defer func() { harness.Fig5Sizes = saved }()
	var peakNote string
	for i := 0; i < b.N; i++ {
		_, points, err := harness.Fig5RegfileIPC(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		t, err := harness.Fig6Performance(benchOpts(), points)
		if err != nil {
			b.Fatal(err)
		}
		peakNote = t.Notes[0]
	}
	b.Logf("fig6: %s", peakNote)
}

// BenchmarkFig09Eliminated regenerates the save/restore elimination table
// and reports the suite-average LVM-Stack elimination percentage (the
// paper's 46.5%).
func BenchmarkFig09Eliminated(b *testing.B) {
	var avg float64
	for i := 0; i < b.N; i++ {
		t, err := harness.Fig9Eliminated(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		avg = firstPct(b, t.Rows[len(t.Rows)-1][2])
	}
	b.ReportMetric(avg, "%s/r-eliminated")
}

// BenchmarkFig10IPCSpeedup regenerates the elimination speedup table and
// reports the best per-benchmark LVM-Stack gain (the paper's "up to 5%").
func BenchmarkFig10IPCSpeedup(b *testing.B) {
	var best float64
	for i := 0; i < b.N; i++ {
		t, err := harness.Fig10Speedups(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		best = 0
		for _, row := range t.Rows {
			if v := firstPct(b, row[3]); v > best {
				best = v
			}
		}
	}
	b.ReportMetric(best, "%best-speedup")
}

// BenchmarkFig11PortSensitivity regenerates the cache bandwidth
// sensitivity table.
func BenchmarkFig11PortSensitivity(b *testing.B) {
	var onePort float64
	for i := 0; i < b.N; i++ {
		t, err := harness.Fig11PortSensitivity(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		onePort = firstPct(b, t.Rows[0][2]) // gcc, 4-way, 1 port
	}
	b.ReportMetric(onePort, "%gcc-4w-1port")
}

// BenchmarkFig12ContextSwitch regenerates the context switch table and
// reports the full-DVI average reduction (the paper's 51%).
func BenchmarkFig12ContextSwitch(b *testing.B) {
	var avg float64
	for i := 0; i < b.N; i++ {
		t, err := harness.Fig12ContextSwitch(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		avg = firstPct(b, t.Rows[len(t.Rows)-1][2])
	}
	b.ReportMetric(avg, "%switch-reduction")
}

// BenchmarkFig13EDVIOverhead regenerates the annotation overhead table and
// reports the worst dynamic instruction overhead.
func BenchmarkFig13EDVIOverhead(b *testing.B) {
	var worst float64
	for i := 0; i < b.N; i++ {
		t, err := harness.Fig13EDVIOverhead(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		worst = 0
		for _, row := range t.Rows {
			if v := firstPct(b, row[1]); v > worst {
				worst = v
			}
		}
	}
	b.ReportMetric(worst, "%worst-dyn-overhead")
}

// BenchmarkAblationStackDepth sweeps the LVM-Stack depth.
func BenchmarkAblationStackDepth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := harness.AblationStackDepth(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationKillPlacement compares E-DVI encoding densities.
func BenchmarkAblationKillPlacement(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := harness.AblationKillPlacement(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationWrongPath measures wrong-path fetch modelling cost.
func BenchmarkAblationWrongPath(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := harness.AblationWrongPath(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStep measures the functional emulator's per-instruction cost.
// The program is re-run on the same warm emulator (ResetFor zeroes the
// memory in place), so the steady-state loop allocates nothing; the
// allocs/op column is part of the result and must stay 0 (the regression
// tests in internal/emu and internal/ooo enforce it).
func BenchmarkStep(b *testing.B) {
	w, _ := workload.ByName("compress")
	pr, img, err := workload.CompileSpec(w, 1, workload.BuildOptions{EDVI: true})
	if err != nil {
		b.Fatal(err)
	}
	cfg := emu.Config{DVI: core.DefaultConfig(), Scheme: emu.ElimLVMStack}
	e := emu.New(pr, img, cfg)
	if err := e.Run(0); err != nil {
		b.Fatal(err) // warm memory pages and buffer capacities
	}
	e.ResetFor(pr, img, cfg)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if e.Halted {
			e.ResetFor(pr, img, cfg)
		}
		e.Step()
	}
}

// benchMachineCycle measures the out-of-order pipeline's per-cycle cost
// on a warm, reused machine (one op = one bounded simulation) under the
// given scheduler. Steady state allocates nothing either way.
func benchMachineCycle(b *testing.B, sched ooo.Scheduler) {
	w, _ := workload.ByName("gcc")
	pr, img, err := workload.CompileSpec(w, 1, workload.BuildOptions{EDVI: true})
	if err != nil {
		b.Fatal(err)
	}
	cfg := ooo.DefaultConfig()
	cfg.Scheduler = sched
	cfg.MaxInsts = 100_000
	m := ooo.New(pr, img, cfg)
	if _, err := m.Run(); err != nil {
		b.Fatal(err) // warm pages, ring buffers and victim lists
	}
	b.ReportAllocs()
	b.ResetTimer()
	var cycles uint64
	for i := 0; i < b.N; i++ {
		m.Reset(pr, img, cfg)
		st, err := m.Run()
		if err != nil {
			b.Fatal(err)
		}
		cycles += st.Cycles
	}
	b.ReportMetric(float64(cycles)/b.Elapsed().Seconds()/1e6, "Mcycle/s")
}

// BenchmarkMachineCycle is the pipeline under the default event-driven
// scheduler.
func BenchmarkMachineCycle(b *testing.B) {
	benchMachineCycle(b, ooo.SchedEventDriven)
}

// BenchmarkMachineCyclePolled is the same pipeline under the polled
// reference scheduler: the ratio between the two is the event-driven
// scheduler's win (the rest of the pipeline is shared).
func BenchmarkMachineCyclePolled(b *testing.B) {
	benchMachineCycle(b, ooo.SchedPolled)
}

// BenchmarkSimulateInterp runs the full timing simulation of the li
// interpreter workload end to end on a reused machine — the shape of the
// dvid daemon's /v1/simulate hot path once the build cache has the
// binary. Steady state allocates nothing.
func BenchmarkSimulateInterp(b *testing.B) {
	w, _ := workload.ByName("li")
	pr, img, err := workload.CompileSpec(w, 1, workload.BuildOptions{EDVI: true})
	if err != nil {
		b.Fatal(err)
	}
	cfg := ooo.DefaultConfig()
	cfg.MaxInsts = 200_000
	m := ooo.New(pr, img, cfg)
	if _, err := m.Run(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var committed uint64
	for i := 0; i < b.N; i++ {
		m.Reset(pr, img, cfg)
		st, err := m.Run()
		if err != nil {
			b.Fatal(err)
		}
		committed += st.Committed
	}
	b.ReportMetric(float64(committed)/b.Elapsed().Seconds()/1e6, "Minst/s")
}

// BenchmarkSimulatorThroughput measures raw simulator speed in simulated
// instructions per second (the reproduction's own engineering metric).
func BenchmarkSimulatorThroughput(b *testing.B) {
	w, _ := workload.ByName("gcc")
	pr, img, err := workload.CompileSpec(w, 50, workload.BuildOptions{EDVI: true})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var total uint64
	for i := 0; i < b.N; i++ {
		cfg := ooo.DefaultConfig()
		cfg.MaxInsts = 500_000
		m := ooo.New(pr, img, cfg)
		st, err := m.Run()
		if err != nil {
			b.Fatal(err)
		}
		total += st.Committed
	}
	b.ReportMetric(float64(total)/b.Elapsed().Seconds()/1e6, "Minst/s")
}

// BenchmarkEmulatorThroughput measures the functional emulator.
func BenchmarkEmulatorThroughput(b *testing.B) {
	w, _ := workload.ByName("compress")
	pr, img, err := workload.CompileSpec(w, 50, workload.BuildOptions{EDVI: true})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var total uint64
	for i := 0; i < b.N; i++ {
		e := emu.New(pr, img, emu.Config{DVI: core.DefaultConfig(), Scheme: emu.ElimLVMStack})
		if err := e.Run(1_000_000); err != nil && err != emu.ErrBudget {
			b.Fatal(err)
		}
		total += e.Stats.Total
	}
	b.ReportMetric(float64(total)/b.Elapsed().Seconds()/1e6, "Minst/s")
}

// BenchmarkFullReport regenerates the complete report (what cmd/dvibench
// does), discarding the output.
func BenchmarkFullReport(b *testing.B) {
	saved := harness.Fig5Sizes
	harness.Fig5Sizes = []int{34, 64, 96}
	defer func() { harness.Fig5Sizes = saved }()
	opt := harness.Options{Scale: 1, MaxInsts: 25_000, SweepMaxInsts: 12_000}
	for i := 0; i < b.N; i++ {
		if err := dvi.RunAllExperiments(opt, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSampledReport regenerates the same reduced report in sampled
// mode: timing figures are estimated from checkpointed intervals instead
// of exact detailed simulation. Compare against BenchmarkFullReport for
// the sampling speedup at this scale.
func BenchmarkSampledReport(b *testing.B) {
	saved := harness.Fig5Sizes
	harness.Fig5Sizes = []int{34, 64, 96}
	defer func() { harness.Fig5Sizes = saved }()
	opt := harness.Options{Scale: 1, MaxInsts: 25_000, SweepMaxInsts: 12_000}
	opt.Sampling = &sample.Options{Interval: 4000, Warmup: 1000, Period: 4}
	for i := 0; i < b.N; i++ {
		if err := dvi.RunAllExperiments(opt, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}
