// dviasm compiles a workload and inspects the result: disassembly
// listings, static code statistics, and the DVI annotations the rewriter
// inserted.
//
// Usage:
//
//	dviasm -bench li                 # static summary
//	dviasm -bench li -proc li_eval   # one procedure's listing
//	dviasm -bench li -dump           # full listing
//	dviasm -bench li -asm            # symbolic assembly (prog.FormatAsm),
//	                                 # the dvid service's wire format
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"dvi/internal/isa"
	"dvi/internal/prog"
	"dvi/internal/rewrite"
	"dvi/internal/session"
	"dvi/internal/workload"
)

func main() {
	var (
		bench   = flag.String("bench", "gcc", "benchmark name")
		scale   = flag.Int("scale", 1, "workload scale")
		noEDVI  = flag.Bool("noedvi", false, "build without kill annotations")
		infer   = flag.Bool("infer", false, "derive kill annotations with the interprocedural inference pass instead of the compiler-assisted rewriter")
		atDeath = flag.Bool("atdeath", false, "use the kills-at-death encoding")
		proc    = flag.String("proc", "", "disassemble a single procedure")
		dump    = flag.Bool("dump", false, "dump the full listing")
		asm     = flag.Bool("asm", false, "dump symbolic assembly (parseable; the dvid wire format)")
	)
	flag.Parse()

	spec, ok := workload.ByName(*bench)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown benchmark %q; have %v\n", *bench, workload.Names())
		os.Exit(2)
	}
	bopts := []session.RunOption{
		session.WithScale(*scale),
		session.WithEDVI(!*noEDVI),
	}
	if *infer {
		bopts = append(bopts, session.WithInferredDVI())
	}
	if *atDeath {
		bopts = append(bopts, session.WithPolicy(rewrite.KillsAtDeath))
	}
	pr, img, err := session.New(session.WithWorkers(1)).Build(context.Background(), spec, bopts...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	switch {
	case *asm:
		fmt.Print(prog.FormatAsm(pr))
	case *proc != "":
		if _, ok := img.ProcAddrs[*proc]; !ok {
			fmt.Fprintf(os.Stderr, "no procedure %q; procedures:\n", *proc)
			for _, p := range pr.Procs {
				fmt.Fprintf(os.Stderr, "  %s\n", p.Name)
			}
			os.Exit(2)
		}
		fmt.Print(img.DisasmProc(*proc))
	case *dump:
		fmt.Print(img.Disasm())
	default:
		var kills, lvst, lvld int
		for _, in := range img.Insts {
			switch in.Op {
			case isa.KILL:
				kills++
			case isa.LVST:
				lvst++
			case isa.LVLD:
				lvld++
			}
		}
		flavor := "edvi"
		switch {
		case *infer:
			flavor = "infer"
		case *noEDVI:
			flavor = "plain"
		}
		fmt.Printf("benchmark   %s (scale %d, %s)\n", spec.Name, *scale, flavor)
		fmt.Printf("procedures  %d\n", len(pr.Procs))
		fmt.Printf("text        %d instructions (%d bytes)\n", img.TextWords(), img.TextWords()*4)
		fmt.Printf("kills       %d static\n", kills)
		fmt.Printf("live-stores %d static, live-loads %d static\n", lvst, lvld)
		fmt.Printf("entry       %#x, data %#x..%#x\n", img.EntryPC, img.DataBase, img.DataEnd)
		fmt.Println("\nprocedures (use -proc NAME for a listing):")
		for _, p := range pr.Procs {
			fmt.Printf("  %-16s %4d insts at %#x\n", p.Name, len(p.Insts), img.ProcAddrs[p.Name])
		}
	}
}
