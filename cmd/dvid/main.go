// dvid is the DVI daemon: it serves the reproduction's capabilities —
// kill insertion, timing simulation, context-switch liveness sampling —
// over HTTP/JSON to many concurrent clients, sharing one execution
// engine and single-flight build cache across all of them.
//
// Usage:
//
//	dvid                                  # serve on :8077
//	dvid -addr 127.0.0.1:9000 -j 8        # eight engine workers
//	dvid -concurrent 16 -queue 512        # admission tuning
//	dvid -cache 128 -max-insts 5000000    # cache + budget ceilings
//
// Endpoints: POST /v2/jobs (heterogeneous job batches, NDJSON results
// streamed in submission order), /v1/annotate, /v1/simulate,
// /v1/ctxswitch; GET /v1/workloads, /healthz, /metrics,
// /debug/trace/recent (recent request span trees) and /debug/pprof/*
// (runtime profiling). See internal/service (and API.md) for the wire
// format; the /v1 endpoints are shims over the same execution path as
// /v2/jobs. SIGINT/SIGTERM trigger a graceful drain: the listener
// closes, in-flight requests finish (up to -drain), then the process
// exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"dvi/internal/service"
)

func main() {
	var (
		addr       = flag.String("addr", ":8077", "listen address")
		workers    = flag.Int("j", runtime.GOMAXPROCS(0), "engine worker pool size")
		concurrent = flag.Int("concurrent", 0, "max concurrently executing requests (0 = -j)")
		queue      = flag.Int("queue", service.DefaultMaxQueue, "admission queue depth before 429s")
		cache      = flag.Int("cache", service.DefaultCacheCapacity, "build cache capacity in binaries (LRU; 0 = default, -1 = unbounded)")
		maxInsts   = flag.Uint64("max-insts", service.DefaultMaxInsts, "ceiling on per-request instruction budgets")
		maxScale   = flag.Int("max-scale", service.DefaultMaxScale, "ceiling on per-request workload scale")
		maxJobs    = flag.Int("max-jobs", service.DefaultMaxJobs, "ceiling on jobs per /v2/jobs batch")
		traceRing  = flag.Int("trace-ring", service.DefaultTraceRing, "request span trees retained for /debug/trace/recent (-1 disables)")
		maxTrace   = flag.Int("max-trace-records", service.DefaultMaxTraceRecords, "ceiling on per-request pipeline trace records")
		maxCtx     = flag.Int("max-contexts", service.DefaultMaxContexts, "ceiling on per-request SMT hardware contexts")
		drain      = flag.Duration("drain", 30*time.Second, "graceful shutdown drain timeout")
		verbose    = flag.Bool("v", false, "log individual requests")
	)
	flag.Parse()

	// The service logs each request at Debug; -v surfaces them. Server
	// errors log at Warn and are visible either way.
	level := slog.LevelInfo
	if *verbose {
		level = slog.LevelDebug
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))

	cacheCap := *cache
	if cacheCap < 0 {
		cacheCap = -1 // service.Config: negative = unbounded
	}
	svc := service.New(service.Config{
		Workers:         *workers,
		MaxConcurrent:   *concurrent,
		MaxQueue:        *queue,
		CacheCapacity:   cacheCap,
		MaxInsts:        *maxInsts,
		MaxScale:        *maxScale,
		MaxJobs:         *maxJobs,
		TraceRing:       *traceRing,
		MaxTraceRecords: *maxTrace,
		MaxContexts:     *maxCtx,
		Logger:          logger,
	})

	// ReadTimeout bounds the whole request read: the service buffers each
	// body before taking an execution slot, so a slow upload times out
	// here instead of starving admission. WriteTimeout stays unset —
	// legitimately queued requests can wait longer than any fixed write
	// deadline; abandoned clients free their queue slot via the request
	// context instead.
	hs := &http.Server{
		Addr:              *addr,
		Handler:           svc,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       time.Minute,
		IdleTimeout:       2 * time.Minute,
	}

	errCh := make(chan error, 1)
	go func() {
		logger.Info("serving", "addr", *addr, "workers", svc.Engine().Workers(),
			"queue", *queue, "cache_binaries", *cache)
		errCh <- hs.ListenAndServe()
	}()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)

	select {
	case err := <-errCh:
		// Listener failed before any signal (port in use, ...).
		logger.Error("listen", "err", err)
		os.Exit(1)
	case sig := <-sigCh:
		logger.Info("draining", "signal", sig.String(), "timeout", drain.String())
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		logger.Error("drain incomplete", "err", err)
		os.Exit(1)
	}
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Error("serve", "err", err)
		os.Exit(1)
	}
	hits, misses := svc.Engine().Cache().Stats()
	logger.Info("drained cleanly", "compiles", misses, "cache_hits", hits,
		"evictions", svc.Engine().Cache().Evictions())
}
