// dvid is the DVI daemon: it serves the reproduction's capabilities —
// kill insertion, timing simulation, context-switch liveness sampling —
// over HTTP/JSON to many concurrent clients, sharing one execution
// engine and single-flight build cache across all of them.
//
// Usage:
//
//	dvid                                  # serve on :8077
//	dvid -addr 127.0.0.1:9000 -j 8        # eight engine workers
//	dvid -concurrent 16 -queue 512        # admission tuning
//	dvid -cache 128 -max-insts 5000000    # cache + budget ceilings
//	dvid -store /var/lib/dvid             # crash-safe artifact store
//	dvid -gateway -backends http://a:8077,http://b:8077
//
// Endpoints: POST /v2/jobs (heterogeneous job batches, NDJSON results
// streamed in submission order), /v1/annotate, /v1/simulate,
// /v1/ctxswitch; GET /v1/workloads, /healthz, /metrics,
// /debug/trace/recent (recent request span trees) and /debug/pprof/*
// (runtime profiling). See internal/service (and API.md) for the wire
// format; the /v1 endpoints are shims over the same execution path as
// /v2/jobs. SIGINT/SIGTERM trigger a graceful drain: /healthz flips to
// "draining" (ejecting the daemon from any gateway's rotation), the
// listener closes, in-flight requests finish (up to -drain), then the
// process exits 0.
//
// With -store DIR, compiled binaries and sampled-simulation results
// persist to a content-addressed on-disk store: a daemon restarted on
// the same directory — cleanly or after kill -9 — serves warm batches
// without recompiling or re-scanning anything.
//
// With -gateway, dvid routes across the -backends fleet instead of
// serving locally: consistent-hash routing by build key, active health
// checks, retries with capped backoff, tail-latency hedging, and
// per-backend circuit breakers, degrading to in-process execution when
// every backend is down.
package main

import (
	"context"
	"errors"
	"flag"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"dvi/internal/gateway"
	"dvi/internal/service"
	"dvi/internal/store"
)

func main() {
	var (
		addr        = flag.String("addr", ":8077", "listen address")
		workers     = flag.Int("j", runtime.GOMAXPROCS(0), "engine worker pool size")
		concurrent  = flag.Int("concurrent", 0, "max concurrently executing requests (0 = -j)")
		queue       = flag.Int("queue", service.DefaultMaxQueue, "admission queue depth before 429s")
		cache       = flag.Int("cache", service.DefaultCacheCapacity, "build cache capacity in binaries (LRU; 0 = default, -1 = unbounded)")
		maxInsts    = flag.Uint64("max-insts", service.DefaultMaxInsts, "ceiling on per-request instruction budgets")
		maxScale    = flag.Int("max-scale", service.DefaultMaxScale, "ceiling on per-request workload scale")
		maxJobs     = flag.Int("max-jobs", service.DefaultMaxJobs, "ceiling on jobs per /v2/jobs batch")
		traceRing   = flag.Int("trace-ring", service.DefaultTraceRing, "request span trees retained for /debug/trace/recent (-1 disables)")
		maxTrace    = flag.Int("max-trace-records", service.DefaultMaxTraceRecords, "ceiling on per-request pipeline trace records")
		maxCtx      = flag.Int("max-contexts", service.DefaultMaxContexts, "ceiling on per-request SMT hardware contexts")
		drain       = flag.Duration("drain", 30*time.Second, "graceful shutdown drain timeout")
		storeDir    = flag.String("store", "", "directory for the crash-safe artifact store (empty = in-memory only)")
		storeBudget = flag.Int64("store-budget", 0, "artifact store disk budget in bytes (0 = unbounded)")
		gw          = flag.Bool("gateway", false, "run as a fleet gateway over -backends instead of a single daemon")
		backends    = flag.String("backends", "", "comma-separated backend base URLs for -gateway mode")
		hedgeAfter  = flag.Duration("hedge-after", gateway.DefaultHedgeAfter, "gateway: hedge to a second replica after this budget (negative disables)")
		retries     = flag.Int("retries", gateway.DefaultRetries, "gateway: extra dispatch attempts per job (negative disables)")
		reqTimeout  = flag.Duration("request-timeout", gateway.DefaultRequestTimeout, "gateway: per-attempt backend deadline")
		healthEvery = flag.Duration("health-interval", gateway.DefaultHealthInterval, "gateway: active health-check period")
		verbose     = flag.Bool("v", false, "log individual requests")
	)
	flag.Parse()

	// The service logs each request at Debug; -v surfaces them. Server
	// errors log at Warn and are visible either way.
	level := slog.LevelInfo
	if *verbose {
		level = slog.LevelDebug
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))

	var st *store.Store
	if *storeDir != "" {
		var err error
		st, err = store.Open(store.Options{Dir: *storeDir, Budget: *storeBudget})
		if err != nil {
			logger.Error("open artifact store", "dir", *storeDir, "err", err)
			os.Exit(1)
		}
		logger.Info("artifact store open", "dir", *storeDir, "entries", st.Len())
	}

	cacheCap := *cache
	if cacheCap < 0 {
		cacheCap = -1 // service.Config: negative = unbounded
	}
	svc := service.New(service.Config{
		Workers:         *workers,
		MaxConcurrent:   *concurrent,
		MaxQueue:        *queue,
		CacheCapacity:   cacheCap,
		MaxInsts:        *maxInsts,
		MaxScale:        *maxScale,
		MaxJobs:         *maxJobs,
		TraceRing:       *traceRing,
		MaxTraceRecords: *maxTrace,
		MaxContexts:     *maxCtx,
		Store:           st,
		Logger:          logger,
	})

	var handler http.Handler = svc
	var gwy *gateway.Gateway
	if *gw {
		list := strings.Split(*backends, ",")
		urls := list[:0]
		for _, u := range list {
			if u = strings.TrimRight(strings.TrimSpace(u), "/"); u != "" {
				urls = append(urls, u)
			}
		}
		var err error
		gwy, err = gateway.New(gateway.Config{
			Backends:       urls,
			Local:          svc,
			HedgeAfter:     *hedgeAfter,
			Retries:        *retries,
			RequestTimeout: *reqTimeout,
			HealthInterval: *healthEvery,
			MaxJobs:        *maxJobs,
			TraceRing:      *traceRing,
			Logger:         logger,
		})
		if err != nil {
			logger.Error("gateway", "err", err)
			os.Exit(1)
		}
		gwy.Start(context.Background())
		defer gwy.Close()
		handler = gwy
	}

	// ReadTimeout bounds the whole request read: the service buffers each
	// body before taking an execution slot, so a slow upload times out
	// here instead of starving admission. WriteTimeout stays unset —
	// legitimately queued requests can wait longer than any fixed write
	// deadline; abandoned clients free their queue slot via the request
	// context instead.
	hs := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       time.Minute,
		IdleTimeout:       2 * time.Minute,
	}

	errCh := make(chan error, 1)
	go func() {
		logger.Info("serving", "addr", *addr, "workers", svc.Engine().Workers(),
			"queue", *queue, "cache_binaries", *cache, "gateway", *gw)
		errCh <- hs.ListenAndServe()
	}()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)

	select {
	case err := <-errCh:
		// Listener failed before any signal (port in use, ...).
		logger.Error("listen", "err", err)
		os.Exit(1)
	case sig := <-sigCh:
		logger.Info("draining", "signal", sig.String(), "timeout", drain.String())
	}

	// Flip /healthz to "draining" first: a gateway's health checker
	// ejects this daemon from rotation before the listener closes, so
	// in-flight fleet traffic fails over instead of 503ing.
	svc.BeginDrain()
	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		logger.Error("drain incomplete", "err", err)
		os.Exit(1)
	}
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Error("serve", "err", err)
		os.Exit(1)
	}
	hits, misses := svc.Engine().Cache().Stats()
	logger.Info("drained cleanly", "compiles", svc.Engine().Cache().Compiles(),
		"fills", misses, "cache_hits", hits,
		"evictions", svc.Engine().Cache().Evictions())
}
