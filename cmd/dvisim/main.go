// dvisim runs one benchmark on the out-of-order simulator and prints
// timing and DVI statistics.
//
// Usage:
//
//	dvisim -bench perl -scale 2 -dvi full -scheme stack -regs 96 -ports 2
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"

	"dvi/internal/core"
	"dvi/internal/emu"
	"dvi/internal/obs"
	"dvi/internal/ooo"
	"dvi/internal/runner"
	"dvi/internal/session"
	"dvi/internal/workload"
)

func main() {
	var (
		bench  = flag.String("bench", "gcc", "benchmark: compress|go|ijpeg|li|vortex|perl|gcc")
		scale  = flag.Int("scale", 1, "workload scale factor")
		level  = flag.String("dvi", "full", "DVI level: none|idvi|full")
		scheme = flag.String("scheme", "stack", "elimination scheme: off|lvm|stack")
		regs   = flag.Int("regs", 96, "physical register file size")
		ports  = flag.Int("ports", 2, "cache ports")
		width  = flag.Int("width", 4, "issue width")
		max    = flag.Uint64("maxinsts", 0, "instruction budget (0 = to completion)")
		wrong  = flag.Bool("wrongpath", true, "model wrong-path fetch")

		pipetrace = flag.String("pipetrace", "", "write a per-instruction pipeline trace to FILE")
		traceFmt  = flag.String("pipetrace-format", "chrome", "pipeline trace format: chrome|konata")
		traceMax  = flag.Int("pipetrace-limit", 0, "max trace records (0 = unbounded)")
	)
	flag.Parse()

	if *traceFmt != "chrome" && *traceFmt != "konata" {
		fmt.Fprintf(os.Stderr, "bad -pipetrace-format %q (want chrome or konata)\n", *traceFmt)
		os.Exit(2)
	}

	spec, ok := workload.ByName(*bench)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown benchmark %q; have %v\n", *bench, workload.Names())
		os.Exit(2)
	}

	var dviLevel core.Level
	switch *level {
	case "none":
		dviLevel = core.None
	case "idvi":
		dviLevel = core.IDVI
	case "full":
		dviLevel = core.Full
	default:
		fmt.Fprintf(os.Stderr, "bad -dvi %q\n", *level)
		os.Exit(2)
	}
	var elim emu.Scheme
	switch *scheme {
	case "off":
		elim = emu.ElimOff
	case "lvm":
		elim = emu.ElimLVM
	case "stack":
		elim = emu.ElimLVMStack
	default:
		fmt.Fprintf(os.Stderr, "bad -scheme %q\n", *scheme)
		os.Exit(2)
	}

	cfg := ooo.DefaultConfig()
	cfg.PhysRegs = *regs
	cfg.CachePorts = *ports
	cfg.IssueWidth = *width
	cfg.MaxInsts = *max
	cfg.WrongPathFetch = *wrong
	cfg.Emu = session.EmuConfigFor(dviLevel, elim)

	var traceBuf *obs.PipeBuffer
	if *pipetrace != "" {
		traceBuf = obs.NewPipeBuffer(*traceMax)
		cfg.Trace = traceBuf
	}

	// One session, one job: the binary flavour follows the session
	// layer's central E-DVI rule (annotated binaries iff the level is
	// full), and KeepMachine retains the simulator instance for the
	// cache/predictor detail below.
	sess := session.New(session.WithWorkers(1))
	results, err := sess.Collect(context.Background(), []session.Job{{
		Workload:    spec,
		Scale:       *scale,
		Build:       session.BuildOptionsFor(dviLevel),
		Kind:        runner.Timing,
		Machine:     cfg,
		KeepMachine: true,
	}})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	st, m := results[0].Timing, results[0].Machine

	fmt.Printf("benchmark        %s (scale %d, %s, scheme %s)\n", spec.Name, *scale, cfg.Emu.DVI.Level, cfg.Emu.Scheme)
	fmt.Printf("cycles           %d\n", st.Cycles)
	fmt.Printf("insts committed  %d (IPC %.3f)\n", st.Committed, st.IPC())
	fmt.Printf("kills committed  %d\n", st.KillsSeen)
	fmt.Printf("saves/restores   eliminated %d/%d\n", st.ElimSaves, st.ElimRests)
	fmt.Printf("early reclaims   %d physical registers\n", st.EarlyReclaimed)
	fmt.Printf("mispredicts      %d (wrong-path insts %d)\n", st.Mispredicts, st.WrongPath)
	fmt.Printf("stall cycles     rename %d, window %d, ports %d\n",
		st.RenameStallCycles, st.WindowFullCycles, st.PortStallCycles)
	fmt.Printf("phys regs in use max %d of %d\n", st.MaxPhysInUse, cfg.PhysRegs)
	h := m.Hierarchy()
	fmt.Printf("caches           il1 %.2f%% miss, dl1 %.2f%% miss, l2 %.2f%% miss\n",
		100*h.L1I.Stats.MissRate(), 100*h.L1D.Stats.MissRate(), 100*h.L2.Stats.MissRate())
	fmt.Printf("branch predictor %.2f%% mispredict\n", 100*m.Predictor().MispredictRate())
	fmt.Printf("checksum         %#x\n", m.Emu().Checksum)

	if traceBuf != nil {
		if err := writeTrace(*pipetrace, *traceFmt, traceBuf); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("pipetrace        %s (%s, %d records", *pipetrace, *traceFmt, traceBuf.Len())
		if d := traceBuf.Dropped(); d > 0 {
			fmt.Printf(", %d dropped past -pipetrace-limit", d)
		}
		fmt.Printf(")\n")
	}
}

// writeTrace renders the captured pipeline records to path: Chrome
// trace_event JSON (load in chrome://tracing or Perfetto) or a Kanata
// pipeline-viewer log.
func writeTrace(path, format string, buf *obs.PipeBuffer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	if format == "konata" {
		err = obs.WriteKonata(w, buf.Records())
	} else {
		err = obs.WriteChromeTrace(w, buf.Records())
	}
	if err == nil {
		err = w.Flush()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}
