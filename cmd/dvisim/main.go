// dvisim runs one benchmark on the out-of-order simulator and prints
// timing and DVI statistics.
//
// Usage:
//
//	dvisim -bench perl -scale 2 -dvi full -scheme stack -regs 96 -ports 2
//
// With -contexts N > 1 the machine runs N SMT hardware contexts, each
// executing its own copy of the benchmark through one shared core, and
// the report gains a per-context breakdown.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"os"

	"dvi/internal/core"
	"dvi/internal/emu"
	"dvi/internal/obs"
	"dvi/internal/ooo"
	"dvi/internal/runner"
	"dvi/internal/session"
	"dvi/internal/workload"
)

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

// run is the whole program behind exit-code plumbing, so tests can drive
// the real flag parsing, validation and report paths in-process. It
// returns the process exit code: 0 on success, 2 for flag/usage errors,
// 1 for runtime failures.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("dvisim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		bench  = fs.String("bench", "gcc", "benchmark: compress|go|ijpeg|li|vortex|perl|gcc")
		scale  = fs.Int("scale", 1, "workload scale factor")
		level  = fs.String("dvi", "full", "DVI level: none|idvi|full")
		scheme = fs.String("scheme", "stack", "elimination scheme: off|lvm|stack")
		regs   = fs.Int("regs", 96, "physical register file size")
		ports  = fs.Int("ports", 2, "cache ports")
		width  = fs.Int("width", 4, "issue width")
		max    = fs.Uint64("maxinsts", 0, "instruction budget (0 = to completion)")
		wrong  = fs.Bool("wrongpath", true, "model wrong-path fetch")

		contexts = fs.Int("contexts", 1, "SMT hardware contexts sharing the core")
		fetchPol = fs.String("fetch-policy", "round-robin", "multi-context fetch arbitration: round-robin|icount")

		pipetrace = fs.String("pipetrace", "", "write a per-instruction pipeline trace to FILE")
		traceFmt  = fs.String("pipetrace-format", "chrome", "pipeline trace format: chrome|konata")
		traceMax  = fs.Int("pipetrace-limit", 0, "max trace records (0 = unbounded)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	fail := func(format string, a ...any) int {
		fmt.Fprintf(stderr, format+"\n", a...)
		return 2
	}
	if *traceFmt != "chrome" && *traceFmt != "konata" {
		return fail("bad -pipetrace-format %q (want chrome or konata)", *traceFmt)
	}
	if *traceMax < 0 {
		return fail("bad -pipetrace-limit %d (want >= 0; 0 means unbounded)", *traceMax)
	}
	if *contexts < 1 {
		return fail("bad -contexts %d (want >= 1)", *contexts)
	}

	spec, ok := workload.ByName(*bench)
	if !ok {
		return fail("unknown benchmark %q; have %v", *bench, workload.Names())
	}

	var dviLevel core.Level
	switch *level {
	case "none":
		dviLevel = core.None
	case "idvi":
		dviLevel = core.IDVI
	case "full":
		dviLevel = core.Full
	default:
		return fail("bad -dvi %q (want none, idvi or full)", *level)
	}
	var elim emu.Scheme
	switch *scheme {
	case "off":
		elim = emu.ElimOff
	case "lvm":
		elim = emu.ElimLVM
	case "stack":
		elim = emu.ElimLVMStack
	default:
		return fail("bad -scheme %q (want off, lvm or stack)", *scheme)
	}
	var policy ooo.FetchPolicy
	switch *fetchPol {
	case "round-robin":
		policy = ooo.FetchRoundRobin
	case "icount":
		policy = ooo.FetchICOUNT
	default:
		return fail("bad -fetch-policy %q (want round-robin or icount)", *fetchPol)
	}

	cfg := ooo.DefaultConfig()
	cfg.PhysRegs = *regs
	cfg.CachePorts = *ports
	cfg.IssueWidth = *width
	cfg.MaxInsts = *max
	cfg.WrongPathFetch = *wrong
	cfg.Contexts = *contexts
	cfg.FetchPolicy = policy
	cfg.Emu = session.EmuConfigFor(dviLevel, elim)
	if err := cfg.CheckContexts(); err != nil {
		return fail("%v (raise -regs: %d contexts need at least %d)", err, *contexts, 32**contexts+1)
	}

	var traceBuf *obs.PipeBuffer
	if *pipetrace != "" {
		traceBuf = obs.NewPipeBuffer(*traceMax)
		cfg.Trace = traceBuf
	}

	// One session, one job: the binary flavour follows the session
	// layer's central E-DVI rule (annotated binaries iff the level is
	// full), and KeepMachine retains the simulator instance for the
	// cache/predictor detail below.
	sess := session.New(session.WithWorkers(1))
	results, err := sess.Collect(context.Background(), []session.Job{{
		Workload:    spec,
		Scale:       *scale,
		Build:       session.BuildOptionsFor(dviLevel),
		Kind:        runner.Timing,
		Machine:     cfg,
		KeepMachine: true,
	}})
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	st, m := results[0].Timing, results[0].Machine

	fmt.Fprintf(stdout, "benchmark        %s (scale %d, %s, scheme %s)\n", spec.Name, *scale, cfg.Emu.DVI.Level, cfg.Emu.Scheme)
	if *contexts > 1 {
		fmt.Fprintf(stdout, "contexts         %d (%s fetch)\n", *contexts, policy)
	}
	fmt.Fprintf(stdout, "cycles           %d\n", st.Cycles)
	fmt.Fprintf(stdout, "insts committed  %d (IPC %.3f)\n", st.Committed, st.IPC())
	fmt.Fprintf(stdout, "kills committed  %d\n", st.KillsSeen)
	fmt.Fprintf(stdout, "saves/restores   eliminated %d/%d\n", st.ElimSaves, st.ElimRests)
	fmt.Fprintf(stdout, "early reclaims   %d physical registers\n", st.EarlyReclaimed)
	fmt.Fprintf(stdout, "mispredicts      %d (wrong-path insts %d)\n", st.Mispredicts, st.WrongPath)
	fmt.Fprintf(stdout, "stall cycles     rename %d, window %d, ports %d\n",
		st.RenameStallCycles, st.WindowFullCycles, st.PortStallCycles)
	fmt.Fprintf(stdout, "phys regs in use max %d of %d\n", st.MaxPhysInUse, cfg.PhysRegs)
	h := m.Hierarchy()
	fmt.Fprintf(stdout, "caches           il1 %.2f%% miss, dl1 %.2f%% miss, l2 %.2f%% miss\n",
		100*h.L1I.Stats.MissRate(), 100*h.L1D.Stats.MissRate(), 100*h.L2.Stats.MissRate())
	fmt.Fprintf(stdout, "branch predictor %.2f%% mispredict\n", 100*m.Predictor().MispredictRate())
	fmt.Fprintf(stdout, "checksum         %#x\n", m.Emu().Checksum)
	for i, c := range results[0].CtxStats {
		fmt.Fprintf(stdout, "context %-8d committed %d (IPC %.3f), elim %d/%d, mispredicts %d, checksum %#x\n",
			i, c.Committed, c.IPC(), c.ElimSaves, c.ElimRests, c.Mispredicts, m.EmuCtx(i).Checksum)
	}

	if traceBuf != nil {
		if err := writeTrace(*pipetrace, *traceFmt, traceBuf); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		fmt.Fprintf(stdout, "pipetrace        %s (%s, %d records", *pipetrace, *traceFmt, traceBuf.Len())
		if d := traceBuf.Dropped(); d > 0 {
			fmt.Fprintf(stdout, ", %d dropped past -pipetrace-limit", d)
		}
		fmt.Fprintf(stdout, ")\n")
	}
	return 0
}

// writeTrace renders the captured pipeline records to path: Chrome
// trace_event JSON (load in chrome://tracing or Perfetto) or a Kanata
// pipeline-viewer log.
func writeTrace(path, format string, buf *obs.PipeBuffer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	if format == "konata" {
		err = obs.WriteKonata(w, buf.Records())
	} else {
		err = obs.WriteChromeTrace(w, buf.Records())
	}
	if err == nil {
		err = w.Flush()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}
