package main

import (
	"strings"
	"testing"
)

// TestFlagValidation pins the CLI's usage-error surface: every bad flag
// must exit 2 with a message naming the flag and the accepted values,
// before any simulation work starts.
func TestFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string // stderr substring
	}{
		{"unknown pipetrace format", []string{"-pipetrace-format", "xml"}, "bad -pipetrace-format \"xml\""},
		{"negative pipetrace limit", []string{"-pipetrace-limit", "-5"}, "bad -pipetrace-limit -5"},
		{"zero contexts", []string{"-contexts", "0"}, "bad -contexts 0"},
		{"negative contexts", []string{"-contexts", "-2"}, "bad -contexts -2"},
		{"unknown fetch policy", []string{"-contexts", "2", "-fetch-policy", "priority"}, "bad -fetch-policy \"priority\""},
		{"unknown benchmark", []string{"-bench", "spice"}, "unknown benchmark \"spice\""},
		{"unknown dvi level", []string{"-dvi", "max"}, "bad -dvi \"max\""},
		{"unknown scheme", []string{"-scheme", "magic"}, "bad -scheme \"magic\""},
		{"regfile too small for contexts", []string{"-contexts", "4"}, "raise -regs"},
		{"unparseable flag", []string{"-contexts", "two"}, "invalid value"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var out, errb strings.Builder
			if code := run(c.args, &out, &errb); code != 2 {
				t.Fatalf("exit code %d, want 2 (stderr: %s)", code, errb.String())
			}
			if !strings.Contains(errb.String(), c.want) {
				t.Errorf("stderr %q does not contain %q", errb.String(), c.want)
			}
		})
	}
}

// TestRunMultiContext drives a real 2-context simulation through the CLI
// path and checks the per-context breakdown: one line per context, both
// making progress, absent on a single-context run.
func TestRunMultiContext(t *testing.T) {
	var out, errb strings.Builder
	code := run([]string{"-bench", "li", "-maxinsts", "20000",
		"-contexts", "2", "-fetch-policy", "icount"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit code %d, stderr: %s", code, errb.String())
	}
	s := out.String()
	if !strings.Contains(s, "contexts         2 (icount fetch)") {
		t.Errorf("missing contexts line:\n%s", s)
	}
	for _, want := range []string{"context 0", "context 1"} {
		if !strings.Contains(s, want) {
			t.Errorf("missing per-context line %q:\n%s", want, s)
		}
	}

	out.Reset()
	errb.Reset()
	if code := run([]string{"-bench", "li", "-maxinsts", "20000"}, &out, &errb); code != 0 {
		t.Fatalf("single-context exit code %d, stderr: %s", code, errb.String())
	}
	if strings.Contains(out.String(), "context 0") {
		t.Errorf("single-context run printed a per-context breakdown:\n%s", out.String())
	}
}
