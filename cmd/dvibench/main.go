// dvibench regenerates the paper's tables and figures, running the
// experiment grids concurrently over a shared memoized build cache. The
// report on stdout is byte-identical at any -j; progress goes to stderr.
//
// Usage:
//
//	dvibench                          # everything, -j GOMAXPROCS
//	dvibench -figures fig5,fig6 -j 4  # one sweep, four workers
//	dvibench -figures ablations       # the three ablation studies
//	dvibench -list                    # show selectable experiment IDs
//	dvibench -scale 2 -maxinsts 2000000
//	dvibench -json > bench.json       # machine-readable per-figure stats
//	dvibench -cpuprofile cpu.pprof    # profile the run (go tool pprof)
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"sync"
	"time"

	"dvi/internal/harness"
	"dvi/internal/obs"
	"dvi/internal/runner"
	"dvi/internal/sample"
	"dvi/internal/session"
)

func main() {
	// run carries the real work so its defers (the pprof writers) flush
	// before the process exits; os.Exit here would discard them.
	os.Exit(run())
}

func run() int {
	var (
		figures  = flag.String("figures", "", "comma-separated experiment subset (IDs from -list, or all|ablations); default all")
		exp      = flag.String("experiment", "", "deprecated alias for -figures")
		list     = flag.Bool("list", false, "print selectable experiment IDs and exit")
		jobs     = flag.Int("j", runtime.GOMAXPROCS(0), "concurrent simulation workers")
		quiet    = flag.Bool("q", false, "suppress per-job progress on stderr")
		scale    = flag.Int("scale", 1, "workload scale factor")
		max      = flag.Uint64("maxinsts", 400_000, "instruction budget per timing run")
		sweep    = flag.Uint64("sweepinsts", 150_000, "instruction budget per sweep point (fig5)")
		asJSON   = flag.Bool("json", false, "emit machine-readable per-figure stats as JSON on stdout")
		sampled  = flag.Bool("sampling", false, "estimate timing figures by statistical sampling (checkpointed intervals simulated in parallel, ±CI columns)")
		interval = flag.Uint64("interval", 0, "sampled-interval length in instructions (0 = default; implies -sampling)")
		warmup   = flag.Uint64("warmup", 0, "detailed warmup before each measured interval (0 = interval/5; implies -sampling)")
		targetCI = flag.Float64("ci", 0, "target relative CI half-width, e.g. 0.05; sampler densifies until met (implies -sampling)")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile (after the run) to this file")
		phases   = flag.Bool("phases", false, "print a per-phase wall-clock breakdown (build, scan, interval, render, ...) on stderr after the run")
	)
	flag.Parse()

	if *list {
		for _, f := range harness.Figures() {
			fmt.Printf("%-18s %s\n", f.ID, f.Title)
		}
		return 0
	}

	ids, err := selectIDs(*figures, *exp)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dvibench:", err)
		return 2
	}

	// Profiling hooks: scheduler and engine work is measured with the
	// standard pprof toolchain instead of ad-hoc harnesses. The profiles
	// are flushed by defer even when the run fails — that is when they
	// are most wanted.
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dvibench:", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "dvibench:", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintln(os.Stderr, "dvibench:", err)
				return
			}
			defer f.Close()
			runtime.GC() // report live objects, not transients
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "dvibench:", err)
			}
		}()
	}

	opt := harness.Options{Scale: *scale, MaxInsts: *max, SweepMaxInsts: *sweep, Workers: *jobs}
	if *sampled || *interval != 0 || *warmup != 0 || *targetCI > 0 {
		opt.Sampling = &sample.Options{Interval: *interval, Warmup: *warmup, TargetCI: *targetCI}
	}

	var progress runner.ProgressFunc
	if !*quiet {
		var mu sync.Mutex
		done := 0
		progress = func(ev runner.Event) {
			mu.Lock()
			defer mu.Unlock()
			// JobFailed is not printed here: the run's returned error
			// carries the same label and cause, and main reports it.
			if ev.Phase == runner.JobDone {
				done++
				fmt.Fprintf(os.Stderr, "dvibench: [%d/%d] %s\n", done, ev.Total, ev.Label)
			}
		}
	}

	// -phases installs a span recorder on the run's context: every job
	// the engine executes becomes a root span whose children (build,
	// scan, interval, render, ...) are folded into per-phase totals as
	// the trees complete.
	ctx := context.Background()
	var acc *phaseAcc
	if *phases {
		acc = newPhaseAcc()
		rec := obs.NewRecorder(1) // the ring is unused; OnRecord does the work
		rec.OnRecord = acc.fold
		ctx = obs.WithRecorder(ctx, rec)
	}

	sess := harness.NewSession(opt, progress)
	start := time.Now()
	if *asJSON {
		if err := emitJSON(ctx, os.Stdout, sess, opt, ids, start); err != nil {
			fmt.Fprintln(os.Stderr, "dvibench:", err)
			return 1
		}
	} else if err := harness.RunFigures(ctx, sess, opt, ids, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "dvibench:", err)
		return 1
	}
	if !*quiet {
		hits, misses := sess.Cache().Stats()
		fmt.Fprintf(os.Stderr, "dvibench: done in %s (%d workers, %d binaries compiled, %d build cache hits)\n",
			time.Since(start).Round(time.Millisecond), sess.Workers(), misses, hits)
	}
	if acc != nil {
		acc.print(os.Stderr)
	}
	return 0
}

// phaseAcc accumulates span durations by phase name across all recorded
// span trees. fold runs on engine worker goroutines as trees complete.
type phaseAcc struct {
	mu     sync.Mutex
	totals map[string]time.Duration
	counts map[string]int
}

func newPhaseAcc() *phaseAcc {
	return &phaseAcc{totals: map[string]time.Duration{}, counts: map[string]int{}}
}

func (a *phaseAcc) fold(root *obs.Span) {
	a.mu.Lock()
	defer a.mu.Unlock()
	root.Visit(func(s *obs.Span) {
		a.totals[s.Name()] += s.Duration()
		a.counts[s.Name()]++
	})
}

// print writes the per-phase breakdown, widest total first. Phase totals
// overlap (a job span contains its build span; workers run in parallel),
// so the column sums to more than wall-clock by design.
func (a *phaseAcc) print(w io.Writer) {
	a.mu.Lock()
	defer a.mu.Unlock()
	names := make([]string, 0, len(a.totals))
	for name := range a.totals {
		names = append(names, name)
	}
	sort.Slice(names, func(i, j int) bool { return a.totals[names[i]] > a.totals[names[j]] })
	fmt.Fprintf(w, "dvibench: per-phase breakdown (cumulative across workers; phases nest)\n")
	for _, name := range names {
		n := a.counts[name]
		total := a.totals[name]
		fmt.Fprintf(w, "dvibench:   %-12s %10s  %6d spans  avg %s\n",
			name, total.Round(time.Microsecond), n, (total / time.Duration(n)).Round(time.Microsecond))
	}
}

// benchFigure is one figure's machine-readable record: per-figure
// wall-clock plus aggregate counters from its own job grid, alongside
// the rendered tables (cell values remain the precise per-row numbers).
type benchFigure struct {
	ID     string  `json:"id"`
	Title  string  `json:"title"`
	WallMS float64 `json:"wall_ms"`
	Jobs   int     `json:"jobs"`
	// Aggregates over the figure's timing jobs (absent when it has none).
	Cycles       uint64  `json:"cycles,omitempty"`
	Committed    uint64  `json:"committed,omitempty"`
	IPC          float64 `json:"ipc,omitempty"` // committed/cycles over the grid
	ElimSaves    uint64  `json:"elim_saves,omitempty"`
	ElimRestores uint64  `json:"elim_restores,omitempty"`
	// MinstPerS is simulator throughput: committed (simulated) timing
	// instructions per wall-clock second of this figure's run — the
	// engineering metric the perf trajectory tracks (since dvibench/v2).
	MinstPerS float64 `json:"minst_per_s,omitempty"`
	// Sampled-mode error bounds (dvibench/v3, absent in exact mode):
	// the worst-case confidence-interval half-width over the figure's
	// grid, and how much detail the sampler actually simulated.
	CIHalfWidth       float64 `json:"ci_half_width,omitempty"` // on IPC, worst row
	RelCI             float64 `json:"rel_ci,omitempty"`        // worst relative half-width
	IntervalsMeasured int     `json:"intervals_measured,omitempty"`
	IntervalsTotal    int     `json:"intervals_total,omitempty"`
	// Multi-context aggregates (dvibench/v4, absent when the grid has no
	// multi-context timing jobs): the widest machine in the grid, and per
	// hardware context — summed over the grid's multi-context jobs —
	// committed instructions and save/restore eliminations. Entry i is
	// context i; per-context sums always add up to the corresponding
	// share of the aggregate counters above.
	MaxContexts  int      `json:"max_contexts,omitempty"`
	CtxCommitted []uint64 `json:"ctx_committed,omitempty"`
	CtxElim      []uint64 `json:"ctx_elim,omitempty"`
	// Inferred-annotation aggregates (dvibench/v5, absent when the grid
	// runs no inferred-flavour builds): the share of ElimSaves/ElimRestores
	// above achieved by binaries whose kills the interprocedural inference
	// pass discovered from the machine code alone, and how many of the
	// grid's jobs ran that flavour.
	InferJobs         int    `json:"infer_jobs,omitempty"`
	InferElimSaves    uint64 `json:"infer_elim_saves,omitempty"`
	InferElimRestores uint64 `json:"infer_elim_restores,omitempty"`

	Tables []harness.Table `json:"tables"`
}

// benchSampling records the effective sampling plan a -sampling run used
// (dvibench/v3). Absent in exact mode, so v2 consumers that ignore
// unknown fields keep working.
type benchSampling struct {
	Interval   uint64  `json:"interval"`
	Warmup     uint64  `json:"warmup"`
	Period     int     `json:"period"`
	TargetCI   float64 `json:"target_ci,omitempty"`
	Confidence float64 `json:"confidence"`
}

// benchReport is the -json document: the perf trajectory format the
// BENCH_*.json history records.
type benchReport struct {
	Schema        string         `json:"schema"`
	Workers       int            `json:"workers"`
	Scale         int            `json:"scale"`
	MaxInsts      uint64         `json:"max_insts"`
	SweepMaxInsts uint64         `json:"sweep_max_insts"`
	Sampling      *benchSampling `json:"sampling,omitempty"`
	Figures       []benchFigure  `json:"figures"`
	Compiles      int64          `json:"compiles"`
	CacheHits     int64          `json:"cache_hits"`
	TotalWallMS   float64        `json:"total_wall_ms"`
}

// gridIPC aggregates committed/cycles over a figure's grid. A figure
// whose selection contributes no timing jobs (fig2 has no grid at all;
// fig6 renders purely from fig5's results) has zero cycles: that must
// yield 0, not NaN — json.Marshal rejects NaN and would fail the whole
// report.
func gridIPC(committed, cycles uint64) float64 {
	if cycles == 0 {
		return 0
	}
	return float64(committed) / float64(cycles)
}

// buildReport runs the selected figures one at a time (sharing sess's
// build cache) so each gets its own wall-clock, and assembles the
// machine-readable report. A figure's Needs grids re-run inside its
// measurement — the timing is per-figure cost, not marginal cost.
func buildReport(ctx context.Context, sess *session.Session, opt harness.Options, ids []string, start time.Time) (benchReport, error) {
	selected := map[string]bool{}
	for _, id := range ids {
		selected[id] = true
	}
	rep := benchReport{
		Schema:        "dvibench/v5",
		Workers:       sess.Workers(),
		Scale:         opt.Scale,
		MaxInsts:      opt.MaxInsts,
		SweepMaxInsts: opt.SweepMaxInsts,
	}
	if opt.Sampling != nil {
		eff := opt.Sampling.WithDefaults()
		rep.Sampling = &benchSampling{
			Interval:   eff.Interval,
			Warmup:     eff.Warmup,
			Period:     eff.Period,
			TargetCI:   eff.TargetCI,
			Confidence: sample.Confidence,
		}
	}
	for _, fig := range harness.Figures() {
		if !selected[fig.ID] {
			continue
		}
		figStart := time.Now()
		rs, err := harness.CollectResults(ctx, sess, opt, []string{fig.ID})
		if err != nil {
			return rep, fmt.Errorf("%s: %w", fig.ID, err)
		}
		tables, err := fig.Render(opt, rs)
		if err != nil {
			return rep, fmt.Errorf("%s: %w", fig.ID, err)
		}
		bf := benchFigure{
			ID:     fig.ID,
			Title:  fig.Title,
			WallMS: float64(time.Since(figStart).Microseconds()) / 1000,
			Tables: tables,
		}
		for _, res := range rs[fig.ID] {
			bf.Jobs++
			switch res.Job.Kind {
			case runner.Timing:
				bf.Cycles += res.Timing.Cycles
				bf.Committed += res.Timing.Committed
				bf.ElimSaves += res.Timing.ElimSaves
				bf.ElimRestores += res.Timing.ElimRests
			case runner.Functional:
				bf.ElimSaves += res.Func.SavesElim
				bf.ElimRestores += res.Func.RestoresElim
			}
			if res.Job.Build.Infer {
				bf.InferJobs++
				switch res.Job.Kind {
				case runner.Timing:
					bf.InferElimSaves += res.Timing.ElimSaves
					bf.InferElimRestores += res.Timing.ElimRests
				case runner.Functional:
					bf.InferElimSaves += res.Func.SavesElim
					bf.InferElimRestores += res.Func.RestoresElim
				}
			}
			if n := len(res.CtxStats); n > 1 {
				if n > bf.MaxContexts {
					bf.MaxContexts = n
				}
				for len(bf.CtxCommitted) < n {
					bf.CtxCommitted = append(bf.CtxCommitted, 0)
					bf.CtxElim = append(bf.CtxElim, 0)
				}
				for i, c := range res.CtxStats {
					bf.CtxCommitted[i] += c.Committed
					bf.CtxElim[i] += c.ElimSaves + c.ElimRests
				}
			}
			if est := res.Sampled; est != nil {
				if est.CIHalfWidth > bf.CIHalfWidth {
					bf.CIHalfWidth = est.CIHalfWidth
				}
				if est.RelCI > bf.RelCI {
					bf.RelCI = est.RelCI
				}
				bf.IntervalsMeasured += est.Measured
				bf.IntervalsTotal += est.Intervals
			}
		}
		bf.IPC = gridIPC(bf.Committed, bf.Cycles)
		if bf.WallMS > 0 {
			bf.MinstPerS = float64(bf.Committed) / (bf.WallMS / 1000) / 1e6
		}
		rep.Figures = append(rep.Figures, bf)
	}
	rep.CacheHits, rep.Compiles = sess.Cache().Stats()
	rep.TotalWallMS = float64(time.Since(start).Microseconds()) / 1000
	return rep, nil
}

// emitJSON writes the machine-readable report for ids to w.
func emitJSON(ctx context.Context, w io.Writer, sess *session.Session, opt harness.Options, ids []string, start time.Time) error {
	rep, err := buildReport(ctx, sess, opt, ids, start)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// selectIDs resolves the -figures/-experiment selection into figure IDs.
func selectIDs(figures, experiment string) ([]string, error) {
	if figures != "" && experiment != "" {
		return nil, fmt.Errorf("-figures and -experiment are mutually exclusive (use -figures; -experiment is deprecated)")
	}
	if figures == "" && experiment != "" {
		// The old -experiment flag printed fig5 and fig6 together for
		// either name; preserve that.
		switch experiment {
		case "fig5", "fig6":
			figures = "fig5,fig6"
		default:
			figures = experiment
		}
	}
	if figures == "" || figures == "all" {
		return harness.FigureIDs(), nil
	}
	var ids []string
	for _, id := range strings.Split(figures, ",") {
		id = strings.TrimSpace(id)
		switch id {
		case "":
		case "all":
			ids = append(ids, harness.FigureIDs()...)
		case "ablations":
			ids = append(ids, harness.AblationIDs()...)
		default:
			if _, ok := harness.FigureByID(id); !ok {
				return nil, fmt.Errorf("unknown figure %q (have %s)",
					id, strings.Join(append(harness.FigureIDs(), "ablations"), ", "))
			}
			ids = append(ids, id)
		}
	}
	if len(ids) == 0 {
		return nil, fmt.Errorf("empty -figures selection")
	}
	return ids, nil
}
