// dvibench regenerates the paper's tables and figures, running the
// experiment grids concurrently over a shared memoized build cache. The
// report on stdout is byte-identical at any -j; progress goes to stderr.
//
// Usage:
//
//	dvibench                          # everything, -j GOMAXPROCS
//	dvibench -figures fig5,fig6 -j 4  # one sweep, four workers
//	dvibench -figures ablations       # the three ablation studies
//	dvibench -list                    # show selectable experiment IDs
//	dvibench -scale 2 -maxinsts 2000000
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"sync"
	"time"

	"dvi/internal/harness"
	"dvi/internal/runner"
)

func main() {
	var (
		figures = flag.String("figures", "", "comma-separated experiment subset (IDs from -list, or all|ablations); default all")
		exp     = flag.String("experiment", "", "deprecated alias for -figures")
		list    = flag.Bool("list", false, "print selectable experiment IDs and exit")
		jobs    = flag.Int("j", runtime.GOMAXPROCS(0), "concurrent simulation workers")
		quiet   = flag.Bool("q", false, "suppress per-job progress on stderr")
		scale   = flag.Int("scale", 1, "workload scale factor")
		max     = flag.Uint64("maxinsts", 400_000, "instruction budget per timing run")
		sweep   = flag.Uint64("sweepinsts", 150_000, "instruction budget per sweep point (fig5)")
	)
	flag.Parse()

	if *list {
		for _, f := range harness.Figures() {
			fmt.Printf("%-18s %s\n", f.ID, f.Title)
		}
		return
	}

	ids, err := selectIDs(*figures, *exp)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dvibench:", err)
		os.Exit(2)
	}

	opt := harness.Options{Scale: *scale, MaxInsts: *max, SweepMaxInsts: *sweep, Workers: *jobs}

	var progress runner.ProgressFunc
	if !*quiet {
		var mu sync.Mutex
		done := 0
		progress = func(ev runner.Event) {
			mu.Lock()
			defer mu.Unlock()
			// JobFailed is not printed here: the run's returned error
			// carries the same label and cause, and main reports it.
			if ev.Phase == runner.JobDone {
				done++
				fmt.Fprintf(os.Stderr, "dvibench: [%d/%d] %s\n", done, ev.Total, ev.Label)
			}
		}
	}

	eng := harness.NewEngine(opt, progress)
	start := time.Now()
	if err := harness.RunFigures(context.Background(), eng, opt, ids, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "dvibench:", err)
		os.Exit(1)
	}
	if !*quiet {
		hits, misses := eng.Cache().Stats()
		fmt.Fprintf(os.Stderr, "dvibench: done in %s (%d workers, %d binaries compiled, %d build cache hits)\n",
			time.Since(start).Round(time.Millisecond), eng.Workers(), misses, hits)
	}
}

// selectIDs resolves the -figures/-experiment selection into figure IDs.
func selectIDs(figures, experiment string) ([]string, error) {
	if figures != "" && experiment != "" {
		return nil, fmt.Errorf("-figures and -experiment are mutually exclusive (use -figures; -experiment is deprecated)")
	}
	if figures == "" && experiment != "" {
		// The old -experiment flag printed fig5 and fig6 together for
		// either name; preserve that.
		switch experiment {
		case "fig5", "fig6":
			figures = "fig5,fig6"
		default:
			figures = experiment
		}
	}
	if figures == "" || figures == "all" {
		return harness.FigureIDs(), nil
	}
	var ids []string
	for _, id := range strings.Split(figures, ",") {
		id = strings.TrimSpace(id)
		switch id {
		case "":
		case "all":
			ids = append(ids, harness.FigureIDs()...)
		case "ablations":
			ids = append(ids, harness.AblationIDs()...)
		default:
			if _, ok := harness.FigureByID(id); !ok {
				return nil, fmt.Errorf("unknown figure %q (have %s)",
					id, strings.Join(append(harness.FigureIDs(), "ablations"), ", "))
			}
			ids = append(ids, id)
		}
	}
	if len(ids) == 0 {
		return nil, fmt.Errorf("empty -figures selection")
	}
	return ids, nil
}
