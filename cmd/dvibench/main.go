// dvibench regenerates the paper's tables and figures.
//
// Usage:
//
//	dvibench                         # everything, default scale
//	dvibench -experiment fig9        # one experiment
//	dvibench -scale 2 -maxinsts 2000000
package main

import (
	"flag"
	"fmt"
	"os"

	"dvi/internal/harness"
)

func main() {
	var (
		exp   = flag.String("experiment", "all", "fig2|fig3|fig5|fig6|fig9|fig10|fig11|fig12|fig13|ablations|all")
		scale = flag.Int("scale", 1, "workload scale factor")
		max   = flag.Uint64("maxinsts", 400_000, "instruction budget per timing run")
		sweep = flag.Uint64("sweepinsts", 150_000, "instruction budget per sweep point (fig5)")
	)
	flag.Parse()

	opt := harness.Options{Scale: *scale, MaxInsts: *max, SweepMaxInsts: *sweep}
	out := os.Stdout

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "dvibench:", err)
		os.Exit(1)
	}

	switch *exp {
	case "all":
		if err := harness.RunAll(opt, out); err != nil {
			fail(err)
		}
		for _, f := range []func(harness.Options) (harness.Table, error){
			harness.AblationStackDepth, harness.AblationKillPlacement, harness.AblationWrongPath,
		} {
			t, err := f(opt)
			if err != nil {
				fail(err)
			}
			fmt.Fprintln(out, t)
		}
	case "fig2":
		fmt.Fprintln(out, harness.Fig2MachineConfig())
	case "fig3":
		t, err := harness.Fig3Characterization(opt)
		if err != nil {
			fail(err)
		}
		fmt.Fprintln(out, t)
	case "fig5", "fig6":
		t5, points, err := harness.Fig5RegfileIPC(opt)
		if err != nil {
			fail(err)
		}
		fmt.Fprintln(out, t5)
		t6, err := harness.Fig6Performance(opt, points)
		if err != nil {
			fail(err)
		}
		fmt.Fprintln(out, t6)
	case "fig9":
		t, err := harness.Fig9Eliminated(opt)
		if err != nil {
			fail(err)
		}
		fmt.Fprintln(out, t)
	case "fig10":
		t, err := harness.Fig10Speedups(opt)
		if err != nil {
			fail(err)
		}
		fmt.Fprintln(out, t)
	case "fig11":
		t, err := harness.Fig11PortSensitivity(opt)
		if err != nil {
			fail(err)
		}
		fmt.Fprintln(out, t)
	case "fig12":
		t, err := harness.Fig12ContextSwitch(opt)
		if err != nil {
			fail(err)
		}
		fmt.Fprintln(out, t)
	case "fig13":
		t, err := harness.Fig13EDVIOverhead(opt)
		if err != nil {
			fail(err)
		}
		fmt.Fprintln(out, t)
	case "ablations":
		for _, f := range []func(harness.Options) (harness.Table, error){
			harness.AblationStackDepth, harness.AblationKillPlacement, harness.AblationWrongPath,
		} {
			t, err := f(opt)
			if err != nil {
				fail(err)
			}
			fmt.Fprintln(out, t)
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		os.Exit(2)
	}
}
