package main

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"testing"
	"time"

	"dvi/internal/harness"
	"dvi/internal/sample"
)

// testOptions keeps the grids tiny so the derived-figure selections run in
// well under a second.
func testOptions() harness.Options {
	return harness.Options{Scale: 1, MaxInsts: 5_000, SweepMaxInsts: 2_000, Workers: 1}
}

// TestJSONReportNoTimingJobs pins the zero-cycle guard: selections whose
// figures contribute no timing jobs of their own (fig2 has no grid; fig6
// renders purely from fig5's results) must produce a finite IPC and a
// report json.Marshal accepts — NaN would fail the whole document.
func TestJSONReportNoTimingJobs(t *testing.T) {
	saved := harness.Fig5Sizes
	harness.Fig5Sizes = []int{34, 96}
	defer func() { harness.Fig5Sizes = saved }()

	for _, id := range []string{"fig2", "fig6"} {
		opt := testOptions()
		sess := harness.NewSession(opt, nil)
		rep, err := buildReport(context.Background(), sess, opt, []string{id}, time.Now())
		if err != nil {
			t.Fatalf("%s: buildReport: %v", id, err)
		}
		if len(rep.Figures) != 1 {
			t.Fatalf("%s: %d figures, want 1", id, len(rep.Figures))
		}
		bf := rep.Figures[0]
		if bf.Cycles != 0 {
			t.Fatalf("%s: expected a grid with no timing jobs, got %d cycles", id, bf.Cycles)
		}
		if math.IsNaN(bf.IPC) || math.IsInf(bf.IPC, 0) || bf.IPC != 0 {
			t.Fatalf("%s: IPC = %v, want 0 for a zero-cycle grid", id, bf.IPC)
		}
		if bf.MinstPerS != 0 {
			t.Fatalf("%s: minst_per_s = %v, want 0 with no timing jobs", id, bf.MinstPerS)
		}
		if _, err := json.Marshal(rep); err != nil {
			t.Fatalf("%s: marshal: %v", id, err)
		}
	}
}

// TestJSONReportThroughputAggregate pins the dvibench/v2 addition: a
// figure with timing jobs reports its simulator throughput (committed
// simulated instructions per wall second) alongside IPC.
func TestJSONReportThroughputAggregate(t *testing.T) {
	opt := testOptions()
	sess := harness.NewSession(opt, nil)
	rep, err := buildReport(context.Background(), sess, opt, []string{"fig10"}, time.Now())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Figures) != 1 {
		t.Fatalf("%d figures, want 1", len(rep.Figures))
	}
	bf := rep.Figures[0]
	if bf.Committed == 0 || bf.WallMS <= 0 {
		t.Fatalf("fig10 grid ran nothing: %+v", bf)
	}
	if bf.MinstPerS <= 0 || math.IsInf(bf.MinstPerS, 0) || math.IsNaN(bf.MinstPerS) {
		t.Fatalf("minst_per_s = %v, want a positive finite throughput", bf.MinstPerS)
	}
	if want := float64(bf.Committed) / (bf.WallMS / 1000) / 1e6; math.Abs(bf.MinstPerS-want) > 1e-9 {
		t.Fatalf("minst_per_s = %v, want %v", bf.MinstPerS, want)
	}
}

// TestEmitJSONRoundTrips checks the full -json path writes a decodable
// document with the schema header.
func TestEmitJSONRoundTrips(t *testing.T) {
	opt := testOptions()
	sess := harness.NewSession(opt, nil)
	var buf bytes.Buffer
	if err := emitJSON(context.Background(), &buf, sess, opt, []string{"fig2"}, time.Now()); err != nil {
		t.Fatal(err)
	}
	var rep benchReport
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if rep.Schema != "dvibench/v5" {
		t.Fatalf("schema %q, want dvibench/v5", rep.Schema)
	}
	if rep.Sampling != nil {
		t.Fatalf("exact-mode report carries a sampling block: %+v", rep.Sampling)
	}
}

// TestJSONReportSampling pins the dvibench/v3 additions: a -sampling run
// records its effective plan in the report header and each timing figure
// reports its worst-case error bound and measured/total interval counts.
// Exact runs omit all of it (checked by TestEmitJSONRoundTrips above), so
// v2 consumers that ignore unknown fields keep working.
func TestJSONReportSampling(t *testing.T) {
	opt := testOptions()
	opt.MaxInsts = 120_000
	opt.Sampling = &sample.Options{Interval: 4000, Warmup: 1000, Period: 4}
	sess := harness.NewSession(opt, nil)
	rep, err := buildReport(context.Background(), sess, opt, []string{"fig10"}, time.Now())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sampling == nil {
		t.Fatal("sampled report missing the sampling block")
	}
	if rep.Sampling.Interval != 4000 || rep.Sampling.Warmup != 1000 || rep.Sampling.Period != 4 {
		t.Fatalf("sampling block %+v does not record the effective plan", rep.Sampling)
	}
	if rep.Sampling.Confidence != sample.Confidence {
		t.Fatalf("confidence %v, want %v", rep.Sampling.Confidence, sample.Confidence)
	}
	if len(rep.Figures) != 1 {
		t.Fatalf("%d figures, want 1", len(rep.Figures))
	}
	bf := rep.Figures[0]
	if bf.RelCI <= 0 || math.IsNaN(bf.RelCI) {
		t.Fatalf("rel_ci = %v, want a positive error bound on a sampled timing figure", bf.RelCI)
	}
	if bf.IntervalsMeasured <= 0 || bf.IntervalsTotal < bf.IntervalsMeasured {
		t.Fatalf("interval counts measured=%d total=%d are not a sane sample plan",
			bf.IntervalsMeasured, bf.IntervalsTotal)
	}
	if bf.Cycles == 0 || bf.Committed == 0 {
		t.Fatalf("sampled figure lost its timing aggregates: %+v", bf)
	}
	if _, err := json.Marshal(rep); err != nil {
		t.Fatalf("marshal: %v", err)
	}
}

// TestJSONReportMultiContext pins the dvibench/v4 additions: the smt
// figure's record carries per-context aggregates — the widest machine in
// the grid and per-context committed/elimination sums — while
// single-context figures omit the fields entirely, so v3 consumers that
// ignore unknown fields keep working in exact mode.
func TestJSONReportMultiContext(t *testing.T) {
	opt := testOptions()
	sess := harness.NewSession(opt, nil)
	rep, err := buildReport(context.Background(), sess, opt, []string{"smt", "fig10"}, time.Now())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Figures) != 2 {
		t.Fatalf("%d figures, want 2", len(rep.Figures))
	}
	byID := map[string]benchFigure{}
	for _, bf := range rep.Figures {
		byID[bf.ID] = bf
	}
	smt := byID["smt"]
	if smt.MaxContexts != 8 {
		t.Fatalf("smt max_contexts = %d, want 8", smt.MaxContexts)
	}
	if len(smt.CtxCommitted) != 8 || len(smt.CtxElim) != 8 {
		t.Fatalf("smt per-context slices have %d/%d entries, want 8",
			len(smt.CtxCommitted), len(smt.CtxElim))
	}
	for i, c := range smt.CtxCommitted {
		if c == 0 {
			t.Errorf("context %d committed nothing across the smt grid", i)
		}
	}
	fig10 := byID["fig10"]
	if fig10.MaxContexts != 0 || fig10.CtxCommitted != nil || fig10.CtxElim != nil {
		t.Errorf("single-context figure carries multi-context fields: %+v", fig10)
	}
	if _, err := json.Marshal(rep); err != nil {
		t.Fatalf("marshal: %v", err)
	}
}

// TestSamplingDefaultsInReport checks a bare -sampling run (zero-valued
// Options) records the defaulted plan, not zeros.
func TestSamplingDefaultsInReport(t *testing.T) {
	opt := testOptions()
	opt.Sampling = &sample.Options{}
	sess := harness.NewSession(opt, nil)
	rep, err := buildReport(context.Background(), sess, opt, []string{"fig2"}, time.Now())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sampling == nil || rep.Sampling.Interval == 0 || rep.Sampling.Warmup == 0 || rep.Sampling.Period == 0 {
		t.Fatalf("sampling block %+v should carry WithDefaults values", rep.Sampling)
	}
}

// TestJSONReportInferredElim pins the dvibench/v5 additions: the infer
// figure's record carries the inferred-flavour elimination aggregates,
// while figures that run no inferred builds omit the fields entirely, so
// v4 consumers that ignore unknown fields keep working.
func TestJSONReportInferredElim(t *testing.T) {
	opt := testOptions()
	sess := harness.NewSession(opt, nil)
	rep, err := buildReport(context.Background(), sess, opt, []string{"infer", "fig9"}, time.Now())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Figures) != 2 {
		t.Fatalf("%d figures, want 2", len(rep.Figures))
	}
	byID := map[string]benchFigure{}
	for _, bf := range rep.Figures {
		byID[bf.ID] = bf
	}
	inf := byID["infer"]
	if inf.InferJobs != 7 { // one inferred build per benchmark
		t.Fatalf("infer figure ran %d inferred jobs, want 7", inf.InferJobs)
	}
	if inf.InferElimSaves == 0 || inf.InferElimRestores == 0 {
		t.Fatalf("inferred flavour eliminated nothing: %+v", inf)
	}
	if inf.InferElimSaves > inf.ElimSaves || inf.InferElimRestores > inf.ElimRestores {
		t.Fatalf("inferred aggregates exceed the grid totals: %+v", inf)
	}
	fig9 := byID["fig9"]
	if fig9.InferJobs != 0 || fig9.InferElimSaves != 0 || fig9.InferElimRestores != 0 {
		t.Errorf("hand-annotated figure carries inferred aggregates: %+v", fig9)
	}
	if _, err := json.Marshal(rep); err != nil {
		t.Fatalf("marshal: %v", err)
	}
}
