module dvi

go 1.22
