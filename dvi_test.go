package dvi_test

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"dvi"
)

func TestFacadeSimulate(t *testing.T) {
	w, ok := dvi.WorkloadByName("gcc")
	if !ok {
		t.Fatal("gcc workload missing")
	}
	cfg := dvi.DefaultMachineConfig()
	cfg.MaxInsts = 100_000
	stats, err := dvi.Simulate(w, 1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if stats.IPC() <= 0.3 {
		t.Errorf("IPC = %.2f", stats.IPC())
	}
	if stats.ElimSaves == 0 {
		t.Error("full-DVI machine eliminated no saves on gcc")
	}
}

func TestFacadeSimulateContexts(t *testing.T) {
	w, ok := dvi.WorkloadByName("li")
	if !ok {
		t.Fatal("li workload missing")
	}
	sess := dvi.NewSession()
	agg, ctxStats, err := sess.SimulateContexts(context.Background(), w,
		dvi.WithContexts(2), dvi.WithFetchPolicy(dvi.FetchICOUNT),
		dvi.WithMaxInsts(30_000))
	if err != nil {
		t.Fatal(err)
	}
	if len(ctxStats) != 2 {
		t.Fatalf("%d per-context stats, want 2", len(ctxStats))
	}
	var sum uint64
	for i, cs := range ctxStats {
		if cs.Committed == 0 {
			t.Errorf("ctx %d committed nothing", i)
		}
		sum += cs.Committed
	}
	if sum != agg.Committed {
		t.Errorf("per-context commits sum to %d, aggregate %d", sum, agg.Committed)
	}

	// Single-context machines answer with a nil breakdown, matching the
	// wire format's omitted ctx_stats.
	_, single, err := sess.SimulateContexts(context.Background(), w, dvi.WithMaxInsts(30_000))
	if err != nil {
		t.Fatal(err)
	}
	if single != nil {
		t.Errorf("single-context breakdown = %v, want nil", single)
	}

	// Sampling is single-context; the multi-context front door rejects it.
	if _, _, err := sess.SimulateContexts(context.Background(), w,
		dvi.WithContexts(2), dvi.WithSampling(4000, 1000, 0)); err == nil {
		t.Error("SimulateContexts accepted a sampling request")
	}
}

func TestFacadeSimulateSampled(t *testing.T) {
	w, ok := dvi.WorkloadByName("gcc")
	if !ok {
		t.Fatal("gcc workload missing")
	}
	cfg := dvi.DefaultMachineConfig()
	cfg.MaxInsts = 100_000
	exact, err := dvi.Simulate(w, 1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	est, err := dvi.SimulateSampled(w, 1, cfg, dvi.SamplingOptions{Interval: 4000, Warmup: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if est.Measured == 0 || est.RelCI <= 0 {
		t.Fatalf("estimate %+v carries no sample plan or error bound", est)
	}
	if diff := est.IPC - exact.IPC(); diff > est.CIHalfWidth || -diff > est.CIHalfWidth {
		t.Errorf("sampled IPC %.4f vs exact %.4f exceeds CI half-width %.4f",
			est.IPC, exact.IPC(), est.CIHalfWidth)
	}
	if est.DetailedInsts >= est.TotalInsts {
		t.Errorf("sampler simulated %d of %d instructions in detail — no savings",
			est.DetailedInsts, est.TotalInsts)
	}
}

func TestFacadeEmulate(t *testing.T) {
	w, _ := dvi.WorkloadByName("compress")
	e, err := dvi.Emulate(w, 1, dvi.EmulatorConfig{DVI: dvi.DefaultDVIConfig(), Scheme: dvi.ElimLVMStack})
	if err != nil {
		t.Fatal(err)
	}
	if e.Checksum == 0 {
		t.Error("no checksum")
	}
}

func TestFacadeBuildAndRewrite(t *testing.T) {
	w, _ := dvi.WorkloadByName("li")
	pr, img, err := dvi.Build(w, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	if img.TextWords() == 0 {
		t.Fatal("empty image")
	}
	n, err := dvi.InsertKills(pr, dvi.RewriteOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Error("rewriter inserted nothing")
	}
	img2, err := pr.Link()
	if err != nil {
		t.Fatal(err)
	}
	if img2.TextWords() != img.TextWords()+n {
		t.Errorf("code grew by %d, want %d", img2.TextWords()-img.TextWords(), n)
	}
}

func TestFacadeContextSwitch(t *testing.T) {
	w, _ := dvi.WorkloadByName("perl")
	pr, img, err := dvi.Build(w, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	res, err := dvi.MeasureContextSwitch(pr, img, dvi.EmulatorConfig{DVI: dvi.DefaultDVIConfig()}, 997, 200_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reduction <= 0.1 {
		t.Errorf("reduction = %.2f", res.Reduction)
	}
}

func TestWorkloadsComplete(t *testing.T) {
	names := map[string]bool{}
	for _, w := range dvi.Workloads() {
		names[w.Name] = true
	}
	for _, want := range []string{"compress", "go", "ijpeg", "li", "vortex", "perl", "gcc"} {
		if !names[want] {
			t.Errorf("workload %s missing", want)
		}
	}
}

func TestExperimentReportSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("full report in -short mode")
	}
	var buf bytes.Buffer
	opt := dvi.ExperimentOptions{Scale: 1, MaxInsts: 30_000, SweepMaxInsts: 15_000}
	// Run only the cheap pieces through the full-report path by patching
	// down the sweep via options; the full RunAll is exercised by
	// cmd/dvibench and the benchmarks.
	if err := dvi.RunAllExperiments(opt, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"fig2", "fig3", "fig5", "fig6", "fig9", "fig10", "fig11", "fig12", "fig13"} {
		if !strings.Contains(out, "=== "+want) {
			t.Errorf("report missing %s", want)
		}
	}
}

// TestFacadeSimulateCompilesOnce pins the Session redesign's payoff at
// the facade: repeated one-shot dvi.Simulate calls for the same
// (workload, scale, flavour) perform exactly one compile, because they
// share the default Session's single-flight build cache — mirroring the
// service's 64-way request-coalescing load test at the library seam.
func TestFacadeSimulateCompilesOnce(t *testing.T) {
	w, ok := dvi.WorkloadByName("ijpeg")
	if !ok {
		t.Fatal("ijpeg workload missing")
	}
	cfg := dvi.DefaultMachineConfig()
	cfg.MaxInsts = 20_000

	cache := dvi.DefaultSession().Cache()
	_, missesBefore := cache.Stats()

	const calls = 4
	var first dvi.MachineStats
	for i := 0; i < calls; i++ {
		stats, err := dvi.Simulate(w, 1, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = stats
		} else if stats != first {
			t.Fatalf("call %d stats differ from call 0", i)
		}
	}

	hitsAfter, missesAfter := cache.Stats()
	if got := missesAfter - missesBefore; got != 1 {
		t.Fatalf("%d facade Simulate calls compiled %d times, want exactly 1", calls, got)
	}
	if hitsAfter < calls-1 {
		t.Fatalf("expected at least %d build-cache hits, got %d", calls-1, hitsAfter)
	}
}

func TestFacadeRunnerSharesBuilds(t *testing.T) {
	eng := dvi.NewRunner(dvi.RunnerOptions{Workers: 4})
	w, _ := dvi.WorkloadByName("gcc")
	cfg := dvi.DefaultMachineConfig()
	cfg.MaxInsts = 20_000
	res, err := eng.Run(context.Background(), []dvi.RunnerJob{
		{Workload: w, Scale: 1, Kind: dvi.JobBuild},
		{Workload: w, Scale: 1, Kind: dvi.JobTiming, Machine: cfg},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Image == nil || res[0].Image != res[1].Image {
		t.Error("build cache did not share the compiled image across jobs")
	}
	if res[1].Timing.Committed == 0 {
		t.Error("timing job produced no stats")
	}
	if _, misses := eng.Cache().Stats(); misses != 1 {
		t.Errorf("compiled %d binaries for one key, want 1", misses)
	}
}

func TestFacadeExperimentSubset(t *testing.T) {
	opt := dvi.ExperimentOptions{Scale: 1, MaxInsts: 30_000, SweepMaxInsts: 15_000, Workers: 2}
	sess := dvi.NewSession(dvi.WithWorkers(opt.Workers))
	var buf bytes.Buffer
	if err := dvi.RunExperiments(context.Background(), sess, opt, []string{"fig2", "fig9"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "=== fig2") || !strings.Contains(out, "=== fig9") {
		t.Errorf("subset report missing selected figures:\n%s", out)
	}
	if strings.Contains(out, "=== fig5") {
		t.Error("subset report contains unselected figure")
	}
	if len(dvi.ExperimentIDs()) < 9 {
		t.Errorf("ExperimentIDs = %v", dvi.ExperimentIDs())
	}
}
