package dvi_test

import (
	"bytes"
	"strings"
	"testing"

	"dvi"
)

func TestFacadeSimulate(t *testing.T) {
	w, ok := dvi.WorkloadByName("gcc")
	if !ok {
		t.Fatal("gcc workload missing")
	}
	cfg := dvi.DefaultMachineConfig()
	cfg.MaxInsts = 100_000
	stats, err := dvi.Simulate(w, 1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if stats.IPC() <= 0.3 {
		t.Errorf("IPC = %.2f", stats.IPC())
	}
	if stats.ElimSaves == 0 {
		t.Error("full-DVI machine eliminated no saves on gcc")
	}
}

func TestFacadeEmulate(t *testing.T) {
	w, _ := dvi.WorkloadByName("compress")
	e, err := dvi.Emulate(w, 1, dvi.EmulatorConfig{DVI: dvi.DefaultDVIConfig(), Scheme: dvi.ElimLVMStack})
	if err != nil {
		t.Fatal(err)
	}
	if e.Checksum == 0 {
		t.Error("no checksum")
	}
}

func TestFacadeBuildAndRewrite(t *testing.T) {
	w, _ := dvi.WorkloadByName("li")
	pr, img, err := dvi.Build(w, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	if img.TextWords() == 0 {
		t.Fatal("empty image")
	}
	n, err := dvi.InsertKills(pr, dvi.RewriteOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Error("rewriter inserted nothing")
	}
	img2, err := pr.Link()
	if err != nil {
		t.Fatal(err)
	}
	if img2.TextWords() != img.TextWords()+n {
		t.Errorf("code grew by %d, want %d", img2.TextWords()-img.TextWords(), n)
	}
}

func TestFacadeContextSwitch(t *testing.T) {
	w, _ := dvi.WorkloadByName("perl")
	pr, img, err := dvi.Build(w, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	res, err := dvi.MeasureContextSwitch(pr, img, dvi.EmulatorConfig{DVI: dvi.DefaultDVIConfig()}, 997, 200_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reduction <= 0.1 {
		t.Errorf("reduction = %.2f", res.Reduction)
	}
}

func TestWorkloadsComplete(t *testing.T) {
	names := map[string]bool{}
	for _, w := range dvi.Workloads() {
		names[w.Name] = true
	}
	for _, want := range []string{"compress", "go", "ijpeg", "li", "vortex", "perl", "gcc"} {
		if !names[want] {
			t.Errorf("workload %s missing", want)
		}
	}
}

func TestExperimentReportSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("full report in -short mode")
	}
	var buf bytes.Buffer
	opt := dvi.ExperimentOptions{Scale: 1, MaxInsts: 30_000, SweepMaxInsts: 15_000}
	// Run only the cheap pieces through the full-report path by patching
	// down the sweep via options; the full RunAll is exercised by
	// cmd/dvibench and the benchmarks.
	if err := dvi.RunAllExperiments(opt, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"fig2", "fig3", "fig5", "fig6", "fig9", "fig10", "fig11", "fig12", "fig13"} {
		if !strings.Contains(out, "=== "+want) {
			t.Errorf("report missing %s", want)
		}
	}
}
