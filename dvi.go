// Package dvi is a reproduction of "Exploiting Dead Value Information"
// (Milo M. Martin, Amir Roth, Charles N. Fischer; MICRO-30, 1997).
//
// Dead Value Information (DVI) consists of compiler assertions that
// certain register values are dead — they will be overwritten before they
// are read again. The paper shows a processor can exploit DVI three ways:
// reclaiming physical registers early so the renaming file can shrink
// (§4), dynamically eliminating dead callee-saved save and restore
// instructions at procedure calls (§5), and eliminating dead register
// traffic at context switches (§6).
//
// This package is the public face of the reproduction. It bundles:
//
//   - a complete out-of-order timing simulator (4-wide, 64-entry window,
//     MIPS R10000-style renaming over an explicit physical register file,
//     two-level caches, combining branch predictor) with the paper's DVI
//     hardware: the Live Value Mask, the 16-entry LVM-Stack, live-load and
//     live-store instructions, explicit kill instructions, and implicit
//     DVI at calls and returns;
//   - a functional reference emulator with a dead-value soundness checker;
//   - a compiler (mini-IR → machine code) and a binary rewriting pass that
//     computes liveness and inserts kill annotations;
//   - seven synthetic SPEC95int-like workloads;
//   - the experiment harness that regenerates every table and figure in
//     the paper's evaluation (see EXPERIMENTS.md).
//
// Quick start:
//
//	w, _ := dvi.WorkloadByName("perl")
//	stats, _ := dvi.Simulate(w, 1, dvi.DefaultMachineConfig())
//	fmt.Printf("IPC %.2f, eliminated %d saves and %d restores\n",
//	    stats.IPC(), stats.ElimSaves, stats.ElimRests)
package dvi

import (
	"context"
	"io"
	"net/http"

	"dvi/internal/cacti"
	"dvi/internal/core"
	"dvi/internal/ctxswitch"
	"dvi/internal/emu"
	"dvi/internal/harness"
	"dvi/internal/ooo"
	"dvi/internal/prog"
	"dvi/internal/rewrite"
	"dvi/internal/runner"
	"dvi/internal/service"
	"dvi/internal/workload"
)

// Re-exported types. The facade is intentionally thin: each alias is the
// real implementation type, so the full API of the internal packages is
// available through values obtained here.
type (
	// MachineConfig parameterizes the out-of-order machine (Figure 2).
	MachineConfig = ooo.Config
	// MachineStats are the timing results of one simulation.
	MachineStats = ooo.Stats
	// Machine is the out-of-order simulator instance.
	Machine = ooo.Machine

	// DVIConfig selects the DVI hardware behaviour.
	DVIConfig = core.Config
	// DVILevel selects which DVI sources are honoured.
	DVILevel = core.Level
	// Tracker is the LVM + LVM-Stack hardware state.
	Tracker = core.Tracker

	// Scheme selects the save/restore elimination scheme.
	Scheme = emu.Scheme
	// EmulatorConfig parameterizes the functional emulator.
	EmulatorConfig = emu.Config
	// Emulator is the functional reference implementation.
	Emulator = emu.Emulator

	// Workload is one of the seven benchmark programs.
	Workload = workload.Spec
	// BuildOptions selects the binary flavour (with or without E-DVI).
	BuildOptions = workload.BuildOptions

	// Program is a symbolic (pre-link) program.
	Program = prog.Program
	// Image is a linked executable image.
	Image = prog.Image

	// RewriteOptions configures the binary rewriting DVI inserter.
	RewriteOptions = rewrite.Options

	// ExperimentOptions scales the paper experiments; its Workers field
	// bounds the experiment engine's worker pool.
	ExperimentOptions = harness.Options
	// ExperimentTable is one regenerated table or figure.
	ExperimentTable = harness.Table
	// ExperimentFigure is one declarative experiment: a job grid plus a
	// renderer (see harness.Figures for the registry).
	ExperimentFigure = harness.Figure

	// Runner is the experiment execution engine: a bounded worker pool
	// over a memoizing, single-flight build cache. Results come back in
	// submission order, so anything rendered from them is deterministic
	// at any worker count.
	Runner = runner.Engine
	// RunnerOptions configures a Runner (workers, progress, compile).
	RunnerOptions = runner.Options
	// RunnerJob is one unit of experiment work: which binary to build or
	// fetch from the cache, and what to run it on.
	RunnerJob = runner.Job
	// RunnerResult is the outcome of one job, in submission order.
	RunnerResult = runner.Result
	// RunnerEvent is a per-job progress notification.
	RunnerEvent = runner.Event
	// RunnerBuildCache memoizes compiled binaries by BuildKey with
	// single-flight deduplication.
	RunnerBuildCache = runner.BuildCache

	// BuildKey uniquely identifies one compiled binary flavour; it is
	// the build cache's memoization key.
	BuildKey = workload.BuildKey

	// SwitchResult is a context-switch liveness measurement (§6).
	SwitchResult = ctxswitch.Result
	// SwitchStats counts scheduler save/restore traffic.
	SwitchStats = ctxswitch.SwitchStats
	// ThreadScheduler runs emulators round-robin with preemptive switches
	// whose save/restore sequences honour DVI (§6.1).
	ThreadScheduler = ctxswitch.Scheduler

	// RegfileTiming is the CACTI-derived register file access time model
	// used by Figure 6.
	RegfileTiming = cacti.Model

	// Service is the HTTP/JSON server exposing annotation, simulation
	// and context-switch sampling to remote clients (DVI-as-a-service).
	// It is an http.Handler; cmd/dvid is the hosting daemon.
	Service = service.Server
	// ServiceConfig parameterizes a Service (workers, admission queue,
	// build cache bound, request ceilings).
	ServiceConfig = service.Config
	// ServiceClient is the typed Go client for a dvid daemon.
	ServiceClient = service.Client
	// ServiceError is the error type the client returns for
	// server-reported failures (carries the HTTP status).
	ServiceError = service.Error

	// AnnotateRequest/AnnotateResponse are the /v1/annotate wire types.
	AnnotateRequest  = service.AnnotateRequest
	AnnotateResponse = service.AnnotateResponse
	// SimulateRequest/SimulateResponse are the /v1/simulate wire types.
	SimulateRequest  = service.SimulateRequest
	SimulateResponse = service.SimulateResponse
	// CtxSwitchRequest/CtxSwitchResponse are the /v1/ctxswitch wire types.
	CtxSwitchRequest  = service.CtxSwitchRequest
	CtxSwitchResponse = service.CtxSwitchResponse
)

// DVI levels (paper Figure 5's three configurations).
const (
	DVINone = core.None
	DVIIDVI = core.IDVI
	DVIFull = core.Full
)

// Save/restore elimination schemes (paper §5.2).
const (
	ElimOff      = emu.ElimOff
	ElimLVM      = emu.ElimLVM
	ElimLVMStack = emu.ElimLVMStack
)

// Kill placement policies for the binary rewriter.
const (
	KillsBeforeCalls = rewrite.KillsBeforeCalls
	KillsAtDeath     = rewrite.KillsAtDeath
)

// Runner job kinds.
const (
	// JobTiming runs the out-of-order timing simulator.
	JobTiming = runner.Timing
	// JobFunctional runs the functional reference emulator.
	JobFunctional = runner.Functional
	// JobCtxSwitch samples context-switch liveness.
	JobCtxSwitch = runner.CtxSwitch
	// JobBuild compiles and links only.
	JobBuild = runner.Build
)

// DefaultMachineConfig returns the paper's machine (Figure 2) with full
// DVI hardware enabled.
func DefaultMachineConfig() MachineConfig { return ooo.DefaultConfig() }

// DefaultDVIConfig returns full DVI with the standard ABI and a 16-entry
// LVM-Stack.
func DefaultDVIConfig() DVIConfig { return core.DefaultConfig() }

// Workloads returns the seven SPEC95int-like benchmarks.
func Workloads() []Workload { return workload.All() }

// WorkloadByName finds a benchmark ("compress", "go", "ijpeg", "li",
// "vortex", "perl", "gcc").
func WorkloadByName(name string) (Workload, bool) { return workload.ByName(name) }

// Build compiles and links one workload. With edvi true the binary carries
// kill annotations (the paper's DVI-annotated executable).
func Build(w Workload, scale int, edvi bool) (*Program, *Image, error) {
	return workload.CompileSpec(w, scale, workload.BuildOptions{EDVI: edvi})
}

// Simulate builds a workload (with E-DVI annotations when the machine's
// DVI level honours them) and runs it on the timing simulator.
func Simulate(w Workload, scale int, cfg MachineConfig) (MachineStats, error) {
	edvi := cfg.Emu.DVI.Level == core.Full
	pr, img, err := workload.CompileSpec(w, scale, workload.BuildOptions{EDVI: edvi})
	if err != nil {
		return MachineStats{}, err
	}
	m := ooo.New(pr, img, cfg)
	return m.Run()
}

// NewMachine builds a simulator over an already-linked program.
func NewMachine(pr *Program, img *Image, cfg MachineConfig) *Machine {
	return ooo.New(pr, img, cfg)
}

// Emulate runs a workload on the functional reference emulator and returns
// it for inspection (checksum, statistics, DVI tracker).
func Emulate(w Workload, scale int, cfg EmulatorConfig) (*Emulator, error) {
	pr, img, err := workload.CompileSpec(w, scale, workload.BuildOptions{EDVI: cfg.DVI.Level == core.Full})
	if err != nil {
		return nil, err
	}
	e := emu.New(pr, img, cfg)
	err = e.Run(0)
	return e, err
}

// InsertKills runs the binary rewriting DVI inserter over a program
// (paper §2's "simple binary rewriting tool"). Call before linking.
func InsertKills(pr *Program, opt RewriteOptions) (int, error) {
	return rewrite.InsertKills(pr, opt)
}

// MeasureContextSwitch samples live-register counts at preemption points
// (paper §6.2's Figure 12 methodology).
func MeasureContextSwitch(pr *Program, img *Image, cfg EmulatorConfig, interval, maxInsts uint64) (SwitchResult, error) {
	return ctxswitch.Measure(pr, img, cfg, interval, maxInsts)
}

// NewEmulator builds a functional emulator over a linked program.
func NewEmulator(pr *Program, img *Image, cfg EmulatorConfig) *Emulator {
	return emu.New(pr, img, cfg)
}

// NewThreadScheduler builds a preemptive round-robin scheduler over
// emulated threads. With useDVI true the switch sequences use
// live-stores/live-loads and lvm-save/lvm-load, eliminating dead-register
// traffic; eliminated restores are poisoned so unsound liveness would
// corrupt results.
func NewThreadScheduler(quantum uint64, useDVI bool, threads ...*Emulator) *ThreadScheduler {
	return ctxswitch.NewScheduler(quantum, useDVI, threads...)
}

// DefaultRegfileTiming returns the calibrated register file access time
// model (linear in registers, quadratic in ports; §4.2).
func DefaultRegfileTiming() RegfileTiming { return cacti.Default() }

// DefaultExperimentOptions sizes the experiments to finish in minutes.
func DefaultExperimentOptions() ExperimentOptions { return harness.DefaultOptions() }

// NewRunner builds an experiment engine. One engine should serve a whole
// report so every figure shares its memoized build cache.
func NewRunner(opt RunnerOptions) *Runner { return runner.New(opt) }

// ExperimentIDs returns every selectable experiment ID in report order
// (the nine paper figures followed by the ablations).
func ExperimentIDs() []string { return harness.FigureIDs() }

// RunAllExperiments regenerates every table and figure, writing the report
// to w. opt.Workers bounds the concurrent worker pool; the report bytes
// are identical at any setting. See cmd/dvibench for the command-line
// entry point.
func RunAllExperiments(opt ExperimentOptions, w io.Writer) error {
	return harness.RunAll(opt, w)
}

// RunExperiments runs the selected experiments (see ExperimentIDs) plus
// any dependencies through eng — one shared engine and build cache — and
// writes their tables to w in report order.
func RunExperiments(ctx context.Context, eng *Runner, opt ExperimentOptions, ids []string, w io.Writer) error {
	return harness.RunFigures(ctx, eng, opt, ids, w)
}

// FormatAsm renders a symbolic program as assembly text — the service's
// wire format. The text reparses with ParseAsm; format→parse→format is a
// fixed point, and the reparsed program links byte-identically.
func FormatAsm(pr *Program) string { return prog.FormatAsm(pr) }

// ParseAsm parses assembly text into a symbolic program, ready for
// InsertKills and linking.
func ParseAsm(src string) (*Program, error) { return prog.ParseAsm(src) }

// NewService builds the DVI HTTP service. Mount it on an http.Server
// (cmd/dvid does exactly this) or an httptest server in tests.
func NewService(cfg ServiceConfig) *Service { return service.New(cfg) }

// NewServiceClient builds a typed client for a dvid daemon at base, e.g.
// "http://localhost:8077". A nil hc uses http.DefaultClient.
func NewServiceClient(base string, hc *http.Client) *ServiceClient {
	return service.NewClient(base, hc)
}
