// Package dvi is a reproduction of "Exploiting Dead Value Information"
// (Milo M. Martin, Amir Roth, Charles N. Fischer; MICRO-30, 1997).
//
// Dead Value Information (DVI) consists of compiler assertions that
// certain register values are dead — they will be overwritten before they
// are read again. The paper shows a processor can exploit DVI three ways:
// reclaiming physical registers early so the renaming file can shrink
// (§4), dynamically eliminating dead callee-saved save and restore
// instructions at procedure calls (§5), and eliminating dead register
// traffic at context switches (§6).
//
// This package is the public face of the reproduction. It bundles:
//
//   - a complete out-of-order timing simulator (4-wide, 64-entry window,
//     MIPS R10000-style renaming over an explicit physical register file,
//     two-level caches, combining branch predictor) with the paper's DVI
//     hardware: the Live Value Mask, the 16-entry LVM-Stack, live-load and
//     live-store instructions, explicit kill instructions, and implicit
//     DVI at calls and returns;
//   - a functional reference emulator with a dead-value soundness checker;
//   - a compiler (mini-IR → machine code) and a binary rewriting pass that
//     computes liveness and inserts kill annotations;
//   - seven synthetic SPEC95int-like workloads;
//   - the experiment harness that regenerates every table and figure in
//     the paper's evaluation (see EXPERIMENTS.md).
//
// Quick start:
//
//	w, _ := dvi.WorkloadByName("perl")
//	stats, _ := dvi.Simulate(w, 1, dvi.DefaultMachineConfig())
//	fmt.Printf("IPC %.2f, eliminated %d saves and %d restores\n",
//	    stats.IPC(), stats.ElimSaves, stats.ElimRests)
package dvi

import (
	"context"
	"io"
	"net/http"
	"sync"
	"time"

	"dvi/internal/cacti"
	"dvi/internal/core"
	"dvi/internal/ctxswitch"
	"dvi/internal/emu"
	"dvi/internal/harness"
	"dvi/internal/ooo"
	"dvi/internal/prog"
	"dvi/internal/rewrite"
	"dvi/internal/runner"
	"dvi/internal/sample"
	"dvi/internal/service"
	"dvi/internal/session"
	"dvi/internal/workload"
)

// Re-exported types. The facade is intentionally thin: each alias is the
// real implementation type, so the full API of the internal packages is
// available through values obtained here.
type (
	// MachineConfig parameterizes the out-of-order machine (Figure 2).
	MachineConfig = ooo.Config
	// MachineStats are the timing results of one simulation.
	MachineStats = ooo.Stats
	// Machine is the out-of-order simulator instance.
	Machine = ooo.Machine
	// FetchPolicy selects how a multi-context machine arbitrates its one
	// fetch slot per cycle.
	FetchPolicy = ooo.FetchPolicy

	// DVIConfig selects the DVI hardware behaviour.
	DVIConfig = core.Config
	// DVILevel selects which DVI sources are honoured.
	DVILevel = core.Level
	// Tracker is the LVM + LVM-Stack hardware state.
	Tracker = core.Tracker

	// Scheme selects the save/restore elimination scheme.
	Scheme = emu.Scheme
	// EmulatorConfig parameterizes the functional emulator.
	EmulatorConfig = emu.Config
	// Emulator is the functional reference implementation.
	Emulator = emu.Emulator

	// Workload is one of the seven benchmark programs.
	Workload = workload.Spec
	// BuildOptions selects the binary flavour (with or without E-DVI).
	BuildOptions = workload.BuildOptions

	// Program is a symbolic (pre-link) program.
	Program = prog.Program
	// Image is a linked executable image.
	Image = prog.Image

	// RewriteOptions configures the binary rewriting DVI inserter.
	RewriteOptions = rewrite.Options

	// ExperimentOptions scales the paper experiments; its Workers field
	// bounds the experiment engine's worker pool.
	ExperimentOptions = harness.Options
	// ExperimentTable is one regenerated table or figure.
	ExperimentTable = harness.Table
	// ExperimentFigure is one declarative experiment: a job grid plus a
	// renderer (see harness.Figures for the registry).
	ExperimentFigure = harness.Figure

	// Session is the orchestration layer: a long-lived, concurrency-safe
	// handle owning one execution engine, its single-flight build cache,
	// and the pooled machine/emulator instances. Every front door — the
	// one-shot functions here, the harness and CLIs, the HTTP service —
	// routes through a Session. Construct with NewSession; the one-shot
	// facade functions share a lazily-initialized DefaultSession.
	Session = session.Session
	// SessionOption configures a Session at construction time
	// (WithWorkers, WithCacheCapacity, WithProgress, WithCompile).
	SessionOption = session.Option
	// RunOption configures one Session call (WithScale, WithDVILevel,
	// WithScheme, WithMachineConfig, ...).
	RunOption = session.RunOption
	// CompileFunc compiles one benchmark flavour; sessions, runners and
	// the service accept overrides for testing.
	CompileFunc = runner.CompileFunc

	// Runner is the experiment execution engine: a bounded worker pool
	// over a memoizing, single-flight build cache. Results come back in
	// submission order, so anything rendered from them is deterministic
	// at any worker count.
	Runner = runner.Engine
	// RunnerOptions configures a Runner (workers, progress, compile).
	RunnerOptions = runner.Options
	// RunnerJob is one unit of experiment work: which binary to build or
	// fetch from the cache, and what to run it on.
	RunnerJob = runner.Job
	// RunnerResult is the outcome of one job, in submission order.
	RunnerResult = runner.Result
	// RunnerEvent is a per-job progress notification.
	RunnerEvent = runner.Event
	// RunnerBuildCache memoizes compiled binaries by BuildKey with
	// single-flight deduplication.
	RunnerBuildCache = runner.BuildCache

	// BuildKey uniquely identifies one compiled binary flavour; it is
	// the build cache's memoization key.
	BuildKey = workload.BuildKey

	// SwitchResult is a context-switch liveness measurement (§6).
	SwitchResult = ctxswitch.Result
	// SwitchStats counts scheduler save/restore traffic.
	SwitchStats = ctxswitch.SwitchStats
	// ThreadScheduler runs emulators round-robin with preemptive switches
	// whose save/restore sequences honour DVI (§6.1).
	ThreadScheduler = ctxswitch.Scheduler

	// RegfileTiming is the CACTI-derived register file access time model
	// used by Figure 6.
	RegfileTiming = cacti.Model

	// SamplingOptions parameterizes statistical sampling (interval
	// length, warmup, selection period/seed, target CI).
	SamplingOptions = sample.Options
	// SampledEstimate is a whole-program estimate produced by the
	// sampler: estimated cycles/IPC with a confidence interval, plus the
	// exact architectural counts from the functional pass.
	SampledEstimate = sample.Estimate

	// Service is the HTTP/JSON server exposing annotation, simulation
	// and context-switch sampling to remote clients (DVI-as-a-service).
	// It is an http.Handler; cmd/dvid is the hosting daemon.
	Service = service.Server
	// ServiceConfig parameterizes a Service (workers, admission queue,
	// build cache bound, request ceilings).
	ServiceConfig = service.Config
	// ServiceClient is the typed Go client for a dvid daemon.
	ServiceClient = service.Client
	// ServiceClientOption configures a ServiceClient at construction;
	// see ServiceWithRequestTimeout.
	ServiceClientOption = service.ClientOption
	// ServiceError is the error type the client returns for
	// server-reported failures (carries the HTTP status).
	ServiceError = service.Error

	// AnnotateRequest/AnnotateResponse are the /v1/annotate wire types.
	AnnotateRequest  = service.AnnotateRequest
	AnnotateResponse = service.AnnotateResponse
	// SimulateRequest/SimulateResponse are the /v1/simulate wire types.
	SimulateRequest  = service.SimulateRequest
	SimulateResponse = service.SimulateResponse
	// CtxSwitchRequest/CtxSwitchResponse are the /v1/ctxswitch wire types.
	CtxSwitchRequest  = service.CtxSwitchRequest
	CtxSwitchResponse = service.CtxSwitchResponse

	// ServiceJobRequest is one entry in a /v2/jobs batch: a kind
	// ("simulate", "ctxswitch", "annotate") plus the matching payload.
	ServiceJobRequest = service.JobRequest
	// ServiceJobsRequest is the /v2/jobs body: a heterogeneous job list.
	ServiceJobsRequest = service.JobsRequest
	// ServiceJobResult is one line of the /v2/jobs NDJSON stream,
	// delivered in submission order; ServiceClient.RunJobs decodes them.
	ServiceJobResult = service.JobResult
)

// DVI levels (paper Figure 5's three configurations).
const (
	DVINone = core.None
	DVIIDVI = core.IDVI
	DVIFull = core.Full
)

// Save/restore elimination schemes (paper §5.2).
const (
	ElimOff      = emu.ElimOff
	ElimLVM      = emu.ElimLVM
	ElimLVMStack = emu.ElimLVMStack
)

// Multi-context (SMT) fetch arbitration policies.
const (
	// FetchRoundRobin rotates the fetch slot over the eligible contexts.
	FetchRoundRobin = ooo.FetchRoundRobin
	// FetchICOUNT fetches for the context with the fewest in-flight
	// instructions (fetch queue + window) — the starvation-resistant
	// policy.
	FetchICOUNT = ooo.FetchICOUNT
)

// Kill placement policies for the binary rewriter.
const (
	KillsBeforeCalls = rewrite.KillsBeforeCalls
	KillsAtDeath     = rewrite.KillsAtDeath
)

// Runner job kinds.
const (
	// JobTiming runs the out-of-order timing simulator.
	JobTiming = runner.Timing
	// JobFunctional runs the functional reference emulator.
	JobFunctional = runner.Functional
	// JobCtxSwitch samples context-switch liveness.
	JobCtxSwitch = runner.CtxSwitch
	// JobBuild compiles and links only.
	JobBuild = runner.Build
)

// DefaultSessionCacheCapacity bounds the default Session's build cache;
// it comfortably holds the benchmark suite in every flavour while keeping
// a long-lived process that sweeps many scales from pinning every binary
// it ever compiled.
const DefaultSessionCacheCapacity = 64

// NewSession builds an orchestration session: one engine, one build
// cache, one set of simulator pools serving every call made through it.
// Construct one per process (report, daemon, test suite) so repeated and
// concurrent calls share memoized builds and warm simulator instances.
func NewSession(opts ...SessionOption) *Session { return session.New(opts...) }

// Session construction options.
var (
	// WithWorkers bounds the session's worker pool
	// (<=0 = runtime.GOMAXPROCS(0)).
	WithWorkers = session.WithWorkers
	// WithCacheCapacity bounds the build cache with LRU eviction
	// (<=0 = unbounded).
	WithCacheCapacity = session.WithCacheCapacity
	// WithProgress installs a per-job lifecycle observer.
	WithProgress = session.WithProgress
	// WithCompile overrides the build function (tests, custom toolchains).
	WithCompile = session.WithCompile
)

// Per-call run options for Session methods.
var (
	// WithScale multiplies the workload's iteration count.
	WithScale = session.WithScale
	// WithMachineConfig replaces the timing-machine configuration.
	WithMachineConfig = session.WithMachineConfig
	// WithEmulatorConfig replaces the functional-emulator configuration.
	WithEmulatorConfig = session.WithEmulatorConfig
	// WithDVILevel selects which DVI sources the hardware honours.
	WithDVILevel = session.WithDVILevel
	// WithScheme selects the save/restore elimination scheme.
	WithScheme = session.WithScheme
	// WithMaxInsts caps the run's instruction count.
	WithMaxInsts = session.WithMaxInsts
	// WithEDVI forces the binary flavour, overriding the central
	// level-derived rule.
	WithEDVI = session.WithEDVI
	// WithPolicy selects the kill placement policy for annotated builds.
	WithPolicy = session.WithPolicy
	// WithInterval sets the context-switch sampling interval.
	WithInterval = session.WithInterval
	// WithFreshBuild compiles a private, mutable copy outside the cache.
	WithFreshBuild = session.WithFreshBuild
	// WithLabel names the call in progress output and errors.
	WithLabel = session.WithLabel
	// WithSampling switches Simulate to statistical sampling: a fast
	// functional pass captures checkpoints, selected intervals run in
	// detail in parallel, and the result is an estimate with a
	// confidence interval (see SimulateSampled for the full estimate).
	WithSampling = session.WithSampling
	// WithSamplingOptions is WithSampling with full control of the plan.
	WithSamplingOptions = session.WithSamplingOptions
	// WithContexts runs N SMT hardware contexts — each executing its own
	// copy of the workload — through one shared core. Per-context stats
	// come from Session.SimulateContexts; the machine needs 32·N+1 or
	// more physical registers.
	WithContexts = session.WithContexts
	// WithFetchPolicy selects the multi-context fetch arbitration
	// (FetchRoundRobin or FetchICOUNT).
	WithFetchPolicy = session.WithFetchPolicy
)

var (
	defaultSessionOnce sync.Once
	defaultSession     *Session
)

// DefaultSession returns the lazily-initialized Session behind the
// package's one-shot functions (Simulate, Emulate, Build). Because they
// share it, repeated one-shot calls hit its build cache and simulator
// pools instead of recompiling: the first Simulate of a flavour pays the
// compile, the rest reuse it.
func DefaultSession() *Session {
	defaultSessionOnce.Do(func() {
		defaultSession = session.New(session.WithCacheCapacity(DefaultSessionCacheCapacity))
	})
	return defaultSession
}

// DefaultMachineConfig returns the paper's machine (Figure 2) with full
// DVI hardware enabled.
func DefaultMachineConfig() MachineConfig { return ooo.DefaultConfig() }

// DefaultDVIConfig returns full DVI with the standard ABI and a 16-entry
// LVM-Stack.
func DefaultDVIConfig() DVIConfig { return core.DefaultConfig() }

// Workloads returns the seven SPEC95int-like benchmarks.
func Workloads() []Workload { return workload.All() }

// WorkloadByName finds a benchmark ("compress", "go", "ijpeg", "li",
// "vortex", "perl", "gcc").
func WorkloadByName(name string) (Workload, bool) { return workload.ByName(name) }

// Build compiles and links one workload through the default Session. With
// edvi true the binary carries kill annotations (the paper's
// DVI-annotated executable). The artifacts are a private, mutable copy —
// callers may rewrite and re-link them — so Build always compiles; use
// Session.Build for cached, shared, read-only artifacts.
func Build(w Workload, scale int, edvi bool) (*Program, *Image, error) {
	return DefaultSession().Build(context.Background(), w,
		session.WithScale(scale), session.WithEDVI(edvi), session.WithFreshBuild())
}

// Simulate builds a workload (with E-DVI annotations when the machine's
// DVI level honours them; see the session layer's BuildOptionsFor rule)
// and runs it on the timing simulator. It routes through the default
// Session: repeated calls share one compile per binary flavour and reuse
// pooled machine instances.
func Simulate(w Workload, scale int, cfg MachineConfig) (MachineStats, error) {
	return DefaultSession().Simulate(context.Background(), w,
		session.WithScale(scale), session.WithMachineConfig(cfg))
}

// SimulateSampled estimates a workload's timing by statistical sampling
// through the default Session: checkpointed intervals are simulated in
// detail on the worker pool and combined into a whole-program estimate
// with a confidence interval. Architectural counts (eliminations, kills,
// faults) are exact; cycles and IPC carry the reported error bound.
func SimulateSampled(w Workload, scale int, cfg MachineConfig, opt SamplingOptions) (SampledEstimate, error) {
	return DefaultSession().SimulateSampled(context.Background(), w,
		session.WithScale(scale), session.WithMachineConfig(cfg),
		session.WithSamplingOptions(opt))
}

// NewMachine builds a simulator over an already-linked program.
func NewMachine(pr *Program, img *Image, cfg MachineConfig) *Machine {
	return ooo.New(pr, img, cfg)
}

// Emulate runs a workload on the functional reference emulator and returns
// it for inspection (checksum, statistics, DVI tracker). The binary comes
// from the default Session's build cache (flavour derived from cfg's DVI
// level); the emulator itself is fresh so the caller owns it.
func Emulate(w Workload, scale int, cfg EmulatorConfig) (*Emulator, error) {
	pr, img, err := DefaultSession().Build(context.Background(), w,
		session.WithScale(scale), session.WithEmulatorConfig(cfg))
	if err != nil {
		return nil, err
	}
	e := emu.New(pr, img, cfg)
	err = e.Run(0)
	return e, err
}

// InsertKills runs the binary rewriting DVI inserter over a program
// (paper §2's "simple binary rewriting tool"). Call before linking.
func InsertKills(pr *Program, opt RewriteOptions) (int, error) {
	return rewrite.InsertKills(pr, opt)
}

// MeasureContextSwitch samples live-register counts at preemption points
// (paper §6.2's Figure 12 methodology).
func MeasureContextSwitch(pr *Program, img *Image, cfg EmulatorConfig, interval, maxInsts uint64) (SwitchResult, error) {
	return ctxswitch.Measure(pr, img, cfg, interval, maxInsts)
}

// NewEmulator builds a functional emulator over a linked program.
func NewEmulator(pr *Program, img *Image, cfg EmulatorConfig) *Emulator {
	return emu.New(pr, img, cfg)
}

// NewThreadScheduler builds a preemptive round-robin scheduler over
// emulated threads. With useDVI true the switch sequences use
// live-stores/live-loads and lvm-save/lvm-load, eliminating dead-register
// traffic; eliminated restores are poisoned so unsound liveness would
// corrupt results.
func NewThreadScheduler(quantum uint64, useDVI bool, threads ...*Emulator) *ThreadScheduler {
	return ctxswitch.NewScheduler(quantum, useDVI, threads...)
}

// DefaultRegfileTiming returns the calibrated register file access time
// model (linear in registers, quadratic in ports; §4.2).
func DefaultRegfileTiming() RegfileTiming { return cacti.Default() }

// DefaultExperimentOptions sizes the experiments to finish in minutes.
func DefaultExperimentOptions() ExperimentOptions { return harness.DefaultOptions() }

// NewRunner builds an experiment engine. One engine should serve a whole
// report so every figure shares its memoized build cache.
func NewRunner(opt RunnerOptions) *Runner { return runner.New(opt) }

// ExperimentIDs returns every selectable experiment ID in report order
// (the nine paper figures followed by the ablations).
func ExperimentIDs() []string { return harness.FigureIDs() }

// RunAllExperiments regenerates every table and figure, writing the report
// to w. opt.Workers bounds the concurrent worker pool; the report bytes
// are identical at any setting. See cmd/dvibench for the command-line
// entry point.
func RunAllExperiments(opt ExperimentOptions, w io.Writer) error {
	return harness.RunAll(opt, w)
}

// RunExperiments runs the selected experiments (see ExperimentIDs) plus
// any dependencies through sess — one shared session, engine and build
// cache — and writes their tables to w in report order.
func RunExperiments(ctx context.Context, sess *Session, opt ExperimentOptions, ids []string, w io.Writer) error {
	return harness.RunFigures(ctx, sess, opt, ids, w)
}

// FormatAsm renders a symbolic program as assembly text — the service's
// wire format. The text reparses with ParseAsm; format→parse→format is a
// fixed point, and the reparsed program links byte-identically.
func FormatAsm(pr *Program) string { return prog.FormatAsm(pr) }

// ParseAsm parses assembly text into a symbolic program, ready for
// InsertKills and linking.
func ParseAsm(src string) (*Program, error) { return prog.ParseAsm(src) }

// NewService builds the DVI HTTP service. Mount it on an http.Server
// (cmd/dvid does exactly this) or an httptest server in tests.
func NewService(cfg ServiceConfig) *Service { return service.New(cfg) }

// NewServiceClient builds a typed client for a dvid daemon at base, e.g.
// "http://localhost:8077". A nil hc uses http.DefaultClient; production
// callers should bound calls with ServiceWithRequestTimeout (or a
// caller-side context deadline) so a stalled daemon fails the call
// instead of hanging it.
func NewServiceClient(base string, hc *http.Client, opts ...ServiceClientOption) *ServiceClient {
	return service.NewClient(base, hc, opts...)
}

// ServiceWithRequestTimeout bounds every call the client makes — one
// deadline per method call, covering streaming calls end to end.
func ServiceWithRequestTimeout(d time.Duration) ServiceClientOption {
	return service.WithRequestTimeout(d)
}
