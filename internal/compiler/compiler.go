// Package compiler lowers the mini-IR to machine code. It stands in for
// the paper's modified GCC 2.6.3 (§3): intra-procedural liveness analysis,
// register allocation that follows the calling convention's greedy
// heuristics (§5: temporaries and values not live across calls go to
// caller-saved registers; values live across calls to callee-saved
// registers), prologue/epilogue saves and restores emitted as
// live-store/live-load instructions (§5.1), and — when E-DVI is enabled —
// kill-mask insertion before calls via the binary rewriting pass.
package compiler

import (
	"fmt"
	"sort"

	"dvi/internal/ir"
	"dvi/internal/isa"
	"dvi/internal/prog"
	"dvi/internal/rewrite"
)

// Options configures compilation.
type Options struct {
	// EDVI inserts kill instructions (the paper's DVI-annotated binary).
	// Without it the output is the baseline binary: identical code except
	// for the kills.
	EDVI bool
	// Policy selects kill placement when EDVI is on.
	Policy rewrite.Policy
	// KillRegs overrides the kill candidate set (zero = callee-saved).
	KillRegs isa.RegMask
}

// Register pools. at (r1) and t9 (r25) are reserved as materialization and
// spill scratch registers.
var (
	callerPool = []isa.Reg{isa.T0, isa.T1, isa.T2, isa.T3, isa.T4, isa.T5, isa.T6, isa.T7, isa.T8}
	calleePool = []isa.Reg{isa.S0, isa.S1, isa.S2, isa.S3, isa.S4, isa.S5, isa.S6, isa.S7}

	scratch1 = isa.AT
	scratch2 = isa.T9
)

// Compile lowers the module into a linkable program.
func Compile(m *ir.Module, opt Options) (*prog.Program, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	pr := prog.New()
	for _, d := range m.Data {
		pr.AddData(d)
	}
	for _, f := range m.Funcs {
		if err := compileFunc(pr, f); err != nil {
			return nil, fmt.Errorf("compiler: %s: %w", f.Name, err)
		}
	}
	if opt.EDVI {
		if _, err := rewrite.InsertKills(pr, rewrite.Options{Policy: opt.Policy, Regs: opt.KillRegs}); err != nil {
			return nil, err
		}
	}
	return pr, nil
}

// MustCompile is Compile for known-good workload modules.
func MustCompile(m *ir.Module, opt Options) *prog.Program {
	pr, err := Compile(m, opt)
	if err != nil {
		panic(err)
	}
	return pr
}

// --- analysis ---

type valSet map[ir.Value]struct{}

func (s valSet) add(v ir.Value) {
	if v >= 0 {
		s[v] = struct{}{}
	}
}

func (s valSet) has(v ir.Value) bool {
	_, ok := s[v]
	return ok
}

// operands appends the values read by one instruction.
func operands(in ir.Instr, buf []ir.Value) []ir.Value {
	buf = buf[:0]
	switch in.Op {
	case ir.Const, ir.AddrOf, ir.Jmp:
	case ir.Call:
		buf = append(buf, in.Args...)
	case ir.CallPtr:
		buf = append(buf, in.A)
		buf = append(buf, in.Args...)
	case ir.Ret, ir.Out, ir.Load, ir.LoadB, ir.Move:
		if in.A != ir.NoValue {
			buf = append(buf, in.A)
		}
	case ir.Store, ir.StoreB, ir.Br:
		buf = append(buf, in.A, in.B)
	default: // arithmetic
		buf = append(buf, in.A)
		if !in.UseImm {
			buf = append(buf, in.B)
		}
	}
	return buf
}

type interval struct {
	v          ir.Value
	start, end int
	acrossCall bool
}

type allocation struct {
	reg   map[ir.Value]isa.Reg
	slot  map[ir.Value]int // spill slot index
	used  isa.RegMask      // callee-saved registers the function writes
	calls bool
}

// analyze computes live intervals (block-extended) and classifies values.
//
// Positions are doubled: instruction k reads its operands at 2k and writes
// its destination at 2k+1. Liveness extensions use 2*first-1 (live into a
// block: live before its first read slot) and 2*last+2 (live out of a
// block: live past its last write slot). A value is live across a call at
// read-slot c exactly when start < c && end > c; the boundary cases — an
// argument consumed at the call, a result defined by it, a value flowing
// into a block that begins with a call — all fall out correctly.
func analyze(f *ir.Func) ([]interval, []int, error) {
	// Linearize.
	blockStart := make(map[string]int)
	blockEnd := make(map[string]int)
	k := 0
	var callPos []int
	for _, b := range f.Blocks {
		blockStart[b.Name] = k
		for _, in := range b.Instrs {
			if in.Op == ir.Call || in.Op == ir.CallPtr {
				callPos = append(callPos, 2*k)
			}
			k++
		}
		blockEnd[b.Name] = k - 1
	}
	total := 2 * k

	// Block-level liveness.
	n := len(f.Blocks)
	gen := make([]valSet, n)
	def := make([]valSet, n)
	liveIn := make([]valSet, n)
	liveOut := make([]valSet, n)
	var obuf []ir.Value
	for i, b := range f.Blocks {
		gen[i], def[i] = valSet{}, valSet{}
		liveIn[i], liveOut[i] = valSet{}, valSet{}
		for _, in := range b.Instrs {
			obuf = operands(in, obuf)
			for _, v := range obuf {
				if v >= 0 && !def[i].has(v) {
					gen[i].add(v)
				}
			}
			if in.Dst != ir.NoValue {
				def[i].add(in.Dst)
			}
		}
	}
	idxOf := make(map[string]int, n)
	for i, b := range f.Blocks {
		idxOf[b.Name] = i
	}
	succsOf := func(b *ir.Block) []int {
		last := b.Instrs[len(b.Instrs)-1]
		var out []int
		switch last.Op {
		case ir.Br:
			out = append(out, idxOf[last.Then], idxOf[last.Else])
		case ir.Jmp:
			out = append(out, idxOf[last.Then])
		}
		return out
	}
	for changed := true; changed; {
		changed = false
		for i := n - 1; i >= 0; i-- {
			out := valSet{}
			for _, s := range succsOf(f.Blocks[i]) {
				for v := range liveIn[s] {
					out.add(v)
				}
			}
			in := valSet{}
			for v := range out {
				if !def[i].has(v) {
					in.add(v)
				}
			}
			for v := range gen[i] {
				in.add(v)
			}
			if len(out) != len(liveOut[i]) || len(in) != len(liveIn[i]) {
				liveOut[i], liveIn[i] = out, in
				changed = true
			} else {
				same := true
				for v := range out {
					if !liveOut[i].has(v) {
						same = false
						break
					}
				}
				for v := range in {
					if !liveIn[i].has(v) {
						same = false
						break
					}
				}
				if !same {
					liveOut[i], liveIn[i] = out, in
					changed = true
				}
			}
		}
	}

	// Intervals. Values that are never read get no interval (and so no
	// location): computing a dead call result would read a dead v0.
	used := make([]bool, f.NumValues())
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			obuf = operands(in, obuf)
			for _, v := range obuf {
				if v >= 0 {
					used[v] = true
				}
			}
		}
	}
	starts := make([]int, f.NumValues())
	ends := make([]int, f.NumValues())
	for v := range starts {
		starts[v] = total + 1
		ends[v] = -1
	}
	touch := func(v ir.Value, p int) {
		if v < 0 {
			return
		}
		if p < starts[v] {
			starts[v] = p
		}
		if p > ends[v] {
			ends[v] = p
		}
	}
	k = 0
	for i, b := range f.Blocks {
		for v := range liveIn[i] {
			touch(v, 2*blockStart[b.Name]-1)
		}
		for v := range liveOut[i] {
			touch(v, 2*blockEnd[b.Name]+2)
		}
		for _, in := range b.Instrs {
			obuf = operands(in, obuf)
			for _, v := range obuf {
				touch(v, 2*k) // read slot
			}
			touch(in.Dst, 2*k+1) // write slot
			k++
		}
	}
	// Parameters are live from before function entry.
	for p := 0; p < f.NParams; p++ {
		touch(ir.Value(p), -1)
	}

	var ivs []interval
	for v := 0; v < f.NumValues(); v++ {
		if ends[v] < 0 || !used[v] {
			continue // never defined, or defined but never read
		}
		iv := interval{v: ir.Value(v), start: starts[v], end: ends[v]}
		for _, cp := range callPos {
			if iv.start < cp && cp < iv.end {
				iv.acrossCall = true
				break
			}
		}
		ivs = append(ivs, iv)
	}
	sort.Slice(ivs, func(i, j int) bool {
		if ivs[i].start != ivs[j].start {
			return ivs[i].start < ivs[j].start
		}
		return ivs[i].v < ivs[j].v
	})
	return ivs, callPos, nil
}

// allocate performs linear-scan register allocation over the intervals.
func allocate(f *ir.Func, ivs []interval, callPos []int) allocation {
	a := allocation{
		reg:   make(map[ir.Value]isa.Reg),
		slot:  make(map[ir.Value]int),
		calls: len(callPos) > 0,
	}
	freeCaller := append([]isa.Reg(nil), callerPool...)
	freeCallee := append([]isa.Reg(nil), calleePool...)
	type active struct {
		end    int
		reg    isa.Reg
		callee bool
	}
	var act []active
	nextSlot := 0
	for _, iv := range ivs {
		// Expire.
		live := act[:0]
		for _, A := range act {
			if A.end >= iv.start {
				live = append(live, A)
				continue
			}
			if A.callee {
				freeCallee = append(freeCallee, A.reg)
			} else {
				freeCaller = append(freeCaller, A.reg)
			}
		}
		act = live

		switch {
		case iv.acrossCall:
			// Must survive calls: only a callee-saved register will do.
			if len(freeCallee) > 0 {
				r := freeCallee[0]
				freeCallee = freeCallee[1:]
				a.reg[iv.v] = r
				a.used = a.used.Set(r)
				act = append(act, active{end: iv.end, reg: r, callee: true})
				continue
			}
		default:
			if len(freeCaller) > 0 {
				r := freeCaller[0]
				freeCaller = freeCaller[1:]
				a.reg[iv.v] = r
				act = append(act, active{end: iv.end, reg: r, callee: false})
				continue
			}
			if len(freeCallee) > 0 {
				r := freeCallee[0]
				freeCallee = freeCallee[1:]
				a.reg[iv.v] = r
				a.used = a.used.Set(r)
				act = append(act, active{end: iv.end, reg: r, callee: true})
				continue
			}
		}
		// Spill to a fresh frame slot.
		a.slot[iv.v] = nextSlot
		nextSlot++
	}
	return a
}
