package compiler

import (
	"testing"

	"dvi/internal/core"
	"dvi/internal/emu"
	"dvi/internal/ir"
	"dvi/internal/isa"
	"dvi/internal/prog"
	"dvi/internal/rewrite"
)

// compileRun compiles and executes a module, returning the emulator.
func compileRun(t *testing.T, m *ir.Module, opt Options) *emu.Emulator {
	t.Helper()
	pr, err := Compile(m, opt)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	img, err := pr.Link()
	if err != nil {
		t.Fatalf("link: %v", err)
	}
	e := emu.New(pr, img, emu.Config{
		DVI:            core.DefaultConfig(),
		Scheme:         emu.ElimLVMStack,
		CheckDeadReads: true,
	})
	if err := e.Run(20_000_000); err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(e.Violations) != 0 {
		t.Fatalf("dead-value violations: %v", e.Violations)
	}
	return e
}

func TestArithmeticLowering(t *testing.T) {
	m := ir.NewModule()
	f := m.Func("main", 0)
	b := f.Block("entry")
	x := b.Const(10)
	y := b.Const(3)
	b.Out(0, b.Add(x, y))    // 13
	b.Out(0, b.Sub(x, y))    // 7
	b.Out(0, b.Mul(x, y))    // 30
	b.Out(0, b.Div(x, y))    // 3
	b.Out(0, b.Rem(x, y))    // 1
	b.Out(0, b.AddI(x, 100)) // 110
	b.Out(0, b.ShlI(x, 4))   // 160
	b.Out(0, b.AndI(x, 6))   // 2
	b.Out(0, b.Xor(x, y))    // 9
	b.Out(0, b.SltS(y, x))   // 1
	b.Ret(ir.NoValue)

	e := compileRun(t, m, Options{})
	want := []uint64{13, 7, 30, 3, 1, 110, 160, 2, 9, 1}
	for i, w := range want {
		if e.Outputs[i] != w {
			t.Errorf("output %d = %d, want %d", i, e.Outputs[i], w)
		}
	}
}

func TestLargeConstants(t *testing.T) {
	m := ir.NewModule()
	f := m.Func("main", 0)
	b := f.Block("entry")
	b.Out(0, b.Const(0x12345678))
	b.Out(0, b.Const(-123456789))
	b.Out(0, b.Const(0x1122334455667788))
	b.Out(0, b.Const(-1))
	b.Ret(ir.NoValue)
	e := compileRun(t, m, Options{})
	want := []uint64{0x12345678, uint64(0xFFFFFFFFF8A432EB), 0x1122334455667788, ^uint64(0)}
	for i, w := range want {
		if e.Outputs[i] != w {
			t.Errorf("const %d = %#x, want %#x", i, e.Outputs[i], w)
		}
	}
}

func TestControlFlowLoop(t *testing.T) {
	// sum of 1..n via a loop with a spilled-or-not accumulator.
	m := ir.NewModule()
	f := m.Func("main", 0)
	entry := f.Block("entry")
	n := entry.Const(100)
	i0 := entry.Const(1)
	s0 := entry.Const(0)
	entry.Jmp("loop")

	loop := f.Block("loop")
	// Mutable virtual registers: reuse via explicit stores into data.
	// Simpler: accumulate through memory.
	_ = i0
	_ = s0
	_ = n
	_ = loop
	m2 := ir.NewModule()
	m2.AddData(prog.DataSym{Name: "acc", Size: 16})
	f2 := m2.Func("main", 0)
	e2 := f2.Block("entry")
	base := e2.AddrOf("acc")
	zero := e2.Const(0)
	one := e2.Const(1)
	e2.Store(base, 0, zero) // sum
	e2.Store(base, 8, one)  // i
	e2.Jmp("loop")
	l := f2.Block("loop")
	lb := l.AddrOf("acc")
	sum := l.Load(lb, 0)
	i := l.Load(lb, 8)
	sum2 := l.Add(sum, i)
	i2 := l.AddI(i, 1)
	l.Store(lb, 0, sum2)
	l.Store(lb, 8, i2)
	limit := l.Const(100)
	l.Br(ir.GE, i2, limit, "done", "loop")
	d := f2.Block("done")
	db := d.AddrOf("acc")
	d.Out(0, d.Load(db, 0))
	d.Ret(ir.NoValue)

	e := compileRun(t, m2, Options{})
	if e.Outputs[0] != 4950 { // 1+..+99
		t.Errorf("sum = %d, want 4950", e.Outputs[0])
	}
}

func TestRecursiveFibInIR(t *testing.T) {
	m := ir.NewModule()
	fib := m.Func("fib", 1)
	b := fib.Block("entry")
	n := fib.Param(0)
	two := b.Const(2)
	b.Br(ir.LT, n, two, "base", "rec")
	rec := fib.Block("rec")
	a := rec.Call("fib", rec.AddI(n, -1))
	c := rec.Call("fib", rec.AddI(n, -2))
	rec.Ret(rec.Add(a, c))
	base := fib.Block("base")
	base.Ret(n)

	main := m.Func("main", 0)
	mb := main.Block("entry")
	mb.Out(0, mb.Call("fib", mb.Const(15)))
	mb.Ret(ir.NoValue)

	for _, edvi := range []bool{false, true} {
		e := compileRun(t, m, Options{EDVI: edvi})
		if e.Outputs[0] != 610 {
			t.Errorf("edvi=%v: fib(15) = %d, want 610", edvi, e.Outputs[0])
		}
		if edvi && e.Stats.Kills == 0 {
			t.Error("EDVI build executed no kills")
		}
		if !edvi && e.Stats.Kills != 0 {
			t.Error("baseline build contains kills")
		}
	}
}

func TestAcrossCallValuesSurvive(t *testing.T) {
	// x is live across two calls: it must be placed in a callee-saved
	// register or spilled, never in a caller-saved register.
	m := ir.NewModule()
	id := m.Func("id", 1)
	ib := id.Block("entry")
	ib.Ret(id.Param(0))

	main := m.Func("main", 0)
	b := main.Block("entry")
	x := b.Const(111)
	r1 := b.Call("id", b.Const(1))
	r2 := b.Call("id", b.Const(2))
	b.Out(0, b.Add(b.Add(x, r1), r2)) // 111+1+2
	b.Ret(ir.NoValue)

	e := compileRun(t, m, Options{})
	if e.Outputs[0] != 114 {
		t.Errorf("result = %d, want 114", e.Outputs[0])
	}
}

func TestSpillPressure(t *testing.T) {
	// More simultaneously-live values than registers: forces spills and
	// still computes correctly.
	m := ir.NewModule()
	f := m.Func("main", 0)
	b := f.Block("entry")
	const nVals = 40
	vals := make([]ir.Value, nVals)
	for i := range vals {
		vals[i] = b.Const(int64(i + 1))
	}
	sum := vals[0]
	for i := 1; i < nVals; i++ {
		sum = b.Add(sum, vals[i])
	}
	// Keep all original values live to the end: use them again.
	check := vals[0]
	for i := 1; i < nVals; i++ {
		check = b.Xor(check, vals[i])
	}
	b.Out(0, sum)
	b.Out(0, check)
	b.Ret(ir.NoValue)

	e := compileRun(t, m, Options{})
	if e.Outputs[0] != nVals*(nVals+1)/2 {
		t.Errorf("sum = %d", e.Outputs[0])
	}
	var xor uint64
	for i := 1; i <= nVals; i++ {
		xor ^= uint64(i)
	}
	if e.Outputs[1] != xor {
		t.Errorf("xor = %d, want %d", e.Outputs[1], xor)
	}
}

func TestSpilledValueAcrossCall(t *testing.T) {
	// Enough across-call values to exhaust the callee-saved pool: the
	// extras spill and must still survive calls.
	m := ir.NewModule()
	id := m.Func("id", 1)
	id.Block("entry").Ret(id.Param(0))

	main := m.Func("main", 0)
	b := main.Block("entry")
	const nVals = 12 // callee pool is 8
	vals := make([]ir.Value, nVals)
	for i := range vals {
		vals[i] = b.Const(int64(100 + i))
	}
	r := b.Call("id", b.Const(1))
	sum := r
	for _, v := range vals {
		sum = b.Add(sum, v)
	}
	b.Out(0, sum)
	b.Ret(ir.NoValue)

	e := compileRun(t, m, Options{})
	want := uint64(1)
	for i := 0; i < nVals; i++ {
		want += uint64(100 + i)
	}
	if e.Outputs[0] != want {
		t.Errorf("sum = %d, want %d", e.Outputs[0], want)
	}
}

func TestMemoryOps(t *testing.T) {
	m := ir.NewModule()
	m.AddData(prog.DataSym{Name: "buf", Size: 64})
	f := m.Func("main", 0)
	b := f.Block("entry")
	base := b.AddrOf("buf")
	v := b.Const(0xAB)
	b.Store(base, 16, v)
	b.StoreB(base, 3, v)
	b.Out(0, b.Load(base, 16))
	b.Out(0, b.LoadB(base, 3))
	b.Ret(ir.NoValue)
	e := compileRun(t, m, Options{})
	if e.Outputs[0] != 0xAB || e.Outputs[1] != 0xAB {
		t.Errorf("outputs = %#x %#x", e.Outputs[0], e.Outputs[1])
	}
}

func TestIndirectCall(t *testing.T) {
	m := ir.NewModule()
	dbl := m.Func("dbl", 1)
	db := dbl.Block("entry")
	db.Ret(db.Add(dbl.Param(0), dbl.Param(0)))
	trp := m.Func("trp", 1)
	tb := trp.Block("entry")
	tb.Ret(tb.MulI(trp.Param(0), 3))

	main := m.Func("main", 0)
	b := main.Block("entry")
	fp1 := b.AddrOf("dbl")
	fp2 := b.AddrOf("trp")
	b.Out(0, b.CallPtr(fp1, b.Const(21)))
	b.Out(0, b.CallPtr(fp2, b.Const(7)))
	b.Ret(ir.NoValue)

	e := compileRun(t, m, Options{})
	if e.Outputs[0] != 42 || e.Outputs[1] != 21 {
		t.Errorf("indirect calls = %d, %d", e.Outputs[0], e.Outputs[1])
	}
}

func TestFourParams(t *testing.T) {
	m := ir.NewModule()
	f := m.Func("mix", 4)
	b := f.Block("entry")
	s := b.Add(f.Param(0), b.ShlI(f.Param(1), 4))
	s = b.Add(s, b.ShlI(f.Param(2), 8))
	s = b.Add(s, b.ShlI(f.Param(3), 12))
	b.Ret(s)

	main := m.Func("main", 0)
	mb := main.Block("entry")
	mb.Out(0, mb.Call("mix", mb.Const(1), mb.Const(2), mb.Const(3), mb.Const(4)))
	mb.Ret(ir.NoValue)
	e := compileRun(t, m, Options{})
	if e.Outputs[0] != 0x4321 {
		t.Errorf("mix = %#x, want 0x4321", e.Outputs[0])
	}
}

func TestEDVIEquivalenceAndElimination(t *testing.T) {
	build := func() *ir.Module {
		m := ir.NewModule()
		work := m.Func("work", 1)
		wb := work.Block("entry")
		// Forces callee-saved usage inside work: value live across a call.
		x := wb.MulI(work.Param(0), 3)
		r := wb.Call("leaf", x)
		wb.Ret(wb.Add(x, r))
		leaf := m.Func("leaf", 1)
		leaf.Block("entry").Ret(leaf.Param(0))

		main := m.Func("main", 0)
		mb := main.Block("entry")
		mx := mb.Const(5)
		r1 := mb.Call("work", mx) // mx live across this call -> callee-saved
		y := mb.Add(mx, r1)       // last use of mx
		mb.Out(0, y)              // last use of y
		r2 := mb.Call("work", r1) // mx and y dead here: kill expected
		mb.Out(0, r2)
		mb.Ret(ir.NoValue)
		return m
	}

	base := compileRun(t, build(), Options{})
	edvi := compileRun(t, build(), Options{EDVI: true})
	if base.Checksum != edvi.Checksum {
		t.Error("EDVI build changed program results")
	}
	if edvi.Stats.SavesElim == 0 {
		t.Error("EDVI build eliminated no saves")
	}
	atDeath := compileRun(t, build(), Options{EDVI: true, Policy: rewrite.KillsAtDeath})
	if atDeath.Checksum != base.Checksum {
		t.Error("at-death EDVI build changed program results")
	}
}

func TestCompileErrors(t *testing.T) {
	m := ir.NewModule()
	f := m.Func("main", 0)
	f.Block("entry") // unterminated
	if _, err := Compile(m, Options{}); err == nil {
		t.Error("unterminated block accepted")
	}

	m2 := ir.NewModule()
	f2 := m2.Func("main", 0)
	b2 := f2.Block("entry")
	b2.Jmp("nowhere")
	if _, err := Compile(m2, Options{}); err == nil {
		t.Error("unknown jump target accepted")
	}

	m3 := ir.NewModule()
	f3 := m3.Func("main", 0)
	b3 := f3.Block("entry")
	b3.CallVoid("missing")
	b3.Ret(ir.NoValue)
	if _, err := Compile(m3, Options{}); err == nil {
		t.Error("unknown callee accepted")
	}
}

func TestCalleeSavedSavesAreLiveStores(t *testing.T) {
	m := ir.NewModule()
	id := m.Func("id", 1)
	id.Block("entry").Ret(id.Param(0))
	main := m.Func("main", 0)
	b := main.Block("entry")
	x := b.Const(9)
	r := b.Call("id", x)
	b.Out(0, b.Add(x, r)) // x across call -> callee-saved -> prologue save
	b.Ret(ir.NoValue)

	pr, err := Compile(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var lvst, lvld int
	for _, in := range pr.Proc("main").Insts {
		switch in.Op {
		case isa.LVST:
			lvst++
		case isa.LVLD:
			lvld++
		}
	}
	if lvst == 0 || lvst != lvld {
		t.Errorf("live saves/restores = %d/%d", lvst, lvld)
	}
}

func TestLeafHasNoFrame(t *testing.T) {
	m := ir.NewModule()
	leaf := m.Func("main", 1)
	b := leaf.Block("entry")
	b.Ret(b.AddI(leaf.Param(0), 1))
	pr, err := Compile(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range pr.Proc("main").Insts {
		if in.Op == isa.LVST || (in.Op == isa.ST && in.Rs2 == isa.RA) {
			t.Errorf("leaf function saves state: %v", in.Inst)
		}
	}
}
