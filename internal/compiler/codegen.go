package compiler

import (
	"fmt"

	"dvi/internal/ir"
	"dvi/internal/isa"
	"dvi/internal/prog"
)

// frame describes the generated stack layout:
//
//	sp+0 .. spill slots .. saved callee regs .. ra .. (pad to 16)
type frame struct {
	alloc     allocation
	nSlots    int
	savedRegs []isa.Reg
	saveRA    bool
	total     int64
}

func (fr *frame) slotOff(slot int) int64 { return int64(slot) * 8 }

func (fr *frame) savedOff(i int) int64 { return int64(fr.nSlots+i) * 8 }

func (fr *frame) raOff() int64 { return int64(fr.nSlots+len(fr.savedRegs)) * 8 }

func compileFunc(pr *prog.Program, f *ir.Func) error {
	ivs, callPos, err := analyze(f)
	if err != nil {
		return err
	}
	al := allocate(f, ivs, callPos)

	fr := frame{alloc: al, nSlots: len(al.slot), saveRA: al.calls}
	for _, r := range calleePool {
		if al.used.Has(r) {
			fr.savedRegs = append(fr.savedRegs, r)
		}
	}
	raw := int64(fr.nSlots+len(fr.savedRegs)) * 8
	if fr.saveRA {
		raw += 8
	}
	fr.total = (raw + 15) &^ 15

	a := pr.Assembler(f.Name)
	g := &gen{a: a, f: f, fr: &fr}

	// Prologue: frame, callee-saved live-stores, ra.
	if fr.total > 0 {
		a.Addi(isa.SP, isa.SP, -fr.total)
	}
	for i, r := range fr.savedRegs {
		a.LiveSt(r, isa.SP, fr.savedOff(i))
	}
	if fr.saveRA {
		a.St(isa.RA, isa.SP, fr.raOff())
	}
	// Home the parameters.
	argRegs := []isa.Reg{isa.A0, isa.A1, isa.A2, isa.A3}
	for p := 0; p < f.NParams; p++ {
		v := ir.Value(p)
		if r, ok := al.reg[v]; ok {
			a.Move(r, argRegs[p])
		} else if s, ok := al.slot[v]; ok {
			a.St(argRegs[p], isa.SP, fr.slotOff(s))
		} // else: parameter never used
	}

	for bi, b := range f.Blocks {
		a.Label("b_" + b.Name)
		next := ""
		if bi+1 < len(f.Blocks) {
			next = f.Blocks[bi+1].Name
		}
		for _, in := range b.Instrs {
			if err := g.instr(in, next); err != nil {
				return fmt.Errorf("block %s: %w", b.Name, err)
			}
		}
	}

	// Epilogue: live-load restores, ra, return.
	a.Label("_epi")
	for i, r := range fr.savedRegs {
		a.LiveLd(r, isa.SP, fr.savedOff(i))
	}
	if fr.saveRA {
		a.Ld(isa.RA, isa.SP, fr.raOff())
	}
	if fr.total > 0 {
		a.Addi(isa.SP, isa.SP, fr.total)
	}
	a.Ret()
	return nil
}

type gen struct {
	a  *prog.Asm
	f  *ir.Func
	fr *frame
}

// use returns a register holding v, loading spilled values into scratch.
func (g *gen) use(v ir.Value, scratch isa.Reg) (isa.Reg, error) {
	if r, ok := g.fr.alloc.reg[v]; ok {
		return r, nil
	}
	if s, ok := g.fr.alloc.slot[v]; ok {
		g.a.Ld(scratch, isa.SP, g.fr.slotOff(s))
		return scratch, nil
	}
	return 0, fmt.Errorf("value v%d has no location", v)
}

// destination returns the register to compute v into and a completion
// function that stores spilled results.
func (g *gen) destination(v ir.Value) (isa.Reg, func()) {
	if r, ok := g.fr.alloc.reg[v]; ok {
		return r, func() {}
	}
	if s, ok := g.fr.alloc.slot[v]; ok {
		off := g.fr.slotOff(s)
		return scratch1, func() { g.a.St(scratch1, isa.SP, off) }
	}
	// Unused destination: compute into scratch and drop.
	return scratch1, func() {}
}

// materialize loads an arbitrary constant into rd.
func (g *gen) materialize(rd isa.Reg, imm int64) {
	switch {
	case imm >= -(1<<15) && imm < 1<<15:
		g.a.Li(rd, imm)
	case imm >= 0 && imm < 1<<32:
		g.a.Li32(rd, uint32(imm))
	default:
		// Full 64-bit: high 32, shift, or low 32.
		g.a.Li32(rd, uint32(uint64(imm)>>32))
		g.a.Slli(rd, rd, 32)
		if low := uint32(imm); low != 0 {
			g.a.Li32(scratch2, low)
			g.a.Or(rd, rd, scratch2)
		}
	}
}

var rTypeOps = map[ir.Op]isa.Op{
	ir.Add: isa.ADD, ir.Sub: isa.SUB, ir.Mul: isa.MUL, ir.Div: isa.DIV,
	ir.Rem: isa.REM, ir.And: isa.AND, ir.Or: isa.OR, ir.Xor: isa.XOR,
	ir.Shl: isa.SLL, ir.Shr: isa.SRL, ir.Sra: isa.SRA,
	ir.SltS: isa.SLT, ir.SltU: isa.SLTU,
}

var brOps = map[ir.Cmp]isa.Op{
	ir.EQ: isa.BEQ, ir.NE: isa.BNE, ir.LT: isa.BLT,
	ir.GE: isa.BGE, ir.LTU: isa.BLTU, ir.GEU: isa.BGEU,
}

func fitsI16(v int64) bool { return v >= -(1<<15) && v < 1<<15 }

func (g *gen) instr(in ir.Instr, nextBlock string) error {
	a := g.a
	switch in.Op {
	case ir.Const:
		rd, fin := g.destination(in.Dst)
		g.materialize(rd, in.Imm)
		fin()

	case ir.AddrOf:
		rd, fin := g.destination(in.Dst)
		a.LoadAddr(rd, in.Sym)
		fin()

	case ir.Move:
		src, err := g.use(in.A, scratch2)
		if err != nil {
			return err
		}
		rd, fin := g.destination(in.Dst)
		a.Move(rd, src)
		fin()

	case ir.Load, ir.LoadB:
		if !fitsI16(in.Imm) {
			return fmt.Errorf("load offset %d out of range", in.Imm)
		}
		base, err := g.use(in.A, scratch2)
		if err != nil {
			return err
		}
		rd, fin := g.destination(in.Dst)
		if in.Op == ir.Load {
			a.Ld(rd, base, in.Imm)
		} else {
			a.Lb(rd, base, in.Imm)
		}
		fin()

	case ir.Store, ir.StoreB:
		if !fitsI16(in.Imm) {
			return fmt.Errorf("store offset %d out of range", in.Imm)
		}
		base, err := g.use(in.A, scratch1)
		if err != nil {
			return err
		}
		val, err := g.use(in.B, scratch2)
		if err != nil {
			return err
		}
		if in.Op == ir.Store {
			a.St(val, base, in.Imm)
		} else {
			a.Sb(val, base, in.Imm)
		}

	case ir.Call, ir.CallPtr:
		argRegs := []isa.Reg{isa.A0, isa.A1, isa.A2, isa.A3}
		for i, arg := range in.Args {
			if r, ok := g.fr.alloc.reg[arg]; ok {
				a.Move(argRegs[i], r)
			} else if s, ok := g.fr.alloc.slot[arg]; ok {
				a.Ld(argRegs[i], isa.SP, g.fr.slotOff(s))
			} else {
				return fmt.Errorf("call argument v%d has no location", arg)
			}
		}
		if in.Op == ir.Call {
			a.Call(in.Sym)
		} else {
			fn, err := g.use(in.A, scratch1)
			if err != nil {
				return err
			}
			a.CallReg(fn)
		}
		if in.Dst != ir.NoValue {
			if r, ok := g.fr.alloc.reg[in.Dst]; ok {
				a.Move(r, isa.V0)
			} else if s, ok := g.fr.alloc.slot[in.Dst]; ok {
				a.St(isa.V0, isa.SP, g.fr.slotOff(s))
			}
		}

	case ir.Out:
		val, err := g.use(in.A, scratch2)
		if err != nil {
			return err
		}
		a.Li(scratch1, in.Imm)
		a.Sys(scratch1, val)

	case ir.Br:
		x, err := g.use(in.A, scratch1)
		if err != nil {
			return err
		}
		y, err := g.use(in.B, scratch2)
		if err != nil {
			return err
		}
		a.Inst(isa.Inst{Op: brOps[in.Cmp], Rs1: x, Rs2: y})
		// Patch the just-emitted branch with its symbolic target.
		p := a.Proc()
		p.Insts[len(p.Insts)-1].Kind = prog.TargetBranch
		p.Insts[len(p.Insts)-1].Target = "b_" + in.Then
		if in.Else != nextBlock {
			a.Jump("b_" + in.Else)
		}

	case ir.Jmp:
		if in.Then != nextBlock {
			a.Jump("b_" + in.Then)
		}

	case ir.Ret:
		if in.A != ir.NoValue {
			if r, ok := g.fr.alloc.reg[in.A]; ok {
				a.Move(isa.V0, r)
			} else if s, ok := g.fr.alloc.slot[in.A]; ok {
				a.Ld(isa.V0, isa.SP, g.fr.slotOff(s))
			} else {
				return fmt.Errorf("return value v%d has no location", in.A)
			}
		}
		a.Jump("_epi")

	default: // arithmetic
		op, ok := rTypeOps[in.Op]
		if !ok {
			return fmt.Errorf("unhandled IR op %d", in.Op)
		}
		x, err := g.use(in.A, scratch1)
		if err != nil {
			return err
		}
		rd, fin := g.destination(in.Dst)
		if in.UseImm {
			if done := g.arithImm(op, rd, x, in.Imm); !done {
				g.materialize(scratch2, in.Imm)
				a.Inst(isa.Inst{Op: op, Rd: rd, Rs1: x, Rs2: scratch2})
			}
		} else {
			y, err := g.use(in.B, scratch2)
			if err != nil {
				return err
			}
			a.Inst(isa.Inst{Op: op, Rd: rd, Rs1: x, Rs2: y})
		}
		fin()
	}
	return nil
}

// arithImm emits an immediate-form instruction when one exists and the
// constant fits; it reports whether it emitted anything.
func (g *gen) arithImm(op isa.Op, rd, rs isa.Reg, imm int64) bool {
	a := g.a
	switch op {
	case isa.ADD:
		if fitsI16(imm) {
			a.Addi(rd, rs, imm)
			return true
		}
	case isa.SUB:
		if fitsI16(-imm) {
			a.Addi(rd, rs, -imm)
			return true
		}
	case isa.AND:
		if imm >= 0 && imm < 1<<16 {
			a.Andi(rd, rs, imm)
			return true
		}
	case isa.OR:
		if imm >= 0 && imm < 1<<16 {
			a.Ori(rd, rs, imm)
			return true
		}
	case isa.XOR:
		if imm >= 0 && imm < 1<<16 {
			a.Xori(rd, rs, imm)
			return true
		}
	case isa.SLT:
		if fitsI16(imm) {
			a.Slti(rd, rs, imm)
			return true
		}
	case isa.SLL:
		a.Slli(rd, rs, imm&63)
		return true
	case isa.SRL:
		a.Srli(rd, rs, imm&63)
		return true
	case isa.SRA:
		a.Srai(rd, rs, imm&63)
		return true
	}
	return false
}
