// Package store is a content-addressed on-disk artifact store: compiled
// build images keyed by workload.BuildKey and sampled interval-result
// sets keyed by plan hash survive daemon restarts and are shared across
// processes pointed at the same directory.
//
// Every entry is one flat file whose first line is a header carrying a
// magic, the artifact kind, the payload's sha256 and length, and the
// logical key; the payload follows verbatim. Writes are crash-safe
// (temp file in the same directory, fsync, rename); reads re-hash the
// payload and compare against the header — an entry that fails the
// checksum, has a malformed header, or answers for the wrong key is
// moved into a quarantine/ subdirectory and reported as a miss, never
// served. A byte budget evicts least-recently-used entries (recency is
// file mtime, bumped on hit, so LRU order survives restarts too).
package store

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Artifact kinds. Kinds namespace keys: a build image and a sampled
// record for the same workload never collide.
const (
	BuildKind   = "build"   // annotated assembly text of a linked program
	SampledKind = "sampled" // interval-result set for one sampling plan
)

const (
	magic         = "dvistore1"
	fileExt       = ".art"
	quarantineDir = "quarantine"
	// maxHeaderBytes caps how far readHeader scans for the header's
	// newline — far beyond any legitimate header (magic, kind, a sha256,
	// a length, and a quoted key), so hitting it means the file is not
	// an entry.
	maxHeaderBytes = 64 << 10
)

// Options configure Open.
type Options struct {
	// Dir is the store directory; created if missing.
	Dir string
	// Budget bounds the total payload bytes kept on disk; <= 0 means
	// unbounded. A single entry larger than the whole budget is kept
	// anyway — a budget that cannot hold one artifact would make the
	// store useless rather than small.
	Budget int64
	// TamperWrite, when non-nil, may mutate the encoded file bytes
	// before they hit disk. It exists ONLY for fault injection in
	// tests (internal/faults corrupts payloads to exercise the
	// quarantine path); production code must leave it nil.
	TamperWrite func(kind, key string, data []byte) []byte
}

// Store is a concurrency-safe handle on one store directory. Multiple
// processes may share a directory: writes are atomic renames and reads
// verify checksums, so the worst cross-process race is a redundant
// fill, never a torn artifact.
type Store struct {
	dir    string
	budget int64
	tamper func(kind, key string, data []byte) []byte

	mu      sync.Mutex
	entries map[string]*entry // file stem -> entry
	// Doubly-linked LRU list; head is most recently used.
	head, tail *entry
	bytes      int64

	hits        atomic.Int64
	misses      atomic.Int64
	puts        atomic.Int64
	evictions   atomic.Int64
	quarantined atomic.Int64
	errors      atomic.Int64
}

// entry is one on-disk artifact tracked in the LRU index.
type entry struct {
	id         string // file stem: kind-hash
	kind, key  string
	size       int64 // full file size, header included
	prev, next *entry
}

// Stats is a snapshot of store traffic counters.
type Stats struct {
	Hits        int64 // Get calls served from a verified entry
	Misses      int64 // Get calls with no (servable) entry
	Puts        int64 // successful writes
	Evictions   int64 // entries dropped by the byte budget
	Quarantined int64 // corrupt entries moved aside, never served
	Errors      int64 // I/O failures (best-effort paths)
	Entries     int   // live entries
	Bytes       int64 // bytes held by live entries
}

// id derives the file stem for (kind, key): content addressing over the
// key keeps arbitrary key strings (quoted asm hashes, plan hashes) out
// of filenames.
func id(kind, key string) string {
	sum := sha256.Sum256([]byte(key))
	return kind + "-" + hex.EncodeToString(sum[:12])
}

// Open scans dir (creating it if needed) and rebuilds the LRU index
// from file mtimes. Files with unreadable headers are quarantined
// immediately; payloads are verified lazily on Get.
func Open(opt Options) (*Store, error) {
	if opt.Dir == "" {
		return nil, fmt.Errorf("store: empty directory")
	}
	if err := os.MkdirAll(filepath.Join(opt.Dir, quarantineDir), 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	st := &Store{
		dir:     opt.Dir,
		budget:  opt.Budget,
		tamper:  opt.TamperWrite,
		entries: map[string]*entry{},
	}
	names, err := filepath.Glob(filepath.Join(opt.Dir, "*"+fileExt))
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	type scanned struct {
		e     *entry
		mtime time.Time
	}
	var found []scanned
	for _, name := range names {
		fi, err := os.Stat(name)
		if err != nil || fi.IsDir() {
			continue
		}
		kind, key, _, _, err := readHeader(name)
		if err != nil {
			st.quarantine(name)
			continue
		}
		stem := strings.TrimSuffix(filepath.Base(name), fileExt)
		found = append(found, scanned{
			e:     &entry{id: stem, kind: kind, key: key, size: fi.Size()},
			mtime: fi.ModTime(),
		})
	}
	// Oldest first so the most recently used entry ends up at the head.
	sort.Slice(found, func(i, j int) bool {
		if !found[i].mtime.Equal(found[j].mtime) {
			return found[i].mtime.Before(found[j].mtime)
		}
		return found[i].e.id < found[j].e.id
	})
	for _, s := range found {
		st.entries[s.e.id] = s.e
		st.pushFront(s.e)
		st.bytes += s.e.size
	}
	st.mu.Lock()
	victims := st.evictLocked()
	st.mu.Unlock()
	for _, v := range victims {
		os.Remove(filepath.Join(opt.Dir, v+fileExt))
	}
	return st, nil
}

// Dir returns the store directory.
func (st *Store) Dir() string { return st.dir }

// header is "dvistore1 <kind> <sha256hex> <payloadLen> <quotedKey>\n".
func header(kind, key string, payload []byte) []byte {
	sum := sha256.Sum256(payload)
	return []byte(fmt.Sprintf("%s %s %s %d %s\n",
		magic, kind, hex.EncodeToString(sum[:]), len(payload), strconv.Quote(key)))
}

// readHeader parses just the header line of an entry file.
func readHeader(name string) (kind, key, sum string, plen int, err error) {
	f, err := os.Open(name)
	if err != nil {
		return "", "", "", 0, err
	}
	defer f.Close()
	// Read until the newline, not a single Read call: a short read that
	// stops before the delimiter must not make a valid entry look
	// header-less and get it quarantined.
	line, err := bufio.NewReader(io.LimitReader(f, maxHeaderBytes)).ReadString('\n')
	if err != nil {
		return "", "", "", 0, fmt.Errorf("store: no header line")
	}
	return parseHeader(strings.TrimSuffix(line, "\n"))
}

func parseHeader(line string) (kind, key, sum string, plen int, err error) {
	fields := strings.SplitN(line, " ", 5)
	if len(fields) != 5 || fields[0] != magic {
		return "", "", "", 0, fmt.Errorf("store: malformed header")
	}
	plen, err = strconv.Atoi(fields[3])
	if err != nil || plen < 0 {
		return "", "", "", 0, fmt.Errorf("store: bad payload length")
	}
	key, err = strconv.Unquote(fields[4])
	if err != nil {
		return "", "", "", 0, fmt.Errorf("store: bad key")
	}
	return fields[1], key, fields[2], plen, nil
}

// Get returns the verified payload for (kind, key). A missing entry is
// a plain miss; an entry that fails verification is quarantined and
// reported as a miss — a corrupt artifact is never served.
func (st *Store) Get(kind, key string) ([]byte, bool) {
	stem := id(kind, key)
	st.mu.Lock()
	e, ok := st.entries[stem]
	st.mu.Unlock()
	if !ok {
		st.misses.Add(1)
		return nil, false
	}
	// All disk I/O happens outside the lock so one slow read never
	// serializes unrelated lookups (or Stats) behind it; the index is
	// re-checked before every mutation because the entry may have been
	// evicted or replaced by a concurrent Put meanwhile — the same
	// benign redundant-fill race the package already accepts across
	// processes.
	name := filepath.Join(st.dir, stem+fileExt)
	data, err := os.ReadFile(name)
	if err != nil {
		// Count an I/O error only when e was still indexed — a file
		// removed by a concurrent eviction is a plain miss, not a fault.
		if st.dropIfCurrent(e) {
			st.errors.Add(1)
		}
		st.misses.Add(1)
		return nil, false
	}
	payload, err := verify(data, kind, key)
	if err != nil {
		// Quarantine only while e is still the indexed entry: if a Put
		// replaced it since the read, the file on disk is the fresh one,
		// not the corrupt bytes just examined.
		if st.dropIfCurrent(e) {
			st.quarantine(name)
			st.quarantined.Add(1)
		}
		st.misses.Add(1)
		return nil, false
	}
	st.mu.Lock()
	if st.entries[stem] == e {
		st.unlink(e)
		st.pushFront(e)
	}
	st.mu.Unlock()
	now := time.Now()
	if err := os.Chtimes(name, now, now); err != nil {
		st.errors.Add(1) // recency bump is best-effort
	}
	st.hits.Add(1)
	return payload, true
}

// dropIfCurrent forgets e if it is still the indexed entry for its id,
// reporting whether it was; a stale pointer (the entry was evicted or
// replaced concurrently) is left alone so byte accounting stays exact.
func (st *Store) dropIfCurrent(e *entry) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.entries[e.id] != e {
		return false
	}
	st.dropLocked(e)
	return true
}

// verify checks the header against the actual bytes and returns the
// payload.
func verify(data []byte, kind, key string) ([]byte, error) {
	line, rest, ok := strings.Cut(string(data), "\n")
	if !ok {
		return nil, fmt.Errorf("store: no header line")
	}
	hkind, hkey, hsum, plen, err := parseHeader(line)
	if err != nil {
		return nil, err
	}
	if hkind != kind || hkey != key {
		return nil, fmt.Errorf("store: entry answers for %s/%q, want %s/%q", hkind, hkey, kind, key)
	}
	if len(rest) != plen {
		return nil, fmt.Errorf("store: payload length %d, header says %d", len(rest), plen)
	}
	sum := sha256.Sum256([]byte(rest))
	if hex.EncodeToString(sum[:]) != hsum {
		return nil, fmt.Errorf("store: checksum mismatch")
	}
	return []byte(rest), nil
}

// Put writes (kind, key, payload) atomically: temp file in the store
// directory, fsync, rename. An existing entry for the key is replaced.
func (st *Store) Put(kind, key string, payload []byte) error {
	stem := id(kind, key)
	data := append(header(kind, key, payload), payload...)
	if st.tamper != nil {
		data = st.tamper(kind, key, data)
	}
	// The write happens entirely outside the lock: the rename is atomic
	// and readers verify checksums, so concurrent fills for one key race
	// benignly (last rename wins) while the lock covers only the index
	// update below.
	name := filepath.Join(st.dir, stem+fileExt)
	tmp, err := os.CreateTemp(st.dir, "tmp-*")
	if err != nil {
		st.errors.Add(1)
		return fmt.Errorf("store: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		st.errors.Add(1)
		return fmt.Errorf("store: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		st.errors.Add(1)
		return fmt.Errorf("store: %w", err)
	}
	if err := tmp.Close(); err != nil {
		st.errors.Add(1)
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp.Name(), name); err != nil {
		st.errors.Add(1)
		return fmt.Errorf("store: %w", err)
	}
	st.mu.Lock()
	if old, ok := st.entries[stem]; ok {
		st.unlink(old)
		delete(st.entries, stem)
		st.bytes -= old.size
	}
	e := &entry{id: stem, kind: kind, key: key, size: int64(len(data))}
	st.entries[stem] = e
	st.pushFront(e)
	st.bytes += e.size
	victims := st.evictLocked()
	st.mu.Unlock()
	st.puts.Add(1)
	for _, v := range victims {
		os.Remove(filepath.Join(st.dir, v+fileExt))
	}
	return nil
}

// dropLocked forgets e without touching its file. Caller holds mu.
func (st *Store) dropLocked(e *entry) {
	st.unlink(e)
	delete(st.entries, e.id)
	st.bytes -= e.size
}

// quarantine moves a corrupt or unreadable file into quarantine/ for
// post-mortem inspection; it is never served again.
func (st *Store) quarantine(name string) {
	dst := filepath.Join(st.dir, quarantineDir, filepath.Base(name))
	if err := os.Rename(name, dst); err != nil {
		// Removing beats serving corruption if the rename fails.
		os.Remove(name)
	}
}

// evictLocked forgets least-recently-used entries until the store fits
// its byte budget, always keeping at least one entry, and returns the
// evicted ids. Caller holds mu and removes the victims' files after
// unlocking — file removal is disk I/O that must not run under the
// lock.
func (st *Store) evictLocked() (victims []string) {
	if st.budget <= 0 {
		return nil
	}
	for st.bytes > st.budget && len(st.entries) > 1 {
		e := st.tail
		if e == nil {
			break
		}
		victims = append(victims, e.id)
		st.dropLocked(e)
		st.evictions.Add(1)
	}
	return victims
}

// unlink removes e from the LRU list. Caller holds mu.
func (st *Store) unlink(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else if st.head == e {
		st.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else if st.tail == e {
		st.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

// pushFront makes e the most recently used entry. Caller holds mu.
func (st *Store) pushFront(e *entry) {
	e.prev, e.next = nil, st.head
	if st.head != nil {
		st.head.prev = e
	}
	st.head = e
	if st.tail == nil {
		st.tail = e
	}
}

// Stats returns a snapshot of the store's counters.
func (st *Store) Stats() Stats {
	st.mu.Lock()
	entries, bytes := len(st.entries), st.bytes
	st.mu.Unlock()
	return Stats{
		Hits:        st.hits.Load(),
		Misses:      st.misses.Load(),
		Puts:        st.puts.Load(),
		Evictions:   st.evictions.Load(),
		Quarantined: st.quarantined.Load(),
		Errors:      st.errors.Load(),
		Entries:     entries,
		Bytes:       bytes,
	}
}

// Len returns the number of live entries.
func (st *Store) Len() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.entries)
}
