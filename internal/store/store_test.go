package store_test

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"dvi/internal/faults"
	"dvi/internal/store"
	"dvi/internal/workload"
)

func open(t *testing.T, dir string, budget int64) *store.Store {
	t.Helper()
	st, err := store.Open(store.Options{Dir: dir, Budget: budget})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestStoreRoundTrip(t *testing.T) {
	st := open(t, t.TempDir(), 0)
	payload := []byte("line one\nline two\n")
	if _, ok := st.Get(store.BuildKind, "k"); ok {
		t.Fatal("hit on empty store")
	}
	if err := st.Put(store.BuildKind, "k", payload); err != nil {
		t.Fatal(err)
	}
	got, ok := st.Get(store.BuildKind, "k")
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("round trip: got (%q, %v)", got, ok)
	}
	// Kinds namespace keys: the same key under another kind is a miss.
	if _, ok := st.Get(store.SampledKind, "k"); ok {
		t.Fatal("cross-kind hit")
	}
	s := st.Stats()
	if s.Hits != 1 || s.Misses != 2 || s.Puts != 1 || s.Entries != 1 {
		t.Fatalf("stats: %+v", s)
	}
}

func TestStoreReplaceAndRestart(t *testing.T) {
	dir := t.TempDir()
	st := open(t, dir, 0)
	if err := st.Put(store.BuildKind, "k", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := st.Put(store.BuildKind, "k", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if st.Len() != 1 {
		t.Fatalf("replace should keep one entry, have %d", st.Len())
	}
	// Reopen on the same directory: the index rebuilds from disk.
	st2 := open(t, dir, 0)
	got, ok := st2.Get(store.BuildKind, "k")
	if !ok || string(got) != "v2" {
		t.Fatalf("after restart: got (%q, %v)", got, ok)
	}
}

// TestStoreCorruptionQuarantined is the core crash-safety property: a
// flipped bit anywhere in an entry makes it a miss, moved into
// quarantine/ — corrupt artifacts are never served and never retried.
func TestStoreCorruptionQuarantined(t *testing.T) {
	dir := t.TempDir()
	st := open(t, dir, 0)
	if err := st.Put(store.BuildKind, "k", []byte("precious artifact bytes")); err != nil {
		t.Fatal(err)
	}
	names, _ := filepath.Glob(filepath.Join(dir, "*.art"))
	if len(names) != 1 {
		t.Fatalf("want 1 entry file, have %v", names)
	}
	data, err := os.ReadFile(names[0])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 1
	if err := os.WriteFile(names[0], data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := st.Get(store.BuildKind, "k"); ok {
		t.Fatal("served a corrupt artifact")
	}
	if left, _ := filepath.Glob(filepath.Join(dir, "*.art")); len(left) != 0 {
		t.Fatalf("corrupt entry still live: %v", left)
	}
	if q, _ := filepath.Glob(filepath.Join(dir, "quarantine", "*.art")); len(q) != 1 {
		t.Fatalf("want 1 quarantined file, have %v", q)
	}
	s := st.Stats()
	if s.Quarantined != 1 || s.Hits != 0 {
		t.Fatalf("stats: %+v", s)
	}
	// The slot is reusable after a fresh Put.
	if err := st.Put(store.BuildKind, "k", []byte("fresh")); err != nil {
		t.Fatal(err)
	}
	if got, ok := st.Get(store.BuildKind, "k"); !ok || string(got) != "fresh" {
		t.Fatalf("refill: got (%q, %v)", got, ok)
	}
}

// TestStoreTamperedWriteNeverServed drives the same property through
// the fault injector's artifact-corruption hook, the path the chaos
// suite uses.
func TestStoreTamperedWriteNeverServed(t *testing.T) {
	inj := faults.New(faults.Plan{Seed: 7, Corrupt: 1.0})
	st, err := store.Open(store.Options{Dir: t.TempDir(), TamperWrite: inj.TamperWrite})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Put(store.BuildKind, "k", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	if _, ok := st.Get(store.BuildKind, "k"); ok {
		t.Fatal("served a tampered artifact")
	}
	if st.Stats().Quarantined != 1 {
		t.Fatalf("stats: %+v", st.Stats())
	}
	if inj.Counters().Corrupted == 0 {
		t.Fatal("injector did not record the corruption")
	}
}

func TestStoreBudgetEvictsLRU(t *testing.T) {
	dir := t.TempDir()
	// Each entry is ~88 bytes of header + 40 of payload; a 300-byte
	// budget holds two.
	st := open(t, dir, 300)
	pay := func(c byte) []byte { return bytes.Repeat([]byte{c}, 40) }
	for _, k := range []string{"a", "b", "c"} {
		if err := st.Put(store.BuildKind, k, pay(k[0])); err != nil {
			t.Fatal(err)
		}
		time.Sleep(2 * time.Millisecond) // distinct mtimes for the restart check
	}
	if _, ok := st.Get(store.BuildKind, "a"); ok {
		t.Fatal("oldest entry should have been evicted")
	}
	if _, ok := st.Get(store.BuildKind, "c"); !ok {
		t.Fatal("newest entry missing")
	}
	if st.Stats().Evictions == 0 {
		t.Fatalf("stats: %+v", st.Stats())
	}
	// LRU recency must survive a restart (it is carried by file mtime):
	// "c" was just used, so adding "d" after reopening evicts "b".
	st2 := open(t, dir, 300)
	if err := st2.Put(store.BuildKind, "d", pay('d')); err != nil {
		t.Fatal(err)
	}
	if _, ok := st2.Get(store.BuildKind, "b"); ok {
		t.Fatal("want b evicted after restart (least recently used)")
	}
	if _, ok := st2.Get(store.BuildKind, "c"); !ok {
		t.Fatal("recently used entry evicted")
	}
}

// TestStoreLongKeySurvivesReopen: a header line longer than any single
// Read is likely to return (a multi-KB key) must still parse on the
// Open scan — a short read must never make a valid entry look
// header-less and quarantine it.
func TestStoreLongKeySurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	st := open(t, dir, 0)
	key := strings.Repeat("k", 8192)
	if err := st.Put(store.BuildKind, key, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	st2 := open(t, dir, 0)
	if got, ok := st2.Get(store.BuildKind, key); !ok || string(got) != "payload" {
		t.Fatalf("after reopen: got (%q, %v)", got, ok)
	}
	if q, _ := filepath.Glob(filepath.Join(dir, "quarantine", "*.art")); len(q) != 0 {
		t.Fatalf("valid long-key entry quarantined: %v", q)
	}
}

// TestStoreConcurrentChurn hammers Get/Put/Stats from many goroutines
// (run under -race in CI): disk I/O now happens outside the index lock,
// and the benign refill races that allows must never corrupt the byte
// accounting or serve a wrong payload.
func TestStoreConcurrentChurn(t *testing.T) {
	st := open(t, t.TempDir(), 4<<10)
	keys := []string{"a", "b", "c", "d", "e", "f"}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				k := keys[(w+i)%len(keys)]
				want := bytes.Repeat([]byte(k), 100)
				if err := st.Put(store.BuildKind, k, want); err != nil {
					t.Errorf("put %s: %v", k, err)
					return
				}
				if got, ok := st.Get(store.BuildKind, k); ok && !bytes.Equal(got, want) {
					t.Errorf("get %s: wrong payload (%d bytes)", k, len(got))
					return
				}
				st.Stats()
			}
		}(w)
	}
	wg.Wait()
	s := st.Stats()
	if s.Entries == 0 || s.Bytes <= 0 {
		t.Fatalf("stats after churn: %+v", s)
	}
	// The index must agree with what a fresh scan of the directory sees.
	st2 := open(t, st.Dir(), 0)
	if st2.Len() != s.Entries {
		t.Fatalf("index has %d entries, disk has %d", s.Entries, st2.Len())
	}
}

func TestStoreAtomicWriteLeavesNoTemp(t *testing.T) {
	dir := t.TempDir()
	st := open(t, dir, 0)
	for i := 0; i < 8; i++ {
		if err := st.Put(store.BuildKind, "k", bytes.Repeat([]byte{'x'}, 1024)); err != nil {
			t.Fatal(err)
		}
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), "tmp-") {
			t.Fatalf("temp file left behind: %s", e.Name())
		}
	}
}

// TestEncodeDecodeProgram pins the build-artifact contract: a compiled,
// kill-annotated program round-trips through the store encoding into an
// identical re-encode (the asm grammar is its own canonical form), and
// the decoded image links.
func TestEncodeDecodeProgram(t *testing.T) {
	spec, ok := workload.ByName("li")
	if !ok {
		t.Fatal("workload li missing")
	}
	pr, _, err := workload.CompileSpec(spec, 1, workload.BuildOptions{EDVI: true})
	if err != nil {
		t.Fatal(err)
	}
	payload := store.EncodeProgram(pr)
	pr2, img2, err := store.DecodeProgram(payload)
	if err != nil {
		t.Fatal(err)
	}
	if img2 == nil || pr2 == nil {
		t.Fatal("nil decode result")
	}
	if again := store.EncodeProgram(pr2); !bytes.Equal(again, payload) {
		t.Fatal("decode→encode is not a fixed point")
	}
	if _, _, err := store.DecodeProgram([]byte("not asm at all \x00")); err == nil {
		t.Fatal("garbage payload decoded")
	}
}
