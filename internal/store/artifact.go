package store

import (
	"fmt"

	"dvi/internal/prog"
)

// Build artifacts persist as the textual assembly format: FormatAsm and
// ParseAsm are exact inverses (parsing a rendered program yields a
// Program whose linked image is byte-identical to the original's — the
// round-trip is pinned by prog's tests), which makes the text the ideal
// crash-safe serialization: human-inspectable, versioned by its own
// grammar, and carrying every kill annotation the compile or inference
// pass inserted, so a decoded artifact needs no re-annotation.

// EncodeProgram renders a linked program for persistence.
func EncodeProgram(pr *prog.Program) []byte {
	return []byte(prog.FormatAsm(pr))
}

// DecodeProgram parses a persisted artifact and relinks it. The caller
// verified the payload checksum already; a parse or link failure here
// means the artifact predates a grammar change — treat it as a miss and
// recompile.
func DecodeProgram(payload []byte) (*prog.Program, *prog.Image, error) {
	pr, err := prog.ParseAsm(string(payload))
	if err != nil {
		return nil, nil, fmt.Errorf("store: decode artifact: %w", err)
	}
	img, err := pr.Link()
	if err != nil {
		return nil, nil, fmt.Errorf("store: relink artifact: %w", err)
	}
	return pr, img, nil
}
