// Package isa defines the instruction set architecture used throughout the
// reproduction: a 32-register, 64-bit RISC machine with a MIPS-style ABI,
// extended with the Dead Value Information (DVI) instructions introduced by
// Martin, Roth and Fischer (MICRO-30, 1997):
//
//   - KILL: an E-DVI annotation carrying a kill mask over r8..r31,
//   - LVST/LVLD: live-store and live-load variants used for callee-saved
//     register saves and restores,
//   - LVMS/LVML: save and load the hardware Live Value Mask, used by thread
//     switch code.
//
// Instructions encode to fixed 32-bit words so that static code size (paper
// Figure 13) is meaningful.
package isa

import "fmt"

// Reg names an architectural register, r0..r31.
type Reg uint8

// NumRegs is the number of architectural integer registers.
const NumRegs = 32

// Architectural register assignments (MIPS o32 style).
const (
	Zero Reg = 0 // hardwired zero
	AT   Reg = 1 // assembler temporary (caller-saved)
	V0   Reg = 2 // return value 0 (caller-saved)
	V1   Reg = 3 // return value 1 (caller-saved)
	A0   Reg = 4 // argument 0 (caller-saved)
	A1   Reg = 5 // argument 1
	A2   Reg = 6 // argument 2
	A3   Reg = 7 // argument 3
	T0   Reg = 8 // temporary (caller-saved)
	T1   Reg = 9
	T2   Reg = 10
	T3   Reg = 11
	T4   Reg = 12
	T5   Reg = 13
	T6   Reg = 14
	T7   Reg = 15
	S0   Reg = 16 // saved (callee-saved)
	S1   Reg = 17
	S2   Reg = 18
	S3   Reg = 19
	S4   Reg = 20
	S5   Reg = 21
	S6   Reg = 22
	S7   Reg = 23
	T8   Reg = 24 // temporary (caller-saved)
	T9   Reg = 25
	K0   Reg = 26 // reserved for kernel (always treated live)
	K1   Reg = 27
	GP   Reg = 28 // global pointer (always live)
	SP   Reg = 29 // stack pointer (always live)
	FP   Reg = 30 // frame pointer / s8 (callee-saved)
	RA   Reg = 31 // return address
)

var regNames = [NumRegs]string{
	"zero", "at", "v0", "v1", "a0", "a1", "a2", "a3",
	"t0", "t1", "t2", "t3", "t4", "t5", "t6", "t7",
	"s0", "s1", "s2", "s3", "s4", "s5", "s6", "s7",
	"t8", "t9", "k0", "k1", "gp", "sp", "fp", "ra",
}

// String returns the ABI name of the register, e.g. "s0" for r16.
func (r Reg) String() string {
	if int(r) < len(regNames) {
		return regNames[r]
	}
	return fmt.Sprintf("r%d", uint8(r))
}

// RegMask is a bitset over the 32 architectural registers; bit i covers
// register i. It is the representation used by kill masks, the LVM, and the
// ABI's I-DVI masks.
type RegMask uint32

// Bit returns the mask containing only r.
func Bit(r Reg) RegMask { return 1 << uint(r) }

// Has reports whether r is in the mask.
func (m RegMask) Has(r Reg) bool { return m&Bit(r) != 0 }

// Set returns m with r added.
func (m RegMask) Set(r Reg) RegMask { return m | Bit(r) }

// Clear returns m with r removed.
func (m RegMask) Clear(r Reg) RegMask { return m &^ Bit(r) }

// Count returns the number of registers in the mask.
func (m RegMask) Count() int {
	n := 0
	for v := uint32(m); v != 0; v &= v - 1 {
		n++
	}
	return n
}

// Regs returns the registers in the mask in ascending order.
func (m RegMask) Regs() []Reg {
	var rs []Reg
	for r := Reg(0); r < NumRegs; r++ {
		if m.Has(r) {
			rs = append(rs, r)
		}
	}
	return rs
}

// String renders the mask as a brace-delimited register list.
func (m RegMask) String() string {
	s := "{"
	first := true
	for _, r := range m.Regs() {
		if !first {
			s += ","
		}
		s += r.String()
		first = false
	}
	return s + "}"
}

// MaskOf builds a mask from a register list.
func MaskOf(rs ...Reg) RegMask {
	var m RegMask
	for _, r := range rs {
		m = m.Set(r)
	}
	return m
}

// Standard ABI register classes.
var (
	// CallerSaved registers are not preserved across calls.
	CallerSaved = MaskOf(AT, V0, V1, A0, A1, A2, A3, T0, T1, T2, T3, T4, T5, T6, T7, T8, T9, RA)
	// CalleeSaved registers must be preserved by any procedure that writes them.
	CalleeSaved = MaskOf(S0, S1, S2, S3, S4, S5, S6, S7, FP)
	// AlwaysLive registers are never subject to DVI (paper §2: kill masks
	// cover "a register subset"). r0 is constant; k0/k1/gp/sp carry
	// process-wide state.
	AlwaysLive = MaskOf(Zero, K0, K1, GP, SP)
	// ArgRegs hold procedure arguments and are live at procedure entry.
	ArgRegs = MaskOf(A0, A1, A2, A3)
	// RetRegs hold return values and are live at procedure exit.
	RetRegs = MaskOf(V0, V1)
	// Killable is the set a KILL instruction can name. The encoding carries
	// a 24-bit field covering r8..r31; always-live members are ignored by
	// hardware.
	Killable = RegMask(0xFFFFFF00) &^ AlwaysLive
)

// ABI carries the calling-convention facts the hardware needs for I-DVI
// (paper §7 "Hardware and ABI interactions": I-DVI is inferred only for
// registers set in an ABI-supplied mask; a clear mask disables I-DVI).
type ABI struct {
	// DeadAtCall are registers implicitly dead when a call executes (the
	// callee's entry point): caller-saved values either were spilled by the
	// caller (so the register copy is rewritten before any read) or were
	// not live at all. Argument registers and ra are excluded — they carry
	// the callee's inputs and return linkage.
	DeadAtCall RegMask
	// DeadAtReturn are registers implicitly dead when a return executes
	// (the callee's exit, observed in the caller): everything caller-saved
	// except the value-return registers.
	DeadAtReturn RegMask
}

// DefaultABI is the standard I-DVI configuration used in all experiments.
func DefaultABI() ABI {
	return ABI{
		DeadAtCall:   CallerSaved &^ ArgRegs &^ Bit(RA),
		DeadAtReturn: CallerSaved &^ RetRegs,
	}
}

// NoIDVI returns an ABI with clear masks, disabling implicit DVI (the
// paper's debugging configuration).
func NoIDVI() ABI { return ABI{} }
