package isa

import "fmt"

// Inst is a decoded instruction. The zero value is a NOP.
//
// Field usage by format:
//
//	FmtR: Rd, Rs1, Rs2
//	FmtI: Rd, Rs1, Imm (sign-extended 16-bit); stores read Rs2 as data
//	FmtJ: Imm holds the word-aligned target address
//	FmtK: Mask holds the kill mask
//
// Store-class instructions (ST, SB, LVST, LVMS) have no destination; the
// stored data register travels in Rs2 and the encoded rd field is reused to
// carry it.
type Inst struct {
	Op   Op
	Rd   Reg
	Rs1  Reg
	Rs2  Reg
	Imm  int64   // sign-extended immediate, or absolute target for J/JAL
	Mask RegMask // KILL only

	// IsReturn marks a JR that implements a procedure return (jr ra). The
	// hardware treats returns specially (RAS, I-DVI, LVM-Stack pop); the
	// bit corresponds to the "return" hint real ISAs attach to jr ra.
	IsReturn bool
}

// WritesReg reports whether the instruction architecturally writes Rd, and
// that destination. Writes to r0 are discarded and reported as no write.
func (in Inst) WritesReg() (Reg, bool) {
	switch OpClass(in.Op) {
	case ClassIntALU, ClassIntMul, ClassIntDiv:
		if in.Op == SYS {
			return 0, false
		}
	case ClassLoad:
		if in.Op == LVML {
			return 0, false // writes the LVM, not a GPR
		}
	case ClassJump:
		if !in.Op.IsCall() {
			return 0, false
		}
	default:
		return 0, false
	}
	if in.Rd == Zero {
		return 0, false
	}
	return in.Rd, true
}

// SrcRegs returns the architectural source registers read by the
// instruction (r0 reads included; callers may ignore them since r0 is
// constant). The result is at most two registers. It allocates; hot loops
// use AppendSrcRegs with a reused buffer, or the predecoded metadata in
// prog.Image.
func (in Inst) SrcRegs() []Reg {
	return in.AppendSrcRegs(nil)
}

// AppendSrcRegs appends the instruction's source registers to dst and
// returns the extended slice. With capacity for two more elements in dst
// it does not allocate.
func (in Inst) AppendSrcRegs(dst []Reg) []Reg {
	switch in.Op {
	case NOP, HALT, KILL, J, LUI:
		return dst
	case JAL:
		return dst
	case JR, JALR:
		return append(dst, in.Rs1)
	case LD, LB, LVLD, LVML:
		return append(dst, in.Rs1)
	case ST, SB, LVST:
		return append(dst, in.Rs1, in.Rs2)
	case LVMS:
		return append(dst, in.Rs1)
	case ADDI, ANDI, ORI, XORI, SLTI, SLLI, SRLI, SRAI:
		return append(dst, in.Rs1)
	case BEQ, BNE, BLT, BGE, BLTU, BGEU:
		return append(dst, in.Rs1, in.Rs2)
	case SYS:
		return append(dst, in.Rs1, in.Rs2)
	default: // R-type arithmetic
		return append(dst, in.Rs1, in.Rs2)
	}
}

// String renders the instruction in assembler syntax.
func (in Inst) String() string {
	switch OpFormat(in.Op) {
	case FmtR:
		switch in.Op {
		case SYS:
			return fmt.Sprintf("sys %s, %s", in.Rs1, in.Rs2)
		default:
			return fmt.Sprintf("%s %s, %s, %s", in.Op, in.Rd, in.Rs1, in.Rs2)
		}
	case FmtJ:
		return fmt.Sprintf("%s 0x%x", in.Op, uint64(in.Imm))
	case FmtK:
		return fmt.Sprintf("kill %s", in.Mask)
	default:
		switch {
		case in.Op == NOP:
			return "nop"
		case in.Op == HALT:
			return "halt"
		case in.Op.IsStore():
			return fmt.Sprintf("%s %s, %d(%s)", in.Op, in.Rs2, in.Imm, in.Rs1)
		case in.Op.IsLoad():
			return fmt.Sprintf("%s %s, %d(%s)", in.Op, in.Rd, in.Imm, in.Rs1)
		case OpClass(in.Op) == ClassBranch:
			return fmt.Sprintf("%s %s, %s, %d", in.Op, in.Rs1, in.Rs2, in.Imm)
		case in.Op == JR:
			if in.IsReturn {
				return "ret"
			}
			return fmt.Sprintf("jr %s", in.Rs1)
		case in.Op == JALR:
			return fmt.Sprintf("jalr %s, %s", in.Rd, in.Rs1)
		case in.Op == LUI:
			return fmt.Sprintf("lui %s, %d", in.Rd, in.Imm)
		default:
			return fmt.Sprintf("%s %s, %s, %d", in.Op, in.Rd, in.Rs1, in.Imm)
		}
	}
}

// Encoding layout (32-bit word):
//
//	FmtR: op[31:26] rd[25:21] rs1[20:16] rs2[15:11] ret[10] zero[9:0]
//	FmtI: op[31:26] rd[25:21] rs1[20:16] imm[15:0]   (stores put Rs2 in rd)
//	FmtJ: op[31:26] target26[25:0] (word index; address = target*4)
//	FmtK: op[31:26] zero[25:24] mask24[23:0] (mask bit i covers reg i+8)
//
// JR/JALR use FmtI with the return hint in imm bit 0 for JR.

// Encode packs the instruction into its 32-bit representation.
func Encode(in Inst) uint32 {
	op := uint32(in.Op) << 26
	switch OpFormat(in.Op) {
	case FmtR:
		w := op | uint32(in.Rd)<<21 | uint32(in.Rs1)<<16 | uint32(in.Rs2)<<11
		return w
	case FmtJ:
		return op | (uint32(uint64(in.Imm)>>2) & 0x03FFFFFF)
	case FmtK:
		return op | (uint32(in.Mask>>8) & 0x00FFFFFF)
	default:
		rd := in.Rd
		if in.Op.IsStore() {
			rd = in.Rs2
		}
		imm := uint32(uint16(int16(in.Imm)))
		if in.Op == JR && in.IsReturn {
			imm = 1
		}
		return op | uint32(rd)<<21 | uint32(in.Rs1)<<16 | imm
	}
}

// Decode unpacks a 32-bit word into an Inst. Unknown opcodes decode as an
// error so corrupted images are caught early.
func Decode(w uint32) (Inst, error) {
	op := Op(w >> 26)
	if !op.Valid() {
		return Inst{}, fmt.Errorf("isa: invalid opcode %d in word %#08x", uint8(op), w)
	}
	in := Inst{Op: op}
	switch OpFormat(op) {
	case FmtR:
		in.Rd = Reg(w >> 21 & 31)
		in.Rs1 = Reg(w >> 16 & 31)
		in.Rs2 = Reg(w >> 11 & 31)
	case FmtJ:
		in.Imm = int64(w&0x03FFFFFF) << 2
		if op == JAL {
			in.Rd = RA // linkage register is implicit in the encoding
		}
	case FmtK:
		in.Mask = RegMask(w&0x00FFFFFF) << 8
	default:
		rd := Reg(w >> 21 & 31)
		in.Rs1 = Reg(w >> 16 & 31)
		in.Imm = int64(int16(uint16(w)))
		if op.IsStore() {
			in.Rs2 = rd
		} else {
			in.Rd = rd
		}
		if op == JR {
			in.IsReturn = w&1 != 0
			in.Imm = 0
		}
	}
	return in, nil
}

// InstBytes is the size of one encoded instruction in bytes.
const InstBytes = 4
