package isa

// Op is an operation code. The encoded form uses 6 bits, so at most 64
// opcodes exist.
type Op uint8

// Opcode space. Grouped by format:
//
//	R-type: op rd rs1 rs2        (register arithmetic)
//	I-type: op rd rs1 imm16      (immediates, loads, stores, branches)
//	J-type: op target26          (direct jumps and calls)
//	K-type: op mask24            (E-DVI kill)
const (
	NOP Op = iota
	HALT

	// R-type arithmetic, rd <- rs1 op rs2.
	ADD
	SUB
	MUL
	DIV // signed divide; divide by zero yields 0 (simulator convention)
	REM // signed remainder; by zero yields rs1
	AND
	OR
	XOR
	NOR
	SLL // shift left logical by rs2&63
	SRL
	SRA
	SLT  // set less than, signed
	SLTU // set less than, unsigned

	// I-type arithmetic, rd <- rs1 op signext(imm16).
	ADDI
	ANDI // zero-extended immediate
	ORI  // zero-extended immediate
	XORI // zero-extended immediate
	SLTI
	SLLI // shift by imm&63
	SRLI
	SRAI
	LUI // rd <- imm16 << 16 (rs1 ignored)

	// Memory: 64-bit words. I-type, address = rs1 + signext(imm16).
	LD // rd <- mem[addr]
	ST // mem[addr] <- rs2 (encoded in rd field's slot; see Inst)
	LB // load byte, zero-extended
	SB // store byte

	// DVI memory variants (paper §5.1). Same semantics as LD/ST when the
	// data register is live; candidates for dynamic elimination when dead.
	LVLD // live-load: restore of a callee-saved register
	LVST // live-store: save of a callee-saved register

	// Control. Branches are I-type with rs1, rs2 and a signed word offset.
	BEQ
	BNE
	BLT
	BGE
	BLTU
	BGEU
	J    // J-type: unconditional jump
	JAL  // J-type: call; ra <- return address
	JR   // I-type: jump register (rs1); JR ra is the return idiom
	JALR // I-type: indirect call through rs1; rd (normally ra) <- return address

	// DVI control (paper §2, §6).
	KILL // K-type: E-DVI; registers in mask24 (covering r8..r31) are dead
	LVMS // I-type: store the 32-bit LVM to mem[rs1+imm]
	LVML // I-type: load the LVM from mem[rs1+imm]

	// SYS is a minimal environment call used by workloads to emit a
	// checksum (rs1 selects the channel, rs2 the value).
	SYS

	numOps // sentinel
)

var opNames = [...]string{
	NOP: "nop", HALT: "halt",
	ADD: "add", SUB: "sub", MUL: "mul", DIV: "div", REM: "rem",
	AND: "and", OR: "or", XOR: "xor", NOR: "nor",
	SLL: "sll", SRL: "srl", SRA: "sra", SLT: "slt", SLTU: "sltu",
	ADDI: "addi", ANDI: "andi", ORI: "ori", XORI: "xori", SLTI: "slti",
	SLLI: "slli", SRLI: "srli", SRAI: "srai", LUI: "lui",
	LD: "ld", ST: "st", LB: "lb", SB: "sb", LVLD: "lvld", LVST: "lvst",
	BEQ: "beq", BNE: "bne", BLT: "blt", BGE: "bge", BLTU: "bltu", BGEU: "bgeu",
	J: "j", JAL: "jal", JR: "jr", JALR: "jalr",
	KILL: "kill", LVMS: "lvms", LVML: "lvml", SYS: "sys",
}

// String returns the assembler mnemonic.
func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return "op?"
}

// Valid reports whether o is a defined opcode.
func (o Op) Valid() bool { return o < numOps }

// Format classifies opcodes by encoding/operand format.
type Format uint8

const (
	FmtR Format = iota // rd, rs1, rs2
	FmtI               // rd, rs1, imm16
	FmtJ               // target26
	FmtK               // mask24
)

// OpFormat returns the encoding format of o.
func OpFormat(o Op) Format {
	switch o {
	case ADD, SUB, MUL, DIV, REM, AND, OR, XOR, NOR, SLL, SRL, SRA, SLT, SLTU, SYS:
		return FmtR
	case J, JAL:
		return FmtJ
	case KILL:
		return FmtK
	default:
		return FmtI
	}
}

// Class groups opcodes by pipeline behaviour.
type Class uint8

const (
	ClassNop Class = iota
	ClassIntALU
	ClassIntMul
	ClassIntDiv
	ClassLoad
	ClassStore
	ClassBranch // conditional branches
	ClassJump   // unconditional jumps, calls, returns
	ClassDVI    // kill: consumes decode bandwidth only
	ClassHalt
)

// OpClass returns the pipeline class of o.
func OpClass(o Op) Class {
	switch o {
	case NOP:
		return ClassNop
	case HALT:
		return ClassHalt
	case MUL:
		return ClassIntMul
	case DIV, REM:
		return ClassIntDiv
	case LD, LB, LVLD, LVML:
		return ClassLoad
	case ST, SB, LVST, LVMS:
		return ClassStore
	case BEQ, BNE, BLT, BGE, BLTU, BGEU:
		return ClassBranch
	case J, JAL, JR, JALR:
		return ClassJump
	case KILL:
		return ClassDVI
	default:
		return ClassIntALU
	}
}

// IsCall reports whether o transfers control with linkage (I-DVI call site).
func (o Op) IsCall() bool { return o == JAL || o == JALR }

// IsMem reports whether o references data memory.
func (o Op) IsMem() bool {
	c := OpClass(o)
	return c == ClassLoad || c == ClassStore
}

// IsLoad reports whether o reads data memory.
func (o Op) IsLoad() bool { return OpClass(o) == ClassLoad }

// IsStore reports whether o writes data memory.
func (o Op) IsStore() bool { return OpClass(o) == ClassStore }

// IsBranchOrJump reports whether o can redirect control flow.
func (o Op) IsBranchOrJump() bool {
	c := OpClass(o)
	return c == ClassBranch || c == ClassJump
}
