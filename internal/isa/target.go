package isa

// BranchTarget computes the control transfer target of a decoded
// instruction located at pc. Conditional branches encode a signed word
// offset relative to the next instruction; J and JAL carry an absolute
// word-aligned address. Register-indirect jumps (JR, JALR) have no static
// target and return ok=false.
func BranchTarget(pc uint64, in Inst) (target uint64, ok bool) {
	switch OpClass(in.Op) {
	case ClassBranch:
		return pc + InstBytes + uint64(in.Imm)*InstBytes, true
	case ClassJump:
		if in.Op == J || in.Op == JAL {
			return uint64(in.Imm), true
		}
	}
	return 0, false
}

// FallThrough returns the address of the next sequential instruction.
func FallThrough(pc uint64) uint64 { return pc + InstBytes }
