package isa

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRegNames(t *testing.T) {
	cases := []struct {
		r    Reg
		want string
	}{
		{Zero, "zero"}, {V0, "v0"}, {A0, "a0"}, {T0, "t0"},
		{S0, "s0"}, {S7, "s7"}, {SP, "sp"}, {FP, "fp"}, {RA, "ra"},
	}
	for _, c := range cases {
		if got := c.r.String(); got != c.want {
			t.Errorf("Reg(%d).String() = %q, want %q", c.r, got, c.want)
		}
	}
}

func TestRegMaskBasics(t *testing.T) {
	var m RegMask
	if m.Count() != 0 {
		t.Fatalf("empty mask count = %d", m.Count())
	}
	m = m.Set(S0).Set(S3).Set(RA)
	if !m.Has(S0) || !m.Has(S3) || !m.Has(RA) || m.Has(S1) {
		t.Fatalf("membership wrong: %s", m)
	}
	if m.Count() != 3 {
		t.Fatalf("count = %d, want 3", m.Count())
	}
	m = m.Clear(S3)
	if m.Has(S3) || m.Count() != 2 {
		t.Fatalf("clear failed: %s", m)
	}
	if got := MaskOf(S0, RA); got != m {
		t.Fatalf("MaskOf = %s, want %s", got, m)
	}
}

func TestRegMaskRegsRoundTrip(t *testing.T) {
	f := func(raw uint32) bool {
		m := RegMask(raw)
		var back RegMask
		for _, r := range m.Regs() {
			back = back.Set(r)
		}
		return back == m && len(m.Regs()) == m.Count()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestABIClassesArePartition(t *testing.T) {
	if CallerSaved&CalleeSaved != 0 {
		t.Errorf("caller and callee saved overlap: %s", CallerSaved&CalleeSaved)
	}
	if CallerSaved&AlwaysLive != 0 || CalleeSaved&AlwaysLive != 0 {
		t.Errorf("always-live overlaps a saved class")
	}
	all := CallerSaved | CalleeSaved | AlwaysLive
	if all != 0xFFFFFFFF {
		t.Errorf("classes do not cover the register file: %s missing", ^all)
	}
}

func TestDefaultABIMasks(t *testing.T) {
	abi := DefaultABI()
	// Arguments must be live at call; return values live at return.
	for _, r := range ArgRegs.Regs() {
		if abi.DeadAtCall.Has(r) {
			t.Errorf("arg reg %s dead at call", r)
		}
	}
	if abi.DeadAtCall.Has(RA) {
		t.Error("ra dead at call (needed to return)")
	}
	for _, r := range RetRegs.Regs() {
		if abi.DeadAtReturn.Has(r) {
			t.Errorf("ret reg %s dead at return", r)
		}
	}
	// I-DVI only ever covers caller-saved registers (paper §2).
	if abi.DeadAtCall&^CallerSaved != 0 || abi.DeadAtReturn&^CallerSaved != 0 {
		t.Error("I-DVI mask includes non-caller-saved registers")
	}
	// Temporaries are dead at both points.
	for _, r := range []Reg{T0, T7, T8, T9, AT} {
		if !abi.DeadAtCall.Has(r) || !abi.DeadAtReturn.Has(r) {
			t.Errorf("temporary %s not covered by I-DVI", r)
		}
	}
	if NoIDVI().DeadAtCall != 0 || NoIDVI().DeadAtReturn != 0 {
		t.Error("NoIDVI masks not clear")
	}
}

func TestKillableExcludesAlwaysLive(t *testing.T) {
	if Killable&AlwaysLive != 0 {
		t.Errorf("killable overlaps always-live: %s", Killable&AlwaysLive)
	}
	// Killable must cover everything a compiler kills in practice: all
	// callee-saved registers and the caller-saved temporaries r8..r31.
	for _, r := range CalleeSaved.Regs() {
		if !Killable.Has(r) {
			t.Errorf("callee-saved %s not killable", r)
		}
	}
	for _, r := range []Reg{T8, T9, RA} {
		if !Killable.Has(r) {
			t.Errorf("%s not killable", r)
		}
	}
}

func TestOpClassAndPredicates(t *testing.T) {
	cases := []struct {
		op      Op
		class   Class
		mem     bool
		load    bool
		store   bool
		call    bool
		ctlflow bool
	}{
		{ADD, ClassIntALU, false, false, false, false, false},
		{MUL, ClassIntMul, false, false, false, false, false},
		{DIV, ClassIntDiv, false, false, false, false, false},
		{LD, ClassLoad, true, true, false, false, false},
		{LVLD, ClassLoad, true, true, false, false, false},
		{ST, ClassStore, true, false, true, false, false},
		{LVST, ClassStore, true, false, true, false, false},
		{LVMS, ClassStore, true, false, true, false, false},
		{LVML, ClassLoad, true, true, false, false, false},
		{BEQ, ClassBranch, false, false, false, false, true},
		{J, ClassJump, false, false, false, false, true},
		{JAL, ClassJump, false, false, false, true, true},
		{JALR, ClassJump, false, false, false, true, true},
		{JR, ClassJump, false, false, false, false, true},
		{KILL, ClassDVI, false, false, false, false, false},
		{HALT, ClassHalt, false, false, false, false, false},
		{NOP, ClassNop, false, false, false, false, false},
	}
	for _, c := range cases {
		if got := OpClass(c.op); got != c.class {
			t.Errorf("OpClass(%s) = %v, want %v", c.op, got, c.class)
		}
		if c.op.IsMem() != c.mem || c.op.IsLoad() != c.load || c.op.IsStore() != c.store {
			t.Errorf("%s memory predicates wrong", c.op)
		}
		if c.op.IsCall() != c.call {
			t.Errorf("%s IsCall = %v", c.op, c.op.IsCall())
		}
		if c.op.IsBranchOrJump() != c.ctlflow {
			t.Errorf("%s IsBranchOrJump = %v", c.op, c.op.IsBranchOrJump())
		}
	}
}

func TestWritesReg(t *testing.T) {
	cases := []struct {
		in    Inst
		wantR Reg
		wantW bool
	}{
		{Inst{Op: ADD, Rd: T0, Rs1: T1, Rs2: T2}, T0, true},
		{Inst{Op: ADD, Rd: Zero, Rs1: T1, Rs2: T2}, 0, false},
		{Inst{Op: LD, Rd: S0, Rs1: SP, Imm: 8}, S0, true},
		{Inst{Op: LVLD, Rd: S0, Rs1: SP, Imm: 8}, S0, true},
		{Inst{Op: ST, Rs2: S0, Rs1: SP, Imm: 8}, 0, false},
		{Inst{Op: JAL, Rd: RA, Imm: 0x1000}, RA, true},
		{Inst{Op: JALR, Rd: RA, Rs1: T0}, RA, true},
		{Inst{Op: JR, Rs1: RA, IsReturn: true}, 0, false},
		{Inst{Op: KILL, Mask: MaskOf(S0)}, 0, false},
		{Inst{Op: BEQ, Rs1: T0, Rs2: T1, Imm: -4}, 0, false},
		{Inst{Op: LVML, Rs1: SP}, 0, false},
		{Inst{Op: SYS, Rs1: T0, Rs2: T1}, 0, false},
	}
	for _, c := range cases {
		r, w := c.in.WritesReg()
		if w != c.wantW || (w && r != c.wantR) {
			t.Errorf("%v WritesReg = (%s,%v), want (%s,%v)", c.in, r, w, c.wantR, c.wantW)
		}
	}
}

func TestSrcRegs(t *testing.T) {
	cases := []struct {
		in   Inst
		want []Reg
	}{
		{Inst{Op: ADD, Rd: T0, Rs1: T1, Rs2: T2}, []Reg{T1, T2}},
		{Inst{Op: ADDI, Rd: T0, Rs1: T1, Imm: 4}, []Reg{T1}},
		{Inst{Op: ST, Rs1: SP, Rs2: S0}, []Reg{SP, S0}},
		{Inst{Op: LVST, Rs1: SP, Rs2: S0}, []Reg{SP, S0}},
		{Inst{Op: LD, Rd: T0, Rs1: SP}, []Reg{SP}},
		{Inst{Op: BEQ, Rs1: T0, Rs2: T1}, []Reg{T0, T1}},
		{Inst{Op: JR, Rs1: RA, IsReturn: true}, []Reg{RA}},
		{Inst{Op: JAL, Imm: 64}, nil},
		{Inst{Op: KILL, Mask: MaskOf(S0)}, nil},
		{Inst{Op: LUI, Rd: T0, Imm: 5}, nil},
	}
	for _, c := range cases {
		got := c.in.SrcRegs()
		if len(got) != len(c.want) {
			t.Errorf("%v SrcRegs = %v, want %v", c.in, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("%v SrcRegs = %v, want %v", c.in, got, c.want)
			}
		}
	}
}

// randInst produces a random, encodable instruction.
func randInst(r *rand.Rand) Inst {
	for {
		op := Op(r.Intn(int(numOps)))
		in := Inst{Op: op}
		switch OpFormat(op) {
		case FmtR:
			in.Rd = Reg(r.Intn(32))
			in.Rs1 = Reg(r.Intn(32))
			in.Rs2 = Reg(r.Intn(32))
		case FmtJ:
			in.Imm = int64(r.Intn(1<<26)) << 2 // word-aligned 28-bit range
			if op == JAL {
				in.Rd = RA // implicit linkage register
			}
		case FmtK:
			in.Mask = RegMask(r.Uint32()) & (0xFFFFFF << 8)
		default:
			in.Rs1 = Reg(r.Intn(32))
			if op.IsStore() {
				in.Rs2 = Reg(r.Intn(32))
			} else {
				in.Rd = Reg(r.Intn(32))
			}
			in.Imm = int64(int16(r.Uint32()))
			if op == JR {
				in.Imm = 0
				in.IsReturn = r.Intn(2) == 0
			}
		}
		return in
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 20000; i++ {
		in := randInst(r)
		w := Encode(in)
		got, err := Decode(w)
		if err != nil {
			t.Fatalf("decode(%v encoded %#08x): %v", in, w, err)
		}
		if got != in {
			t.Fatalf("roundtrip %v -> %#08x -> %v", in, w, got)
		}
	}
}

func TestDecodeInvalidOpcode(t *testing.T) {
	w := uint32(uint8(numOps)) << 26
	if _, err := Decode(w); err == nil {
		t.Error("decoding invalid opcode succeeded")
	}
}

func TestKillMaskEncodingCoversKillable(t *testing.T) {
	in := Inst{Op: KILL, Mask: Killable}
	got, err := Decode(Encode(in))
	if err != nil {
		t.Fatal(err)
	}
	if got.Mask != Killable {
		t.Errorf("killable mask does not survive encoding: got %s want %s", got.Mask, Killable)
	}
	// Bits below r8 cannot be encoded and must vanish.
	in = Inst{Op: KILL, Mask: MaskOf(V0, S0)}
	got, _ = Decode(Encode(in))
	if got.Mask != MaskOf(S0) {
		t.Errorf("low mask bits should be dropped by encoding, got %s", got.Mask)
	}
}

func TestInstString(t *testing.T) {
	cases := []struct {
		in   Inst
		want string
	}{
		{Inst{Op: ADD, Rd: T0, Rs1: T1, Rs2: T2}, "add t0, t1, t2"},
		{Inst{Op: ADDI, Rd: SP, Rs1: SP, Imm: -16}, "addi sp, sp, -16"},
		{Inst{Op: LD, Rd: S0, Rs1: SP, Imm: 8}, "ld s0, 8(sp)"},
		{Inst{Op: LVST, Rs2: S0, Rs1: SP, Imm: 8}, "lvst s0, 8(sp)"},
		{Inst{Op: JR, Rs1: RA, IsReturn: true}, "ret"},
		{Inst{Op: KILL, Mask: MaskOf(S0, S1)}, "kill {s0,s1}"},
		{Inst{Op: NOP}, "nop"},
		{Inst{Op: HALT}, "halt"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}
