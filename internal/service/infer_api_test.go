package service_test

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"dvi/internal/prog"
	"dvi/internal/rewrite"
	"dvi/internal/service"
	"dvi/internal/workload"
)

// inferAsmSrc is a hand-written program with zero annotation hints: plain
// saves, no kills, a callee that clobbers a callee-saved register the
// caller never reads back. Inference must discover the dead values from
// this text alone.
const inferAsmSrc = `.entry main
.proc main
  addi sp, sp, -32
  lvst s0, 16(sp)
  lvst s1, 24(sp)
  addi s0, zero, 7
  addi s1, zero, 9
  add a0, s0, s1
  jal helper
  sys v0, zero
  lvld s1, 24(sp)
  lvld s0, 16(sp)
  addi sp, sp, 32
  ret

.proc helper
  addi sp, sp, -16
  lvst s0, 0(sp)
  add s0, a0, a0
  add v0, s0, a0
  lvld s0, 0(sp)
  addi sp, sp, 16
  ret
`

// TestAnnotateInferMode checks the acceptance criterion directly: a
// hand-written assembly program POSTed to /v1/annotate in infer mode
// receives kill annotations with zero manual hints, and the wire result
// matches the library pass byte for byte.
func TestAnnotateInferMode(t *testing.T) {
	ts := httptest.NewServer(service.New(service.Config{}))
	defer ts.Close()
	cl := service.NewClient(ts.URL, nil)

	resp, err := cl.Annotate(context.Background(), service.AnnotateRequest{
		Asm:  inferAsmSrc,
		Mode: "infer",
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Inserted == 0 || !strings.Contains(resp.Asm, "kill") {
		t.Fatalf("infer mode inserted %d kills into hint-free asm:\n%s", resp.Inserted, resp.Asm)
	}
	if _, err := prog.ParseAsm(resp.Asm); err != nil {
		t.Fatalf("inferred asm does not reparse: %v", err)
	}

	pr, err := prog.ParseAsm(inferAsmSrc)
	if err != nil {
		t.Fatal(err)
	}
	n, err := rewrite.Infer(pr, rewrite.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if n != resp.Inserted {
		t.Fatalf("service inferred %d kills, library %d", resp.Inserted, n)
	}
	if want := prog.FormatAsm(pr); resp.Asm != want {
		t.Fatal("service inferred text differs from library rewrite.Infer")
	}

	// Default and explicit "rewrite" mode still run the paper's inserter.
	if _, err := cl.Annotate(context.Background(), service.AnnotateRequest{
		Asm:  inferAsmSrc,
		Mode: "rewrite",
	}); err != nil {
		t.Fatalf("rewrite mode: %v", err)
	}

	bad := service.AnnotateRequest{Asm: inferAsmSrc, Mode: "magic"}
	if _, err := cl.Annotate(context.Background(), bad); err == nil {
		t.Fatal("unknown mode accepted")
	} else if se := new(service.Error); !asService(err, &se) || se.StatusCode != http.StatusBadRequest {
		t.Fatalf("want 400 service error, got %v", err)
	}
}

// TestAnnotateInferWorkload runs the inference pass over a compiled
// benchmark through the service and checks it against the library.
func TestAnnotateInferWorkload(t *testing.T) {
	ts := httptest.NewServer(service.New(service.Config{}))
	defer ts.Close()
	cl := service.NewClient(ts.URL, nil)

	resp, err := cl.Annotate(context.Background(), service.AnnotateRequest{
		Workload: "li",
		Mode:     "infer",
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Inserted == 0 {
		t.Fatal("inference found nothing in li")
	}

	spec, _ := workload.ByName("li")
	pr, _, err := workload.CompileSpec(spec, 1, workload.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	n, err := rewrite.Infer(pr, rewrite.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if n != resp.Inserted {
		t.Fatalf("service inferred %d kills, library %d", resp.Inserted, n)
	}
}

// TestSimulateInferFlavour drives a timing run on the inferred binary
// flavour: the build key records the flavour, eliminations happen, and
// the architectural work count matches the hand-annotated flavour
// exactly (both run to completion under the server's default budget, so
// Original() — committed work excluding annotation overhead — is
// flavour-invariant).
func TestSimulateInferFlavour(t *testing.T) {
	ts := httptest.NewServer(service.New(service.Config{}))
	defer ts.Close()
	cl := service.NewClient(ts.URL, nil)

	infer, err := cl.Simulate(context.Background(), service.SimulateRequest{
		Workload: "li",
		Infer:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if infer.BuildKey != "li/x1/infer" {
		t.Fatalf("build key %q, want li/x1/infer", infer.BuildKey)
	}
	if infer.Stats.ElimSaves == 0 || infer.Stats.ElimRests == 0 {
		t.Fatalf("inferred run eliminated nothing: saves=%d restores=%d",
			infer.Stats.ElimSaves, infer.Stats.ElimRests)
	}

	hand, err := cl.Simulate(context.Background(), service.SimulateRequest{
		Workload: "li",
	})
	if err != nil {
		t.Fatal(err)
	}
	if hand.BuildKey != "li/x1/edvi" {
		t.Fatalf("build key %q, want li/x1/edvi", hand.BuildKey)
	}
	if infer.Stats.Faults != 0 || hand.Stats.Faults != 0 {
		t.Fatalf("faults: infer %d, hand %d", infer.Stats.Faults, hand.Stats.Faults)
	}
	if got, want := infer.Stats.Emu.Original(), hand.Stats.Emu.Original(); got != want {
		t.Fatalf("inferred flavour changed the architectural work: %d vs %d insts", got, want)
	}

	// Outside full DVI the infer flag is inert, like the E-DVI rule.
	idvi, err := cl.Simulate(context.Background(), service.SimulateRequest{
		Workload: "li",
		Infer:    true,
		DVILevel: "idvi",
		MaxInsts: 200_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if idvi.BuildKey != "li/x1/plain" {
		t.Fatalf("idvi+infer build key %q, want li/x1/plain", idvi.BuildKey)
	}
}

// TestSimulateInferAsmSource checks that a client-submitted assembly
// program can run the inferred flavour end to end: the daemon parses the
// text, the inference pass annotates it, and the run eliminates
// save/restore traffic the plain run keeps.
func TestSimulateInferAsmSource(t *testing.T) {
	ts := httptest.NewServer(service.New(service.Config{}))
	defer ts.Close()
	cl := service.NewClient(ts.URL, nil)

	plain, err := cl.Simulate(context.Background(), service.SimulateRequest{
		Asm:      inferAsmSrc,
		MaxInsts: 10_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	inferred, err := cl.Simulate(context.Background(), service.SimulateRequest{
		Asm:      inferAsmSrc,
		Infer:    true,
		MaxInsts: 10_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(inferred.BuildKey, "/infer") {
		t.Fatalf("asm infer build key %q", inferred.BuildKey)
	}
	if inferred.Stats.KillsSeen == 0 {
		t.Fatal("inferred asm run committed no kills")
	}
	if got, want := inferred.Stats.Emu.Original(), plain.Stats.Emu.Original(); got != want {
		t.Fatalf("inferred asm run changed the architectural work: %d vs %d insts", got, want)
	}
}
