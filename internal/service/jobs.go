package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"

	"dvi/internal/core"
	"dvi/internal/ctxswitch"
	"dvi/internal/emu"
	"dvi/internal/isa"
	"dvi/internal/obs"
	"dvi/internal/ooo"
	"dvi/internal/prog"
	"dvi/internal/rewrite"
	"dvi/internal/runner"
	"dvi/internal/sample"
	"dvi/internal/session"
	"dvi/internal/workload"
)

// This file is the service's single execution path. Every request —
// the versioned /v2/jobs batch endpoint and the /v1 one-shot shims —
// goes through the same three stages:
//
//	prepare:  validate the wire request and freeze it into a preparedJob
//	execute:  run it on the shared session (engine pool + build cache)
//	render:   shape the runner result into the wire response
//
// The /v1 endpoints submit a one-job batch through exactly this path, so
// their response bytes are pinned by construction to what /v2 produces
// for the same job (service_test.go's golden test verifies both against
// the library).

// errDeliveryClosed cancels the engine batch when the /v2/jobs delivery
// loop has stopped consuming (the response stream broke).
var errDeliveryClosed = errors.New("service: /v2/jobs delivery closed")

// httpError is a wire-facing failure: an HTTP status plus the exact
// message the JSON error body carries.
type httpError struct {
	code int
	msg  string
}

func (e *httpError) Error() string { return e.msg }

// errf builds an httpError with a formatted message.
func errf(code int, format string, args ...any) *httpError {
	return &httpError{code: code, msg: fmt.Sprintf(format, args...)}
}

// preparedJob is one validated, ready-to-run unit of work. Engine-backed
// kinds (exact simulate, ctxswitch) carry a runner job plus a render
// hook; the rest carry a self-contained inline thunk that fills its
// result line directly. Annotate is inline because the binary rewriter
// mutates its program and therefore works on private builds outside the
// shared cache; sampled simulate is inline because the sampler is its
// own orchestration — it fans interval jobs out across the engine's
// worker pool itself.
type preparedJob struct {
	kind   string
	job    runner.Job
	render func(runner.Result, *JobResult)
	inline func(context.Context, *JobResult) *httpError
}

// engineBacked reports whether the job executes on the session's engine.
func (pj *preparedJob) engineBacked() bool { return pj.inline == nil }

// prepareJob validates one /v2 batch entry.
func (s *Server) prepareJob(jr JobRequest) (*preparedJob, *httpError) {
	payloads := 0
	for _, set := range []bool{jr.Simulate != nil, jr.CtxSwitch != nil, jr.Annotate != nil} {
		if set {
			payloads++
		}
	}
	if payloads != 1 {
		return nil, errf(http.StatusBadRequest,
			"exactly one of simulate, ctxswitch or annotate must be set (got %d)", payloads)
	}
	switch jr.Kind {
	case "simulate":
		if jr.Simulate == nil {
			return nil, errf(http.StatusBadRequest, "kind %q needs a simulate payload", jr.Kind)
		}
		return s.prepareSimulate(jr.Simulate)
	case "ctxswitch":
		if jr.CtxSwitch == nil {
			return nil, errf(http.StatusBadRequest, "kind %q needs a ctxswitch payload", jr.Kind)
		}
		return s.prepareCtxSwitch(jr.CtxSwitch)
	case "annotate":
		if jr.Annotate == nil {
			return nil, errf(http.StatusBadRequest, "kind %q needs an annotate payload", jr.Kind)
		}
		return s.prepareAnnotate(jr.Annotate)
	}
	return nil, errf(http.StatusBadRequest,
		"unknown job kind %q (want simulate, ctxswitch or annotate)", jr.Kind)
}

// simSource is the validated (source, flavour, emulator-config) triple
// shared by timing and context-switch requests — one place derives the
// binary flavour for both, so the rule cannot drift between kinds.
type simSource struct {
	spec  workload.Spec
	scale int
	bopt  workload.BuildOptions
	ecfg  emu.Config
}

// resolveSimSource validates the knobs every simulation-class request
// carries (source, dvi_level, scheme, policy, edvi, infer) in the wire
// format's canonical order, and derives the binary flavour through the
// session layer's central E-DVI rule: annotated binaries iff the DVI
// level is full, client assembly runs as written, an explicit edvi field
// wins. The infer flag swaps the annotation engine for the
// interprocedural inference pass; it needs no compiler hints, so it
// applies to submitted assembly too — and like E-DVI it is effective
// only when the hardware honours explicit annotations (level full).
func (s *Server) resolveSimSource(wl, asm string, reqScale int, dviLevel, scheme, policy string, edvi *bool, infer bool) (simSource, *httpError) {
	spec, scale, err := s.resolveSource(wl, asm, reqScale)
	if err != nil {
		return simSource{}, errf(http.StatusBadRequest, "%v", err)
	}
	level, err := parseLevel(dviLevel)
	if err != nil {
		return simSource{}, errf(http.StatusBadRequest, "%v", err)
	}
	sch, err := parseScheme(scheme)
	if err != nil {
		return simSource{}, errf(http.StatusBadRequest, "%v", err)
	}
	pol, err := parsePolicy(policy)
	if err != nil {
		return simSource{}, errf(http.StatusBadRequest, "%v", err)
	}
	bopt := session.BuildOptionsFor(level)
	bopt.Policy = pol
	if asm != "" {
		// Submitted assembly runs exactly as written unless the client
		// asks the daemon to annotate it.
		bopt.EDVI = false
	}
	if edvi != nil {
		bopt.EDVI = *edvi
	}
	if infer && level == core.Full {
		bopt.Infer = true
		bopt.EDVI = false
	}
	return simSource{spec: spec, scale: scale, bopt: bopt, ecfg: session.EmuConfigFor(level, sch)}, nil
}

// renderTrace shapes a finished run's pipeline buffer into the wire
// summary.
func renderTrace(buf *obs.PipeBuffer, format string) (*TraceSummary, error) {
	ts := &TraceSummary{
		Format:  format,
		Records: buf.Len(),
		Dropped: buf.Dropped(),
	}
	if format == "konata" {
		var sb strings.Builder
		if err := obs.WriteKonata(&sb, buf.Records()); err != nil {
			return nil, err
		}
		ts.Konata = sb.String()
		return ts, nil
	}
	ts.Events = obs.ChromeTraceEvents(buf.Records())
	return ts, nil
}

// prepareSimulate validates a timing-simulation request and freezes it
// into an engine job.
func (s *Server) prepareSimulate(req *SimulateRequest) (*preparedJob, *httpError) {
	src, herr := s.resolveSimSource(req.Workload, req.Asm, req.Scale, req.DVILevel, req.Scheme, req.Policy, req.EDVI, req.Infer)
	if herr != nil {
		return nil, herr
	}
	spec, scale, bopt := src.spec, src.scale, src.bopt

	cfg := ooo.DefaultConfig()
	cfg.Emu = src.ecfg
	req.Machine.apply(&cfg)
	cfg.MaxInsts = s.clampInsts(req.MaxInsts)

	if req.Contexts > s.cfg.MaxContexts {
		return nil, errf(http.StatusBadRequest,
			"contexts %d exceeds the %d-context limit", req.Contexts, s.cfg.MaxContexts)
	}
	fp, err := parseFetchPolicy(req.FetchPolicy)
	if err != nil {
		return nil, errf(http.StatusBadRequest, "%v", err)
	}
	cfg.Contexts = req.Contexts
	cfg.FetchPolicy = fp
	if err := cfg.CheckContexts(); err != nil {
		return nil, errf(http.StatusBadRequest, "%v", err)
	}
	if cfg.ContextCount() > 1 && req.Sampling != nil {
		return nil, errf(http.StatusBadRequest,
			"sampling is single-context (contexts=%d): checkpoints restore one architectural state", req.Contexts)
	}

	var traceBuf *obs.PipeBuffer
	traceFormat := ""
	if req.Trace != nil {
		if req.Sampling != nil {
			return nil, errf(http.StatusBadRequest,
				"trace and sampling are mutually exclusive: a sampled estimate has no contiguous pipeline to trace")
		}
		switch req.Trace.Format {
		case "", "chrome":
			traceFormat = "chrome"
		case "konata":
			traceFormat = "konata"
		default:
			return nil, errf(http.StatusBadRequest,
				"unknown trace format %q (want chrome or konata)", req.Trace.Format)
		}
		limit := req.Trace.MaxRecords
		if limit <= 0 {
			limit = defaultTraceRecords
		}
		if limit > s.cfg.MaxTraceRecords {
			limit = s.cfg.MaxTraceRecords
		}
		traceBuf = obs.NewPipeBuffer(limit)
		cfg.Trace = traceBuf
	}

	key := spec.Key(scale, bopt).String()
	job := runner.Job{
		Label:    "simulate " + key,
		Workload: spec,
		Scale:    scale,
		Build:    bopt,
		Kind:     runner.Timing,
		Machine:  cfg,
	}
	if req.Sampling != nil {
		so := sample.Options{
			Interval: req.Sampling.Interval,
			Warmup:   req.Sampling.Warmup,
			TargetCI: req.Sampling.TargetCI,
		}
		return &preparedJob{
			kind: "simulate",
			inline: func(ctx context.Context, line *JobResult) *httpError {
				out, err := s.sess.CollectSampled(ctx, []runner.Job{job}, so)
				if err != nil {
					return errf(http.StatusBadRequest, "%v", err)
				}
				res, est := out[0], out[0].Sampled
				s.met.observeSim(res.Timing)
				s.met.observeSampled(est.RelCI)
				_, rspan := obs.StartSpan(ctx, "render")
				defer rspan.End()
				line.Simulate = &SimulateResponse{
					Workload: spec.Name,
					Scale:    scale,
					BuildKey: key,
					MaxInsts: cfg.MaxInsts,
					IPC:      est.IPC,
					Stats:    res.Timing,
					Sampled: &SampledSummary{
						Interval:      est.Interval,
						Warmup:        est.Warmup,
						Intervals:     est.Intervals,
						Measured:      est.Measured,
						TotalInsts:    est.TotalInsts,
						DetailedInsts: est.DetailedInsts,
						CIHalfWidth:   est.CIHalfWidth,
						RelCI:         est.RelCI,
						Confidence:    est.Confidence,
					},
				}
				return nil
			},
		}, nil
	}
	return &preparedJob{
		kind: "simulate",
		job:  job,
		render: func(res runner.Result, line *JobResult) {
			st := res.Timing
			s.met.observeSim(st)
			line.Simulate = &SimulateResponse{
				Workload: spec.Name,
				Scale:    scale,
				BuildKey: key,
				MaxInsts: cfg.MaxInsts,
				IPC:      st.IPC(),
				Stats:    st,
				CtxStats: res.CtxStats,
			}
			if traceBuf != nil {
				ts, err := renderTrace(traceBuf, traceFormat)
				if err != nil {
					// Rendering is pure formatting over an in-memory
					// buffer; a failure means a renderer bug, not a bad
					// request. Surface it on the line rather than
					// dropping the whole result.
					line.Error = fmt.Sprintf("render trace: %v", err)
					return
				}
				line.Simulate.Trace = ts
			}
		},
	}, nil
}

// prepareCtxSwitch validates a context-switch sampling request.
func (s *Server) prepareCtxSwitch(req *CtxSwitchRequest) (*preparedJob, *httpError) {
	src, herr := s.resolveSimSource(req.Workload, req.Asm, req.Scale, req.DVILevel, req.Scheme, req.Policy, req.EDVI, req.Infer)
	if herr != nil {
		return nil, herr
	}
	spec, scale, bopt, ecfg := src.spec, src.scale, src.bopt, src.ecfg

	key := spec.Key(scale, bopt).String()
	return &preparedJob{
		kind: "ctxswitch",
		job: runner.Job{
			Label:     "ctxswitch " + key,
			Workload:  spec,
			Scale:     scale,
			Build:     bopt,
			Kind:      runner.CtxSwitch,
			Emu:       ecfg,
			EmuBudget: s.clampInsts(req.MaxInsts),
			Interval:  req.Interval,
		},
		render: func(res runner.Result, line *JobResult) {
			line.CtxSwitch = &CtxSwitchResponse{
				Workload: spec.Name,
				Scale:    scale,
				BuildKey: key,
				SaveSet:  ctxswitch.SaveSet,
				Result:   res.Switch,
			}
		},
	}, nil
}

// prepareAnnotate validates a kill-insertion request and freezes it into
// a thunk. The rewriter mutates its program, so the thunk always works on
// a fresh private build (never the shared cache) and runs inline at its
// slot in the result stream — it is compile-bound, not simulation-bound.
func (s *Server) prepareAnnotate(req *AnnotateRequest) (*preparedJob, *httpError) {
	policy, err := parsePolicy(req.Policy)
	if err != nil {
		return nil, errf(http.StatusBadRequest, "%v", err)
	}
	noPrune := req.NoPrune
	var infer bool
	switch req.Mode {
	case "", "rewrite":
	case "infer":
		infer = true
	default:
		return nil, errf(http.StatusBadRequest,
			"unknown mode %q (want rewrite or infer)", req.Mode)
	}

	// finish runs the selected annotation engine over a private program
	// and shapes the response; shared by both sources.
	finish := func(pr *prog.Program) (*AnnotateResponse, *httpError) {
		annotate := rewrite.InsertKills
		if infer {
			annotate = rewrite.Infer
		}
		inserted, err := annotate(pr, rewrite.Options{Policy: policy, NoPrune: noPrune})
		if err != nil {
			return nil, errf(http.StatusBadRequest, "rewrite: %v", err)
		}
		img, err := pr.Link()
		if err != nil {
			return nil, errf(http.StatusBadRequest, "link: %v", err)
		}
		var perProc []ProcKills
		for _, p := range pr.Procs {
			kills := 0
			for _, in := range p.Insts {
				if in.Op == isa.KILL {
					kills++
				}
			}
			if kills > 0 {
				perProc = append(perProc, ProcKills{Proc: p.Name, Kills: kills})
			}
		}
		return &AnnotateResponse{
			Asm:       prog.FormatAsm(pr),
			Inserted:  inserted,
			PerProc:   perProc,
			TextWords: img.TextWords(),
		}, nil
	}

	var thunk func() (*AnnotateResponse, *httpError)
	switch {
	case req.Asm != "" && req.Workload != "":
		return nil, errf(http.StatusBadRequest, "set either workload or asm, not both")
	case req.Asm != "":
		asm := req.Asm
		thunk = func() (*AnnotateResponse, *httpError) {
			pr, err := prog.ParseAsm(asm)
			if err != nil {
				return nil, errf(http.StatusBadRequest, "parse: %v", err)
			}
			return finish(pr)
		}
	case req.Workload != "":
		spec, scale, rerr := s.resolveSource(req.Workload, "", req.Scale)
		if rerr != nil {
			return nil, errf(http.StatusBadRequest, "%v", rerr)
		}
		thunk = func() (*AnnotateResponse, *httpError) {
			// A fresh, un-annotated build — never the cache's: the rewriter
			// mutates the program, and cached artifacts are shared read-only.
			pr, _, err := s.compile(spec, scale, workload.BuildOptions{})
			if err != nil {
				return nil, errf(http.StatusInternalServerError, "build %s: %v", spec.Name, err)
			}
			return finish(pr)
		}
	default:
		return nil, errf(http.StatusBadRequest, "one of workload or asm is required")
	}
	return &preparedJob{kind: "annotate", inline: func(_ context.Context, line *JobResult) *httpError {
		resp, herr := thunk()
		if herr != nil {
			return herr
		}
		line.Annotate = resp
		return nil
	}}, nil
}

// executeOne runs a single prepared job through the shared session — the
// /v1 shim path. Inline jobs (annotate, sampled simulate) run on the
// calling goroutine; engine-backed jobs submit a one-job batch. The
// returned error is either the job's failure (an *httpError for inline
// jobs; otherwise wrapped with its label, for runError to map onto a
// status) or the request context's cancellation.
func (s *Server) executeOne(ctx context.Context, pj *preparedJob) (*JobResult, error) {
	var (
		line   JobResult
		jobErr error
	)
	if !pj.engineBacked() {
		line.Kind = pj.kind
		if herr := pj.inline(ctx, &line); herr != nil {
			return nil, herr
		}
		return &line, nil
	}
	err := s.sess.Run(ctx, []runner.Job{pj.job}, func(res runner.Result) error {
		if res.Err != nil {
			jobErr = res.Err
			return nil
		}
		line.Kind = pj.kind
		_, rspan := obs.StartSpan(ctx, "render")
		pj.render(res, &line)
		rspan.End()
		return nil
	})
	if err != nil {
		return nil, err
	}
	if jobErr != nil {
		return nil, jobErr
	}
	return &line, nil
}

// ValidateJob runs one /v2 batch entry through the same prepare step
// the daemon's own handlers use, without executing it. The gateway uses
// it to validate whole batches up front with exactly the error messages
// a single-node daemon would produce. A non-nil error always maps to a
// 400-class rejection.
func (s *Server) ValidateJob(jr JobRequest) error {
	if _, herr := s.prepareJob(jr); herr != nil {
		return herr
	}
	return nil
}

// ExecuteJob validates and runs one job on the local session, returning
// the same line /v2/jobs would stream for it (Index is left zero; the
// caller owns stream positions). Failures — validation or execution —
// travel on the line's error field, mirroring /v2's per-job error
// isolation. The gateway uses this for degraded-mode local fallback
// when every backend for a key is down.
func (s *Server) ExecuteJob(ctx context.Context, jr JobRequest) JobResult {
	pj, herr := s.prepareJob(jr)
	if herr != nil {
		return JobResult{Kind: jr.Kind, Error: herr.msg}
	}
	line := JobResult{Kind: pj.kind}
	if !pj.engineBacked() {
		if herr := pj.inline(ctx, &line); herr != nil {
			line.Error = herr.msg
		}
		return line
	}
	err := s.sess.Run(ctx, []runner.Job{pj.job}, func(res runner.Result) error {
		if res.Err != nil {
			line.Error = res.Err.Error()
			return nil
		}
		pj.render(res, &line)
		return nil
	})
	if err != nil && line.Error == "" {
		line.Error = err.Error()
	}
	return line
}

// handleJobs is POST /v2/jobs: a heterogeneous job batch answered as an
// NDJSON stream in submission order. The whole batch is validated before
// the first byte of the response (any invalid job rejects the batch with
// 400), so every accepted batch streams exactly one line per job. Line i
// is flushed as soon as jobs 0..i have finished while later jobs still
// run; per-job failures travel on the line's error field and do not
// abort the batch. One admission slot covers the whole batch — the
// engine's worker pool, not the client's job count, bounds concurrency.
func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	var req JobsRequest
	if err := readJSON(r, &req); err != nil {
		s.writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if len(req.Jobs) == 0 {
		s.writeError(w, http.StatusBadRequest, "at least one job is required")
		return
	}
	if len(req.Jobs) > s.cfg.MaxJobs {
		s.writeError(w, http.StatusBadRequest,
			"batch of %d jobs exceeds the %d-job limit", len(req.Jobs), s.cfg.MaxJobs)
		return
	}
	prepared := make([]*preparedJob, len(req.Jobs))
	for i, jr := range req.Jobs {
		pj, herr := s.prepareJob(jr)
		if herr != nil {
			s.writeError(w, herr.code, "jobs[%d]: %s", i, herr.msg)
			return
		}
		prepared[i] = pj
	}

	// The batch is accepted; from here every job answers on its own
	// NDJSON line and the HTTP status is already committed.
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	writeLine := func(line JobResult) error {
		if err := enc.Encode(line); err != nil {
			return err
		}
		if flusher != nil {
			flusher.Flush()
		}
		return nil
	}

	// Engine-backed jobs are submitted to the session immediately and run
	// concurrently on its worker pool, so a leading inline job never
	// delays engine submission. Inline jobs execute on this goroutine at
	// their slot in the stream: annotate is compile-bound and cheap, and
	// a sampled simulate fans its interval jobs out across the same
	// worker pool itself, so running them serially here keeps a single
	// batch from oversubscribing the machine (at the cost that an inline
	// job behind a slow simulation starts only when its slot comes up).
	var engJobs []runner.Job
	for _, pj := range prepared {
		if pj.engineBacked() {
			engJobs = append(engJobs, pj.job)
		}
	}
	done := make(chan struct{}) // closed when delivery stops consuming
	var doneOnce sync.Once
	closeDone := func() { doneOnce.Do(func() { close(done) }) }
	defer closeDone()

	resCh := make(chan runner.Result) // engine results, submission order
	runDone := make(chan struct{})
	go func() {
		defer close(runDone)
		err := s.sess.Run(r.Context(), engJobs, func(res runner.Result) error {
			select {
			case resCh <- res:
				return nil
			case <-done:
				return errDeliveryClosed
			}
		})
		_ = err // the stream is the only way to answer; see below
		close(resCh)
	}()

	for idx, pj := range prepared {
		line := JobResult{Index: idx, Kind: pj.kind}
		if pj.engineBacked() {
			res, ok := <-resCh
			if !ok {
				// The engine batch ended early: the client went away and
				// the request context cancelled it. Nothing left to say.
				break
			}
			if res.Err != nil {
				line.Error = res.Err.Error()
			} else {
				_, rspan := obs.StartSpan(r.Context(), "render")
				pj.render(res, &line)
				rspan.End()
			}
		} else if herr := pj.inline(r.Context(), &line); herr != nil {
			line.Error = herr.msg
		}
		if err := writeLine(line); err != nil {
			// The stream broke mid-batch; the response cannot change
			// status anymore. Stop consuming so the engine batch cancels.
			break
		}
	}
	closeDone()
	<-runDone
}
