package service_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"dvi"
	"dvi/internal/prog"
	"dvi/internal/rewrite"
	"dvi/internal/service"
	"dvi/internal/workload"
)

// postJSON sends body to url and returns the status code and raw body.
func postJSON(t *testing.T, url, body string) (int, []byte) {
	t.Helper()
	res, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer res.Body.Close()
	b, err := io.ReadAll(res.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return res.StatusCode, b
}

// waitFor polls cond for up to 5s.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestConcurrentSimulateCoalesceAndDrain is the load test from the PR's
// acceptance criteria: 64 concurrent /v1/simulate requests for the same
// (workload, scale, config) must trigger exactly one compile, answer
// byte-identically to a direct dvi.Simulate call, and a graceful
// shutdown must drain in-flight requests without error.
func TestConcurrentSimulateCoalesceAndDrain(t *testing.T) {
	gate := make(chan struct{})
	released := false
	svc := service.New(service.Config{
		Workers:       4,
		MaxConcurrent: 128,
		MaxQueue:      256,
		Compile: func(s workload.Spec, scale int, opt workload.BuildOptions) (*prog.Program, *prog.Image, error) {
			// Phase 2 uses "go" as a gated build so the drain below can
			// hold requests in flight deterministically.
			if s.Name == "go" {
				<-gate
			}
			return workload.CompileSpec(s, scale, opt)
		},
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hs := &http.Server{Handler: svc}
	go hs.Serve(ln)
	base := "http://" + ln.Addr().String()

	// Phase 1: 64 identical concurrent requests.
	const n = 64
	const budget = 50_000
	reqBody := fmt.Sprintf(`{"workload":"compress","max_insts":%d}`, budget)
	codes := make([]int, n)
	bodies := make([][]byte, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			codes[i], bodies[i] = postJSON(t, base+"/v1/simulate", reqBody)
		}(i)
	}
	wg.Wait()

	for i := 0; i < n; i++ {
		if codes[i] != http.StatusOK {
			t.Fatalf("request %d: HTTP %d: %s", i, codes[i], bodies[i])
		}
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Fatalf("request %d response differs from request 0:\n%s\nvs\n%s", i, bodies[i], bodies[0])
		}
	}
	hits, misses := svc.Engine().Cache().Stats()
	if misses != 1 {
		t.Fatalf("got %d compiles for %d identical requests, want exactly 1", misses, n)
	}
	if hits != n-1 {
		t.Fatalf("got %d cache hits, want %d", hits, n-1)
	}

	// The wire bytes must match a direct library call exactly.
	w, _ := dvi.WorkloadByName("compress")
	cfg := dvi.DefaultMachineConfig()
	cfg.MaxInsts = budget
	direct, err := dvi.Simulate(w, 1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	expected := service.SimulateResponse{
		Workload: "compress",
		Scale:    1,
		BuildKey: w.Key(1, workload.BuildOptions{EDVI: true}).String(),
		MaxInsts: budget,
		IPC:      direct.IPC(),
		Stats:    direct,
	}
	var want bytes.Buffer
	if err := json.NewEncoder(&want).Encode(expected); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bodies[0], want.Bytes()) {
		t.Fatalf("service response differs from direct dvi.Simulate:\nservice: %s\ndirect:  %s", bodies[0], want.Bytes())
	}

	// Phase 2: graceful shutdown drains in-flight requests. Eight
	// requests block on the gated "go" build (one compiling, seven
	// waiting on the single-flight entry), shutdown begins, then the
	// gate opens: every request must still complete cleanly.
	const d = 8
	drainCodes := make([]int, d)
	drainBodies := make([][]byte, d)
	var dwg sync.WaitGroup
	for i := 0; i < d; i++ {
		dwg.Add(1)
		go func(i int) {
			defer dwg.Done()
			drainCodes[i], drainBodies[i] = postJSON(t, base+"/v1/simulate", `{"workload":"go","max_insts":50000}`)
		}(i)
	}
	waitFor(t, "8 in-flight requests", func() bool { return svc.Inflight() == d })

	shutdownErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownErr <- hs.Shutdown(ctx)
	}()
	// Give Shutdown time to close the listener, then release the builds.
	waitFor(t, "listener closed", func() bool {
		_, err := net.DialTimeout("tcp", ln.Addr().String(), 10*time.Millisecond)
		return err != nil
	})
	if !released {
		released = true
		close(gate)
	}
	dwg.Wait()
	if err := <-shutdownErr; err != nil {
		t.Fatalf("graceful shutdown: %v", err)
	}
	for i := 0; i < d; i++ {
		if drainCodes[i] != http.StatusOK {
			t.Fatalf("drained request %d: HTTP %d: %s", i, drainCodes[i], drainBodies[i])
		}
		if !bytes.Equal(drainBodies[i], drainBodies[0]) {
			t.Fatalf("drained request %d response differs", i)
		}
	}
}

// TestAnnotateWorkloadMatchesLibrary checks the /v1/annotate wire format
// against the library pipeline: same build, same rewriter, same text.
func TestAnnotateWorkloadMatchesLibrary(t *testing.T) {
	ts := httptest.NewServer(service.New(service.Config{}))
	defer ts.Close()
	cl := service.NewClient(ts.URL, nil)

	resp, err := cl.Annotate(context.Background(), service.AnnotateRequest{Workload: "li"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Inserted == 0 {
		t.Fatal("no kills inserted into li")
	}

	spec, _ := workload.ByName("li")
	pr, _, err := workload.CompileSpec(spec, 1, workload.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	n, err := rewrite.InsertKills(pr, rewrite.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if n != resp.Inserted {
		t.Fatalf("service inserted %d kills, library %d", resp.Inserted, n)
	}
	if want := prog.FormatAsm(pr); resp.Asm != want {
		t.Fatal("service annotation text differs from library rewrite")
	}

	sum := 0
	for _, pk := range resp.PerProc {
		sum += pk.Kills
	}
	if sum != resp.Inserted {
		t.Fatalf("per-proc kills sum %d != inserted %d", sum, resp.Inserted)
	}
	if _, err := prog.ParseAsm(resp.Asm); err != nil {
		t.Fatalf("annotated asm does not reparse: %v", err)
	}
}

// TestAnnotateAsmInput drives the raw-assembly path end to end.
func TestAnnotateAsmInput(t *testing.T) {
	ts := httptest.NewServer(service.New(service.Config{}))
	defer ts.Close()
	cl := service.NewClient(ts.URL, nil)

	src := `.entry main
.proc main
  addi sp, sp, -16
  lvst s0, 0(sp)
  addi s0, zero, 7
  jal helper
  lvld s0, 0(sp)
  addi sp, sp, 16
  ret

.proc helper
  addi sp, sp, -16
  lvst s0, 0(sp)
  addi s0, zero, 1
  lvld s0, 0(sp)
  addi sp, sp, 16
  ret
`
	resp, err := cl.Annotate(context.Background(), service.AnnotateRequest{Asm: src})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Inserted == 0 || !strings.Contains(resp.Asm, "kill") {
		t.Fatalf("expected kill annotations, got %d inserted:\n%s", resp.Inserted, resp.Asm)
	}

	bad := service.AnnotateRequest{Asm: ".proc main\n  frob t0\n"}
	if _, err := cl.Annotate(context.Background(), bad); err == nil {
		t.Fatal("bad assembly accepted")
	} else if se := new(service.Error); !asService(err, &se) || se.StatusCode != http.StatusBadRequest {
		t.Fatalf("want 400 service error, got %v", err)
	}
}

// asService unwraps err into *service.Error.
func asService(err error, target **service.Error) bool {
	se, ok := err.(*service.Error)
	if ok {
		*target = se
	}
	return ok
}

// TestSimulateAsmSourceCoalesces submits the same assembly twice and
// checks the second run is served from the build cache.
func TestSimulateAsmSourceCoalesces(t *testing.T) {
	svc := service.New(service.Config{})
	ts := httptest.NewServer(svc)
	defer ts.Close()
	cl := service.NewClient(ts.URL, nil)

	src := `.entry main
.proc main
  addi t0, zero, 50
loop:
  addi t0, t0, -1
  bne t0, zero, loop
  sys zero, t0
  ret
`
	req := service.SimulateRequest{Asm: src, MaxInsts: 10_000}
	r1, err := cl.Simulate(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Stats.Committed == 0 {
		t.Fatal("no instructions committed")
	}
	if !strings.HasPrefix(r1.BuildKey, "asm:") {
		t.Fatalf("asm build key %q", r1.BuildKey)
	}
	r2, err := cl.Simulate(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Stats != r2.Stats {
		t.Fatal("identical asm requests returned different stats")
	}
	_, misses := svc.Engine().Cache().Stats()
	if misses != 1 {
		t.Fatalf("%d compiles for two identical asm requests, want 1", misses)
	}
}

// TestBackpressure429 fills the single execution slot and the one-deep
// queue, then checks the next arrival bounces with 429 immediately.
func TestBackpressure429(t *testing.T) {
	gate := make(chan struct{})
	svc := service.New(service.Config{
		MaxConcurrent: 1,
		MaxQueue:      1,
		Compile: func(s workload.Spec, scale int, opt workload.BuildOptions) (*prog.Program, *prog.Image, error) {
			<-gate
			return workload.CompileSpec(s, scale, opt)
		},
	})
	ts := httptest.NewServer(svc)
	defer ts.Close()

	type result struct {
		code int
		body []byte
	}
	results := make(chan result, 2)
	post := func(body string) {
		code, b := postJSON(t, ts.URL+"/v1/simulate", body)
		results <- result{code, b}
	}

	go post(`{"workload":"compress","max_insts":20000}`)
	waitFor(t, "first request executing", func() bool { return svc.Inflight() == 1 })
	go post(`{"workload":"li","max_insts":20000}`)
	waitFor(t, "second request queued", func() bool { return svc.QueueDepth() == 1 })

	code, body := postJSON(t, ts.URL+"/v1/simulate", `{"workload":"perl","max_insts":20000}`)
	if code != http.StatusTooManyRequests {
		t.Fatalf("overload request: HTTP %d (%s), want 429", code, body)
	}
	if !strings.Contains(string(body), "queue full") {
		t.Fatalf("429 body: %s", body)
	}

	close(gate)
	for i := 0; i < 2; i++ {
		r := <-results
		if r.code != http.StatusOK {
			t.Fatalf("queued request: HTTP %d: %s", r.code, r.body)
		}
	}
}

// TestCtxSwitchEndpoint checks the §6 sampling endpoint through the
// typed client.
func TestCtxSwitchEndpoint(t *testing.T) {
	ts := httptest.NewServer(service.New(service.Config{}))
	defer ts.Close()
	cl := service.NewClient(ts.URL, nil)

	resp, err := cl.CtxSwitch(context.Background(), service.CtxSwitchRequest{
		Workload: "li", Interval: 97, MaxInsts: 100_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Result.Samples == 0 {
		t.Fatal("no preemption samples")
	}
	if resp.Result.Reduction <= 0 || resp.Result.Reduction > 1 {
		t.Fatalf("reduction %.3f out of range", resp.Result.Reduction)
	}
	if resp.SaveSet != 31 {
		t.Fatalf("save set %d, want 31", resp.SaveSet)
	}
}

// TestWorkloadsHealthMetrics smoke-tests the read-only endpoints.
func TestWorkloadsHealthMetrics(t *testing.T) {
	ts := httptest.NewServer(service.New(service.Config{}))
	defer ts.Close()
	cl := service.NewClient(ts.URL, nil)
	ctx := context.Background()

	ws, err := cl.Workloads(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 7 {
		t.Fatalf("got %d workloads, want 7", len(ws))
	}

	// Two identical simulations: the first builds a fresh machine (cold
	// pool), the second must run on the same instance via Reset — the
	// pool-effectiveness counters on /metrics expose exactly that.
	if _, err := cl.Simulate(ctx, service.SimulateRequest{Workload: "compress", MaxInsts: 20_000}); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Simulate(ctx, service.SimulateRequest{Workload: "compress", MaxInsts: 20_000}); err != nil {
		t.Fatal(err)
	}
	h, err := cl.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.CacheMisses != 1 {
		t.Fatalf("health %+v", h)
	}

	res, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	body, _ := io.ReadAll(res.Body)
	for _, want := range []string{
		`dvid_requests_total{endpoint="simulate",code="200"} 2`,
		`dvid_request_duration_seconds_count{endpoint="simulate"} 2`,
		"dvid_build_cache_misses_total 1",
		"dvid_queue_capacity",
		"dvid_emulator_pool_fresh_total 0",
		"dvid_emulator_pool_reuse_total 0",
	} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("metrics missing %q:\n%s", want, body)
		}
	}
	// Two timing jobs ran: normally 1 fresh + 1 reuse, but a GC cycle
	// between the calls may drain the sync.Pool (2 fresh). Assert the
	// invariant parts: every job is accounted for, and the first was
	// necessarily a fresh build.
	fresh := metricValue(t, string(body), "dvid_machine_pool_fresh_total")
	reuse := metricValue(t, string(body), "dvid_machine_pool_reuse_total")
	if fresh+reuse != 2 || fresh < 1 {
		t.Fatalf("machine pool counters fresh=%d reuse=%d, want 2 jobs with >=1 fresh", fresh, reuse)
	}
}

// metricValue extracts an un-labelled counter's value from a Prometheus
// text exposition.
func metricValue(t *testing.T, body, name string) int64 {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		if v, ok := strings.CutPrefix(line, name+" "); ok {
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				t.Fatalf("metric %s: bad value %q", name, v)
			}
			return n
		}
	}
	t.Fatalf("metric %s not found in:\n%s", name, body)
	return 0
}

// TestRequestValidation covers the 4xx surface.
func TestRequestValidation(t *testing.T) {
	ts := httptest.NewServer(service.New(service.Config{}))
	defer ts.Close()

	cases := []struct {
		name, path, body string
		want             int
	}{
		{"unknown workload", "/v1/simulate", `{"workload":"spice"}`, 400},
		{"both sources", "/v1/simulate", `{"workload":"li","asm":".proc main\n"}`, 400},
		{"no source", "/v1/simulate", `{}`, 400},
		{"unknown field", "/v1/simulate", `{"workload":"li","turbo":true}`, 400},
		{"bad level", "/v1/simulate", `{"workload":"li","dvi_level":"max"}`, 400},
		{"bad scheme", "/v1/simulate", `{"workload":"li","scheme":"magic"}`, 400},
		{"bad policy", "/v1/annotate", `{"workload":"li","policy":"never"}`, 400},
		{"bad json", "/v1/ctxswitch", `{`, 400},
		{"negative contexts", "/v1/simulate", `{"workload":"li","contexts":-1}`, 400},
		{"contexts over limit", "/v1/simulate", `{"workload":"li","contexts":9}`, 400},
		{"bad fetch policy", "/v1/simulate", `{"workload":"li","contexts":2,"fetch_policy":"priority"}`, 400},
		{"contexts regfile too small", "/v1/simulate", `{"workload":"li","contexts":4}`, 400},
		{"contexts with sampling", "/v1/simulate", `{"workload":"li","contexts":2,"sampling":{}}`, 400},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			code, body := postJSON(t, ts.URL+c.path, c.body)
			if code != c.want {
				t.Fatalf("HTTP %d (%s), want %d", code, body, c.want)
			}
			var e service.Error
			if err := json.Unmarshal(body, &e); err != nil || e.Message == "" {
				t.Fatalf("error body not standard JSON: %s", body)
			}
		})
	}

	res, err := http.Get(ts.URL + "/v1/simulate")
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET simulate: HTTP %d, want 405", res.StatusCode)
	}
}

// TestSimulateMultiContext runs a 2-context machine over the wire and
// pins the per-context response shape: ctx_stats carries one entry per
// hardware context, both make progress, and additive counts sum to the
// aggregate. A single-context run must omit the field.
func TestSimulateMultiContext(t *testing.T) {
	ts := httptest.NewServer(service.New(service.Config{}))
	defer ts.Close()

	code, body := postJSON(t, ts.URL+"/v1/simulate",
		`{"workload":"li","max_insts":30000,"contexts":2,"fetch_policy":"icount"}`)
	if code != http.StatusOK {
		t.Fatalf("HTTP %d: %s", code, body)
	}
	var resp service.SimulateResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.CtxStats) != 2 {
		t.Fatalf("ctx_stats has %d entries, want 2", len(resp.CtxStats))
	}
	var committed, elim uint64
	for i, c := range resp.CtxStats {
		if c.Committed == 0 {
			t.Errorf("context %d committed nothing", i)
		}
		committed += c.Committed
		elim += c.ElimSaves + c.ElimRests
	}
	if committed != resp.Stats.Committed {
		t.Errorf("per-context committed sums to %d, aggregate %d", committed, resp.Stats.Committed)
	}
	if elim != resp.Stats.ElimSaves+resp.Stats.ElimRests {
		t.Errorf("per-context eliminations sum to %d, aggregate %d",
			elim, resp.Stats.ElimSaves+resp.Stats.ElimRests)
	}

	code, body = postJSON(t, ts.URL+"/v1/simulate", `{"workload":"li","max_insts":30000}`)
	if code != http.StatusOK {
		t.Fatalf("HTTP %d: %s", code, body)
	}
	if strings.Contains(string(body), `"ctx_stats"`) {
		t.Error("single-context response carries ctx_stats")
	}
}

// TestRequestBodyLimit413 checks that over-limit bodies answer 413 — the
// body is read and bounded before an execution slot is taken, so clients
// can tell "shrink and retry" apart from "malformed, don't retry".
func TestRequestBodyLimit413(t *testing.T) {
	ts := httptest.NewServer(service.New(service.Config{MaxRequestBytes: 128}))
	defer ts.Close()

	big := `{"asm":"` + strings.Repeat("x", 256) + `"}`
	code, body := postJSON(t, ts.URL+"/v1/simulate", big)
	if code != http.StatusRequestEntityTooLarge {
		t.Fatalf("over-limit body: HTTP %d (%s), want 413", code, body)
	}
}

// TestClientErrorCarriesMethodAndPath pins the satellite fix: a non-2xx
// response decoded by the typed client identifies which endpoint failed,
// so e.g. a 429 from /v1/simulate and one from /v1/annotate are
// distinguishable in logs.
func TestClientErrorCarriesMethodAndPath(t *testing.T) {
	ts := httptest.NewServer(service.New(service.Config{}))
	defer ts.Close()
	cl := service.NewClient(ts.URL, nil)

	_, err := cl.Simulate(context.Background(), service.SimulateRequest{Workload: "no-such-workload"})
	se := new(service.Error)
	if !asService(err, &se) {
		t.Fatalf("want *service.Error, got %v", err)
	}
	if se.Method != http.MethodPost || se.Path != "/v1/simulate" {
		t.Fatalf("error carries %q %q, want POST /v1/simulate", se.Method, se.Path)
	}
	if se.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", se.StatusCode)
	}
	if msg := se.Error(); !strings.Contains(msg, "POST /v1/simulate") {
		t.Fatalf("Error() = %q, want the method and path in it", msg)
	}

	_, err = cl.Annotate(context.Background(), service.AnnotateRequest{Workload: "no-such-workload"})
	if !asService(err, &se) {
		t.Fatalf("want *service.Error, got %v", err)
	}
	if se.Method != http.MethodPost || se.Path != "/v1/annotate" {
		t.Fatalf("error carries %q %q, want POST /v1/annotate", se.Method, se.Path)
	}
}
