package service_test

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"sort"
	"strings"
	"testing"

	"dvi/internal/obs"
	"dvi/internal/prog"
	"dvi/internal/service"
	"dvi/internal/workload"
)

// getBody GETs url and returns the status and body.
func getBody(t *testing.T, url string) (int, []byte) {
	t.Helper()
	res, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer res.Body.Close()
	b, err := io.ReadAll(res.Body)
	if err != nil {
		t.Fatal(err)
	}
	return res.StatusCode, b
}

// TestRejected429ExcludedFromLatency is the regression test for the
// admission-metrics fix: a 429 must appear in dvid_requests_total and
// the new dvid_admission_rejected_total, but NOT in the request latency
// histogram — near-instant rejections under overload used to drag the
// histogram toward zero exactly when its tail mattered.
func TestRejected429ExcludedFromLatency(t *testing.T) {
	gate := make(chan struct{})
	svc := service.New(service.Config{
		MaxConcurrent: 1,
		MaxQueue:      -1, // no queue: reject whenever the slot is busy
		Compile: func(s workload.Spec, scale int, opt workload.BuildOptions) (*prog.Program, *prog.Image, error) {
			<-gate
			return workload.CompileSpec(s, scale, opt)
		},
	})
	ts := httptest.NewServer(svc)
	defer ts.Close()

	done := make(chan struct{})
	go func() {
		defer close(done)
		code, body := postJSON(t, ts.URL+"/v1/simulate", `{"workload":"compress","max_insts":20000}`)
		if code != http.StatusOK {
			t.Errorf("gated request: HTTP %d: %s", code, body)
		}
	}()
	waitFor(t, "first request executing", func() bool { return svc.Inflight() == 1 })

	for i := 0; i < 3; i++ {
		code, _ := postJSON(t, ts.URL+"/v1/simulate", `{"workload":"li","max_insts":20000}`)
		if code != http.StatusTooManyRequests {
			t.Fatalf("overload request %d: HTTP %d, want 429", i, code)
		}
	}
	close(gate)
	<-done

	_, body := getBody(t, ts.URL+"/metrics")
	text := string(body)
	for _, want := range []string{
		`dvid_requests_total{endpoint="simulate",code="200"} 1`,
		`dvid_requests_total{endpoint="simulate",code="429"} 3`,
		`dvid_admission_rejected_total{endpoint="simulate"} 3`,
		// The latency histogram saw only the admitted request.
		`dvid_request_duration_seconds_count{endpoint="simulate"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	if t.Failed() {
		t.Logf("metrics:\n%s", text)
	}
}

// TestSimulateTraceOverTheWire covers the bounded trace option on
// /v1/simulate: both formats round-trip, the record budget clamps, and
// the invalid combinations answer 400.
func TestSimulateTraceOverTheWire(t *testing.T) {
	ts := httptest.NewServer(service.New(service.Config{}))
	defer ts.Close()
	cl := service.NewClient(ts.URL, nil)
	ctx := context.Background()

	resp, err := cl.Simulate(ctx, service.SimulateRequest{
		Workload: "compress", MaxInsts: 20_000,
		Trace: &service.TraceSpec{Format: "chrome"},
	})
	if err != nil {
		t.Fatal(err)
	}
	tr := resp.Trace
	if tr == nil {
		t.Fatal("no trace in response")
	}
	if tr.Format != "chrome" || len(tr.Events) == 0 || tr.Records == 0 {
		t.Fatalf("chrome trace: %+v", tr)
	}
	for _, ev := range tr.Events {
		if ev.Ph != "X" || ev.Dur == 0 {
			t.Fatalf("bad event %+v", ev)
		}
	}

	// The konata format returns the log as one blob, and a tiny
	// max_records must clamp the buffer and report drops.
	resp, err = cl.Simulate(ctx, service.SimulateRequest{
		Workload: "compress", MaxInsts: 20_000,
		Trace: &service.TraceSpec{Format: "konata", MaxRecords: 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	tr = resp.Trace
	if tr == nil || !strings.HasPrefix(tr.Konata, "Kanata\t0004\n") {
		t.Fatalf("konata trace: %+v", tr)
	}
	if tr.Records != 10 || tr.Dropped == 0 {
		t.Fatalf("10-record budget: records=%d dropped=%d", tr.Records, tr.Dropped)
	}

	// Stats must be identical with and without tracing — the tracer
	// observes the pipeline, it must not perturb it.
	plain, err := cl.Simulate(ctx, service.SimulateRequest{Workload: "compress", MaxInsts: 20_000})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Stats != resp.Stats || plain.IPC != resp.IPC {
		t.Fatalf("tracing changed the run: %+v vs %+v", plain.Stats, resp.Stats)
	}

	code, body := postJSON(t, ts.URL+"/v1/simulate",
		`{"workload":"compress","max_insts":20000,"trace":{"format":"svg"}}`)
	if code != http.StatusBadRequest || !strings.Contains(string(body), "unknown trace format") {
		t.Fatalf("bad format: HTTP %d: %s", code, body)
	}
	code, body = postJSON(t, ts.URL+"/v1/simulate",
		`{"workload":"compress","max_insts":20000,"trace":{},"sampling":{}}`)
	if code != http.StatusBadRequest || !strings.Contains(string(body), "mutually exclusive") {
		t.Fatalf("trace+sampling: HTTP %d: %s", code, body)
	}
}

// TestDebugTraceRecentSpanTree is the acceptance check for the
// orchestration plane: a sampled /v1/simulate request must leave a
// complete span tree — queue-wait, execute, sample with build/scan/
// interval jobs/aggregate, render — on /debug/trace/recent.
func TestDebugTraceRecentSpanTree(t *testing.T) {
	ts := httptest.NewServer(service.New(service.Config{}))
	defer ts.Close()
	cl := service.NewClient(ts.URL, nil)

	if _, err := cl.Simulate(context.Background(), service.SimulateRequest{
		Workload: "compress", MaxInsts: 60_000,
		Sampling: &service.SamplingSpec{Interval: 2_000},
	}); err != nil {
		t.Fatal(err)
	}

	code, body := getBody(t, ts.URL+"/debug/trace/recent")
	if code != http.StatusOK {
		t.Fatalf("HTTP %d: %s", code, body)
	}
	var recent service.TraceRecent
	if err := json.Unmarshal(body, &recent); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, body)
	}
	if len(recent.Traces) == 0 {
		t.Fatal("no recorded traces")
	}
	root := recent.Traces[0] // newest first
	if root.Name != "simulate" {
		t.Fatalf("root span %q, want simulate", root.Name)
	}
	if root.Attrs["request_id"] == nil {
		t.Errorf("root span missing request_id attr: %v", root.Attrs)
	}

	// Collect all span names in the tree.
	counts := map[string]int{}
	var walk func(s *obs.SpanSnapshot)
	walk = func(s *obs.SpanSnapshot) {
		counts[s.Name]++
		for _, c := range s.Children {
			walk(c)
		}
	}
	walk(root)
	for _, phase := range []string{"queue-wait", "execute", "sample", "build", "scan", "job", "aggregate", "render"} {
		if counts[phase] == 0 {
			t.Errorf("span tree missing phase %q (have %v)", phase, counts)
		}
	}
	// Interval jobs fan out: more than one engine job span.
	if counts["job"] < 2 {
		t.Errorf("expected multiple interval job spans, got %d", counts["job"])
	}

	// The per-phase histograms fold the same tree.
	_, metricsBody := getBody(t, ts.URL+"/metrics")
	for _, want := range []string{
		`dvid_phase_duration_seconds_count{phase="sample"} 1`,
		`dvid_phase_duration_seconds_count{phase="queue-wait"} 1`,
		`dvid_sampled_runs_total 1`,
	} {
		if !strings.Contains(string(metricsBody), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestPprofAndRequestID smoke-tests the profiling surface and the
// request-ID contract: the index must serve, and X-Request-Id must be
// honoured when supplied and generated when absent.
func TestPprofAndRequestID(t *testing.T) {
	ts := httptest.NewServer(service.New(service.Config{}))
	defer ts.Close()

	code, body := getBody(t, ts.URL+"/debug/pprof/")
	if code != http.StatusOK || !strings.Contains(string(body), "goroutine") {
		t.Fatalf("pprof index: HTTP %d", code)
	}

	req, _ := http.NewRequest("POST", ts.URL+"/v1/simulate",
		strings.NewReader(`{"workload":"compress","max_insts":20000}`))
	req.Header.Set("X-Request-Id", "client-chosen-7")
	res, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, res.Body)
	res.Body.Close()
	if got := res.Header.Get("X-Request-Id"); got != "client-chosen-7" {
		t.Fatalf("inbound request id not echoed: %q", got)
	}

	res, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, res.Body)
	res.Body.Close()
	if got := res.Header.Get("X-Request-Id"); !strings.HasPrefix(got, "dvid-") {
		t.Fatalf("generated request id = %q, want dvid-* prefix", got)
	}
}

// metricSeriesRe splits a Prometheus sample line into its series part
// (name plus label set) and its value.
var metricSeriesRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*(?:\{[^}]*\})?) (.+)$`)

// TestMetricsGoldenShape pins the /metrics output shape: the exact set
// of series (names + label sets) after one exact and one sampled
// simulate, with values masked. Adding a metric means updating this
// list — that is the point: the exposition is an interface.
func TestMetricsGoldenShape(t *testing.T) {
	ts := httptest.NewServer(service.New(service.Config{}))
	defer ts.Close()
	cl := service.NewClient(ts.URL, nil)
	ctx := context.Background()

	if _, err := cl.Simulate(ctx, service.SimulateRequest{Workload: "compress", MaxInsts: 20_000}); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Simulate(ctx, service.SimulateRequest{
		Workload: "compress", MaxInsts: 60_000,
		Sampling: &service.SamplingSpec{Interval: 2_000},
	}); err != nil {
		t.Fatal(err)
	}

	_, body := getBody(t, ts.URL+"/metrics")
	seen := map[string]bool{}
	for _, line := range strings.Split(string(body), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		m := metricSeriesRe.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("unparseable metrics line %q", line)
		}
		seen[m[1]] = true
	}
	var got []string
	for s := range seen {
		got = append(got, s)
	}
	sort.Strings(got)

	histogram := func(name, labels string) []string {
		var out []string
		for _, le := range []string{"0.001", "0.0025", "0.005", "0.01", "0.025", "0.05",
			"0.1", "0.25", "0.5", "1", "2.5", "5", "10", "+Inf"} {
			out = append(out, name+`_bucket{`+labels+`,le="`+le+`"}`)
		}
		return append(out,
			name+`_sum{`+labels+`}`,
			name+`_count{`+labels+`}`)
	}
	var want []string
	want = append(want,
		`dvid_requests_total{endpoint="simulate",code="200"}`,
		"dvid_uptime_seconds", "dvid_inflight_requests",
		"dvid_queue_depth", "dvid_queue_capacity",
		"dvid_build_cache_hits_total", "dvid_build_cache_misses_total",
		"dvid_build_cache_evictions_total", "dvid_build_cache_entries",
		"dvid_build_compiles_total",
		"dvid_machine_pool_reuse_total", "dvid_machine_pool_fresh_total",
		"dvid_emulator_pool_reuse_total", "dvid_emulator_pool_fresh_total",
		"dvid_checkpoint_pool_reuse_total", "dvid_checkpoint_pool_fresh_total",
		"dvid_sim_runs_total", "dvid_sim_cycles_total", "dvid_sim_instructions_total",
		"dvid_sim_mispredicts_total", "dvid_sim_wrong_path_total",
		"dvid_sim_rename_stall_cycles_total", "dvid_sim_window_full_cycles_total",
		"dvid_sim_port_stall_cycles_total",
		"dvid_sim_elim_saves_total", "dvid_sim_elim_restores_total",
		"dvid_sim_kills_total", "dvid_sim_early_reclaims_total", "dvid_sim_faults_total",
		"dvid_sampled_runs_total", "dvid_sampled_rel_ci",
	)
	want = append(want, histogram("dvid_request_duration_seconds", `endpoint="simulate"`)...)
	for _, phase := range []string{"aggregate", "build", "compile", "execute", "interval", "job",
		"queue-wait", "render", "sample", "scan", "timing"} {
		want = append(want, histogram("dvid_phase_duration_seconds", `phase="`+phase+`"`)...)
	}
	sort.Strings(want)

	if len(got) != len(want) {
		t.Errorf("series count: got %d, want %d", len(got), len(want))
	}
	wantSet := map[string]bool{}
	for _, s := range want {
		wantSet[s] = true
	}
	for _, s := range got {
		if !wantSet[s] {
			t.Errorf("unexpected series %s", s)
		}
	}
	for _, s := range want {
		if !seen[s] {
			t.Errorf("missing series %s", s)
		}
	}
}
