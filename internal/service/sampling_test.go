package service_test

import (
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"dvi/internal/service"
)

// TestSimulateSamplingEndpoint covers the /v1/simulate sampling surface:
// a request with a sampling block answers with an estimate whose summary
// reports the plan and error bound, whose cycle estimate brackets the
// exact run within its confidence interval, and whose architectural
// counts are exact. The checkpoint pool counters must show up on
// /metrics, with reuse after the pool has warmed.
func TestSimulateSamplingEndpoint(t *testing.T) {
	ts := httptest.NewServer(service.New(service.Config{}))
	defer ts.Close()

	const base = `"workload":"go","max_insts":120000`
	code, body := postJSON(t, ts.URL+"/v1/simulate", `{`+base+`}`)
	if code != http.StatusOK {
		t.Fatalf("exact simulate: HTTP %d: %s", code, body)
	}
	var exact service.SimulateResponse
	if err := json.Unmarshal(body, &exact); err != nil {
		t.Fatal(err)
	}
	if exact.Sampled != nil {
		t.Fatalf("exact response carries a sampled summary: %+v", exact.Sampled)
	}

	code, body = postJSON(t, ts.URL+"/v1/simulate",
		`{`+base+`,"sampling":{"interval":4000,"warmup":1000}}`)
	if code != http.StatusOK {
		t.Fatalf("sampled simulate: HTTP %d: %s", code, body)
	}
	var samp service.SimulateResponse
	if err := json.Unmarshal(body, &samp); err != nil {
		t.Fatal(err)
	}
	sum := samp.Sampled
	if sum == nil {
		t.Fatal("sampled response missing the sampled summary")
	}
	if sum.Interval != 4000 || sum.Warmup != 1000 {
		t.Fatalf("summary plan %+v does not echo the request", sum)
	}
	if sum.Measured <= 0 || sum.Measured > sum.Intervals {
		t.Fatalf("measured %d of %d intervals is not a sane plan", sum.Measured, sum.Intervals)
	}
	if sum.DetailedInsts >= sum.TotalInsts {
		t.Fatalf("sampling simulated %d of %d instructions in detail — no savings",
			sum.DetailedInsts, sum.TotalInsts)
	}
	if sum.RelCI <= 0 || sum.Confidence != 0.95 {
		t.Fatalf("summary error bound rel=%v conf=%v", sum.RelCI, sum.Confidence)
	}
	// The estimate must bracket the exact run within its reported CI
	// (CIHalfWidth is absolute on IPC).
	if diff := math.Abs(samp.IPC - exact.IPC); diff > sum.CIHalfWidth {
		t.Fatalf("estimated IPC %.4f vs exact %.4f: off by %.4f, CI half-width %.4f",
			samp.IPC, exact.IPC, diff, sum.CIHalfWidth)
	}
	// Architectural counts come from the exact functional pass. The exact
	// detailed run may overshoot the instruction budget by up to
	// IssueWidth-1 commits in its final cycle, so allow that much slack.
	const boundarySlack = 3 // DefaultConfig().IssueWidth - 1
	if d := absDiff(samp.Stats.Committed, exact.Stats.Committed); d > boundarySlack {
		t.Fatalf("committed drifted: sampled %d exact %d",
			samp.Stats.Committed, exact.Stats.Committed)
	}
	if d := absDiff(samp.Stats.ElimSaves, exact.Stats.ElimSaves); d > boundarySlack {
		t.Fatalf("elim saves drifted: sampled %d exact %d",
			samp.Stats.ElimSaves, exact.Stats.ElimSaves)
	}

	// Checkpoint pool counters are exposed; a second sampled request runs
	// against a warm pool and must reuse recycled checkpoints.
	res, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	m1 := readAll(t, res)
	if metricValue(t, m1, "dvid_checkpoint_pool_fresh_total") <= 0 {
		t.Fatalf("no fresh checkpoints after a sampled run:\n%s", m1)
	}
	if code, body := postJSON(t, ts.URL+"/v1/simulate",
		`{`+base+`,"sampling":{"interval":4000,"warmup":1000}}`); code != http.StatusOK {
		t.Fatalf("second sampled simulate: HTTP %d: %s", code, body)
	}
	res, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	m2 := readAll(t, res)
	if metricValue(t, m2, "dvid_checkpoint_pool_reuse_total") <= 0 {
		t.Fatalf("second sampled run reused no checkpoints:\n%s", m2)
	}
}

// TestJobsBatchWithSampling runs a /v2/jobs batch mixing a sampled
// simulate, an exact simulate and an annotate: lines stream in
// submission order, only the sampled line carries a summary, and both
// simulates agree on exact architectural counts.
func TestJobsBatchWithSampling(t *testing.T) {
	ts := httptest.NewServer(service.New(service.Config{}))
	defer ts.Close()

	code, body := postJSON(t, ts.URL+"/v2/jobs", `{"jobs":[
		{"kind":"simulate","simulate":{"workload":"li","max_insts":100000,"sampling":{"interval":4000,"warmup":1000}}},
		{"kind":"simulate","simulate":{"workload":"li","max_insts":100000}},
		{"kind":"annotate","annotate":{"workload":"li"}}
	]}`)
	if code != http.StatusOK {
		t.Fatalf("/v2/jobs: HTTP %d: %s", code, body)
	}
	var lines []service.JobResult
	for _, raw := range strings.Split(strings.TrimSpace(string(body)), "\n") {
		var line service.JobResult
		if err := json.Unmarshal([]byte(raw), &line); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", raw, err)
		}
		lines = append(lines, line)
	}
	if len(lines) != 3 {
		t.Fatalf("%d result lines, want 3", len(lines))
	}
	for i, line := range lines {
		if line.Index != i || line.Error != "" {
			t.Fatalf("line %d: %+v", i, line)
		}
	}
	sampled, exact := lines[0].Simulate, lines[1].Simulate
	if sampled == nil || sampled.Sampled == nil {
		t.Fatalf("sampled job missing its summary: %+v", lines[0])
	}
	if exact == nil || exact.Sampled != nil {
		t.Fatalf("exact job carries a sampled summary: %+v", lines[1])
	}
	if lines[2].Annotate == nil || lines[2].Annotate.Inserted == 0 {
		t.Fatalf("annotate job did not run: %+v", lines[2])
	}
	if d := absDiff(sampled.Stats.Committed, exact.Stats.Committed); d > 3 {
		t.Fatalf("committed drifted: sampled %d exact %d",
			sampled.Stats.Committed, exact.Stats.Committed)
	}
	if diff := math.Abs(sampled.IPC - exact.IPC); diff > sampled.Sampled.CIHalfWidth {
		t.Fatalf("estimated IPC off by %.4f, CI half-width %.4f",
			diff, sampled.Sampled.CIHalfWidth)
	}
}

// absDiff is |a-b| for unsigned counters.
func absDiff(a, b uint64) uint64 {
	if a > b {
		return a - b
	}
	return b - a
}

// readAll drains an HTTP response body as a string.
func readAll(t *testing.T, res *http.Response) string {
	t.Helper()
	defer res.Body.Close()
	b, err := io.ReadAll(res.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}
