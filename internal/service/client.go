package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// Client is the typed Go client for a dvid daemon. The zero value is not
// usable; construct with NewClient. Methods are safe for concurrent use.
type Client struct {
	base    string
	hc      *http.Client
	timeout time.Duration
}

// ClientOption configures a Client at construction time.
type ClientOption func(*Client)

// WithRequestTimeout bounds every request the client makes: each method
// call derives a context with this deadline on top of the caller's, so
// a hung daemon fails the call instead of blocking it forever. It
// applies to streaming calls too — RunJobs must finish the whole stream
// inside the budget — which is why it is a per-request option here
// rather than http.Client.Timeout semantics the caller might not have
// set. Zero or negative disables the bound (the caller's ctx still
// applies).
func WithRequestTimeout(d time.Duration) ClientOption {
	return func(c *Client) { c.timeout = d }
}

// NewClient builds a client for the daemon at base (e.g.
// "http://localhost:8077"). A nil hc uses http.DefaultClient; pass a
// client with a Timeout, or WithRequestTimeout, for production callers.
func NewClient(base string, hc *http.Client, opts ...ClientOption) *Client {
	if hc == nil {
		hc = http.DefaultClient
	}
	c := &Client{base: strings.TrimRight(base, "/"), hc: hc}
	for _, o := range opts {
		o(c)
	}
	return c
}

// reqContext applies the client's per-request timeout to ctx. The
// returned cancel must be held until the response — body included — has
// been consumed.
func (c *Client) reqContext(ctx context.Context) (context.Context, context.CancelFunc) {
	if c.timeout > 0 {
		return context.WithTimeout(ctx, c.timeout)
	}
	return context.WithCancel(ctx)
}

// Annotate runs the binary-rewriting DVI inserter server-side.
func (c *Client) Annotate(ctx context.Context, req AnnotateRequest) (AnnotateResponse, error) {
	var resp AnnotateResponse
	err := c.post(ctx, "/v1/annotate", req, &resp)
	return resp, err
}

// Simulate runs one out-of-order timing simulation server-side.
func (c *Client) Simulate(ctx context.Context, req SimulateRequest) (SimulateResponse, error) {
	var resp SimulateResponse
	err := c.post(ctx, "/v1/simulate", req, &resp)
	return resp, err
}

// CtxSwitch samples live-register counts at preemption points.
func (c *Client) CtxSwitch(ctx context.Context, req CtxSwitchRequest) (CtxSwitchResponse, error) {
	var resp CtxSwitchResponse
	err := c.post(ctx, "/v1/ctxswitch", req, &resp)
	return resp, err
}

// RunJobs submits a heterogeneous job batch to /v2/jobs and invokes fn
// for every result line as it arrives, in submission order — fn sees
// result i while later jobs are still running server-side. A line's
// Error field carries a per-job failure; the stream keeps going. A
// non-nil error from fn abandons the stream (the daemon notices the
// closed connection and cancels the rest of the batch) and is returned.
func (c *Client) RunJobs(ctx context.Context, jobs []JobRequest, fn func(JobResult) error) error {
	body, err := json.Marshal(JobsRequest{Jobs: jobs})
	if err != nil {
		return fmt.Errorf("dvid client: encode /v2/jobs request: %w", err)
	}
	ctx, cancel := c.reqContext(ctx)
	defer cancel()
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v2/jobs", bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("dvid client: %w", err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	res, err := c.hc.Do(hreq)
	if err != nil {
		return fmt.Errorf("dvid client: %w", err)
	}
	defer res.Body.Close()
	if res.StatusCode/100 != 2 {
		return decodeError(res)
	}
	dec := json.NewDecoder(res.Body)
	seen := 0
	for {
		var line JobResult
		if err := dec.Decode(&line); err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			// Includes io.ErrUnexpectedEOF when the daemon died mid-batch:
			// a truncated stream must never read as success.
			return fmt.Errorf("dvid client: decode /v2/jobs stream: %w", err)
		}
		if err := fn(line); err != nil {
			return err
		}
		seen++
	}
	if seen != len(jobs) {
		return fmt.Errorf("dvid client: /v2/jobs stream truncated: got %d of %d results", seen, len(jobs))
	}
	return nil
}

// Workloads lists the benchmarks the daemon serves.
func (c *Client) Workloads(ctx context.Context) ([]WorkloadInfo, error) {
	var resp []WorkloadInfo
	err := c.get(ctx, "/v1/workloads", &resp)
	return resp, err
}

// Health fetches the daemon's health snapshot.
func (c *Client) Health(ctx context.Context) (Health, error) {
	var resp Health
	err := c.get(ctx, "/healthz", &resp)
	return resp, err
}

func (c *Client) post(ctx context.Context, path string, req, resp any) error {
	body, err := json.Marshal(req)
	if err != nil {
		return fmt.Errorf("dvid client: encode %s request: %w", path, err)
	}
	ctx, cancel := c.reqContext(ctx)
	defer cancel()
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("dvid client: %w", err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	return c.do(hreq, resp)
}

func (c *Client) get(ctx context.Context, path string, resp any) error {
	ctx, cancel := c.reqContext(ctx)
	defer cancel()
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return fmt.Errorf("dvid client: %w", err)
	}
	return c.do(hreq, resp)
}

func (c *Client) do(req *http.Request, resp any) error {
	res, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("dvid client: %w", err)
	}
	defer res.Body.Close()
	if res.StatusCode/100 != 2 {
		return decodeError(res)
	}
	if err := json.NewDecoder(res.Body).Decode(resp); err != nil {
		return fmt.Errorf("dvid client: decode %s response: %w", req.URL.Path, err)
	}
	return nil
}

// decodeError turns a non-2xx response into an *Error, preserving the
// server's message when the body carries the standard error JSON, and the
// request's method and path so errors from different endpoints are
// distinguishable.
func decodeError(res *http.Response) error {
	e := &Error{StatusCode: res.StatusCode}
	if req := res.Request; req != nil {
		e.Method = req.Method
		if req.URL != nil {
			e.Path = req.URL.Path
		}
	}
	body, _ := io.ReadAll(io.LimitReader(res.Body, 64<<10))
	if err := json.Unmarshal(body, e); err != nil || e.Message == "" {
		e.Message = strings.TrimSpace(string(body))
		if e.Message == "" {
			e.Message = res.Status
		}
	}
	return e
}
