package service_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"dvi"
	"dvi/internal/ctxswitch"
	"dvi/internal/isa"
	"dvi/internal/prog"
	"dvi/internal/rewrite"
	"dvi/internal/service"
	"dvi/internal/workload"
)

// encodeJSON renders v exactly as the server's writeJSON does (Encoder +
// trailing newline), so byte comparisons are meaningful.
func encodeJSON(t *testing.T, v any) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(v); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// goldenSimulate computes the expected /v1/simulate response for
// (compress, 50k insts) from the library, bypassing the service.
func goldenSimulate(t *testing.T) service.SimulateResponse {
	t.Helper()
	w, _ := dvi.WorkloadByName("compress")
	cfg := dvi.DefaultMachineConfig()
	cfg.MaxInsts = 50_000
	st, err := dvi.Simulate(w, 1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return service.SimulateResponse{
		Workload: "compress",
		Scale:    1,
		BuildKey: w.Key(1, workload.BuildOptions{EDVI: true}).String(),
		MaxInsts: 50_000,
		IPC:      st.IPC(),
		Stats:    st,
	}
}

// goldenCtxSwitch computes the expected /v1/ctxswitch response for
// (li, interval 97, 100k insts) from the library.
func goldenCtxSwitch(t *testing.T) service.CtxSwitchResponse {
	t.Helper()
	w, _ := dvi.WorkloadByName("li")
	pr, img, err := dvi.Build(w, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	res, err := dvi.MeasureContextSwitch(pr, img,
		dvi.EmulatorConfig{DVI: dvi.DefaultDVIConfig(), Scheme: dvi.ElimLVMStack}, 97, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	return service.CtxSwitchResponse{
		Workload: "li",
		Scale:    1,
		BuildKey: w.Key(1, workload.BuildOptions{EDVI: true}).String(),
		SaveSet:  ctxswitch.SaveSet,
		Result:   res,
	}
}

// goldenAnnotate computes the expected /v1/annotate response for li from
// the library pipeline: fresh plain build, default rewrite, relink.
func goldenAnnotate(t *testing.T) service.AnnotateResponse {
	t.Helper()
	spec, _ := workload.ByName("li")
	pr, _, err := workload.CompileSpec(spec, 1, workload.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	inserted, err := rewrite.InsertKills(pr, rewrite.Options{})
	if err != nil {
		t.Fatal(err)
	}
	img, err := pr.Link()
	if err != nil {
		t.Fatal(err)
	}
	var perProc []service.ProcKills
	for _, p := range pr.Procs {
		kills := 0
		for _, in := range p.Insts {
			if in.Op == isa.KILL {
				kills++
			}
		}
		if kills > 0 {
			perProc = append(perProc, service.ProcKills{Proc: p.Name, Kills: kills})
		}
	}
	return service.AnnotateResponse{
		Asm:       prog.FormatAsm(pr),
		Inserted:  inserted,
		PerProc:   perProc,
		TextWords: img.TextWords(),
	}
}

// TestV1GoldenShims is the satellite golden test: after the /v1 endpoints
// became shims over the /v2 execution path, every response must remain
// byte-identical to the library-derived wire format — and the /v2 batch
// line for the same job must embed exactly the same payload bytes.
func TestV1GoldenShims(t *testing.T) {
	ts := httptest.NewServer(service.New(service.Config{}))
	defer ts.Close()

	type endpoint struct {
		name, path, kind, reqBody string
		expected                  any
	}
	cases := []endpoint{
		{"simulate", "/v1/simulate", "simulate",
			`{"workload":"compress","max_insts":50000}`, goldenSimulate(t)},
		{"ctxswitch", "/v1/ctxswitch", "ctxswitch",
			`{"workload":"li","interval":97,"max_insts":100000}`, goldenCtxSwitch(t)},
		{"annotate", "/v1/annotate", "annotate",
			`{"workload":"li"}`, goldenAnnotate(t)},
	}

	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			// The /v1 shim answers the library-derived bytes exactly.
			code, body := postJSON(t, ts.URL+c.path, c.reqBody)
			if code != http.StatusOK {
				t.Fatalf("HTTP %d: %s", code, body)
			}
			want := encodeJSON(t, c.expected)
			if !bytes.Equal(body, want) {
				t.Fatalf("%s response bytes changed:\n got %s\nwant %s", c.path, body, want)
			}

			// A one-job /v2 batch of the same kind streams one line whose
			// payload is byte-identical to the /v1 response.
			batch := fmt.Sprintf(`{"jobs":[{"kind":%q,%q:%s}]}`, c.kind, c.kind, c.reqBody)
			code, lines := postJSON(t, ts.URL+"/v2/jobs", batch)
			if code != http.StatusOK {
				t.Fatalf("/v2/jobs HTTP %d: %s", code, lines)
			}
			var line service.JobResult
			if err := json.Unmarshal(lines, &line); err != nil {
				t.Fatalf("bad NDJSON line: %v\n%s", err, lines)
			}
			var payload any
			switch c.kind {
			case "simulate":
				payload = line.Simulate
			case "ctxswitch":
				payload = line.CtxSwitch
			case "annotate":
				payload = line.Annotate
			}
			if line.Error != "" {
				t.Fatalf("/v2 job failed: %s", line.Error)
			}
			if got := encodeJSON(t, payload); !bytes.Equal(got, want) {
				t.Fatalf("/v2 payload differs from /v1 bytes:\n got %s\nwant %s", got, want)
			}
		})
	}

	// GET /v1/workloads stays pinned too.
	res, err := http.Get(ts.URL + "/v1/workloads")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	var got bytes.Buffer
	if _, err := got.ReadFrom(res.Body); err != nil {
		t.Fatal(err)
	}
	var infos []service.WorkloadInfo
	for _, spec := range workload.All() {
		infos = append(infos, service.WorkloadInfo{Name: spec.Name, Describe: spec.Describe})
	}
	if want := encodeJSON(t, infos); !bytes.Equal(got.Bytes(), want) {
		t.Fatalf("/v1/workloads bytes changed:\n got %s\nwant %s", got.Bytes(), want)
	}
}

// TestJobsBatch64Coalesce is the acceptance criterion: a 64-way identical
// /v2/jobs submission performs exactly one compile, streams 64 lines in
// order, and every payload is byte-identical.
func TestJobsBatch64Coalesce(t *testing.T) {
	svc := service.New(service.Config{Workers: 4})
	ts := httptest.NewServer(svc)
	defer ts.Close()
	cl := service.NewClient(ts.URL, nil)

	const n = 64
	jobs := make([]service.JobRequest, n)
	for i := range jobs {
		jobs[i] = service.JobRequest{
			Kind:     "simulate",
			Simulate: &service.SimulateRequest{Workload: "compress", MaxInsts: 50_000},
		}
	}
	var lines []service.JobResult
	err := cl.RunJobs(context.Background(), jobs, func(line service.JobResult) error {
		lines = append(lines, line)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) != n {
		t.Fatalf("streamed %d lines, want %d", len(lines), n)
	}
	first := encodeJSON(t, lines[0].Simulate)
	for i, line := range lines {
		if line.Index != i {
			t.Fatalf("line %d carries index %d", i, line.Index)
		}
		if line.Error != "" {
			t.Fatalf("job %d failed: %s", i, line.Error)
		}
		if !bytes.Equal(encodeJSON(t, line.Simulate), first) {
			t.Fatalf("job %d payload differs from job 0", i)
		}
	}
	hits, misses := svc.Engine().Cache().Stats()
	if misses != 1 {
		t.Fatalf("64-job identical batch compiled %d times, want exactly 1", misses)
	}
	if hits != n-1 {
		t.Fatalf("got %d cache hits, want %d", hits, n-1)
	}
}

// TestJobsHeterogeneousBatch drives a mixed batch — timing, annotate,
// ctxswitch, a failing job — through the typed client and checks ordered
// delivery with per-job error isolation.
func TestJobsHeterogeneousBatch(t *testing.T) {
	ts := httptest.NewServer(service.New(service.Config{}))
	defer ts.Close()
	cl := service.NewClient(ts.URL, nil)

	jobs := []service.JobRequest{
		{Kind: "simulate", Simulate: &service.SimulateRequest{Workload: "gcc", MaxInsts: 30_000}},
		{Kind: "annotate", Annotate: &service.AnnotateRequest{Workload: "li"}},
		{Kind: "ctxswitch", CtxSwitch: &service.CtxSwitchRequest{Workload: "li", Interval: 97, MaxInsts: 50_000}},
		{Kind: "simulate", Simulate: &service.SimulateRequest{Asm: "bogus", MaxInsts: 10_000}},
		{Kind: "simulate", Simulate: &service.SimulateRequest{Workload: "compress", MaxInsts: 30_000}},
	}
	var lines []service.JobResult
	if err := cl.RunJobs(context.Background(), jobs, func(line service.JobResult) error {
		lines = append(lines, line)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(lines) != len(jobs) {
		t.Fatalf("streamed %d lines, want %d", len(lines), len(jobs))
	}
	wantKinds := []string{"simulate", "annotate", "ctxswitch", "simulate", "simulate"}
	for i, line := range lines {
		if line.Index != i || line.Kind != wantKinds[i] {
			t.Fatalf("line %d = (index %d, kind %q), want (index %d, kind %q)",
				i, line.Index, line.Kind, i, wantKinds[i])
		}
	}
	if lines[0].Simulate == nil || lines[0].Simulate.Stats.Committed == 0 {
		t.Fatal("simulate job returned no stats")
	}
	if lines[1].Annotate == nil || lines[1].Annotate.Inserted == 0 {
		t.Fatal("annotate job inserted nothing")
	}
	if lines[2].CtxSwitch == nil || lines[2].CtxSwitch.Result.Samples == 0 {
		t.Fatal("ctxswitch job produced no samples")
	}
	if lines[3].Error == "" || !strings.Contains(lines[3].Error, "asm line 1") {
		t.Fatalf("bad-asm job error = %q, want a parse failure", lines[3].Error)
	}
	if lines[3].Simulate != nil {
		t.Fatal("failed job carries a payload")
	}
	if lines[4].Error != "" {
		t.Fatalf("job after the failure did not run: %s", lines[4].Error)
	}
}

// TestJobsAnnotateStreamsBeforeSlowSimulate pins the streaming contract
// for annotate jobs: a leading annotate line must arrive as soon as it
// is ready, not ride on a later simulation's completion. The simulate
// job's build is gated, so if annotate delivery waited for it, the first
// read would block until the watchdog fires.
func TestJobsAnnotateStreamsBeforeSlowSimulate(t *testing.T) {
	gate := make(chan struct{})
	released := false
	defer func() {
		if !released {
			close(gate)
		}
	}()
	svc := service.New(service.Config{
		Compile: func(s workload.Spec, scale int, opt workload.BuildOptions) (*prog.Program, *prog.Image, error) {
			if s.Name == "go" {
				<-gate
			}
			return workload.CompileSpec(s, scale, opt)
		},
	})
	ts := httptest.NewServer(svc)
	defer ts.Close()

	res, err := http.Post(ts.URL+"/v2/jobs", "application/json", strings.NewReader(
		`{"jobs":[{"kind":"annotate","annotate":{"workload":"li"}},
		          {"kind":"simulate","simulate":{"workload":"go","max_insts":20000}}]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()

	type read struct {
		line string
		err  error
	}
	br := bufio.NewReader(res.Body)
	readLine := func() read {
		ch := make(chan read, 1)
		go func() {
			s, err := br.ReadString('\n')
			ch <- read{s, err}
		}()
		select {
		case r := <-ch:
			return r
		case <-time.After(10 * time.Second):
			t.Fatal("timed out waiting for a stream line")
			return read{}
		}
	}

	first := readLine() // with the simulate build still gated
	if first.err != nil {
		t.Fatalf("first line: %v", first.err)
	}
	if !strings.Contains(first.line, `"index":0,"kind":"annotate"`) || !strings.Contains(first.line, `"inserted":`) {
		t.Fatalf("first streamed line is not the annotate result: %s", first.line)
	}

	released = true
	close(gate)
	second := readLine()
	if second.err != nil {
		t.Fatalf("second line: %v", second.err)
	}
	if !strings.Contains(second.line, `"index":1,"kind":"simulate"`) {
		t.Fatalf("second streamed line: %s", second.line)
	}
}

// TestJobsStreamingHeaders checks the NDJSON content type.
func TestJobsStreamingHeaders(t *testing.T) {
	ts := httptest.NewServer(service.New(service.Config{}))
	defer ts.Close()
	res, err := http.Post(ts.URL+"/v2/jobs", "application/json",
		strings.NewReader(`{"jobs":[{"kind":"annotate","annotate":{"workload":"li"}}]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if ct := res.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type %q, want application/x-ndjson", ct)
	}
}

// TestJobsValidation covers the batch-level 4xx surface: the whole batch
// is validated before any byte streams, so an invalid job rejects it.
func TestJobsValidation(t *testing.T) {
	ts := httptest.NewServer(service.New(service.Config{MaxJobs: 2}))
	defer ts.Close()

	cases := []struct {
		name, body, wantFrag string
	}{
		{"empty batch", `{"jobs":[]}`, "at least one job"},
		{"unknown kind", `{"jobs":[{"kind":"turbo","simulate":{"workload":"li"}}]}`, "unknown job kind"},
		{"missing payload", `{"jobs":[{"kind":"simulate"}]}`, "exactly one of"},
		{"mismatched payload", `{"jobs":[{"kind":"simulate","annotate":{"workload":"li"}}]}`, "needs a simulate payload"},
		{"two payloads", `{"jobs":[{"kind":"simulate","simulate":{"workload":"li"},"annotate":{"workload":"li"}}]}`, "exactly one of"},
		{"bad inner request", `{"jobs":[{"kind":"simulate","simulate":{"workload":"spice"}}]}`, "jobs[0]: unknown workload"},
		{"over batch limit", `{"jobs":[{"kind":"annotate","annotate":{"workload":"li"}},{"kind":"annotate","annotate":{"workload":"li"}},{"kind":"annotate","annotate":{"workload":"li"}}]}`, "exceeds the 2-job limit"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			code, body := postJSON(t, ts.URL+"/v2/jobs", c.body)
			if code != http.StatusBadRequest {
				t.Fatalf("HTTP %d (%s), want 400", code, body)
			}
			if !strings.Contains(string(body), c.wantFrag) {
				t.Fatalf("error body %s missing %q", body, c.wantFrag)
			}
		})
	}
}
