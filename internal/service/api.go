package service

import (
	"fmt"

	"dvi/internal/core"
	"dvi/internal/ctxswitch"
	"dvi/internal/emu"
	"dvi/internal/obs"
	"dvi/internal/ooo"
	"dvi/internal/rewrite"
)

// This file defines the HTTP/JSON wire types shared by the server and the
// typed client. Enumerations travel as strings ("full", "lvm-stack",
// "before-calls") so request bodies stay hand-writable; the parse helpers
// reject unknown values rather than defaulting silently.

// AnnotateRequest asks the daemon to run the binary-rewriting DVI
// inserter (paper §2) and return the kill-annotated program. Exactly one
// of Asm (assembly text, the prog.ParseAsm grammar) or Workload (a
// benchmark name, compiled fresh without annotations) must be set.
type AnnotateRequest struct {
	Asm      string `json:"asm,omitempty"`
	Workload string `json:"workload,omitempty"`
	Scale    int    `json:"scale,omitempty"` // workload scale, default 1
	// Policy is "before-calls" (default) or "at-death".
	Policy string `json:"policy,omitempty"`
	// NoPrune disables the interprocedural kill-pruning pass.
	NoPrune bool `json:"no_prune,omitempty"`
	// Mode selects the annotation engine: "rewrite" (default) is the
	// calling-convention-assisted binary rewriter (paper §2); "infer" is
	// the interprocedural dead-value inference pass, which derives every
	// kill from the machine code alone — no hand hints, no ABI
	// assumptions — and is conservative wherever the program escapes its
	// analysis (indirect calls, irregular stack discipline).
	Mode string `json:"mode,omitempty"`
}

// ProcKills reports the static kill instructions in one procedure.
type ProcKills struct {
	Proc  string `json:"proc"`
	Kills int    `json:"kills"`
}

// AnnotateResponse carries the annotated program back.
type AnnotateResponse struct {
	// Asm is the kill-annotated program in the same assembly grammar the
	// request used; it reparses and links.
	Asm string `json:"asm"`
	// Inserted counts kill instructions the rewriter added.
	Inserted int `json:"inserted"`
	// PerProc counts static kills per procedure, in program order
	// (procedures with none are omitted).
	PerProc []ProcKills `json:"per_proc,omitempty"`
	// TextWords is the annotated program's static code size in
	// instruction words (paper Figure 13's numerator).
	TextWords int `json:"text_words"`
}

// MachineOverrides adjusts individual fields of the paper's Figure 2
// machine; zero values keep the default.
type MachineOverrides struct {
	IssueWidth     int   `json:"issue_width,omitempty"`
	WindowSize     int   `json:"window_size,omitempty"`
	IFQSize        int   `json:"ifq_size,omitempty"`
	PhysRegs       int   `json:"phys_regs,omitempty"`
	IntALUs        int   `json:"int_alus,omitempty"`
	IntMulDiv      int   `json:"int_muldiv,omitempty"`
	CachePorts     int   `json:"cache_ports,omitempty"`
	MulLatency     int   `json:"mul_latency,omitempty"`
	DivLatency     int   `json:"div_latency,omitempty"`
	StackDepth     int   `json:"stack_depth,omitempty"` // LVM-Stack entries
	WrongPathFetch *bool `json:"wrong_path_fetch,omitempty"`
}

// apply overlays non-zero overrides onto cfg.
func (m *MachineOverrides) apply(cfg *ooo.Config) {
	if m == nil {
		return
	}
	set := func(dst *int, v int) {
		if v != 0 {
			*dst = v
		}
	}
	set(&cfg.IssueWidth, m.IssueWidth)
	set(&cfg.WindowSize, m.WindowSize)
	set(&cfg.IFQSize, m.IFQSize)
	set(&cfg.PhysRegs, m.PhysRegs)
	set(&cfg.IntALUs, m.IntALUs)
	set(&cfg.IntMulDiv, m.IntMulDiv)
	set(&cfg.CachePorts, m.CachePorts)
	set(&cfg.MulLatency, m.MulLatency)
	set(&cfg.DivLatency, m.DivLatency)
	set(&cfg.Emu.DVI.StackDepth, m.StackDepth)
	if m.WrongPathFetch != nil {
		cfg.WrongPathFetch = *m.WrongPathFetch
	}
}

// SimulateRequest asks for one run of the out-of-order timing simulator.
// Exactly one of Workload or Asm must be set. The zero request fields
// reproduce dvi.Simulate's defaults: full DVI, LVM-Stack elimination,
// E-DVI annotations when the DVI level is full.
type SimulateRequest struct {
	Workload string `json:"workload,omitempty"`
	Asm      string `json:"asm,omitempty"`
	Scale    int    `json:"scale,omitempty"` // default 1, clamped to the server's max
	// MaxInsts caps committed instructions (0 = the server's default
	// budget; requests above the server's ceiling are clamped).
	MaxInsts uint64 `json:"max_insts,omitempty"`
	// DVILevel is "none", "idvi" or "full" (default "full").
	DVILevel string `json:"dvi_level,omitempty"`
	// Scheme is "off", "lvm" or "lvm-stack" (default "lvm-stack").
	Scheme string `json:"scheme,omitempty"`
	// EDVI forces the binary flavour; nil derives it from DVILevel the
	// way dvi.Simulate does (annotated iff the level is full).
	EDVI *bool `json:"edvi,omitempty"`
	// Infer derives the kill annotations with the interprocedural
	// inference pass instead of the compiler-assisted rewriter. Applies
	// to workload and asm sources alike (inference needs no hints);
	// effective only when the DVI level honours explicit annotations
	// ("full"), mirroring the central E-DVI rule.
	Infer bool `json:"infer,omitempty"`
	// Policy selects the kill placement for annotated builds:
	// "before-calls" (default) or "at-death".
	Policy  string            `json:"policy,omitempty"`
	Machine *MachineOverrides `json:"machine,omitempty"`
	// Contexts runs N SMT hardware contexts, each executing its own copy
	// of the program through one shared core (0 or 1 = the single-context
	// paper machine). The server bounds N; the physical register file must
	// hold all contexts' architectural state (phys_regs >= 32*N+1 — raise
	// machine.phys_regs for N > 2). Incompatible with sampling.
	Contexts int `json:"contexts,omitempty"`
	// FetchPolicy arbitrates the one fetch access per cycle among
	// contexts: "round-robin" (default) or "icount". Meaningful only when
	// Contexts > 1.
	FetchPolicy string `json:"fetch_policy,omitempty"`
	// Sampling, when set, answers with a statistical estimate instead of
	// an exact detailed run: checkpointed intervals are simulated on the
	// daemon's worker pool and the response carries a confidence
	// interval. Architectural counts stay exact either way.
	Sampling *SamplingSpec `json:"sampling,omitempty"`
	// Trace, when set, attaches a pipeline tracer to the run and returns
	// per-instruction lifecycle events in the response. Mutually
	// exclusive with Sampling: a sampled estimate has no single
	// contiguous pipeline to trace.
	Trace *TraceSpec `json:"trace,omitempty"`
}

// TraceSpec asks for a pipeline-event trace of a simulate run.
type TraceSpec struct {
	// Format is "chrome" (default; chrome://tracing / Perfetto
	// trace_event JSON) or "konata" (the Kanata pipeline-viewer log,
	// returned as one text blob).
	Format string `json:"format,omitempty"`
	// MaxRecords bounds the trace buffer (0 = the server's per-request
	// default; the server's ceiling clamps larger asks). Tracing stops
	// recording past the bound; the run itself is unaffected and
	// Dropped reports what was cut.
	MaxRecords int `json:"max_records,omitempty"`
}

// TraceSummary carries the rendered pipeline trace in a
// SimulateResponse.
type TraceSummary struct {
	Format  string `json:"format"`
	Records int    `json:"records"` // records captured
	Dropped uint64 `json:"dropped"` // records past MaxRecords, not captured
	// Events is the Chrome trace_event list (format "chrome"). Wrap it
	// as {"traceEvents": events} for chrome://tracing, or load the file
	// written by `dvisim -pipetrace` directly.
	Events []obs.ChromeEvent `json:"events,omitempty"`
	// Konata is the complete Kanata log text (format "konata").
	Konata string `json:"konata,omitempty"`
}

// SamplingSpec selects statistical sampling for a simulate job. Zero
// fields pick the server's defaults (internal/sample).
type SamplingSpec struct {
	// Interval is the sampling-unit length in instructions.
	Interval uint64 `json:"interval,omitempty"`
	// Warmup is the detailed warmup run before each measured interval.
	Warmup uint64 `json:"warmup,omitempty"`
	// TargetCI, when positive, densifies the sample until the estimate's
	// relative CI half-width reaches it (or the plan is a full census).
	TargetCI float64 `json:"target_ci,omitempty"`
}

// SampledSummary reports how a sampled estimate was formed and how tight
// it is. IPC and cycle counts in the enclosing response are estimates;
// everything the functional pass counts exactly (eliminations, kills,
// faults, committed instructions) is exact.
type SampledSummary struct {
	Interval      uint64  `json:"interval"`       // effective plan
	Warmup        uint64  `json:"warmup"`         //
	Intervals     int     `json:"intervals"`      // program length in intervals
	Measured      int     `json:"measured"`       // intervals simulated in detail
	TotalInsts    uint64  `json:"total_insts"`    // whole program
	DetailedInsts uint64  `json:"detailed_insts"` // instructions simulated in detail
	CIHalfWidth   float64 `json:"ci_half_width"`  // absolute, on IPC
	RelCI         float64 `json:"rel_ci"`         // CIHalfWidth / estimated IPC
	Confidence    float64 `json:"confidence"`     // e.g. 0.95
}

// SimulateResponse returns the timing statistics.
type SimulateResponse struct {
	Workload string `json:"workload"`
	Scale    int    `json:"scale"`
	// BuildKey identifies the binary flavour that ran; identical keys
	// were compiled once and served from the daemon's build cache.
	BuildKey string    `json:"build_key"`
	MaxInsts uint64    `json:"max_insts"`
	IPC      float64   `json:"ipc"`
	Stats    ooo.Stats `json:"stats"`
	// CtxStats is the per-context breakdown for multi-context runs
	// (contexts > 1): entry i is hardware context i's share. Additive
	// counts sum to the aggregate Stats; shared-structure fields (cycles,
	// caches) mirror it. Omitted on single-context runs.
	CtxStats []ooo.Stats `json:"ctx_stats,omitempty"`
	// Sampled is present iff the request asked for sampling: the
	// estimate's error bound and plan.
	Sampled *SampledSummary `json:"sampled,omitempty"`
	// Trace is present iff the request asked for a pipeline trace.
	Trace *TraceSummary `json:"trace,omitempty"`
}

// TraceRecent is the /debug/trace/recent body: the last-N completed
// request span trees, newest first.
type TraceRecent struct {
	Traces []*obs.SpanSnapshot `json:"traces"`
}

// CtxSwitchRequest samples live-register counts at preemption points
// (paper §6.2, Figure 12). Exactly one of Workload or Asm must be set.
type CtxSwitchRequest struct {
	Workload string `json:"workload,omitempty"`
	Asm      string `json:"asm,omitempty"`
	Scale    int    `json:"scale,omitempty"`
	// Interval is the preemption sampling interval in instructions
	// (0 = the measurement default, a prime near 1000).
	Interval uint64 `json:"interval,omitempty"`
	MaxInsts uint64 `json:"max_insts,omitempty"`
	DVILevel string `json:"dvi_level,omitempty"`
	Scheme   string `json:"scheme,omitempty"`
	EDVI     *bool  `json:"edvi,omitempty"`
	// Infer selects inferred annotations, as in SimulateRequest.
	Infer  bool   `json:"infer,omitempty"`
	Policy string `json:"policy,omitempty"`
}

// CtxSwitchResponse returns the liveness sampling result.
type CtxSwitchResponse struct {
	Workload string           `json:"workload"`
	Scale    int              `json:"scale"`
	BuildKey string           `json:"build_key"`
	SaveSet  int              `json:"save_set"` // registers a DVI-less switch preserves
	Result   ctxswitch.Result `json:"result"`
}

// JobRequest is one entry in a /v2/jobs batch. Kind selects the job type
// ("simulate", "ctxswitch" or "annotate") and exactly the matching
// payload field must be set; its semantics are identical to the
// corresponding one-shot endpoint — the /v1 endpoints are in fact shims
// that submit a one-job batch through the same path.
type JobRequest struct {
	Kind      string            `json:"kind"`
	Simulate  *SimulateRequest  `json:"simulate,omitempty"`
	CtxSwitch *CtxSwitchRequest `json:"ctxswitch,omitempty"`
	Annotate  *AnnotateRequest  `json:"annotate,omitempty"`
}

// JobsRequest is the /v2/jobs body: a heterogeneous job list executed on
// the daemon's shared session. Identical builds across the batch (and
// across concurrent batches) coalesce into one compile.
type JobsRequest struct {
	Jobs []JobRequest `json:"jobs"`
}

// JobResult is one line of the /v2/jobs NDJSON response stream. Results
// stream in submission order — line i is delivered as soon as jobs 0..i
// have finished, while later jobs still run. Exactly one of the payload
// fields is set on success; Error carries a per-job failure (the batch
// keeps going, so one bad job does not poison the rest).
type JobResult struct {
	Index     int                `json:"index"`
	Kind      string             `json:"kind"`
	Simulate  *SimulateResponse  `json:"simulate,omitempty"`
	CtxSwitch *CtxSwitchResponse `json:"ctxswitch,omitempty"`
	Annotate  *AnnotateResponse  `json:"annotate,omitempty"`
	Error     string             `json:"error,omitempty"`
}

// WorkloadInfo describes one benchmark the daemon can serve.
type WorkloadInfo struct {
	Name     string `json:"name"`
	Describe string `json:"describe"`
}

// Health is the /healthz body.
type Health struct {
	// Status is "ok" for a serving daemon and "draining" once graceful
	// shutdown has begun (the response is then a 503, so readiness
	// checks eject the backend before its listener closes).
	Status         string  `json:"status"`
	UptimeSeconds  float64 `json:"uptime_seconds"`
	Workers        int     `json:"workers"`
	Inflight       int64   `json:"inflight"`
	QueueDepth     int64   `json:"queue_depth"`
	QueueCapacity  int     `json:"queue_capacity"`
	CacheEntries   int     `json:"cache_entries"`
	CacheHits      int64   `json:"cache_hits"`
	CacheMisses    int64   `json:"cache_misses"`
	CacheEvictions int64   `json:"cache_evictions"`
	// CacheCompiles counts actual compile invocations — with a warm
	// artifact store it stays at zero across a restart even as misses
	// count store decodes.
	CacheCompiles int64 `json:"cache_compiles"`
	// Store reports the on-disk artifact store; absent when the daemon
	// runs purely in memory.
	Store *StoreHealth `json:"store,omitempty"`
}

// StoreHealth is the artifact-store block of the /healthz body.
type StoreHealth struct {
	Entries     int   `json:"entries"`
	Bytes       int64 `json:"bytes"`
	Hits        int64 `json:"hits"`
	Misses      int64 `json:"misses"`
	Puts        int64 `json:"puts"`
	Evictions   int64 `json:"evictions"`
	Quarantined int64 `json:"quarantined"`
}

// Error is the JSON error body every non-2xx response carries, and the
// error type the typed client returns for server-reported failures. The
// client fills Method and Path from the failed request, so a 429 from
// /v1/simulate and one from /v1/annotate are distinguishable in logs.
type Error struct {
	StatusCode int    `json:"-"`
	Method     string `json:"-"` // HTTP method of the failed request
	Path       string `json:"-"` // URL path of the failed request
	Message    string `json:"error"`
}

// Error implements the error interface.
func (e *Error) Error() string {
	if e.Method != "" || e.Path != "" {
		return fmt.Sprintf("dvid: %s %s: %s (HTTP %d)", e.Method, e.Path, e.Message, e.StatusCode)
	}
	return fmt.Sprintf("dvid: %s (HTTP %d)", e.Message, e.StatusCode)
}

// --- enum parsing ---

func parseLevel(s string) (core.Level, error) {
	switch s {
	case "", "full":
		return core.Full, nil
	case "none":
		return core.None, nil
	case "idvi":
		return core.IDVI, nil
	}
	return 0, fmt.Errorf("unknown dvi_level %q (want none, idvi or full)", s)
}

func parseScheme(s string) (emu.Scheme, error) {
	switch s {
	case "", "lvm-stack":
		return emu.ElimLVMStack, nil
	case "lvm":
		return emu.ElimLVM, nil
	case "off":
		return emu.ElimOff, nil
	}
	return 0, fmt.Errorf("unknown scheme %q (want off, lvm or lvm-stack)", s)
}

func parseFetchPolicy(s string) (ooo.FetchPolicy, error) {
	switch s {
	case "", "round-robin":
		return ooo.FetchRoundRobin, nil
	case "icount":
		return ooo.FetchICOUNT, nil
	}
	return 0, fmt.Errorf("unknown fetch_policy %q (want round-robin or icount)", s)
}

func parsePolicy(s string) (rewrite.Policy, error) {
	switch s {
	case "", "before-calls":
		return rewrite.KillsBeforeCalls, nil
	case "at-death":
		return rewrite.KillsAtDeath, nil
	}
	return 0, fmt.Errorf("unknown policy %q (want before-calls or at-death)", s)
}
