// Package service exposes the reproduction over HTTP/JSON: DVI-as-a-
// service. The paper's capabilities — kill insertion via binary rewriting
// (§2), out-of-order timing simulation with DVI hardware (§4-§5), and
// context-switch liveness sampling (§6) — become endpoints a long-lived
// daemon (cmd/dvid) serves to many concurrent clients:
//
//	POST /v2/jobs       heterogeneous job batch, NDJSON results streamed
//	                    in submission order
//	POST /v1/annotate   assembly in, kill-annotated assembly out
//	POST /v1/simulate   workload or assembly in, timing statistics out
//	POST /v1/ctxswitch  liveness sampling at preemption points
//	GET  /v1/workloads  the built-in benchmark suite
//	GET  /healthz       liveness and cache/queue gauges
//	GET  /metrics       Prometheus text exposition
//
// Every request routes through one shared session.Session — the same
// orchestration layer behind the dvi facade and the CLIs — so all
// clients share its single-flight build cache and pooled simulator
// instances: concurrent identical requests coalesce into one compile.
// The cache is LRU-bounded because clients submit arbitrary assembly.
// The /v1 one-shot endpoints are thin shims that submit a one-job batch
// through the same prepare/execute/render path as /v2/jobs (see jobs.go),
// so both versions answer byte-identically for the same job. Admission
// control bounds concurrent execution and queue depth (429 once the
// queue is full). Queued requests honour their HTTP context — an
// abandoned client frees its queue slot immediately — while a simulation
// that has already started runs to its clamped instruction budget
// (MaxInsts bounds the wasted work). Shutdown drains in-flight work via
// the standard http.Server.Shutdown contract.
package service

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"dvi/internal/obs"
	"dvi/internal/prog"
	"dvi/internal/rewrite"
	"dvi/internal/runner"
	"dvi/internal/session"
	"dvi/internal/store"
	"dvi/internal/workload"
)

// Defaults applied by New for zero Config fields.
const (
	// DefaultMaxQueue bounds requests waiting for an execution slot.
	DefaultMaxQueue = 256
	// DefaultCacheCapacity bounds the build cache: plenty for the seven
	// benchmarks in every flavour plus a working set of client assembly.
	DefaultCacheCapacity = 64
	// DefaultMaxRequestBytes bounds request bodies (assembly text).
	DefaultMaxRequestBytes = 8 << 20
	// DefaultMaxInsts is the per-request instruction budget ceiling. The
	// daemon never runs unbounded simulations on behalf of a client.
	DefaultMaxInsts = 2_000_000
	// DefaultMaxScale caps the workload scale factor per request.
	DefaultMaxScale = 8
	// DefaultMaxJobs caps the number of jobs in one /v2/jobs batch.
	DefaultMaxJobs = 256
	// DefaultTraceRing is how many recent request span trees
	// /debug/trace/recent retains.
	DefaultTraceRing = 64
	// DefaultMaxTraceRecords is the ceiling on pipeline-trace records a
	// /v1/simulate request may ask for; requests asking for more are
	// clamped. Traces are held in memory until rendered into the
	// response, so the bound is a memory bound.
	DefaultMaxTraceRecords = 50_000
	// defaultTraceRecords is the per-request record budget when the
	// client enables tracing without choosing one.
	defaultTraceRecords = 5_000
	// DefaultMaxContexts caps the SMT hardware contexts one simulate
	// request may ask for. Each context embeds its own emulator and
	// fetch queue, so the bound is a memory and CPU bound.
	DefaultMaxContexts = 8

	// asmPrefix marks synthetic workload specs backed by client assembly.
	asmPrefix = "asm:"
)

// Config parameterizes a Server. The zero value serves with defaults.
type Config struct {
	// Workers sizes the shared engine's worker pool
	// (<=0 = runtime.GOMAXPROCS(0)).
	Workers int
	// MaxConcurrent bounds requests executing simultaneously
	// (<=0 = Workers).
	MaxConcurrent int
	// MaxQueue bounds requests waiting for an execution slot; beyond it
	// the daemon answers 429 (0 = DefaultMaxQueue, negative = no queue:
	// reject whenever all slots are busy).
	MaxQueue int
	// CacheCapacity bounds the build cache with LRU eviction
	// (0 = DefaultCacheCapacity, negative = unbounded).
	CacheCapacity int
	// MaxRequestBytes bounds request bodies (0 = DefaultMaxRequestBytes).
	MaxRequestBytes int64
	// MaxInsts is the ceiling on per-request instruction budgets
	// (0 = DefaultMaxInsts). Requests asking for more are clamped.
	MaxInsts uint64
	// MaxScale is the ceiling on per-request workload scale
	// (0 = DefaultMaxScale).
	MaxScale int
	// MaxJobs is the ceiling on jobs per /v2/jobs batch
	// (<=0 = DefaultMaxJobs).
	MaxJobs int
	// Compile overrides the workload build function; nil uses
	// workload.CompileSpec. Client-assembly sources are always handled
	// by the service itself. Tests use this to count or stall builds.
	Compile runner.CompileFunc
	// Logger receives structured request logs (nil = discard). Normal
	// requests log at Debug, server errors at Warn.
	Logger *slog.Logger
	// TraceRing is how many recent request span trees
	// /debug/trace/recent retains (0 = DefaultTraceRing, negative =
	// disable the recorder entirely).
	TraceRing int
	// MaxTraceRecords is the per-request pipeline-trace record ceiling
	// (0 = DefaultMaxTraceRecords).
	MaxTraceRecords int
	// MaxContexts is the ceiling on SMT hardware contexts per simulate
	// request (0 = DefaultMaxContexts).
	MaxContexts int
	// Store, when non-nil, backs the build cache with an on-disk
	// artifact store (compiled binaries and sampled-run records survive
	// restarts and are shared across processes on the same directory).
	Store *store.Store
}

// Server implements the DVI service over HTTP. Construct with New; it is
// an http.Handler, ready to mount on any http.Server or mux.
type Server struct {
	cfg      Config
	mux      *http.ServeMux
	sess     *session.Session
	eng      *runner.Engine // the session's engine (cache accounting)
	met      *metrics
	adm      *admission
	start    time.Time
	compile  runner.CompileFunc // resolved Config.Compile (benchmark specs)
	log      *slog.Logger
	rec      *obs.Recorder // recent request span trees (may be nil)
	reqID    atomic.Uint64 // request-ID counter for generated X-Request-Id values
	draining atomic.Bool   // graceful shutdown has begun; /healthz answers 503
}

// New builds a Server, resolving zero Config fields to defaults.
func New(cfg Config) *Server {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = cfg.Workers
	}
	switch {
	case cfg.MaxQueue == 0:
		cfg.MaxQueue = DefaultMaxQueue
	case cfg.MaxQueue < 0:
		cfg.MaxQueue = 0
	}
	switch {
	case cfg.CacheCapacity == 0:
		cfg.CacheCapacity = DefaultCacheCapacity
	case cfg.CacheCapacity < 0:
		cfg.CacheCapacity = 0
	}
	if cfg.MaxRequestBytes == 0 {
		cfg.MaxRequestBytes = DefaultMaxRequestBytes
	}
	if cfg.MaxInsts == 0 {
		cfg.MaxInsts = DefaultMaxInsts
	}
	if cfg.MaxScale == 0 {
		cfg.MaxScale = DefaultMaxScale
	}
	if cfg.MaxJobs <= 0 {
		cfg.MaxJobs = DefaultMaxJobs
	}
	if cfg.MaxTraceRecords == 0 {
		cfg.MaxTraceRecords = DefaultMaxTraceRecords
	}
	if cfg.MaxContexts == 0 {
		cfg.MaxContexts = DefaultMaxContexts
	}

	s := &Server{
		cfg:     cfg,
		met:     newMetrics(),
		adm:     newAdmission(cfg.MaxConcurrent, cfg.MaxQueue),
		start:   time.Now(),
		compile: cfg.Compile,
		log:     cfg.Logger,
	}
	if s.log == nil {
		s.log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	if cfg.TraceRing >= 0 {
		ring := cfg.TraceRing
		if ring == 0 {
			ring = DefaultTraceRing
		}
		s.rec = obs.NewRecorder(ring)
		// Fold every finished request's span tree into the per-phase
		// latency histograms as it is recorded.
		s.rec.OnRecord = s.met.observeSpans
	}
	if s.compile == nil {
		s.compile = workload.CompileSpec
	}
	s.sess = session.New(
		session.WithWorkers(cfg.Workers),
		session.WithCacheCapacity(cfg.CacheCapacity),
		session.WithCompile(s.compileFor(s.compile)),
		session.WithStore(cfg.Store),
	)
	s.eng = s.sess.Engine()

	mux := http.NewServeMux()
	mux.HandleFunc("POST /v2/jobs", s.heavy("jobs", s.handleJobs))
	mux.HandleFunc("POST /v1/annotate", s.heavy("annotate", s.handleAnnotate))
	mux.HandleFunc("POST /v1/simulate", s.heavy("simulate", s.handleSimulate))
	mux.HandleFunc("POST /v1/ctxswitch", s.heavy("ctxswitch", s.handleCtxSwitch))
	mux.HandleFunc("GET /v1/workloads", s.light("workloads", s.handleWorkloads))
	mux.HandleFunc("GET /healthz", s.light("healthz", s.handleHealth))
	mux.HandleFunc("GET /metrics", s.light("metrics", s.handleMetrics))
	mux.HandleFunc("GET /debug/trace/recent", s.light("trace", s.handleTraceRecent))
	// net/http/pprof registers only on http.DefaultServeMux; mount its
	// handlers explicitly so profiling works on this mux without pulling
	// in whatever else the default mux has accumulated.
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	s.mux = mux
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Session exposes the shared orchestration session every request routes
// through.
func (s *Server) Session() *session.Session { return s.sess }

// Engine exposes the shared execution engine (build cache accounting).
func (s *Server) Engine() *runner.Engine { return s.eng }

// Inflight returns the number of requests currently executing.
func (s *Server) Inflight() int64 { return s.adm.inflight.Load() }

// QueueDepth returns the number of requests waiting for a slot.
func (s *Server) QueueDepth() int64 { return s.adm.waiting.Load() }

// BeginDrain marks the server as draining: /healthz flips to
// "draining" with a 503 so readiness checks (the gateway's health
// checker, load balancers) eject this backend before its listener
// closes. Call it when graceful shutdown starts, before
// http.Server.Shutdown. Request handling is otherwise unaffected —
// in-flight and freshly arriving work still completes while the
// listener lives.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Draining reports whether BeginDrain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// --- admission control ---

// errBusy reports a full admission queue.
var errBusy = errors.New("service: admission queue full")

// admission bounds concurrently executing requests (sem) and the number
// allowed to wait for a slot (maxQueue); further arrivals bounce with
// errBusy so overload produces fast 429s instead of unbounded goroutines.
type admission struct {
	sem      chan struct{}
	maxQueue int
	waiting  atomic.Int64
	inflight atomic.Int64
}

func newAdmission(maxConcurrent, maxQueue int) *admission {
	return &admission{sem: make(chan struct{}, maxConcurrent), maxQueue: maxQueue}
}

// acquire claims an execution slot, waiting in the bounded queue if none
// is free. It fails with errBusy when the queue is full and with the
// context error when the client gives up while queued.
func (a *admission) acquire(ctx context.Context) error {
	select {
	case a.sem <- struct{}{}:
		a.inflight.Add(1)
		return nil
	default:
	}
	if a.waiting.Add(1) > int64(a.maxQueue) {
		a.waiting.Add(-1)
		return errBusy
	}
	defer a.waiting.Add(-1)
	select {
	case a.sem <- struct{}{}:
		// Both arms can be ready at once and select picks randomly: a
		// client that disconnected while queued may still win the slot.
		// Hand it back instead of running work nobody will read — under
		// churn, leaked slots here would strand inflight/queue gauges
		// and eventually wedge admission entirely.
		if err := ctx.Err(); err != nil {
			<-a.sem
			return err
		}
		a.inflight.Add(1)
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (a *admission) release() {
	a.inflight.Add(-1)
	<-a.sem
}

// --- middleware ---

// statusWriter records the response code for metrics.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// Flush forwards to the underlying writer so streaming handlers
// (/v2/jobs NDJSON) can push each line out as it completes.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// requestID returns the request's correlation ID: the inbound
// X-Request-Id when the client supplied one, else a fresh server-local
// ID. Either way the value is echoed on the response, so clients can
// correlate server logs and span trees with their own.
func (s *Server) requestID(r *http.Request) string {
	if id := r.Header.Get("X-Request-Id"); id != "" && len(id) <= 128 {
		return id
	}
	return "dvid-" + strconv.FormatUint(s.reqID.Add(1), 16)
}

// heavy wraps simulation-class endpoints with admission control, body
// limits, spans, logging, and metrics. The body is read in full — and
// bounded — before an execution slot is acquired, so a client trickling
// a slow upload never holds a slot, and over-limit bodies answer 413
// rather than consuming admission capacity.
//
// Each admitted request runs under a root span (named after the
// endpoint) with a "queue-wait" child covering admission and an
// "execute" child covering the handler; the orchestration layers hang
// their own children (build, scan, interval, render, ...) off the
// execute span via the request context. Completed trees land in the
// ring served by /debug/trace/recent and fold into the per-phase
// histograms.
func (s *Server) heavy(name string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		reqID := s.requestID(r)
		w.Header().Set("X-Request-Id", reqID)
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxRequestBytes))
		switch {
		case errors.As(err, new(*http.MaxBytesError)):
			s.writeError(sw, http.StatusRequestEntityTooLarge,
				"request body exceeds %d bytes", s.cfg.MaxRequestBytes)
		case err != nil:
			s.writeError(sw, http.StatusBadRequest, "read request body: %v", err)
		default:
			r.Body = io.NopCloser(bytes.NewReader(body))
			ctx := r.Context()
			if s.rec != nil {
				ctx = obs.WithRecorder(ctx, s.rec)
			}
			ctx, span := obs.StartSpan(ctx, name)
			if span != nil {
				span.SetAttr("request_id", reqID)
				span.SetAttr("bytes", len(body))
			}
			qctx, qspan := obs.StartSpan(ctx, "queue-wait")
			err := s.adm.acquire(qctx)
			qspan.End()
			if err != nil {
				if errors.Is(err, errBusy) {
					s.writeError(sw, http.StatusTooManyRequests,
						"admission queue full (%d executing, %d queued); retry later",
						s.adm.inflight.Load(), s.adm.maxQueue)
				} else {
					s.writeError(sw, http.StatusServiceUnavailable, "request abandoned while queued: %v", err)
				}
			} else {
				func() {
					defer s.adm.release()
					ectx, espan := obs.StartSpan(ctx, "execute")
					defer espan.End()
					h(sw, r.WithContext(ectx))
				}()
			}
			if span != nil {
				span.SetAttr("code", sw.code)
				span.End()
			}
		}
		// Admission rejections are counted but kept out of the latency
		// histogram: a flood of instant 429s must not mask the latency
		// of the work that was actually admitted.
		if sw.code == http.StatusTooManyRequests {
			s.met.reject(name)
		} else {
			s.met.observe(name, sw.code, time.Since(start))
		}
		s.logRequest(name, reqID, sw.code, time.Since(start))
	}
}

// light wraps cheap read-only endpoints with metrics and logging only.
func (s *Server) light(name string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		reqID := s.requestID(r)
		w.Header().Set("X-Request-Id", reqID)
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		h(sw, r)
		s.met.observe(name, sw.code, time.Since(start))
		s.logRequest(name, reqID, sw.code, time.Since(start))
	}
}

// logRequest writes one structured line per request: Debug normally,
// Warn for server-side errors so they surface at default log levels.
func (s *Server) logRequest(name, reqID string, code int, d time.Duration) {
	lvl := slog.LevelDebug
	if code >= 500 {
		lvl = slog.LevelWarn
	}
	s.log.Log(context.Background(), lvl, "request",
		"endpoint", name, "request_id", reqID, "code", code,
		"duration_ms", float64(d.Microseconds())/1000)
}

// --- JSON helpers ---

func (s *Server) writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

func (s *Server) writeError(w http.ResponseWriter, code int, format string, args ...any) {
	s.writeJSON(w, code, Error{Message: fmt.Sprintf(format, args...)})
}

// readJSON decodes a request body strictly: unknown fields are an error,
// so client typos fail loudly instead of silently running defaults.
func readJSON(r *http.Request, dst any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	return dec.Decode(dst)
}

// --- request sources ---

// resolveSource turns the (workload, asm, scale) request triple into a
// spec the engine can build: a registered benchmark, or a synthetic spec
// backed by the submitted assembly (scale is meaningless there and pins
// to 1 so identical submissions share one build-cache key).
func (s *Server) resolveSource(name, asm string, scale int) (workload.Spec, int, error) {
	switch {
	case name != "" && asm != "":
		return workload.Spec{}, 0, fmt.Errorf("set either workload or asm, not both")
	case name != "":
		spec, ok := workload.ByName(name)
		if !ok {
			return workload.Spec{}, 0, fmt.Errorf("unknown workload %q (have %s)", name, strings.Join(workload.Names(), ", "))
		}
		if scale < 1 {
			scale = 1
		}
		if scale > s.cfg.MaxScale {
			scale = s.cfg.MaxScale
		}
		return spec, scale, nil
	case asm != "":
		return s.asmSpec(asm), 1, nil
	}
	return workload.Spec{}, 0, fmt.Errorf("one of workload or asm is required")
}

// asmSpec wraps the assembly text in a synthetic spec whose name
// content-addresses the source, so identical submissions share one
// build-cache key. The text travels inside the spec itself (Spec.Asm):
// nothing to expire, nothing for a client to pin beyond in-flight
// requests, and cached artifacts are keyed by digest, not by reference.
func (s *Server) asmSpec(asm string) workload.Spec {
	sum := sha256.Sum256([]byte(asm))
	return workload.Spec{
		Name:     asmPrefix + hex.EncodeToString(sum[:12]),
		Describe: "client-submitted assembly",
		Asm:      asm,
	}
}

// compileFor adapts the engine's compile function: benchmark specs build
// through base (workload.CompileSpec unless overridden), client-assembly
// specs parse, optionally annotate, and link the submitted text. Either
// way the artifacts land in the shared single-flight build cache.
func (s *Server) compileFor(base runner.CompileFunc) runner.CompileFunc {
	return func(sp workload.Spec, scale int, opt workload.BuildOptions) (*prog.Program, *prog.Image, error) {
		if sp.Asm == "" {
			return base(sp, scale, opt)
		}
		pr, err := prog.ParseAsm(sp.Asm)
		if err != nil {
			return nil, nil, err
		}
		switch {
		case opt.Infer:
			if _, err := rewrite.Infer(pr, rewrite.Options{Policy: opt.Policy}); err != nil {
				return nil, nil, err
			}
		case opt.EDVI:
			if _, err := rewrite.InsertKills(pr, rewrite.Options{Policy: opt.Policy}); err != nil {
				return nil, nil, err
			}
		}
		img, err := pr.Link()
		if err != nil {
			return nil, nil, err
		}
		return pr, img, nil
	}
}

// clampInsts applies the server's instruction budget ceiling; the daemon
// never runs unbounded simulations for a client.
func (s *Server) clampInsts(v uint64) uint64 {
	if v == 0 || v > s.cfg.MaxInsts {
		return s.cfg.MaxInsts
	}
	return v
}

// --- handlers ---
//
// The /v1 one-shot endpoints are shims: each validates through the same
// prepare step and executes through the same session path as a /v2/jobs
// batch entry of the corresponding kind, then unwraps the single result.
// Their response bytes are pinned against the pre-shim wire format by
// TestV1GoldenShims.

func (s *Server) handleAnnotate(w http.ResponseWriter, r *http.Request) {
	var req AnnotateRequest
	if err := readJSON(r, &req); err != nil {
		s.writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	pj, herr := s.prepareAnnotate(&req)
	if herr != nil {
		s.writeError(w, herr.code, "%s", herr.msg)
		return
	}
	var line JobResult
	if herr := pj.inline(r.Context(), &line); herr != nil {
		s.writeError(w, herr.code, "%s", herr.msg)
		return
	}
	s.writeJSON(w, http.StatusOK, line.Annotate)
}

func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	var req SimulateRequest
	if err := readJSON(r, &req); err != nil {
		s.writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	pj, herr := s.prepareSimulate(&req)
	if herr != nil {
		s.writeError(w, herr.code, "%s", herr.msg)
		return
	}
	line, err := s.executeOne(r.Context(), pj)
	if err != nil {
		s.runError(w, r, err)
		return
	}
	s.writeJSON(w, http.StatusOK, line.Simulate)
}

func (s *Server) handleCtxSwitch(w http.ResponseWriter, r *http.Request) {
	var req CtxSwitchRequest
	if err := readJSON(r, &req); err != nil {
		s.writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	pj, herr := s.prepareCtxSwitch(&req)
	if herr != nil {
		s.writeError(w, herr.code, "%s", herr.msg)
		return
	}
	line, err := s.executeOne(r.Context(), pj)
	if err != nil {
		s.runError(w, r, err)
		return
	}
	s.writeJSON(w, http.StatusOK, line.CtxSwitch)
}

func (s *Server) handleWorkloads(w http.ResponseWriter, r *http.Request) {
	var out []WorkloadInfo
	for _, spec := range workload.All() {
		out = append(out, WorkloadInfo{Name: spec.Name, Describe: spec.Describe})
	}
	s.writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	hits, misses := s.eng.Cache().Stats()
	h := Health{
		Status:         "ok",
		UptimeSeconds:  time.Since(s.start).Seconds(),
		Workers:        s.eng.Workers(),
		Inflight:       s.adm.inflight.Load(),
		QueueDepth:     s.adm.waiting.Load(),
		QueueCapacity:  s.adm.maxQueue,
		CacheEntries:   s.eng.Cache().Len(),
		CacheHits:      hits,
		CacheMisses:    misses,
		CacheEvictions: s.eng.Cache().Evictions(),
		CacheCompiles:  s.eng.Cache().Compiles(),
	}
	if st := s.eng.Store(); st != nil {
		sst := st.Stats()
		h.Store = &StoreHealth{
			Entries:     sst.Entries,
			Bytes:       sst.Bytes,
			Hits:        sst.Hits,
			Misses:      sst.Misses,
			Puts:        sst.Puts,
			Evictions:   sst.Evictions,
			Quarantined: sst.Quarantined,
		}
	}
	code := http.StatusOK
	if s.draining.Load() {
		// Still answering requests, but readiness checks must stop
		// routing fresh work here: the listener is about to close.
		h.Status = "draining"
		code = http.StatusServiceUnavailable
	}
	s.writeJSON(w, code, h)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	hits, misses := s.eng.Cache().Stats()
	pool := s.eng.PoolStats()
	gauges := []gauge{
		{name: "dvid_uptime_seconds", help: "Seconds since the server started.", value: time.Since(s.start).Seconds()},
		{name: "dvid_inflight_requests", help: "Requests currently executing.", value: float64(s.adm.inflight.Load())},
		{name: "dvid_queue_depth", help: "Requests waiting for an execution slot.", value: float64(s.adm.waiting.Load())},
		{name: "dvid_queue_capacity", help: "Admission queue bound.", value: float64(s.adm.maxQueue)},
		{name: "dvid_build_cache_hits_total", help: "Build cache hits.", value: float64(hits), counter: true},
		{name: "dvid_build_cache_misses_total", help: "Build cache misses (compiles).", value: float64(misses), counter: true},
		{name: "dvid_build_cache_evictions_total", help: "Build cache LRU evictions.", value: float64(s.eng.Cache().Evictions()), counter: true},
		{name: "dvid_build_cache_entries", help: "Distinct binaries cached or building.", value: float64(s.eng.Cache().Len())},
		{name: "dvid_machine_pool_reuse_total", help: "Timing jobs served by resetting a pooled warm machine.", value: float64(pool.MachineReuse), counter: true},
		{name: "dvid_machine_pool_fresh_total", help: "Timing jobs that had to construct a fresh machine.", value: float64(pool.MachineFresh), counter: true},
		{name: "dvid_emulator_pool_reuse_total", help: "Functional/ctxswitch jobs served by resetting a pooled warm emulator.", value: float64(pool.EmuReuse), counter: true},
		{name: "dvid_emulator_pool_fresh_total", help: "Functional/ctxswitch jobs that had to construct a fresh emulator.", value: float64(pool.EmuFresh), counter: true},
		{name: "dvid_checkpoint_pool_reuse_total", help: "Sampling checkpoints served from the recycled-checkpoint pool.", value: float64(pool.CheckpointReuse), counter: true},
		{name: "dvid_checkpoint_pool_fresh_total", help: "Sampling checkpoints that had to be freshly allocated.", value: float64(pool.CheckpointFresh), counter: true},
		{name: "dvid_build_compiles_total", help: "Compile invocations (stays zero across a restart served from a warm artifact store).", value: float64(s.eng.Cache().Compiles()), counter: true},
	}
	if st := s.eng.Store(); st != nil {
		sst := st.Stats()
		gauges = append(gauges,
			gauge{name: "dvid_store_hits_total", help: "Artifact-store reads served from a checksum-verified entry.", value: float64(sst.Hits), counter: true},
			gauge{name: "dvid_store_misses_total", help: "Artifact-store reads with no servable entry.", value: float64(sst.Misses), counter: true},
			gauge{name: "dvid_store_puts_total", help: "Artifacts persisted.", value: float64(sst.Puts), counter: true},
			gauge{name: "dvid_store_evictions_total", help: "Artifacts evicted by the disk byte budget.", value: float64(sst.Evictions), counter: true},
			gauge{name: "dvid_store_quarantined_total", help: "Corrupt artifacts quarantined on read (never served).", value: float64(sst.Quarantined), counter: true},
			gauge{name: "dvid_store_entries", help: "Live artifacts on disk.", value: float64(sst.Entries)},
			gauge{name: "dvid_store_bytes", help: "Bytes held by live artifacts.", value: float64(sst.Bytes)},
		)
	}
	body := s.met.render(gauges)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = w.Write([]byte(body))
}

// handleTraceRecent serves the last-N completed request span trees,
// newest first. It answers from the in-process ring — no storage, no
// exporter — which is exactly enough to ask "where did that slow
// request spend its time?" against a live daemon.
func (s *Server) handleTraceRecent(w http.ResponseWriter, r *http.Request) {
	if s.rec == nil {
		s.writeError(w, http.StatusNotFound, "trace recorder disabled")
		return
	}
	s.writeJSON(w, http.StatusOK, TraceRecent{Traces: s.rec.Recent()})
}

// runError maps an engine failure onto an HTTP status: client-abandoned
// contexts get 503 (nobody is reading anyway), inline jobs carry their
// own status, everything else is a bad build or run rooted in the
// request (400).
func (s *Server) runError(w http.ResponseWriter, r *http.Request, err error) {
	if r.Context().Err() != nil {
		s.writeError(w, http.StatusServiceUnavailable, "request cancelled: %v", err)
		return
	}
	var herr *httpError
	if errors.As(err, &herr) {
		s.writeError(w, herr.code, "%s", herr.msg)
		return
	}
	s.writeError(w, http.StatusBadRequest, "%v", err)
}
