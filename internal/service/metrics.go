package service

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// metrics aggregates per-endpoint request counts and latency histograms
// for GET /metrics. The exposition format is the Prometheus text format,
// hand-rolled: the daemon must not grow dependencies for a handful of
// counters.
type metrics struct {
	mu   sync.Mutex
	reqs map[reqKey]int64
	lat  map[string]*histogram
}

type reqKey struct {
	endpoint string
	code     int
}

// latBuckets are the histogram upper bounds in seconds. Simulations run
// milliseconds to seconds; the range covers both tails.
var latBuckets = [...]float64{0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}

type histogram struct {
	counts [len(latBuckets) + 1]int64 // +1 for +Inf
	sum    float64
	total  int64
}

func newMetrics() *metrics {
	return &metrics{reqs: map[reqKey]int64{}, lat: map[string]*histogram{}}
}

// observe records one finished request.
func (m *metrics) observe(endpoint string, code int, d time.Duration) {
	secs := d.Seconds()
	m.mu.Lock()
	defer m.mu.Unlock()
	m.reqs[reqKey{endpoint, code}]++
	h := m.lat[endpoint]
	if h == nil {
		h = &histogram{}
		m.lat[endpoint] = h
	}
	i := sort.SearchFloat64s(latBuckets[:], secs)
	h.counts[i]++
	h.sum += secs
	h.total++
}

// gauge is one instantaneous value appended by the server at render time.
// counter marks values that only ever increase (cache hit/miss/eviction
// totals) so the exposition declares the correct Prometheus type.
type gauge struct {
	name, help string
	value      float64
	counter    bool
}

// render writes the exposition text: request counters, latency
// histograms, then the provided gauges (queue depth, cache traffic, ...).
func (m *metrics) render(gauges []gauge) string {
	var b strings.Builder
	m.mu.Lock()

	keys := make([]reqKey, 0, len(m.reqs))
	for k := range m.reqs {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].endpoint != keys[j].endpoint {
			return keys[i].endpoint < keys[j].endpoint
		}
		return keys[i].code < keys[j].code
	})
	b.WriteString("# HELP dvid_requests_total Requests served, by endpoint and status code.\n")
	b.WriteString("# TYPE dvid_requests_total counter\n")
	for _, k := range keys {
		fmt.Fprintf(&b, "dvid_requests_total{endpoint=%q,code=\"%d\"} %d\n", k.endpoint, k.code, m.reqs[k])
	}

	eps := make([]string, 0, len(m.lat))
	for ep := range m.lat {
		eps = append(eps, ep)
	}
	sort.Strings(eps)
	b.WriteString("# HELP dvid_request_duration_seconds Request latency.\n")
	b.WriteString("# TYPE dvid_request_duration_seconds histogram\n")
	for _, ep := range eps {
		h := m.lat[ep]
		cum := int64(0)
		for i, ub := range latBuckets {
			cum += h.counts[i]
			fmt.Fprintf(&b, "dvid_request_duration_seconds_bucket{endpoint=%q,le=\"%g\"} %d\n", ep, ub, cum)
		}
		fmt.Fprintf(&b, "dvid_request_duration_seconds_bucket{endpoint=%q,le=\"+Inf\"} %d\n", ep, h.total)
		fmt.Fprintf(&b, "dvid_request_duration_seconds_sum{endpoint=%q} %g\n", ep, h.sum)
		fmt.Fprintf(&b, "dvid_request_duration_seconds_count{endpoint=%q} %d\n", ep, h.total)
	}
	m.mu.Unlock()

	for _, g := range gauges {
		typ := "gauge"
		if g.counter {
			typ = "counter"
		}
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n%s %g\n", g.name, g.help, g.name, typ, g.name, g.value)
	}
	return b.String()
}
