package service

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"dvi/internal/obs"
	"dvi/internal/ooo"
)

// metrics aggregates per-endpoint request counts, latency histograms,
// per-phase orchestration timings and simulator-derived counters for
// GET /metrics. The exposition format is the Prometheus text format,
// hand-rolled: the daemon must not grow dependencies for a handful of
// counters.
type metrics struct {
	mu       sync.Mutex
	reqs     map[reqKey]int64
	rejected map[string]int64 // admission 429s, by endpoint
	lat      map[string]*histogram
	phases   map[string]*histogram // span-tree phase durations, by phase name

	// Simulator counters, accumulated from every timing result the
	// service renders (exact and sampled): where the simulated cycles
	// went, aggregated from the microarchitectural plane's Stats.
	sim simCounters

	// Sampling quality: how many sampled estimates were served and the
	// relative CI half-width of the most recent one.
	sampledRuns  int64
	sampledRelCI float64
}

type reqKey struct {
	endpoint string
	code     int
}

// simCounters are monotonic totals over every timing simulation the
// service has answered.
type simCounters struct {
	runs          int64
	cycles        uint64
	instructions  uint64
	mispredicts   uint64
	wrongPath     uint64
	renameStalls  uint64
	windowStalls  uint64
	portStalls    uint64
	elimSaves     uint64
	elimRestores  uint64
	kills         uint64
	earlyReclaims uint64
	faults        uint64
}

// latBuckets are the histogram upper bounds in seconds. Simulations run
// milliseconds to seconds; the range covers both tails.
var latBuckets = [...]float64{0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}

type histogram struct {
	counts [len(latBuckets) + 1]int64 // +1 for +Inf
	sum    float64
	total  int64
}

func (h *histogram) observe(secs float64) {
	i := sort.SearchFloat64s(latBuckets[:], secs)
	h.counts[i]++
	h.sum += secs
	h.total++
}

func newMetrics() *metrics {
	return &metrics{
		reqs:     map[reqKey]int64{},
		rejected: map[string]int64{},
		lat:      map[string]*histogram{},
		phases:   map[string]*histogram{},
	}
}

// observe records one finished request in the latency histogram. Callers
// must route admission rejections through reject instead: a 429 is
// answered in microseconds and would drag the endpoint's p99 toward
// zero, masking real latency regressions during overload — exactly when
// the dashboards matter.
func (m *metrics) observe(endpoint string, code int, d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.reqs[reqKey{endpoint, code}]++
	h := m.lat[endpoint]
	if h == nil {
		h = &histogram{}
		m.lat[endpoint] = h
	}
	h.observe(d.Seconds())
}

// reject records an admission-rejected (429) request: counted in
// dvid_requests_total and dvid_admission_rejected_total, excluded from
// the latency histogram.
func (m *metrics) reject(endpoint string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.reqs[reqKey{endpoint, 429}]++
	m.rejected[endpoint]++
}

// observeSpans folds one completed request span tree into the per-phase
// duration histograms (the Recorder's OnRecord hook). The root span is
// skipped — its duration is already the request latency histogram.
func (m *metrics) observeSpans(root *obs.Span) {
	type sample struct {
		phase string
		secs  float64
	}
	var samples []sample
	root.Visit(func(s *obs.Span) {
		if s == root {
			return
		}
		samples = append(samples, sample{s.Name(), s.Duration().Seconds()})
	})
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, sm := range samples {
		h := m.phases[sm.phase]
		if h == nil {
			h = &histogram{}
			m.phases[sm.phase] = h
		}
		h.observe(sm.secs)
	}
}

// observeSim accumulates one timing run's statistics.
func (m *metrics) observeSim(st ooo.Stats) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.sim.runs++
	m.sim.cycles += st.Cycles
	m.sim.instructions += st.Committed
	m.sim.mispredicts += st.Mispredicts
	m.sim.wrongPath += st.WrongPath
	m.sim.renameStalls += st.RenameStallCycles
	m.sim.windowStalls += st.WindowFullCycles
	m.sim.portStalls += st.PortStallCycles
	m.sim.elimSaves += st.ElimSaves
	m.sim.elimRestores += st.ElimRests
	m.sim.kills += st.KillsSeen
	m.sim.earlyReclaims += st.EarlyReclaimed
	m.sim.faults += st.Faults
}

// observeSampled records one served sampled estimate and its relative CI
// half-width.
func (m *metrics) observeSampled(relCI float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.sampledRuns++
	m.sampledRelCI = relCI
}

// gauge is one instantaneous value appended by the server at render time.
// counter marks values that only ever increase (cache hit/miss/eviction
// totals) so the exposition declares the correct Prometheus type.
type gauge struct {
	name, help string
	value      float64
	counter    bool
}

// writeHistogram emits one histogram family member under name with the
// given label.
func writeHistogram(b *strings.Builder, name, labelKey, labelVal string, h *histogram) {
	cum := int64(0)
	for i, ub := range latBuckets {
		cum += h.counts[i]
		fmt.Fprintf(b, "%s_bucket{%s=%q,le=\"%g\"} %d\n", name, labelKey, labelVal, ub, cum)
	}
	fmt.Fprintf(b, "%s_bucket{%s=%q,le=\"+Inf\"} %d\n", name, labelKey, labelVal, h.total)
	fmt.Fprintf(b, "%s_sum{%s=%q} %g\n", name, labelKey, labelVal, h.sum)
	fmt.Fprintf(b, "%s_count{%s=%q} %d\n", name, labelKey, labelVal, h.total)
}

// sortedKeys returns the map's keys in sorted order.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// render writes the exposition text: request counters, admission
// rejections, latency and phase histograms, simulator totals, then the
// provided gauges (queue depth, cache traffic, ...).
func (m *metrics) render(gauges []gauge) string {
	var b strings.Builder
	m.mu.Lock()

	keys := make([]reqKey, 0, len(m.reqs))
	for k := range m.reqs {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].endpoint != keys[j].endpoint {
			return keys[i].endpoint < keys[j].endpoint
		}
		return keys[i].code < keys[j].code
	})
	b.WriteString("# HELP dvid_requests_total Requests served, by endpoint and status code.\n")
	b.WriteString("# TYPE dvid_requests_total counter\n")
	for _, k := range keys {
		fmt.Fprintf(&b, "dvid_requests_total{endpoint=%q,code=\"%d\"} %d\n", k.endpoint, k.code, m.reqs[k])
	}

	if len(m.rejected) > 0 {
		b.WriteString("# HELP dvid_admission_rejected_total Requests rejected by admission control (429), excluded from the latency histogram.\n")
		b.WriteString("# TYPE dvid_admission_rejected_total counter\n")
		for _, ep := range sortedKeys(m.rejected) {
			fmt.Fprintf(&b, "dvid_admission_rejected_total{endpoint=%q} %d\n", ep, m.rejected[ep])
		}
	}

	b.WriteString("# HELP dvid_request_duration_seconds Request latency (admission rejections excluded).\n")
	b.WriteString("# TYPE dvid_request_duration_seconds histogram\n")
	for _, ep := range sortedKeys(m.lat) {
		writeHistogram(&b, "dvid_request_duration_seconds", "endpoint", ep, m.lat[ep])
	}

	if len(m.phases) > 0 {
		b.WriteString("# HELP dvid_phase_duration_seconds Per-phase orchestration latency from request span trees (queue-wait, execute, build, scan, interval, render, ...).\n")
		b.WriteString("# TYPE dvid_phase_duration_seconds histogram\n")
		for _, ph := range sortedKeys(m.phases) {
			writeHistogram(&b, "dvid_phase_duration_seconds", "phase", ph, m.phases[ph])
		}
	}

	simCounters := []gauge{
		{name: "dvid_sim_runs_total", help: "Timing simulations answered (exact runs and sampled intervals aggregate alike).", value: float64(m.sim.runs), counter: true},
		{name: "dvid_sim_cycles_total", help: "Simulated cycles across all timing runs.", value: float64(m.sim.cycles), counter: true},
		{name: "dvid_sim_instructions_total", help: "Committed original instructions across all timing runs.", value: float64(m.sim.instructions), counter: true},
		{name: "dvid_sim_mispredicts_total", help: "Recovered branch mispredictions across all timing runs.", value: float64(m.sim.mispredicts), counter: true},
		{name: "dvid_sim_wrong_path_total", help: "Wrong-path instructions dispatched (squashed at recovery).", value: float64(m.sim.wrongPath), counter: true},
		{name: "dvid_sim_rename_stall_cycles_total", help: "Dispatch cycles stalled on an empty free list.", value: float64(m.sim.renameStalls), counter: true},
		{name: "dvid_sim_window_full_cycles_total", help: "Dispatch cycles stalled on a full instruction window.", value: float64(m.sim.windowStalls), counter: true},
		{name: "dvid_sim_port_stall_cycles_total", help: "Commit cycles stalled waiting for a cache port.", value: float64(m.sim.portStalls), counter: true},
		{name: "dvid_sim_elim_saves_total", help: "Saves eliminated at dispatch by dead-value information.", value: float64(m.sim.elimSaves), counter: true},
		{name: "dvid_sim_elim_restores_total", help: "Restores eliminated at dispatch by dead-value information.", value: float64(m.sim.elimRestores), counter: true},
		{name: "dvid_sim_kills_total", help: "E-DVI kill annotations committed.", value: float64(m.sim.kills), counter: true},
		{name: "dvid_sim_early_reclaims_total", help: "Physical registers reclaimed early by DVI kills.", value: float64(m.sim.earlyReclaims), counter: true},
		{name: "dvid_sim_faults_total", help: "Correct-path fetches outside the text segment (wild jumps).", value: float64(m.sim.faults), counter: true},
		{name: "dvid_sampled_runs_total", help: "Sampled (statistical) simulations served.", value: float64(m.sampledRuns), counter: true},
		{name: "dvid_sampled_rel_ci", help: "Relative CI half-width of the most recently served sampled estimate.", value: m.sampledRelCI},
	}
	m.mu.Unlock()

	for _, g := range append(simCounters, gauges...) {
		typ := "gauge"
		if g.counter {
			typ = "counter"
		}
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n%s %g\n", g.name, g.help, g.name, typ, g.name, g.value)
	}
	return b.String()
}
