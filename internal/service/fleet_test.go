package service_test

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dvi/internal/prog"
	"dvi/internal/service"
	"dvi/internal/store"
	"dvi/internal/workload"
)

// TestClientRequestTimeout is the satellite regression test: against a
// deliberately stalled daemon, a client built with WithRequestTimeout
// fails every method — unary and streaming — within its budget instead
// of hanging for as long as the server feels like.
func TestClientRequestTimeout(t *testing.T) {
	// The stalled handler drains the body first: the HTTP server only
	// watches for client disconnects once the request body is consumed,
	// and without that the stalled goroutines would outlive the test.
	// The 10s floor keeps the stall far beyond the client budget while
	// letting the server close down afterwards.
	stall := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		select {
		case <-r.Context().Done():
		case <-time.After(10 * time.Second):
		}
	}))
	defer stall.Close()

	c := service.NewClient(stall.URL, nil, service.WithRequestTimeout(100*time.Millisecond))
	ctx := context.Background()

	cases := map[string]func() error{
		"simulate": func() error {
			_, err := c.Simulate(ctx, service.SimulateRequest{Workload: "compress"})
			return err
		},
		"health": func() error {
			_, err := c.Health(ctx)
			return err
		},
		"runjobs": func() error {
			return c.RunJobs(ctx, []service.JobRequest{
				{Kind: "simulate", Simulate: &service.SimulateRequest{Workload: "compress"}},
			}, func(service.JobResult) error { return nil })
		},
	}
	for name, call := range cases {
		start := time.Now()
		err := call()
		if err == nil {
			t.Errorf("%s: stalled call returned nil error", name)
		}
		if d := time.Since(start); d > 5*time.Second {
			t.Errorf("%s: took %v against a 100ms request timeout", name, d)
		}
	}

	// The timeout must also cover stream consumption, not just the
	// first byte: a server that sends one line then stalls mid-stream
	// must fail RunJobs too.
	line, _ := json.Marshal(service.JobResult{Kind: "simulate", Error: "x"})
	drip := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.WriteHeader(http.StatusOK)
		w.Write(append(line, '\n'))
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
		select {
		case <-r.Context().Done():
		case <-time.After(10 * time.Second):
		}
	}))
	defer drip.Close()
	c2 := service.NewClient(drip.URL, nil, service.WithRequestTimeout(100*time.Millisecond))
	start := time.Now()
	err := c2.RunJobs(ctx, make([]service.JobRequest, 2), func(service.JobResult) error { return nil })
	if err == nil {
		t.Error("mid-stream stall returned nil error")
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Errorf("mid-stream stall took %v", d)
	}

	// And without the option the caller's context still rules: a
	// cancelled ctx fails fast.
	c3 := service.NewClient(stall.URL, nil)
	cctx, cancel := context.WithTimeout(ctx, 50*time.Millisecond)
	defer cancel()
	if _, err := c3.Health(cctx); err == nil {
		t.Error("cancelled context returned nil error")
	}
}

// TestHealthzDrainingAndStore covers the readiness-aware /healthz: the
// store and compile counters appear while serving, and BeginDrain flips
// the endpoint to 503/"draining" so a gateway ejects the backend before
// its listener closes.
func TestHealthzDrainingAndStore(t *testing.T) {
	st, err := store.Open(store.Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	svc := service.New(service.Config{Store: st})
	ts := httptest.NewServer(svc)
	defer ts.Close()

	if code, body := postJSON(t, ts.URL+"/v1/simulate", `{"workload":"compress","max_insts":50000}`); code != http.StatusOK {
		t.Fatalf("simulate: HTTP %d: %s", code, body)
	}

	getHealth := func(wantCode int) service.Health {
		t.Helper()
		res, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer res.Body.Close()
		if res.StatusCode != wantCode {
			t.Fatalf("healthz: HTTP %d, want %d", res.StatusCode, wantCode)
		}
		var h service.Health
		if err := json.NewDecoder(res.Body).Decode(&h); err != nil {
			t.Fatal(err)
		}
		return h
	}

	h := getHealth(http.StatusOK)
	if h.Status != "ok" {
		t.Fatalf("status %q, want ok", h.Status)
	}
	if h.CacheCompiles != 1 {
		t.Fatalf("cache_compiles %d, want 1", h.CacheCompiles)
	}
	if h.Store == nil {
		t.Fatal("store block missing with a store configured")
	}
	if h.Store.Entries != 1 || h.Store.Puts != 1 {
		t.Fatalf("store block %+v, want 1 entry from 1 put", h.Store)
	}

	svc.BeginDrain()
	h = getHealth(http.StatusServiceUnavailable)
	if h.Status != "draining" {
		t.Fatalf("status %q after BeginDrain, want draining", h.Status)
	}
	// Draining only changes readiness: the daemon still serves work
	// while the listener lives.
	if code, _ := postJSON(t, ts.URL+"/v1/simulate", `{"workload":"compress","max_insts":50000}`); code != http.StatusOK {
		t.Fatalf("simulate while draining: HTTP %d", code)
	}
}

// fetchMetrics returns the /metrics exposition body.
func fetchMetrics(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	res, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(res.Body); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestAdmissionQueueChurn is the satellite accounting fix's regression
// test: clients that give up while queued — including ones that race
// the slot grant — must leave dvid_queue_depth and
// dvid_inflight_requests at zero once the storm passes, and admission
// must still work afterwards.
func TestAdmissionQueueChurn(t *testing.T) {
	gate := make(chan struct{})
	var gated atomic.Bool
	svc := service.New(service.Config{
		Workers:       2,
		MaxConcurrent: 1,
		MaxQueue:      256,
		Compile: func(s workload.Spec, scale int, opt workload.BuildOptions) (*prog.Program, *prog.Image, error) {
			if gated.Load() {
				<-gate
			}
			return workload.CompileSpec(s, scale, opt)
		},
	})
	ts := httptest.NewServer(svc)
	defer ts.Close()

	// Occupy the single execution slot with a gated request.
	gated.Store(true)
	holderDone := make(chan int, 1)
	go func() {
		code, _ := postJSON(t, ts.URL+"/v1/simulate", `{"workload":"go","max_insts":50000}`)
		holderDone <- code
	}()
	waitFor(t, "holder in flight", func() bool { return svc.Inflight() == 1 })

	// Storm: queued clients that all disconnect before getting a slot.
	const churn = 64
	var wg sync.WaitGroup
	for i := 0; i < churn; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), time.Duration(1+i%20)*time.Millisecond)
			defer cancel()
			body := bytes.NewReader([]byte(`{"workload":"compress","max_insts":50000}`))
			req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/simulate", body)
			if err != nil {
				t.Error(err)
				return
			}
			req.Header.Set("Content-Type", "application/json")
			res, err := http.DefaultClient.Do(req)
			if err == nil {
				res.Body.Close()
			}
		}(i)
	}
	wg.Wait()

	// Every abandoned client must have released its queue slot even if
	// it won the semaphore race after cancelling.
	waitFor(t, "queue drained", func() bool { return svc.QueueDepth() == 0 })
	if v := metricValue(t, fetchMetrics(t, ts), "dvid_queue_depth"); v != 0 {
		t.Fatalf("dvid_queue_depth %v after churn, want 0", v)
	}

	gated.Store(false)
	close(gate)
	if code := <-holderDone; code != http.StatusOK {
		t.Fatalf("holder: HTTP %d", code)
	}
	waitFor(t, "inflight drained", func() bool { return svc.Inflight() == 0 })
	if v := metricValue(t, fetchMetrics(t, ts), "dvid_inflight_requests"); v != 0 {
		t.Fatalf("dvid_inflight_requests %v after churn, want 0", v)
	}

	// Admission still grants slots: the gauge accounting did not wedge.
	if code, body := postJSON(t, ts.URL+"/v1/simulate", `{"workload":"compress","max_insts":50000}`); code != http.StatusOK {
		t.Fatalf("post-churn simulate: HTTP %d: %s", code, body)
	}
}

// fleetBatch is the /v2 batch the crash-recovery tests replay: every
// job kind, plus a sampled simulation, over two workloads.
const fleetBatch = `{"jobs":[
  {"kind":"simulate","simulate":{"workload":"compress","max_insts":50000}},
  {"kind":"annotate","annotate":{"workload":"li"}},
  {"kind":"ctxswitch","ctxswitch":{"workload":"li","interval":97,"max_insts":100000}},
  {"kind":"simulate","simulate":{"workload":"go","max_insts":120000,"sampling":{"interval":4000,"warmup":1000}}}
]}`

// TestRestartOnStoreDirZeroRecompiles is the in-process version of the
// CI crash-recovery smoke: a daemon restarted over the same store
// directory answers the same /v2 batch byte-identically with zero
// compiler invocations and zero sampled scans — everything fills from
// disk artifacts.
func TestRestartOnStoreDirZeroRecompiles(t *testing.T) {
	dir := t.TempDir()
	runBatch := func() (*service.Server, []byte) {
		t.Helper()
		st, err := store.Open(store.Options{Dir: dir})
		if err != nil {
			t.Fatal(err)
		}
		svc := service.New(service.Config{Store: st})
		ts := httptest.NewServer(svc)
		defer ts.Close()
		code, body := postJSON(t, ts.URL+"/v2/jobs", fleetBatch)
		if code != http.StatusOK {
			t.Fatalf("batch: HTTP %d: %s", code, body)
		}
		return svc, body
	}

	svc1, cold := runBatch()
	if n := svc1.Engine().Cache().Compiles(); n == 0 {
		t.Fatal("cold run compiled nothing?")
	}

	svc2, warm := runBatch()
	if !bytes.Equal(cold, warm) {
		t.Fatalf("restarted batch differs:\ncold: %s\nwarm: %s", cold, warm)
	}
	if n := svc2.Engine().Cache().Compiles(); n != 0 {
		t.Fatalf("restarted daemon compiled %d times, want 0", n)
	}
	if n := svc2.Engine().Cache().StoreHits(); n == 0 {
		t.Fatal("restarted daemon never hit the artifact store")
	}
	if s := svc2.Engine().Store().Stats(); s.Hits == 0 || s.Puts != 0 {
		t.Fatalf("restarted store stats: %+v", s)
	}
}

// TestStoreCorruptionFallsBackToCompile drives the quarantine path end
// to end at the service layer: with every artifact write corrupted by
// the fault injector, a restarted daemon detects the bad checksums,
// quarantines the artifacts, recompiles, and still answers the batch
// byte-identically.
func TestStoreCorruptionFallsBackToCompile(t *testing.T) {
	dir := t.TempDir()
	run := func(tamper func(kind, key string, data []byte) []byte) (*service.Server, []byte) {
		t.Helper()
		st, err := store.Open(store.Options{Dir: dir, TamperWrite: tamper})
		if err != nil {
			t.Fatal(err)
		}
		svc := service.New(service.Config{Store: st})
		ts := httptest.NewServer(svc)
		defer ts.Close()
		code, body := postJSON(t, ts.URL+"/v2/jobs", fleetBatch)
		if code != http.StatusOK {
			t.Fatalf("batch: HTTP %d: %s", code, body)
		}
		return svc, body
	}

	corrupt := func(kind, key string, data []byte) []byte {
		out := append([]byte(nil), data...)
		out[len(out)-1] ^= 1
		return out
	}
	_, cold := run(corrupt)
	svc2, warm := run(nil)
	if !bytes.Equal(cold, warm) {
		t.Fatal("corrupted-store restart changed the batch bytes")
	}
	if n := svc2.Engine().Cache().Compiles(); n == 0 {
		t.Fatal("corrupt artifacts were served instead of recompiled")
	}
	if s := svc2.Engine().Store().Stats(); s.Quarantined == 0 {
		t.Fatalf("nothing quarantined: %+v", s)
	}
}
