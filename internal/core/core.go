// Package core implements the paper's primary contribution: Dead Value
// Information tracking hardware. It provides the Live Value Mask (LVM) —
// one live bit per architectural register attached to the rename table
// (paper §4.1) — the 16-entry circular LVM-Stack used to eliminate restores
// (paper §5.2), and the decode-time update rules for explicit DVI (kill
// instructions), implicit DVI (calls and returns under an ABI mask), and
// ordinary destination writes.
//
// The tracker is used by both the functional emulator (non-speculatively)
// and the out-of-order simulator (speculatively, with Snapshot/Restore for
// branch misprediction recovery, paper §7 "Speculative updates of hardware
// structures").
package core

import (
	"fmt"

	"dvi/internal/isa"
)

// Level selects how much DVI the hardware exploits. The paper evaluates
// three configurations (Figure 5): no DVI, I-DVI only, and E-DVI + I-DVI.
type Level uint8

const (
	// None disables all DVI hardware: no LVM, nothing eliminated.
	None Level = iota
	// IDVI tracks implicit DVI from calls and returns only; kill
	// instructions are treated as no-ops.
	IDVI
	// Full tracks both explicit kill instructions and implicit DVI.
	Full
)

// String returns the label used in tables ("No DVI", "I-DVI", "E-DVI and I-DVI").
func (l Level) String() string {
	switch l {
	case None:
		return "No DVI"
	case IDVI:
		return "I-DVI"
	default:
		return "E-DVI and I-DVI"
	}
}

// DefaultStackDepth is the LVM-Stack size the paper simulates (§5.2: "Our
// simulations use a 16-entry LVM-Stack").
const DefaultStackDepth = 16

// MaxStackDepth bounds configurable depths (ablation sweeps).
const MaxStackDepth = 64

// Config parameterizes the DVI hardware.
type Config struct {
	// Level selects which DVI sources are honoured.
	Level Level
	// ABI supplies the I-DVI masks (paper §7: I-DVI is inferred only for
	// registers in an ABI-supplied mask). Ignored unless Level >= IDVI.
	ABI isa.ABI
	// StackDepth is the LVM-Stack entry count; 0 means DefaultStackDepth.
	StackDepth int
}

// DefaultConfig is the paper's standard configuration: full DVI with the
// default ABI and a 16-entry stack.
func DefaultConfig() Config {
	return Config{Level: Full, ABI: isa.DefaultABI(), StackDepth: DefaultStackDepth}
}

// allLive is the LVM reset value: every register holds a live value.
const allLive = isa.RegMask(0xFFFFFFFF)

// Tracker is the DVI hardware state: the LVM plus the LVM-Stack. The zero
// value is unusable; construct with New.
type Tracker struct {
	cfg   Config
	depth int // configured stack depth

	lvm isa.RegMask // bit set = value is live

	// Circular LVM-Stack. sp points at the next push slot; count is the
	// number of valid entries (saturates at depth: overflow overwrites the
	// oldest entry, underflow is detected by count==0).
	stack [MaxStackDepth]isa.RegMask
	sp    int
	count int
}

// New returns a tracker with all registers live and an empty stack.
func New(cfg Config) *Tracker {
	t := &Tracker{}
	t.Reconfigure(cfg)
	return t
}

// Reset marks every register live and empties the stack (the paper's §7
// strategy for exceptional control flow: "flush these structures and safely
// assume that all registers are live").
func (t *Tracker) Reset() {
	t.lvm = allLive
	t.sp = 0
	t.count = 0
}

// Reconfigure installs a new configuration and resets, without
// allocating: pooled emulators retarget their tracker between jobs with
// this instead of constructing a fresh one.
func (t *Tracker) Reconfigure(cfg Config) {
	d := cfg.StackDepth
	if d == 0 {
		d = DefaultStackDepth
	}
	if d < 1 || d > MaxStackDepth {
		panic(fmt.Sprintf("core: stack depth %d out of range [1,%d]", d, MaxStackDepth))
	}
	t.cfg = cfg
	t.depth = d
	t.Reset()
}

// FlushStack empties the LVM-Stack without touching the LVM — the §7
// treatment of context switches and other non-standard control flow: the
// stack's snapshots belong to another context, so restores conservatively
// execute until new calls repopulate it.
func (t *Tracker) FlushStack() {
	t.sp = 0
	t.count = 0
}

// Enabled reports whether any DVI hardware is active.
func (t *Tracker) Enabled() bool { return t.cfg.Level != None }

// Level returns the configured DVI level.
func (t *Tracker) Level() Level { return t.cfg.Level }

// LVM returns the current live value mask.
func (t *Tracker) LVM() isa.RegMask { return t.lvm }

// Live reports whether r currently holds a live value. With DVI disabled
// everything is live.
func (t *Tracker) Live(r isa.Reg) bool { return t.cfg.Level == None || t.lvm.Has(r) }

// LiveCount returns the number of live registers (context-switch metric,
// paper §6.2).
func (t *Tracker) LiveCount() int {
	if t.cfg.Level == None {
		return isa.NumRegs
	}
	return t.lvm.Count()
}

// StackDepth returns the configured LVM-Stack depth.
func (t *Tracker) StackDepth() int { return t.depth }

// OnWrite records that an instruction produced a new value in r: the
// register becomes live (LVM update at decode by destination renaming,
// paper §4.1).
func (t *Tracker) OnWrite(r isa.Reg) {
	if t.cfg.Level == None {
		return
	}
	t.lvm = t.lvm.Set(r)
}

// OnKill applies an E-DVI kill mask. Always-live registers are unaffected
// regardless of the mask (hardware ignores those bits). With Level < Full,
// kill instructions carry no information.
func (t *Tracker) OnKill(mask isa.RegMask) {
	if t.cfg.Level != Full {
		return
	}
	t.lvm &^= mask &^ isa.AlwaysLive
}

// OnCall records a procedure call: the current LVM is pushed onto the
// LVM-Stack (snapshot of entry liveness, §5.2), then the ABI's
// dead-at-call I-DVI mask is applied (§2).
func (t *Tracker) OnCall() {
	if t.cfg.Level == None {
		return
	}
	t.stack[t.sp] = t.lvm
	t.sp++
	if t.sp == t.depth {
		t.sp = 0
	}
	if t.count < t.depth {
		t.count++
	}
	t.lvm &^= t.cfg.ABI.DeadAtCall &^ isa.AlwaysLive
}

// OnReturn records a procedure return: the LVM-Stack is popped and its
// contents copied back into the LVM (§5.2 step 4); an empty stack yields
// the conservative all-live mask. The ABI's dead-at-return I-DVI mask is
// then applied.
//
// Only the callee-saved bits of the popped snapshot are copied back: for a
// preserved register, liveness at procedure exit equals liveness at entry
// (it was either untouched or save/restored), but for everything else —
// return-value registers in particular — the callee's own writes determine
// exit liveness, so those bits keep their current value.
func (t *Tracker) OnReturn() {
	if t.cfg.Level == None {
		return
	}
	entry := allLive // underflow: assume empty stack, all live
	if t.count > 0 {
		t.count--
		t.sp--
		if t.sp < 0 {
			t.sp = t.depth - 1
		}
		entry = t.stack[t.sp]
	}
	t.lvm = (entry & isa.CalleeSaved) | (t.lvm &^ isa.CalleeSaved)
	t.lvm &^= t.cfg.ABI.DeadAtReturn &^ isa.AlwaysLive
}

// SaveEliminable reports whether a live-store of r may be dropped: true
// when the LVM marks r dead (LVM scheme, §5.2).
func (t *Tracker) SaveEliminable(r isa.Reg) bool {
	return t.cfg.Level != None && !t.lvm.Has(r)
}

// RestoreEliminable reports whether a live-load of r may be dropped: true
// when the entry at the top of the LVM-Stack — the same information that
// eliminated the matching save — marks r dead (LVM-Stack scheme, §5.2).
// An empty stack is conservative: nothing is eliminable.
func (t *Tracker) RestoreEliminable(r isa.Reg) bool {
	if t.cfg.Level == None || t.count == 0 {
		return false
	}
	i := t.sp - 1
	if i < 0 {
		i = t.depth - 1
	}
	return !t.stack[i].Has(r)
}

// SetLVM installs an LVM loaded from memory (the lvm-load instruction,
// paper §6.1). Always-live registers remain live.
func (t *Tracker) SetLVM(v isa.RegMask) {
	if t.cfg.Level == None {
		return
	}
	t.lvm = v | isa.AlwaysLive
}

// Snapshot captures the complete tracker state for speculation recovery.
type Snapshot struct {
	lvm   isa.RegMask
	stack [MaxStackDepth]isa.RegMask
	sp    int
	count int
}

// Snapshot returns a copy of the current state.
func (t *Tracker) Snapshot() Snapshot {
	return Snapshot{lvm: t.lvm, stack: t.stack, sp: t.sp, count: t.count}
}

// Restore reinstates a previously captured state.
func (t *Tracker) Restore(s Snapshot) {
	t.lvm = s.lvm
	t.stack = s.stack
	t.sp = s.sp
	t.count = s.count
}
