package core

import (
	"math/rand"
	"testing"

	"dvi/internal/isa"
)

func full() *Tracker { return New(DefaultConfig()) }

func TestResetAllLive(t *testing.T) {
	tr := full()
	for r := isa.Reg(0); r < isa.NumRegs; r++ {
		if !tr.Live(r) {
			t.Errorf("%s not live after reset", r)
		}
	}
	if tr.LiveCount() != isa.NumRegs {
		t.Errorf("LiveCount = %d", tr.LiveCount())
	}
}

func TestKillAndRedefine(t *testing.T) {
	tr := full()
	tr.OnKill(isa.MaskOf(isa.S0, isa.S1))
	if tr.Live(isa.S0) || tr.Live(isa.S1) {
		t.Error("killed registers still live")
	}
	if !tr.SaveEliminable(isa.S0) {
		t.Error("save of dead register not eliminable")
	}
	tr.OnWrite(isa.S0)
	if !tr.Live(isa.S0) {
		t.Error("redefined register not live")
	}
	if tr.SaveEliminable(isa.S0) {
		t.Error("save of live register eliminable")
	}
	if tr.Live(isa.S1) {
		t.Error("unrelated register resurrected")
	}
}

func TestKillIgnoresAlwaysLive(t *testing.T) {
	tr := full()
	tr.OnKill(isa.RegMask(0xFFFFFFFF))
	for _, r := range isa.AlwaysLive.Regs() {
		if !tr.Live(r) {
			t.Errorf("always-live %s killed", r)
		}
	}
	if tr.Live(isa.S0) || tr.Live(isa.T0) {
		t.Error("killable registers survived a full-mask kill")
	}
}

func TestIDVIAtCall(t *testing.T) {
	tr := full()
	tr.OnCall()
	abi := isa.DefaultABI()
	for _, r := range abi.DeadAtCall.Regs() {
		if tr.Live(r) {
			t.Errorf("%s live after call (I-DVI)", r)
		}
	}
	// Arguments, ra, and all callee-saved registers remain live.
	for _, r := range []isa.Reg{isa.A0, isa.A3, isa.RA, isa.S0, isa.S7, isa.SP} {
		if !tr.Live(r) {
			t.Errorf("%s dead after call", r)
		}
	}
}

func TestIDVIAtReturn(t *testing.T) {
	tr := full()
	tr.OnCall()
	tr.OnWrite(isa.V0) // callee produces a return value
	tr.OnReturn()
	abi := isa.DefaultABI()
	for _, r := range abi.DeadAtReturn.Regs() {
		if tr.Live(r) {
			t.Errorf("%s live after return (I-DVI)", r)
		}
	}
	for _, r := range []isa.Reg{isa.V0, isa.S0} {
		if !tr.Live(r) {
			t.Errorf("%s dead after return", r)
		}
	}
}

// TestReturnValueStaysLiveAcrossPop guards the subtle case that motivated
// restricting the LVM-Stack pop to callee-saved bits: v0 is dead at the
// call (I-DVI), the callee writes the return value, and the pop must not
// resurrect the stale dead bit.
func TestReturnValueStaysLiveAcrossPop(t *testing.T) {
	tr := full()
	tr.OnCall() // snapshot has v0 dead (I-DVI at call kills v0)
	tr.OnWrite(isa.V0)
	tr.OnReturn()
	if !tr.Live(isa.V0) {
		t.Fatal("return value register marked dead by LVM-Stack pop")
	}
	// Conversely a void callee leaves v0 dead: reading it is a bug.
	tr2 := full()
	tr2.OnCall()
	tr2.OnReturn()
	if tr2.Live(isa.V0) {
		t.Fatal("v0 live after void call; nothing wrote it")
	}
}

// TestPaperFigure8 reproduces the LVM / LVM-Stack walkthrough of Figure 8:
// caller2 kills r16 before calling proc; the save of r16 inside proc is
// eliminated via the LVM, proc redefines r16, and the restore is eliminated
// via the LVM-Stack even though the LVM bit went live again.
func TestPaperFigure8(t *testing.T) {
	tr := full()
	r16 := isa.S0

	tr.OnWrite(r16)            // I1: <- r16 defined in caller2
	tr.OnKill(isa.MaskOf(r16)) // E2: kill r16
	if tr.Live(r16) {
		t.Fatal("r16 live after kill")
	}
	tr.OnCall() // I2: call proc (push LVM: r16 dead)

	// I3: save r16 — eliminated because the LVM says dead.
	if !tr.SaveEliminable(r16) {
		t.Fatal("save not eliminated (LVM scheme)")
	}

	// I4: r16 <- ... inside proc: LVM live again, stack entry unchanged
	// (Figure 8c step 2 "maintain").
	tr.OnWrite(r16)
	if !tr.Live(r16) {
		t.Fatal("r16 not live after redefinition in proc")
	}
	if tr.SaveEliminable(r16) {
		t.Fatal("LVM lost track of the new definition")
	}

	// I6: restore r16 — the LVM alone cannot eliminate it, the LVM-Stack
	// can (Figure 8c step 3 "eliminate").
	if !tr.RestoreEliminable(r16) {
		t.Fatal("restore not eliminated (LVM-Stack scheme)")
	}

	// I7: return pops the stack back into the LVM (step 4 "pop").
	tr.OnReturn()
	if tr.Live(r16) {
		t.Fatal("r16 live after return; entry liveness said dead")
	}
}

// TestPaperFigure7LivePath checks the caller1 path of Figure 7: r16 live at
// the call, so neither save nor restore may be eliminated.
func TestPaperFigure7LivePath(t *testing.T) {
	tr := full()
	r16 := isa.S0
	tr.OnWrite(r16) // r16 live in caller1; no kill inserted
	tr.OnCall()
	if tr.SaveEliminable(r16) {
		t.Fatal("save of live value eliminated")
	}
	tr.OnWrite(r16)
	if tr.RestoreEliminable(r16) {
		t.Fatal("restore of live value eliminated")
	}
	tr.OnReturn()
	if !tr.Live(r16) {
		t.Fatal("r16 should be live after returning to caller1")
	}
}

func TestNestedCallsUseDistinctSnapshots(t *testing.T) {
	tr := full()
	// Outer call: s0 dead. Inner call: s0 live (callee wrote it).
	tr.OnKill(isa.MaskOf(isa.S0))
	tr.OnCall()
	if !tr.SaveEliminable(isa.S0) {
		t.Fatal("outer save should be eliminable")
	}
	tr.OnWrite(isa.S0)
	tr.OnCall() // inner call pushes live s0
	if tr.SaveEliminable(isa.S0) {
		t.Fatal("inner save must execute: s0 live at inner call")
	}
	if tr.RestoreEliminable(isa.S0) {
		t.Fatal("inner restore must execute")
	}
	tr.OnReturn() // back in outer callee
	if !tr.RestoreEliminable(isa.S0) {
		t.Fatal("outer restore should still be eliminable")
	}
	tr.OnReturn()
}

func TestStackUnderflowIsConservative(t *testing.T) {
	tr := full()
	tr.OnKill(isa.MaskOf(isa.S0))
	// No call has been recorded: restores must not be eliminated.
	if tr.RestoreEliminable(isa.S0) {
		t.Error("restore eliminated with empty LVM-Stack")
	}
	tr.OnReturn() // underflow: all live (minus I-DVI at return)
	if !tr.Live(isa.S0) {
		t.Error("underflow pop should restore all-live")
	}
}

func TestStackOverflowWrapsAndKeepsRecentEntries(t *testing.T) {
	tr := New(Config{Level: Full, ABI: isa.DefaultABI(), StackDepth: 4})
	// Push depth+2 frames; the newest 4 snapshots must be intact.
	for i := 0; i < 6; i++ {
		if i%2 == 0 {
			tr.OnKill(isa.MaskOf(isa.S0))
		} else {
			tr.OnWrite(isa.S0)
		}
		tr.OnCall()
		tr.OnWrite(isa.S0)
	}
	// Frames 5,4,3,2 are retained (0 and 1 overwritten). Frame 5 pushed
	// with s0 live (i=5 odd), frame 4 dead, frame 3 live, frame 2 dead.
	wantDead := []bool{false, true, false, true}
	for i, dead := range wantDead {
		if got := tr.RestoreEliminable(isa.S0); got != dead {
			t.Errorf("frame %d from top: eliminable = %v, want %v", i, got, dead)
		}
		tr.OnReturn()
	}
	// Beyond retained entries: underflow-like behaviour only after count
	// is exhausted; the 5th pop exceeds the 4 retained frames.
	if tr.RestoreEliminable(isa.S0) {
		t.Error("restore eliminated after stack exhausted")
	}
}

func TestLevelNoneEliminatesNothing(t *testing.T) {
	tr := New(Config{Level: None})
	tr.OnKill(isa.MaskOf(isa.S0))
	tr.OnCall()
	if tr.SaveEliminable(isa.S0) || tr.RestoreEliminable(isa.S0) {
		t.Error("Level None must not eliminate")
	}
	if tr.LiveCount() != isa.NumRegs {
		t.Error("Level None should report all registers live")
	}
}

func TestLevelIDVIIgnoresKills(t *testing.T) {
	tr := New(Config{Level: IDVI, ABI: isa.DefaultABI()})
	tr.OnKill(isa.MaskOf(isa.S0))
	if !tr.Live(isa.S0) {
		t.Error("I-DVI level honoured an explicit kill")
	}
	tr.OnCall()
	if tr.Live(isa.T0) {
		t.Error("I-DVI level missed implicit kill of t0")
	}
}

func TestClearABIMaskDisablesIDVI(t *testing.T) {
	tr := New(Config{Level: Full, ABI: isa.NoIDVI()})
	tr.OnCall()
	if !tr.Live(isa.T0) {
		t.Error("clear ABI mask should disable I-DVI (paper §7)")
	}
	// Explicit kills still work.
	tr.OnKill(isa.MaskOf(isa.S0))
	if tr.Live(isa.S0) {
		t.Error("explicit kill broken with clear ABI mask")
	}
}

func TestSetLVMKeepsAlwaysLive(t *testing.T) {
	tr := full()
	tr.SetLVM(0)
	for _, r := range isa.AlwaysLive.Regs() {
		if !tr.Live(r) {
			t.Errorf("%s dead after SetLVM(0)", r)
		}
	}
	if tr.Live(isa.S0) {
		t.Error("SetLVM(0) left s0 live")
	}
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	tr := full()
	step := func() {
		switch r.Intn(5) {
		case 0:
			tr.OnWrite(isa.Reg(r.Intn(32)))
		case 1:
			tr.OnKill(isa.RegMask(r.Uint32()))
		case 2:
			tr.OnCall()
		case 3:
			tr.OnReturn()
		case 4:
			tr.SetLVM(isa.RegMask(r.Uint32()))
		}
	}
	state := func() (isa.RegMask, [32]bool) {
		var rst [32]bool
		for i := 0; i < 32; i++ {
			rst[i] = tr.RestoreEliminable(isa.Reg(i))
		}
		return tr.LVM(), rst
	}
	for trial := 0; trial < 200; trial++ {
		for i := 0; i < r.Intn(20); i++ {
			step()
		}
		snap := tr.Snapshot()
		lvm0, rst0 := state()
		for i := 0; i < r.Intn(30); i++ {
			step()
		}
		tr.Restore(snap)
		lvm1, rst1 := state()
		if lvm0 != lvm1 || rst0 != rst1 {
			t.Fatalf("trial %d: state differs after restore", trial)
		}
	}
}

func TestDefaultStackDepthCapturesDeepRecursion(t *testing.T) {
	tr := full()
	if tr.StackDepth() != 16 {
		t.Fatalf("default depth = %d, want 16", tr.StackDepth())
	}
	// 16 nested calls with dead s0 at each: all restores eliminable.
	for i := 0; i < 16; i++ {
		tr.OnKill(isa.MaskOf(isa.S0))
		tr.OnCall()
		tr.OnWrite(isa.S0)
	}
	for i := 0; i < 16; i++ {
		if !tr.RestoreEliminable(isa.S0) {
			t.Fatalf("restore %d not eliminable within depth", i)
		}
		tr.OnReturn()
	}
}

func TestBadStackDepthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("depth 65 did not panic")
		}
	}()
	New(Config{Level: Full, StackDepth: MaxStackDepth + 1})
}

func TestLevelStrings(t *testing.T) {
	if None.String() != "No DVI" || IDVI.String() != "I-DVI" || Full.String() != "E-DVI and I-DVI" {
		t.Error("level labels changed; tables depend on them")
	}
}

func TestResetAfterActivity(t *testing.T) {
	tr := full()
	tr.OnKill(isa.Killable)
	tr.OnCall()
	tr.OnCall()
	tr.Reset()
	if tr.LiveCount() != isa.NumRegs {
		t.Error("reset did not restore all-live")
	}
	if tr.RestoreEliminable(isa.S0) {
		t.Error("reset did not empty the stack")
	}
}
