package sample

import (
	"math"
	"reflect"
	"testing"

	"dvi/internal/emu"
	"dvi/internal/mem"
	"dvi/internal/ooo"
	"dvi/internal/prog"
	"dvi/internal/workload"
)

// fixture bundles one compiled workload, its scan under a plan, and a
// machine tests can Reset and reuse.
type fixture struct {
	pr     *prog.Program
	img    *prog.Image
	cfg    ooo.Config
	opt    Options
	res    ScanResult
	usable []*Checkpoint // checkpoints with a non-empty measured region
	m      *ooo.Machine
}

func (f *fixture) reset() { f.m.Reset(f.pr, f.img, f.cfg) }

// scanWorkload compiles name at scale 1 and runs one functional pass
// under opt.
func scanWorkload(t *testing.T, name string, scheme emu.Scheme, opt Options) *fixture {
	t.Helper()
	spec, ok := workload.ByName(name)
	if !ok {
		t.Fatalf("unknown workload %q", name)
	}
	pr, img, err := workload.CompileSpec(spec, 1, workload.BuildOptions{EDVI: true})
	if err != nil {
		t.Fatalf("compile %s: %v", name, err)
	}
	cfg := ooo.DefaultConfig()
	cfg.Emu.Scheme = scheme

	base := mem.New()
	img.LoadInto(base, pr.Data)
	e := emu.New(pr, img, cfg.Emu)

	period := opt.WithDefaults().Period
	sc := NewScanner()
	res := sc.Scan(e, base, cfg, opt, func(idx int) bool {
		return Selected(idx, period, opt.Seed)
	}, func() *Checkpoint { return new(Checkpoint) })

	f := &fixture{pr: pr, img: img, cfg: cfg, opt: opt, res: res, m: ooo.New(pr, img, cfg)}
	for _, ck := range res.Checkpoints {
		if ck.MeasureLen > 0 {
			f.usable = append(f.usable, ck)
		}
	}
	return f
}

// runAll simulates every usable checkpoint on the fixture's machine.
func (f *fixture) runAll(t *testing.T) []IntervalResult {
	t.Helper()
	var results []IntervalResult
	for _, ck := range f.usable {
		f.reset()
		iv, err := RunInterval(f.m, ck)
		if err != nil {
			t.Fatalf("interval %d: %v", ck.Index, err)
		}
		results = append(results, iv)
	}
	return results
}

func TestSelectedSystematic(t *testing.T) {
	if !Selected(3, 1, 99) {
		t.Error("period 1 must select every interval")
	}
	count := 0
	for idx := 0; idx < 64; idx++ {
		if Selected(idx, 8, 5) {
			count++
			if idx%8 != 5 {
				t.Errorf("idx %d selected under period 8 seed 5", idx)
			}
		}
	}
	if count != 8 {
		t.Errorf("selected %d of 64 intervals at period 8, want 8", count)
	}
}

func TestWithDefaults(t *testing.T) {
	o := Options{}.WithDefaults()
	if o.Interval != DefaultInterval || o.Warmup != DefaultInterval/5 || o.Period != DefaultPeriod {
		t.Errorf("defaults = %+v", o)
	}
	o = Options{Interval: 4000, Warmup: 500, Period: 3}.WithDefaults()
	if o.Interval != 4000 || o.Warmup != 500 || o.Period != 3 {
		t.Errorf("explicit options altered: %+v", o)
	}
}

// TestScanMatchesExactRun pins that the scan's exact side — total
// instruction count and whole-program architectural stats — is identical
// to a plain emulator run, and that checkpoints land on the selected
// intervals with the right warmup gaps.
func TestScanMatchesExactRun(t *testing.T) {
	opt := Options{Interval: 4000, Warmup: 1000, Period: 4, Seed: 1}
	f := scanWorkload(t, "go", emu.ElimLVMStack, opt)

	ref := emu.New(f.pr, f.img, f.cfg.Emu)
	for !ref.Halted {
		ref.Step()
	}
	if f.res.Exact != ref.Stats {
		t.Errorf("scan exact stats %+v\nwant %+v", f.res.Exact, ref.Stats)
	}
	if f.res.TotalInsts != ref.Stats.Original() {
		t.Errorf("TotalInsts %d, want %d", f.res.TotalInsts, ref.Stats.Original())
	}
	wantIntervals := int((f.res.TotalInsts + opt.Interval - 1) / opt.Interval)
	if f.res.Intervals != wantIntervals {
		t.Errorf("Intervals %d, want %d", f.res.Intervals, wantIntervals)
	}
	if len(f.usable) == 0 {
		t.Fatal("no usable checkpoints")
	}
	for _, ck := range f.usable {
		if !Selected(ck.Index, 4, 1) {
			t.Errorf("checkpoint for unselected interval %d", ck.Index)
		}
		start := uint64(ck.Index) * opt.Interval
		wantGap := opt.Warmup
		if start < opt.Warmup {
			wantGap = start
		}
		if ck.WarmupGap != wantGap {
			t.Errorf("interval %d: warmup gap %d, want %d", ck.Index, ck.WarmupGap, wantGap)
		}
	}
}

// TestFullCoverageTilesProgram pins the limiting case: with period 1
// every interval is measured, the intervals tile the program (up to the
// cycle-granular boundary slack RunInterval documents), and the estimate
// lands within its reported CI of an exact detailed run.
func TestFullCoverageTilesProgram(t *testing.T) {
	opt := Options{Interval: 4000, Warmup: 1, Period: 1}
	f := scanWorkload(t, "li", emu.ElimLVM, opt)
	results := f.runAll(t)

	var sumInsts uint64
	for _, iv := range results {
		sumInsts += iv.Insts
	}
	slack := uint64(len(results) * (f.cfg.IssueWidth - 1))
	if sumInsts < f.res.TotalInsts-slack || sumInsts > f.res.TotalInsts+slack {
		t.Errorf("measured %d instructions across intervals, want %d ± %d",
			sumInsts, f.res.TotalInsts, slack)
	}

	est, err := Aggregate(f.res, results, opt)
	if err != nil {
		t.Fatal(err)
	}
	if est.Measured != f.res.Intervals {
		t.Errorf("measured %d of %d intervals at period 1", est.Measured, f.res.Intervals)
	}

	f.reset()
	exact, err := f.m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if diff := math.Abs(est.IPC - exact.IPC()); diff > est.CIHalfWidth {
		t.Errorf("estimated IPC %.4f outside CI ±%.4f of exact %.4f",
			est.IPC, est.CIHalfWidth, exact.IPC())
	}
	if est.Stats.Committed != exact.Committed {
		t.Errorf("synthesized Committed %d, want %d", est.Stats.Committed, exact.Committed)
	}
	if est.Stats.Emu != f.res.Exact {
		t.Error("synthesized Stats.Emu does not carry the exact functional stats")
	}
}

// TestSampledEstimateWithinCI pins the headline accuracy contract at a
// realistic sparse plan: the sampled IPC estimate is within its own
// reported confidence interval of the exact detailed IPC, while
// simulating meaningfully fewer instructions in detail.
func TestSampledEstimateWithinCI(t *testing.T) {
	for _, scheme := range []emu.Scheme{emu.ElimOff, emu.ElimLVMStack} {
		opt := Options{Interval: 4000, Warmup: 1000, Period: 4}
		f := scanWorkload(t, "go", scheme, opt)
		est, err := Aggregate(f.res, f.runAll(t), opt)
		if err != nil {
			t.Fatal(err)
		}

		f.reset()
		exact, err := f.m.Run()
		if err != nil {
			t.Fatal(err)
		}
		if diff := math.Abs(est.IPC - exact.IPC()); diff > est.CIHalfWidth {
			t.Errorf("%v: estimate %.4f off exact %.4f by %.4f, CI half-width %.4f",
				scheme, est.IPC, exact.IPC(), diff, est.CIHalfWidth)
		}
		if est.DetailedInsts >= f.res.TotalInsts {
			t.Errorf("%v: sampled run simulated %d detailed instructions of %d total — no savings",
				scheme, est.DetailedInsts, f.res.TotalInsts)
		}
	}
}

// TestAggregateDeterministic pins that aggregation is a pure fold: the
// same interval results produce bit-identical estimates on every call.
func TestAggregateDeterministic(t *testing.T) {
	opt := Options{Interval: 4000, Warmup: 1000, Period: 4}
	f := scanWorkload(t, "li", emu.ElimLVM, opt)
	results := f.runAll(t)
	a, err := Aggregate(f.res, results, opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Aggregate(f.res, results, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("repeated aggregation differs")
	}
}

// TestRunIntervalDeterministic pins that re-simulating one checkpoint on
// a reused machine yields identical measurements — the property that
// makes results independent of which pooled worker ran the job.
func TestRunIntervalDeterministic(t *testing.T) {
	opt := Options{Interval: 4000, Warmup: 1000, Period: 4}
	f := scanWorkload(t, "go", emu.ElimLVMStack, opt)
	if len(f.usable) == 0 {
		t.Fatal("no usable checkpoints")
	}
	ck := f.usable[len(f.usable)/2]
	f.reset()
	first, err := RunInterval(f.m, ck)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		f.reset()
		again, err := RunInterval(f.m, ck)
		if err != nil {
			t.Fatal(err)
		}
		if again != first {
			t.Fatalf("rerun %d: %+v, want %+v", i, again, first)
		}
	}
}

func TestAggregateCIBehaviour(t *testing.T) {
	scan := ScanResult{TotalInsts: 40_000, Intervals: 10}
	mk := func(cpis ...float64) []IntervalResult {
		var rs []IntervalResult
		for i, c := range cpis {
			rs = append(rs, IntervalResult{Index: i, Insts: 4000, Cycles: uint64(c * 4000)})
		}
		return rs
	}
	opt := Options{Interval: 4000, Warmup: 1}

	// Homogeneous intervals: only the non-sampling margin remains.
	est, err := Aggregate(scan, mk(2, 2, 2, 2, 2), opt)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.RelCI-nonSamplingBias) > 1e-12 {
		t.Errorf("zero-variance RelCI %.4f, want %.4f", est.RelCI, nonSamplingBias)
	}
	if est.Cycles != 80_000 {
		t.Errorf("cycles %d, want 80000", est.Cycles)
	}

	// Variance widens the interval; fewer samples widen it further.
	wide, _ := Aggregate(scan, mk(1, 3, 1, 3, 1), opt)
	if wide.RelCI <= est.RelCI {
		t.Errorf("heterogeneous RelCI %.4f not wider than homogeneous %.4f", wide.RelCI, est.RelCI)
	}
	few, _ := Aggregate(scan, mk(1, 3), opt)
	if few.RelCI <= wide.RelCI {
		t.Errorf("2-sample RelCI %.4f not wider than 5-sample %.4f", few.RelCI, wide.RelCI)
	}

	// A single sample reports a deliberately wide interval.
	one, _ := Aggregate(scan, mk(2), opt)
	if one.RelCI < 0.25 {
		t.Errorf("1-sample RelCI %.4f suspiciously tight", one.RelCI)
	}

	// Full census: sampling error vanishes entirely.
	full := ScanResult{TotalInsts: 20_000, Intervals: 5}
	census, _ := Aggregate(full, mk(1, 3, 1, 3, 2), opt)
	if math.Abs(census.RelCI-nonSamplingBias) > 1e-12 {
		t.Errorf("census RelCI %.4f, want %.4f", census.RelCI, nonSamplingBias)
	}

	// No measurements is an error, not a garbage estimate.
	if _, err := Aggregate(scan, nil, opt); err == nil {
		t.Error("empty aggregation did not fail")
	}
}
