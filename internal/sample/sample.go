// Package sample implements SMARTS/SimPoint-style statistical sampling of
// the cycle-accurate simulator: the fast functional emulator executes the
// whole program once (the "scan"), warming a cache hierarchy and branch
// predictor along the way and capturing lightweight checkpoints at
// selected interval boundaries; pooled ooo.Machine instances then simulate
// only those intervals in detail — independent jobs that parallelize
// across the engine's workers — and an aggregator combines the
// per-interval measurements into a whole-program estimate with a CLT
// confidence interval.
//
// The split of exact versus estimated is deliberate: every architectural
// count — instruction mix, save/restore eliminations, faults, the
// checksum — comes from the functional pass and is exact (the emulator is
// the reference implementation the timing core is validated against).
// Only the cycle count, and therefore IPC, is estimated from the sampled
// intervals, and it carries the reported confidence interval.
//
// Determinism: interval selection is a pure function of (interval size,
// period, seed), the scan is single-threaded, and aggregation folds
// per-interval results in interval order — so a fixed plan yields
// bit-identical estimates at any worker count.
package sample

import (
	"fmt"
	"math"

	"dvi/internal/bpred"
	"dvi/internal/cache"
	"dvi/internal/emu"
	"dvi/internal/isa"
	"dvi/internal/mem"
	"dvi/internal/ooo"
)

// Options configures a sampled run.
type Options struct {
	// Interval is the measured-interval length in original instructions
	// (0 = DefaultInterval).
	Interval uint64
	// Warmup is the detailed-warmup length replayed before each measured
	// interval to absorb the pipeline-fill transient (0 = Interval/5).
	Warmup uint64
	// Period selects every Period-th interval for detailed simulation
	// (<=0 = DefaultPeriod). Period 1 measures every interval.
	Period int
	// Seed offsets the systematic selection (offset = Seed mod Period);
	// the same seed always selects the same intervals.
	Seed uint64
	// TargetCI, when positive, is the target relative confidence-interval
	// half-width: the sampler keeps densifying the selection (halving the
	// period, round by round) until the estimate's RelCI reaches the
	// target or every interval has been measured.
	TargetCI float64
	// MaxInsts truncates the program after this many original
	// instructions (0 = run to completion); the estimate then describes
	// the truncated run, matching an exact run under the same budget.
	MaxInsts uint64
}

// Defaults for zero-valued Options fields.
const (
	DefaultInterval = 10_000
	DefaultPeriod   = 8
	// Confidence is the two-sided confidence level of every reported
	// interval.
	Confidence = 0.95
)

// nonSamplingBias is the relative error margin added to every confidence
// interval for the biases sampling theory cannot see: the measured
// intervals replay from an empty pipeline behind a detailed warmup, and
// functional cache/predictor warming carries no wrong-path pollution.
// EXPERIMENTS.md documents the calibration.
const nonSamplingBias = 0.04

// WithDefaults resolves zero fields to their defaults.
func (o Options) WithDefaults() Options {
	if o.Interval == 0 {
		o.Interval = DefaultInterval
	}
	if o.Warmup == 0 {
		o.Warmup = o.Interval / 5
	}
	if o.Period <= 0 {
		o.Period = DefaultPeriod
	}
	return o
}

// Selected reports whether interval idx is measured under (period, seed):
// systematic sampling, every period-th interval starting at seed mod
// period.
func Selected(idx, period int, seed uint64) bool {
	if period <= 1 {
		return true
	}
	return idx%period == int(seed%uint64(period))
}

// Checkpoint is the state needed to simulate one interval in detail,
// captured during the functional scan Warmup instructions before the
// interval begins. Buffers inside are reused across captures; the engine
// pools whole checkpoints (runner.Engine.AcquireCheckpoint).
type Checkpoint struct {
	// Index is the interval this checkpoint serves.
	Index int
	// WarmupGap is the original-instruction distance from the capture
	// point to the interval start, re-simulated in detail and discarded.
	WarmupGap uint64
	// MeasureLen is the interval's length in original instructions
	// (short for the program's final interval; 0 marks a checkpoint whose
	// interval turned out to be empty — not simulated).
	MeasureLen uint64

	Arch emu.Snapshot
	Warm ooo.WarmState
}

// IntervalResult is the detailed measurement of one interval.
type IntervalResult struct {
	Index       int
	Insts       uint64 // committed original instructions measured
	Cycles      uint64 // cycles spent on them
	WarmInsts   uint64 // warmup instructions simulated and discarded
	Mispredicts uint64
	MaxPhys     int
}

// CPI returns the interval's cycles per original instruction.
func (r IntervalResult) CPI() float64 {
	if r.Insts == 0 {
		return 0
	}
	return float64(r.Cycles) / float64(r.Insts)
}

// RunInterval simulates one checkpointed interval on a freshly Reset
// machine: boot from the checkpoint, replay the warmup gap, measure the
// interval, and return the stat deltas between the two boundaries.
// Boundaries are cycle-granular — the machine retires up to IssueWidth
// instructions per cycle and an interval ends with the cycle that crosses
// its target — so a measured window can shift or stretch by a few
// instructions. The result's Insts is the count actually measured, which
// keeps the per-interval CPI internally consistent.
func RunInterval(m *ooo.Machine, ck *Checkpoint) (IntervalResult, error) {
	if ck.MeasureLen == 0 {
		return IntervalResult{}, fmt.Errorf("sample: interval %d checkpoint has no measured region", ck.Index)
	}
	m.Boot(&ck.Arch, &ck.Warm)
	warm, err := m.RunUntil(ck.WarmupGap)
	if err != nil {
		return IntervalResult{}, err
	}
	full, err := m.RunUntil(ck.WarmupGap + ck.MeasureLen)
	if err != nil {
		return IntervalResult{}, err
	}
	return IntervalResult{
		Index:       ck.Index,
		Insts:       full.Committed - warm.Committed,
		Cycles:      full.Cycles - warm.Cycles,
		WarmInsts:   warm.Committed,
		Mispredicts: full.Mispredicts - warm.Mispredicts,
		MaxPhys:     full.MaxPhysInUse,
	}, nil
}

// ScanResult is what one functional pass yields.
type ScanResult struct {
	// TotalInsts is the program's original-instruction count (after any
	// MaxInsts truncation) — exact.
	TotalInsts uint64
	// Intervals is the interval count ceil(TotalInsts/Interval).
	Intervals int
	// Exact is the whole-program architectural statistics — exact.
	Exact emu.Stats
	// Checkpoints are the captures, in interval order. Entries with
	// MeasureLen 0 fell past the program's end and must not be simulated
	// (the caller still releases their buffers).
	Checkpoints []*Checkpoint
}

// Scanner drives functional fast-forward passes. It owns the warming
// structures (cache hierarchy, predictor, BTB, RAS) and reuses them
// across scans of the same machine configuration; it is not safe for
// concurrent use.
type Scanner struct {
	hier *cache.Hierarchy
	pred *bpred.Predictor
	btb  *bpred.BTB
	ras  *bpred.RAS
	hcfg cache.HierarchyConfig
	pcfg bpred.Config
}

// NewScanner returns an empty scanner; warming structures are built on
// first use.
func NewScanner() *Scanner { return &Scanner{} }

func (s *Scanner) ensure(mcfg ooo.Config) {
	if s.hier == nil || s.hcfg != mcfg.Hierarchy {
		s.hier = cache.NewHierarchy(mcfg.Hierarchy)
		s.hcfg = mcfg.Hierarchy
	} else {
		s.hier.Reset()
	}
	if s.pred == nil || s.pcfg != mcfg.Pred {
		s.pred = bpred.New(mcfg.Pred)
		s.btb = bpred.NewBTB(mcfg.Pred.BTBSets, mcfg.Pred.BTBAssoc)
		s.ras = bpred.NewRAS(mcfg.Pred.RASDepth)
		s.pcfg = mcfg.Pred
	} else {
		s.pred.Reset()
		s.btb.Reset()
		s.ras.Reset()
	}
}

// warm drives the warming structures with one architecturally executed
// instruction, mirroring what the detailed pipeline does on the correct
// path: an I-side access per instruction, a D-side access for executed
// (non-eliminated) memory operations, predictor train-and-correct for
// conditional branches, BTB updates for indirect transfers, RAS pushes
// and pops at calls and returns. Wrong-path pollution is the one effect
// functional warming cannot reproduce; the confidence interval's
// non-sampling margin covers it.
func (s *Scanner) warm(st emu.Step) {
	s.hier.L1I.Access(st.PC, false)
	if st.IsMem {
		var write bool
		switch st.Inst.Op {
		case isa.ST, isa.SB, isa.LVST, isa.LVMS:
			write = true
		}
		s.hier.L1D.Access(st.Addr, write)
	}
	switch st.Inst.Op {
	case isa.BEQ, isa.BNE, isa.BLT, isa.BGE, isa.BLTU, isa.BGEU:
		_, info := s.pred.Predict(st.PC)
		s.pred.Resolve(st.PC, st.Taken, info)
		if info.Pred != st.Taken {
			s.pred.RestoreHistory(info.Hist, st.Taken)
		}
	case isa.JAL:
		s.ras.Push(st.PC + isa.InstBytes)
	case isa.JALR:
		s.ras.Push(st.PC + isa.InstBytes)
		s.btb.Lookup(st.PC)
		s.btb.Update(st.PC, st.NextPC)
	case isa.JR:
		if st.Inst.IsReturn {
			s.ras.Pop()
		} else {
			s.btb.Lookup(st.PC)
			s.btb.Update(st.PC, st.NextPC)
		}
	}
}

// Scan runs the functional pass: e (freshly reset at program start, with
// the machine's emulator configuration) executes to completion or the
// MaxInsts cap, the warming structures track the architectural stream,
// and a checkpoint is captured Warmup instructions ahead of every
// interval selected by want and not skipped via skip (already-measured
// intervals on adaptive re-scans). base is the pristine loaded image
// memory snapshots are deltas against; acquire supplies (pooled)
// checkpoint buffers.
func (s *Scanner) Scan(e *emu.Emulator, base *mem.Memory, mcfg ooo.Config, opt Options,
	want func(idx int) bool, acquire func() *Checkpoint) ScanResult {

	opt = opt.WithDefaults()
	s.ensure(mcfg)
	L, W := opt.Interval, opt.Warmup

	// capturePos returns the scan position at which idx's checkpoint is
	// captured: Warmup instructions early, clamped at program start.
	capturePos := func(idx int) uint64 {
		start := uint64(idx) * L
		if W > start {
			return 0
		}
		return start - W
	}
	nextSelected := func(from int) int {
		for idx := from; ; idx++ {
			if want(idx) {
				return idx
			}
		}
	}

	var res ScanResult
	captureIdx := nextSelected(0)
	orig := uint64(0)
	for !e.Halted && (opt.MaxInsts == 0 || orig < opt.MaxInsts) {
		if orig == capturePos(captureIdx) {
			ck := acquire()
			ck.Index = captureIdx
			ck.WarmupGap = uint64(captureIdx)*L - orig
			ck.MeasureLen = 0 // fixed up after the scan knows TotalInsts
			e.CaptureSnapshot(&ck.Arch, base)
			s.hier.Capture(&ck.Warm.Hier)
			s.pred.Capture(&ck.Warm.Pred)
			s.btb.Capture(&ck.Warm.BTB)
			ck.Warm.RAS = s.ras.Snapshot()
			res.Checkpoints = append(res.Checkpoints, ck)
			captureIdx = nextSelected(captureIdx + 1)
		}
		st := e.Step()
		if st.Halted {
			break
		}
		s.warm(st)
		if st.Inst.Op != isa.KILL {
			orig++
		}
	}

	res.TotalInsts = orig
	res.Intervals = int((orig + L - 1) / L)
	res.Exact = e.Stats
	for _, ck := range res.Checkpoints {
		start := uint64(ck.Index) * L
		if start < orig {
			ck.MeasureLen = min(L, orig-start)
		}
	}
	return res
}

// Estimate is the whole-program result of a sampled run.
type Estimate struct {
	// Plan echo.
	Interval uint64
	Warmup   uint64
	Seed     uint64

	// Coverage.
	Intervals     int    // intervals in the program
	Measured      int    // intervals simulated in detail
	TotalInsts    uint64 // original instructions (exact)
	SampledInsts  uint64 // original instructions inside measured intervals
	SampledCycles uint64
	DetailedInsts uint64 // detailed instructions simulated, warmup included

	// The estimate.
	Cycles      uint64  // estimated whole-program cycles
	IPC         float64 // estimated committed original instructions per cycle
	CPI         float64
	CIHalfWidth float64 // absolute half-width on IPC at Confidence
	RelCI       float64 // CIHalfWidth / IPC
	Confidence  float64

	// Exact architectural statistics from the functional pass.
	Exact emu.Stats

	// Stats is the estimate rendered in the timing simulator's stat
	// shape, so exact-mode consumers (figure renderers, wire formats)
	// work unchanged: estimated Cycles, exact Committed/eliminations/
	// faults/Emu block, sampled-and-scaled Mispredicts. Pipeline
	// micro-counters that were not measured are zero.
	Stats ooo.Stats
}

// tCrit95 holds two-sided 95% Student-t critical values for 1..30 degrees
// of freedom; beyond that the normal quantile is close enough.
var tCrit95 = [...]float64{
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

func tCrit(df int) float64 {
	if df < 1 {
		return math.Inf(1)
	}
	if df <= len(tCrit95) {
		return tCrit95[df-1]
	}
	return 1.960
}

// Aggregate folds per-interval measurements into the whole-program
// estimate. results must be in interval order (callers iterate the
// measured set sorted by index) so the floating-point folds are
// deterministic at any worker count. The point estimate is the ratio
// estimator (total sampled cycles over total sampled instructions); the
// confidence interval comes from the per-interval CPI variance via the
// CLT with a finite-population correction, a Student-t quantile at small
// sample counts, and a fixed non-sampling margin for warmup bias.
func Aggregate(scan ScanResult, results []IntervalResult, opt Options) (Estimate, error) {
	opt = opt.WithDefaults()
	est := Estimate{
		Interval:   opt.Interval,
		Warmup:     opt.Warmup,
		Seed:       opt.Seed,
		Intervals:  scan.Intervals,
		TotalInsts: scan.TotalInsts,
		Confidence: Confidence,
		Exact:      scan.Exact,
	}
	var (
		mispredicts uint64
		maxPhys     int
	)
	for _, r := range results {
		if r.Insts == 0 {
			continue
		}
		est.Measured++
		est.SampledInsts += r.Insts
		est.SampledCycles += r.Cycles
		est.DetailedInsts += r.Insts + r.WarmInsts
		mispredicts += r.Mispredicts
		if r.MaxPhys > maxPhys {
			maxPhys = r.MaxPhys
		}
	}
	if est.Measured == 0 || est.SampledInsts == 0 {
		return est, fmt.Errorf("sample: no measured intervals (program of %d instructions)", scan.TotalInsts)
	}

	cpi := float64(est.SampledCycles) / float64(est.SampledInsts)
	est.CPI = cpi
	est.Cycles = uint64(math.Round(cpi * float64(est.TotalInsts)))
	if est.Cycles == 0 {
		est.Cycles = 1
	}
	est.IPC = float64(est.TotalInsts) / float64(est.Cycles)

	// Relative CI half-width: CLT over per-interval CPIs. The relative
	// width of the CPI interval transfers to IPC = 1/CPI to first order.
	n, N := est.Measured, est.Intervals
	rel := nonSamplingBias
	if n >= 2 {
		mean := 0.0
		for _, r := range results {
			if r.Insts != 0 {
				mean += r.CPI()
			}
		}
		mean /= float64(n)
		varSum := 0.0
		for _, r := range results {
			if r.Insts != 0 {
				d := r.CPI() - mean
				varSum += d * d
			}
		}
		sd := math.Sqrt(varSum / float64(n-1))
		se := sd / math.Sqrt(float64(n))
		if N > 1 && n < N {
			se *= math.Sqrt(float64(N-n) / float64(N-1))
		} else if n >= N {
			se = 0 // every interval measured: no sampling error remains
		}
		rel += tCrit(n-1) * se / mean
	} else {
		// A single measured interval has no variance estimate; report a
		// deliberately wide interval instead of a falsely tight one.
		rel += 0.25
	}
	est.RelCI = rel
	est.CIHalfWidth = rel * est.IPC

	scale := float64(est.TotalInsts) / float64(est.SampledInsts)
	est.Stats = ooo.Stats{
		Cycles:       est.Cycles,
		Committed:    est.TotalInsts,
		KillsSeen:    scan.Exact.Kills,
		ElimSaves:    scan.Exact.SavesElim,
		ElimRests:    scan.Exact.RestoresElim,
		Mispredicts:  uint64(math.Round(float64(mispredicts) * scale)),
		MaxPhysInUse: maxPhys,
		Faults:       scan.Exact.Faults,
		Emu:          scan.Exact,
	}
	return est, nil
}
