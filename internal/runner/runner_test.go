package runner

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"dvi/internal/core"
	"dvi/internal/emu"
	"dvi/internal/ooo"
	"dvi/internal/prog"
	"dvi/internal/workload"
)

// countingCompile wraps workload.CompileSpec and counts invocations per
// build key.
func countingCompile(t *testing.T) (CompileFunc, *sync.Map) {
	t.Helper()
	var counts sync.Map // workload.BuildKey -> *atomic.Int64
	fn := func(s workload.Spec, scale int, opt workload.BuildOptions) (*prog.Program, *prog.Image, error) {
		c, _ := counts.LoadOrStore(s.Key(scale, opt), new(atomic.Int64))
		c.(*atomic.Int64).Add(1)
		return workload.CompileSpec(s, scale, opt)
	}
	return fn, &counts
}

// grid builds a job list that references few distinct binaries many
// times: every workload at two EDVI flavours, four jobs each.
func grid(kind Kind) []Job {
	var jobs []Job
	for _, s := range workload.All() {
		for _, edvi := range []bool{false, true} {
			for rep := 0; rep < 4; rep++ {
				j := Job{
					Label:    fmt.Sprintf("%s edvi=%v rep%d", s.Name, edvi, rep),
					Workload: s,
					Scale:    1,
					Build:    workload.BuildOptions{EDVI: edvi},
					Kind:     kind,
				}
				if kind == Functional {
					j.Emu = emu.Config{DVI: core.Config{Level: core.None}}
				}
				jobs = append(jobs, j)
			}
		}
	}
	return jobs
}

func TestBuildCacheCompilesOncePerKey(t *testing.T) {
	compile, counts := countingCompile(t)
	eng := New(Options{Workers: 8, Compile: compile})
	jobs := grid(Build)

	results, err := eng.Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(jobs) {
		t.Fatalf("results = %d, want %d", len(results), len(jobs))
	}
	distinct := 0
	counts.Range(func(k, v any) bool {
		distinct++
		if n := v.(*atomic.Int64).Load(); n != 1 {
			t.Errorf("key %v compiled %d times, want exactly 1", k, n)
		}
		return true
	})
	if want := len(workload.All()) * 2; distinct != want {
		t.Errorf("distinct keys = %d, want %d", distinct, want)
	}
	hits, misses := eng.Cache().Stats()
	if int(misses) != distinct {
		t.Errorf("cache misses = %d, want %d", misses, distinct)
	}
	if int(hits+misses) != len(jobs) {
		t.Errorf("hits+misses = %d, want %d", hits+misses, len(jobs))
	}
}

// TestSingleFlight gates the compile function so all workers pile onto
// one key simultaneously; exactly one compile must run.
func TestSingleFlight(t *testing.T) {
	var calls atomic.Int64
	gate := make(chan struct{})
	compile := func(s workload.Spec, scale int, opt workload.BuildOptions) (*prog.Program, *prog.Image, error) {
		calls.Add(1)
		<-gate
		return workload.CompileSpec(s, scale, opt)
	}
	cache := NewBuildCache(compile)
	s, _ := workload.ByName("compress")

	const waiters = 8
	var wg sync.WaitGroup
	errs := make([]error, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _, errs[i] = cache.Get(context.Background(), s, 1, workload.BuildOptions{})
		}(i)
	}
	close(gate)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("waiter %d: %v", i, err)
		}
	}
	if n := calls.Load(); n != 1 {
		t.Errorf("compile ran %d times under concurrent Get, want 1", n)
	}
}

func TestResultsInSubmissionOrder(t *testing.T) {
	eng := New(Options{Workers: 8})
	jobs := grid(Functional)
	results, err := eng.Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r.Index != i {
			t.Fatalf("results[%d].Index = %d", i, r.Index)
		}
		if r.Job.Label != jobs[i].Label {
			t.Fatalf("results[%d] is job %q, want %q", i, r.Job.Label, jobs[i].Label)
		}
		if r.Func.Total == 0 {
			t.Fatalf("results[%d]: empty functional stats", i)
		}
	}
}

// TestDeterministicAcrossWorkerCounts runs the same grid at -j 1 and
// -j 8 and requires identical statistics position by position.
func TestDeterministicAcrossWorkerCounts(t *testing.T) {
	jobs := grid(Functional)
	r1, err := New(Options{Workers: 1}).Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	r8, err := New(Options{Workers: 8}).Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range jobs {
		if r1[i].Func != r8[i].Func {
			t.Errorf("job %d (%s): stats differ across worker counts:\n-j1: %+v\n-j8: %+v",
				i, jobs[i].Label, r1[i].Func, r8[i].Func)
		}
	}
}

func TestFailFast(t *testing.T) {
	boom := errors.New("boom")
	var compiles atomic.Int64
	compile := func(s workload.Spec, scale int, opt workload.BuildOptions) (*prog.Program, *prog.Image, error) {
		compiles.Add(1)
		if s.Name == "li" {
			return nil, nil, boom
		}
		return workload.CompileSpec(s, scale, opt)
	}
	eng := New(Options{Workers: 4, Compile: compile})
	_, err := eng.Run(context.Background(), grid(Build))
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	// Fail-fast must abandon the tail: far fewer compiles than jobs.
	if n := compiles.Load(); n > int64(len(workload.All())*2) {
		t.Errorf("compiles after failure = %d; queue not abandoned", n)
	}
}

func TestExternalCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	eng := New(Options{Workers: 2})
	_, err := eng.Run(ctx, grid(Build))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestProgressEvents(t *testing.T) {
	var mu sync.Mutex
	starts, dones := 0, 0
	eng := New(Options{Workers: 4, Progress: func(ev Event) {
		mu.Lock()
		defer mu.Unlock()
		switch ev.Phase {
		case JobStart:
			starts++
		case JobDone:
			dones++
		}
		if ev.Label == "" || ev.Total == 0 {
			t.Errorf("event missing label/total: %+v", ev)
		}
	}})
	jobs := grid(Build)
	if _, err := eng.Run(context.Background(), jobs); err != nil {
		t.Fatal(err)
	}
	if starts != len(jobs) || dones != len(jobs) {
		t.Errorf("events: %d starts, %d dones, want %d each", starts, dones, len(jobs))
	}
}

func TestTimingJobCarriesMachine(t *testing.T) {
	s, _ := workload.ByName("gcc")
	cfg := ooo.DefaultConfig()
	cfg.MaxInsts = 20_000
	eng := New(Options{Workers: 1})
	res, err := eng.Run(context.Background(), []Job{{
		Workload: s, Scale: 1,
		Build:       workload.BuildOptions{EDVI: true},
		Kind:        Timing,
		Machine:     cfg,
		KeepMachine: true,
	}})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Machine == nil {
		t.Fatal("timing result missing Machine")
	}
	if res[0].Timing.Committed == 0 || res[0].Timing.IPC() <= 0 {
		t.Errorf("implausible timing stats: %+v", res[0].Timing)
	}
	if res[0].Image == nil || res[0].Image.TextWords() == 0 {
		t.Error("timing result missing image")
	}
}
