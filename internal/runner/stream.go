package runner

import (
	"context"
	"fmt"
)

// Stream executes jobs on the worker pool and delivers results to emit in
// submission order: result i is emitted only after results 0..i-1, as soon
// as that prefix is complete, while later jobs are still running. This is
// the primitive behind batch APIs that stream ordered results (the
// session layer's Run, the service's /v2/jobs NDJSON endpoint).
//
// Unlike Run, Stream is per-job tolerant: a job failure does not abort the
// batch. The failed job's Result carries the error on Err (wrapped with
// the job's label, exactly as Run wraps its fail-fast error) and every
// other job still runs and is emitted. Jobs sharing a failed build fail
// identically through the build cache.
//
// emit is called from the Stream goroutine itself, never concurrently.
// Returning a non-nil error from emit cancels the batch and returns that
// error. External cancellation of ctx stops the workers and returns ctx's
// error; results already emitted stay emitted, the rest are dropped.
func (e *Engine) Stream(ctx context.Context, jobs []Job, emit func(Result) error) error {
	if len(jobs) == 0 {
		return ctx.Err()
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	results := make([]Result, len(jobs))
	readyCh := make(chan int, len(jobs))
	go func() {
		e.pool(ctx, jobs, func(i int, res Result, err error) bool {
			if err != nil {
				res.Err = fmt.Errorf("%s: %w", jobs[i].label(), err)
			}
			res.Job = jobs[i]
			res.Index = i
			results[i] = res
			readyCh <- i
			return true
		})
		close(readyCh)
	}()

	ready := make([]bool, len(jobs))
	delivered := 0
	var emitErr error
	for i := range readyCh {
		if emitErr != nil {
			continue // drain the channel; the batch is cancelled
		}
		ready[i] = true
		for delivered < len(jobs) && ready[delivered] {
			if err := emit(results[delivered]); err != nil {
				emitErr = err
				cancel()
				break
			}
			// Release the delivered result's artifacts: a long batch must
			// not pin every image it has already streamed out.
			results[delivered] = Result{}
			delivered++
		}
	}
	if emitErr != nil {
		return emitErr
	}
	if delivered < len(jobs) {
		// Only external cancellation leaves undelivered jobs behind.
		if err := ctx.Err(); err != nil {
			return err
		}
		return context.Canceled
	}
	return nil
}
