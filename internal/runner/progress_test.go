package runner

import (
	"context"
	"sync"
	"testing"
)

// TestProgressOrderingContract pins the ProgressFunc documentation with a
// race-detector-visible workload: per-job JobStart happens-before its
// JobDone on the same goroutine, while cross-job events interleave from
// many workers. The per-job state map is written without a lock inside
// each Index's critical pair — exactly what the contract says is safe —
// so a violation shows up either as the explicit ordering assertions
// below or as a data race under -race.
func TestProgressOrderingContract(t *testing.T) {
	type jobState struct {
		started bool
		done    bool
	}
	var mu sync.Mutex // guards the map structure only; see per-entry note
	states := map[int]*jobState{}

	eng := New(Options{Workers: 8, Progress: func(ev Event) {
		// Per the contract, both events for one Index arrive on one
		// goroutine; the mutex protects only the concurrent map access
		// from different jobs, not the per-job ordering.
		mu.Lock()
		st := states[ev.Index]
		if st == nil {
			st = &jobState{}
			states[ev.Index] = st
		}
		mu.Unlock()
		switch ev.Phase {
		case JobStart:
			if st.started {
				t.Errorf("job %d: duplicate JobStart", ev.Index)
			}
			if st.done {
				t.Errorf("job %d: JobStart after JobDone", ev.Index)
			}
			st.started = true
		case JobDone, JobFailed:
			if !st.started {
				t.Errorf("job %d: %v without a preceding JobStart", ev.Index, ev.Phase)
			}
			if st.done {
				t.Errorf("job %d: duplicate completion", ev.Index)
			}
			st.done = true
		}
	}})

	jobs := grid(Build)
	if _, err := eng.Run(context.Background(), jobs); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(states) != len(jobs) {
		t.Fatalf("saw events for %d jobs, want %d", len(states), len(jobs))
	}
	for i, st := range states {
		if !st.started || !st.done {
			t.Errorf("job %d: incomplete lifecycle %+v", i, *st)
		}
	}
}
