package runner

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dvi/internal/prog"
	"dvi/internal/workload"
)

// fakeSpec returns a distinct no-op workload spec; the counting compile
// functions below never call Build.
func fakeSpec(name string) workload.Spec {
	return workload.Spec{Name: name}
}

// stubCompile returns a CompileFunc that counts invocations and
// returns a distinct empty program per key.
func stubCompile(calls *atomic.Int64) CompileFunc {
	return func(s workload.Spec, scale int, opt workload.BuildOptions) (*prog.Program, *prog.Image, error) {
		calls.Add(1)
		return prog.New(), &prog.Image{}, nil
	}
}

func TestBuildCacheLRUEviction(t *testing.T) {
	var calls atomic.Int64
	c := NewBuildCacheLRU(stubCompile(&calls), 2)
	ctx := context.Background()
	get := func(name string) {
		t.Helper()
		if _, _, err := c.Get(ctx, fakeSpec(name), 1, workload.BuildOptions{}); err != nil {
			t.Fatal(err)
		}
	}

	get("a")
	get("b")
	if n := c.Len(); n != 2 {
		t.Fatalf("len %d, want 2", n)
	}
	get("a") // promote a; b is now LRU
	get("c") // evicts b
	if n := c.Evictions(); n != 1 {
		t.Fatalf("evictions %d, want 1", n)
	}
	if n := c.Len(); n != 2 {
		t.Fatalf("len %d, want 2", n)
	}
	before := calls.Load()
	get("a") // still cached: no compile
	if calls.Load() != before {
		t.Fatalf("a was evicted: %d compiles, want %d", calls.Load(), before)
	}
	get("b") // recompiled after eviction
	if calls.Load() != before+1 {
		t.Fatalf("b not recompiled: %d compiles, want %d", calls.Load(), before+1)
	}
	if c.Evictions() != 2 { // inserting b evicted c or a
		t.Fatalf("evictions %d, want 2", c.Evictions())
	}
}

func TestBuildCacheUnboundedNeverEvicts(t *testing.T) {
	var calls atomic.Int64
	c := NewBuildCache(stubCompile(&calls))
	ctx := context.Background()
	for i := 0; i < 100; i++ {
		if _, _, err := c.Get(ctx, fakeSpec(fmt.Sprintf("w%d", i)), 1, workload.BuildOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	if c.Evictions() != 0 || c.Len() != 100 {
		t.Fatalf("evictions %d len %d, want 0 and 100", c.Evictions(), c.Len())
	}
}

// TestBuildCacheLRUSingleFlightUnderBound drives many goroutines over a
// keyspace larger than the bound and checks the single-flight invariant
// still holds per concurrent key, evictions happen, and the cache never
// exceeds its capacity by more than the in-flight builds.
func TestBuildCacheLRUSingleFlightUnderBound(t *testing.T) {
	var calls atomic.Int64
	const capacity = 4
	c := NewBuildCacheLRU(stubCompile(&calls), capacity)
	ctx := context.Background()

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				name := fmt.Sprintf("w%d", (g+i)%10)
				if _, _, err := c.Get(ctx, fakeSpec(name), 1, workload.BuildOptions{}); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	if n := c.Len(); n > capacity {
		t.Fatalf("len %d exceeds capacity %d after quiescence", n, capacity)
	}
	if c.Evictions() == 0 {
		t.Fatal("expected evictions over a keyspace larger than the bound")
	}
	hits, misses := c.Stats()
	if misses != calls.Load() {
		t.Fatalf("misses %d != compile calls %d", misses, calls.Load())
	}
	if hits+misses != 8*50 {
		t.Fatalf("hits+misses %d, want %d", hits+misses, 8*50)
	}
}

// TestBuildCacheJoinInFlightCountsHit pins the counter semantics the
// /metrics gauges export: a waiter that joins a build already compiling
// is a hit — only actual compiles count as misses.
func TestBuildCacheJoinInFlightCountsHit(t *testing.T) {
	started := make(chan struct{})
	release := make(chan struct{})
	compile := func(s workload.Spec, scale int, opt workload.BuildOptions) (*prog.Program, *prog.Image, error) {
		close(started)
		<-release
		return prog.New(), &prog.Image{}, nil
	}
	c := NewBuildCache(compile)
	ctx := context.Background()

	compilerDone := make(chan error, 1)
	go func() {
		_, _, err := c.Get(ctx, fakeSpec("w"), 1, workload.BuildOptions{})
		compilerDone <- err
	}()
	<-started // the compiling caller holds the in-flight entry

	waiterDone := make(chan error, 1)
	go func() {
		_, _, err := c.Get(ctx, fakeSpec("w"), 1, workload.BuildOptions{})
		waiterDone <- err
	}()

	// The waiter must be counted as a hit the moment it joins the
	// in-flight entry, before the build completes.
	deadline := time.After(5 * time.Second)
	for {
		if hits, _ := c.Stats(); hits == 1 {
			break
		}
		select {
		case <-deadline:
			hits, misses := c.Stats()
			t.Fatalf("waiter never counted as hit (hits %d, misses %d)", hits, misses)
		case <-time.After(time.Millisecond):
		}
	}
	if hits, misses := c.Stats(); hits != 1 || misses != 1 {
		t.Fatalf("mid-flight stats hits %d misses %d, want 1 and 1", hits, misses)
	}

	close(release)
	if err := <-compilerDone; err != nil {
		t.Fatal(err)
	}
	if err := <-waiterDone; err != nil {
		t.Fatal(err)
	}
	hits, misses := c.Stats()
	if hits != 1 || misses != 1 {
		t.Fatalf("final stats hits %d misses %d, want 1 and 1", hits, misses)
	}
	if n := c.Len(); n != 1 {
		t.Fatalf("len %d, want 1", n)
	}
}
