package runner

import (
	"dvi/internal/emu"
	"dvi/internal/prog"
	"dvi/internal/sample"
)

// The sampler's functional scan and its checkpoint buffers run through
// the same pools as the engine's job instances: the scan borrows a pooled
// emulator, and every checkpoint buffer is recycled so repeated sampled
// runs reach the same zero-allocation steady state as exact ones.

// AcquireEmulator returns a pooled emulator reset for (pr, img, cfg) for
// callers that drive a functional pass themselves (the sampler's scan).
// Pair with ReleaseEmulator.
func (e *Engine) AcquireEmulator(pr *prog.Program, img *prog.Image, cfg emu.Config) *emu.Emulator {
	return e.getEmu(pr, img, cfg)
}

// ReleaseEmulator returns an emulator obtained from AcquireEmulator to
// the pool.
func (e *Engine) ReleaseEmulator(em *emu.Emulator) { e.putEmu(em) }

// AcquireCheckpoint returns a checkpoint buffer whose internal slices
// (memory page delta, cache line arrays, predictor tables) are reused
// from a previous sampled run when possible.
func (e *Engine) AcquireCheckpoint() *sample.Checkpoint {
	if ck, ok := e.checkpoints.Get().(*sample.Checkpoint); ok {
		e.ckReuse.Add(1)
		return ck
	}
	e.ckFresh.Add(1)
	return new(sample.Checkpoint)
}

// ReleaseCheckpoint returns a checkpoint buffer to the pool once no
// in-flight job references it.
func (e *Engine) ReleaseCheckpoint(ck *sample.Checkpoint) {
	if ck == nil {
		return
	}
	e.checkpoints.Put(ck)
}
