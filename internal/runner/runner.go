// Package runner is the experiment execution engine: it runs simulation
// jobs on a bounded worker pool over a memoizing, single-flight build
// cache. The experiment harness (internal/harness) declares grids of
// (workload × configuration) jobs and consumes ordered results; this
// package owns all concurrency so the experiments themselves stay
// declarative and deterministic.
//
// Determinism contract: Run returns results indexed by submission order
// regardless of completion order, every simulator instance is built from
// shared read-only compiled artifacts with private mutable state, and no
// job observes another job's scheduling. A report rendered from the
// result slice is therefore byte-identical at any worker count.
package runner

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"dvi/internal/ctxswitch"
	"dvi/internal/emu"
	"dvi/internal/obs"
	"dvi/internal/ooo"
	"dvi/internal/prog"
	"dvi/internal/sample"
	"dvi/internal/store"
	"dvi/internal/workload"
)

// Kind selects what a job runs after its binary is built.
type Kind uint8

const (
	// Timing runs the out-of-order timing simulator (ooo.Machine).
	Timing Kind = iota
	// Functional runs the reference emulator (program-property studies:
	// Figures 3, 9, 13's dynamic overhead, the ablations).
	Functional
	// CtxSwitch samples live-register counts at preemption points
	// (ctxswitch.Measure, Figure 12).
	CtxSwitch
	// Build compiles and links only; the result carries the artifacts.
	// Figure 13 uses it for static code-size ratios.
	Build
	// SampledInterval runs one checkpointed interval of a sampled
	// simulation in detail (sample.RunInterval). The sampler submits one
	// job per selected interval; they are independent, so a batch spreads
	// across the pool like any other grid.
	SampledInterval
)

// String returns the progress label for the kind.
func (k Kind) String() string {
	switch k {
	case Timing:
		return "timing"
	case Functional:
		return "functional"
	case CtxSwitch:
		return "ctxswitch"
	case SampledInterval:
		return "interval"
	default:
		return "build"
	}
}

// DefaultEmuBudget caps functional runs that set no explicit budget; it
// matches the harness's historical 200M-instruction safety net.
const DefaultEmuBudget = 200_000_000

// Job is one unit of experiment work: which benchmark binary to build
// (or fetch from the cache) and what to run it on.
type Job struct {
	// Label identifies the job in progress output and errors
	// ("fig5 gcc r34 edvi"). Optional; a default is derived.
	Label string

	// Workload, Scale and Build determine the binary; together they form
	// the build cache key (workload.BuildKey).
	Workload workload.Spec
	Scale    int
	Build    workload.BuildOptions

	Kind Kind

	// Machine configures Timing jobs.
	Machine ooo.Config
	// Emu configures Functional and CtxSwitch jobs.
	Emu emu.Config
	// EmuBudget caps Functional and CtxSwitch runs
	// (0 = DefaultEmuBudget).
	EmuBudget uint64
	// Interval is the CtxSwitch preemption sampling interval.
	Interval uint64

	// Sample is the checkpoint a SampledInterval job simulates. The
	// checkpoint is read-only during the run and owned by the submitting
	// sampler (typically acquired from AcquireCheckpoint).
	Sample *sample.Checkpoint

	// KeepMachine retains the Timing simulator instance on the Result
	// for callers that need cache/predictor detail (cmd/dvisim). Off by
	// default: a machine pins its whole memory image, and large grids
	// retaining hundreds of them measurably slow the run with GC
	// pressure.
	KeepMachine bool
}

// label returns Label or a derived description.
func (j Job) label() string {
	if j.Label != "" {
		return j.Label
	}
	return fmt.Sprintf("%s %s", j.Kind, j.Workload.Key(j.Scale, j.Build))
}

// Result is the outcome of one job, in submission order.
type Result struct {
	Job   Job
	Index int

	// Program and Image are the (shared, read-only) compiled artifacts.
	Program *prog.Program
	Image   *prog.Image

	// Timing holds ooo statistics for Timing jobs; Machine is the
	// simulator instance itself, retained only when Job.KeepMachine is
	// set. CtxStats carries the per-context breakdown for multi-context
	// Timing jobs (nil on single-context machines, where the aggregate is
	// the whole story).
	Timing   ooo.Stats
	CtxStats []ooo.Stats
	Machine  *ooo.Machine

	// Func holds emulator statistics for Functional jobs.
	Func emu.Stats

	// Switch holds the measurement for CtxSwitch jobs.
	Switch ctxswitch.Result

	// Interval holds the measurement for SampledInterval jobs.
	Interval sample.IntervalResult

	// Sampled carries the whole-program estimate when the session ran a
	// Timing job through the statistical sampler instead of an exact
	// detailed run; Timing then holds the estimate rendered as machine
	// stats. Exact runs leave it nil.
	Sampled *sample.Estimate

	// Err is the job's failure, wrapped with its label. Run never returns
	// results with Err set (it fails fast instead); Stream sets it on the
	// failed job's result and keeps the batch going.
	Err error
}

// Phase tags a progress event.
type Phase uint8

const (
	// JobStart fires when a worker picks the job up.
	JobStart Phase = iota
	// JobDone fires after the job completed successfully.
	JobDone
	// JobFailed fires once for the job whose error aborts the run.
	JobFailed
)

// Event is one progress notification. Events for different jobs
// interleave arbitrarily under concurrency; Index orders them logically.
type Event struct {
	Phase Phase
	Index int
	Total int
	Label string
	Err   error // JobFailed only
}

// ProgressFunc observes job lifecycle events. It is called from worker
// goroutines and must be safe for concurrent use.
//
// Ordering contract: for any single job, its JobStart happens-before its
// JobDone or JobFailed (delivered on the same goroutine, so a callback
// that tracks per-job state needs no synchronization per Index). Events
// for different jobs carry no ordering at all — a batch running on N
// workers interleaves up to N jobs' events arbitrarily, and Index values
// do not arrive monotonically. Callbacks must not block: every event is
// delivered inline on a worker goroutine, so a slow callback stalls that
// worker's job pipeline.
type ProgressFunc func(Event)

// Options configures an Engine.
type Options struct {
	// Workers bounds the pool (<=0 means runtime.GOMAXPROCS(0)).
	Workers int
	// Progress, when non-nil, receives per-job lifecycle events. It is
	// invoked concurrently from worker goroutines; see ProgressFunc for
	// the exact ordering contract.
	Progress ProgressFunc
	// Compile overrides the build function (nil = workload.CompileSpec).
	Compile CompileFunc
	// CacheCapacity bounds the build cache to this many binaries with
	// LRU eviction (<=0 = unbounded). Batch report runs can stay
	// unbounded; long-lived daemons accepting arbitrary user assembly
	// should set a bound.
	CacheCapacity int
	// Store, when non-nil, backs the build cache with an on-disk
	// artifact store: cache misses decode persisted artifacts instead
	// of compiling, and fresh compiles are written through, so restarts
	// on the same directory skip every compile. Sampled runs persist
	// their interval-result sets through the same store.
	Store *store.Store
}

// Engine executes job batches. One engine owns one build cache, so every
// batch submitted through it shares memoized binaries; create one engine
// per report and feed it all figures' grids.
//
// The engine also owns pools of reusable simulator instances: a timing
// machine or emulator is reset per job (ooo.Machine.Reset /
// emu.Emulator.ResetFor — observably identical to a fresh one) instead of
// reallocating its window, caches, predictor tables and memory image.
// This is what keeps a long-lived daemon's steady-state allocation per
// simulation request small, and a large report grid off the garbage
// collector.
type Engine struct {
	workers  int
	progress ProgressFunc
	cache    *BuildCache

	machines    sync.Pool // *ooo.Machine
	emus        sync.Pool // *emu.Emulator
	checkpoints sync.Pool // *sample.Checkpoint

	// Pool effectiveness accounting: how often a job ran on a reset warm
	// instance versus having to build a fresh one (PoolStats; exported by
	// the service as /metrics counters).
	machineReuse, machineFresh atomic.Int64
	emuReuse, emuFresh         atomic.Int64
	ckReuse, ckFresh           atomic.Int64
}

// PoolStats reports instance pool effectiveness: jobs served by resetting
// a pooled warm machine/emulator versus constructing a fresh one. (The GC
// may empty a sync.Pool at any time, so fresh counts are an upper bound
// on true misses.)
type PoolStats struct {
	MachineReuse, MachineFresh int64
	EmuReuse, EmuFresh         int64
	// Checkpoint buffer pool effectiveness: a reused checkpoint keeps its
	// grown snapshot slices (memory delta, cache lines, predictor
	// tables), so a steady stream of sampled runs allocates nothing per
	// capture.
	CheckpointReuse, CheckpointFresh int64
}

// PoolStats returns the engine's instance pool counters.
func (e *Engine) PoolStats() PoolStats {
	return PoolStats{
		MachineReuse:    e.machineReuse.Load(),
		MachineFresh:    e.machineFresh.Load(),
		EmuReuse:        e.emuReuse.Load(),
		EmuFresh:        e.emuFresh.Load(),
		CheckpointReuse: e.ckReuse.Load(),
		CheckpointFresh: e.ckFresh.Load(),
	}
}

// New builds an engine.
func New(opt Options) *Engine {
	w := opt.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	return &Engine{workers: w, progress: opt.Progress, cache: NewBuildCacheStore(opt.Compile, opt.CacheCapacity, opt.Store)}
}

// Workers returns the configured pool size.
func (e *Engine) Workers() int { return e.workers }

// Cache exposes the engine's build cache (hit/miss accounting).
func (e *Engine) Cache() *BuildCache { return e.cache }

// Store exposes the artifact store backing the build cache (nil when
// the engine is purely in-memory).
func (e *Engine) Store() *store.Store { return e.cache.Store() }

func (e *Engine) emit(ev Event) {
	if e.progress != nil {
		e.progress(ev)
	}
}

// pool is the shared worker-pool core behind Run and Stream: it spawns
// up to min(workers, len(jobs)) goroutines, hands out jobs by an atomic
// counter, emits JobStart plus JobDone/JobFailed events, and calls handle
// from worker goroutines with each finished job's (index, result, error).
// A job abandoned by ctx cancellation mid-run is not handled — the batch
// is over. handle returning false retires the calling worker (fail-fast
// callers pair it with cancelling ctx). pool returns once every worker
// has exited.
func (e *Engine) pool(ctx context.Context, jobs []Job, handle func(i int, res Result, err error) bool) {
	var (
		next atomic.Int64
		wg   sync.WaitGroup
	)
	next.Store(-1)
	submitted := time.Now() // queue-wait baseline for the batch's spans
	workers := e.workers
	if workers > len(jobs) {
		workers = len(jobs)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= len(jobs) || ctx.Err() != nil {
					return
				}
				j := jobs[i]
				e.emit(Event{Phase: JobStart, Index: i, Total: len(jobs), Label: j.label()})
				res, err := e.runJob(ctx, j, time.Since(submitted))
				if err != nil {
					if ctx.Err() != nil {
						// Abandoned by cancellation; not this job's fault.
						return
					}
					e.emit(Event{Phase: JobFailed, Index: i, Total: len(jobs), Label: j.label(), Err: err})
				} else {
					e.emit(Event{Phase: JobDone, Index: i, Total: len(jobs), Label: j.label()})
				}
				if !handle(i, res, err) {
					return
				}
			}
		}()
	}
	wg.Wait()
}

// Run executes jobs on the worker pool and returns results in submission
// order. On the first job error the run fails fast: the context passed
// to builds is cancelled, queued jobs are abandoned, in-flight jobs
// finish, and the triggering error is returned (wrapped with the job's
// label). External cancellation of ctx aborts the same way and returns
// ctx's error. A nil error guarantees one Result per job.
func (e *Engine) Run(ctx context.Context, jobs []Job) ([]Result, error) {
	if len(jobs) == 0 {
		return nil, ctx.Err()
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	results := make([]Result, len(jobs))
	var (
		firstErr error
		errOnce  sync.Once
	)
	e.pool(ctx, jobs, func(i int, res Result, err error) bool {
		if err != nil {
			errOnce.Do(func() {
				firstErr = fmt.Errorf("%s: %w", jobs[i].label(), err)
				cancel()
			})
			return false
		}
		res.Index = i
		results[i] = res
		return true
	})
	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return results, nil
}

// getMachine returns a pooled timing machine reset for (pr, img, cfg), or
// a fresh one when the pool is empty.
func (e *Engine) getMachine(pr *prog.Program, img *prog.Image, cfg ooo.Config) *ooo.Machine {
	if m, ok := e.machines.Get().(*ooo.Machine); ok {
		e.machineReuse.Add(1)
		m.Reset(pr, img, cfg)
		return m
	}
	e.machineFresh.Add(1)
	return ooo.New(pr, img, cfg)
}

// getEmu returns a pooled emulator reset for (pr, img, cfg), or a fresh
// one when the pool is empty.
func (e *Engine) getEmu(pr *prog.Program, img *prog.Image, cfg emu.Config) *emu.Emulator {
	if em, ok := e.emus.Get().(*emu.Emulator); ok {
		e.emuReuse.Add(1)
		em.ResetFor(pr, img, cfg)
		return em
	}
	e.emuFresh.Add(1)
	return emu.New(pr, img, cfg)
}

// putMachine returns a machine to the pool unless the job it just ran
// left it with an outsized memory footprint — those are dropped at once
// so a burst of large client programs cannot pin their pages in a
// long-lived daemon's pool.
func (e *Engine) putMachine(m *ooo.Machine) {
	if m.Emu().Mem.Oversized() {
		return
	}
	e.machines.Put(m)
}

// putEmu is putMachine for emulators.
func (e *Engine) putEmu(em *emu.Emulator) {
	if em.Mem.Oversized() {
		return
	}
	e.emus.Put(em)
}

// runJob builds (or fetches) the binary and executes one job. queueWait
// is how long the job sat queued behind the batch before a worker picked
// it up; it only annotates the job's span (zero cost with tracing off).
func (e *Engine) runJob(ctx context.Context, j Job, queueWait time.Duration) (Result, error) {
	ctx, span := obs.StartSpan(ctx, "job")
	if span != nil {
		span.SetAttr("label", j.label())
		span.SetAttr("kind", j.Kind.String())
		span.SetAttr("queue_wait_ms", float64(queueWait)/float64(time.Millisecond))
		defer span.End()
	}

	bctx, bspan := obs.StartSpan(ctx, "build")
	pr, img, err := e.cache.Get(bctx, j.Workload, j.Scale, j.Build)
	bspan.End()
	if err != nil {
		return Result{}, err
	}
	res := Result{Job: j, Program: pr, Image: img}
	_, kspan := obs.StartSpan(ctx, j.Kind.String())
	defer kspan.End()
	switch j.Kind {
	case Timing:
		if err := j.Machine.CheckContexts(); err != nil {
			return res, err
		}
		m := e.getMachine(pr, img, j.Machine)
		st, err := m.Run()
		if err != nil {
			return res, err
		}
		res.Timing = st
		if m.Contexts() > 1 {
			res.CtxStats = m.CtxStats()
		}
		if j.KeepMachine {
			// The caller owns this instance now; it must not be pooled.
			res.Machine = m
		} else {
			e.putMachine(m)
		}
	case Functional:
		em := e.getEmu(pr, img, j.Emu)
		budget := j.EmuBudget
		if budget == 0 {
			budget = DefaultEmuBudget
		}
		if err := em.Run(budget); err != nil {
			return res, err
		}
		res.Func = em.Stats
		e.putEmu(em)
	case CtxSwitch:
		budget := j.EmuBudget
		if budget == 0 {
			budget = DefaultEmuBudget
		}
		em := e.getEmu(pr, img, j.Emu)
		sw, err := ctxswitch.MeasureEmulator(em, j.Interval, budget)
		if err != nil {
			return res, err
		}
		res.Switch = sw
		e.putEmu(em)
	case SampledInterval:
		if j.Sample == nil {
			return res, fmt.Errorf("runner: SampledInterval job without a checkpoint")
		}
		m := e.getMachine(pr, img, j.Machine)
		iv, err := sample.RunInterval(m, j.Sample)
		if err != nil {
			return res, err
		}
		res.Interval = iv
		e.putMachine(m)
	case Build:
		// Artifacts only.
	default:
		return res, fmt.Errorf("runner: unknown job kind %d", j.Kind)
	}
	return res, nil
}
