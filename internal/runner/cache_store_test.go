package runner

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"

	"dvi/internal/prog"
	"dvi/internal/store"
	"dvi/internal/workload"
)

// TestBuildCacheStoreWarmRestart is the crash-recovery core: a second
// cache opened over the same store directory — a restarted daemon —
// fills from disk artifacts and never invokes the compiler.
func TestBuildCacheStoreWarmRestart(t *testing.T) {
	dir := t.TempDir()
	st1, err := store.Open(store.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	var calls atomic.Int64
	compile := func(s workload.Spec, scale int, opt workload.BuildOptions) (*prog.Program, *prog.Image, error) {
		calls.Add(1)
		return workload.CompileSpec(s, scale, opt)
	}
	spec, ok := workload.ByName("li")
	if !ok {
		t.Fatal("workload li missing")
	}
	ctx := context.Background()

	c1 := NewBuildCacheStore(compile, 0, st1)
	pr1, _, err := c1.Get(ctx, spec, 1, workload.BuildOptions{EDVI: true})
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 1 || c1.Compiles() != 1 || c1.StoreHits() != 0 {
		t.Fatalf("cold fill: calls %d compiles %d storeHits %d", calls.Load(), c1.Compiles(), c1.StoreHits())
	}
	if st1.Stats().Puts != 1 {
		t.Fatalf("store stats: %+v", st1.Stats())
	}

	// "Restart": fresh store handle and cache over the same directory.
	st2, err := store.Open(store.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	c2 := NewBuildCacheStore(compile, 0, st2)
	pr2, img2, err := c2.Get(ctx, spec, 1, workload.BuildOptions{EDVI: true})
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 1 {
		t.Fatalf("warm restart recompiled: %d calls", calls.Load())
	}
	if c2.Compiles() != 0 || c2.StoreHits() != 1 {
		t.Fatalf("warm fill: compiles %d storeHits %d", c2.Compiles(), c2.StoreHits())
	}
	if img2 == nil {
		t.Fatal("decoded artifact did not link")
	}
	// The decoded program must be the same binary, byte for byte.
	if string(store.EncodeProgram(pr2)) != string(store.EncodeProgram(pr1)) {
		t.Fatal("decoded program differs from the compiled one")
	}

	// A corrupted artifact must fall back to compiling, not fail.
	names, _ := filepath.Glob(filepath.Join(dir, "*.art"))
	if len(names) != 1 {
		t.Fatalf("want 1 artifact, have %v", names)
	}
	data, err := os.ReadFile(names[0])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 1
	if err := os.WriteFile(names[0], data, 0o644); err != nil {
		t.Fatal(err)
	}
	st3, err := store.Open(store.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	c3 := NewBuildCacheStore(compile, 0, st3)
	if _, _, err := c3.Get(ctx, spec, 1, workload.BuildOptions{EDVI: true}); err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 2 || c3.Compiles() != 1 {
		t.Fatalf("corrupt artifact not recompiled: calls %d compiles %d", calls.Load(), c3.Compiles())
	}
	if st3.Stats().Quarantined != 1 {
		t.Fatalf("store stats: %+v", st3.Stats())
	}
}

// TestBuildCacheEvictWhileFilling pins the eviction/single-flight
// interaction: an entry whose fill is still in flight must survive LRU
// pressure — eviction skips it — and every waiter that joined it
// receives exactly the artifact its one compile produced, not a
// recompile and not a released pointer.
func TestBuildCacheEvictWhileFilling(t *testing.T) {
	started := make(chan struct{})
	release := make(chan struct{})
	var slowCalls, otherCalls atomic.Int64
	marker := prog.New()
	compile := func(s workload.Spec, scale int, opt workload.BuildOptions) (*prog.Program, *prog.Image, error) {
		if s.Name == "slow" {
			slowCalls.Add(1)
			close(started)
			<-release
			return marker, &prog.Image{}, nil
		}
		otherCalls.Add(1)
		return prog.New(), &prog.Image{}, nil
	}
	c := NewBuildCacheLRU(compile, 1)
	ctx := context.Background()

	fillerDone := make(chan *prog.Program, 1)
	go func() {
		pr, _, err := c.Get(ctx, fakeSpec("slow"), 1, workload.BuildOptions{})
		if err != nil {
			t.Error(err)
		}
		fillerDone <- pr
	}()
	<-started

	// Hammer the 1-entry bound while "slow" is mid-fill: each of these
	// completes and immediately becomes eviction fodder, but "slow"
	// (not done) must be skipped every time.
	for i := 0; i < 8; i++ {
		if _, _, err := c.Get(ctx, fakeSpec(fmt.Sprintf("w%d", i)), 1, workload.BuildOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	if c.Evictions() == 0 {
		t.Fatal("bound never evicted despite 8 completed fills over capacity 1")
	}

	// Late waiters join the still-in-flight entry.
	var wg sync.WaitGroup
	waiters := make(chan *prog.Program, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			pr, _, err := c.Get(ctx, fakeSpec("slow"), 1, workload.BuildOptions{})
			if err != nil {
				t.Error(err)
			}
			waiters <- pr
		}()
	}

	close(release)
	if pr := <-fillerDone; pr != marker {
		t.Fatal("filler got a different artifact than its compile produced")
	}
	wg.Wait()
	close(waiters)
	for pr := range waiters {
		if pr != marker {
			t.Fatal("waiter got a recompiled or released artifact")
		}
	}
	if slowCalls.Load() != 1 {
		t.Fatalf("slow compiled %d times, want 1", slowCalls.Load())
	}
}

// TestBuildCacheEvictFillStress races fills, joins, and evictions over
// a keyspace much larger than the bound; run under -race in CI it
// catches use-after-release and lock-ordering regressions in the
// eviction path.
func TestBuildCacheEvictFillStress(t *testing.T) {
	var calls atomic.Int64
	c := NewBuildCacheLRU(stubCompile(&calls), 2)
	ctx := context.Background()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				name := fmt.Sprintf("w%d", (g*7+i)%16)
				pr, img, err := c.Get(ctx, fakeSpec(name), 1, workload.BuildOptions{})
				if err != nil || pr == nil || img == nil {
					t.Errorf("get %s: (%v, %v, %v)", name, pr, img, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if n := c.Len(); n > 2 {
		t.Fatalf("len %d exceeds capacity after quiescence", n)
	}
	if c.Evictions() == 0 {
		t.Fatal("no evictions over 16 keys at capacity 2")
	}
}
