package runner

import (
	"context"
	"sync"
	"sync/atomic"

	"dvi/internal/prog"
	"dvi/internal/workload"
)

// CompileFunc compiles and links one benchmark flavour. The default is
// workload.CompileSpec; tests substitute counting or failing variants.
type CompileFunc func(s workload.Spec, scale int, opt workload.BuildOptions) (*prog.Program, *prog.Image, error)

// BuildCache memoizes compiled binaries by workload.BuildKey with
// single-flight deduplication: under concurrent Get calls for the same
// key, exactly one caller compiles while the rest block on the result.
// Cached Program/Image pairs are shared across jobs and must be treated
// as read-only (emulators and machines copy the memory they mutate;
// callers must not re-link or rewrite a cached Program).
type BuildCache struct {
	compile CompileFunc

	mu      sync.Mutex
	entries map[workload.BuildKey]*buildEntry

	hits   atomic.Int64
	misses atomic.Int64
}

// buildEntry is one in-flight or completed build. ready is closed when
// pr/img/err are final.
type buildEntry struct {
	ready chan struct{}
	pr    *prog.Program
	img   *prog.Image
	err   error
}

// NewBuildCache builds an empty cache. A nil compile uses
// workload.CompileSpec.
func NewBuildCache(compile CompileFunc) *BuildCache {
	if compile == nil {
		compile = workload.CompileSpec
	}
	return &BuildCache{compile: compile, entries: map[workload.BuildKey]*buildEntry{}}
}

// Get returns the compiled binary for (s, scale, opt), compiling at most
// once per distinct key. Waiters honour ctx cancellation; the compiling
// caller always finishes its build so the entry is usable by others.
// Failed builds are cached too — every job needing the same binary fails
// identically rather than retrying a deterministic compile error.
func (c *BuildCache) Get(ctx context.Context, s workload.Spec, scale int, opt workload.BuildOptions) (*prog.Program, *prog.Image, error) {
	key := s.Key(scale, opt)
	c.mu.Lock()
	if ent, ok := c.entries[key]; ok {
		c.mu.Unlock()
		c.hits.Add(1)
		select {
		case <-ent.ready:
			return ent.pr, ent.img, ent.err
		case <-ctx.Done():
			return nil, nil, ctx.Err()
		}
	}
	ent := &buildEntry{ready: make(chan struct{})}
	c.entries[key] = ent
	c.mu.Unlock()

	c.misses.Add(1)
	ent.pr, ent.img, ent.err = c.compile(s, scale, opt)
	close(ent.ready)
	return ent.pr, ent.img, ent.err
}

// Stats reports cache traffic: hits is the number of Get calls served
// from a completed or in-flight build, misses the number of actual
// compiles performed.
func (c *BuildCache) Stats() (hits, misses int64) {
	return c.hits.Load(), c.misses.Load()
}

// Len returns the number of distinct keys built or building.
func (c *BuildCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
