package runner

import (
	"context"
	"sync"
	"sync/atomic"

	"dvi/internal/obs"
	"dvi/internal/prog"
	"dvi/internal/store"
	"dvi/internal/workload"
)

// CompileFunc compiles and links one benchmark flavour. The default is
// workload.CompileSpec; tests substitute counting or failing variants.
type CompileFunc func(s workload.Spec, scale int, opt workload.BuildOptions) (*prog.Program, *prog.Image, error)

// BuildCache memoizes compiled binaries by workload.BuildKey with
// single-flight deduplication: under concurrent Get calls for the same
// key, exactly one caller compiles while the rest block on the result.
// Cached Program/Image pairs are shared across jobs and must be treated
// as read-only (emulators and machines copy the memory they mutate;
// callers must not re-link or rewrite a cached Program).
//
// A cache built with a positive capacity evicts in least-recently-used
// order once it holds more than capacity entries. The 20-odd binaries of
// a report run fit any reasonable bound; the bound exists for long-lived
// daemons (cmd/dvid) whose clients submit arbitrary assembly — an
// unbounded memo of user inputs is a memory leak. In-flight builds are
// never evicted (waiters must be able to join them); an entry evicted
// while a caller still holds its artifacts stays alive through that
// reference, the cache just forgets it.
type BuildCache struct {
	compile  CompileFunc
	capacity int // 0 = unbounded
	store    *store.Store

	mu      sync.Mutex
	entries map[workload.BuildKey]*buildEntry
	// Doubly-linked LRU list over map entries; head is most recent.
	head, tail *buildEntry

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
	compiles  atomic.Int64
	storeHits atomic.Int64
}

// buildEntry is one in-flight or completed build. ready is closed when
// pr/img/err are final; done mirrors it under the cache lock so eviction
// can tell finished entries from in-flight ones.
type buildEntry struct {
	key        workload.BuildKey
	ready      chan struct{}
	done       bool
	prev, next *buildEntry
	pr         *prog.Program
	img        *prog.Image
	err        error
}

// NewBuildCache builds an empty, unbounded cache. A nil compile uses
// workload.CompileSpec.
func NewBuildCache(compile CompileFunc) *BuildCache {
	return NewBuildCacheLRU(compile, 0)
}

// NewBuildCacheLRU builds an empty cache bounded to capacity entries with
// LRU eviction; capacity <= 0 means unbounded. A nil compile uses
// workload.CompileSpec.
func NewBuildCacheLRU(compile CompileFunc, capacity int) *BuildCache {
	return NewBuildCacheStore(compile, capacity, nil)
}

// NewBuildCacheStore builds a bounded cache backed by an on-disk
// artifact store: memory misses first try the store (a verified
// artifact is decoded instead of compiled), and fresh compiles are
// persisted back, so a warm restart on the same store directory fills
// the whole cache without invoking the compiler once. A nil store
// degrades to the purely in-memory cache.
func NewBuildCacheStore(compile CompileFunc, capacity int, st *store.Store) *BuildCache {
	if compile == nil {
		compile = workload.CompileSpec
	}
	if capacity < 0 {
		capacity = 0
	}
	return &BuildCache{compile: compile, capacity: capacity, store: st, entries: map[workload.BuildKey]*buildEntry{}}
}

// Store returns the backing artifact store (nil when purely in-memory).
func (c *BuildCache) Store() *store.Store { return c.store }

// unlink removes e from the LRU list. Caller holds mu.
func (c *BuildCache) unlink(e *buildEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else if c.head == e {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else if c.tail == e {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

// pushFront makes e the most recently used entry. Caller holds mu.
func (c *BuildCache) pushFront(e *buildEntry) {
	e.prev, e.next = nil, c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

// enforceCapacity evicts completed least-recently-used entries until the
// cache fits its bound. In-flight entries are skipped: their compiling
// callers and waiters expect to find them. Caller holds mu.
func (c *BuildCache) enforceCapacity() {
	if c.capacity <= 0 {
		return
	}
	for e := c.tail; e != nil && len(c.entries) > c.capacity; {
		prev := e.prev
		if e.done {
			c.unlink(e)
			delete(c.entries, e.key)
			c.evictions.Add(1)
		}
		e = prev
	}
}

// Get returns the compiled binary for (s, scale, opt), compiling at most
// once per distinct key. Waiters honour ctx cancellation; the compiling
// caller always finishes its build so the entry is usable by others.
// Failed builds are cached too — every job needing the same binary fails
// identically rather than retrying a deterministic compile error.
func (c *BuildCache) Get(ctx context.Context, s workload.Spec, scale int, opt workload.BuildOptions) (*prog.Program, *prog.Image, error) {
	key := s.Key(scale, opt)
	c.mu.Lock()
	if ent, ok := c.entries[key]; ok {
		c.unlink(ent)
		c.pushFront(ent)
		c.mu.Unlock()
		c.hits.Add(1)
		select {
		case <-ent.ready:
			return ent.pr, ent.img, ent.err
		case <-ctx.Done():
			return nil, nil, ctx.Err()
		}
	}
	ent := &buildEntry{key: key, ready: make(chan struct{})}
	c.entries[key] = ent
	c.pushFront(ent)
	c.mu.Unlock()

	c.misses.Add(1)
	ent.pr, ent.img, ent.err = c.fill(ctx, s, scale, opt, key)
	c.mu.Lock()
	ent.done = true
	c.enforceCapacity()
	c.mu.Unlock()
	close(ent.ready)
	return ent.pr, ent.img, ent.err
}

// fill resolves a memory miss: a verified store artifact decodes
// straight into the cache, anything else compiles (and, on success,
// persists the artifact for the next process).
func (c *BuildCache) fill(ctx context.Context, s workload.Spec, scale int, opt workload.BuildOptions, key workload.BuildKey) (*prog.Program, *prog.Image, error) {
	if c.store != nil {
		if payload, ok := c.store.Get(store.BuildKind, key.String()); ok {
			_, span := obs.StartSpan(ctx, "store-decode")
			pr, img, err := store.DecodeProgram(payload)
			if span != nil {
				span.SetAttr("key", key.String())
				span.SetAttr("ok", err == nil)
				span.End()
			}
			if err == nil {
				c.storeHits.Add(1)
				return pr, img, nil
			}
			// Checksum passed but the grammar moved on: recompile.
		}
	}
	_, span := obs.StartSpan(ctx, "compile")
	pr, img, err := c.compile(s, scale, opt)
	if span != nil {
		span.SetAttr("key", key.String())
		span.End()
	}
	c.compiles.Add(1)
	if err == nil && c.store != nil {
		if perr := c.store.Put(store.BuildKind, key.String(), store.EncodeProgram(pr)); perr != nil {
			// Persistence is best-effort; the store counts its errors.
			_ = perr
		}
	}
	return pr, img, err
}

// Stats reports cache traffic: hits is the number of Get calls served
// from a completed or in-flight in-memory build, misses the number of
// fills (store decodes plus compiles).
func (c *BuildCache) Stats() (hits, misses int64) {
	return c.hits.Load(), c.misses.Load()
}

// Compiles returns how many times the compile function actually ran —
// with a warm artifact store this stays at zero across a restart even
// as misses count store decodes.
func (c *BuildCache) Compiles() int64 { return c.compiles.Load() }

// StoreHits returns how many memory misses were served by decoding a
// verified on-disk artifact instead of compiling.
func (c *BuildCache) StoreHits() int64 { return c.storeHits.Load() }

// Evictions returns how many completed entries the LRU bound has dropped.
func (c *BuildCache) Evictions() int64 { return c.evictions.Load() }

// Capacity returns the configured LRU bound (0 = unbounded).
func (c *BuildCache) Capacity() int { return c.capacity }

// Len returns the number of distinct keys built or building.
func (c *BuildCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
