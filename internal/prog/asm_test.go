package prog

import (
	"strings"
	"testing"

	"dvi/internal/isa"
)

// buildSample constructs a program exercising every operand shape the
// assembly format has to represent: R/I arithmetic, memory and DVI memory
// ops, branches with labels, direct and indirect calls, kill masks, data
// symbol halves, and trailing labels.
func buildSample() *Program {
	pr := New()
	pr.AddData(DataSym{Name: "tbl", Size: 16, Init: []byte{1, 2, 0xAB}})
	pr.AddData(DataSym{Name: "buf", Size: 8, Align: 16})

	a := pr.Assembler("main")
	epi := a.Frame(8, true, isa.S0, isa.S1)
	a.LoadAddr(isa.T0, "tbl")
	a.Li(isa.A0, -3)
	a.Lui(isa.T1, 0x1234)
	a.Kill(isa.S0, isa.S2)
	a.Call("helper")
	a.CallReg(isa.T0)
	a.Label("loop")
	a.Add(isa.T2, isa.A0, isa.T1)
	a.Ld(isa.T3, isa.SP, 0)
	a.Sb(isa.T3, isa.T0, 5)
	a.Bne(isa.T2, isa.Zero, "loop")
	a.Sys(isa.A0, isa.T2)
	a.Jump("done")
	a.Label("done")
	epi()
	a.Label("end")

	h := pr.Assembler("helper")
	h.Inst(isa.Inst{Op: isa.JR, Rs1: isa.T9}) // jr through a non-ra register
	h.LvmSave(isa.SP, 16)
	h.LvmLoad(isa.SP, 16)
	h.Ret()
	return pr
}

func TestAsmRoundTripSample(t *testing.T) {
	pr := buildSample()
	text1 := FormatAsm(pr)
	pr2, err := ParseAsm(text1)
	if err != nil {
		t.Fatalf("ParseAsm: %v\n%s", err, text1)
	}
	text2 := FormatAsm(pr2)
	if text1 != text2 {
		t.Fatalf("assembly text is not a fixed point\n--- first ---\n%s\n--- second ---\n%s", text1, text2)
	}

	img1, err := pr.Link()
	if err != nil {
		t.Fatalf("link original: %v", err)
	}
	img2, err := pr2.Link()
	if err != nil {
		t.Fatalf("link reparsed: %v", err)
	}
	if len(img1.Code) != len(img2.Code) {
		t.Fatalf("code size differs: %d vs %d words", len(img1.Code), len(img2.Code))
	}
	for i := range img1.Code {
		if img1.Code[i] != img2.Code[i] {
			t.Fatalf("word %d differs: %#08x vs %#08x (%s vs %s)",
				i, img1.Code[i], img2.Code[i], img1.Insts[i], img2.Insts[i])
		}
	}
}

func TestParseAsmErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"no proc", "add t0, t1, t2\n", "before any .proc"},
		{"bad op", ".proc main\n  frob t0, t1, t2\n", "unknown mnemonic"},
		{"bad reg", ".proc main\n  add t0, t1, x9\n", "unknown register"},
		{"operand count", ".proc main\n  add t0, t1\n", "wants 3 operands"},
		{"dup proc", ".proc main\n.proc main\n", "duplicate procedure"},
		{"dup label", ".proc main\nx:\nx:\n", "duplicate label"},
		{"bad mem", ".proc main\n  ld t0, t1\n", "bad memory operand"},
		{"bad mask", ".proc main\n  kill s0\n", "bad kill mask"},
		{"bad data", ".data x size=abc\n", "bad size"},
		{"typo directive", ".procX main\n", "unknown directive .procX"},
		{"dot label", ".proc main\n.L0:\n  ret\n", "unknown directive .L0:"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := ParseAsm(c.src)
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("want error containing %q, got %v", c.want, err)
			}
		})
	}
}

func TestParseAsmLabelSharingLine(t *testing.T) {
	pr, err := ParseAsm(".entry main\n.proc main\nstart: addi t0, zero, 1\n  ret\n")
	if err != nil {
		t.Fatal(err)
	}
	p := pr.Proc("main")
	if i, ok := p.LabelAt("start"); !ok || i != 0 {
		t.Fatalf("label start at %d (%v), want 0", i, ok)
	}
	if len(p.Insts) != 2 {
		t.Fatalf("got %d insts, want 2", len(p.Insts))
	}
}

func TestParseAsmNumericTargets(t *testing.T) {
	src := ".proc main\n  beq t0, t1, -2\n  j 0x1000\n  ret\n"
	pr, err := ParseAsm(src)
	if err != nil {
		t.Fatal(err)
	}
	ins := pr.Proc("main").Insts
	if ins[0].Kind != TargetNone || ins[0].Imm != -2 {
		t.Fatalf("branch: kind %d imm %d, want numeric -2", ins[0].Kind, ins[0].Imm)
	}
	if ins[1].Kind != TargetNone || ins[1].Imm != 0x1000 {
		t.Fatalf("jump: kind %d imm %#x, want numeric 0x1000", ins[1].Kind, ins[1].Imm)
	}
	if FormatAsm(pr) != ".entry main\n\n.proc main\n  beq t0, t1, -2\n  j 0x1000\n  ret\n" {
		t.Fatalf("unexpected rendering:\n%s", FormatAsm(pr))
	}
}
