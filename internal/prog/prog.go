// Package prog represents programs symbolically — procedures containing
// instructions whose control-flow targets are labels — and links them into
// executable images. Keeping targets symbolic until link time is what lets
// the binary rewriting DVI inserter (internal/rewrite) add kill
// instructions without manual address fixups, exactly as the paper's
// "simple binary rewriting tool" would.
package prog

import (
	"fmt"
	"sort"

	"dvi/internal/isa"
	"dvi/internal/mem"
)

// Default memory layout.
const (
	DefaultTextBase = 0x0000_1000
	DefaultDataBase = 0x1000_0000
	DefaultStackTop = 0x7FFF_F000
)

// TargetKind says how an instruction's symbolic target is resolved.
type TargetKind uint8

const (
	// TargetNone: the instruction has no symbolic target; Imm is final.
	TargetNone TargetKind = iota
	// TargetBranch: Target is a label in the same procedure; the linker
	// writes the signed word offset into Imm.
	TargetBranch
	// TargetJump: Target is a procedure name or local label; the linker
	// writes the absolute address into Imm (J/JAL).
	TargetJump
	// TargetDataHi: Target names a data symbol; Imm receives the high 16
	// bits of its address (for LUI).
	TargetDataHi
	// TargetDataLo: Target names a data symbol; Imm receives the low 16
	// bits of its address (for ORI).
	TargetDataLo
)

// Inst is a symbolic instruction: a machine instruction plus an optional
// unresolved target.
type Inst struct {
	isa.Inst
	Kind   TargetKind
	Target string
}

// Proc is a procedure: a named sequence of instructions with local labels.
type Proc struct {
	Name   string
	Insts  []Inst
	labels map[string]int // label -> instruction index
}

// Labels returns a copy of the label table (for listings and CFG building).
func (p *Proc) Labels() map[string]int {
	out := make(map[string]int, len(p.labels))
	for k, v := range p.labels {
		out[k] = v
	}
	return out
}

// LabelAt returns the instruction index of a local label.
func (p *Proc) LabelAt(name string) (int, bool) {
	i, ok := p.labels[name]
	return i, ok
}

// InsertBefore inserts in before instruction index idx, shifting labels so
// that a label previously naming the instruction at idx still names that
// same instruction (now at idx+1). Symbolic targets are unaffected.
func (p *Proc) InsertBefore(idx int, in Inst) {
	if idx < 0 || idx > len(p.Insts) {
		panic(fmt.Sprintf("prog: insert index %d out of range [0,%d]", idx, len(p.Insts)))
	}
	p.Insts = append(p.Insts, Inst{})
	copy(p.Insts[idx+1:], p.Insts[idx:])
	p.Insts[idx] = in
	for name, li := range p.labels {
		if li >= idx {
			p.labels[name] = li + 1
		}
	}
}

// DataSym is an initialized or zero-filled data symbol.
type DataSym struct {
	Name  string
	Size  int    // bytes, rounded up to 8 at layout
	Init  []byte // nil or shorter than Size means zero fill
	Align int    // bytes; 0 means 8
}

// Program is a set of procedures plus data, before linking.
type Program struct {
	Procs []*Proc
	Data  []DataSym
	Entry string // procedure where execution starts (default "main")

	byName map[string]*Proc
}

// New returns an empty program with entry point "main".
func New() *Program {
	return &Program{Entry: "main", byName: make(map[string]*Proc)}
}

// AddProc appends a new empty procedure and returns it. Adding a duplicate
// name panics: procedure names are the global namespace.
func (pr *Program) AddProc(name string) *Proc {
	if _, dup := pr.byName[name]; dup {
		panic("prog: duplicate procedure " + name)
	}
	p := &Proc{Name: name, labels: make(map[string]int)}
	pr.Procs = append(pr.Procs, p)
	pr.byName[name] = p
	return p
}

// Proc returns the named procedure, or nil.
func (pr *Program) Proc(name string) *Proc { return pr.byName[name] }

// AddData registers a data symbol.
func (pr *Program) AddData(d DataSym) {
	pr.Data = append(pr.Data, d)
}

// ProcRange locates a linked procedure by address range.
type ProcRange struct {
	Name  string
	Start uint64 // first instruction address
	End   uint64 // one past the last instruction
}

// Meta is the predecoded metadata of one static instruction: everything
// the pipeline would otherwise rederive from the decoded form on every
// dynamic fetch of the same instruction (operand roles, op class, fixed
// latency, static control target). It is built once at Link, so the
// simulation inner loops read flat tables instead of calling the
// allocating isa.Inst.SrcRegs or recomputing classes and targets.
type Meta struct {
	Srcs    [2]isa.Reg // architectural sources, Srcs[:NSrc]
	NSrc    uint8
	Dest    isa.Reg // architectural destination when HasDest
	HasDest bool
	Class   isa.Class
	Lat     uint8  // fixed execution latency; 0 = config or cache dependent
	Target  uint64 // static taken target (branches, J, JAL); 0 otherwise
}

// haltMeta describes the synthetic HALT returned for fetches outside the
// text segment.
var haltMeta = Meta{Class: isa.ClassHalt}

// metaFor predecodes one instruction located at pc.
func metaFor(pc uint64, in isa.Inst) Meta {
	var m Meta
	var buf [2]isa.Reg
	srcs := in.AppendSrcRegs(buf[:0])
	m.NSrc = uint8(len(srcs))
	copy(m.Srcs[:], srcs)
	if rd, ok := in.WritesReg(); ok {
		m.Dest, m.HasDest = rd, true
	}
	m.Class = isa.OpClass(in.Op)
	switch m.Class {
	case isa.ClassIntALU, isa.ClassBranch, isa.ClassJump:
		m.Lat = 1
		// Other classes keep Lat 0: their latency is configuration or
		// cache dependent (mul/div, loads), or they never issue (stores
		// complete at issue, NOP/KILL/HALT never reach a functional unit).
	}
	if t, ok := isa.BranchTarget(pc, in); ok {
		m.Target = t
	}
	return m
}

// Image is a linked, executable program.
type Image struct {
	TextBase uint64
	Code     []uint32   // encoded text
	Insts    []isa.Inst // decoded text, index = (pc-TextBase)/4
	Metas    []Meta     // predecoded metadata, same index as Insts
	EntryPC  uint64
	HaltPC   uint64 // address of the final HALT trampoline

	DataBase uint64
	DataEnd  uint64
	StackTop uint64

	ProcAddrs map[string]uint64
	ranges    []ProcRange
	dataAddrs map[string]uint64
	labels    map[uint64]string // address -> label (procedures and locals)
}

// Link lays out procedures at TextBase in declaration order, resolves all
// symbolic targets, and returns the image. A small trampoline is prepended:
// it calls the entry procedure and halts when it returns.
func (pr *Program) Link() (*Image, error) {
	img := &Image{
		TextBase:  DefaultTextBase,
		DataBase:  DefaultDataBase,
		StackTop:  DefaultStackTop,
		ProcAddrs: make(map[string]uint64),
		dataAddrs: make(map[string]uint64),
		labels:    make(map[uint64]string),
	}

	entry := pr.Entry
	if entry == "" {
		entry = "main"
	}
	if pr.byName[entry] == nil {
		return nil, fmt.Errorf("prog: entry procedure %q not defined", entry)
	}

	// Data layout.
	addr := img.DataBase
	for _, d := range pr.Data {
		align := uint64(d.Align)
		if align == 0 {
			align = 8
		}
		addr = (addr + align - 1) &^ (align - 1)
		if _, dup := img.dataAddrs[d.Name]; dup {
			return nil, fmt.Errorf("prog: duplicate data symbol %q", d.Name)
		}
		img.dataAddrs[d.Name] = addr
		size := uint64(d.Size)
		if size < uint64(len(d.Init)) {
			size = uint64(len(d.Init))
		}
		if size == 0 {
			size = 8
		}
		addr += (size + 7) &^ 7
	}
	img.DataEnd = addr

	// Trampoline: jal entry; halt.
	type placed struct {
		proc *Proc
		addr uint64
	}
	var order []placed
	pc := img.TextBase
	img.EntryPC = pc
	tramp := []Inst{
		{Inst: isa.Inst{Op: isa.JAL, Rd: isa.RA}, Kind: TargetJump, Target: entry},
		{Inst: isa.Inst{Op: isa.HALT}},
	}
	img.HaltPC = pc + isa.InstBytes
	pc += uint64(len(tramp)) * isa.InstBytes

	for _, p := range pr.Procs {
		img.ProcAddrs[p.Name] = pc
		img.labels[pc] = p.Name
		order = append(order, placed{p, pc})
		img.ranges = append(img.ranges, ProcRange{Name: p.Name, Start: pc, End: pc + uint64(len(p.Insts))*isa.InstBytes})
		pc += uint64(len(p.Insts)) * isa.InstBytes
	}

	resolve := func(in Inst, pcHere uint64, p *Proc, procBase uint64) (isa.Inst, error) {
		m := in.Inst
		switch in.Kind {
		case TargetNone:
			return m, nil
		case TargetBranch:
			li, ok := p.LabelAt(in.Target)
			if !ok {
				return m, fmt.Errorf("prog: %s: unknown label %q", p.Name, in.Target)
			}
			targetPC := procBase + uint64(li)*isa.InstBytes
			delta := (int64(targetPC) - int64(pcHere+isa.InstBytes)) / isa.InstBytes
			if delta < -(1<<15) || delta >= 1<<15 {
				return m, fmt.Errorf("prog: %s: branch to %q out of range (%d words)", p.Name, in.Target, delta)
			}
			m.Imm = delta
			return m, nil
		case TargetJump:
			var targetPC uint64
			if a, ok := img.ProcAddrs[in.Target]; ok {
				targetPC = a
			} else if li, ok := p.LabelAt(in.Target); ok {
				targetPC = procBase + uint64(li)*isa.InstBytes
			} else {
				return m, fmt.Errorf("prog: %s: unknown jump target %q", p.Name, in.Target)
			}
			if targetPC >= 1<<28 {
				return m, fmt.Errorf("prog: jump target %q at %#x exceeds 28-bit range", in.Target, targetPC)
			}
			m.Imm = int64(targetPC)
			return m, nil
		case TargetDataHi, TargetDataLo:
			a, ok := img.dataAddrs[in.Target]
			if !ok {
				// Procedure addresses resolve too (function pointers for
				// indirect calls).
				a, ok = img.ProcAddrs[in.Target]
			}
			if !ok {
				return m, fmt.Errorf("prog: %s: unknown data symbol %q", p.Name, in.Target)
			}
			if a >= 1<<32 {
				return m, fmt.Errorf("prog: data symbol %q beyond 32-bit range", in.Target)
			}
			if in.Kind == TargetDataHi {
				m.Imm = int64(a >> 16)
			} else {
				m.Imm = int64(a & 0xFFFF)
			}
			return m, nil
		}
		return m, fmt.Errorf("prog: unknown target kind %d", in.Kind)
	}

	// Emit.
	for _, ti := range tramp {
		m, err := resolve(ti, img.TextBase+uint64(len(img.Insts))*isa.InstBytes, &Proc{labels: map[string]int{}}, 0)
		if err != nil {
			return nil, err
		}
		img.Insts = append(img.Insts, m)
		img.Code = append(img.Code, isa.Encode(m))
	}
	for _, pl := range order {
		for i, in := range pl.proc.Insts {
			here := pl.addr + uint64(i)*isa.InstBytes
			m, err := resolve(in, here, pl.proc, pl.addr)
			if err != nil {
				return nil, err
			}
			img.Insts = append(img.Insts, m)
			img.Code = append(img.Code, isa.Encode(m))
		}
		for name, li := range pl.proc.labels {
			img.labels[pl.addr+uint64(li)*isa.InstBytes] = pl.proc.Name + "." + name
		}
	}
	img.Metas = make([]Meta, len(img.Insts))
	for i, in := range img.Insts {
		img.Metas[i] = metaFor(img.TextBase+uint64(i)*isa.InstBytes, in)
	}
	return img, nil
}

// At returns the decoded instruction at pc. Fetches outside the text
// segment return HALT so runaway control flow terminates deterministically.
func (img *Image) At(pc uint64) isa.Inst {
	in, _, _ := img.AtMeta(pc)
	return in
}

// AtMeta returns the decoded instruction at pc together with its
// predecoded metadata. ok is false for a fetch outside the text segment
// (misaligned or out of range): the instruction is then a synthetic HALT —
// runaway control flow terminates deterministically — and callers that
// care distinguish a fault from the program's real HALT by ok.
func (img *Image) AtMeta(pc uint64) (in isa.Inst, meta *Meta, ok bool) {
	if pc < img.TextBase || pc&3 != 0 {
		return isa.Inst{Op: isa.HALT}, &haltMeta, false
	}
	idx := (pc - img.TextBase) / isa.InstBytes
	if idx >= uint64(len(img.Metas)) {
		return isa.Inst{Op: isa.HALT}, &haltMeta, false
	}
	return img.Insts[idx], &img.Metas[idx], true
}

// InText reports whether pc addresses a linked instruction.
func (img *Image) InText(pc uint64) bool {
	return pc >= img.TextBase && pc&3 == 0 &&
		(pc-img.TextBase)/isa.InstBytes < uint64(len(img.Insts))
}

// TextWords returns the static code size in instruction words (paper
// Figure 13 reports static code size overhead).
func (img *Image) TextWords() int { return len(img.Code) }

// DataAddr returns the linked address of a data symbol.
func (img *Image) DataAddr(name string) (uint64, bool) {
	a, ok := img.dataAddrs[name]
	return a, ok
}

// ProcOf returns the procedure containing pc.
func (img *Image) ProcOf(pc uint64) (string, bool) {
	i := sort.Search(len(img.ranges), func(i int) bool { return img.ranges[i].End > pc })
	if i < len(img.ranges) && pc >= img.ranges[i].Start {
		return img.ranges[i].Name, true
	}
	return "", false
}

// LoadInto materializes the image into memory: text at TextBase (encoded
// words) and initialized data at their symbols.
func (img *Image) LoadInto(m *mem.Memory, data []DataSym) {
	for i, w := range img.Code {
		m.Write32(img.TextBase+uint64(i)*isa.InstBytes, w)
	}
	for _, d := range data {
		if a, ok := img.dataAddrs[d.Name]; ok && len(d.Init) > 0 {
			m.StoreBytes(a, d.Init)
		}
	}
}

// NewMemory allocates a memory pre-loaded with this image and the given
// program's initialized data.
func NewMemory(pr *Program, img *Image) *mem.Memory {
	m := mem.New()
	img.LoadInto(m, pr.Data)
	return m
}
