package prog

import (
	"encoding/hex"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"dvi/internal/isa"
)

// This file defines the textual assembly format for symbolic programs: the
// wire format of the annotation service (internal/service) and the
// human-facing output of cmd/dviasm. FormatAsm and ParseAsm are exact
// inverses over programs the toolchain produces: FormatAsm(ParseAsm(text))
// is a fixed point, and parsing a rendered program yields a Program whose
// linked image is identical to the original's.
//
// Grammar (one item per line, '#' starts a comment):
//
//	.entry NAME                      entry procedure (default main)
//	.data NAME size=N [align=N] [init=HEX]
//	.proc NAME                       begins a procedure; extends to the next .proc
//	LABEL:                           local label (may share a line with an instruction)
//	  OP OPERANDS                    one instruction, isa.Inst syntax
//
// Instruction operands follow the disassembler's rendering, with symbolic
// targets kept symbolic:
//
//	add rd, rs1, rs2                 R-type
//	addi rd, rs1, imm                I-type immediate
//	lui rd, imm | lui rd, %hi(sym)   %hi keeps a data-symbol high half symbolic
//	ori rd, rs1, %lo(sym)            %lo keeps the low half symbolic
//	ld rd, off(base)                 loads (ld, lb, lvld, lvml)
//	st rs, off(base)                 stores (st, sb, lvst, lvms)
//	beq rs1, rs2, label              branches take a label or a word offset
//	j label | jal label              jumps take a label, procedure, or address
//	jr rs | ret | jalr rd, rs        indirect control
//	kill {s0,s2}                     E-DVI kill mask
//	sys rs1, rs2                     checksum channel
//	nop | halt

// FormatAsm renders a symbolic program in the textual assembly format.
// The output parses back with ParseAsm and is itself a fixed point:
// FormatAsm(ParseAsm(FormatAsm(pr))) == FormatAsm(pr).
func FormatAsm(pr *Program) string {
	var b strings.Builder
	entry := pr.Entry
	if entry == "" {
		entry = "main"
	}
	fmt.Fprintf(&b, ".entry %s\n", entry)
	if len(pr.Data) > 0 {
		b.WriteByte('\n')
	}
	for _, d := range pr.Data {
		fmt.Fprintf(&b, ".data %s size=%d", d.Name, d.Size)
		if d.Align != 0 {
			fmt.Fprintf(&b, " align=%d", d.Align)
		}
		if len(d.Init) > 0 {
			fmt.Fprintf(&b, " init=%s", hex.EncodeToString(d.Init))
		}
		b.WriteByte('\n')
	}
	for _, p := range pr.Procs {
		fmt.Fprintf(&b, "\n.proc %s\n", p.Name)
		byIdx := make(map[int][]string)
		for name, i := range p.labels {
			byIdx[i] = append(byIdx[i], name)
		}
		for _, names := range byIdx {
			sort.Strings(names)
		}
		for i, in := range p.Insts {
			for _, l := range byIdx[i] {
				fmt.Fprintf(&b, "%s:\n", l)
			}
			fmt.Fprintf(&b, "  %s\n", formatInst(in))
		}
		for _, l := range byIdx[len(p.Insts)] {
			fmt.Fprintf(&b, "%s:\n", l)
		}
	}
	return b.String()
}

// formatInst renders one symbolic instruction, keeping unresolved targets
// symbolic where isa.Inst.String would print placeholder immediates.
func formatInst(in Inst) string {
	switch in.Kind {
	case TargetBranch:
		return fmt.Sprintf("%s %s, %s, %s", in.Op, in.Rs1, in.Rs2, in.Target)
	case TargetJump:
		return fmt.Sprintf("%s %s", in.Op, in.Target)
	case TargetDataHi:
		if in.Op == isa.LUI {
			return fmt.Sprintf("lui %s, %%hi(%s)", in.Rd, in.Target)
		}
		return fmt.Sprintf("%s %s, %s, %%hi(%s)", in.Op, in.Rd, in.Rs1, in.Target)
	case TargetDataLo:
		return fmt.Sprintf("%s %s, %s, %%lo(%s)", in.Op, in.Rd, in.Rs1, in.Target)
	}
	return in.Inst.String()
}

// --- parsing ---

// ParseAsm parses the textual assembly format into a symbolic Program.
// The result is ready to rewrite (rewrite.InsertKills) and link.
func ParseAsm(src string) (*Program, error) {
	pr := New()
	var cur *Proc
	for no, raw := range strings.Split(src, "\n") {
		line := raw
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		lineNo := no + 1
		// Dot-leading lines are directives; the leading token must match
		// one exactly so typos fail loudly instead of parsing as labels.
		f := strings.Fields(line)
		switch f[0] {
		case ".entry":
			if len(f) != 2 {
				return nil, asmErr(lineNo, ".entry wants one procedure name")
			}
			pr.Entry = f[1]
		case ".data":
			d, err := parseData(line)
			if err != nil {
				return nil, asmErr(lineNo, "%v", err)
			}
			pr.AddData(d)
		case ".proc":
			if len(f) != 2 {
				return nil, asmErr(lineNo, ".proc wants one name")
			}
			if pr.Proc(f[1]) != nil {
				return nil, asmErr(lineNo, "duplicate procedure %q", f[1])
			}
			cur = pr.AddProc(f[1])
		default:
			if strings.HasPrefix(line, ".") {
				return nil, asmErr(lineNo, "unknown directive %s (have .entry, .data, .proc)", f[0])
			}
			if cur == nil {
				return nil, asmErr(lineNo, "instruction or label before any .proc")
			}
			// Leading labels, possibly sharing the line with an instruction.
			for {
				i := strings.IndexByte(line, ':')
				if i < 0 || strings.ContainsAny(line[:i], " \t,(){}") {
					break
				}
				name := line[:i]
				if _, dup := cur.labels[name]; dup {
					return nil, asmErr(lineNo, "duplicate label %q in %s", name, cur.Name)
				}
				cur.labels[name] = len(cur.Insts)
				line = strings.TrimSpace(line[i+1:])
				if line == "" {
					break
				}
			}
			if line == "" {
				continue
			}
			in, err := parseInst(line)
			if err != nil {
				return nil, asmErr(lineNo, "%v", err)
			}
			cur.Insts = append(cur.Insts, in)
		}
	}
	return pr, nil
}

func asmErr(line int, format string, args ...any) error {
	return fmt.Errorf("asm line %d: %s", line, fmt.Sprintf(format, args...))
}

// parseData parses ".data NAME size=N [align=N] [init=HEX]".
func parseData(line string) (DataSym, error) {
	f := strings.Fields(line)
	if len(f) < 3 {
		return DataSym{}, fmt.Errorf(".data wants NAME size=N [align=N] [init=HEX]")
	}
	d := DataSym{Name: f[1]}
	for _, kv := range f[2:] {
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return DataSym{}, fmt.Errorf(".data: bad field %q", kv)
		}
		switch k {
		case "size":
			n, err := strconv.Atoi(v)
			if err != nil || n < 0 {
				return DataSym{}, fmt.Errorf(".data: bad size %q", v)
			}
			d.Size = n
		case "align":
			n, err := strconv.Atoi(v)
			if err != nil || n < 0 {
				return DataSym{}, fmt.Errorf(".data: bad align %q", v)
			}
			d.Align = n
		case "init":
			b, err := hex.DecodeString(v)
			if err != nil {
				return DataSym{}, fmt.Errorf(".data: bad init hex: %v", err)
			}
			d.Init = b
		default:
			return DataSym{}, fmt.Errorf(".data: unknown field %q", k)
		}
	}
	return d, nil
}

// opsByName maps mnemonics to opcodes. Built lazily from the ISA's own
// String method so the table can never drift from the opcode space.
var opsByName = func() map[string]isa.Op {
	m := make(map[string]isa.Op)
	for o := isa.Op(0); o.Valid(); o++ {
		m[o.String()] = o
	}
	return m
}()

// regsByName maps ABI register names (and rN aliases) to registers.
var regsByName = func() map[string]isa.Reg {
	m := make(map[string]isa.Reg, 2*isa.NumRegs)
	for r := isa.Reg(0); r < isa.NumRegs; r++ {
		m[r.String()] = r
		m[fmt.Sprintf("r%d", r)] = r
	}
	return m
}()

func parseReg(tok string) (isa.Reg, error) {
	if r, ok := regsByName[tok]; ok {
		return r, nil
	}
	return 0, fmt.Errorf("unknown register %q", tok)
}

func parseImm(tok string) (int64, error) {
	v, err := strconv.ParseInt(tok, 0, 64)
	if err != nil {
		// FmtJ addresses render as 0x-prefixed uint64; cover the full range.
		if u, uerr := strconv.ParseUint(tok, 0, 64); uerr == nil {
			return int64(u), nil
		}
		return 0, fmt.Errorf("bad immediate %q", tok)
	}
	return v, nil
}

// parseMem parses "off(base)".
func parseMem(tok string) (off int64, base isa.Reg, err error) {
	i := strings.IndexByte(tok, '(')
	j := strings.LastIndexByte(tok, ')')
	if i < 0 || j < i {
		return 0, 0, fmt.Errorf("bad memory operand %q (want off(base))", tok)
	}
	if off, err = parseImm(tok[:i]); err != nil {
		return 0, 0, fmt.Errorf("bad memory offset in %q", tok)
	}
	base, err = parseReg(tok[i+1 : j])
	return off, base, err
}

// parseMask parses "{s0,s2,...}" into a register mask.
func parseMask(tok string) (isa.RegMask, error) {
	if !strings.HasPrefix(tok, "{") || !strings.HasSuffix(tok, "}") {
		return 0, fmt.Errorf("bad kill mask %q (want {r,...})", tok)
	}
	var m isa.RegMask
	inner := strings.TrimSuffix(strings.TrimPrefix(tok, "{"), "}")
	if inner == "" {
		return 0, nil
	}
	for _, name := range strings.Split(inner, ",") {
		r, err := parseReg(strings.TrimSpace(name))
		if err != nil {
			return 0, err
		}
		m = m.Set(r)
	}
	return m, nil
}

// symRef decomposes "%hi(sym)" / "%lo(sym)" operands.
func symRef(tok string) (kind TargetKind, sym string, ok bool) {
	var rest string
	switch {
	case strings.HasPrefix(tok, "%hi("):
		kind, rest = TargetDataHi, tok[4:]
	case strings.HasPrefix(tok, "%lo("):
		kind, rest = TargetDataLo, tok[4:]
	default:
		return TargetNone, "", false
	}
	if !strings.HasSuffix(rest, ")") {
		return TargetNone, "", false
	}
	return kind, strings.TrimSuffix(rest, ")"), true
}

// parseInst parses one instruction line (mnemonic already included).
func parseInst(line string) (Inst, error) {
	mn, rest, _ := strings.Cut(line, " ")
	mn = strings.TrimSpace(mn)
	rest = strings.TrimSpace(rest)

	if mn == "ret" {
		if rest != "" {
			return Inst{}, fmt.Errorf("ret takes no operands")
		}
		return Inst{Inst: isa.Inst{Op: isa.JR, Rs1: isa.RA, IsReturn: true}}, nil
	}
	op, ok := opsByName[mn]
	if !ok {
		return Inst{}, fmt.Errorf("unknown mnemonic %q", mn)
	}

	if op == isa.KILL {
		m, err := parseMask(rest)
		if err != nil {
			return Inst{}, err
		}
		return Inst{Inst: isa.Inst{Op: isa.KILL, Mask: m}}, nil
	}

	var ops []string
	if rest != "" {
		for _, o := range strings.Split(rest, ",") {
			ops = append(ops, strings.TrimSpace(o))
		}
	}
	want := func(n int) error {
		if len(ops) != n {
			return fmt.Errorf("%s wants %d operands, got %d", mn, n, len(ops))
		}
		return nil
	}

	in := isa.Inst{Op: op}
	switch op {
	case isa.NOP, isa.HALT:
		if err := want(0); err != nil {
			return Inst{}, err
		}
		return Inst{Inst: in}, nil

	case isa.SYS:
		if err := want(2); err != nil {
			return Inst{}, err
		}
		var err error
		if in.Rs1, err = parseReg(ops[0]); err != nil {
			return Inst{}, err
		}
		if in.Rs2, err = parseReg(ops[1]); err != nil {
			return Inst{}, err
		}
		return Inst{Inst: in}, nil

	case isa.J, isa.JAL:
		if err := want(1); err != nil {
			return Inst{}, err
		}
		if op == isa.JAL {
			in.Rd = isa.RA
		}
		if v, err := parseImm(ops[0]); err == nil {
			in.Imm = v
			return Inst{Inst: in}, nil
		}
		return Inst{Inst: in, Kind: TargetJump, Target: ops[0]}, nil

	case isa.JR:
		if err := want(1); err != nil {
			return Inst{}, err
		}
		r, err := parseReg(ops[0])
		if err != nil {
			return Inst{}, err
		}
		in.Rs1 = r
		return Inst{Inst: in}, nil

	case isa.JALR:
		if err := want(2); err != nil {
			return Inst{}, err
		}
		var err error
		if in.Rd, err = parseReg(ops[0]); err != nil {
			return Inst{}, err
		}
		if in.Rs1, err = parseReg(ops[1]); err != nil {
			return Inst{}, err
		}
		return Inst{Inst: in}, nil

	case isa.LUI:
		if err := want(2); err != nil {
			return Inst{}, err
		}
		var err error
		if in.Rd, err = parseReg(ops[0]); err != nil {
			return Inst{}, err
		}
		if kind, sym, ok := symRef(ops[1]); ok {
			return Inst{Inst: in, Kind: kind, Target: sym}, nil
		}
		if in.Imm, err = parseImm(ops[1]); err != nil {
			return Inst{}, err
		}
		return Inst{Inst: in}, nil
	}

	switch {
	case op.IsLoad():
		if err := want(2); err != nil {
			return Inst{}, err
		}
		r, err := parseReg(ops[0])
		if err != nil {
			return Inst{}, err
		}
		in.Rd = r
		if in.Imm, in.Rs1, err = parseMem(ops[1]); err != nil {
			return Inst{}, err
		}
		return Inst{Inst: in}, nil

	case op.IsStore():
		if err := want(2); err != nil {
			return Inst{}, err
		}
		r, err := parseReg(ops[0])
		if err != nil {
			return Inst{}, err
		}
		in.Rs2 = r
		if in.Imm, in.Rs1, err = parseMem(ops[1]); err != nil {
			return Inst{}, err
		}
		return Inst{Inst: in}, nil

	case isa.OpClass(op) == isa.ClassBranch:
		if err := want(3); err != nil {
			return Inst{}, err
		}
		var err error
		if in.Rs1, err = parseReg(ops[0]); err != nil {
			return Inst{}, err
		}
		if in.Rs2, err = parseReg(ops[1]); err != nil {
			return Inst{}, err
		}
		if v, ierr := parseImm(ops[2]); ierr == nil {
			in.Imm = v
			return Inst{Inst: in}, nil
		}
		return Inst{Inst: in, Kind: TargetBranch, Target: ops[2]}, nil

	case isa.OpFormat(op) == isa.FmtR:
		if err := want(3); err != nil {
			return Inst{}, err
		}
		var err error
		if in.Rd, err = parseReg(ops[0]); err != nil {
			return Inst{}, err
		}
		if in.Rs1, err = parseReg(ops[1]); err != nil {
			return Inst{}, err
		}
		if in.Rs2, err = parseReg(ops[2]); err != nil {
			return Inst{}, err
		}
		return Inst{Inst: in}, nil

	default: // I-type arithmetic
		if err := want(3); err != nil {
			return Inst{}, err
		}
		var err error
		if in.Rd, err = parseReg(ops[0]); err != nil {
			return Inst{}, err
		}
		if in.Rs1, err = parseReg(ops[1]); err != nil {
			return Inst{}, err
		}
		if kind, sym, ok := symRef(ops[2]); ok {
			return Inst{Inst: in, Kind: kind, Target: sym}, nil
		}
		if in.Imm, err = parseImm(ops[2]); err != nil {
			return Inst{}, err
		}
		return Inst{Inst: in}, nil
	}
}
