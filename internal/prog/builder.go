package prog

import (
	"fmt"

	"dvi/internal/isa"
)

// Asm is a fluent assembler over one procedure. Obtain one with Assembler.
// All methods return the receiver so instruction sequences chain.
type Asm struct {
	p *Proc
}

// Assembler returns a fluent assembler for a new procedure named name.
func (pr *Program) Assembler(name string) *Asm {
	return &Asm{p: pr.AddProc(name)}
}

// AsmFor wraps an existing procedure.
func AsmFor(p *Proc) *Asm { return &Asm{p: p} }

// Proc returns the underlying procedure.
func (a *Asm) Proc() *Proc { return a.p }

// Label defines a local label at the current position.
func (a *Asm) Label(name string) *Asm {
	if _, dup := a.p.labels[name]; dup {
		panic(fmt.Sprintf("prog: duplicate label %q in %s", name, a.p.Name))
	}
	a.p.labels[name] = len(a.p.Insts)
	return a
}

func (a *Asm) raw(in Inst) *Asm {
	a.p.Insts = append(a.p.Insts, in)
	return a
}

// Inst appends an already-formed machine instruction.
func (a *Asm) Inst(in isa.Inst) *Asm { return a.raw(Inst{Inst: in}) }

// --- register arithmetic ---

func (a *Asm) op3(op isa.Op, rd, rs1, rs2 isa.Reg) *Asm {
	return a.Inst(isa.Inst{Op: op, Rd: rd, Rs1: rs1, Rs2: rs2})
}

func (a *Asm) Add(rd, rs1, rs2 isa.Reg) *Asm  { return a.op3(isa.ADD, rd, rs1, rs2) }
func (a *Asm) Sub(rd, rs1, rs2 isa.Reg) *Asm  { return a.op3(isa.SUB, rd, rs1, rs2) }
func (a *Asm) Mul(rd, rs1, rs2 isa.Reg) *Asm  { return a.op3(isa.MUL, rd, rs1, rs2) }
func (a *Asm) Div(rd, rs1, rs2 isa.Reg) *Asm  { return a.op3(isa.DIV, rd, rs1, rs2) }
func (a *Asm) Rem(rd, rs1, rs2 isa.Reg) *Asm  { return a.op3(isa.REM, rd, rs1, rs2) }
func (a *Asm) And(rd, rs1, rs2 isa.Reg) *Asm  { return a.op3(isa.AND, rd, rs1, rs2) }
func (a *Asm) Or(rd, rs1, rs2 isa.Reg) *Asm   { return a.op3(isa.OR, rd, rs1, rs2) }
func (a *Asm) Xor(rd, rs1, rs2 isa.Reg) *Asm  { return a.op3(isa.XOR, rd, rs1, rs2) }
func (a *Asm) Nor(rd, rs1, rs2 isa.Reg) *Asm  { return a.op3(isa.NOR, rd, rs1, rs2) }
func (a *Asm) Sll(rd, rs1, rs2 isa.Reg) *Asm  { return a.op3(isa.SLL, rd, rs1, rs2) }
func (a *Asm) Srl(rd, rs1, rs2 isa.Reg) *Asm  { return a.op3(isa.SRL, rd, rs1, rs2) }
func (a *Asm) Sra(rd, rs1, rs2 isa.Reg) *Asm  { return a.op3(isa.SRA, rd, rs1, rs2) }
func (a *Asm) Slt(rd, rs1, rs2 isa.Reg) *Asm  { return a.op3(isa.SLT, rd, rs1, rs2) }
func (a *Asm) Sltu(rd, rs1, rs2 isa.Reg) *Asm { return a.op3(isa.SLTU, rd, rs1, rs2) }

// --- immediates ---

func (a *Asm) opi(op isa.Op, rd, rs1 isa.Reg, imm int64) *Asm {
	return a.Inst(isa.Inst{Op: op, Rd: rd, Rs1: rs1, Imm: imm})
}

func (a *Asm) Addi(rd, rs1 isa.Reg, imm int64) *Asm { return a.opi(isa.ADDI, rd, rs1, imm) }
func (a *Asm) Andi(rd, rs1 isa.Reg, imm int64) *Asm { return a.opi(isa.ANDI, rd, rs1, imm) }
func (a *Asm) Ori(rd, rs1 isa.Reg, imm int64) *Asm  { return a.opi(isa.ORI, rd, rs1, imm) }
func (a *Asm) Xori(rd, rs1 isa.Reg, imm int64) *Asm { return a.opi(isa.XORI, rd, rs1, imm) }
func (a *Asm) Slti(rd, rs1 isa.Reg, imm int64) *Asm { return a.opi(isa.SLTI, rd, rs1, imm) }
func (a *Asm) Slli(rd, rs1 isa.Reg, sh int64) *Asm  { return a.opi(isa.SLLI, rd, rs1, sh) }
func (a *Asm) Srli(rd, rs1 isa.Reg, sh int64) *Asm  { return a.opi(isa.SRLI, rd, rs1, sh) }
func (a *Asm) Srai(rd, rs1 isa.Reg, sh int64) *Asm  { return a.opi(isa.SRAI, rd, rs1, sh) }
func (a *Asm) Lui(rd isa.Reg, imm int64) *Asm       { return a.opi(isa.LUI, rd, isa.Zero, imm) }

// Li loads a small (16-bit signed) constant.
func (a *Asm) Li(rd isa.Reg, imm int64) *Asm { return a.Addi(rd, isa.Zero, imm) }

// Li32 loads an arbitrary 32-bit constant with LUI+ORI.
func (a *Asm) Li32(rd isa.Reg, v uint32) *Asm {
	return a.Lui(rd, int64(v>>16)).Ori(rd, rd, int64(v&0xFFFF))
}

// Move copies rs into rd.
func (a *Asm) Move(rd, rs isa.Reg) *Asm { return a.Add(rd, rs, isa.Zero) }

// Nop appends a no-op.
func (a *Asm) Nop() *Asm { return a.Inst(isa.Inst{Op: isa.NOP}) }

// Halt appends a halt.
func (a *Asm) Halt() *Asm { return a.Inst(isa.Inst{Op: isa.HALT}) }

// Sys emits the checksum/output channel instruction.
func (a *Asm) Sys(ch, val isa.Reg) *Asm {
	return a.Inst(isa.Inst{Op: isa.SYS, Rs1: ch, Rs2: val})
}

// --- memory ---

func (a *Asm) Ld(rd, base isa.Reg, off int64) *Asm {
	return a.Inst(isa.Inst{Op: isa.LD, Rd: rd, Rs1: base, Imm: off})
}
func (a *Asm) St(rs, base isa.Reg, off int64) *Asm {
	return a.Inst(isa.Inst{Op: isa.ST, Rs2: rs, Rs1: base, Imm: off})
}
func (a *Asm) Lb(rd, base isa.Reg, off int64) *Asm {
	return a.Inst(isa.Inst{Op: isa.LB, Rd: rd, Rs1: base, Imm: off})
}
func (a *Asm) Sb(rs, base isa.Reg, off int64) *Asm {
	return a.Inst(isa.Inst{Op: isa.SB, Rs2: rs, Rs1: base, Imm: off})
}

// LiveLd emits a live-load (restore of a callee-saved register, paper §5.1).
func (a *Asm) LiveLd(rd, base isa.Reg, off int64) *Asm {
	return a.Inst(isa.Inst{Op: isa.LVLD, Rd: rd, Rs1: base, Imm: off})
}

// LiveSt emits a live-store (save of a callee-saved register).
func (a *Asm) LiveSt(rs, base isa.Reg, off int64) *Asm {
	return a.Inst(isa.Inst{Op: isa.LVST, Rs2: rs, Rs1: base, Imm: off})
}

// LvmSave stores the hardware LVM at base+off (paper §6.1).
func (a *Asm) LvmSave(base isa.Reg, off int64) *Asm {
	return a.Inst(isa.Inst{Op: isa.LVMS, Rs1: base, Imm: off})
}

// LvmLoad restores the hardware LVM from base+off.
func (a *Asm) LvmLoad(base isa.Reg, off int64) *Asm {
	return a.Inst(isa.Inst{Op: isa.LVML, Rs1: base, Imm: off})
}

// LoadAddr materializes the address of data symbol name into rd (LUI+ORI).
func (a *Asm) LoadAddr(rd isa.Reg, name string) *Asm {
	a.raw(Inst{Inst: isa.Inst{Op: isa.LUI, Rd: rd}, Kind: TargetDataHi, Target: name})
	a.raw(Inst{Inst: isa.Inst{Op: isa.ORI, Rd: rd, Rs1: rd}, Kind: TargetDataLo, Target: name})
	return a
}

// --- control flow ---

func (a *Asm) branch(op isa.Op, rs1, rs2 isa.Reg, label string) *Asm {
	return a.raw(Inst{Inst: isa.Inst{Op: op, Rs1: rs1, Rs2: rs2}, Kind: TargetBranch, Target: label})
}

func (a *Asm) Beq(rs1, rs2 isa.Reg, label string) *Asm  { return a.branch(isa.BEQ, rs1, rs2, label) }
func (a *Asm) Bne(rs1, rs2 isa.Reg, label string) *Asm  { return a.branch(isa.BNE, rs1, rs2, label) }
func (a *Asm) Blt(rs1, rs2 isa.Reg, label string) *Asm  { return a.branch(isa.BLT, rs1, rs2, label) }
func (a *Asm) Bge(rs1, rs2 isa.Reg, label string) *Asm  { return a.branch(isa.BGE, rs1, rs2, label) }
func (a *Asm) Bltu(rs1, rs2 isa.Reg, label string) *Asm { return a.branch(isa.BLTU, rs1, rs2, label) }
func (a *Asm) Bgeu(rs1, rs2 isa.Reg, label string) *Asm { return a.branch(isa.BGEU, rs1, rs2, label) }

// Beqz branches if rs is zero.
func (a *Asm) Beqz(rs isa.Reg, label string) *Asm { return a.Beq(rs, isa.Zero, label) }

// Bnez branches if rs is non-zero.
func (a *Asm) Bnez(rs isa.Reg, label string) *Asm { return a.Bne(rs, isa.Zero, label) }

// Jump jumps to a local label or procedure.
func (a *Asm) Jump(target string) *Asm {
	return a.raw(Inst{Inst: isa.Inst{Op: isa.J}, Kind: TargetJump, Target: target})
}

// Call emits jal to the named procedure.
func (a *Asm) Call(procName string) *Asm {
	return a.raw(Inst{Inst: isa.Inst{Op: isa.JAL, Rd: isa.RA}, Kind: TargetJump, Target: procName})
}

// CallReg emits an indirect call through rs (jalr).
func (a *Asm) CallReg(rs isa.Reg) *Asm {
	return a.Inst(isa.Inst{Op: isa.JALR, Rd: isa.RA, Rs1: rs})
}

// Ret emits the return idiom jr ra.
func (a *Asm) Ret() *Asm {
	return a.Inst(isa.Inst{Op: isa.JR, Rs1: isa.RA, IsReturn: true})
}

// Kill emits an E-DVI kill of the given registers (paper §2). Registers
// outside the killable set panic: generating them is a toolchain bug.
func (a *Asm) Kill(regs ...isa.Reg) *Asm {
	m := isa.MaskOf(regs...)
	return a.KillMask(m)
}

// KillMask emits an E-DVI kill with an explicit mask.
func (a *Asm) KillMask(m isa.RegMask) *Asm {
	if m&^isa.Killable != 0 {
		panic(fmt.Sprintf("prog: kill of non-killable registers %s", m&^isa.Killable))
	}
	return a.Inst(isa.Inst{Op: isa.KILL, Mask: m})
}

// --- procedure frame helpers ---

// Frame emits a standard prologue: allocate size bytes of stack and save
// the given callee-saved registers (and ra if saveRA) with live-stores at
// ascending offsets. It returns the matching epilogue emitter.
//
// The layout is: [sp+0 .. ] saved registers, then ra, locals above.
func (a *Asm) Frame(size int64, saveRA bool, saved ...isa.Reg) func() {
	total := size + int64(len(saved))*8
	if saveRA {
		total += 8
	}
	// Keep the stack 16-byte aligned.
	total = (total + 15) &^ 15
	a.Addi(isa.SP, isa.SP, -total)
	off := size
	for _, r := range saved {
		a.LiveSt(r, isa.SP, off)
		off += 8
	}
	if saveRA {
		a.St(isa.RA, isa.SP, off)
	}
	return func() {
		off := size
		for _, r := range saved {
			a.LiveLd(r, isa.SP, off)
			off += 8
		}
		if saveRA {
			a.Ld(isa.RA, isa.SP, off)
		}
		a.Addi(isa.SP, isa.SP, total)
		a.Ret()
	}
}
