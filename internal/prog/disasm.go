package prog

import (
	"fmt"
	"strings"

	"dvi/internal/isa"
)

// Disasm renders a full listing of the linked image with addresses, labels,
// and decoded instructions, one instruction per line.
func (img *Image) Disasm() string {
	var b strings.Builder
	for i, in := range img.Insts {
		pc := img.TextBase + uint64(i)*isa.InstBytes
		if lbl, ok := img.labels[pc]; ok {
			fmt.Fprintf(&b, "%s:\n", lbl)
		}
		fmt.Fprintf(&b, "  %06x:  %08x  %s", pc, img.Code[i], img.annotate(pc, in))
		b.WriteByte('\n')
	}
	return b.String()
}

// DisasmProc renders the listing of a single procedure.
func (img *Image) DisasmProc(name string) string {
	var b strings.Builder
	for _, r := range img.ranges {
		if r.Name != name {
			continue
		}
		fmt.Fprintf(&b, "%s:\n", name)
		for pc := r.Start; pc < r.End; pc += isa.InstBytes {
			if lbl, ok := img.labels[pc]; ok && lbl != name {
				fmt.Fprintf(&b, "%s:\n", lbl)
			}
			i := (pc - img.TextBase) / isa.InstBytes
			fmt.Fprintf(&b, "  %06x:  %s\n", pc, img.annotate(pc, img.Insts[i]))
		}
	}
	return b.String()
}

// annotate renders in, replacing raw branch/jump targets with labels when
// known.
func (img *Image) annotate(pc uint64, in isa.Inst) string {
	s := in.String()
	if t, ok := isa.BranchTarget(pc, in); ok {
		if lbl, ok := img.labels[t]; ok {
			switch isa.OpClass(in.Op) {
			case isa.ClassBranch:
				// Replace the trailing numeric offset.
				if idx := strings.LastIndexByte(s, ','); idx >= 0 {
					s = s[:idx+1] + " " + lbl
				}
			case isa.ClassJump:
				s = fmt.Sprintf("%s %s", in.Op, lbl)
			}
		} else {
			s += fmt.Sprintf("    # -> %#x", t)
		}
	}
	return s
}
