package prog

import (
	"strings"
	"testing"

	"dvi/internal/isa"
)

// buildCountdown builds a program whose main calls a leaf in a loop.
func buildCountdown(t *testing.T) (*Program, *Image) {
	t.Helper()
	pr := New()

	leaf := pr.Assembler("leaf")
	leaf.Add(isa.V0, isa.A0, isa.A0).Ret()

	m := pr.Assembler("main")
	m.Li(isa.S0, 10)
	m.Label("loop")
	m.Move(isa.A0, isa.S0)
	m.Call("leaf")
	m.Addi(isa.S0, isa.S0, -1)
	m.Bnez(isa.S0, "loop")
	m.Ret()

	img, err := pr.Link()
	if err != nil {
		t.Fatalf("link: %v", err)
	}
	return pr, img
}

func TestLinkBasics(t *testing.T) {
	pr, img := buildCountdown(t)
	if img.EntryPC != img.TextBase {
		t.Errorf("entry %#x != text base %#x", img.EntryPC, img.TextBase)
	}
	// Trampoline: jal main; halt.
	in0 := img.At(img.EntryPC)
	if in0.Op != isa.JAL {
		t.Fatalf("entry inst = %v", in0)
	}
	if uint64(in0.Imm) != img.ProcAddrs["main"] {
		t.Errorf("trampoline target %#x, want main at %#x", in0.Imm, img.ProcAddrs["main"])
	}
	if img.At(img.HaltPC).Op != isa.HALT {
		t.Error("halt trampoline missing")
	}
	want := 2 + len(pr.Proc("leaf").Insts) + len(pr.Proc("main").Insts)
	if img.TextWords() != want {
		t.Errorf("text words = %d, want %d", img.TextWords(), want)
	}
}

func TestBranchResolution(t *testing.T) {
	_, img := buildCountdown(t)
	// Find the bnez and check its target equals the loop label address.
	mainAddr := img.ProcAddrs["main"]
	var bnePC uint64
	for pc := mainAddr; img.InText(pc); pc += 4 {
		if img.At(pc).Op == isa.BNE {
			bnePC = pc
			break
		}
	}
	if bnePC == 0 {
		t.Fatal("bne not found")
	}
	target, ok := isa.BranchTarget(bnePC, img.At(bnePC))
	if !ok {
		t.Fatal("no branch target")
	}
	wantTarget := mainAddr + 1*4 // label "loop" is after the Li
	if target != wantTarget {
		t.Errorf("branch target %#x, want %#x", target, wantTarget)
	}
}

func TestBackwardAndForwardBranches(t *testing.T) {
	pr := New()
	m := pr.Assembler("main")
	m.Li(isa.T0, 1)
	m.Beqz(isa.T0, "end") // forward
	m.Label("top")
	m.Addi(isa.T0, isa.T0, -1)
	m.Bnez(isa.T0, "top") // backward
	m.Label("end")
	m.Ret()
	img, err := pr.Link()
	if err != nil {
		t.Fatal(err)
	}
	base := img.ProcAddrs["main"]
	fwd, _ := isa.BranchTarget(base+4, img.At(base+4))
	if fwd != base+16 {
		t.Errorf("forward target %#x, want %#x", fwd, base+16)
	}
	back, _ := isa.BranchTarget(base+12, img.At(base+12))
	if back != base+8 {
		t.Errorf("backward target %#x, want %#x", back, base+8)
	}
}

func TestUnknownLabelErrors(t *testing.T) {
	pr := New()
	m := pr.Assembler("main")
	m.Bnez(isa.T0, "nowhere")
	m.Ret()
	if _, err := pr.Link(); err == nil {
		t.Error("link should fail on unknown label")
	}

	pr2 := New()
	m2 := pr2.Assembler("main")
	m2.Call("missing")
	m2.Ret()
	if _, err := pr2.Link(); err == nil {
		t.Error("link should fail on unknown procedure")
	}
}

func TestMissingEntryErrors(t *testing.T) {
	pr := New()
	pr.Assembler("helper").Ret()
	if _, err := pr.Link(); err == nil {
		t.Error("link should fail without main")
	}
}

func TestDuplicateProcPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate proc did not panic")
		}
	}()
	pr := New()
	pr.AddProc("f")
	pr.AddProc("f")
}

func TestDuplicateLabelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate label did not panic")
		}
	}()
	pr := New()
	a := pr.Assembler("main")
	a.Label("x").Label("x")
}

func TestDataLayoutAndLoadAddr(t *testing.T) {
	pr := New()
	pr.AddData(DataSym{Name: "tbl", Size: 64})
	pr.AddData(DataSym{Name: "buf", Init: []byte{1, 2, 3}})
	m := pr.Assembler("main")
	m.LoadAddr(isa.T0, "tbl")
	m.LoadAddr(isa.T1, "buf")
	m.Ret()
	img, err := pr.Link()
	if err != nil {
		t.Fatal(err)
	}
	tbl, ok := img.DataAddr("tbl")
	if !ok || tbl != DefaultDataBase {
		t.Errorf("tbl at %#x", tbl)
	}
	buf, _ := img.DataAddr("buf")
	if buf != DefaultDataBase+64 {
		t.Errorf("buf at %#x, want %#x", buf, uint64(DefaultDataBase+64))
	}
	// LUI+ORI pair must materialize the address.
	base := img.ProcAddrs["main"]
	lui, ori := img.At(base), img.At(base+4)
	got := uint64(lui.Imm)<<16 | uint64(ori.Imm)
	if got != tbl {
		t.Errorf("LoadAddr materializes %#x, want %#x", got, tbl)
	}
	// Memory image has the initialized bytes.
	memory := NewMemory(pr, img)
	if memory.Load8(buf) != 1 || memory.Load8(buf+2) != 3 {
		t.Error("initialized data not loaded")
	}
	// Text image decodes back to the same instructions.
	if w := memory.Read32(img.TextBase); w != img.Code[0] {
		t.Error("text not loaded into memory")
	}
}

func TestInsertBeforePreservesLabelsAndTargets(t *testing.T) {
	pr := New()
	m := pr.Assembler("main")
	m.Li(isa.S0, 3)
	m.Label("loop") // at index 1
	m.Addi(isa.S0, isa.S0, -1)
	m.Call("main2")
	m.Bnez(isa.S0, "loop")
	m.Ret()
	pr.Assembler("main2").Ret()

	p := pr.Proc("main")
	// Insert a kill before the call (index 2).
	p.InsertBefore(2, Inst{Inst: isa.Inst{Op: isa.KILL, Mask: isa.MaskOf(isa.S1)}})

	if li, _ := p.LabelAt("loop"); li != 1 {
		t.Errorf("label before insertion point moved to %d", li)
	}
	img, err := pr.Link()
	if err != nil {
		t.Fatal(err)
	}
	base := img.ProcAddrs["main"]
	// Instruction stream: li, addi(label), kill, jal, bne, ret.
	if img.At(base+8).Op != isa.KILL {
		t.Fatalf("kill not at expected slot: %v", img.At(base+8))
	}
	bnePC := base + 16
	if img.At(bnePC).Op != isa.BNE {
		t.Fatalf("bne not at expected slot: %v", img.At(bnePC))
	}
	target, _ := isa.BranchTarget(bnePC, img.At(bnePC))
	if target != base+4 {
		t.Errorf("branch target %#x after insertion, want %#x", target, base+4)
	}
}

func TestInsertBeforeShiftsLabelAtIndex(t *testing.T) {
	pr := New()
	m := pr.Assembler("main")
	m.Li(isa.T0, 1)
	m.Label("target")
	m.Call("f")
	m.Jump("target")
	pr.Assembler("f").Ret()

	p := pr.Proc("main")
	callIdx, _ := p.LabelAt("target")
	p.InsertBefore(callIdx, Inst{Inst: isa.Inst{Op: isa.KILL, Mask: isa.MaskOf(isa.S0)}})
	// The label must still name the call, not the kill.
	li, _ := p.LabelAt("target")
	if p.Insts[li].Op != isa.JAL {
		t.Errorf("label now names %v, want the call", p.Insts[li].Op)
	}
}

func TestProcOf(t *testing.T) {
	_, img := buildCountdown(t)
	leafAddr := img.ProcAddrs["leaf"]
	if name, ok := img.ProcOf(leafAddr); !ok || name != "leaf" {
		t.Errorf("ProcOf(leaf start) = %q", name)
	}
	mainAddr := img.ProcAddrs["main"]
	if name, ok := img.ProcOf(mainAddr + 8); !ok || name != "main" {
		t.Errorf("ProcOf(main+8) = %q", name)
	}
	if _, ok := img.ProcOf(img.TextBase); ok {
		t.Error("trampoline should not belong to a procedure")
	}
}

func TestAtOutOfRangeIsHalt(t *testing.T) {
	_, img := buildCountdown(t)
	if img.At(0).Op != isa.HALT {
		t.Error("below text should decode as halt")
	}
	if img.At(img.TextBase+uint64(len(img.Insts))*4).Op != isa.HALT {
		t.Error("above text should decode as halt")
	}
	if img.At(img.TextBase+2).Op != isa.HALT {
		t.Error("unaligned fetch should decode as halt")
	}
}

func TestFrameHelperEmitsLiveSaves(t *testing.T) {
	pr := New()
	a := pr.Assembler("main")
	epi := a.Frame(16, true, isa.S0, isa.S1)
	a.Li(isa.S0, 1)
	epi()
	img, err := pr.Link()
	if err != nil {
		t.Fatal(err)
	}
	var lvst, lvld, st, ld int
	base := img.ProcAddrs["main"]
	for pc := base; img.InText(pc); pc += 4 {
		switch img.At(pc).Op {
		case isa.LVST:
			lvst++
		case isa.LVLD:
			lvld++
		case isa.ST:
			st++
		case isa.LD:
			ld++
		}
	}
	if lvst != 2 || lvld != 2 {
		t.Errorf("live saves/restores = %d/%d, want 2/2", lvst, lvld)
	}
	if st != 1 || ld != 1 {
		t.Errorf("ra save/restore = %d/%d, want 1/1 (plain st/ld)", st, ld)
	}
}

func TestFrameStackAlignment(t *testing.T) {
	pr := New()
	a := pr.Assembler("main")
	epi := a.Frame(4, false, isa.S0) // 4+8 = 12 -> rounds to 16
	epi()
	p := pr.Proc("main")
	if p.Insts[0].Op != isa.ADDI || p.Insts[0].Imm != -16 {
		t.Errorf("prologue = %v, want addi sp, sp, -16", p.Insts[0].Inst)
	}
}

func TestDisasmListing(t *testing.T) {
	_, img := buildCountdown(t)
	lst := img.Disasm()
	for _, want := range []string{"main:", "leaf:", "main.loop:", "jal main", "halt", "ret"} {
		if !strings.Contains(lst, want) {
			t.Errorf("listing missing %q:\n%s", want, lst)
		}
	}
	plst := img.DisasmProc("main")
	if !strings.Contains(plst, "jal leaf") {
		t.Errorf("proc listing missing call:\n%s", plst)
	}
}

func TestKillHelperRejectsAlwaysLive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("kill of sp did not panic")
		}
	}()
	pr := New()
	pr.Assembler("main").Kill(isa.SP)
}

func TestEncodedImageDecodesIdentically(t *testing.T) {
	_, img := buildCountdown(t)
	for i, w := range img.Code {
		in, err := isa.Decode(w)
		if err != nil {
			t.Fatalf("word %d: %v", i, err)
		}
		if in != img.Insts[i] {
			t.Errorf("word %d: decoded %v != linked %v", i, in, img.Insts[i])
		}
	}
}
