package ir

import (
	"testing"

	"dvi/internal/prog"
)

func TestBuilderBasics(t *testing.T) {
	m := NewModule()
	f := m.Func("f", 2)
	if f.Param(0) != 0 || f.Param(1) != 1 {
		t.Error("params not first values")
	}
	b := f.Block("entry")
	v := b.Add(f.Param(0), f.Param(1))
	if v != 2 {
		t.Errorf("first computed value = %d", v)
	}
	b.Ret(v)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesUnterminated(t *testing.T) {
	m := NewModule()
	f := m.Func("main", 0)
	f.Block("entry")
	if err := m.Validate(); err == nil {
		t.Error("unterminated block validated")
	}
}

func TestValidateCatchesUnknownTarget(t *testing.T) {
	m := NewModule()
	f := m.Func("main", 0)
	b := f.Block("entry")
	b.Jmp("nope")
	if err := m.Validate(); err == nil {
		t.Error("unknown target validated")
	}
}

func TestValidateCatchesUnknownCallee(t *testing.T) {
	m := NewModule()
	f := m.Func("main", 0)
	b := f.Block("entry")
	b.CallVoid("ghost")
	b.Ret(NoValue)
	if err := m.Validate(); err == nil {
		t.Error("unknown callee validated")
	}
}

func TestTerminatorMidBlockPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("instruction after terminator did not panic")
		}
	}()
	m := NewModule()
	f := m.Func("main", 0)
	b := f.Block("entry")
	b.Ret(NoValue)
	b.Const(1)
}

func TestDuplicateFuncPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate function did not panic")
		}
	}()
	m := NewModule()
	m.Func("f", 0)
	m.Func("f", 0)
}

func TestTooManyParamsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("5 params did not panic")
		}
	}()
	m := NewModule()
	m.Func("f", 5)
}

func TestTooManyArgsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("5 args did not panic")
		}
	}()
	m := NewModule()
	m.Func("g", 0)
	f := m.Func("main", 0)
	b := f.Block("entry")
	b.Call("g", 0, 0, 0, 0, 0)
}

func TestVarAndSet(t *testing.T) {
	m := NewModule()
	f := m.Func("main", 0)
	v := f.Var()
	b := f.Block("entry")
	b.SetI(v, 10)
	b.Set(v, b.AddI(v, 5))
	b.Out(0, v)
	b.Ret(NoValue)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestForwardBlockReference(t *testing.T) {
	m := NewModule()
	f := m.Func("main", 0)
	entry := f.Block("entry")
	entry.Jmp("later")
	later := f.Block("later")
	later.Ret(NoValue)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if f.Entry() != entry {
		t.Error("entry block changed")
	}
}

func TestDataSymbols(t *testing.T) {
	m := NewModule()
	m.AddData(prog.DataSym{Name: "tbl", Size: 128})
	if len(m.Data) != 1 || m.Data[0].Name != "tbl" {
		t.Error("data symbol lost")
	}
}
