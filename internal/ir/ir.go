// Package ir is the compiler's intermediate representation: functions of
// basic blocks over unlimited virtual registers, in three-address,
// non-SSA form. The seven SPEC95int-like workloads are authored in this IR
// and lowered by internal/compiler, which plays the role of the paper's
// modified GCC 2.6.3: it allocates registers under the caller/callee-saved
// convention, emits live-store/live-load saves and restores, and (via
// internal/rewrite) inserts E-DVI kill instructions.
package ir

import (
	"fmt"

	"dvi/internal/prog"
)

// Value names a virtual register. Negative means "no value".
type Value int

// NoValue is the absent-operand sentinel.
const NoValue Value = -1

// Op enumerates IR operations.
type Op uint8

const (
	// Arithmetic (Dst <- A op B; B may be replaced by Imm when UseImm).
	Add Op = iota
	Sub
	Mul
	Div
	Rem
	And
	Or
	Xor
	Shl
	Shr // logical
	Sra // arithmetic
	SltS
	SltU

	Const  // Dst <- Imm
	AddrOf // Dst <- address of data symbol or function named Sym

	Load   // Dst <- mem64[A + Imm]
	Store  // mem64[A + Imm] <- B
	LoadB  // Dst <- zext mem8[A + Imm]
	StoreB // mem8[A + Imm] <- B

	Move // Dst <- A (redefinition of an existing variable)

	Call    // Dst (optional) <- Sym(Args...)
	CallPtr // Dst (optional) <- (*A)(Args...)

	Out // emit checksum: channel Imm, value A

	// Terminators.
	Br  // if A cmp B goto Then else goto Else
	Jmp // goto Then
	Ret // return A (optional)
)

// Cmp is a branch comparison kind.
type Cmp uint8

// Branch comparison kinds.
const (
	EQ Cmp = iota
	NE
	LT
	GE
	LTU
	GEU
)

// Instr is one IR instruction.
type Instr struct {
	Op     Op
	Dst    Value
	A, B   Value
	UseImm bool  // B is Imm for arithmetic ops
	Imm    int64 // constant / address offset / Out channel
	Sym    string
	Args   []Value
	Cmp    Cmp
	Then   string
	Else   string
}

// IsTerm reports whether the instruction ends a block.
func (i Instr) IsTerm() bool { return i.Op == Br || i.Op == Jmp || i.Op == Ret }

// Block is a basic block; the last instruction must be a terminator.
type Block struct {
	Name   string
	Instrs []Instr

	fn *Func
}

// Func is an IR function. Parameters are the first NParams virtual
// registers.
type Func struct {
	Name    string
	NParams int
	Blocks  []*Block
	nVals   int

	byName map[string]*Block
}

// Module is a set of functions plus data symbols.
type Module struct {
	Funcs []*Func
	Data  []prog.DataSym

	byName map[string]*Func
}

// NewModule returns an empty module.
func NewModule() *Module { return &Module{byName: make(map[string]*Func)} }

// Func creates a function with n parameters (max 4, the ABI's argument
// registers).
func (m *Module) Func(name string, nParams int) *Func {
	if nParams > 4 {
		panic("ir: more than 4 parameters not supported by the ABI")
	}
	if _, dup := m.byName[name]; dup {
		panic("ir: duplicate function " + name)
	}
	f := &Func{Name: name, NParams: nParams, nVals: nParams, byName: make(map[string]*Block)}
	m.Funcs = append(m.Funcs, f)
	m.byName[name] = f
	return f
}

// FuncByName returns a function, or nil.
func (m *Module) FuncByName(name string) *Func { return m.byName[name] }

// AddData registers a data symbol.
func (m *Module) AddData(d prog.DataSym) { m.Data = append(m.Data, d) }

// Param returns the i-th parameter value.
func (f *Func) Param(i int) Value {
	if i < 0 || i >= f.NParams {
		panic(fmt.Sprintf("ir: %s has no parameter %d", f.Name, i))
	}
	return Value(i)
}

// NumValues returns the virtual register count.
func (f *Func) NumValues() int { return f.nVals }

// Block creates (or returns, if only forward-declared) the named block.
func (f *Func) Block(name string) *Block {
	if b, ok := f.byName[name]; ok {
		return b
	}
	b := &Block{Name: name, fn: f}
	f.Blocks = append(f.Blocks, b)
	f.byName[name] = b
	return b
}

// Entry returns the first block.
func (f *Func) Entry() *Block {
	if len(f.Blocks) == 0 {
		panic("ir: function has no blocks")
	}
	return f.Blocks[0]
}

func (f *Func) newVal() Value {
	v := Value(f.nVals)
	f.nVals++
	return v
}

func (b *Block) push(i Instr) Value {
	if n := len(b.Instrs); n > 0 && b.Instrs[n-1].IsTerm() {
		panic(fmt.Sprintf("ir: %s.%s: instruction after terminator", b.fn.Name, b.Name))
	}
	b.Instrs = append(b.Instrs, i)
	return i.Dst
}

// --- builder methods ---

func (b *Block) bin(op Op, a, v Value) Value {
	dst := b.fn.newVal()
	return b.push(Instr{Op: op, Dst: dst, A: a, B: v})
}

func (b *Block) binImm(op Op, a Value, imm int64) Value {
	dst := b.fn.newVal()
	return b.push(Instr{Op: op, Dst: dst, A: a, B: NoValue, UseImm: true, Imm: imm})
}

// Arithmetic over two values.
func (b *Block) Add(a, v Value) Value  { return b.bin(Add, a, v) }
func (b *Block) Sub(a, v Value) Value  { return b.bin(Sub, a, v) }
func (b *Block) Mul(a, v Value) Value  { return b.bin(Mul, a, v) }
func (b *Block) Div(a, v Value) Value  { return b.bin(Div, a, v) }
func (b *Block) Rem(a, v Value) Value  { return b.bin(Rem, a, v) }
func (b *Block) And(a, v Value) Value  { return b.bin(And, a, v) }
func (b *Block) Or(a, v Value) Value   { return b.bin(Or, a, v) }
func (b *Block) Xor(a, v Value) Value  { return b.bin(Xor, a, v) }
func (b *Block) Shl(a, v Value) Value  { return b.bin(Shl, a, v) }
func (b *Block) Shr(a, v Value) Value  { return b.bin(Shr, a, v) }
func (b *Block) SltS(a, v Value) Value { return b.bin(SltS, a, v) }

// Arithmetic with immediate second operand.
func (b *Block) AddI(a Value, imm int64) Value { return b.binImm(Add, a, imm) }
func (b *Block) SubI(a Value, imm int64) Value { return b.binImm(Sub, a, imm) }
func (b *Block) MulI(a Value, imm int64) Value { return b.binImm(Mul, a, imm) }
func (b *Block) DivI(a Value, imm int64) Value { return b.binImm(Div, a, imm) }
func (b *Block) RemI(a Value, imm int64) Value { return b.binImm(Rem, a, imm) }
func (b *Block) AndI(a Value, imm int64) Value { return b.binImm(And, a, imm) }
func (b *Block) OrI(a Value, imm int64) Value  { return b.binImm(Or, a, imm) }
func (b *Block) XorI(a Value, imm int64) Value { return b.binImm(Xor, a, imm) }
func (b *Block) ShlI(a Value, imm int64) Value { return b.binImm(Shl, a, imm) }
func (b *Block) ShrI(a Value, imm int64) Value { return b.binImm(Shr, a, imm) }
func (b *Block) SraI(a Value, imm int64) Value { return b.binImm(Sra, a, imm) }

// Const materializes a constant.
func (b *Block) Const(imm int64) Value {
	dst := b.fn.newVal()
	return b.push(Instr{Op: Const, Dst: dst, A: NoValue, B: NoValue, Imm: imm})
}

// Var allocates a mutable variable (a virtual register the program may
// redefine with Set/SetI — the loop-carried values of the workloads).
func (f *Func) Var() Value { return f.newVal() }

// Set redefines dst with the value of src.
func (b *Block) Set(dst, src Value) {
	b.push(Instr{Op: Move, Dst: dst, A: src, B: NoValue})
}

// SetI redefines dst with a constant.
func (b *Block) SetI(dst Value, imm int64) {
	b.push(Instr{Op: Const, Dst: dst, A: NoValue, B: NoValue, Imm: imm})
}

// AddrOf materializes the address of a data symbol or function.
func (b *Block) AddrOf(sym string) Value {
	dst := b.fn.newVal()
	return b.push(Instr{Op: AddrOf, Dst: dst, A: NoValue, B: NoValue, Sym: sym})
}

// Load reads mem64[base+off].
func (b *Block) Load(base Value, off int64) Value {
	dst := b.fn.newVal()
	return b.push(Instr{Op: Load, Dst: dst, A: base, B: NoValue, Imm: off})
}

// Store writes mem64[base+off] = v.
func (b *Block) Store(base Value, off int64, v Value) {
	b.push(Instr{Op: Store, Dst: NoValue, A: base, B: v, Imm: off})
}

// LoadB reads a byte zero-extended.
func (b *Block) LoadB(base Value, off int64) Value {
	dst := b.fn.newVal()
	return b.push(Instr{Op: LoadB, Dst: dst, A: base, B: NoValue, Imm: off})
}

// StoreB writes the low byte of v.
func (b *Block) StoreB(base Value, off int64, v Value) {
	b.push(Instr{Op: StoreB, Dst: NoValue, A: base, B: v, Imm: off})
}

// Call invokes a named function and returns its result value.
func (b *Block) Call(callee string, args ...Value) Value {
	if len(args) > 4 {
		panic("ir: more than 4 call arguments")
	}
	dst := b.fn.newVal()
	return b.push(Instr{Op: Call, Dst: dst, A: NoValue, B: NoValue, Sym: callee, Args: args})
}

// CallVoid invokes a function whose result is unused.
func (b *Block) CallVoid(callee string, args ...Value) {
	if len(args) > 4 {
		panic("ir: more than 4 call arguments")
	}
	b.push(Instr{Op: Call, Dst: NoValue, A: NoValue, B: NoValue, Sym: callee, Args: args})
}

// CallPtr invokes through a function pointer value.
func (b *Block) CallPtr(fn Value, args ...Value) Value {
	if len(args) > 4 {
		panic("ir: more than 4 call arguments")
	}
	dst := b.fn.newVal()
	return b.push(Instr{Op: CallPtr, Dst: dst, A: fn, B: NoValue, Args: args})
}

// Out emits v on checksum channel ch.
func (b *Block) Out(ch int64, v Value) {
	b.push(Instr{Op: Out, Dst: NoValue, A: v, B: NoValue, Imm: ch})
}

// Br ends the block with a conditional branch.
func (b *Block) Br(cmp Cmp, x, y Value, then, els string) {
	b.push(Instr{Op: Br, Dst: NoValue, A: x, B: y, Cmp: cmp, Then: then, Else: els})
}

// BrZ branches to then when v == 0.
func (b *Block) BrZ(v Value, then, els string) {
	zero := b.Const(0)
	b.Br(EQ, v, zero, then, els)
}

// Jmp ends the block with an unconditional jump.
func (b *Block) Jmp(target string) {
	b.push(Instr{Op: Jmp, Dst: NoValue, A: NoValue, B: NoValue, Then: target})
}

// Ret ends the block returning v (NoValue for void).
func (b *Block) Ret(v Value) {
	b.push(Instr{Op: Ret, Dst: NoValue, A: v, B: NoValue})
}

// Validate checks structural invariants: every block terminated, every
// branch target defined, operands in range.
func (m *Module) Validate() error {
	for _, f := range m.Funcs {
		if len(f.Blocks) == 0 {
			return fmt.Errorf("ir: %s: no blocks", f.Name)
		}
		for _, b := range f.Blocks {
			if len(b.Instrs) == 0 || !b.Instrs[len(b.Instrs)-1].IsTerm() {
				return fmt.Errorf("ir: %s.%s: not terminated", f.Name, b.Name)
			}
			for k, in := range b.Instrs {
				if in.IsTerm() && k != len(b.Instrs)-1 {
					return fmt.Errorf("ir: %s.%s: terminator mid-block", f.Name, b.Name)
				}
				for _, tgt := range []string{in.Then, in.Else} {
					if tgt == "" {
						continue
					}
					if _, ok := f.byName[tgt]; !ok {
						return fmt.Errorf("ir: %s.%s: unknown target %q", f.Name, b.Name, tgt)
					}
				}
				if in.Op == Call {
					if m.byName[in.Sym] == nil {
						return fmt.Errorf("ir: %s.%s: call to unknown function %q", f.Name, b.Name, in.Sym)
					}
				}
				for _, v := range []Value{in.Dst, in.A, in.B} {
					if v != NoValue && (v < 0 || int(v) >= f.nVals) {
						return fmt.Errorf("ir: %s.%s: value v%d out of range", f.Name, b.Name, v)
					}
				}
			}
		}
	}
	return nil
}
