package harness

import (
	"context"
	"fmt"
	"io"

	"dvi/internal/runner"
	"dvi/internal/session"
)

// NewSession builds a session sized by opt.Workers with an optional
// progress observer. One session should serve a whole report so every
// figure shares its memoized build cache and warm simulator pools.
func NewSession(opt Options, progress runner.ProgressFunc) *session.Session {
	return session.New(session.WithWorkers(opt.Workers), session.WithProgress(progress))
}

// CollectResults resolves ids (plus transitive Needs), submits every
// required figure's job grid through sess as one batch, and returns the
// results keyed by figure ID. Grids are concatenated in registry order,
// so the batch — and therefore any report rendered from it — is
// identical at any worker count.
func CollectResults(ctx context.Context, sess *session.Session, opt Options, ids []string) (ResultSet, error) {
	need := map[string]bool{}
	var add func(id string) error
	add = func(id string) error {
		if need[id] {
			return nil
		}
		fig, ok := FigureByID(id)
		if !ok {
			return fmt.Errorf("harness: unknown figure %q (have %v)", id, FigureIDs())
		}
		need[id] = true
		for _, d := range fig.Needs {
			if err := add(d); err != nil {
				return err
			}
		}
		return nil
	}
	for _, id := range ids {
		if err := add(id); err != nil {
			return nil, err
		}
	}

	type span struct {
		id     string
		lo, hi int
	}
	var (
		jobs  []runner.Job
		spans []span
	)
	for _, fig := range Figures() {
		if !need[fig.ID] || fig.Jobs == nil {
			continue
		}
		js := fig.Jobs(opt)
		spans = append(spans, span{fig.ID, len(jobs), len(jobs) + len(js)})
		jobs = append(jobs, js...)
	}
	var (
		results []runner.Result
		err     error
	)
	if opt.Sampling != nil {
		results, err = sess.CollectSampled(ctx, jobs, *opt.Sampling)
	} else {
		results, err = sess.Collect(ctx, jobs)
	}
	if err != nil {
		return nil, err
	}
	rs := ResultSet{}
	for _, sp := range spans {
		rs[sp.id] = results[sp.lo:sp.hi]
	}
	return rs, nil
}

// RunFigures runs the selected figures through one shared session and
// writes their tables to w in registry order (selection order does not
// affect the report). Any job or render error aborts the whole run.
func RunFigures(ctx context.Context, sess *session.Session, opt Options, ids []string, w io.Writer) error {
	selected := map[string]bool{}
	for _, id := range ids {
		if _, ok := FigureByID(id); !ok {
			return fmt.Errorf("harness: unknown figure %q (have %v)", id, FigureIDs())
		}
		selected[id] = true
	}
	rs, err := CollectResults(ctx, sess, opt, ids)
	if err != nil {
		return err
	}
	for _, fig := range Figures() {
		if !selected[fig.ID] {
			continue
		}
		tables, err := fig.Render(opt, rs)
		if err != nil {
			return fmt.Errorf("%s: %w", fig.ID, err)
		}
		for _, t := range tables {
			fmt.Fprintln(w, t)
		}
	}
	return nil
}

// RunAll regenerates the nine paper figures and writes them to w, using
// opt.Workers concurrent workers over one shared build cache. The report
// bytes are identical at any worker count.
func RunAll(opt Options, w io.Writer) error {
	return RunFigures(context.Background(), NewSession(opt, nil), opt, ReportIDs(), w)
}

// runOne executes a single figure's grid on a fresh session and renders
// its table — the implementation behind the exported per-figure
// convenience functions.
func runOne(id string, opt Options, build func(Options, []runner.Result) (Table, error)) (Table, error) {
	rs, err := CollectResults(context.Background(), NewSession(opt, nil), opt, []string{id})
	if err != nil {
		return Table{}, err
	}
	return build(opt, rs[id])
}
