package harness

import (
	"context"
	"fmt"
	"strings"

	"dvi/internal/cacti"
	"dvi/internal/core"
	"dvi/internal/emu"
	"dvi/internal/isa"
	"dvi/internal/ooo"
	"dvi/internal/rewrite"
	"dvi/internal/runner"
	"dvi/internal/session"
	"dvi/internal/workload"
)

// ResultSet maps figure IDs to their grid results in submission order.
type ResultSet map[string][]runner.Result

// Figure is one experiment: a declarative job grid plus a renderer that
// turns the grid's results into tables. Separating declaration from
// consumption lets RunAll submit every figure's grid through one shared
// engine and build cache.
type Figure struct {
	// ID is the selection key (cmd/dvibench -figures).
	ID string
	// Title is a one-line description for usage output.
	Title string
	// Needs lists figure IDs whose results Render also consumes (fig6
	// derives from fig5's sweep); their grids run even when only this
	// figure is selected.
	Needs []string
	// Jobs declares the grid. Nil for static or purely derived figures.
	Jobs func(opt Options) []runner.Job
	// Render consumes results (own grid under ID, plus Needs' grids) and
	// produces this figure's tables.
	Render func(opt Options, rs ResultSet) ([]Table, error)
}

// Figures returns every experiment in report order.
func Figures() []Figure {
	return []Figure{
		{ID: "fig2", Title: "machine configuration table",
			Render: func(Options, ResultSet) ([]Table, error) { return []Table{Fig2MachineConfig()}, nil }},
		{ID: "fig3", Title: "benchmark characterization", Jobs: fig3Jobs, Render: one("fig3", fig3Build)},
		{ID: "fig5", Title: "IPC vs register file size sweep", Jobs: fig5Jobs,
			Render: func(opt Options, rs ResultSet) ([]Table, error) {
				t, _, err := fig5Build(opt, rs["fig5"])
				return []Table{t}, err
			}},
		{ID: "fig6", Title: "relative performance vs register file size", Needs: []string{"fig5"},
			Render: func(opt Options, rs ResultSet) ([]Table, error) {
				points, err := fig5Points(rs["fig5"])
				if err != nil {
					return nil, err
				}
				t, err := Fig6Performance(opt, points)
				return []Table{t}, err
			}},
		{ID: "fig9", Title: "dynamic saves/restores eliminated", Jobs: fig9Jobs, Render: one("fig9", fig9Build)},
		{ID: "fig10", Title: "IPC speedups from save/restore elimination", Jobs: fig10Jobs, Render: one("fig10", fig10Build)},
		{ID: "fig11", Title: "cache bandwidth sensitivity", Jobs: fig11Jobs, Render: one("fig11", fig11Build)},
		{ID: "fig12", Title: "context switch traffic reduction", Jobs: fig12Jobs, Render: one("fig12", fig12Build)},
		{ID: "fig13", Title: "E-DVI annotation overhead", Jobs: fig13Jobs, Render: one("fig13", fig13Build)},
		{ID: "infer", Title: "inferred vs hand-annotated save/restore elimination", Jobs: inferJobs, Render: one("infer", inferBuild)},
		{ID: "smt", Title: "multi-context (SMT) throughput and DVI benefit", Jobs: smtJobs, Render: one("smt", smtBuild)},
		{ID: "ablation-stack", Title: "LVM-Stack depth sweep", Jobs: ablationStackJobs, Render: one("ablation-stack", ablationStackBuild)},
		{ID: "ablation-kills", Title: "kill placement policies", Jobs: ablationKillsJobs, Render: one("ablation-kills", ablationKillsBuild)},
		{ID: "ablation-wrongpath", Title: "wrong-path fetch modelling", Jobs: ablationWrongPathJobs, Render: one("ablation-wrongpath", ablationWrongPathBuild)},
	}
}

// one adapts a single-table builder to the Render signature, feeding it
// the figure's own grid results.
func one(id string, build func(Options, []runner.Result) (Table, error)) func(Options, ResultSet) ([]Table, error) {
	return func(opt Options, rs ResultSet) ([]Table, error) {
		t, err := build(opt, rs[id])
		if err != nil {
			return nil, err
		}
		return []Table{t}, nil
	}
}

// FigureByID finds an experiment.
func FigureByID(id string) (Figure, bool) {
	for _, f := range Figures() {
		if f.ID == id {
			return f, true
		}
	}
	return Figure{}, false
}

// FigureIDs returns every selectable experiment ID in report order.
func FigureIDs() []string {
	var ids []string
	for _, f := range Figures() {
		ids = append(ids, f.ID)
	}
	return ids
}

// ReportIDs returns the nine paper figures RunAll regenerates, in report
// order (the ablations are separate; see AblationIDs).
func ReportIDs() []string {
	return []string{"fig2", "fig3", "fig5", "fig6", "fig9", "fig10", "fig11", "fig12", "fig13"}
}

// AblationIDs returns the ablation study IDs in report order.
func AblationIDs() []string {
	return []string{"ablation-stack", "ablation-kills", "ablation-wrongpath"}
}

// --- job grid helpers ---

// timingJob declares one run on the out-of-order simulator.
func timingJob(label string, s workload.Spec, opt Options, edvi bool, cfg ooo.Config) runner.Job {
	return runner.Job{
		Label:    label,
		Workload: s,
		Scale:    opt.Scale,
		Build:    workload.BuildOptions{EDVI: edvi},
		Kind:     runner.Timing,
		Machine:  cfg,
	}
}

// funcJob declares one run on the functional emulator.
func funcJob(label string, s workload.Spec, opt Options, bopt workload.BuildOptions, cfg emu.Config) runner.Job {
	return runner.Job{
		Label:    label,
		Workload: s,
		Scale:    opt.Scale,
		Build:    bopt,
		Kind:     runner.Functional,
		Emu:      cfg,
	}
}

// --- Figure 2 ---

// Fig2MachineConfig reproduces the machine configuration table.
func Fig2MachineConfig() Table {
	c := ooo.DefaultConfig()
	h := c.Hierarchy
	return Table{
		ID:     "fig2",
		Title:  "Machine configuration",
		Header: []string{"Parameter", "Value"},
		Rows: [][]string{
			{"Issue Width", fmt.Sprintf("%d", c.IssueWidth)},
			{"Inst. Window", fmt.Sprintf("%d", c.WindowSize)},
			{"Func. Units", fmt.Sprintf("%d int (%d mul/div)", c.IntALUs, c.IntMulDiv)},
			{"Cache Ports", fmt.Sprintf("%d (fully independent)", c.CachePorts)},
			{"L1 D-Cache", fmt.Sprintf("%dKB, %d-way, %d cycle latency", h.L1D.SizeBytes>>10, h.L1D.Assoc, h.L1D.HitLatency)},
			{"L1 I-Cache", fmt.Sprintf("%dKB, %d-way, %d cycle latency", h.L1I.SizeBytes>>10, h.L1I.Assoc, h.L1I.HitLatency)},
			{"L2 Cache", fmt.Sprintf("%dKB, %d-way, %d cycle latency", h.L2.SizeBytes>>10, h.L2.Assoc, h.L2.HitLatency)},
			{"Memory", fmt.Sprintf("%d cycle latency", h.MemLatency)},
			{"Branch Predictor", "16-bit history gshare/bimod combining, BTB, RAS"},
			{"Phys. Registers", fmt.Sprintf("%d (unconstrained; swept in fig5)", c.PhysRegs)},
		},
	}
}

// --- Figure 3 ---

// fig3Jobs declares one baseline functional run per benchmark.
func fig3Jobs(opt Options) []runner.Job {
	var jobs []runner.Job
	for _, s := range workload.All() {
		jobs = append(jobs, funcJob("fig3 "+s.Name, s, opt,
			workload.BuildOptions{}, emu.Config{DVI: core.Config{Level: core.None}}))
	}
	return jobs
}

// fig3Build renders the characterization table: dynamic instructions, and
// calls, memory references, and saves/restores as a percentage of dynamic
// instructions.
func fig3Build(opt Options, res []runner.Result) (Table, error) {
	t := Table{
		ID:     "fig3",
		Title:  "Benchmark characterization (baseline binaries, functional run)",
		Header: []string{"Benchmark", "Dynamic Inst", "Call Inst", "Mem Inst", "Saves & Restores"},
	}
	for _, r := range res {
		st := r.Func
		t.Rows = append(t.Rows, []string{
			r.Job.Workload.Name,
			u64(st.Original()),
			pct(ratio(st.Calls, st.Original())),
			pct(ratio(st.MemRefs, st.Original())),
			pct(ratio(st.SavesRestores(), st.Original())),
		})
	}
	return t, nil
}

// Fig3Characterization reproduces the benchmark characterization table.
func Fig3Characterization(opt Options) (Table, error) { return runOne("fig3", opt, fig3Build) }

// --- Figures 5 and 6 ---

// Fig5Point is one (size, level) IPC measurement.
type Fig5Point struct {
	Regs  int
	Level core.Level
	IPC   float64 // unweighted mean over the suite
}

// Fig5Sizes is the register file sweep (the paper's x axis runs 34..96).
var Fig5Sizes = []int{34, 38, 42, 46, 50, 54, 58, 62, 66, 70, 74, 78, 82, 86, 90, 94, 96}

// fig5Jobs declares the (size × level × benchmark) sweep grid.
// Save/restore elimination is off so the register-reclamation effect is
// isolated (§4's subject); E-DVI runs use annotated binaries (their kills
// add fetch overhead but also reclaim callee-saved registers early).
func fig5Jobs(opt Options) []runner.Job {
	var jobs []runner.Job
	for _, regs := range Fig5Sizes {
		for _, level := range dviLevels {
			for _, s := range workload.All() {
				cfg := timingConfig(level, emu.ElimOff, opt.sweepBudget())
				cfg.PhysRegs = regs
				jobs = append(jobs, timingJob(
					fmt.Sprintf("fig5 %s @%d regs %s", s.Name, regs, level),
					s, opt, session.BuildOptionsFor(level).EDVI, cfg))
			}
		}
	}
	return jobs
}

// fig5Points reduces the sweep grid to per-(size, level) suite-mean IPC
// points. Results arrive in fig5Jobs' declaration order.
func fig5Points(res []runner.Result) ([]Fig5Point, error) {
	suite := workload.All()
	if want := len(Fig5Sizes) * len(dviLevels) * len(suite); len(res) != want {
		return nil, fmt.Errorf("fig5: %d results, want %d", len(res), want)
	}
	var points []Fig5Point
	idx := 0
	for _, regs := range Fig5Sizes {
		for _, level := range dviLevels {
			var sum float64
			for range suite {
				sum += res[idx].Timing.IPC()
				idx++
			}
			points = append(points, Fig5Point{Regs: regs, Level: level, IPC: sum / float64(len(suite))})
		}
	}
	return points, nil
}

// fig5Build renders the sweep table and returns the raw points Figure 6
// derives from.
func fig5Build(opt Options, res []runner.Result) (Table, []Fig5Point, error) {
	t := Table{
		ID:     "fig5",
		Title:  "Average IPC vs physical register file size",
		Header: []string{"Regs", "No DVI", "I-DVI", "E-DVI and I-DVI"},
		Notes:  []string{"unweighted arithmetic mean IPC over the 7 benchmarks (paper §4.2)"},
	}
	points, err := fig5Points(res)
	if err != nil {
		return t, nil, err
	}
	ci := anySampled(res)
	if ci {
		t.Header = append(t.Header, "±CI")
		t.Notes = append(t.Notes, sampledNote(res))
	}
	suite := len(workload.All())
	for i, regs := range Fig5Sizes {
		row := []string{fmt.Sprintf("%d", regs)}
		for j := range dviLevels {
			row = append(row, f3(points[i*len(dviLevels)+j].IPC))
		}
		if ci {
			lo := i * len(dviLevels) * suite
			row = append(row, pct(maxRelCI(res[lo:lo+len(dviLevels)*suite]...)))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, points, nil
}

// Fig5RegfileIPC sweeps physical register file sizes for the three DVI
// levels and reports the suite-mean IPC.
func Fig5RegfileIPC(opt Options) (Table, []Fig5Point, error) {
	rs, err := CollectResults(context.Background(), NewSession(opt, nil), opt, []string{"fig5"})
	if err != nil {
		return Table{}, nil, err
	}
	return fig5Build(opt, rs["fig5"])
}

// Fig6Performance divides the Figure 5 IPC curves by the CACTI register
// file access time and reports relative performance plus the peak
// locations (the paper's 64-vs-50 result).
func Fig6Performance(opt Options, points []Fig5Point) (Table, error) {
	t := Table{
		ID:     "fig6",
		Title:  "Relative performance (IPC / register file access time) vs size",
		Header: []string{"Regs", "No DVI", "I-DVI", "E-DVI and I-DVI"},
	}
	model := cacti.Default()
	width := ooo.DefaultConfig().IssueWidth

	perf := map[core.Level]map[int]float64{}
	for _, l := range dviLevels {
		perf[l] = map[int]float64{}
	}
	for _, p := range points {
		perf[p.Level][p.Regs] = model.RelativePerformance(p.IPC, p.Regs, width)
	}
	// Normalize to the no-DVI peak (the paper's horizontal reference).
	base := 0.0
	for _, v := range perf[core.None] {
		if v > base {
			base = v
		}
	}
	if base == 0 {
		return t, fmt.Errorf("fig6: no baseline data")
	}
	peakAt := map[core.Level]int{}
	peakVal := map[core.Level]float64{}
	for _, regs := range Fig5Sizes {
		row := []string{fmt.Sprintf("%d", regs)}
		for _, l := range dviLevels {
			v := perf[l][regs] / base
			row = append(row, f3(v))
			if v > peakVal[l] {
				peakVal[l], peakAt[l] = v, regs
			}
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("peak: No DVI %.3f at %d regs; E+I-DVI %.3f at %d regs", peakVal[core.None], peakAt[core.None], peakVal[core.Full], peakAt[core.Full]),
		fmt.Sprintf("register file size reduction at peak: %.0f%%; performance change: %+.1f%%",
			100*(1-float64(peakAt[core.Full])/float64(peakAt[core.None])),
			100*(peakVal[core.Full]-peakVal[core.None])))
	return t, nil
}

// --- Figure 9 ---

// fig9Schemes are the two elimination schemes measured against the
// ElimOff baseline denominators.
var fig9Schemes = []emu.Scheme{emu.ElimOff, emu.ElimLVM, emu.ElimLVMStack}

// fig9Jobs declares three functional runs per save/restore-active
// benchmark, all on the annotated binary: a no-elimination baseline for
// the denominators, then the LVM and LVM-Stack schemes.
func fig9Jobs(opt Options) []runner.Job {
	var jobs []runner.Job
	for _, s := range workload.SaveRestoreActive() {
		for _, scheme := range fig9Schemes {
			jobs = append(jobs, funcJob(
				fmt.Sprintf("fig9 %s %s", s.Name, scheme),
				s, opt, workload.BuildOptions{EDVI: true},
				emu.Config{DVI: core.DefaultConfig(), Scheme: scheme}))
		}
	}
	return jobs
}

// fig9Build renders dynamic saves and restores eliminated as a
// percentage of (a) total saves+restores, (b) total memory references,
// and (c) total instructions, for the LVM and LVM-Stack schemes. These
// are program properties, so the functional emulator suffices (paper:
// "independent of the processor configuration").
func fig9Build(opt Options, res []runner.Result) (Table, error) {
	t := Table{
		ID:    "fig9",
		Title: "Dynamic saves and restores eliminated (E-DVI and I-DVI binaries)",
		Header: []string{"Benchmark",
			"LVM %s/r", "LVM-Stack %s/r",
			"LVM %mem", "LVM-Stack %mem",
			"LVM %inst", "LVM-Stack %inst"},
	}
	var aggSR, aggMem, aggInst [2]float64
	n := 0
	for i := 0; i+2 < len(res); i += 3 {
		base, lvm, stack := res[i].Func, res[i+1].Func, res[i+2].Func
		totSR := base.SavesRestores()
		totMem := base.MemRefs
		totInst := base.Original()

		row := []string{res[i].Job.Workload.Name}
		var frSR, frMem, frInst [2]float64
		for j, st := range []emu.Stats{lvm, stack} {
			elim := st.SavesElim + st.RestoresElim
			frSR[j] = ratio(elim, totSR)
			frMem[j] = ratio(elim, totMem)
			frInst[j] = ratio(elim, totInst)
			aggSR[j] += frSR[j]
			aggMem[j] += frMem[j]
			aggInst[j] += frInst[j]
		}
		row = append(row, pct(frSR[0]), pct(frSR[1]), pct(frMem[0]), pct(frMem[1]), pct(frInst[0]), pct(frInst[1]))
		t.Rows = append(t.Rows, row)
		n++
	}
	t.Rows = append(t.Rows, []string{"average",
		pct(aggSR[0] / float64(n)), pct(aggSR[1] / float64(n)),
		pct(aggMem[0] / float64(n)), pct(aggMem[1] / float64(n)),
		pct(aggInst[0] / float64(n)), pct(aggInst[1] / float64(n))})
	return t, nil
}

// Fig9Eliminated reports dynamic saves and restores eliminated.
func Fig9Eliminated(opt Options) (Table, error) { return runOne("fig9", opt, fig9Build) }

// --- Figure 10 ---

// fig10Jobs declares, per benchmark, a no-DVI baseline and the two
// elimination schemes on annotated binaries.
func fig10Jobs(opt Options) []runner.Job {
	var jobs []runner.Job
	for _, s := range workload.SaveRestoreActive() {
		jobs = append(jobs,
			timingJob("fig10 "+s.Name+" base", s, opt, false, timingConfig(core.None, emu.ElimOff, opt.MaxInsts)),
			timingJob("fig10 "+s.Name+" lvm", s, opt, true, timingConfig(core.Full, emu.ElimLVM, opt.MaxInsts)),
			timingJob("fig10 "+s.Name+" stack", s, opt, true, timingConfig(core.Full, emu.ElimLVMStack, opt.MaxInsts)))
	}
	return jobs
}

// fig10Build renders IPC gains from save/restore elimination: the LVM
// scheme (saves only) and the LVM-Stack scheme against a no-DVI baseline
// on unannotated binaries.
func fig10Build(opt Options, res []runner.Result) (Table, error) {
	t := Table{
		ID:     "fig10",
		Title:  "IPC speedups from dead save/restore elimination",
		Header: []string{"Benchmark", "Base IPC", "LVM (saves)", "LVM-Stack (saves+restores)"},
	}
	ci := anySampled(res)
	if ci {
		t.Header = append(t.Header, "±CI")
		t.Notes = append(t.Notes, sampledNote(res))
	}
	for i := 0; i+2 < len(res); i += 3 {
		base, lvm, stack := res[i].Timing, res[i+1].Timing, res[i+2].Timing
		row := []string{
			res[i].Job.Workload.Name, f2(base.IPC()),
			fmt.Sprintf("%+.1f%%", 100*(lvm.IPC()/base.IPC()-1)),
			fmt.Sprintf("%+.1f%%", 100*(stack.IPC()/base.IPC()-1)),
		}
		if ci {
			row = append(row, pct(maxRelCI(res[i], res[i+1], res[i+2])))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Fig10Speedups reports IPC gains from save/restore elimination.
func Fig10Speedups(opt Options) (Table, error) { return runOne("fig10", opt, fig10Build) }

// --- Figure 11 ---

var (
	fig11Benchmarks = []string{"gcc", "ijpeg"}
	fig11Widths     = []int{4, 8}
	fig11Ports      = []int{1, 2, 3}
)

// fig11Jobs declares baseline/optimized timing pairs across the
// (width × ports) grid for the paper's two example benchmarks.
func fig11Jobs(opt Options) []runner.Job {
	var jobs []runner.Job
	for _, name := range fig11Benchmarks {
		s, _ := workload.ByName(name)
		for _, width := range fig11Widths {
			for _, ports := range fig11Ports {
				baseCfg := timingConfig(core.None, emu.ElimOff, opt.MaxInsts)
				baseCfg.IssueWidth, baseCfg.CachePorts = width, ports
				optCfg := timingConfig(core.Full, emu.ElimLVMStack, opt.MaxInsts)
				optCfg.IssueWidth, optCfg.CachePorts = width, ports
				tag := fmt.Sprintf("fig11 %s %dw %dp", name, width, ports)
				jobs = append(jobs,
					timingJob(tag+" base", s, opt, false, baseCfg),
					timingJob(tag+" opt", s, opt, true, optCfg))
			}
		}
	}
	return jobs
}

// fig11Build renders the cache bandwidth sensitivity study: LVM-Stack
// speedup over baseline for 1/2/3 cache ports at 4- and 8-wide issue.
func fig11Build(opt Options, res []runner.Result) (Table, error) {
	t := Table{
		ID:     "fig11",
		Title:  "Cache bandwidth sensitivity of save/restore elimination",
		Header: []string{"Benchmark", "Width", "1 Port", "2 Ports", "3 Ports"},
	}
	ci := anySampled(res)
	if ci {
		t.Header = append(t.Header, "±CI")
		t.Notes = append(t.Notes, sampledNote(res))
	}
	idx := 0
	for _, name := range fig11Benchmarks {
		for _, width := range fig11Widths {
			row := []string{name, fmt.Sprintf("%d-way", width)}
			rowLo := idx
			for range fig11Ports {
				base, st := res[idx].Timing, res[idx+1].Timing
				idx += 2
				row = append(row, fmt.Sprintf("%+.1f%%", 100*(st.IPC()/base.IPC()-1)))
			}
			if ci {
				row = append(row, pct(maxRelCI(res[rowLo:idx]...)))
			}
			t.Rows = append(t.Rows, row)
		}
	}
	return t, nil
}

// Fig11PortSensitivity reproduces the cache bandwidth sensitivity study.
func Fig11PortSensitivity(opt Options) (Table, error) { return runOne("fig11", opt, fig11Build) }

// --- Figure 12 ---

// fig12Jobs declares, per benchmark, context-switch measurements with
// I-DVI only and with full (E-DVI and I-DVI) tracking.
func fig12Jobs(opt Options) []runner.Job {
	budget := opt.MaxInsts
	if budget == 0 {
		budget = 400_000
	}
	var jobs []runner.Job
	for _, s := range workload.SaveRestoreActive() {
		for _, cfg := range []emu.Config{
			{DVI: core.Config{Level: core.IDVI, ABI: isa.DefaultABI()}},
			{DVI: core.DefaultConfig()},
		} {
			jobs = append(jobs, runner.Job{
				Label:     fmt.Sprintf("fig12 %s %s", s.Name, cfg.DVI.Level),
				Workload:  s,
				Scale:     opt.Scale,
				Build:     workload.BuildOptions{EDVI: true},
				Kind:      runner.CtxSwitch,
				Emu:       cfg,
				Interval:  997,
				EmuBudget: budget,
			})
		}
	}
	return jobs
}

// fig12Build renders the reduction in integer registers saved and
// restored at context switch time.
func fig12Build(opt Options, res []runner.Result) (Table, error) {
	t := Table{
		ID:     "fig12",
		Title:  "Context switch saves and restores eliminated",
		Header: []string{"Benchmark", "I-DVI", "E-DVI and I-DVI", "Avg live (full DVI)"},
	}
	var sumI, sumF float64
	n := 0
	for i := 0; i+1 < len(res); i += 2 {
		iRes, fRes := res[i].Switch, res[i+1].Switch
		t.Rows = append(t.Rows, []string{res[i].Job.Workload.Name,
			pct(iRes.Reduction), pct(fRes.Reduction), f2(fRes.AvgLive)})
		sumI += iRes.Reduction
		sumF += fRes.Reduction
		n++
	}
	t.Rows = append(t.Rows, []string{"average", pct(sumI / float64(n)), pct(sumF / float64(n)), ""})
	return t, nil
}

// Fig12ContextSwitch reports context-switch save/restore reductions.
func Fig12ContextSwitch(opt Options) (Table, error) { return runOne("fig12", opt, fig12Build) }

// --- Figure 13 ---

var fig13ICacheKB = []int{32, 64}

// fig13Jobs declares, per benchmark: a plain build (static size), one
// functional run of the annotated binary with DVI off (dynamic kill
// overhead), and baseline/annotated timing pairs at each I-cache size.
func fig13Jobs(opt Options) []runner.Job {
	var jobs []runner.Job
	for _, s := range workload.All() {
		jobs = append(jobs,
			runner.Job{Label: "fig13 " + s.Name + " plain build", Workload: s, Scale: opt.Scale, Kind: runner.Build},
			funcJob("fig13 "+s.Name+" kills", s, opt,
				workload.BuildOptions{EDVI: true}, emu.Config{DVI: core.Config{Level: core.None}}))
		for _, icacheKB := range fig13ICacheKB {
			for _, edvi := range []bool{false, true} {
				cfg := timingConfig(core.None, emu.ElimOff, opt.MaxInsts)
				cfg.Hierarchy.L1I.SizeBytes = icacheKB << 10
				jobs = append(jobs, timingJob(
					fmt.Sprintf("fig13 %s %dK edvi=%v", s.Name, icacheKB, edvi),
					s, opt, edvi, cfg))
			}
		}
	}
	return jobs
}

// fig13Build renders the cost of the kill annotations with the DVI
// optimizations disabled: dynamic fetched-instruction overhead, static
// code growth, and the IPC deltas with 32KB and 64KB instruction caches.
func fig13Build(opt Options, res []runner.Result) (Table, error) {
	t := Table{
		ID:     "fig13",
		Title:  "E-DVI overhead (DVI optimizations disabled)",
		Header: []string{"Benchmark", "Dyn Inst", "Code Size", "IPC ovhd 32K I$", "IPC ovhd 64K I$"},
	}
	const perBench = 6 // build, kills, then 2 I$ sizes × (base, with)
	for i := 0; i+perBench-1 < len(res); i += perBench {
		plainImg := res[i].Image
		kills := res[i+1]
		// Dynamic overhead: kills fetched per original instruction.
		dyn := ratio(kills.Func.Kills, kills.Func.Original())
		static := float64(kills.Image.TextWords())/float64(plainImg.TextWords()) - 1

		row := []string{res[i].Job.Workload.Name, pct(dyn), pct(static)}
		for j := 0; j < len(fig13ICacheKB); j++ {
			base := res[i+2+2*j].Timing
			with := res[i+3+2*j].Timing
			// Overhead: positive = slower with annotations.
			row = append(row, fmt.Sprintf("%+.2f%%", 100*(base.IPC()/with.IPC()-1)))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes, "IPC counts original instructions only; kills are pure fetch/decode overhead (paper §3)")
	return t, nil
}

// Fig13EDVIOverhead measures the cost of the kill annotations.
func Fig13EDVIOverhead(opt Options) (Table, error) { return runOne("fig13", opt, fig13Build) }

// --- smt (multi-context) ---

var (
	// smtContexts is the hardware-context sweep (the single-context point
	// anchors the curves to the paper machine).
	smtContexts = []int{1, 2, 4, 8}
	// smtPolicies are the fetch arbitration policies compared at each
	// context count.
	smtPolicies = []ooo.FetchPolicy{ooo.FetchRoundRobin, ooo.FetchICOUNT}
	// smtBenchmarks are the multiprogramming workloads: both are
	// save/restore-active, so DVI's elimination benefit is visible per
	// context.
	smtBenchmarks = []string{"li", "gcc"}
)

// smtPoliciesFor returns the fetch policies worth running at n contexts:
// arbitration cannot matter with one context, so the single-context
// anchor runs once under the default policy.
func smtPoliciesFor(n int) []ooo.FetchPolicy {
	if n == 1 {
		return smtPolicies[:1]
	}
	return smtPolicies
}

// smtLevels are the two DVI configurations each grid cell compares.
var smtLevels = []core.Level{core.None, core.Full}

// smtJobs declares the multiprogramming grid: per benchmark and context
// count, a (fetch policy × DVI level) block where every context runs its
// own copy of the workload through one shared core. The physical register
// file scales as 32·N architectural mappings plus the paper machine's 64
// renaming registers, so rename headroom per context is constant across
// the sweep and DVI's early reclamation stays comparable to the
// single-context runs.
func smtJobs(opt Options) []runner.Job {
	var jobs []runner.Job
	for _, name := range smtBenchmarks {
		s, _ := workload.ByName(name)
		for _, n := range smtContexts {
			for _, policy := range smtPoliciesFor(n) {
				for _, level := range smtLevels {
					scheme := emu.ElimOff
					if level == core.Full {
						scheme = emu.ElimLVMStack
					}
					cfg := timingConfig(level, scheme, opt.MaxInsts)
					cfg.Contexts = n
					cfg.FetchPolicy = policy
					cfg.PhysRegs = 32*n + 64
					jobs = append(jobs, timingJob(
						fmt.Sprintf("smt %s %dctx %s %s", name, n, policy, level),
						s, opt, session.BuildOptionsFor(level).EDVI, cfg))
				}
			}
		}
	}
	return jobs
}

// smtCheck enforces the per-context accounting invariant the figure
// reports: context committed-instruction and save/restore-elimination
// counts must sum to the machine's aggregate.
func smtCheck(r runner.Result) error {
	if len(r.CtxStats) == 0 {
		return nil
	}
	var committed, elim uint64
	for _, c := range r.CtxStats {
		committed += c.Committed
		elim += c.ElimSaves + c.ElimRests
	}
	if committed != r.Timing.Committed || elim != r.Timing.ElimSaves+r.Timing.ElimRests {
		return fmt.Errorf("smt %s: per-context accounting (committed %d, elim %d) does not sum to aggregate (committed %d, elim %d)",
			r.Job.Label, committed, elim, r.Timing.Committed, r.Timing.ElimSaves+r.Timing.ElimRests)
	}
	return nil
}

// smtPerCtx renders one column value per hardware context, separated by
// "/" (single-context machines report the aggregate, which is the only
// context).
func smtPerCtx(r runner.Result, f func(ooo.Stats) string) string {
	if len(r.CtxStats) == 0 {
		return f(r.Timing)
	}
	parts := make([]string, len(r.CtxStats))
	for i, c := range r.CtxStats {
		parts[i] = f(c)
	}
	return strings.Join(parts, "/")
}

// smtBuild renders the multi-context study: aggregate throughput without
// and with DVI, the DVI speedup, each context's share of the throughput,
// each context's save/restore eliminations, and the change in L1 D-cache
// misses per thousand committed instructions (elimination removes stack
// traffic, so the delta should be negative where saves/restores are hot).
func smtBuild(opt Options, res []runner.Result) (Table, error) {
	t := Table{
		ID:    "smt",
		Title: "Multi-context (SMT) throughput and DVI benefit",
		Header: []string{"Benchmark", "Ctxs", "Fetch", "IPC no DVI", "IPC full DVI", "DVI gain",
			"Per-ctx IPC (full)", "S/R elim per ctx", "dL1D miss/kI"},
		Notes: []string{
			"each context runs its own copy of the benchmark through one shared core; PhysRegs = 32*N + 64",
			"dL1D miss/kI: L1 D-cache misses per 1000 committed instructions, full DVI minus no DVI",
		},
	}
	mpki := func(st ooo.Stats) float64 { return 1000 * ratio(st.L1D.Misses, st.Committed) }
	idx := 0
	for _, name := range smtBenchmarks {
		for _, n := range smtContexts {
			for _, policy := range smtPoliciesFor(n) {
				if idx+1 >= len(res) {
					return t, fmt.Errorf("smt: %d results, grid needs more", len(res))
				}
				base, full := res[idx], res[idx+1]
				idx += 2
				if err := smtCheck(base); err != nil {
					return t, err
				}
				if err := smtCheck(full); err != nil {
					return t, err
				}
				t.Rows = append(t.Rows, []string{
					name,
					fmt.Sprintf("%d", n),
					policy.String(),
					f3(base.Timing.IPC()),
					f3(full.Timing.IPC()),
					fmt.Sprintf("%+.1f%%", 100*(full.Timing.IPC()/base.Timing.IPC()-1)),
					smtPerCtx(full, func(st ooo.Stats) string { return f2(st.IPC()) }),
					smtPerCtx(full, func(st ooo.Stats) string { return u64(st.ElimSaves + st.ElimRests) }),
					fmt.Sprintf("%+.2f", mpki(full.Timing)-mpki(base.Timing)),
				})
			}
		}
	}
	return t, nil
}

// SMTThroughput runs the multi-context study.
func SMTThroughput(opt Options) (Table, error) { return runOne("smt", opt, smtBuild) }

// --- ablations ---

var ablationDepths = []int{1, 2, 4, 8, 16, 32, 64}

// ablationStackJobs sweeps the LVM-Stack depth per benchmark.
func ablationStackJobs(opt Options) []runner.Job {
	var jobs []runner.Job
	for _, s := range workload.SaveRestoreActive() {
		for _, d := range ablationDepths {
			jobs = append(jobs, funcJob(
				fmt.Sprintf("ablation-stack %s depth=%d", s.Name, d),
				s, opt, workload.BuildOptions{EDVI: true},
				emu.Config{
					DVI:    core.Config{Level: core.Full, ABI: isa.DefaultABI(), StackDepth: d},
					Scheme: emu.ElimLVMStack,
				}))
		}
	}
	return jobs
}

// ablationStackBuild renders restores eliminated vs stack depth (paper
// §5.2: 16 entries capture nearly all of the benefit; li needs the most).
func ablationStackBuild(opt Options, res []runner.Result) (Table, error) {
	t := Table{
		ID:    "ablation-stack",
		Title: "Restores eliminated vs LVM-Stack depth (fraction of depth-64 benefit)",
		Header: append([]string{"Benchmark"}, func() []string {
			var h []string
			for _, d := range ablationDepths {
				h = append(h, fmt.Sprintf("%d", d))
			}
			return h
		}()...),
	}
	for i := 0; i+len(ablationDepths)-1 < len(res); i += len(ablationDepths) {
		best := res[i+len(ablationDepths)-1].Func.RestoresElim
		row := []string{res[i].Job.Workload.Name}
		for j := range ablationDepths {
			row = append(row, pct(ratio(res[i+j].Func.RestoresElim, best)))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// AblationStackDepth sweeps the LVM-Stack depth.
func AblationStackDepth(opt Options) (Table, error) {
	return runOne("ablation-stack", opt, ablationStackBuild)
}

var killPolicies = []rewrite.Policy{rewrite.KillsBeforeCalls, rewrite.KillsAtDeath}

// ablationKillsJobs compares the two kill placement encodings per
// benchmark. The policy is part of the build key, so the two runs use
// distinct cached binaries.
func ablationKillsJobs(opt Options) []runner.Job {
	var jobs []runner.Job
	for _, s := range workload.SaveRestoreActive() {
		for _, policy := range killPolicies {
			jobs = append(jobs, funcJob(
				fmt.Sprintf("ablation-kills %s policy=%d", s.Name, policy),
				s, opt, workload.BuildOptions{EDVI: true, Policy: policy},
				emu.Config{DVI: core.DefaultConfig(), Scheme: emu.ElimLVMStack}))
		}
	}
	return jobs
}

// ablationKillsBuild renders the paper's kills-before-calls encoding
// against the denser kills-at-death placement (§9 "interesting design
// points").
func ablationKillsBuild(opt Options, res []runner.Result) (Table, error) {
	t := Table{
		ID:     "ablation-kills",
		Title:  "E-DVI encoding density: kills before calls vs kills at death",
		Header: []string{"Benchmark", "Kills/inst (calls)", "Kills/inst (death)", "s/r elim (calls)", "s/r elim (death)"},
	}
	for i := 0; i+1 < len(res); i += 2 {
		var killFrac, elimFrac [2]float64
		for j := 0; j < 2; j++ {
			st := res[i+j].Func
			killFrac[j] = ratio(st.Kills, st.Original())
			elimFrac[j] = ratio(st.SavesElim+st.RestoresElim, st.SavesRestores())
		}
		t.Rows = append(t.Rows, []string{res[i].Job.Workload.Name,
			pct(killFrac[0]), pct(killFrac[1]), pct(elimFrac[0]), pct(elimFrac[1])})
	}
	return t, nil
}

// AblationKillPlacement compares kill placement policies.
func AblationKillPlacement(opt Options) (Table, error) {
	return runOne("ablation-kills", opt, ablationKillsBuild)
}

var wrongPathBenchmarks = []string{"gcc", "li", "go"}

// ablationWrongPathJobs declares wrong-path-on/off timing pairs at a
// small register file.
func ablationWrongPathJobs(opt Options) []runner.Job {
	var jobs []runner.Job
	for _, name := range wrongPathBenchmarks {
		s, _ := workload.ByName(name)
		on := timingConfig(core.Full, emu.ElimLVMStack, opt.sweepBudget())
		on.PhysRegs = 38
		off := on
		off.WrongPathFetch = false
		jobs = append(jobs,
			timingJob("ablation-wrongpath "+name+" on", s, opt, true, on),
			timingJob("ablation-wrongpath "+name+" off", s, opt, true, off))
	}
	return jobs
}

// ablationWrongPathBuild renders the effect of wrong-path fetch
// modelling on the Figure 5 register pressure result.
func ablationWrongPathBuild(opt Options, res []runner.Result) (Table, error) {
	t := Table{
		ID:     "ablation-wrongpath",
		Title:  "Wrong-path fetch modelling (38-register file, full DVI)",
		Header: []string{"Benchmark", "IPC (wrong-path fetch)", "IPC (fetch stall)", "Wrong-path insts"},
	}
	ci := anySampled(res)
	if ci {
		t.Header = append(t.Header, "±CI")
		t.Notes = append(t.Notes, sampledNote(res))
	}
	for i := 0; i+1 < len(res); i += 2 {
		stOn, stOff := res[i].Timing, res[i+1].Timing
		row := []string{res[i].Job.Workload.Name,
			f3(stOn.IPC()), f3(stOff.IPC()), u64(stOn.WrongPath)}
		if ci {
			row = append(row, pct(maxRelCI(res[i], res[i+1])))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// AblationWrongPath measures the effect of wrong-path fetch modelling.
func AblationWrongPath(opt Options) (Table, error) {
	return runOne("ablation-wrongpath", opt, ablationWrongPathBuild)
}

// --- Inferred-annotation study ---

// inferJobs declares, per benchmark (all seven — inference must handle
// compress's structure too, even if it eliminates little there), two
// functional runs under the LVM-Stack scheme: the hand-annotated E-DVI
// binary and the inferred flavour, whose kills the interprocedural
// analysis discovers from the machine code alone.
func inferJobs(opt Options) []runner.Job {
	cfg := emu.Config{DVI: core.DefaultConfig(), Scheme: emu.ElimLVMStack}
	var jobs []runner.Job
	for _, s := range workload.All() {
		jobs = append(jobs,
			funcJob("infer "+s.Name+" hand", s, opt, workload.BuildOptions{EDVI: true}, cfg),
			funcJob("infer "+s.Name+" inferred", s, opt, workload.BuildOptions{Infer: true}, cfg))
	}
	return jobs
}

// inferBuild renders the elimination rate each annotation engine reaches
// (eliminated saves+restores over total save/restore instances) and the
// recovery share: the fraction of the hand-annotated engine's
// eliminations the inference pass recovers without any compiler hints.
// Both flavours run the same program, so the architectural work count
// must agree — a mismatch is a soundness bug, not a measurement.
func inferBuild(opt Options, res []runner.Result) (Table, error) {
	t := Table{
		ID:    "infer",
		Title: "Save/restore elimination: inferred annotations vs hand annotations (LVM-Stack)",
		Header: []string{"Benchmark",
			"Hand elim", "Inferred elim", "Hand %s/r", "Inferred %s/r", "Recovery"},
		Notes: []string{
			"Recovery = inferred eliminations / hand eliminations; the inference pass sees only the machine code.",
		},
	}
	var aggHand, aggInf, aggRec float64
	n := 0
	for i := 0; i+1 < len(res); i += 2 {
		hand, inf := res[i].Func, res[i+1].Func
		if hand.Original() != inf.Original() {
			return Table{}, fmt.Errorf("infer %s: architectural work differs between flavours (%d vs %d insts)",
				res[i].Job.Workload.Name, hand.Original(), inf.Original())
		}
		handElim := hand.SavesElim + hand.RestoresElim
		infElim := inf.SavesElim + inf.RestoresElim
		frHand := ratio(handElim, hand.SavesRestores())
		frInf := ratio(infElim, inf.SavesRestores())
		rec := ratio(infElim, handElim)
		t.Rows = append(t.Rows, []string{res[i].Job.Workload.Name,
			u64(handElim), u64(infElim), pct(frHand), pct(frInf), pct(rec)})
		aggHand += frHand
		aggInf += frInf
		aggRec += rec
		n++
	}
	if n > 0 {
		t.Rows = append(t.Rows, []string{"average", "", "",
			pct(aggHand / float64(n)), pct(aggInf / float64(n)), pct(aggRec / float64(n))})
	}
	return t, nil
}

// InferredElimination compares the inference pass against the hand
// annotations across the full suite.
func InferredElimination(opt Options) (Table, error) { return runOne("infer", opt, inferBuild) }
