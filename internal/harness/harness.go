// Package harness defines the paper's experiments: one figure per table
// or figure in the evaluation (Figures 2, 3, 5, 6, 9, 10, 11, 12, 13),
// plus the ablations DESIGN.md calls out. Each experiment declares a grid
// of simulation jobs and renders the grid's results into formatted
// Tables; internal/runner executes the grids on a bounded worker pool
// over a shared memoized build cache, so the full report saturates the
// machine while each (workload, scale, edvi) binary is compiled exactly
// once. RunAll writes the full report; reports are byte-identical at any
// worker count.
package harness

import (
	"fmt"
	"strings"

	"dvi/internal/core"
	"dvi/internal/emu"
	"dvi/internal/isa"
	"dvi/internal/ooo"
	"dvi/internal/runner"
	"dvi/internal/sample"
)

// Options scales the experiments.
type Options struct {
	// Scale multiplies workload iteration counts (1 = a few hundred
	// thousand instructions per benchmark).
	Scale int
	// MaxInsts caps committed instructions per timing simulation
	// (0 = run to completion).
	MaxInsts uint64
	// SweepMaxInsts caps runs inside large parameter sweeps (Figure 5);
	// defaults to MaxInsts.
	SweepMaxInsts uint64
	// Workers bounds the experiment engine's worker pool
	// (<=0 = runtime.GOMAXPROCS(0)). Results are deterministic at any
	// setting; only wall-clock changes.
	Workers int
	// Sampling, when set, runs every timing job through the statistical
	// sampler (internal/sample) instead of exact detailed simulation:
	// IPC figures become estimates, gain ±CI error-bound columns, and
	// the report runs several times faster. Exact mode (nil) is the
	// default and its output is byte-identical to previous releases.
	Sampling *sample.Options
}

// DefaultOptions returns a configuration that regenerates every figure in
// a few minutes.
func DefaultOptions() Options {
	return Options{Scale: 1, MaxInsts: 400_000, SweepMaxInsts: 120_000}
}

func (o Options) sweepBudget() uint64 {
	if o.SweepMaxInsts != 0 {
		return o.SweepMaxInsts
	}
	return o.MaxInsts
}

// Table is a formatted experiment result.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// String renders the table as aligned text.
func (t Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s: %s ===\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// anySampled reports whether a figure's results came through the
// statistical sampler (Options.Sampling). Renderers use it to gate the
// ±CI error-bound column so exact-mode tables stay byte-identical.
func anySampled(res []runner.Result) bool {
	for _, r := range res {
		if r.Sampled != nil {
			return true
		}
	}
	return false
}

// maxRelCI returns the widest relative confidence-interval half-width
// among the results' sampled estimates — the worst-case error bound for a
// table row derived from them. Exact results contribute zero.
func maxRelCI(res ...runner.Result) float64 {
	var worst float64
	for _, r := range res {
		if r.Sampled != nil && r.Sampled.RelCI > worst {
			worst = r.Sampled.RelCI
		}
	}
	return worst
}

// sampledNote describes a sampled figure's plan for the table notes.
func sampledNote(res []runner.Result) string {
	for _, r := range res {
		if r.Sampled != nil {
			return fmt.Sprintf("sampled: interval %d, warmup %d; ±CI is the row's worst-case %.0f%% relative half-width",
				r.Sampled.Interval, r.Sampled.Warmup, 100*r.Sampled.Confidence)
		}
	}
	return ""
}

func pct(x float64) string { return fmt.Sprintf("%.1f%%", 100*x) }
func f2(x float64) string  { return fmt.Sprintf("%.2f", x) }
func f3(x float64) string  { return fmt.Sprintf("%.3f", x) }
func u64(x uint64) string  { return fmt.Sprintf("%d", x) }
func ratio(a, b uint64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// dviLevels are the three Figure 5 configurations in presentation order.
var dviLevels = []core.Level{core.None, core.IDVI, core.Full}

// timingConfig builds the machine for one (level, scheme) combination.
func timingConfig(level core.Level, scheme emu.Scheme, budget uint64) ooo.Config {
	cfg := ooo.DefaultConfig()
	cfg.MaxInsts = budget
	cfg.Emu.Scheme = scheme
	switch level {
	case core.None:
		cfg.Emu.DVI = core.Config{Level: core.None}
	case core.IDVI:
		cfg.Emu.DVI = core.Config{Level: core.IDVI, ABI: isa.DefaultABI()}
	default:
		cfg.Emu.DVI = core.DefaultConfig()
	}
	return cfg
}
