// Package harness defines the paper's experiments: one function per table
// or figure in the evaluation (Figures 2, 3, 5, 6, 9, 10, 11, 12, 13),
// plus the ablations DESIGN.md calls out. Each returns a formatted Table;
// RunAll writes the full report.
package harness

import (
	"fmt"
	"io"
	"strings"

	"dvi/internal/cacti"
	"dvi/internal/core"
	"dvi/internal/ctxswitch"
	"dvi/internal/emu"
	"dvi/internal/isa"
	"dvi/internal/ooo"
	"dvi/internal/rewrite"
	"dvi/internal/workload"
)

// Options scales the experiments.
type Options struct {
	// Scale multiplies workload iteration counts (1 = a few hundred
	// thousand instructions per benchmark).
	Scale int
	// MaxInsts caps committed instructions per timing simulation
	// (0 = run to completion).
	MaxInsts uint64
	// SweepMaxInsts caps runs inside large parameter sweeps (Figure 5);
	// defaults to MaxInsts.
	SweepMaxInsts uint64
}

// DefaultOptions returns a configuration that regenerates every figure in
// a few minutes.
func DefaultOptions() Options {
	return Options{Scale: 1, MaxInsts: 400_000, SweepMaxInsts: 120_000}
}

func (o Options) sweepBudget() uint64 {
	if o.SweepMaxInsts != 0 {
		return o.SweepMaxInsts
	}
	return o.MaxInsts
}

// Table is a formatted experiment result.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// String renders the table as aligned text.
func (t Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s: %s ===\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

func pct(x float64) string { return fmt.Sprintf("%.1f%%", 100*x) }
func f2(x float64) string  { return fmt.Sprintf("%.2f", x) }
func f3(x float64) string  { return fmt.Sprintf("%.3f", x) }
func u64(x uint64) string  { return fmt.Sprintf("%d", x) }
func ratio(a, b uint64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// dviLevels are the three Figure 5 configurations in presentation order.
var dviLevels = []core.Level{core.None, core.IDVI, core.Full}

// timingConfig builds the machine for one (level, scheme) combination.
func timingConfig(level core.Level, scheme emu.Scheme, budget uint64) ooo.Config {
	cfg := ooo.DefaultConfig()
	cfg.MaxInsts = budget
	cfg.Emu.Scheme = scheme
	switch level {
	case core.None:
		cfg.Emu.DVI = core.Config{Level: core.None}
	case core.IDVI:
		cfg.Emu.DVI = core.Config{Level: core.IDVI, ABI: isa.DefaultABI()}
	default:
		cfg.Emu.DVI = core.DefaultConfig()
	}
	return cfg
}

// runTiming compiles one benchmark (with or without E-DVI annotations) and
// simulates it.
func runTiming(spec workload.Spec, scale int, edvi bool, cfg ooo.Config) (ooo.Stats, error) {
	pr, img, err := workload.CompileSpec(spec, scale, workload.BuildOptions{EDVI: edvi})
	if err != nil {
		return ooo.Stats{}, err
	}
	m := ooo.New(pr, img, cfg)
	return m.Run()
}

// Fig2MachineConfig reproduces the machine configuration table.
func Fig2MachineConfig() Table {
	c := ooo.DefaultConfig()
	h := c.Hierarchy
	return Table{
		ID:     "fig2",
		Title:  "Machine configuration",
		Header: []string{"Parameter", "Value"},
		Rows: [][]string{
			{"Issue Width", fmt.Sprintf("%d", c.IssueWidth)},
			{"Inst. Window", fmt.Sprintf("%d", c.WindowSize)},
			{"Func. Units", fmt.Sprintf("%d int (%d mul/div)", c.IntALUs, c.IntMulDiv)},
			{"Cache Ports", fmt.Sprintf("%d (fully independent)", c.CachePorts)},
			{"L1 D-Cache", fmt.Sprintf("%dKB, %d-way, %d cycle latency", h.L1D.SizeBytes>>10, h.L1D.Assoc, h.L1D.HitLatency)},
			{"L1 I-Cache", fmt.Sprintf("%dKB, %d-way, %d cycle latency", h.L1I.SizeBytes>>10, h.L1I.Assoc, h.L1I.HitLatency)},
			{"L2 Cache", fmt.Sprintf("%dKB, %d-way, %d cycle latency", h.L2.SizeBytes>>10, h.L2.Assoc, h.L2.HitLatency)},
			{"Memory", fmt.Sprintf("%d cycle latency", h.MemLatency)},
			{"Branch Predictor", "16-bit history gshare/bimod combining, BTB, RAS"},
			{"Phys. Registers", fmt.Sprintf("%d (unconstrained; swept in fig5)", c.PhysRegs)},
		},
	}
}

// Fig3Characterization reproduces the benchmark characterization table:
// dynamic instructions, and calls, memory references, and saves/restores
// as a percentage of dynamic instructions.
func Fig3Characterization(opt Options) (Table, error) {
	t := Table{
		ID:     "fig3",
		Title:  "Benchmark characterization (baseline binaries, functional run)",
		Header: []string{"Benchmark", "Dynamic Inst", "Call Inst", "Mem Inst", "Saves & Restores"},
	}
	for _, s := range workload.All() {
		pr, img, err := workload.CompileSpec(s, opt.Scale, workload.BuildOptions{})
		if err != nil {
			return t, err
		}
		e := emu.New(pr, img, emu.Config{DVI: core.Config{Level: core.None}})
		if err := e.Run(200_000_000); err != nil {
			return t, fmt.Errorf("%s: %w", s.Name, err)
		}
		st := e.Stats
		t.Rows = append(t.Rows, []string{
			s.Name,
			u64(st.Original()),
			pct(ratio(st.Calls, st.Original())),
			pct(ratio(st.MemRefs, st.Original())),
			pct(ratio(st.SavesRestores(), st.Original())),
		})
	}
	return t, nil
}

// Fig5Point is one (size, level) IPC measurement.
type Fig5Point struct {
	Regs  int
	Level core.Level
	IPC   float64 // unweighted mean over the suite
}

// Fig5Sizes is the register file sweep (the paper's x axis runs 34..96).
var Fig5Sizes = []int{34, 38, 42, 46, 50, 54, 58, 62, 66, 70, 74, 78, 82, 86, 90, 94, 96}

// Fig5RegfileIPC sweeps physical register file sizes for the three DVI
// levels and reports the suite-mean IPC. Save/restore elimination is off
// so the register-reclamation effect is isolated (§4's subject); E-DVI
// runs use annotated binaries (their kills add fetch overhead but also
// reclaim callee-saved registers early).
func Fig5RegfileIPC(opt Options) (Table, []Fig5Point, error) {
	t := Table{
		ID:     "fig5",
		Title:  "Average IPC vs physical register file size",
		Header: []string{"Regs", "No DVI", "I-DVI", "E-DVI and I-DVI"},
		Notes:  []string{"unweighted arithmetic mean IPC over the 7 benchmarks (paper §4.2)"},
	}
	var points []Fig5Point
	suite := workload.All()
	for _, regs := range Fig5Sizes {
		row := []string{fmt.Sprintf("%d", regs)}
		for _, level := range dviLevels {
			var sum float64
			for _, s := range suite {
				cfg := timingConfig(level, emu.ElimOff, opt.sweepBudget())
				cfg.PhysRegs = regs
				st, err := runTiming(s, opt.Scale, level == core.Full, cfg)
				if err != nil {
					return t, nil, fmt.Errorf("%s @%d regs: %w", s.Name, regs, err)
				}
				sum += st.IPC()
			}
			mean := sum / float64(len(suite))
			points = append(points, Fig5Point{Regs: regs, Level: level, IPC: mean})
			row = append(row, f3(mean))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, points, nil
}

// Fig6Performance divides the Figure 5 IPC curves by the CACTI register
// file access time and reports relative performance plus the peak
// locations (the paper's 64-vs-50 result).
func Fig6Performance(opt Options, points []Fig5Point) (Table, error) {
	t := Table{
		ID:     "fig6",
		Title:  "Relative performance (IPC / register file access time) vs size",
		Header: []string{"Regs", "No DVI", "I-DVI", "E-DVI and I-DVI"},
	}
	model := cacti.Default()
	width := ooo.DefaultConfig().IssueWidth

	perf := map[core.Level]map[int]float64{}
	for _, l := range dviLevels {
		perf[l] = map[int]float64{}
	}
	for _, p := range points {
		perf[p.Level][p.Regs] = model.RelativePerformance(p.IPC, p.Regs, width)
	}
	// Normalize to the no-DVI peak (the paper's horizontal reference).
	base := 0.0
	for _, v := range perf[core.None] {
		if v > base {
			base = v
		}
	}
	if base == 0 {
		return t, fmt.Errorf("fig6: no baseline data")
	}
	peakAt := map[core.Level]int{}
	peakVal := map[core.Level]float64{}
	for _, regs := range Fig5Sizes {
		row := []string{fmt.Sprintf("%d", regs)}
		for _, l := range dviLevels {
			v := perf[l][regs] / base
			row = append(row, f3(v))
			if v > peakVal[l] {
				peakVal[l], peakAt[l] = v, regs
			}
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("peak: No DVI %.3f at %d regs; E+I-DVI %.3f at %d regs", peakVal[core.None], peakAt[core.None], peakVal[core.Full], peakAt[core.Full]),
		fmt.Sprintf("register file size reduction at peak: %.0f%%; performance change: %+.1f%%",
			100*(1-float64(peakAt[core.Full])/float64(peakAt[core.None])),
			100*(peakVal[core.Full]-peakVal[core.None])))
	return t, nil
}

// Fig9Eliminated reports dynamic saves and restores eliminated as a
// percentage of (a) total saves+restores, (b) total memory references, and
// (c) total instructions, for the LVM (saves only) and LVM-Stack schemes.
// These are program properties, so the functional emulator suffices
// (paper: "independent of the processor configuration").
func Fig9Eliminated(opt Options) (Table, error) {
	t := Table{
		ID:    "fig9",
		Title: "Dynamic saves and restores eliminated (E-DVI and I-DVI binaries)",
		Header: []string{"Benchmark",
			"LVM %s/r", "LVM-Stack %s/r",
			"LVM %mem", "LVM-Stack %mem",
			"LVM %inst", "LVM-Stack %inst"},
	}
	var aggSR, aggMem, aggInst [2]float64
	n := 0
	for _, s := range workload.SaveRestoreActive() {
		pr, img, err := workload.CompileSpec(s, opt.Scale, workload.BuildOptions{EDVI: true})
		if err != nil {
			return t, err
		}
		// Baseline denominators come from a no-elimination run.
		base := emu.New(pr, img, emu.Config{DVI: core.DefaultConfig(), Scheme: emu.ElimOff})
		if err := base.Run(200_000_000); err != nil {
			return t, err
		}
		totSR := base.Stats.SavesRestores()
		totMem := base.Stats.MemRefs
		totInst := base.Stats.Original()

		row := []string{s.Name}
		var frSR, frMem, frInst [2]float64
		for i, scheme := range []emu.Scheme{emu.ElimLVM, emu.ElimLVMStack} {
			e := emu.New(pr, img, emu.Config{DVI: core.DefaultConfig(), Scheme: scheme})
			if err := e.Run(200_000_000); err != nil {
				return t, err
			}
			elim := e.Stats.SavesElim + e.Stats.RestoresElim
			frSR[i] = ratio(elim, totSR)
			frMem[i] = ratio(elim, totMem)
			frInst[i] = ratio(elim, totInst)
			aggSR[i] += frSR[i]
			aggMem[i] += frMem[i]
			aggInst[i] += frInst[i]
		}
		row = append(row, pct(frSR[0]), pct(frSR[1]), pct(frMem[0]), pct(frMem[1]), pct(frInst[0]), pct(frInst[1]))
		t.Rows = append(t.Rows, row)
		n++
	}
	t.Rows = append(t.Rows, []string{"average",
		pct(aggSR[0] / float64(n)), pct(aggSR[1] / float64(n)),
		pct(aggMem[0] / float64(n)), pct(aggMem[1] / float64(n)),
		pct(aggInst[0] / float64(n)), pct(aggInst[1] / float64(n))})
	return t, nil
}

// Fig10Speedups reports IPC gains from save/restore elimination: the LVM
// scheme (saves only) and the LVM-Stack scheme against a no-DVI baseline
// on unannotated binaries.
func Fig10Speedups(opt Options) (Table, error) {
	t := Table{
		ID:     "fig10",
		Title:  "IPC speedups from dead save/restore elimination",
		Header: []string{"Benchmark", "Base IPC", "LVM (saves)", "LVM-Stack (saves+restores)"},
	}
	for _, s := range workload.SaveRestoreActive() {
		base, err := runTiming(s, opt.Scale, false, timingConfig(core.None, emu.ElimOff, opt.MaxInsts))
		if err != nil {
			return t, err
		}
		lvm, err := runTiming(s, opt.Scale, true, timingConfig(core.Full, emu.ElimLVM, opt.MaxInsts))
		if err != nil {
			return t, err
		}
		stack, err := runTiming(s, opt.Scale, true, timingConfig(core.Full, emu.ElimLVMStack, opt.MaxInsts))
		if err != nil {
			return t, err
		}
		t.Rows = append(t.Rows, []string{
			s.Name, f2(base.IPC()),
			fmt.Sprintf("%+.1f%%", 100*(lvm.IPC()/base.IPC()-1)),
			fmt.Sprintf("%+.1f%%", 100*(stack.IPC()/base.IPC()-1)),
		})
	}
	return t, nil
}

// Fig11PortSensitivity reproduces the cache bandwidth sensitivity study:
// LVM-Stack speedup over baseline for 1/2/3 cache ports at 4- and 8-wide
// issue, on the paper's two example benchmarks.
func Fig11PortSensitivity(opt Options) (Table, error) {
	t := Table{
		ID:     "fig11",
		Title:  "Cache bandwidth sensitivity of save/restore elimination",
		Header: []string{"Benchmark", "Width", "1 Port", "2 Ports", "3 Ports"},
	}
	for _, name := range []string{"gcc", "ijpeg"} {
		s, _ := workload.ByName(name)
		for _, width := range []int{4, 8} {
			row := []string{name, fmt.Sprintf("%d-way", width)}
			for _, ports := range []int{1, 2, 3} {
				baseCfg := timingConfig(core.None, emu.ElimOff, opt.MaxInsts)
				baseCfg.IssueWidth, baseCfg.CachePorts = width, ports
				base, err := runTiming(s, opt.Scale, false, baseCfg)
				if err != nil {
					return t, err
				}
				optCfg := timingConfig(core.Full, emu.ElimLVMStack, opt.MaxInsts)
				optCfg.IssueWidth, optCfg.CachePorts = width, ports
				st, err := runTiming(s, opt.Scale, true, optCfg)
				if err != nil {
					return t, err
				}
				row = append(row, fmt.Sprintf("%+.1f%%", 100*(st.IPC()/base.IPC()-1)))
			}
			t.Rows = append(t.Rows, row)
		}
	}
	return t, nil
}

// Fig12ContextSwitch reports the reduction in integer registers saved and
// restored at context switch time, with I-DVI only and with E-DVI+I-DVI.
func Fig12ContextSwitch(opt Options) (Table, error) {
	t := Table{
		ID:     "fig12",
		Title:  "Context switch saves and restores eliminated",
		Header: []string{"Benchmark", "I-DVI", "E-DVI and I-DVI", "Avg live (full DVI)"},
	}
	var sumI, sumF float64
	n := 0
	for _, s := range workload.SaveRestoreActive() {
		pr, img, err := workload.CompileSpec(s, opt.Scale, workload.BuildOptions{EDVI: true})
		if err != nil {
			return t, err
		}
		budget := opt.MaxInsts
		if budget == 0 {
			budget = 400_000
		}
		iRes, err := ctxswitch.Measure(pr, img, emu.Config{DVI: core.Config{Level: core.IDVI, ABI: isa.DefaultABI()}}, 997, budget)
		if err != nil {
			return t, fmt.Errorf("%s: %w", s.Name, err)
		}
		fRes, err := ctxswitch.Measure(pr, img, emu.Config{DVI: core.DefaultConfig()}, 997, budget)
		if err != nil {
			return t, fmt.Errorf("%s: %w", s.Name, err)
		}
		t.Rows = append(t.Rows, []string{s.Name, pct(iRes.Reduction), pct(fRes.Reduction), f2(fRes.AvgLive)})
		sumI += iRes.Reduction
		sumF += fRes.Reduction
		n++
	}
	t.Rows = append(t.Rows, []string{"average", pct(sumI / float64(n)), pct(sumF / float64(n)), ""})
	return t, nil
}

// Fig13EDVIOverhead measures the cost of the kill annotations with the DVI
// optimizations disabled: dynamic fetched-instruction overhead, static
// code growth, and the IPC deltas with 32KB and 64KB instruction caches.
func Fig13EDVIOverhead(opt Options) (Table, error) {
	t := Table{
		ID:     "fig13",
		Title:  "E-DVI overhead (DVI optimizations disabled)",
		Header: []string{"Benchmark", "Dyn Inst", "Code Size", "IPC ovhd 32K I$", "IPC ovhd 64K I$"},
	}
	for _, s := range workload.All() {
		plainPr, plainImg, err := workload.CompileSpec(s, opt.Scale, workload.BuildOptions{})
		if err != nil {
			return t, err
		}
		edviPr, edviImg, err := workload.CompileSpec(s, opt.Scale, workload.BuildOptions{EDVI: true})
		if err != nil {
			return t, err
		}
		_ = plainPr
		_ = edviPr

		// Dynamic overhead: kills fetched per original instruction.
		e := emu.New(edviPr, edviImg, emu.Config{DVI: core.Config{Level: core.None}})
		if err := e.Run(200_000_000); err != nil {
			return t, err
		}
		dyn := ratio(e.Stats.Kills, e.Stats.Original())
		static := float64(edviImg.TextWords())/float64(plainImg.TextWords()) - 1

		row := []string{s.Name, pct(dyn), pct(static)}
		for _, icacheKB := range []int{32, 64} {
			mk := func(edvi bool) (ooo.Stats, error) {
				cfg := timingConfig(core.None, emu.ElimOff, opt.MaxInsts)
				cfg.Hierarchy.L1I.SizeBytes = icacheKB << 10
				return runTiming(s, opt.Scale, edvi, cfg)
			}
			base, err := mk(false)
			if err != nil {
				return t, err
			}
			with, err := mk(true)
			if err != nil {
				return t, err
			}
			// Overhead: positive = slower with annotations.
			row = append(row, fmt.Sprintf("%+.2f%%", 100*(base.IPC()/with.IPC()-1)))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes, "IPC counts original instructions only; kills are pure fetch/decode overhead (paper §3)")
	return t, nil
}

// RunAll regenerates every table and writes them to w.
func RunAll(opt Options, w io.Writer) error {
	fmt.Fprintln(w, Fig2MachineConfig())

	t3, err := Fig3Characterization(opt)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, t3)

	t5, points, err := Fig5RegfileIPC(opt)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, t5)

	t6, err := Fig6Performance(opt, points)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, t6)

	t9, err := Fig9Eliminated(opt)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, t9)

	t10, err := Fig10Speedups(opt)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, t10)

	t11, err := Fig11PortSensitivity(opt)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, t11)

	t12, err := Fig12ContextSwitch(opt)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, t12)

	t13, err := Fig13EDVIOverhead(opt)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, t13)
	return nil
}

// --- ablations ---

// AblationStackDepth sweeps the LVM-Stack depth (paper §5.2: 16 entries
// capture nearly all of the benefit; li needs the most).
func AblationStackDepth(opt Options) (Table, error) {
	depths := []int{1, 2, 4, 8, 16, 32, 64}
	t := Table{
		ID:    "ablation-stack",
		Title: "Restores eliminated vs LVM-Stack depth (fraction of depth-64 benefit)",
		Header: append([]string{"Benchmark"}, func() []string {
			var h []string
			for _, d := range depths {
				h = append(h, fmt.Sprintf("%d", d))
			}
			return h
		}()...),
	}
	for _, s := range workload.SaveRestoreActive() {
		pr, img, err := workload.CompileSpec(s, opt.Scale, workload.BuildOptions{EDVI: true})
		if err != nil {
			return t, err
		}
		elims := make([]uint64, len(depths))
		for i, d := range depths {
			cfg := emu.Config{
				DVI:    core.Config{Level: core.Full, ABI: isa.DefaultABI(), StackDepth: d},
				Scheme: emu.ElimLVMStack,
			}
			e := emu.New(pr, img, cfg)
			if err := e.Run(200_000_000); err != nil {
				return t, err
			}
			elims[i] = e.Stats.RestoresElim
		}
		best := elims[len(elims)-1]
		row := []string{s.Name}
		for _, v := range elims {
			row = append(row, pct(ratio(v, best)))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// AblationKillPlacement compares the paper's kills-before-calls encoding
// with the denser kills-at-death placement (§9 "interesting design
// points").
func AblationKillPlacement(opt Options) (Table, error) {
	t := Table{
		ID:     "ablation-kills",
		Title:  "E-DVI encoding density: kills before calls vs kills at death",
		Header: []string{"Benchmark", "Kills/inst (calls)", "Kills/inst (death)", "s/r elim (calls)", "s/r elim (death)"},
	}
	for _, s := range workload.SaveRestoreActive() {
		var killFrac, elimFrac [2]float64
		for i, policy := range []rewrite.Policy{rewrite.KillsBeforeCalls, rewrite.KillsAtDeath} {
			pr, img, err := workload.CompileSpec(s, opt.Scale, workload.BuildOptions{EDVI: true, Policy: policy})
			if err != nil {
				return t, err
			}
			e := emu.New(pr, img, emu.Config{DVI: core.DefaultConfig(), Scheme: emu.ElimLVMStack})
			if err := e.Run(200_000_000); err != nil {
				return t, err
			}
			killFrac[i] = ratio(e.Stats.Kills, e.Stats.Original())
			elimFrac[i] = ratio(e.Stats.SavesElim+e.Stats.RestoresElim, e.Stats.SavesRestores())
		}
		t.Rows = append(t.Rows, []string{s.Name,
			pct(killFrac[0]), pct(killFrac[1]), pct(elimFrac[0]), pct(elimFrac[1])})
	}
	return t, nil
}

// AblationWrongPath measures the effect of wrong-path fetch modelling on
// the Figure 5 register pressure result at a small file size.
func AblationWrongPath(opt Options) (Table, error) {
	t := Table{
		ID:     "ablation-wrongpath",
		Title:  "Wrong-path fetch modelling (38-register file, full DVI)",
		Header: []string{"Benchmark", "IPC (wrong-path fetch)", "IPC (fetch stall)", "Wrong-path insts"},
	}
	for _, name := range []string{"gcc", "li", "go"} {
		s, _ := workload.ByName(name)
		on := timingConfig(core.Full, emu.ElimLVMStack, opt.sweepBudget())
		on.PhysRegs = 38
		stOn, err := runTiming(s, opt.Scale, true, on)
		if err != nil {
			return t, err
		}
		off := on
		off.WrongPathFetch = false
		stOff, err := runTiming(s, opt.Scale, true, off)
		if err != nil {
			return t, err
		}
		t.Rows = append(t.Rows, []string{name, f3(stOn.IPC()), f3(stOff.IPC()), u64(stOn.WrongPath)})
	}
	return t, nil
}
