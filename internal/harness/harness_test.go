package harness

import (
	"bytes"
	"context"
	"strconv"
	"strings"
	"testing"

	"dvi/internal/core"
	"dvi/internal/workload"
)

// small returns options sized for unit testing (seconds, not minutes).
func small() Options {
	return Options{Scale: 1, MaxInsts: 50_000, SweepMaxInsts: 25_000}
}

func TestTableRendering(t *testing.T) {
	tab := Table{
		ID:     "x",
		Title:  "demo",
		Header: []string{"A", "Blong"},
		Rows:   [][]string{{"aaa", "b"}, {"a", "bbbbbb"}},
		Notes:  []string{"hello"},
	}
	s := tab.String()
	for _, want := range []string{"=== x: demo ===", "Blong", "aaa", "note: hello"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendered table missing %q:\n%s", want, s)
		}
	}
}

func TestFig2Static(t *testing.T) {
	tab := Fig2MachineConfig()
	s := tab.String()
	for _, want := range []string{"Issue Width", "64KB, 4-way", "512KB", "gshare/bimod"} {
		if !strings.Contains(s, want) {
			t.Errorf("fig2 missing %q", want)
		}
	}
}

func TestFig3Shapes(t *testing.T) {
	tab, err := Fig3Characterization(small())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 7 {
		t.Fatalf("fig3 rows = %d, want 7", len(tab.Rows))
	}
	if tab.Rows[0][0] != "compress" || tab.Rows[6][0] != "gcc" {
		t.Error("fig3 benchmark order wrong")
	}
}

func TestFig9AverageAndOrdering(t *testing.T) {
	tab, err := Fig9Eliminated(small())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 7 { // 6 benchmarks + average
		t.Fatalf("fig9 rows = %d", len(tab.Rows))
	}
	// LVM-Stack must eliminate at least as much as LVM-only, per row.
	for _, row := range tab.Rows {
		lvm := parsePct(t, row[1])
		stack := parsePct(t, row[2])
		if stack < lvm {
			t.Errorf("%s: LVM-Stack %.1f < LVM %.1f", row[0], stack, lvm)
		}
	}
}

func parsePct(t *testing.T, s string) float64 {
	t.Helper()
	s = strings.TrimSuffix(s, "%")
	s = strings.TrimPrefix(s, "+")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("bad percent %q: %v", s, err)
	}
	return v
}

func TestFig12Reductions(t *testing.T) {
	tab, err := Fig12ContextSwitch(small())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 7 {
		t.Fatalf("fig12 rows = %d", len(tab.Rows))
	}
	for _, row := range tab.Rows[:6] {
		idvi := parsePct(t, row[1])
		full := parsePct(t, row[2])
		if full < idvi {
			t.Errorf("%s: full DVI %.1f%% < I-DVI %.1f%%", row[0], full, idvi)
		}
		if idvi < 10 {
			t.Errorf("%s: I-DVI reduction %.1f%% implausibly low", row[0], idvi)
		}
	}
}

func TestFig5And6SmallSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep in -short mode")
	}
	// A reduced sweep to keep runtime down: patch the sizes temporarily.
	saved := Fig5Sizes
	Fig5Sizes = []int{34, 42, 58, 96}
	defer func() { Fig5Sizes = saved }()

	tab, points, err := Fig5RegfileIPC(small())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// IPC must be non-decreasing-ish with file size for each level, and
	// DVI must beat no-DVI at the smallest size.
	byLevel := map[core.Level][]float64{}
	for _, p := range points {
		byLevel[p.Level] = append(byLevel[p.Level], p.IPC)
	}
	for level, ipcs := range byLevel {
		if ipcs[len(ipcs)-1] < ipcs[0]*0.98 {
			t.Errorf("level %v: IPC decreases with larger file: %v", level, ipcs)
		}
	}
	noDVI := byLevel[core.None]
	idvi := byLevel[core.IDVI]
	if idvi[0] <= noDVI[0] {
		t.Errorf("at 34 regs I-DVI IPC %.3f <= no-DVI %.3f; reclamation should help", idvi[0], noDVI[0])
	}
	// Small files must hurt the no-DVI machine noticeably.
	if noDVI[0] > noDVI[len(noDVI)-1]*0.95 {
		t.Errorf("no-DVI IPC at 34 regs (%.3f) too close to unconstrained (%.3f)",
			noDVI[0], noDVI[len(noDVI)-1])
	}

	t6, err := Fig6Performance(small(), points)
	if err != nil {
		t.Fatal(err)
	}
	if len(t6.Notes) < 2 {
		t.Error("fig6 missing peak notes")
	}
}

func TestFig10AndFig11(t *testing.T) {
	if testing.Short() {
		t.Skip("timing studies in -short mode")
	}
	t10, err := Fig10Speedups(small())
	if err != nil {
		t.Fatal(err)
	}
	if len(t10.Rows) != 6 {
		t.Fatalf("fig10 rows = %d", len(t10.Rows))
	}
	t11, err := Fig11PortSensitivity(small())
	if err != nil {
		t.Fatal(err)
	}
	if len(t11.Rows) != 4 {
		t.Fatalf("fig11 rows = %d", len(t11.Rows))
	}
}

func TestFig13Overheads(t *testing.T) {
	if testing.Short() {
		t.Skip("timing studies in -short mode")
	}
	tab, err := Fig13EDVIOverhead(small())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		dyn := parsePct(t, row[1])
		if dyn < 0 || dyn > 15 {
			t.Errorf("%s: dynamic overhead %.1f%% out of plausible range", row[0], dyn)
		}
	}
}

func TestAblations(t *testing.T) {
	if testing.Short() {
		t.Skip("ablations in -short mode")
	}
	stack, err := AblationStackDepth(small())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range stack.Rows {
		// Depth 64 is the normalization target: the last column is 100%.
		if row[len(row)-1] != "100.0%" {
			t.Errorf("%s: depth-64 column = %s", row[0], row[len(row)-1])
		}
		// Monotone non-decreasing in depth.
		prev := -1.0
		for _, c := range row[1:] {
			v := parsePct(t, c)
			if v+0.01 < prev {
				t.Errorf("%s: benefit not monotone with depth: %v", row[0], row[1:])
				break
			}
			prev = v
		}
	}
	kills, err := AblationKillPlacement(small())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range kills.Rows {
		ck := parsePct(t, row[1])
		dk := parsePct(t, row[2])
		if dk < ck {
			t.Errorf("%s: at-death kill density %.2f%% < before-calls %.2f%%", row[0], dk, ck)
		}
	}
}

// TestSMTFigure runs a reduced multi-context study and pins its
// contracts: the renderer verifies per-context elim/commit accounting
// sums to the aggregate (it errors otherwise), multi-context rows report
// one IPC per hardware context, and the table is byte-identical at any
// worker count.
func TestSMTFigure(t *testing.T) {
	if testing.Short() {
		t.Skip("timing studies in -short mode")
	}
	savedCtx, savedBench := smtContexts, smtBenchmarks
	smtContexts = []int{1, 2, 4}
	smtBenchmarks = []string{"li"}
	defer func() { smtContexts, smtBenchmarks = savedCtx, savedBench }()

	opt := small()
	opt.Workers = 1
	tab, err := SMTThroughput(opt)
	if err != nil {
		t.Fatal(err)
	}
	// n=1 runs one policy; n=2 and n=4 run both.
	if len(tab.Rows) != 5 {
		t.Fatalf("smt rows = %d, want 5", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		n, _ := strconv.Atoi(row[1])
		perCtx := strings.Split(row[6], "/")
		if len(perCtx) != n {
			t.Errorf("%d-context row reports %d per-ctx IPC values: %q", n, len(perCtx), row[6])
		}
		for _, v := range perCtx {
			ipc, err := strconv.ParseFloat(v, 64)
			if err != nil || ipc <= 0 {
				t.Errorf("per-ctx IPC %q not a positive number", v)
			}
		}
	}
	// The DVI gain column must be a sane percentage (its sign depends on
	// how much kill-annotation fetch overhead the register headroom hides
	// at this budget).
	for _, row := range tab.Rows {
		if gain := parsePct(t, row[5]); gain < -50 || gain > 100 {
			t.Errorf("%s ctx=%s %s: DVI gain %.1f%% out of range", row[0], row[1], row[2], gain)
		}
	}

	opt.Workers = 8
	tab8, err := SMTThroughput(opt)
	if err != nil {
		t.Fatal(err)
	}
	if tab.String() != tab8.String() {
		t.Errorf("smt table differs between -j1 and -j8:\n%s\n---\n%s", tab, tab8)
	}
}

// TestRunAllDeterministicAcrossWorkers asserts the byte-identical-report
// contract: the full RunAll report at -j 1 equals the report at -j 8.
func TestRunAllDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("full report in -short mode")
	}
	opt := small()
	opt.Workers = 1
	var seq bytes.Buffer
	if err := RunAll(opt, &seq); err != nil {
		t.Fatal(err)
	}
	opt.Workers = 8
	var par bytes.Buffer
	if err := RunAll(opt, &par); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(seq.Bytes(), par.Bytes()) {
		t.Errorf("report differs between -j1 (%d bytes) and -j8 (%d bytes)",
			seq.Len(), par.Len())
	}
}

// TestSharedEngineBuildsOncePerKey submits every report figure's grid
// through one engine and checks each distinct (workload, scale, edvi)
// binary was compiled exactly once: the nine figures reference only the
// seven plain and seven annotated binaries.
func TestSharedEngineBuildsOncePerKey(t *testing.T) {
	if testing.Short() {
		t.Skip("full report in -short mode")
	}
	opt := small()
	opt.Workers = 4
	sess := NewSession(opt, nil)
	rs, err := CollectResults(context.Background(), sess, opt, ReportIDs())
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"fig3", "fig5", "fig9", "fig10", "fig11", "fig12", "fig13"} {
		if len(rs[id]) == 0 {
			t.Errorf("no results for %s", id)
		}
	}
	hits, misses := sess.Cache().Stats()
	want := int64(2 * len(workload.All())) // plain + edvi per benchmark
	if misses != want {
		t.Errorf("compiled %d distinct binaries, want %d", misses, want)
	}
	if int(misses) != sess.Cache().Len() {
		t.Errorf("misses %d != cache entries %d: some key compiled twice", misses, sess.Cache().Len())
	}
	if hits == 0 {
		t.Error("no cache hits across a full report")
	}
}

// TestRunFiguresSubsetAndUnknown covers -figures selection: a subset
// renders only the selected tables (dependencies run but do not print),
// and unknown IDs fail.
func TestRunFiguresSubsetAndUnknown(t *testing.T) {
	opt := small()
	var buf bytes.Buffer
	sess := NewSession(opt, nil)
	if err := RunFigures(context.Background(), sess, opt, []string{"fig2", "fig3"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "=== fig2") || !strings.Contains(out, "=== fig3") {
		t.Errorf("subset output missing selected figures:\n%s", out)
	}
	if strings.Contains(out, "=== fig9") {
		t.Error("subset output contains unselected figure")
	}
	if err := RunFigures(context.Background(), sess, opt, []string{"fig99"}, &buf); err == nil {
		t.Error("unknown figure did not error")
	}
}

func TestInferFigure(t *testing.T) {
	tab, err := InferredElimination(small())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 8 { // 7 benchmarks + average
		t.Fatalf("infer rows = %d", len(tab.Rows))
	}
	// The inference pass must recover a real share of the hand-annotated
	// eliminations somewhere in the suite; the average row keeps the
	// figure honest about how much.
	avg := tab.Rows[len(tab.Rows)-1]
	if avg[0] != "average" {
		t.Fatalf("last row is %q, want average", avg[0])
	}
	if rec := parsePct(t, avg[5]); rec <= 0 {
		t.Fatalf("average recovery share %.1f%%, want > 0", rec)
	}
	// No ordering assertion between the columns: inference may trail the
	// hand annotations (it is conservative at anything it cannot prove)
	// or beat them (interprocedural faint values reach kills the
	// compiler's per-call-site liveness never sees). Soundness is what
	// inferBuild enforces — both flavours must do identical architectural
	// work — and what the rewrite package's differential fuzz verifies.
	for _, row := range tab.Rows[:7] {
		for _, col := range []int{3, 4} {
			if v := parsePct(t, row[col]); v < 0 || v > 100 {
				t.Errorf("%s: elimination fraction %q out of range", row[0], row[col])
			}
		}
	}
}
