package harness

import (
	"context"
	"strings"
	"testing"

	"dvi/internal/sample"
)

// TestSampledReportAddsCIColumn pins the two sides of the sampling
// surface: a sampled run's IPC tables gain the ±CI error-bound column
// (with a methodology note), and an exact run's tables do not mention CI
// at all — exact output stays byte-identical to previous releases.
func TestSampledReportAddsCIColumn(t *testing.T) {
	opt := DefaultOptions()
	opt.MaxInsts = 120_000
	opt.Sampling = &sample.Options{Interval: 4000, Warmup: 1000, Period: 4}

	sess := NewSession(opt, nil)
	rs, err := CollectResults(context.Background(), sess, opt, []string{"fig10"})
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := fig10Build(opt, rs["fig10"])
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Header[len(tbl.Header)-1] != "±CI" {
		t.Errorf("sampled fig10 header %v lacks the ±CI column", tbl.Header)
	}
	for _, row := range tbl.Rows {
		if len(row) != len(tbl.Header) {
			t.Errorf("row %v does not fill the ±CI column", row)
		}
	}
	if !strings.Contains(tbl.String(), "sampled: interval 4000") {
		t.Error("sampled table missing the methodology note")
	}

	exact := opt
	exact.Sampling = nil
	ers, err := CollectResults(context.Background(), NewSession(exact, nil), exact, []string{"fig10"})
	if err != nil {
		t.Fatal(err)
	}
	etbl, err := fig10Build(exact, ers["fig10"])
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(etbl.String(), "CI") {
		t.Errorf("exact fig10 output mentions CI:\n%s", etbl)
	}
}
