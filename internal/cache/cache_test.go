package cache

import (
	"math/rand"
	"testing"
)

// tiny returns a 2-set, 2-way cache with 16-byte lines over a 100-cycle
// memory: small enough to reason about exactly.
func tiny() (*Cache, *MainMemory) {
	m := &MainMemory{Latency: 100}
	c := New(Config{Name: "t", SizeBytes: 64, Assoc: 2, LineBytes: 16, HitLatency: 1}, m)
	return c, m
}

func TestColdMissThenHit(t *testing.T) {
	c, _ := tiny()
	if lat := c.Access(0x40, false); lat != 101 {
		t.Errorf("cold miss latency = %d, want 101", lat)
	}
	if lat := c.Access(0x48, false); lat != 1 {
		t.Errorf("same-line hit latency = %d, want 1", lat)
	}
	if c.Stats.Accesses != 2 || c.Stats.Misses != 1 {
		t.Errorf("stats = %+v", c.Stats)
	}
}

func TestSetIndexing(t *testing.T) {
	c, _ := tiny()
	// 16-byte lines, 2 sets: addresses 0x00 and 0x10 map to different sets.
	c.Access(0x00, false)
	c.Access(0x10, false)
	if !c.Probe(0x00) || !c.Probe(0x10) {
		t.Error("different sets evicted each other")
	}
}

func TestLRUReplacement(t *testing.T) {
	c, _ := tiny()
	// Set 0 holds lines 0x00, 0x20, 0x40... (stride 0x20 with 2 sets).
	c.Access(0x00, false)
	c.Access(0x20, false)
	c.Access(0x00, false) // touch 0x00: 0x20 becomes LRU
	c.Access(0x40, false) // evicts 0x20
	if !c.Probe(0x00) {
		t.Error("MRU line evicted")
	}
	if c.Probe(0x20) {
		t.Error("LRU line survived")
	}
	if !c.Probe(0x40) {
		t.Error("filled line missing")
	}
}

func TestProbeDoesNotDisturb(t *testing.T) {
	c, _ := tiny()
	c.Access(0x00, false)
	c.Access(0x20, false)
	for i := 0; i < 10; i++ {
		c.Probe(0x20) // must not refresh LRU
	}
	c.Access(0x00, false)
	c.Access(0x40, false) // should evict 0x20 (LRU by access order)
	if c.Probe(0x20) {
		t.Error("probe refreshed LRU state")
	}
	if got := c.Stats.Accesses; got != 4 {
		t.Errorf("probe counted as access: %d", got)
	}
}

func TestWriteAllocate(t *testing.T) {
	c, _ := tiny()
	if lat := c.Access(0x80, true); lat != 101 {
		t.Errorf("write miss latency = %d", lat)
	}
	if !c.Probe(0x80) {
		t.Error("write did not allocate")
	}
	if c.Stats.Writes != 1 {
		t.Errorf("writes = %d", c.Stats.Writes)
	}
}

func TestHierarchyLatencies(t *testing.T) {
	h := NewHierarchy(DefaultHierarchyConfig())
	// Cold: L1 miss + L2 miss + memory.
	want := 1 + 8 + 50
	if lat := h.L1D.Access(0x1000, false); lat != want {
		t.Errorf("cold latency = %d, want %d", lat, want)
	}
	// L1 hit.
	if lat := h.L1D.Access(0x1000, false); lat != 1 {
		t.Errorf("L1 hit = %d", lat)
	}
	// Evicted from L1 but resident in L2: 64KB 4-way, 32B lines -> 512
	// sets; stride 512*32 = 16KB conflicts in L1. L2 has 2048 sets of 64B
	// lines so these do not conflict there.
	for i := 1; i <= 4; i++ {
		h.L1D.Access(0x1000+uint64(i)*16384, false)
	}
	if lat := h.L1D.Access(0x1000, false); lat != 1+8 {
		t.Errorf("L2 hit latency = %d, want 9", lat)
	}
}

func TestInstructionFetchSharesL2(t *testing.T) {
	h := NewHierarchy(DefaultHierarchyConfig())
	h.L1I.Access(0x2000, false) // warms L2 too
	if lat := h.L1D.Access(0x2000, false); lat != 1+8 {
		t.Errorf("data access after fetch = %d, want L2 hit 9", lat)
	}
}

func TestMissRate(t *testing.T) {
	c, _ := tiny()
	for i := 0; i < 8; i++ {
		c.Access(uint64(i)*16, false) // 8 lines, 4-line cache: all miss
	}
	if r := c.Stats.MissRate(); r != 1.0 {
		t.Errorf("miss rate = %f", r)
	}
	var s Stats
	if s.MissRate() != 0 {
		t.Error("idle miss rate should be 0")
	}
}

func TestAgainstReferenceModel(t *testing.T) {
	// Fully random small-address stream; compare hit/miss against a
	// straightforward reference implementation (map of sets with LRU
	// lists).
	r := rand.New(rand.NewSource(5))
	mm := &MainMemory{Latency: 10}
	c := New(Config{Name: "ref", SizeBytes: 256, Assoc: 4, LineBytes: 16, HitLatency: 1}, mm)
	nSets := 256 / 16 / 4
	type refLine struct {
		tag  uint64
		used int
	}
	ref := make([][]refLine, nSets)
	tick := 0
	for i := 0; i < 20000; i++ {
		addr := uint64(r.Intn(4096))
		lineAddr := addr >> 4
		set := int(lineAddr) % nSets
		tick++
		hitRef := false
		for j := range ref[set] {
			if ref[set][j].tag == lineAddr {
				ref[set][j].used = tick
				hitRef = true
				break
			}
		}
		if !hitRef {
			if len(ref[set]) < 4 {
				ref[set] = append(ref[set], refLine{lineAddr, tick})
			} else {
				v := 0
				for j := 1; j < 4; j++ {
					if ref[set][j].used < ref[set][v].used {
						v = j
					}
				}
				ref[set][v] = refLine{lineAddr, tick}
			}
		}
		hitSim := c.Probe(addr)
		if hitSim != hitRef {
			t.Fatalf("access %d addr %#x: sim hit=%v ref hit=%v", i, addr, hitSim, hitRef)
		}
		c.Access(addr, r.Intn(4) == 0)
	}
}

func TestBadGeometryPanics(t *testing.T) {
	for _, cfg := range []Config{
		{Name: "badline", SizeBytes: 64, Assoc: 2, LineBytes: 12, HitLatency: 1},
		{Name: "badassoc", SizeBytes: 64, Assoc: 3, LineBytes: 16, HitLatency: 1},
		{Name: "badsets", SizeBytes: 96, Assoc: 2, LineBytes: 16, HitLatency: 1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", cfg.Name)
				}
			}()
			New(cfg, &MainMemory{Latency: 1})
		}()
	}
}

func TestLineAddr(t *testing.T) {
	c, _ := tiny()
	if c.LineAddr(0x47) != 0x40 {
		t.Errorf("LineAddr(0x47) = %#x", c.LineAddr(0x47))
	}
}

func TestCaptureRestoreRoundTrip(t *testing.T) {
	h := NewHierarchy(HierarchyConfig{
		L1I:        Config{Name: "il1", SizeBytes: 1 << 12, Assoc: 2, LineBytes: 32, HitLatency: 1},
		L1D:        Config{Name: "dl1", SizeBytes: 1 << 12, Assoc: 2, LineBytes: 32, HitLatency: 1},
		L2:         Config{Name: "ul2", SizeBytes: 1 << 14, Assoc: 4, LineBytes: 64, HitLatency: 8},
		MemLatency: 50,
	})
	for i := uint64(0); i < 200; i++ {
		h.L1I.Access(i*32, false)
		h.L1D.Access(i*64, i%3 == 0)
	}

	var snap HierarchySnapshot
	h.Capture(&snap)
	statsI, statsD, stats2 := h.L1I.Stats, h.L1D.Stats, h.L2.Stats

	// Trash the state, then restore.
	h.Reset()
	h.L1D.Access(0x9999, true)
	h.Restore(&snap)

	if h.L1I.Stats != statsI || h.L1D.Stats != statsD || h.L2.Stats != stats2 {
		t.Fatal("restore did not reinstate statistics")
	}
	// A line hot at capture time must hit again without a miss.
	miss := h.L1D.Stats.Misses
	h.L1D.Access(199*64, false)
	if h.L1D.Stats.Misses != miss {
		t.Fatal("hot line lost across capture/restore")
	}

	// Steady-state captures into a warm snapshot must not allocate.
	allocs := testing.AllocsPerRun(10, func() { h.Capture(&snap) })
	if allocs > 0 {
		t.Errorf("steady-state capture allocates %.1f/op, want 0", allocs)
	}
}
