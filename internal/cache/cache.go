// Package cache models the memory hierarchy of the simulated machine:
// set-associative L1 instruction and data caches backed by a unified L2 and
// a fixed-latency main memory (paper Figure 2). Caches return access
// latencies and keep hit/miss statistics; port arbitration is performed by
// the pipeline (ports are a per-cycle resource, not cache state).
package cache

import "fmt"

// Level is anything that can service an access and report its latency.
type Level interface {
	// Access services a read or write of the line containing addr and
	// returns the total latency in cycles.
	Access(addr uint64, write bool) int
	// Probe reports whether addr currently hits without disturbing state.
	Probe(addr uint64) bool
}

// MainMemory is the terminal level: fixed latency, always hits.
type MainMemory struct {
	Latency  int
	Accesses uint64
}

// Access counts the access and returns the fixed latency.
func (m *MainMemory) Access(addr uint64, write bool) int {
	m.Accesses++
	return m.Latency
}

// Probe always hits.
func (m *MainMemory) Probe(addr uint64) bool { return true }

// Config describes one cache.
type Config struct {
	Name       string
	SizeBytes  int
	Assoc      int
	LineBytes  int
	HitLatency int
}

// Stats counts accesses at one level.
type Stats struct {
	Accesses uint64
	Misses   uint64
	Writes   uint64
}

// MissRate returns misses/accesses, 0 for an idle cache.
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

type line struct {
	tag   uint64
	valid bool
	used  uint64 // LRU timestamp
}

// Cache is a set-associative, write-allocate cache with true-LRU
// replacement. Write-back traffic is not charged (documented in DESIGN.md);
// the experiments depend on load/store port pressure and miss latency.
type Cache struct {
	cfg   Config
	next  Level
	sets  [][]line
	tick  uint64
	shift uint // log2(LineBytes)
	mask  uint64

	Stats Stats
}

// New builds a cache in front of next. Size, associativity and line size
// must be powers of two with Size = sets*Assoc*LineBytes.
func New(cfg Config, next Level) *Cache {
	if cfg.LineBytes <= 0 || cfg.LineBytes&(cfg.LineBytes-1) != 0 {
		panic(fmt.Sprintf("cache %s: line size %d not a power of two", cfg.Name, cfg.LineBytes))
	}
	nLines := cfg.SizeBytes / cfg.LineBytes
	if cfg.Assoc <= 0 || nLines%cfg.Assoc != 0 {
		panic(fmt.Sprintf("cache %s: %d lines not divisible by assoc %d", cfg.Name, nLines, cfg.Assoc))
	}
	nSets := nLines / cfg.Assoc
	if nSets == 0 || nSets&(nSets-1) != 0 {
		panic(fmt.Sprintf("cache %s: set count %d not a power of two", cfg.Name, nSets))
	}
	c := &Cache{cfg: cfg, next: next, mask: uint64(nSets - 1)}
	for s := cfg.LineBytes; s > 1; s >>= 1 {
		c.shift++
	}
	c.sets = make([][]line, nSets)
	backing := make([]line, nSets*cfg.Assoc)
	for i := range c.sets {
		c.sets[i] = backing[i*cfg.Assoc : (i+1)*cfg.Assoc]
	}
	return c
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

// LineBytes returns the line size.
func (c *Cache) LineBytes() int { return c.cfg.LineBytes }

func (c *Cache) find(addr uint64) (set []line, tag uint64, way int) {
	lineAddr := addr >> c.shift
	set = c.sets[lineAddr&c.mask]
	tag = lineAddr // full line address as tag (set bits redundant but harmless)
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			return set, tag, i
		}
	}
	return set, tag, -1
}

// Access services the access, filling on miss, and returns total latency.
func (c *Cache) Access(addr uint64, write bool) int {
	c.tick++
	c.Stats.Accesses++
	if write {
		c.Stats.Writes++
	}
	set, tag, way := c.find(addr)
	if way >= 0 {
		set[way].used = c.tick
		if way != 0 {
			// Move-to-front so the next access to this line (the common
			// case: sequential fetch, hot loops) hits on the first tag
			// compare. Replacement is by the used timestamps, so the
			// within-set order carries no semantics.
			set[0], set[way] = set[way], set[0]
		}
		return c.cfg.HitLatency
	}
	c.Stats.Misses++
	lat := c.cfg.HitLatency + c.next.Access(addr, write)
	// Fill: evict true-LRU victim.
	victim := 0
	for i := 1; i < len(set); i++ {
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].used < set[victim].used {
			victim = i
		}
	}
	set[victim] = line{tag: tag, valid: true, used: c.tick}
	return lat
}

// Probe reports a hit without updating LRU or statistics.
func (c *Cache) Probe(addr uint64) bool {
	_, _, way := c.find(addr)
	return way >= 0
}

// Reset invalidates every line and zeroes the statistics, returning the
// cache to its freshly-constructed state without reallocating the arrays.
func (c *Cache) Reset() {
	for _, set := range c.sets {
		for i := range set {
			set[i] = line{}
		}
	}
	c.tick = 0
	c.Stats = Stats{}
}

// LineAddr returns the line-aligned address containing addr.
func (c *Cache) LineAddr(addr uint64) uint64 { return addr &^ (uint64(c.cfg.LineBytes) - 1) }

// Snapshot captures one cache's full content — tags, validity, LRU
// timestamps, statistics — so a functionally-warmed cache can be
// transplanted into a pooled machine at a sampled-simulation checkpoint.
// The line array is reused across captures (pooled checkpoint buffers
// reach a zero-allocation steady state).
type Snapshot struct {
	lines []line
	tick  uint64
	stats Stats
}

// Capture fills dst with the cache's current state.
func (c *Cache) Capture(dst *Snapshot) {
	need := len(c.sets) * c.cfg.Assoc
	if cap(dst.lines) < need {
		dst.lines = make([]line, need)
	}
	dst.lines = dst.lines[:need]
	for i, set := range c.sets {
		copy(dst.lines[i*c.cfg.Assoc:], set)
	}
	dst.tick = c.tick
	dst.stats = c.Stats
}

// Restore reinstates a captured state. The cache's geometry must match
// the capturing cache's (the sampler snapshots and restores under one
// machine configuration).
func (c *Cache) Restore(s *Snapshot) {
	if len(s.lines) != len(c.sets)*c.cfg.Assoc {
		panic(fmt.Sprintf("cache %s: restoring snapshot of %d lines into %d", c.cfg.Name, len(s.lines), len(c.sets)*c.cfg.Assoc))
	}
	for i, set := range c.sets {
		copy(set, s.lines[i*c.cfg.Assoc:(i+1)*c.cfg.Assoc])
	}
	c.tick = s.tick
	c.Stats = s.stats
}

// HierarchySnapshot captures a whole memory system's warm state.
type HierarchySnapshot struct {
	L1I, L1D, L2 Snapshot
	MemAccesses  uint64
}

// Capture fills dst with every level's state.
func (h *Hierarchy) Capture(dst *HierarchySnapshot) {
	h.L1I.Capture(&dst.L1I)
	h.L1D.Capture(&dst.L1D)
	h.L2.Capture(&dst.L2)
	dst.MemAccesses = h.Mem.Accesses
}

// Restore reinstates every level from a snapshot of an identically
// configured hierarchy.
func (h *Hierarchy) Restore(s *HierarchySnapshot) {
	h.L1I.Restore(&s.L1I)
	h.L1D.Restore(&s.L1D)
	h.L2.Restore(&s.L2)
	h.Mem.Accesses = s.MemAccesses
}

// Hierarchy bundles the full memory system of one simulated core.
type Hierarchy struct {
	L1I *Cache
	L1D *Cache
	L2  *Cache
	Mem *MainMemory
}

// HierarchyConfig sizes the full memory system.
type HierarchyConfig struct {
	L1I, L1D, L2 Config
	MemLatency   int
}

// DefaultHierarchyConfig returns the paper's Figure 2 memory system:
// 64 KB/4-way/1-cycle split L1s, 512 KB/4-way/8-cycle L2, 32 B lines.
func DefaultHierarchyConfig() HierarchyConfig {
	return HierarchyConfig{
		L1I:        Config{Name: "il1", SizeBytes: 64 << 10, Assoc: 4, LineBytes: 32, HitLatency: 1},
		L1D:        Config{Name: "dl1", SizeBytes: 64 << 10, Assoc: 4, LineBytes: 32, HitLatency: 1},
		L2:         Config{Name: "ul2", SizeBytes: 512 << 10, Assoc: 4, LineBytes: 64, HitLatency: 8},
		MemLatency: 50,
	}
}

// Reset returns every level to its freshly-constructed state, reusing the
// existing arrays.
func (h *Hierarchy) Reset() {
	h.L1I.Reset()
	h.L1D.Reset()
	h.L2.Reset()
	h.Mem.Accesses = 0
}

// NewHierarchy builds the two-level hierarchy.
func NewHierarchy(cfg HierarchyConfig) *Hierarchy {
	mem := &MainMemory{Latency: cfg.MemLatency}
	l2 := New(cfg.L2, mem)
	return &Hierarchy{
		L1I: New(cfg.L1I, l2),
		L1D: New(cfg.L1D, l2),
		L2:  l2,
		Mem: mem,
	}
}
