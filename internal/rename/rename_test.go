package rename

import (
	"math/rand"
	"testing"
)

func TestResetIdentity(t *testing.T) {
	tab := NewTable(40)
	for r := uint8(0); r < NumArch; r++ {
		p, ok := tab.Map(r)
		if !ok || p != PhysReg(r) {
			t.Errorf("Map(%d) = %d,%v", r, p, ok)
		}
		if !tab.Ready(p) {
			t.Errorf("architectural p%d not ready", p)
		}
	}
	if tab.FreeCount() != 8 {
		t.Errorf("free = %d, want 8", tab.FreeCount())
	}
}

func TestRenameAllocatesAndTracksPrev(t *testing.T) {
	tab := NewTable(34)
	newP, prevP, ok := tab.Rename(5)
	if !ok || prevP != 5 {
		t.Fatalf("rename = %d,%d,%v", newP, prevP, ok)
	}
	if newP < NumArch {
		t.Errorf("allocated architectural register %d", newP)
	}
	if tab.Ready(newP) {
		t.Error("fresh allocation already ready")
	}
	p, _ := tab.Map(5)
	if p != newP {
		t.Error("map not updated")
	}
	// Two free registers existed; a second and third rename exhaust them.
	if _, _, ok := tab.Rename(6); !ok {
		t.Fatal("second rename failed")
	}
	if _, _, ok := tab.Rename(7); ok {
		t.Error("rename succeeded with empty free list")
	}
}

func TestFreeRecycles(t *testing.T) {
	tab := NewTable(33)
	newP, prevP, _ := tab.Rename(3)
	tab.Free(prevP) // the overwriting instruction commits
	p2, prev2, ok := tab.Rename(4)
	if !ok {
		t.Fatal("rename after free failed")
	}
	if p2 != prevP {
		t.Errorf("recycled %d, want %d", p2, prevP)
	}
	if prev2 != 4 {
		t.Errorf("prev of r4 = %d", prev2)
	}
	_ = newP
}

func TestDoubleFreePanics(t *testing.T) {
	tab := NewTable(34)
	_, prevP, _ := tab.Rename(1)
	tab.Free(prevP)
	defer func() {
		if recover() == nil {
			t.Error("double free did not panic")
		}
	}()
	tab.Free(prevP)
}

func TestFreeInvalidPanics(t *testing.T) {
	tab := NewTable(34)
	defer func() {
		if recover() == nil {
			t.Error("freeing None did not panic")
		}
	}()
	tab.Free(None)
}

func TestUnmapKill(t *testing.T) {
	tab := NewTable(34)
	victim, ok := tab.Unmap(16)
	if !ok || victim != 16 {
		t.Fatalf("unmap = %d,%v", victim, ok)
	}
	if _, mapped := tab.Map(16); mapped {
		t.Error("register still mapped after kill")
	}
	// Reads of unmapped registers are ready dead values.
	if !tab.Ready(None) {
		t.Error("None must be ready")
	}
	// A kill victim is freed at commit, then reusable.
	tab.Free(victim)
	newP, prevP, ok := tab.Rename(16)
	if !ok || prevP != None {
		t.Fatalf("rename of unmapped = %d,%d,%v", newP, prevP, ok)
	}
	// Double unmap yields nothing.
	if _, ok := tab.Unmap(17); !ok {
		t.Fatal("first unmap failed")
	}
	if _, ok := tab.Unmap(17); ok {
		t.Error("second unmap of same register succeeded")
	}
}

func TestEarlyReclamationGrowsEffectiveFile(t *testing.T) {
	// The §4 scenario: with 33 physical registers only one rename can be
	// outstanding; killing a register and freeing it at commit provides a
	// second allocatable register without any redefinition committing.
	tab := NewTable(33)
	if _, _, ok := tab.Rename(1); !ok {
		t.Fatal("first rename failed")
	}
	if _, _, ok := tab.Rename(2); ok {
		t.Fatal("file should be exhausted")
	}
	victim, _ := tab.Unmap(16) // kill r16 (dead value)
	tab.Free(victim)           // kill commits
	if _, _, ok := tab.Rename(2); !ok {
		t.Error("rename should succeed after DVI reclamation")
	}
}

func TestSnapshotRestoreMapAndRebuild(t *testing.T) {
	tab := NewTable(40)
	// Dispatch three writes, snapshot (branch), then wrong-path writes.
	var inFlightPrev []PhysReg
	for _, r := range []uint8{1, 2, 3} {
		_, prev, ok := tab.Rename(r)
		if !ok {
			t.Fatal("rename failed")
		}
		inFlightPrev = append(inFlightPrev, prev)
	}
	snap := tab.MapSnapshot()
	freeAtSnap := tab.FreeCount()

	for _, r := range []uint8{4, 5, 6, 7} {
		tab.Rename(r) // wrong path
	}
	tab.Unmap(16) // wrong-path kill

	// Recovery: restore map; pin the in-flight instructions' prev regs
	// (their writers haven't committed).
	tab.RestoreMap(snap)
	var used Bits
	for _, p := range inFlightPrev {
		if p != None {
			used.Set(p)
		}
	}
	tab.RebuildFree(&used)
	if tab.FreeCount() != freeAtSnap {
		t.Errorf("free after recovery = %d, want %d", tab.FreeCount(), freeAtSnap)
	}
	if p, ok := tab.Map(16); !ok || p != 16 {
		t.Error("wrong-path kill survived recovery")
	}
	for _, r := range []uint8{4, 5, 6, 7} {
		if p, _ := tab.Map(r); p != PhysReg(r) {
			t.Errorf("wrong-path rename of r%d survived recovery", r)
		}
	}
}

func TestRebuildAfterCommitsBetweenSnapshotAndRecovery(t *testing.T) {
	// The case the reconstruction exists for: a register freed *after* the
	// snapshot (by a committing older instruction) must remain free after
	// recovery even though the snapshot predates the free.
	tab := NewTable(34)
	_, prev, _ := tab.Rename(1) // older instruction X: r1 -> new, prev pinned
	snap := tab.MapSnapshot()
	free0 := tab.FreeCount()
	tab.Rename(2)  // wrong path allocation
	tab.Free(prev) // X commits after the snapshot: prev freed

	tab.RestoreMap(snap)
	var used Bits // X has committed; nothing in flight
	tab.RebuildFree(&used)
	// After recovery the snapshot map holds 32 registers (including X's
	// dest); everything else — X's freed prev and the wrong-path
	// allocation — must be free.
	if want := 34 - 32; tab.FreeCount() != want {
		t.Errorf("free after recovery = %d, want %d (snapshot free was %d)",
			tab.FreeCount(), want, free0)
	}
	if tab.free.Has(prev) != true {
		t.Error("register freed after snapshot lost by recovery")
	}
}

func TestInvariantFreePlusMappedPlusPinned(t *testing.T) {
	// Property: under random rename/kill/commit traffic with a reference
	// model, free + mapped + pinned == nPhys and no register is both free
	// and mapped.
	r := rand.New(rand.NewSource(9))
	const nPhys = 48
	tab := NewTable(nPhys)
	pinned := map[PhysReg]bool{} // prevs and kill victims awaiting commit
	for step := 0; step < 20000; step++ {
		switch r.Intn(3) {
		case 0: // rename
			reg := uint8(r.Intn(NumArch))
			_, prev, ok := tab.Rename(reg)
			if ok && prev != None {
				pinned[prev] = true
			}
		case 1: // kill
			reg := uint8(r.Intn(NumArch))
			if victim, ok := tab.Unmap(reg); ok {
				pinned[victim] = true
			}
		case 2: // commit one pinned entry
			for p := range pinned {
				delete(pinned, p)
				tab.Free(p)
				break
			}
		}
		mapped := 0
		for reg := uint8(0); reg < NumArch; reg++ {
			if p, ok := tab.Map(reg); ok {
				if tab.free.Has(p) {
					t.Fatalf("step %d: p%d both mapped and free", step, p)
				}
				mapped++
			}
		}
		if got := tab.FreeCount() + mapped + len(pinned); got != nPhys {
			t.Fatalf("step %d: free %d + mapped %d + pinned %d = %d != %d",
				step, tab.FreeCount(), mapped, len(pinned), got, nPhys)
		}
	}
}

func TestReadyLifecycle(t *testing.T) {
	tab := NewTable(34)
	p, _, _ := tab.Rename(1)
	if tab.Ready(p) {
		t.Error("ready before writeback")
	}
	tab.SetReady(p)
	if !tab.Ready(p) {
		t.Error("not ready after writeback")
	}
}

func TestBadSizePanics(t *testing.T) {
	for _, n := range []int{0, 32, MaxPhys + 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewTable(%d) did not panic", n)
				}
			}()
			NewTable(n)
		}()
	}
}

func TestBitsSetHasCount(t *testing.T) {
	var b Bits
	b.Set(0)
	b.Set(63)
	b.Set(64)
	b.Set(511)
	if !b.Has(0) || !b.Has(63) || !b.Has(64) || !b.Has(511) || b.Has(1) {
		t.Error("membership wrong")
	}
	if b.Count() != 4 {
		t.Errorf("count = %d", b.Count())
	}
}

// TestWatchers covers the event-scheduler wakeup hooks: registration,
// drain-on-take, recovery purge, and the clear-on-reallocation rule that
// stops a recycled register from waking stale consumers.
func TestWatchers(t *testing.T) {
	tb := NewTable(40)
	p, _, ok := tb.Rename(3)
	if !ok {
		t.Fatal("rename failed")
	}
	tb.Watch(p, 7)
	tb.Watch(p, 9)
	got := tb.TakeWatchers(p)
	if len(got) != 2 || got[0] != 7 || got[1] != 9 {
		t.Fatalf("TakeWatchers = %v, want [7 9]", got)
	}
	if len(tb.TakeWatchers(p)) != 0 {
		t.Fatal("watchers not cleared by take")
	}

	tb.Watch(p, 1)
	tb.Watch(p, 2)
	tb.Watch(p, 3)
	tb.PurgeWatchers(func(tok uint32) bool { return tok != 2 })
	if got := tb.TakeWatchers(p); len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("after purge = %v, want [1 3]", got)
	}

	// A register freed and reallocated must come back watcher-free.
	tb.Watch(p, 5)
	q, prev, ok := tb.Rename(3) // p becomes prev, still watched
	if !ok || prev != p {
		t.Fatalf("rename: q=%d prev=%d ok=%v", q, prev, ok)
	}
	tb.Free(p)
	var reallocated bool
	for i := 0; i < tb.NPhys(); i++ { // drain the free list until p returns
		r, _, ok := tb.Rename(4)
		if !ok {
			break
		}
		if r == p {
			reallocated = true
			break
		}
	}
	if !reallocated {
		t.Fatal("p never reallocated")
	}
	if len(tb.TakeWatchers(p)) != 0 {
		t.Fatal("reallocated register kept stale watchers")
	}

	// Reset clears every list.
	tb.Watch(p, 11)
	tb.Reset()
	if len(tb.TakeWatchers(p)) != 0 {
		t.Fatal("Reset kept watchers")
	}
}

// TestMultiContextTable covers the SMT split: per-context architectural
// maps over one shared physical file and free list.
func TestMultiContextTable(t *testing.T) {
	tb := NewTableCtx(96, 2)
	if tb.NCtx() != 2 || tb.NPhys() != 96 {
		t.Fatalf("NCtx=%d NPhys=%d", tb.NCtx(), tb.NPhys())
	}
	// Reset identity: context c's arch i maps to phys c*NumArch+i.
	for c := 0; c < 2; c++ {
		for r := uint8(0); r < NumArch; r++ {
			p, ok := tb.MapCtx(c, r)
			if !ok || p != PhysReg(c*NumArch+int(r)) {
				t.Fatalf("ctx %d r%d -> %d (ok=%v)", c, r, p, ok)
			}
		}
	}
	if tb.FreeCount() != 96-2*NumArch {
		t.Fatalf("free = %d, want %d", tb.FreeCount(), 96-2*NumArch)
	}

	// Renaming in one context leaves the other's map untouched.
	newP, prevP, ok := tb.RenameCtx(1, 5)
	if !ok || prevP != PhysReg(NumArch+5) {
		t.Fatalf("rename ctx1 r5: new=%d prev=%d ok=%v", newP, prevP, ok)
	}
	if p, _ := tb.MapCtx(0, 5); p != PhysReg(5) {
		t.Fatalf("ctx0 r5 disturbed: %d", p)
	}
	if p, _ := tb.MapCtx(1, 5); p != newP {
		t.Fatalf("ctx1 r5 = %d, want %d", p, newP)
	}

	// Context-scoped unmap (DVI kill).
	victim, ok := tb.UnmapCtx(0, 7)
	if !ok || victim != PhysReg(7) {
		t.Fatalf("unmap ctx0 r7: %d ok=%v", victim, ok)
	}
	if _, mapped := tb.MapCtx(0, 7); mapped {
		t.Fatal("ctx0 r7 still mapped after unmap")
	}
	if _, mapped := tb.MapCtx(1, 7); !mapped {
		t.Fatal("ctx1 r7 lost its mapping")
	}
}

// TestMultiContextSnapshotRestoreRebuild pins context-scoped recovery:
// restoring one context's snapshot and rebuilding the free list must
// preserve the other context's in-flight registers.
func TestMultiContextSnapshotRestoreRebuild(t *testing.T) {
	tb := NewTableCtx(96, 2)
	snap := tb.MapSnapshotCtx(0)

	// Both contexts rename past the snapshot.
	n0, _, _ := tb.RenameCtx(0, 3)
	n1, prev1, _ := tb.RenameCtx(1, 3)

	// Context 0 recovers to its snapshot; context 1's rename survives.
	tb.RestoreMapCtx(0, snap)
	var used Bits
	used.Set(n1)    // ctx 1's in-flight destination
	used.Set(prev1) // ... which pins its previous mapping until commit
	tb.RebuildFree(&used)

	if p, _ := tb.MapCtx(0, 3); p != PhysReg(3) {
		t.Fatalf("ctx0 r3 = %d after restore, want 3", p)
	}
	if p, _ := tb.MapCtx(1, 3); p != n1 {
		t.Fatalf("ctx1 r3 = %d after ctx0 recovery, want %d", p, n1)
	}
	if tb.free.Has(n1) {
		t.Fatal("ctx1's in-flight register freed by ctx0's recovery")
	}
	if !tb.free.Has(n0) {
		t.Fatal("ctx0's squashed register not reclaimed")
	}
	if want := 96 - 2*NumArch - 1; tb.FreeCount() != want {
		t.Fatalf("free = %d, want %d", tb.FreeCount(), want)
	}
}

// TestNewTableCtxBounds pins the per-context minimum file size.
func TestNewTableCtxBounds(t *testing.T) {
	for _, bad := range []struct{ nPhys, nCtx int }{
		{96, 0}, {64, 2}, {2 * NumArch, 2}, {MaxPhys + 1, 1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewTableCtx(%d,%d) did not panic", bad.nPhys, bad.nCtx)
				}
			}()
			NewTableCtx(bad.nPhys, bad.nCtx)
		}()
	}
	if tb := NewTableCtx(2*NumArch+1, 2); tb.FreeCount() != 1 {
		t.Fatalf("minimum 2-context table free = %d, want 1", tb.FreeCount())
	}
}
