// Package rename models MIPS R10000-style register renaming: an
// architectural-to-physical mapping table, a physical register free list,
// and per-physical-register ready bits. The paper's §4 optimization hooks
// in here: DVI lets the pipeline unmap a killed architectural register and
// free its physical register at the kill's commit instead of waiting for
// the next redefinition to commit.
package rename

import (
	"fmt"
	"math/bits"
)

// PhysReg names a physical register.
type PhysReg uint16

// None marks an unmapped architectural register (paper §4: "Between I3 and
// I4 the architectural register r1 is not mapped to any physical
// register").
const None PhysReg = ^PhysReg(0)

// MaxPhys bounds the physical register file size.
const MaxPhys = 512

// NumArch is the number of architectural registers being renamed.
const NumArch = 32

// Bits is a physical register bitset used for free list reconstruction.
type Bits [MaxPhys / 64]uint64

// Set adds p to the set.
func (b *Bits) Set(p PhysReg) { b[p>>6] |= 1 << (p & 63) }

// Has reports membership.
func (b *Bits) Has(p PhysReg) bool { return b[p>>6]&(1<<(p&63)) != 0 }

// Count returns the population count.
func (b *Bits) Count() int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}

// Table is the rename state. One table serves nCtx hardware contexts:
// each context owns a private architectural map (its NumArch-entry slice
// of amap) while the physical register file, free list, ready bits and
// wakeup lists are shared — exactly the SMT split, where renaming keeps
// contexts' in-flight values apart in one physical file.
type Table struct {
	nPhys int
	nCtx  int
	amap  []PhysReg // nCtx×NumArch, context c's map at [c*NumArch, (c+1)*NumArch)
	free  Bits
	nFree int
	ready []bool

	// watch holds, per physical register, the wakeup tokens registered by
	// an event-driven scheduler: opaque consumer identities to be handed
	// back (TakeWatchers) when the register's value is produced. The
	// slices are retained across Reset so a warm table's steady state
	// registers and drains watchers without allocating.
	watch [][]uint32
}

// NewTable builds a single-context table with nPhys physical registers.
// At least NumArch+1 are required for forward progress (the paper's
// "minimum of 32 required to avoid deadlock" counts the architectural
// state; one more is needed to rename anything).
func NewTable(nPhys int) *Table { return NewTableCtx(nPhys, 1) }

// NewTableCtx builds a table shared by nCtx hardware contexts. Each
// context pins NumArch physical registers for its architectural state, so
// nPhys must be at least nCtx*NumArch+1.
func NewTableCtx(nPhys, nCtx int) *Table {
	if nCtx < 1 {
		panic(fmt.Sprintf("rename: nCtx %d < 1", nCtx))
	}
	if nPhys < nCtx*NumArch+1 || nPhys > MaxPhys {
		panic(fmt.Sprintf("rename: nPhys %d out of range [%d,%d] for %d contexts",
			nPhys, nCtx*NumArch+1, MaxPhys, nCtx))
	}
	t := &Table{
		nPhys: nPhys,
		nCtx:  nCtx,
		amap:  make([]PhysReg, nCtx*NumArch),
		ready: make([]bool, nPhys),
		watch: make([][]uint32, nPhys),
	}
	t.Reset()
	return t
}

// Reset installs the identity mapping (context c's arch i -> phys
// c*NumArch+i, all ready) and frees the remainder.
func (t *Table) Reset() {
	t.free = Bits{}
	t.nFree = 0
	for i := range t.amap {
		t.amap[i] = PhysReg(i)
		t.ready[i] = true
	}
	for p := len(t.amap); p < t.nPhys; p++ {
		t.free.Set(PhysReg(p))
		t.ready[p] = false
		t.nFree++
	}
	for i := range t.watch {
		t.watch[i] = t.watch[i][:0]
	}
}

// NPhys returns the file size.
func (t *Table) NPhys() int { return t.nPhys }

// NCtx returns the number of hardware contexts sharing the table.
func (t *Table) NCtx() int { return t.nCtx }

// FreeCount returns the number of free physical registers.
func (t *Table) FreeCount() int { return t.nFree }

// Map returns the physical register currently holding context 0's arch
// register r, or (None, false) if r is unmapped (killed).
func (t *Table) Map(r uint8) (PhysReg, bool) { return t.MapCtx(0, r) }

// MapCtx is Map for hardware context ctx.
func (t *Table) MapCtx(ctx int, r uint8) (PhysReg, bool) {
	p := t.amap[ctx*NumArch+int(r)]
	return p, p != None
}

// allocate pops the lowest-numbered free register.
func (t *Table) allocate() (PhysReg, bool) {
	if t.nFree == 0 {
		return None, false
	}
	for i, w := range t.free {
		if w != 0 {
			bit := uint(bits.TrailingZeros64(w))
			p := PhysReg(i*64) + PhysReg(bit)
			t.free[i] &^= 1 << bit
			t.nFree--
			t.ready[p] = false
			t.watch[p] = t.watch[p][:0] // a recycled register starts with no watchers
			return p, true
		}
	}
	return None, false
}

// Rename allocates a new physical register for a write to context 0's
// arch register r. It returns the new mapping and the previous one (prev
// == None when r was unmapped). ok is false when the free list is empty:
// the pipeline must stall (this is the Figure 5 bottleneck).
func (t *Table) Rename(r uint8) (newP, prevP PhysReg, ok bool) { return t.RenameCtx(0, r) }

// RenameCtx is Rename for hardware context ctx.
func (t *Table) RenameCtx(ctx int, r uint8) (newP, prevP PhysReg, ok bool) {
	newP, ok = t.allocate()
	if !ok {
		return None, None, false
	}
	i := ctx*NumArch + int(r)
	prevP = t.amap[i]
	t.amap[i] = newP
	return newP, prevP, true
}

// Unmap removes context 0's mapping for r (a DVI kill at decode) and
// returns the physical register it held, which the caller must keep
// pinned until the kill commits, then Free.
func (t *Table) Unmap(r uint8) (PhysReg, bool) { return t.UnmapCtx(0, r) }

// UnmapCtx is Unmap for hardware context ctx.
func (t *Table) UnmapCtx(ctx int, r uint8) (PhysReg, bool) {
	i := ctx*NumArch + int(r)
	p := t.amap[i]
	if p == None {
		return None, false
	}
	t.amap[i] = None
	return p, true
}

// Free returns p to the free list (at commit: either the previous mapping
// of a committing definition, or a kill victim).
func (t *Table) Free(p PhysReg) {
	if p == None || int(p) >= t.nPhys {
		panic(fmt.Sprintf("rename: freeing invalid physical register %d", p))
	}
	if t.free.Has(p) {
		panic(fmt.Sprintf("rename: double free of p%d", p))
	}
	t.free.Set(p)
	t.nFree++
}

// Ready reports whether p's value has been produced. None is always ready
// (reads of unmapped registers are dead values).
func (t *Table) Ready(p PhysReg) bool {
	if p == None {
		return true
	}
	return t.ready[p]
}

// SetReady marks p's value produced (writeback).
func (t *Table) SetReady(p PhysReg) { t.ready[p] = true }

// Watch registers a wakeup token on p: TakeWatchers(p) will hand it back
// when p's value is produced. The scheduler registers a token per unready
// source at dispatch instead of re-polling Ready every cycle.
func (t *Table) Watch(p PhysReg, token uint32) {
	t.watch[p] = append(t.watch[p], token)
}

// TakeWatchers returns the tokens watching p and clears the list. The
// returned slice aliases internal storage: the caller must finish with it
// before registering new watchers on p.
func (t *Table) TakeWatchers(p PhysReg) []uint32 {
	w := t.watch[p]
	t.watch[p] = w[:0]
	return w
}

// PurgeWatchers drops every registered token the predicate rejects
// (misprediction recovery: squashed consumers must not be woken). It
// walks all physical registers, which recovery already does to rebuild
// the free list.
func (t *Table) PurgeWatchers(live func(token uint32) bool) {
	for p := range t.watch {
		w := t.watch[p]
		kept := w[:0]
		for _, tok := range w {
			if live(tok) {
				kept = append(kept, tok)
			}
		}
		t.watch[p] = kept
	}
}

// MapSnapshot copies context 0's architectural mapping (taken when a
// mispredicted branch dispatches).
func (t *Table) MapSnapshot() [NumArch]PhysReg { return t.MapSnapshotCtx(0) }

// MapSnapshotCtx is MapSnapshot for hardware context ctx.
func (t *Table) MapSnapshotCtx(ctx int) (m [NumArch]PhysReg) {
	copy(m[:], t.amap[ctx*NumArch:(ctx+1)*NumArch])
	return m
}

// RestoreMap reinstates a context 0 snapshot. The free list must be
// rebuilt afterwards with RebuildFree.
func (t *Table) RestoreMap(m [NumArch]PhysReg) { t.RestoreMapCtx(0, m) }

// RestoreMapCtx is RestoreMap for hardware context ctx. Other contexts'
// maps are untouched: recovery is context-scoped.
func (t *Table) RestoreMapCtx(ctx int, m [NumArch]PhysReg) {
	copy(t.amap[ctx*NumArch:(ctx+1)*NumArch], m[:])
}

// RebuildFree recomputes the free list as "every register not in used".
// The caller marks the dest, previous-mapping, and kill-victim registers
// of every surviving in-flight instruction (across all contexts); the
// table itself marks every register reachable from any context's
// (restored) map. This reconstruction stays correct across commits that
// freed registers after the checkpoint was taken (see DESIGN.md).
func (t *Table) RebuildFree(used *Bits) {
	for i := range t.amap {
		if t.amap[i] != None {
			used.Set(t.amap[i])
		}
	}
	t.free = Bits{}
	t.nFree = 0
	for w := 0; w*64 < t.nPhys; w++ {
		m := ^used[w]
		if hi := t.nPhys - w*64; hi < 64 {
			m &= 1<<uint(hi) - 1
		}
		t.free[w] = m
		t.nFree += bits.OnesCount64(m)
	}
}

// InUse returns nPhys - free (diagnostics and invariant checks).
func (t *Table) InUse() int { return t.nPhys - t.nFree }
