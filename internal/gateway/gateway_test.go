package gateway_test

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"dvi/internal/faults"
	"dvi/internal/gateway"
	"dvi/internal/service"
	"dvi/internal/store"
)

// fastConfig keeps the recovery ladder's timers test-sized.
func fastConfig(backends []string, local *service.Server) gateway.Config {
	return gateway.Config{
		Backends:        backends,
		Local:           local,
		RequestTimeout:  5 * time.Second,
		HedgeAfter:      50 * time.Millisecond,
		Retries:         3,
		BackoffBase:     5 * time.Millisecond,
		BackoffCap:      50 * time.Millisecond,
		BreakerFailures: 3,
		BreakerCooldown: 200 * time.Millisecond,
		HealthInterval:  time.Second,
		Seed:            1,
	}
}

func post(t *testing.T, url, body string) (int, http.Header, []byte) {
	t.Helper()
	res, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer res.Body.Close()
	b, err := io.ReadAll(res.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return res.StatusCode, res.Header, b
}

// mixedBatch builds an n-job batch over every job kind and several
// workloads; deterministic content so responses are comparable across
// topologies.
func mixedBatch(n int) string {
	var jobs []string
	workloads := []string{"compress", "li", "go", "gcc"}
	for i := 0; i < n; i++ {
		w := workloads[i%len(workloads)]
		switch i % 3 {
		case 0:
			jobs = append(jobs, fmt.Sprintf(
				`{"kind":"simulate","simulate":{"workload":%q,"max_insts":%d}}`, w, 30000+1000*(i%5)))
		case 1:
			jobs = append(jobs, fmt.Sprintf(
				`{"kind":"annotate","annotate":{"workload":%q}}`, w))
		default:
			jobs = append(jobs, fmt.Sprintf(
				`{"kind":"ctxswitch","ctxswitch":{"workload":%q,"interval":97,"max_insts":50000}}`, w))
		}
	}
	return `{"jobs":[` + strings.Join(jobs, ",") + `]}`
}

// singleNodeBytes runs batch against a plain single-node daemon — the
// byte-identity reference for every gateway topology.
func singleNodeBytes(t *testing.T, batch string) []byte {
	t.Helper()
	ts := httptest.NewServer(service.New(service.Config{}))
	defer ts.Close()
	code, _, body := post(t, ts.URL+"/v2/jobs", batch)
	if code != http.StatusOK {
		t.Fatalf("reference batch: HTTP %d: %s", code, body)
	}
	return body
}

func gatewayMetric(t *testing.T, ts *httptest.Server, name string) float64 {
	t.Helper()
	res, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	b, _ := io.ReadAll(res.Body)
	m := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(name) + ` (\S+)$`).FindSubmatch(b)
	if m == nil {
		t.Fatalf("series %s missing from gateway /metrics:\n%s", name, b)
	}
	v, err := strconv.ParseFloat(string(m[1]), 64)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// TestGatewayBatchMatchesSingleNode is the healthy-path contract: a /v2
// batch through a two-backend gateway streams exactly the bytes a
// single-node daemon would, in order, with no degraded marker.
func TestGatewayBatchMatchesSingleNode(t *testing.T) {
	b1 := httptest.NewServer(service.New(service.Config{}))
	defer b1.Close()
	b2 := httptest.NewServer(service.New(service.Config{}))
	defer b2.Close()
	local := service.New(service.Config{})
	gw, err := gateway.New(fastConfig([]string{b1.URL, b2.URL}, local))
	if err != nil {
		t.Fatal(err)
	}
	gts := httptest.NewServer(gw)
	defer gts.Close()

	batch := mixedBatch(16)
	want := singleNodeBytes(t, batch)
	code, hdr, got := post(t, gts.URL+"/v2/jobs", batch)
	if code != http.StatusOK {
		t.Fatalf("gateway batch: HTTP %d: %s", code, got)
	}
	if hdr.Get(gateway.DegradedHeader) != "" {
		t.Fatal("healthy fleet answered with the degraded header")
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("gateway bytes differ from single node:\ngot:  %s\nwant: %s", got, want)
	}

	// Validation parity: a bad job rejects the whole batch with the
	// same 400 body a single-node daemon produces.
	bad := `{"jobs":[{"kind":"simulate","simulate":{"workload":"compress"}},{"kind":"simulate","simulate":{"workload":"nope"}}]}`
	sn := httptest.NewServer(service.New(service.Config{}))
	defer sn.Close()
	wantCode, _, wantBody := post(t, sn.URL+"/v2/jobs", bad)
	gotCode, _, gotBody := post(t, gts.URL+"/v2/jobs", bad)
	if gotCode != wantCode || !bytes.Equal(gotBody, wantBody) {
		t.Fatalf("validation parity: gateway (%d, %s) vs single node (%d, %s)",
			gotCode, gotBody, wantCode, wantBody)
	}
}

// TestGatewayProxyV1MatchesSingleNode covers the /v1 passthrough and
// its local fallback: both healthy and fleet-down answers must be
// byte-identical to a single-node daemon's.
func TestGatewayProxyV1MatchesSingleNode(t *testing.T) {
	req := `{"workload":"compress","max_insts":50000}`
	sn := httptest.NewServer(service.New(service.Config{}))
	defer sn.Close()
	_, _, want := post(t, sn.URL+"/v1/simulate", req)

	backend := httptest.NewServer(service.New(service.Config{}))
	local := service.New(service.Config{})
	gw, err := gateway.New(fastConfig([]string{backend.URL}, local))
	if err != nil {
		t.Fatal(err)
	}
	gts := httptest.NewServer(gw)
	defer gts.Close()

	code, hdr, got := post(t, gts.URL+"/v1/simulate", req)
	if code != http.StatusOK || !bytes.Equal(got, want) {
		t.Fatalf("proxied /v1: HTTP %d\ngot:  %s\nwant: %s", code, got, want)
	}
	if hdr.Get(gateway.DegradedHeader) != "" {
		t.Fatal("healthy proxy answered degraded")
	}

	// Kill the backend: the same request must fall back locally with
	// identical bytes and the degraded marker.
	backend.Close()
	gw.CheckNow(context.Background())
	code, hdr, got = post(t, gts.URL+"/v1/simulate", req)
	if code != http.StatusOK || !bytes.Equal(got, want) {
		t.Fatalf("fallback /v1: HTTP %d\ngot:  %s\nwant: %s", code, got, want)
	}
	if hdr.Get(gateway.DegradedHeader) != "local" {
		t.Fatalf("fallback missing degraded header, got %q", hdr.Get(gateway.DegradedHeader))
	}
	if gatewayMetric(t, gts, "dvid_gateway_fallback_local_total") == 0 {
		t.Fatal("local fallback not counted")
	}
}

// TestGatewayAllBackendsDownDegradesGracefully: with every backend
// dead, a /v2 batch still completes on the embedded session,
// byte-identical, marked degraded.
func TestGatewayAllBackendsDownDegradesGracefully(t *testing.T) {
	dead1 := httptest.NewServer(http.NotFoundHandler())
	dead2 := httptest.NewServer(http.NotFoundHandler())
	urls := []string{dead1.URL, dead2.URL}
	dead1.Close()
	dead2.Close()

	local := service.New(service.Config{})
	gw, err := gateway.New(fastConfig(urls, local))
	if err != nil {
		t.Fatal(err)
	}
	gw.CheckNow(context.Background())
	gts := httptest.NewServer(gw)
	defer gts.Close()

	batch := mixedBatch(8)
	want := singleNodeBytes(t, batch)
	code, hdr, got := post(t, gts.URL+"/v2/jobs", batch)
	if code != http.StatusOK {
		t.Fatalf("degraded batch: HTTP %d: %s", code, got)
	}
	if hdr.Get(gateway.DegradedHeader) != "local" {
		t.Fatalf("degraded header %q, want local", hdr.Get(gateway.DegradedHeader))
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("degraded bytes differ from single node:\ngot:  %s\nwant: %s", got, want)
	}
	if gatewayMetric(t, gts, "dvid_gateway_fallback_local_total") == 0 {
		t.Fatal("local fallbacks not counted")
	}

	// The gateway's own health endpoint reports the degradation.
	res, err := http.Get(gts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(res.Body)
	res.Body.Close()
	if !strings.Contains(string(body), `"status":"degraded"`) {
		t.Fatalf("gateway healthz: %s", body)
	}
}

// TestGatewayRetriesTransientFailures: backends that 5xx intermittently
// are retried until the batch completes byte-identically; the retry
// counter proves the ladder fired. Hedging is disabled so the test pins
// the retry path specifically — with it on, a hedge that wins before a
// slow 5xx arrives absorbs the failure without a retry, and under -race
// that races either way. Both backends carry an injector because ring
// ownership depends on the servers' random ports: with only one flaky
// backend, a run where the steady one owns every key would see no
// faults at all.
func TestGatewayRetriesTransientFailures(t *testing.T) {
	inj1 := faults.New(faults.Plan{Seed: 11, Err5xx: 0.4})
	inj2 := faults.New(faults.Plan{Seed: 12, Err5xx: 0.4})
	flaky1 := httptest.NewServer(inj1.Middleware(service.New(service.Config{})))
	defer flaky1.Close()
	flaky2 := httptest.NewServer(inj2.Middleware(service.New(service.Config{})))
	defer flaky2.Close()

	local := service.New(service.Config{})
	cfg := fastConfig([]string{flaky1.URL, flaky2.URL}, local)
	cfg.HedgeAfter = -1
	gw, err := gateway.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	gts := httptest.NewServer(gw)
	defer gts.Close()

	batch := mixedBatch(24)
	want := singleNodeBytes(t, batch)
	code, _, got := post(t, gts.URL+"/v2/jobs", batch)
	if code != http.StatusOK {
		t.Fatalf("flaky batch: HTTP %d", code)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("flaky-fleet bytes differ from single node:\ngot:  %s\nwant: %s", got, want)
	}
	if inj1.Counters().Errored+inj2.Counters().Errored == 0 {
		t.Fatal("fault injectors never fired — test proved nothing")
	}
	// With hedging off, every injected 5xx reached a dispatch attempt,
	// and every failed attempt below the retry cap increments the
	// counter — so faults fired implies retries fired, deterministically.
	if gatewayMetric(t, gts, "dvid_retries_total") == 0 {
		t.Fatal("no retries despite injected 5xx faults")
	}
}

// TestGatewayHedgesSlowBackend: with one backend answering slowly, the
// hedge budget sends duplicates to the fast replica and wins.
func TestGatewayHedgesSlowBackend(t *testing.T) {
	// The 1.5s delay is deliberately huge: under -race a saturated fast
	// backend can take hundreds of milliseconds per job, and the hedge
	// must still comfortably beat the delayed primary.
	inj := faults.New(faults.Plan{Seed: 3, DelayProb: 1.0, Delay: 1500 * time.Millisecond})
	slow := httptest.NewServer(inj.Middleware(service.New(service.Config{})))
	defer slow.Close()
	fast := httptest.NewServer(service.New(service.Config{}))
	defer fast.Close()

	local := service.New(service.Config{})
	gw, err := gateway.New(fastConfig([]string{slow.URL, fast.URL}, local))
	if err != nil {
		t.Fatal(err)
	}
	gts := httptest.NewServer(gw)
	defer gts.Close()

	batch := mixedBatch(12)
	want := singleNodeBytes(t, batch)
	code, _, got := post(t, gts.URL+"/v2/jobs", batch)
	if code != http.StatusOK || !bytes.Equal(got, want) {
		t.Fatalf("hedged batch: HTTP %d, identical=%v", code, bytes.Equal(got, want))
	}
	if gatewayMetric(t, gts, "dvid_hedges_total") == 0 {
		t.Fatal("no hedges launched against a uniformly slow backend")
	}
	if gatewayMetric(t, gts, "dvid_hedge_wins_total") == 0 {
		t.Fatal("hedges launched but none won against a 400ms-slower primary")
	}
}

// TestGatewayLargeResponseNotTruncated: a backend answer bigger than
// the request-size limit must pass through intact, and one bigger than
// the response budget must become a dispatch error — answered by the
// local fallback, marked degraded — never a silently truncated 200.
func TestGatewayLargeResponseNotTruncated(t *testing.T) {
	req := `{"workload":"compress","max_insts":30000}`
	big := bytes.Repeat([]byte("x"), 64<<10)
	stub := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Write(big)
	}))
	defer stub.Close()

	cfg := fastConfig([]string{stub.URL}, service.New(service.Config{}))
	cfg.MaxRequestBytes = 1024 // well under the stub's answer
	gw, err := gateway.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	gts := httptest.NewServer(gw)
	defer gts.Close()

	code, hdr, got := post(t, gts.URL+"/v1/simulate", req)
	if code != http.StatusOK || !bytes.Equal(got, big) {
		t.Fatalf("large proxy answer: HTTP %d, %d bytes, want %d intact", code, len(got), len(big))
	}
	if hdr.Get(gateway.DegradedHeader) != "" {
		t.Fatal("healthy proxy answered degraded")
	}

	// Same stub, but now its answer exceeds the response budget: the
	// gateway must not forward a clipped body — the local fallback
	// serves the real, byte-identical response instead.
	sn := httptest.NewServer(service.New(service.Config{}))
	defer sn.Close()
	_, _, want := post(t, sn.URL+"/v1/simulate", req)

	cfg = fastConfig([]string{stub.URL}, service.New(service.Config{}))
	cfg.MaxRequestBytes = 1024
	cfg.MaxResponseBytes = 1024
	gw2, err := gateway.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	gts2 := httptest.NewServer(gw2)
	defer gts2.Close()

	code, hdr, got = post(t, gts2.URL+"/v1/simulate", req)
	if code != http.StatusOK || !bytes.Equal(got, want) {
		t.Fatalf("over-budget answer: HTTP %d\ngot:  %.200s\nwant: %.200s", code, got, want)
	}
	if hdr.Get(gateway.DegradedHeader) != "local" {
		t.Fatalf("over-budget answer served without the degraded marker (header %q)", hdr.Get(gateway.DegradedHeader))
	}
}

// TestGatewayEjectsDrainingBackend: a backend in graceful shutdown
// reports "draining" on /healthz; the health checker must pull it from
// rotation while it still answers requests.
func TestGatewayEjectsDrainingBackend(t *testing.T) {
	svc := service.New(service.Config{})
	backend := httptest.NewServer(svc)
	defer backend.Close()

	local := service.New(service.Config{})
	gw, err := gateway.New(fastConfig([]string{backend.URL}, local))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	gw.CheckNow(ctx)
	gts := httptest.NewServer(gw)
	defer gts.Close()

	if got := gatewayMetric(t, gts, fmt.Sprintf("dvid_backend_healthy{backend=%q}", backend.URL)); got != 1 {
		t.Fatalf("serving backend unhealthy: %v", got)
	}

	svc.BeginDrain()
	gw.CheckNow(ctx)
	if got := gatewayMetric(t, gts, fmt.Sprintf("dvid_backend_healthy{backend=%q}", backend.URL)); got != 0 {
		t.Fatalf("draining backend still in rotation: %v", got)
	}

	// Traffic keeps flowing — locally, marked degraded.
	code, hdr, _ := post(t, gts.URL+"/v1/simulate", `{"workload":"compress","max_insts":30000}`)
	if code != http.StatusOK || hdr.Get(gateway.DegradedHeader) != "local" {
		t.Fatalf("draining fleet: HTTP %d, degraded=%q", code, hdr.Get(gateway.DegradedHeader))
	}
}

// TestGatewayChaos is the chaos gate from the acceptance criteria: a
// 64-job /v2 batch through a three-backend fleet where one backend is
// killed mid-batch, one hangs requests, and every backend corrupts 5%
// of its artifact-store writes — and the response must still be
// byte-identical to a fault-free single-node daemon's.
func TestGatewayChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos gate is not short")
	}
	batch := mixedBatch(64)
	want := singleNodeBytes(t, batch)

	// Three backends, each persisting artifacts through a 5%-corrupting
	// tamper hook (the store's checksums must catch every one).
	corrupt := faults.New(faults.Plan{Seed: 99, Corrupt: 0.05})
	newBackend := func(mw func(http.Handler) http.Handler) *httptest.Server {
		st, err := store.Open(store.Options{Dir: t.TempDir(), TamperWrite: corrupt.TamperWrite})
		if err != nil {
			t.Fatal(err)
		}
		var h http.Handler = service.New(service.Config{Store: st})
		if mw != nil {
			h = mw(h)
		}
		return httptest.NewServer(h)
	}
	hang := faults.New(faults.Plan{Seed: 17, Hang: 0.5})
	victim := newBackend(nil)             // killed mid-batch
	hanger := newBackend(hang.Middleware) // hangs half its requests
	steady := newBackend(nil)
	defer hanger.Close()
	defer steady.Close()

	local := service.New(service.Config{})
	cfg := fastConfig([]string{victim.URL, hanger.URL, steady.URL}, local)
	cfg.RequestTimeout = 2 * time.Second // hangs must not stall the batch
	gw, err := gateway.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	gts := httptest.NewServer(gw)
	defer gts.Close()

	// Kill one backend mid-batch: first cut every live connection, then
	// close the listener so later dials fail outright.
	killed := make(chan struct{})
	go func() {
		defer close(killed)
		time.Sleep(300 * time.Millisecond)
		victim.CloseClientConnections()
		victim.Close()
	}()

	code, _, got := post(t, gts.URL+"/v2/jobs", batch)
	<-killed
	if code != http.StatusOK {
		t.Fatalf("chaos batch: HTTP %d: %s", code, got)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("chaos bytes differ from fault-free single node (%d vs %d bytes):\ngot:  %.2000s\nwant: %.2000s",
			len(got), len(want), got, want)
	}
	if hang.Counters().Hung == 0 {
		t.Error("hang fault never fired — weaken the seed check")
	}
	// The 5% corruption rate over a couple dozen store writes fires only
	// on some schedules; the deterministic corruption-never-served proof
	// lives in the store and service suites, so here it is informational.
	if corrupt.Counters().Corrupted == 0 {
		t.Log("note: 5% corruption drew zero fires this schedule")
	}
	retries := gatewayMetric(t, gts, "dvid_retries_total")
	hedges := gatewayMetric(t, gts, "dvid_hedges_total")
	if retries == 0 && hedges == 0 {
		t.Error("chaos run exercised no recovery paths")
	}
	t.Logf("chaos: retries=%v hedges=%v hedge_wins=%v local_fallbacks=%v hung=%d corrupted=%d",
		retries, hedges, gatewayMetric(t, gts, "dvid_hedge_wins_total"),
		gatewayMetric(t, gts, "dvid_gateway_fallback_local_total"),
		hang.Counters().Hung, corrupt.Counters().Corrupted)
}
