package gateway

import (
	"context"
	"testing"
	"time"

	"dvi/internal/service"
)

func TestBreakerAbandonReleasesProbe(t *testing.T) {
	b := newBreaker(2, 50*time.Millisecond)
	now := time.Unix(1000, 0)
	b.failure(now)
	b.failure(now)
	if b.currentState() != breakerOpen {
		t.Fatal("threshold failures did not open the breaker")
	}

	probeAt := now.Add(60 * time.Millisecond)
	if !b.allow(probeAt) {
		t.Fatal("cooldown expiry did not admit the half-open probe")
	}
	b.abandon()
	if b.currentState() == breakerHalfOpen {
		t.Fatal("abandon left the breaker half-open with no probe in flight")
	}
	// The slot is free again: the cooldown already elapsed, so the very
	// next caller may probe.
	if !b.allow(probeAt) {
		t.Fatal("abandoned probe slot was not released")
	}

	// abandon in other states is a no-op.
	b.success()
	b.abandon()
	if b.currentState() != breakerClosed {
		t.Fatal("abandon changed a closed breaker")
	}
}

// TestHedgedSettlesLoserBreaker pins the recovering-backend-loses-the-
// hedge-race scenario: the primary holds a half-open probe slot, the
// hedge answers first, and the primary's send is cancelled. The
// abandoned probe must release the slot — not wedge the breaker
// half-open forever — and the cancellation must not count as a backend
// failure.
func TestHedgedSettlesLoserBreaker(t *testing.T) {
	g, err := New(Config{
		Backends:        []string{"http://a:1", "http://b:1"},
		Local:           service.New(service.Config{}),
		HedgeAfter:      5 * time.Millisecond,
		BreakerFailures: 2,
		BreakerCooldown: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	primary, hedge := g.backends[0], g.backends[1]

	// Trip the primary's breaker and consume its half-open probe slot,
	// exactly as pick() does via allow.
	now := time.Now()
	primary.br.failure(now)
	primary.br.failure(now)
	if !primary.br.allow(now.Add(25 * time.Millisecond)) {
		t.Fatal("setup: probe slot not admitted")
	}

	send := func(ctx context.Context, b *backend) (int, error) {
		if b == primary {
			<-ctx.Done() // the probe hangs until the hedge win cancels it
			return 0, ctx.Err()
		}
		return 42, nil
	}
	v, winner, err := hedged(g, context.Background(), primary, hedge, send)
	if err != nil || v != 42 || winner != hedge {
		t.Fatalf("hedged: (%v, %v, %v), want hedge win", v, winner, err)
	}

	// The loser's goroutine settles asynchronously after the cancel:
	// eventually the probe slot must be admissible again.
	deadline := time.Now().Add(2 * time.Second)
	for !primary.br.allow(time.Now()) {
		if time.Now().After(deadline) {
			t.Fatal("breaker wedged half-open: abandoned probe never released its slot")
		}
		time.Sleep(time.Millisecond)
	}
	if primary.fails.Load() != 0 {
		t.Fatalf("losing a hedge race counted as %d backend failures", primary.fails.Load())
	}
}
