package gateway

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"sync"
	"time"
)

// probeHealth asks one backend's /healthz whether it should receive
// traffic. Healthy means HTTP 200 with status "ok": a draining daemon
// answers 503/"draining", so the checker ejects it from rotation before
// its listener closes and requests would start failing.
func (g *Gateway) probeHealth(ctx context.Context, b *backend) bool {
	ctx, cancel := context.WithTimeout(ctx, g.cfg.HealthInterval)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.url+"/healthz", nil)
	if err != nil {
		return false
	}
	res, err := g.hc.Do(req)
	if err != nil {
		return false
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(res.Body, 4096))
		return false
	}
	var h struct {
		Status string `json:"status"`
	}
	if err := json.NewDecoder(io.LimitReader(res.Body, 64<<10)).Decode(&h); err != nil {
		return false
	}
	return h.Status == "ok"
}

// CheckNow probes every backend once, synchronously, and updates
// routing state. Tests (and Start's first iteration) use it to avoid
// racing the periodic loop.
func (g *Gateway) CheckNow(ctx context.Context) {
	var wg sync.WaitGroup
	for _, b := range g.backends {
		wg.Add(1)
		go func(b *backend) {
			defer wg.Done()
			ok := g.probeHealth(ctx, b)
			was := b.healthy.Swap(ok)
			if was != ok {
				g.log.Info("gateway: backend health changed", "backend", b.url, "healthy", ok)
			}
		}(b)
	}
	wg.Wait()
}

// Start launches the active health-check loop. Backends begin
// optimistically healthy (so startup order does not matter); the first
// probe round runs immediately. Close (or cancelling ctx) stops the
// loop.
func (g *Gateway) Start(ctx context.Context) {
	ctx, g.stop = context.WithCancel(ctx)
	g.checkerD = make(chan struct{})
	go func() {
		defer close(g.checkerD)
		g.CheckNow(ctx)
		t := time.NewTicker(g.cfg.HealthInterval)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
				g.CheckNow(ctx)
			}
		}
	}()
}

// Close stops the health-check loop started by Start. Safe to call when
// Start was never called.
func (g *Gateway) Close() {
	if g.stop != nil {
		g.stop()
		<-g.checkerD
	}
}

// BackendHealth is one backend's entry in the gateway's /healthz body.
type BackendHealth struct {
	URL          string `json:"url"`
	Healthy      bool   `json:"healthy"`
	BreakerState string `json:"breaker_state"`
	Failures     int64  `json:"failures"`
}

// GatewayHealth is the gateway's /healthz body. Status is "ok" while at
// least one backend is routable and "degraded" when traffic would run
// on the embedded local session.
type GatewayHealth struct {
	Status        string          `json:"status"`
	Backends      []BackendHealth `json:"backends"`
	UptimeSeconds float64         `json:"uptime_seconds"`
}

func breakerStateName(s int) string {
	switch s {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// handleHealth is the gateway's GET /healthz.
func (g *Gateway) handleHealth(w http.ResponseWriter, r *http.Request) {
	h := GatewayHealth{
		Status:        "ok",
		UptimeSeconds: time.Since(g.start).Seconds(),
	}
	for _, b := range g.backends {
		h.Backends = append(h.Backends, BackendHealth{
			URL:          b.url,
			Healthy:      b.healthy.Load(),
			BreakerState: breakerStateName(b.br.currentState()),
			Failures:     b.fails.Load(),
		})
	}
	if g.available() == 0 {
		h.Status = "degraded"
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_ = json.NewEncoder(w).Encode(h)
}
