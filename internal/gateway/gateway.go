// Package gateway fronts a fleet of dvid backends: it consistent-hashes
// build keys across N daemons (so the fleet-wide build cache stays
// single-flight per key), health-checks them, and wraps every dispatch
// in per-request deadlines, capped exponential backoff + jitter
// retries, tail-latency hedging to the next replica, and per-backend
// circuit breakers. Every job the daemon serves is a pure deterministic
// computation — retrying or hedging one is always safe, and any replica
// answers byte-identically — which is what makes this layer possible
// without any coordination between backends.
//
// Degradation is graceful by construction: the gateway embeds a local
// service.Server, used both to validate batches up front with exactly
// the errors a single-node daemon would produce and to execute jobs
// locally when every backend for a key is down. A /v2 batch therefore
// survives backend death mid-stream: the affected jobs retry on other
// replicas or run locally, and their lines arrive in order like any
// other — clients cannot tell a degraded batch from a healthy one
// except by the X-Dvid-Degraded header and the gateway's /metrics.
package gateway

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"dvi/internal/obs"
	"dvi/internal/service"
)

// DegradedHeader marks responses (or response streams) that the local
// fallback session served in whole or in part because no backend was
// available; its value names the mode ("local").
const DegradedHeader = "X-Dvid-Degraded"

// Defaults applied by New for zero Config fields.
const (
	DefaultRequestTimeout  = 60 * time.Second
	DefaultHedgeAfter      = 150 * time.Millisecond
	DefaultRetries         = 3
	DefaultBackoffBase     = 25 * time.Millisecond
	DefaultBackoffCap      = 1 * time.Second
	DefaultBreakerFailures = 3
	DefaultBreakerCooldown = 2 * time.Second
	DefaultHealthInterval  = 2 * time.Second
	DefaultVirtualNodes    = 64
	DefaultMaxInflight     = 16
	// DefaultMaxResponseBytes is deliberately far above the request
	// limit: simulate responses carrying a full trace routinely dwarf
	// the request that asked for them.
	DefaultMaxResponseBytes = 256 << 20
)

// Config parameterizes a Gateway.
type Config struct {
	// Backends are the dvid base URLs to route across. At least one is
	// required.
	Backends []string
	// Local is the embedded fallback service. Required: it provides
	// whole-batch validation parity with single-node daemons and the
	// degradation path when every backend is down.
	Local *service.Server
	// RequestTimeout bounds each dispatch attempt to one backend
	// (0 = DefaultRequestTimeout).
	RequestTimeout time.Duration
	// HedgeAfter launches a duplicate request on the next replica when
	// the primary has not answered within this budget; first success
	// wins (0 = DefaultHedgeAfter, negative = hedging off).
	HedgeAfter time.Duration
	// Retries is how many additional attempts a failed dispatch gets
	// across replicas (0 = DefaultRetries, negative = none).
	Retries int
	// BackoffBase/BackoffCap shape the capped exponential backoff with
	// jitter between attempts (0 = defaults).
	BackoffBase, BackoffCap time.Duration
	// BreakerFailures consecutive failures open a backend's circuit
	// breaker for BreakerCooldown (0 = defaults).
	BreakerFailures int
	BreakerCooldown time.Duration
	// HealthInterval is the active health-check period
	// (0 = DefaultHealthInterval).
	HealthInterval time.Duration
	// VirtualNodes is the consistent-hash ring's points per backend
	// (0 = DefaultVirtualNodes).
	VirtualNodes int
	// MaxInflight bounds concurrently dispatched jobs per /v2 batch
	// (0 = DefaultMaxInflight).
	MaxInflight int
	// MaxRequestBytes bounds request bodies
	// (0 = service.DefaultMaxRequestBytes).
	MaxRequestBytes int64
	// MaxResponseBytes bounds buffered backend response bodies
	// (0 = DefaultMaxResponseBytes). A larger answer is an error —
	// retried elsewhere or served by the local fallback — never
	// silently truncated: a clipped body forwarded as a 200 would break
	// the byte-identical-to-single-node contract.
	MaxResponseBytes int64
	// MaxJobs caps jobs per /v2 batch (0 = service.DefaultMaxJobs).
	MaxJobs int
	// Seed seeds the backoff jitter; fault-injection tests pin it for
	// reproducible schedules.
	Seed int64
	// Transport overrides the backend HTTP transport (tests inject
	// faults here); nil uses http.DefaultTransport.
	Transport http.RoundTripper
	// Logger receives structured logs (nil = discard).
	Logger *slog.Logger
	// TraceRing is how many recent request span trees
	// /debug/trace/recent retains (0 = service default, negative =
	// disabled).
	TraceRing int
}

// backend is one dvid replica and its recovery state.
type backend struct {
	url     string
	healthy atomic.Bool // last active-probe verdict (optimistic start)
	br      *breaker
	fails   atomic.Int64 // dispatch failures, for /metrics
}

// Gateway routes dvid traffic across a fleet. Construct with New; it is
// an http.Handler serving the same endpoints as a dvid backend.
type Gateway struct {
	cfg      Config
	backends []*backend
	ring     *ring
	hc       *http.Client
	local    *service.Server
	mux      *http.ServeMux
	log      *slog.Logger
	rec      *obs.Recorder
	met      gwMetrics
	start    time.Time

	jmu sync.Mutex // jitter PRNG
	jrn *rand.Rand

	stop     context.CancelFunc
	checkerD chan struct{} // closed when the health loop exits
}

// New builds a Gateway. It does not probe backends; call Start to run
// the active health checker (backends are assumed healthy until a probe
// says otherwise, so startup order does not matter).
func New(cfg Config) (*Gateway, error) {
	if len(cfg.Backends) == 0 {
		return nil, errors.New("gateway: at least one backend is required")
	}
	if cfg.Local == nil {
		return nil, errors.New("gateway: a local fallback service is required")
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = DefaultRequestTimeout
	}
	if cfg.HedgeAfter == 0 {
		cfg.HedgeAfter = DefaultHedgeAfter
	}
	if cfg.Retries == 0 {
		cfg.Retries = DefaultRetries
	}
	if cfg.Retries < 0 {
		cfg.Retries = 0
	}
	if cfg.BackoffBase <= 0 {
		cfg.BackoffBase = DefaultBackoffBase
	}
	if cfg.BackoffCap <= 0 {
		cfg.BackoffCap = DefaultBackoffCap
	}
	if cfg.BreakerFailures <= 0 {
		cfg.BreakerFailures = DefaultBreakerFailures
	}
	if cfg.BreakerCooldown <= 0 {
		cfg.BreakerCooldown = DefaultBreakerCooldown
	}
	if cfg.HealthInterval <= 0 {
		cfg.HealthInterval = DefaultHealthInterval
	}
	if cfg.MaxInflight <= 0 {
		cfg.MaxInflight = DefaultMaxInflight
	}
	if cfg.MaxRequestBytes <= 0 {
		cfg.MaxRequestBytes = service.DefaultMaxRequestBytes
	}
	if cfg.MaxResponseBytes <= 0 {
		cfg.MaxResponseBytes = DefaultMaxResponseBytes
	}
	if cfg.MaxJobs <= 0 {
		cfg.MaxJobs = service.DefaultMaxJobs
	}

	g := &Gateway{
		cfg:   cfg,
		ring:  newRing(cfg.Backends, cfg.VirtualNodes),
		local: cfg.Local,
		log:   cfg.Logger,
		start: time.Now(),
		jrn:   rand.New(rand.NewSource(cfg.Seed)),
	}
	if g.log == nil {
		g.log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	if cfg.TraceRing >= 0 {
		ring := cfg.TraceRing
		if ring == 0 {
			ring = service.DefaultTraceRing
		}
		g.rec = obs.NewRecorder(ring)
	}
	for _, u := range cfg.Backends {
		b := &backend{url: u, br: newBreaker(cfg.BreakerFailures, cfg.BreakerCooldown)}
		b.healthy.Store(true)
		g.backends = append(g.backends, b)
	}
	g.hc = &http.Client{Transport: cfg.Transport}

	mux := http.NewServeMux()
	mux.HandleFunc("POST /v2/jobs", g.handleJobs)
	mux.HandleFunc("POST /v1/annotate", g.proxyHandler("annotate", "/v1/annotate"))
	mux.HandleFunc("POST /v1/simulate", g.proxyHandler("simulate", "/v1/simulate"))
	mux.HandleFunc("POST /v1/ctxswitch", g.proxyHandler("ctxswitch", "/v1/ctxswitch"))
	mux.HandleFunc("GET /v1/workloads", g.handleWorkloads)
	mux.HandleFunc("GET /healthz", g.handleHealth)
	mux.HandleFunc("GET /metrics", g.handleMetrics)
	mux.HandleFunc("GET /debug/trace/recent", g.handleTraceRecent)
	g.mux = mux
	return g, nil
}

// ServeHTTP implements http.Handler.
func (g *Gateway) ServeHTTP(w http.ResponseWriter, r *http.Request) { g.mux.ServeHTTP(w, r) }

// --- routing keys ---

// routeKey derives the consistent-hash key from a request's source: the
// workload name and scale (every flavour of one workload shares a
// backend, so its builds coalesce fleet-wide), or a digest of submitted
// assembly (identical submissions share a backend the same way).
func routeKey(workload, asm string, scale int) string {
	if asm != "" {
		sum := sha256.Sum256([]byte(asm))
		return "asm:" + hex.EncodeToString(sum[:12]) + "/x1"
	}
	if scale < 1 {
		scale = 1
	}
	return workload + "/x" + strconv.Itoa(scale)
}

// routeKeyJob extracts the routing key from a /v2 batch entry.
func routeKeyJob(jr service.JobRequest) string {
	switch {
	case jr.Simulate != nil:
		return routeKey(jr.Simulate.Workload, jr.Simulate.Asm, jr.Simulate.Scale)
	case jr.CtxSwitch != nil:
		return routeKey(jr.CtxSwitch.Workload, jr.CtxSwitch.Asm, jr.CtxSwitch.Scale)
	case jr.Annotate != nil:
		return routeKey(jr.Annotate.Workload, jr.Annotate.Asm, jr.Annotate.Scale)
	}
	return ""
}

// --- dispatch with recovery ---

// pick selects the attempt-th available backend in the key's ring
// order (consuming its breaker's admission), plus a hedge candidate: a
// distinct healthy backend whose breaker is fully closed, so a hedge
// never burns a half-open probe slot. Either may be nil.
func (g *Gateway) pick(key string, attempt int) (primary, hedge *backend) {
	now := time.Now()
	var avail []*backend
	for _, idx := range g.ring.ordered(key) {
		b := g.backends[idx]
		if b.healthy.Load() {
			avail = append(avail, b)
		}
	}
	if len(avail) == 0 {
		return nil, nil
	}
	for i := 0; i < len(avail); i++ {
		b := avail[(attempt+i)%len(avail)]
		if primary == nil && b.br.allow(now) {
			primary = b
			continue
		}
		if primary != nil && hedge == nil && b.br.closed() {
			hedge = b
		}
	}
	return primary, hedge
}

// available counts backends currently considered routable: actively
// healthy with a fully closed breaker. Half-open does not count — at
// most one probe passes through it, so with every breaker open or
// half-open nearly all traffic runs on the local fallback, and /healthz
// plus the degraded header must say so rather than report a healthy
// fleet.
func (g *Gateway) available() int {
	n := 0
	for _, b := range g.backends {
		if b.healthy.Load() && b.br.closed() {
			n++
		}
	}
	return n
}

// errNoBackends reports that no backend was available for a dispatch.
var errNoBackends = errors.New("gateway: no backend available")

// readBody buffers a backend response body in full, erroring — so the
// dispatch ladder retries elsewhere or falls back locally — when it
// exceeds the response budget, instead of silently truncating it.
func (g *Gateway) readBody(r io.Reader) ([]byte, error) {
	data, err := io.ReadAll(io.LimitReader(r, g.cfg.MaxResponseBytes+1))
	if err != nil {
		return nil, err
	}
	if int64(len(data)) > g.cfg.MaxResponseBytes {
		return nil, fmt.Errorf("gateway: backend response exceeds %d bytes", g.cfg.MaxResponseBytes)
	}
	return data, nil
}

// backoff returns the jittered delay before retry number attempt
// (capped exponential, uniform jitter in [50%, 100%]).
func (g *Gateway) backoff(attempt int) time.Duration {
	d := g.cfg.BackoffBase << attempt
	if d > g.cfg.BackoffCap || d <= 0 {
		d = g.cfg.BackoffCap
	}
	g.jmu.Lock()
	f := 0.5 + 0.5*g.jrn.Float64()
	g.jmu.Unlock()
	return time.Duration(float64(d) * f)
}

// dispatch runs send against the fleet with the full recovery ladder:
// ring-ordered backend selection, per-attempt deadline (inside send),
// hedging, breaker accounting, and capped backoff retries. send must be
// idempotent — every dvid job is a pure deterministic computation, so
// it is. A nil error means send succeeded on the returned backend; the
// caller falls back locally on error.
func dispatch[T any](g *Gateway, ctx context.Context, key string, send func(context.Context, *backend) (T, error)) (T, *backend, error) {
	var zero T
	var lastErr error
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return zero, nil, err
		}
		primary, hedge := g.pick(key, attempt)
		if primary == nil {
			if lastErr != nil {
				return zero, nil, lastErr
			}
			return zero, nil, errNoBackends
		}
		v, b, err := hedged(g, ctx, primary, hedge, send)
		if err == nil {
			return v, b, nil
		}
		lastErr = err
		if attempt >= g.cfg.Retries {
			return zero, nil, lastErr
		}
		g.met.retries.Add(1)
		select {
		case <-time.After(g.backoff(attempt)):
		case <-ctx.Done():
			return zero, nil, ctx.Err()
		}
	}
}

// hedged runs send on primary and, if it has not answered within
// HedgeAfter, duplicates it on hedge; the first success wins and the
// loser is cancelled.
func hedged[T any](g *Gateway, ctx context.Context, primary, hedge *backend, send func(context.Context, *backend) (T, error)) (T, *backend, error) {
	type outcome struct {
		v   T
		b   *backend
		err error
	}
	hctx, cancel := context.WithCancel(ctx)
	defer cancel()
	ch := make(chan outcome, 2)
	// Breaker and failure accounting happen inside the send goroutine,
	// not the select loop below: when the other attempt wins the race
	// (or the caller abandons both), hedged returns without draining ch,
	// and the loser must still settle its breaker — in particular a
	// half-open probe slot consumed by pick, which would otherwise wedge
	// the breaker half-open and eject the backend from rotation forever.
	// A send that failed only because hctx was cancelled is abandoned
	// rather than counted: losing the race is not the backend's fault.
	launch := func(b *backend) {
		go func() {
			v, err := send(hctx, b)
			switch {
			case err == nil:
				b.br.success()
			case hctx.Err() != nil:
				b.br.abandon()
			default:
				b.br.failure(time.Now())
				b.fails.Add(1)
			}
			ch <- outcome{v, b, err}
		}()
	}
	launch(primary)
	inflight := 1
	var hedgeC <-chan time.Time
	if hedge != nil && g.cfg.HedgeAfter > 0 {
		t := time.NewTimer(g.cfg.HedgeAfter)
		defer t.Stop()
		hedgeC = t.C
	}
	var zero T
	var firstErr error
	for {
		select {
		case o := <-ch:
			inflight--
			if o.err == nil {
				if o.b == hedge {
					g.met.hedgeWins.Add(1)
				}
				return o.v, o.b, nil
			}
			if firstErr == nil {
				firstErr = o.err
			}
			if inflight == 0 {
				return zero, nil, firstErr
			}
		case <-hedgeC:
			hedgeC = nil
			g.met.hedges.Add(1)
			launch(hedge)
			inflight++
		case <-hctx.Done():
			// Abandoned from above; in-flight sends resolve into the
			// buffered channel.
			return zero, nil, hctx.Err()
		}
	}
}

// --- /v2/jobs ---

// rawLine is one NDJSON line with payloads kept as raw bytes: the
// gateway re-frames backend lines (rewriting the index from the
// single-job sub-batch back to the client's batch position) without
// decoding and re-encoding payloads, so reassembled responses stay
// byte-identical to a single-node daemon's. Field order mirrors
// service.JobResult — the wire contract.
type rawLine struct {
	Index     int             `json:"index"`
	Kind      string          `json:"kind"`
	Simulate  json.RawMessage `json:"simulate,omitempty"`
	CtxSwitch json.RawMessage `json:"ctxswitch,omitempty"`
	Annotate  json.RawMessage `json:"annotate,omitempty"`
	Error     string          `json:"error,omitempty"`
}

// toRawLine converts a locally executed result into the wire framing.
func toRawLine(res service.JobResult) (rawLine, error) {
	rl := rawLine{Index: res.Index, Kind: res.Kind, Error: res.Error}
	marshal := func(v any) (json.RawMessage, error) {
		b, err := json.Marshal(v)
		return b, err
	}
	var err error
	if res.Simulate != nil {
		if rl.Simulate, err = marshal(res.Simulate); err != nil {
			return rl, err
		}
	}
	if res.CtxSwitch != nil {
		if rl.CtxSwitch, err = marshal(res.CtxSwitch); err != nil {
			return rl, err
		}
	}
	if res.Annotate != nil {
		if rl.Annotate, err = marshal(res.Annotate); err != nil {
			return rl, err
		}
	}
	return rl, err
}

// sendJob dispatches one job to one backend as a single-job /v2 batch
// and returns its (single) result line. Any transport failure, non-OK
// status, or truncated/malformed stream — a backend killed mid-write —
// is an error, which dispatch retries elsewhere: per-job error
// isolation survives backend death because only deterministic per-job
// failures travel inside a successfully parsed line.
func (g *Gateway) sendJob(ctx context.Context, b *backend, body []byte) (rawLine, error) {
	ctx, cancel := context.WithTimeout(ctx, g.cfg.RequestTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, b.url+"/v2/jobs", bytes.NewReader(body))
	if err != nil {
		return rawLine{}, err
	}
	req.Header.Set("Content-Type", "application/json")
	res, err := g.hc.Do(req)
	if err != nil {
		return rawLine{}, err
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(res.Body, 4096))
		return rawLine{}, fmt.Errorf("gateway: backend %s: status %d", b.url, res.StatusCode)
	}
	data, err := g.readBody(res.Body)
	if err != nil {
		return rawLine{}, err
	}
	var line rawLine
	dec := json.NewDecoder(bytes.NewReader(data))
	if err := dec.Decode(&line); err != nil {
		return rawLine{}, fmt.Errorf("gateway: backend %s: bad result line: %w", b.url, err)
	}
	if dec.More() {
		return rawLine{}, fmt.Errorf("gateway: backend %s: more than one result line", b.url)
	}
	if line.Kind == "" {
		return rawLine{}, fmt.Errorf("gateway: backend %s: result line without kind", b.url)
	}
	return line, nil
}

// runJob resolves one batch entry to its final line bytes: backend
// dispatch with the full recovery ladder, then local execution when the
// fleet cannot answer. The returned bytes always end in exactly one
// newline.
func (g *Gateway) runJob(ctx context.Context, idx int, jr service.JobRequest, body []byte) []byte {
	ctx, span := obs.StartSpan(ctx, "gateway-job")
	key := routeKeyJob(jr)
	if span != nil {
		span.SetAttr("index", idx)
		span.SetAttr("key", key)
		defer span.End()
	}
	line, b, err := dispatch(g, ctx, key, func(ctx context.Context, b *backend) (rawLine, error) {
		return g.sendJob(ctx, b, body)
	})
	switch {
	case err == nil:
		if span != nil {
			span.SetAttr("backend", b.url)
		}
	case ctx.Err() != nil:
		// The client is gone; nobody reads this line.
		return nil
	default:
		// Every replica for this key is down or exhausted its retry
		// budget: run the job on the embedded session instead of
		// failing the batch.
		g.met.fallbackLocal.Add(1)
		if span != nil {
			span.SetAttr("fallback", "local")
		}
		g.log.Warn("gateway: local fallback", "index", idx, "key", key, "err", err)
		res := g.local.ExecuteJob(ctx, jr)
		var lerr error
		if line, lerr = toRawLine(res); lerr != nil {
			line = rawLine{Kind: jr.Kind, Error: fmt.Sprintf("gateway: encode local result: %v", lerr)}
		}
	}
	line.Index = idx
	out, merr := json.Marshal(line)
	if merr != nil {
		out = []byte(fmt.Sprintf(`{"index":%d,"kind":%q,"error":"gateway: encode result line"}`, idx, jr.Kind))
	}
	return append(out, '\n')
}

// handleJobs is the gateway's POST /v2/jobs: the batch is validated up
// front through the embedded service (same errors, same 400s as a
// single-node daemon), then every job dispatches independently across
// the fleet and lines stream back in submission order — line i flushes
// as soon as jobs 0..i are done, wherever each one ran.
func (g *Gateway) handleJobs(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	ctx := r.Context()
	if g.rec != nil {
		ctx = obs.WithRecorder(ctx, g.rec)
	}
	ctx, span := obs.StartSpan(ctx, "gateway-jobs")
	code := http.StatusOK
	defer func() {
		if span != nil {
			span.SetAttr("code", code)
			span.End()
		}
		g.met.observe("jobs", code, time.Since(start))
	}()

	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, g.cfg.MaxRequestBytes))
	if err != nil {
		code = http.StatusBadRequest
		if errors.As(err, new(*http.MaxBytesError)) {
			code = http.StatusRequestEntityTooLarge
		}
		g.writeError(w, code, "read request body: %v", err)
		return
	}
	var req service.JobsRequest
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		code = http.StatusBadRequest
		g.writeError(w, code, "bad request body: %v", err)
		return
	}
	if len(req.Jobs) == 0 {
		code = http.StatusBadRequest
		g.writeError(w, code, "at least one job is required")
		return
	}
	if len(req.Jobs) > g.cfg.MaxJobs {
		code = http.StatusBadRequest
		g.writeError(w, code, "batch of %d jobs exceeds the %d-job limit", len(req.Jobs), g.cfg.MaxJobs)
		return
	}
	// Whole-batch validation before the first response byte, exactly
	// like a single-node daemon: an invalid job rejects the batch.
	for i, jr := range req.Jobs {
		if err := g.local.ValidateJob(jr); err != nil {
			code = http.StatusBadRequest
			g.writeError(w, code, "jobs[%d]: %s", i, err.Error())
			return
		}
	}

	// Pre-encode each single-job sub-batch once; retries and hedges
	// reuse the bytes.
	bodies := make([][]byte, len(req.Jobs))
	for i, jr := range req.Jobs {
		bb, err := json.Marshal(service.JobsRequest{Jobs: []service.JobRequest{jr}})
		if err != nil {
			code = http.StatusBadRequest
			g.writeError(w, code, "jobs[%d]: encode: %v", i, err)
			return
		}
		bodies[i] = bb
	}

	if g.available() == 0 {
		// Headers must precede the stream; per-job fallback later in
		// the batch is visible on /metrics instead.
		w.Header().Set(DegradedHeader, "local")
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)

	jctx, cancel := context.WithCancel(ctx)
	defer cancel()
	n := len(req.Jobs)
	results := make([][]byte, n)
	readyCh := make(chan int, n)
	sem := make(chan struct{}, g.cfg.MaxInflight)
	for i := range req.Jobs {
		go func(i int) {
			sem <- struct{}{}
			defer func() { <-sem }()
			results[i] = g.runJob(jctx, i, req.Jobs[i], bodies[i])
			readyCh <- i
		}(i)
	}

	// Ordered prefix delivery: flush line i once jobs 0..i are done.
	ready := make([]bool, n)
	next := 0
	for received := 0; received < n && next < n; received++ {
		ready[<-readyCh] = true
		for next < n && ready[next] {
			if results[next] == nil {
				// The client went away mid-batch; stop delivering.
				return
			}
			if _, err := w.Write(results[next]); err != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
			next++
		}
	}
}

// --- /v1 proxying ---

// memResponse buffers a locally served HTTP response so /v1 fallback
// answers carry exactly the bytes a single-node daemon would send.
type memResponse struct {
	header http.Header
	code   int
	body   bytes.Buffer
}

func newMemResponse() *memResponse {
	return &memResponse{header: http.Header{}, code: http.StatusOK}
}

func (m *memResponse) Header() http.Header         { return m.header }
func (m *memResponse) WriteHeader(code int)        { m.code = code }
func (m *memResponse) Write(p []byte) (int, error) { return m.body.Write(p) }

// proxyResp is a buffered backend response.
type proxyResp struct {
	code        int
	contentType string
	body        []byte
}

// sendProxy forwards body to one backend path and buffers the answer.
// 5xx and 429 statuses are errors (another replica may do better);
// other statuses — including 4xx, which every replica would answer
// identically — are final.
func (g *Gateway) sendProxy(ctx context.Context, b *backend, path string, body []byte) (proxyResp, error) {
	ctx, cancel := context.WithTimeout(ctx, g.cfg.RequestTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, b.url+path, bytes.NewReader(body))
	if err != nil {
		return proxyResp{}, err
	}
	req.Header.Set("Content-Type", "application/json")
	res, err := g.hc.Do(req)
	if err != nil {
		return proxyResp{}, err
	}
	defer res.Body.Close()
	if res.StatusCode >= 500 || res.StatusCode == http.StatusTooManyRequests {
		io.Copy(io.Discard, io.LimitReader(res.Body, 4096))
		return proxyResp{}, fmt.Errorf("gateway: backend %s: status %d", b.url, res.StatusCode)
	}
	data, err := g.readBody(res.Body)
	if err != nil {
		return proxyResp{}, err
	}
	return proxyResp{code: res.StatusCode, contentType: res.Header.Get("Content-Type"), body: data}, nil
}

// proxyHandler builds a /v1 endpoint: route by source, forward with the
// recovery ladder, and fall back to serving the request on the embedded
// service — whose handlers produce byte-identical responses — when the
// fleet cannot answer.
func (g *Gateway) proxyHandler(endpoint, path string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		ctx := r.Context()
		if g.rec != nil {
			ctx = obs.WithRecorder(ctx, g.rec)
		}
		ctx, span := obs.StartSpan(ctx, "gateway-"+endpoint)
		code := http.StatusOK
		defer func() {
			if span != nil {
				span.SetAttr("code", code)
				span.End()
			}
			g.met.observe(endpoint, code, time.Since(start))
		}()

		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, g.cfg.MaxRequestBytes))
		if err != nil {
			code = http.StatusBadRequest
			if errors.As(err, new(*http.MaxBytesError)) {
				code = http.StatusRequestEntityTooLarge
			}
			g.writeError(w, code, "read request body: %v", err)
			return
		}
		// A loose decode for routing only; the backend (or the local
		// service) does the strict validation.
		var probe struct {
			Workload string `json:"workload"`
			Asm      string `json:"asm"`
			Scale    int    `json:"scale"`
		}
		_ = json.Unmarshal(body, &probe)
		key := routeKey(probe.Workload, probe.Asm, probe.Scale)
		if span != nil {
			span.SetAttr("key", key)
		}

		resp, b, err := dispatch(g, ctx, key, func(ctx context.Context, b *backend) (proxyResp, error) {
			return g.sendProxy(ctx, b, path, body)
		})
		if err != nil {
			if ctx.Err() != nil {
				code = http.StatusServiceUnavailable
				g.writeError(w, code, "request cancelled: %v", ctx.Err())
				return
			}
			// Degraded mode: serve the original request on the embedded
			// service for byte-identical single-node semantics.
			g.met.fallbackLocal.Add(1)
			if span != nil {
				span.SetAttr("fallback", "local")
			}
			g.log.Warn("gateway: local fallback", "endpoint", endpoint, "key", key, "err", err)
			lr := r.Clone(ctx)
			lr.Body = io.NopCloser(bytes.NewReader(body))
			lr.ContentLength = int64(len(body))
			mem := newMemResponse()
			g.local.ServeHTTP(mem, lr)
			resp = proxyResp{code: mem.code, contentType: mem.header.Get("Content-Type"), body: mem.body.Bytes()}
			w.Header().Set(DegradedHeader, "local")
		} else if span != nil {
			span.SetAttr("backend", b.url)
		}
		code = resp.code
		if resp.contentType != "" {
			w.Header().Set("Content-Type", resp.contentType)
		}
		w.WriteHeader(resp.code)
		w.Write(resp.body)
	}
}

// handleWorkloads proxies the static workload list (any replica agrees)
// with local fallback.
func (g *Gateway) handleWorkloads(w http.ResponseWriter, r *http.Request) {
	ctx := r.Context()
	for _, idx := range g.ring.ordered("workloads") {
		b := g.backends[idx]
		if !b.healthy.Load() {
			continue
		}
		resp, err := g.sendProxyGet(ctx, b, "/v1/workloads")
		if err == nil {
			w.Header().Set("Content-Type", resp.contentType)
			w.WriteHeader(resp.code)
			w.Write(resp.body)
			return
		}
	}
	lr := r.Clone(ctx)
	mem := newMemResponse()
	g.local.ServeHTTP(mem, lr)
	w.Header().Set(DegradedHeader, "local")
	if ct := mem.header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	w.WriteHeader(mem.code)
	w.Write(mem.body.Bytes())
}

// sendProxyGet is sendProxy for GET endpoints.
func (g *Gateway) sendProxyGet(ctx context.Context, b *backend, path string) (proxyResp, error) {
	ctx, cancel := context.WithTimeout(ctx, g.cfg.RequestTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.url+path, nil)
	if err != nil {
		return proxyResp{}, err
	}
	res, err := g.hc.Do(req)
	if err != nil {
		return proxyResp{}, err
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(res.Body, 4096))
		return proxyResp{}, fmt.Errorf("gateway: backend %s: status %d", b.url, res.StatusCode)
	}
	data, err := g.readBody(res.Body)
	if err != nil {
		return proxyResp{}, err
	}
	return proxyResp{code: res.StatusCode, contentType: res.Header.Get("Content-Type"), body: data}, nil
}

// --- helpers ---

func (g *Gateway) writeError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(service.Error{Message: fmt.Sprintf(format, args...)})
}

// handleTraceRecent mirrors the backend endpoint for the gateway's own
// span trees.
func (g *Gateway) handleTraceRecent(w http.ResponseWriter, r *http.Request) {
	if g.rec == nil {
		g.writeError(w, http.StatusNotFound, "trace recorder disabled")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_ = json.NewEncoder(w).Encode(service.TraceRecent{Traces: g.rec.Recent()})
}
