package gateway

import (
	"fmt"
	"testing"
	"time"
)

func TestRingOrderedCoversAllBackends(t *testing.T) {
	ids := []string{"http://a:1", "http://b:1", "http://c:1"}
	r := newRing(ids, 64)
	counts := make([]int, len(ids))
	for i := 0; i < 1000; i++ {
		ord := r.ordered(fmt.Sprintf("key-%d", i))
		if len(ord) != len(ids) {
			t.Fatalf("ordered returned %d backends, want %d", len(ord), len(ids))
		}
		seen := map[int]bool{}
		for _, idx := range ord {
			if seen[idx] {
				t.Fatalf("duplicate backend %d in %v", idx, ord)
			}
			seen[idx] = true
		}
		counts[ord[0]]++
	}
	// With 64 vnodes each, 1000 keys should land on every backend a
	// substantial number of times — a collapsed ring routes everything
	// to one place.
	for i, n := range counts {
		if n < 100 {
			t.Errorf("backend %d owns only %d/1000 keys — skewed ring (%v)", i, n, counts)
		}
	}
}

func TestRingStableUnderMembershipChange(t *testing.T) {
	full := newRing([]string{"http://a:1", "http://b:1", "http://c:1"}, 64)
	reduced := newRing([]string{"http://a:1", "http://b:1"}, 64)
	moved := 0
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("key-%d", i)
		owner := full.ordered(key)[0]
		if owner == 2 {
			continue // c's keys must move somewhere, of course
		}
		if reduced.ordered(key)[0] != owner {
			moved++
		}
	}
	// Consistent hashing: keys not owned by the removed backend keep
	// their owner (same id strings hash to the same points).
	if moved != 0 {
		t.Errorf("%d keys owned by surviving backends moved on membership change", moved)
	}
	// Determinism: the same ids build the same ring.
	again := newRing([]string{"http://a:1", "http://b:1", "http://c:1"}, 64)
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("key-%d", i)
		a, b := full.ordered(key), again.ordered(key)
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("ring order for %q not deterministic: %v vs %v", key, a, b)
			}
		}
	}
}

func TestBreakerTransitions(t *testing.T) {
	b := newBreaker(2, 50*time.Millisecond)
	now := time.Unix(1000, 0)

	if !b.allow(now) {
		t.Fatal("closed breaker rejected a request")
	}
	b.failure(now)
	if b.currentState() != breakerClosed {
		t.Fatal("one failure of two tripped the breaker")
	}
	b.failure(now)
	if b.currentState() != breakerOpen {
		t.Fatal("threshold failures did not open the breaker")
	}
	if b.allow(now.Add(10 * time.Millisecond)) {
		t.Fatal("open breaker admitted a request before cooldown")
	}

	// Cooldown expiry: exactly one probe goes through.
	probeAt := now.Add(60 * time.Millisecond)
	if !b.allow(probeAt) {
		t.Fatal("cooldown expiry did not admit the half-open probe")
	}
	if b.currentState() != breakerHalfOpen {
		t.Fatalf("state %d after probe admission, want half-open", b.currentState())
	}
	if b.allow(probeAt) {
		t.Fatal("second caller stole the half-open probe slot")
	}
	if b.closed() {
		t.Fatal("half-open breaker claims to be closed")
	}

	// Failed probe: straight back to open for another cooldown.
	b.failure(probeAt)
	if b.currentState() != breakerOpen {
		t.Fatal("failed probe did not reopen the breaker")
	}

	// Successful probe closes it and resets the failure count.
	if !b.allow(probeAt.Add(60 * time.Millisecond)) {
		t.Fatal("second cooldown did not admit a probe")
	}
	b.success()
	if b.currentState() != breakerClosed || !b.closed() {
		t.Fatal("successful probe did not close the breaker")
	}
	b.failure(now)
	if b.currentState() != breakerClosed {
		t.Fatal("failure count was not reset by success")
	}
}

func TestRouteKeyShapes(t *testing.T) {
	if routeKey("compress", "", 0) != "compress/x1" {
		t.Fatalf("workload key: %q", routeKey("compress", "", 0))
	}
	if routeKey("compress", "", 3) != "compress/x3" {
		t.Fatalf("scaled key: %q", routeKey("compress", "", 3))
	}
	a1, a2 := routeKey("", "some asm", 1), routeKey("", "some asm", 1)
	if a1 != a2 {
		t.Fatal("asm keys not deterministic")
	}
	if a1 == routeKey("", "other asm", 1) {
		t.Fatal("distinct asm collides")
	}
}
