package gateway

import (
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// gwMetrics tracks the gateway's recovery actions for /metrics. The
// interesting series here are the ones that prove the resilience
// machinery fired: retries, hedges, hedge wins, local fallbacks, and
// per-backend breaker/health state.
type gwMetrics struct {
	retries       atomic.Int64 // dispatch attempts beyond the first
	hedges        atomic.Int64 // hedge requests launched
	hedgeWins     atomic.Int64 // hedges that answered before the primary
	fallbackLocal atomic.Int64 // jobs/requests served by the embedded session

	mu       sync.Mutex
	requests map[string]int64 // "endpoint|code" → count
	totalDur map[string]float64
}

func (m *gwMetrics) observe(endpoint string, code int, d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.requests == nil {
		m.requests = make(map[string]int64)
		m.totalDur = make(map[string]float64)
	}
	key := fmt.Sprintf("%s|%d", endpoint, code)
	m.requests[key]++
	m.totalDur[key] += d.Seconds()
}

// handleMetrics is the gateway's GET /metrics (Prometheus text format).
func (g *Gateway) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var b strings.Builder

	b.WriteString("# HELP dvid_gateway_requests_total Requests handled by the gateway, by endpoint and status code.\n")
	b.WriteString("# TYPE dvid_gateway_requests_total counter\n")
	g.met.mu.Lock()
	keys := make([]string, 0, len(g.met.requests))
	for k := range g.met.requests {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		parts := strings.SplitN(k, "|", 2)
		fmt.Fprintf(&b, "dvid_gateway_requests_total{endpoint=%q,code=%q} %d\n", parts[0], parts[1], g.met.requests[k])
	}
	g.met.mu.Unlock()

	counter := func(name, help string, v int64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	counter("dvid_retries_total", "Dispatch retries beyond the first attempt.", g.met.retries.Load())
	counter("dvid_hedges_total", "Hedge requests launched after the tail-latency budget.", g.met.hedges.Load())
	counter("dvid_hedge_wins_total", "Hedge requests that answered before the primary.", g.met.hedgeWins.Load())
	counter("dvid_gateway_fallback_local_total", "Requests or jobs served by the embedded local session because no backend was available.", g.met.fallbackLocal.Load())

	b.WriteString("# HELP dvid_breaker_state Per-backend circuit-breaker state (0=closed, 1=half-open, 2=open).\n")
	b.WriteString("# TYPE dvid_breaker_state gauge\n")
	for _, be := range g.backends {
		fmt.Fprintf(&b, "dvid_breaker_state{backend=%q} %d\n", be.url, be.br.currentState())
	}
	b.WriteString("# HELP dvid_backend_healthy Per-backend active health-check verdict (1=healthy).\n")
	b.WriteString("# TYPE dvid_backend_healthy gauge\n")
	for _, be := range g.backends {
		v := 0
		if be.healthy.Load() {
			v = 1
		}
		fmt.Fprintf(&b, "dvid_backend_healthy{backend=%q} %d\n", be.url, v)
	}
	b.WriteString("# HELP dvid_backend_failures_total Per-backend dispatch failures observed by the gateway.\n")
	b.WriteString("# TYPE dvid_backend_failures_total counter\n")
	for _, be := range g.backends {
		fmt.Fprintf(&b, "dvid_backend_failures_total{backend=%q} %d\n", be.url, be.fails.Load())
	}

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write([]byte(b.String()))
}
