package gateway

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
)

// ring is a consistent-hash ring over backend indices. Each backend
// owns vnodes points on a 64-bit circle; a key routes to the backend
// owning the first point clockwise of the key's hash. Routing by build
// key keeps every flavour of one workload on one backend, so the
// fleet-wide build cache stays single-flight per key: N gateways or N
// jobs asking for the same binary all land where it is (or will be)
// compiled. Adding or removing a backend moves only ~1/N of the key
// space.
type ring struct {
	points []ringPoint // sorted by hash
	n      int         // backend count
}

type ringPoint struct {
	hash uint64
	idx  int // backend index
}

// newRing builds a ring over n backends identified by ids (typically
// their URLs, so point placement is stable across restarts and across
// gateway replicas seeing the same fleet).
func newRing(ids []string, vnodes int) *ring {
	if vnodes <= 0 {
		vnodes = 64
	}
	r := &ring{n: len(ids)}
	for i, id := range ids {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{hash: hash64(fmt.Sprintf("%s#%d", id, v)), idx: i})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		return r.points[a].idx < r.points[b].idx
	})
	return r
}

// hash64 positions strings on the ring. SHA-256 rather than a fast
// non-cryptographic hash: vnode labels differ only in a short suffix,
// and weak mixing there visibly skews ownership (a 3-backend ring
// measured 79/20/1 with FNV-1a). Hashing is init- and per-request-rare,
// so the cost is irrelevant.
func hash64(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// ordered returns all backend indices in the key's ring order: the
// key's owner first, then each distinct successor. The tail of the list
// is the retry/hedge preference order, so a key always fails over to
// the same replicas.
func (r *ring) ordered(key string) []int {
	if r.n == 0 {
		return nil
	}
	h := hash64(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]int, 0, r.n)
	seen := make([]bool, r.n)
	for i := 0; i < len(r.points) && len(out) < r.n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.idx] {
			seen[p.idx] = true
			out = append(out, p.idx)
		}
	}
	return out
}
