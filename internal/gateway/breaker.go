package gateway

import (
	"sync"
	"time"
)

// breaker states, exported on /metrics as dvid_breaker_state.
const (
	breakerClosed   = 0 // normal: requests flow
	breakerHalfOpen = 1 // cooldown expired: exactly one probe in flight
	breakerOpen     = 2 // tripped: requests blocked until cooldown
)

// breaker is a per-backend circuit breaker. threshold consecutive
// failures trip it open; after cooldown it admits exactly one probe
// (half-open); the probe's outcome either closes it or re-opens it for
// another cooldown. It keeps a flapping backend from eating a retry
// budget on every request while the health checker's slower loop
// catches up.
type breaker struct {
	mu        sync.Mutex
	threshold int
	cooldown  time.Duration
	state     int
	failures  int
	openedAt  time.Time
}

func newBreaker(threshold int, cooldown time.Duration) *breaker {
	return &breaker{threshold: threshold, cooldown: cooldown}
}

// allow reports whether a request may proceed now. In half-open state
// the first caller wins the probe slot; everyone else is rejected until
// the probe reports. Callers that receive true MUST report the
// outcome via success or failure — an unreported half-open probe would
// wedge the breaker.
func (b *breaker) allow(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if now.Sub(b.openedAt) >= b.cooldown {
			b.state = breakerHalfOpen
			return true
		}
		return false
	default: // half-open: probe already in flight
		return false
	}
}

// abandon reports that a request admitted by allow was cancelled before
// the backend produced a verdict — it lost a hedge race, or the client
// went away. It is neither a success nor a failure: a half-open probe
// slot is returned (the breaker re-enters open with its original
// deadline, so the cooldown is already elapsed and the next allow may
// probe immediately); in other states nothing changes.
func (b *breaker) abandon() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == breakerHalfOpen {
		b.state = breakerOpen
	}
}

// closed reports whether the breaker is in its normal state, without
// consuming a half-open probe slot (hedge selection uses this: a hedge
// must not burn the probe).
func (b *breaker) closed() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state == breakerClosed
}

// currentState returns the state constant for metrics.
func (b *breaker) currentState() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// success reports a completed request: closes the breaker and resets
// the failure count.
func (b *breaker) success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = breakerClosed
	b.failures = 0
}

// failure reports a failed request; threshold consecutive failures (or
// a failed half-open probe) open the breaker.
func (b *breaker) failure(now time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.failures++
	if b.state == breakerHalfOpen || b.failures >= b.threshold {
		b.state = breakerOpen
		b.openedAt = now
	}
}
