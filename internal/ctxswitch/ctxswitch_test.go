package ctxswitch

import (
	"testing"

	"dvi/internal/core"
	"dvi/internal/emu"
	"dvi/internal/isa"
	"dvi/internal/prog"
	"dvi/internal/workload"
)

func buildBench(t *testing.T, name string, edvi bool) (*prog.Program, *prog.Image) {
	t.Helper()
	s, ok := workload.ByName(name)
	if !ok {
		t.Fatalf("unknown workload %s", name)
	}
	pr, img, err := workload.CompileSpec(s, 1, workload.BuildOptions{EDVI: edvi})
	if err != nil {
		t.Fatal(err)
	}
	return pr, img
}

func TestMeasureReductions(t *testing.T) {
	pr, img := buildBench(t, "gcc", true)

	none, err := Measure(pr, img, emu.Config{DVI: core.Config{Level: core.None}}, 997, 400_000)
	if err != nil {
		t.Fatal(err)
	}
	idvi, err := Measure(pr, img, emu.Config{DVI: core.Config{Level: core.IDVI, ABI: isa.DefaultABI()}}, 997, 400_000)
	if err != nil {
		t.Fatal(err)
	}
	full, err := Measure(pr, img, emu.Config{DVI: core.DefaultConfig()}, 997, 400_000)
	if err != nil {
		t.Fatal(err)
	}

	if none.Reduction != 0 {
		t.Errorf("no-DVI reduction = %.3f, want 0", none.Reduction)
	}
	if idvi.Reduction <= 0.05 {
		t.Errorf("I-DVI reduction = %.3f, expected substantial", idvi.Reduction)
	}
	if full.Reduction < idvi.Reduction {
		t.Errorf("E+I-DVI reduction %.3f < I-DVI %.3f; explicit kills should only help",
			full.Reduction, idvi.Reduction)
	}
	t.Logf("gcc: avg live none=%.1f idvi=%.1f full=%.1f; reduction idvi=%.1f%% full=%.1f%%",
		none.AvgLive, idvi.AvgLive, full.AvgLive, 100*idvi.Reduction, 100*full.Reduction)
}

func TestMeasureHistogramConsistency(t *testing.T) {
	pr, img := buildBench(t, "li", true)
	res, err := Measure(pr, img, emu.Config{DVI: core.DefaultConfig()}, 503, 300_000)
	if err != nil {
		t.Fatal(err)
	}
	var n, sum uint64
	for k, c := range res.Hist {
		n += c
		sum += uint64(k) * c
	}
	if n != res.Samples {
		t.Errorf("histogram total %d != samples %d", n, res.Samples)
	}
	if got := float64(sum) / float64(n); got != res.AvgLive {
		t.Errorf("avg from histogram %.4f != %.4f", got, res.AvgLive)
	}
	// Always-live registers (k0,k1,gp,sp) bound live counts from below.
	for k := 0; k < 4; k++ {
		if res.Hist[k] != 0 {
			t.Errorf("sample with %d live registers; always-live set is 4+", k)
		}
	}
}

func TestMeasureTooShortErrors(t *testing.T) {
	pr := prog.New()
	pr.Assembler("main").Ret()
	img, err := pr.Link()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Measure(pr, img, emu.Config{DVI: core.DefaultConfig()}, 1000, 0); err == nil {
		t.Error("expected error for too-short program")
	}
}

// newEmu builds an emulator for the scheduler tests.
func newEmu(t *testing.T, name string, cfg emu.Config) *emu.Emulator {
	t.Helper()
	pr, img := buildBench(t, name, true)
	return emu.New(pr, img, cfg)
}

func TestSchedulerDVISwitchingIsSound(t *testing.T) {
	cfg := emu.Config{DVI: core.DefaultConfig(), Scheme: emu.ElimLVMStack}

	// Reference: each program run standalone.
	ref1 := newEmu(t, "gcc", cfg)
	if err := ref1.Run(0); err != nil {
		t.Fatal(err)
	}
	ref2 := newEmu(t, "ijpeg", cfg)
	if err := ref2.Run(0); err != nil {
		t.Fatal(err)
	}

	// Preemptive round-robin with DVI-based switch code and register
	// poisoning: results must match standalone runs exactly.
	a := newEmu(t, "gcc", cfg)
	b := newEmu(t, "ijpeg", cfg)
	sched := NewScheduler(1009, true, a, b)
	if err := sched.Run(0); err != nil {
		t.Fatal(err)
	}
	if a.Checksum != ref1.Checksum {
		t.Error("gcc results changed under DVI context switching")
	}
	if b.Checksum != ref2.Checksum {
		t.Error("ijpeg results changed under DVI context switching")
	}
	if sched.Stats.SavesEliminated == 0 || sched.Stats.RestoresEliminated == 0 {
		t.Error("DVI switch code eliminated nothing")
	}
	if len(a.Violations)+len(b.Violations) != 0 {
		t.Errorf("violations: %v %v", a.Violations, b.Violations)
	}
	t.Logf("switches=%d eliminated %.1f%% of %d save/restore instances",
		sched.Stats.Switches, 100*sched.Stats.ReductionPct(), sched.Stats.Total())
}

func TestSchedulerBaselineSavesEverything(t *testing.T) {
	cfg := emu.Config{DVI: core.DefaultConfig(), Scheme: emu.ElimLVMStack}
	a := newEmu(t, "vortex", cfg)
	sched := NewScheduler(2003, false, a)
	if err := sched.Run(300_000); err != nil {
		t.Fatal(err)
	}
	if sched.Stats.SavesEliminated != 0 || sched.Stats.RestoresEliminated != 0 {
		t.Error("baseline scheduler eliminated saves")
	}
	if sched.Stats.SavesExecuted != sched.Stats.Switches*uint64(SaveSet) {
		t.Errorf("saves %d != switches %d * %d", sched.Stats.SavesExecuted, sched.Stats.Switches, SaveSet)
	}
}

func TestSchedulerReductionMatchesMeasure(t *testing.T) {
	// The scheduler's observed reduction should be in the same region as
	// the sampling estimate for the same program.
	cfg := emu.Config{DVI: core.DefaultConfig(), Scheme: emu.ElimLVMStack}
	a := newEmu(t, "perl", cfg)
	sched := NewScheduler(997, true, a)
	if err := sched.Run(500_000); err != nil {
		t.Fatal(err)
	}
	pr, img := buildBench(t, "perl", true)
	res, err := Measure(pr, img, cfg, 997, 500_000)
	if err != nil {
		t.Fatal(err)
	}
	got := sched.Stats.ReductionPct()
	if diff := got - res.Reduction; diff > 0.15 || diff < -0.15 {
		t.Errorf("scheduler reduction %.3f vs sampled %.3f; should roughly agree", got, res.Reduction)
	}
}
