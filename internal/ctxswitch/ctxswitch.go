// Package ctxswitch implements the paper's §6 evaluation: dead
// save/restore elimination across context switches. The paper's metric is
// the reduction in the average number of integer registers saved and
// restored at preemption points, "computed by generating a histogram of
// the number of live architectural registers and calculating the average
// number of registers holding live values during execution."
//
// Two tools are provided: Measure samples the LVM at periodic preemption
// points of a single program (the Figure 12 methodology), and Scheduler
// actually runs several threads round-robin, executing the switch sequence
// with live-store/live-load semantics and LVM save/load (§6.1), counting
// the saves and restores a DVI-aware kernel would execute.
package ctxswitch

import (
	"fmt"

	"dvi/internal/emu"
	"dvi/internal/isa"
	"dvi/internal/prog"
)

// SaveSet is the number of integer registers a context switch must
// preserve without DVI: every architectural register except the hardwired
// zero.
const SaveSet = isa.NumRegs - 1

// Result summarizes one liveness-sampling run.
type Result struct {
	Samples   uint64
	Hist      [isa.NumRegs + 1]uint64 // count of samples with k live registers
	AvgLive   float64
	Reduction float64 // 1 - AvgLive/SaveSet
}

// Measure runs the program on the functional emulator and samples the
// number of live registers every interval instructions (the preemption
// points). The emulator's DVI configuration decides how much liveness
// information is available (Level None -> no reduction).
func Measure(pr *prog.Program, img *prog.Image, cfg emu.Config, interval, maxInsts uint64) (Result, error) {
	return MeasureEmulator(emu.New(pr, img, cfg), interval, maxInsts)
}

// MeasureEmulator is Measure over a caller-supplied emulator, which must
// be at program start (freshly constructed or reset). Pooled callers
// (internal/runner) reuse one emulator across jobs this way instead of
// allocating a memory image per measurement.
func MeasureEmulator(e *emu.Emulator, interval, maxInsts uint64) (Result, error) {
	if interval == 0 {
		interval = 997 // a prime, to avoid phase-locking with loop bodies
	}
	var res Result
	var sumLive uint64
	n := uint64(0)
	for !e.Halted {
		if maxInsts != 0 && n >= maxInsts {
			break
		}
		e.Step()
		n++
		if n%interval == 0 {
			// r0 is constant and never saved; exclude it from the count.
			live := e.Tracker.LiveCount()
			if e.Tracker.Live(isa.Zero) {
				live--
			}
			res.Hist[live]++
			res.Samples++
			sumLive += uint64(live)
		}
	}
	if res.Samples == 0 {
		return res, fmt.Errorf("ctxswitch: no samples (program too short for interval %d)", interval)
	}
	res.AvgLive = float64(sumLive) / float64(res.Samples)
	res.Reduction = 1 - res.AvgLive/float64(SaveSet)
	return res, nil
}

// SwitchStats counts the register traffic of a preemptive scheduler.
type SwitchStats struct {
	Switches           uint64
	SavesExecuted      uint64
	SavesEliminated    uint64
	RestoresExecuted   uint64
	RestoresEliminated uint64
	LvmOps             uint64 // lvm-save + lvm-load instances
}

// Total returns all save/restore instances, executed or eliminated.
func (s SwitchStats) Total() uint64 {
	return s.SavesExecuted + s.SavesEliminated + s.RestoresExecuted + s.RestoresEliminated
}

// ReductionPct returns the fraction of saves and restores eliminated.
func (s SwitchStats) ReductionPct() float64 {
	if t := s.Total(); t > 0 {
		return float64(s.SavesEliminated+s.RestoresEliminated) / float64(t)
	}
	return 0
}

// thread is one schedulable execution of a program image.
type thread struct {
	emu   *emu.Emulator
	tcb   [isa.NumRegs]uint64 // saved registers
	lvm   isa.RegMask         // saved LVM (the §6.1 lvm-save instruction)
	valid isa.RegMask         // registers actually written to the TCB
}

// Scheduler runs several programs round-robin with a fixed quantum.
type Scheduler struct {
	threads []*thread
	quantum uint64
	useDVI  bool

	Stats SwitchStats
}

// NewScheduler builds a scheduler over independent emulators. With useDVI
// false, every switch saves and restores the full SaveSet (the baseline
// kernel); with it true, the switch code uses live-stores/live-loads plus
// lvm-save/lvm-load, eliminating dead-register traffic.
func NewScheduler(quantum uint64, useDVI bool, emus ...*emu.Emulator) *Scheduler {
	s := &Scheduler{quantum: quantum, useDVI: useDVI}
	for _, e := range emus {
		s.threads = append(s.threads, &thread{emu: e, lvm: 0xFFFFFFFF})
	}
	return s
}

// save models the switch-out sequence: lvm-save, then one live-store per
// register in the save set.
func (s *Scheduler) save(t *thread) {
	s.Stats.LvmOps++
	t.lvm = t.emu.Tracker.LVM()
	t.valid = 0
	for r := isa.Reg(1); r < isa.NumRegs; r++ {
		if !s.useDVI || t.lvm.Has(r) {
			t.tcb[r] = t.emu.Regs[r]
			t.valid = t.valid.Set(r)
			s.Stats.SavesExecuted++
		} else {
			s.Stats.SavesEliminated++
		}
	}
}

// restore models the switch-in sequence: lvm-load, then one live-load per
// register. Registers whose restore was eliminated are poisoned with a
// recognizable garbage value — on real hardware they would hold another
// thread's data — so an incorrect liveness assertion would corrupt program
// results instead of silently passing.
func (s *Scheduler) restore(t *thread) {
	s.Stats.LvmOps++
	// The LVM-Stack's snapshots belong to whichever context ran last;
	// flush it and reload the LVM from the thread control block (§6.1,
	// §7).
	t.emu.Tracker.FlushStack()
	t.emu.Tracker.SetLVM(t.lvm)
	for r := isa.Reg(1); r < isa.NumRegs; r++ {
		switch {
		case t.valid.Has(r):
			t.emu.Regs[r] = t.tcb[r]
			s.Stats.RestoresExecuted++
		case s.useDVI:
			s.Stats.RestoresEliminated++
			t.emu.Regs[r] = 0xDEAD_0000_0000_0000 | uint64(r)<<32 | s.Stats.Switches
		}
	}
}

// Run executes until every thread halts or the per-thread instruction
// budget is exhausted, switching threads every quantum instructions.
func (s *Scheduler) Run(maxInstsPerThread uint64) error {
	executed := make([]uint64, len(s.threads))
	for {
		anyRan := false
		for i, t := range s.threads {
			if t.emu.Halted || (maxInstsPerThread != 0 && executed[i] >= maxInstsPerThread) {
				continue
			}
			anyRan = true
			s.restore(t)
			for q := uint64(0); q < s.quantum && !t.emu.Halted; q++ {
				t.emu.Step()
				executed[i]++
				if maxInstsPerThread != 0 && executed[i] >= maxInstsPerThread {
					break
				}
			}
			s.save(t)
			s.Stats.Switches++
		}
		if !anyRan {
			return nil
		}
	}
}
