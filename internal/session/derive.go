package session

import (
	"dvi/internal/core"
	"dvi/internal/emu"
	"dvi/internal/isa"
	"dvi/internal/workload"
)

// BuildOptionsFor is the one place the binary flavour is derived from a
// DVI level: E-DVI annotated binaries exactly when the hardware honours
// explicit annotations (core.Full). None- and IDVI-level runs execute
// plain binaries — the paper's I-DVI configuration exploits only the
// calling convention, so shipping kill annotations to it would measure
// fetch overhead the hardware ignores. Every front door (the facade
// one-shots, the harness grids, the CLIs, the HTTP service) routes its
// flavour decision through this rule.
func BuildOptionsFor(level core.Level) workload.BuildOptions {
	return workload.BuildOptions{EDVI: level == core.Full}
}

// EmuConfigFor assembles the emulator configuration for a DVI level and
// elimination scheme: no tracker state for None, the ABI's implicit kills
// for IDVI, the full LVM + LVM-Stack hardware for Full.
func EmuConfigFor(level core.Level, scheme emu.Scheme) emu.Config {
	cfg := emu.Config{Scheme: scheme}
	switch level {
	case core.None:
		cfg.DVI = core.Config{Level: core.None}
	case core.IDVI:
		cfg.DVI = core.Config{Level: core.IDVI, ABI: isa.DefaultABI()}
	default:
		cfg.DVI = core.DefaultConfig()
	}
	return cfg
}

// buildOptions resolves the per-call binary flavour: the central rule
// applied to the effective DVI level, a kill-placement policy, and an
// explicit WithEDVI override when the caller forces a flavour.
func (rs *runSettings) buildOptions(level core.Level) workload.BuildOptions {
	bopt := BuildOptionsFor(level)
	bopt.Policy = rs.policy
	if rs.edvi != nil {
		bopt.EDVI = *rs.edvi
	}
	if rs.infer && level == core.Full {
		// Inferred annotations replace the compiler-assisted ones; like
		// the E-DVI rule, only annotation-honouring hardware gets them.
		bopt.Infer = true
		bopt.EDVI = false
	}
	return bopt
}
