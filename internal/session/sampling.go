package session

import (
	"context"
	"fmt"
	"slices"

	"dvi/internal/mem"
	"dvi/internal/obs"
	"dvi/internal/runner"
	"dvi/internal/sample"
	"dvi/internal/store"
	"dvi/internal/workload"
)

// WithSampling switches Simulate (and jobs routed through CollectSampled)
// from exact detailed simulation to statistical sampling: one fast
// functional pass captures checkpoints, the selected intervals are
// simulated in detail as parallel jobs, and the result is an estimate
// with a confidence interval. interval and warmup are in original
// instructions (0 picks the package defaults); targetCI, when positive,
// makes the sampler densify the measured set — halving the selection
// period round by round — until the estimate's relative CI half-width
// reaches the target.
func WithSampling(interval, warmup uint64, targetCI float64) RunOption {
	return WithSamplingOptions(sample.Options{
		Interval: interval,
		Warmup:   warmup,
		TargetCI: targetCI,
	})
}

// WithSamplingOptions is WithSampling with full control of the plan
// (period, seed).
func WithSamplingOptions(opt sample.Options) RunOption {
	return func(rs *runSettings) { rs.sampling = &opt }
}

// SimulateSampled runs a workload through the statistical sampler and
// returns the full estimate (Simulate with WithSampling returns only the
// rendered machine stats). Sampling options come from WithSampling /
// WithSamplingOptions, or the defaults when absent.
func (s *Session) SimulateSampled(ctx context.Context, w workload.Spec, opts ...RunOption) (sample.Estimate, error) {
	rs := resolve(opts)
	cfg := rs.machineConfig()
	so := sample.Options{}
	if rs.sampling != nil {
		so = *rs.sampling
	}
	est, _, err := s.sampleJob(ctx, Job{
		Label:    rs.label,
		Workload: w,
		Scale:    rs.scale,
		Build:    rs.buildOptions(cfg.Emu.DVI.Level),
		Kind:     runner.Timing,
		Machine:  cfg,
	}, so)
	return est, err
}

// CollectSampled is Collect with every Timing job routed through the
// statistical sampler under so: each Timing result carries the estimate
// on Result.Sampled and the estimate rendered as machine stats on
// Result.Timing, so figure renderers consume it unchanged. Non-Timing
// jobs (functional, ctx-switch, build) and multi-context timing jobs
// (the sampler's checkpoints restore one architectural state) run
// exactly as in Collect, as one batch. Results are in submission order;
// the first failure aborts everything.
//
// Timing jobs are sampled one at a time — each sampled run already fans
// its interval jobs out across the whole worker pool — so the pool stays
// busy without oversubscription.
func (s *Session) CollectSampled(ctx context.Context, jobs []Job, so sample.Options) ([]Result, error) {
	results := make([]Result, len(jobs))
	var exact []Job
	var exactIdx []int
	for i, j := range jobs {
		// Multi-context timing jobs run exactly: checkpointed sampling is
		// single-context (Boot restores one architectural state).
		if j.Kind == runner.Timing && j.Machine.ContextCount() == 1 {
			est, res, err := s.sampleJob(ctx, j, so)
			if err != nil {
				return nil, err
			}
			estCopy := est
			res.Sampled = &estCopy
			res.Index = i
			results[i] = res
			continue
		}
		exact = append(exact, j)
		exactIdx = append(exactIdx, i)
	}
	out, err := s.eng.Run(ctx, exact)
	if err != nil {
		return nil, err
	}
	for k, res := range out {
		res.Index = exactIdx[k]
		results[exactIdx[k]] = res
	}
	return results, nil
}

// maxSampleRounds bounds adaptive densification: starting from the
// default period 8, five halvings reach period 1 (a full census), so more
// rounds can never add coverage.
const maxSampleRounds = 5

// sampleJob runs one Timing job through the sampler: scan, per-interval
// detailed jobs on the engine's pool, aggregate; repeat with a denser
// selection while a TargetCI is unmet. The returned Result mirrors an
// exact Timing result (Timing = the estimate rendered as machine stats).
func (s *Session) sampleJob(ctx context.Context, j Job, so sample.Options) (sample.Estimate, Result, error) {
	label := j.Label
	if label == "" {
		label = fmt.Sprintf("sampled %s", j.Workload.Key(j.Scale, j.Build))
	}
	fail := func(err error) (sample.Estimate, Result, error) {
		return sample.Estimate{}, Result{}, fmt.Errorf("%s: %w", label, err)
	}

	ctx, span := obs.StartSpan(ctx, "sample")
	if span != nil {
		span.SetAttr("label", label)
		defer span.End()
	}

	bctx, bspan := obs.StartSpan(ctx, "build")
	pr, img, err := s.eng.Cache().Get(bctx, j.Workload, j.Scale, j.Build)
	bspan.End()
	if err != nil {
		return fail(err)
	}
	opt := so
	opt.MaxInsts = j.Machine.MaxInsts
	opt = opt.WithDefaults()

	// A persisted measured set for this exact plan reproduces the
	// estimate bit-identically through the deterministic aggregation
	// fold — no scan, no interval simulation.
	planKey, planOK := s.samplePlanKey(j, opt)
	if st := s.eng.Store(); st != nil && planOK {
		if payload, ok := st.Get(store.SampledKind, planKey); ok {
			if est, err := decodeSampledRecord(payload, opt); err == nil {
				if span != nil {
					span.SetAttr("store_hit", true)
				}
				return est, Result{Job: j, Program: pr, Image: img, Timing: est.Stats}, nil
			}
			// Undecodable despite a good checksum (version drift):
			// fall through and re-measure.
		}
	}

	// The pristine loaded image: the baseline every checkpoint's memory
	// delta is taken against, matching the state Machine.Reset leaves a
	// pooled machine's memory in.
	base := mem.New()
	img.LoadInto(base, pr.Data)

	// Interval jobs must never truncate: RunUntil drives the measured
	// region; the whole-program cap already shaped the scan.
	mcfg := j.Machine
	mcfg.MaxInsts = 0

	scanner := sample.NewScanner()
	measured := make(map[int]sample.IntervalResult)
	var retained []*sample.Checkpoint
	defer func() {
		for _, ck := range retained {
			s.eng.ReleaseCheckpoint(ck)
		}
	}()

	var (
		est     sample.Estimate
		scan    sample.ScanResult
		ordered []sample.IntervalResult
	)
	period := opt.Period
	for round := 0; ; round++ {
		_, sspan := obs.StartSpan(ctx, "scan")
		em := s.eng.AcquireEmulator(pr, img, mcfg.Emu)
		scan = scanner.Scan(em, base, mcfg, opt, func(idx int) bool {
			if _, done := measured[idx]; done {
				return false
			}
			return sample.Selected(idx, period, opt.Seed)
		}, s.eng.AcquireCheckpoint)
		s.eng.ReleaseEmulator(em)
		if sspan != nil {
			sspan.SetAttr("round", round)
			sspan.SetAttr("checkpoints", len(scan.Checkpoints))
			sspan.End()
		}
		retained = append(retained, scan.Checkpoints...)

		var ivJobs []Job
		for _, ck := range scan.Checkpoints {
			if ck.MeasureLen == 0 {
				continue
			}
			ivJobs = append(ivJobs, Job{
				Label:    fmt.Sprintf("%s interval %d", label, ck.Index),
				Workload: j.Workload,
				Scale:    j.Scale,
				Build:    j.Build,
				Kind:     runner.SampledInterval,
				Machine:  mcfg,
				Sample:   ck,
			})
		}
		out, err := s.eng.Run(ctx, ivJobs)
		if err != nil {
			return fail(err)
		}
		for _, r := range out {
			measured[r.Interval.Index] = r.Interval
		}

		// Aggregate in interval order — a deterministic fold at any
		// worker count.
		keys := make([]int, 0, len(measured))
		for idx := range measured {
			keys = append(keys, idx)
		}
		slices.Sort(keys)
		ordered = make([]sample.IntervalResult, len(keys))
		for i, idx := range keys {
			ordered[i] = measured[idx]
		}
		_, aspan := obs.StartSpan(ctx, "aggregate")
		est, err = sample.Aggregate(scan, ordered, opt)
		aspan.End()
		if err != nil {
			return fail(err)
		}

		enough := est.Measured >= 2
		if opt.TargetCI > 0 {
			enough = est.RelCI <= opt.TargetCI
		}
		if enough || est.Measured >= scan.Intervals || period <= 1 || round >= maxSampleRounds {
			break
		}
		period /= 2
	}

	if st := s.eng.Store(); st != nil && planOK {
		if payload, err := encodeSampledRecord(scan, ordered); err == nil {
			// Best-effort durability; the store counts its own errors.
			_ = st.Put(store.SampledKind, planKey, payload)
		}
	}

	res := Result{
		Job:     j,
		Program: pr,
		Image:   img,
		Timing:  est.Stats,
	}
	return est, res, nil
}
