package session

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"dvi/internal/emu"
	"dvi/internal/ooo"
	"dvi/internal/sample"
)

// Sampled runs persist their measured interval-result sets, not their
// checkpoints: a checkpoint pins warmed microarchitectural snapshots
// (cache lines, predictor tables, memory deltas) that are neither
// serializable nor needed again, while the interval results plus the
// scan's exact totals are a few flat numbers per interval from which
// sample.Aggregate — a deterministic fold — reproduces the estimate
// bit-identically. A store hit therefore skips the functional scan AND
// every detailed interval simulation.

// sampledRecordVersion guards the persisted encoding; bump it whenever
// the record shape or the aggregation inputs change so stale records
// read as misses instead of wrong answers.
const sampledRecordVersion = 1

// sampledRecord is the persisted outcome of one sampling plan.
type sampledRecord struct {
	Version    int                     `json:"version"`
	TotalInsts uint64                  `json:"total_insts"`
	Intervals  int                     `json:"intervals"`
	Exact      emu.Stats               `json:"exact"`
	Results    []sample.IntervalResult `json:"results"`
}

// samplePlanKey derives the store key for a sampled run: the build key
// plus a hash over everything else that shapes the estimate — the
// machine configuration (minus its trace sink, which never affects
// results) and the fully resolved sampling options (interval, warmup,
// period, seed, target CI, instruction budget). Two plans with the
// same key are guaranteed the same estimate by the sampler's
// determinism contract. ok is false when the configuration cannot be
// hashed (an exotic non-marshalable config) — callers then skip
// persistence rather than risk a collision.
func (s *Session) samplePlanKey(j Job, opt sample.Options) (string, bool) {
	mcfg := j.Machine
	mcfg.Trace = nil // obs.PipeSink: not marshalable, never result-relevant
	blob, err := json.Marshal(struct {
		Machine ooo.Config     `json:"machine"`
		Opt     sample.Options `json:"opt"`
	}{mcfg, opt})
	if err != nil {
		return "", false
	}
	key := j.Workload.Key(j.Scale, j.Build).String()
	sum := sha256.Sum256(append([]byte(key+"\x00"), blob...))
	return key + "@" + hex.EncodeToString(sum[:12]), true
}

// encodeSampledRecord serializes the final measured set.
func encodeSampledRecord(scan sample.ScanResult, results []sample.IntervalResult) ([]byte, error) {
	return json.Marshal(sampledRecord{
		Version:    sampledRecordVersion,
		TotalInsts: scan.TotalInsts,
		Intervals:  scan.Intervals,
		Exact:      scan.Exact,
		Results:    results,
	})
}

// decodeSampledRecord re-aggregates a persisted measured set into the
// estimate the original run produced.
func decodeSampledRecord(payload []byte, opt sample.Options) (sample.Estimate, error) {
	var rec sampledRecord
	if err := json.Unmarshal(payload, &rec); err != nil {
		return sample.Estimate{}, fmt.Errorf("session: decode sampled record: %w", err)
	}
	if rec.Version != sampledRecordVersion {
		return sample.Estimate{}, fmt.Errorf("session: sampled record version %d, want %d", rec.Version, sampledRecordVersion)
	}
	scan := sample.ScanResult{
		TotalInsts: rec.TotalInsts,
		Intervals:  rec.Intervals,
		Exact:      rec.Exact,
	}
	return sample.Aggregate(scan, rec.Results, opt)
}
