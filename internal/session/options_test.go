package session

import (
	"testing"

	"dvi/internal/core"
	"dvi/internal/emu"
	"dvi/internal/ooo"
)

// TestOverlayPreservesEmulatorKnobs pins the documented option-layering
// contract: WithDVILevel and WithScheme applied on top of an explicit
// machine or emulator config replace only the DVI hardware block and the
// elimination scheme — never the config's other knobs (CheckDeadReads,
// MaxOutputs, a customized stack depth).
func TestOverlayPreservesEmulatorKnobs(t *testing.T) {
	base := ooo.DefaultConfig()
	base.Emu.CheckDeadReads = true
	base.Emu.MaxOutputs = 7

	rs := resolve([]RunOption{WithMachineConfig(base), WithScheme(emu.ElimOff)})
	got := rs.machineConfig()
	if !got.Emu.CheckDeadReads || got.Emu.MaxOutputs != 7 {
		t.Fatalf("WithScheme dropped emulator knobs: %+v", got.Emu)
	}
	if got.Emu.Scheme != emu.ElimOff {
		t.Fatalf("scheme override not applied: %v", got.Emu.Scheme)
	}
	if got.Emu.DVI != base.Emu.DVI {
		t.Fatalf("scheme override disturbed the DVI config: %+v", got.Emu.DVI)
	}

	rs = resolve([]RunOption{WithMachineConfig(base), WithDVILevel(core.IDVI)})
	got = rs.machineConfig()
	if !got.Emu.CheckDeadReads || got.Emu.MaxOutputs != 7 {
		t.Fatalf("WithDVILevel dropped emulator knobs: %+v", got.Emu)
	}
	if got.Emu.DVI.Level != core.IDVI {
		t.Fatalf("level override not applied: %v", got.Emu.DVI.Level)
	}
	if got.Emu.Scheme != base.Emu.Scheme {
		t.Fatalf("level override disturbed the scheme: %v", got.Emu.Scheme)
	}

	ecfg := EmuConfigFor(core.Full, emu.ElimLVMStack)
	ecfg.CheckDeadReads = true
	rs = resolve([]RunOption{WithEmulatorConfig(ecfg), WithDVILevel(core.None)})
	egot := rs.emulatorConfig()
	if !egot.CheckDeadReads {
		t.Fatalf("emulator overlay dropped CheckDeadReads: %+v", egot)
	}
	if egot.DVI.Level != core.None {
		t.Fatalf("emulator level override not applied: %v", egot.DVI.Level)
	}
}
