package session_test

import (
	"context"
	"math"
	"reflect"
	"testing"

	"dvi/internal/core"
	"dvi/internal/emu"
	"dvi/internal/ooo"
	"dvi/internal/runner"
	"dvi/internal/sample"
	"dvi/internal/session"
	"dvi/internal/workload"
)

// samplingTestOpts is a small plan sized for test workloads (scale 1 runs
// are a few hundred thousand instructions).
func samplingTestOpts() sample.Options {
	return sample.Options{Interval: 4000, Warmup: 1000, Period: 4}
}

// TestSampledAccuracyAcrossSuite is the headline acceptance gate: on
// every workload and elimination scheme, the sampled IPC estimate lands
// within its own reported confidence interval of the exact detailed IPC,
// and the exact-side architectural statistics are identical to a
// functional run's.
func TestSampledAccuracyAcrossSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-suite accuracy sweep is not short")
	}
	sess := session.New()
	ctx := context.Background()
	schemes := []emu.Scheme{emu.ElimOff, emu.ElimLVM, emu.ElimLVMStack}

	for _, w := range workload.All() {
		for _, scheme := range schemes {
			so := samplingTestOpts()
			est, err := sess.SimulateSampled(ctx, w,
				session.WithScheme(scheme),
				session.WithSamplingOptions(so))
			if err != nil {
				t.Fatalf("%s/%v: sampled: %v", w.Name, scheme, err)
			}
			exact, err := sess.Simulate(ctx, w, session.WithScheme(scheme))
			if err != nil {
				t.Fatalf("%s/%v: exact: %v", w.Name, scheme, err)
			}
			if diff := math.Abs(est.IPC - exact.IPC()); diff > est.CIHalfWidth {
				t.Errorf("%s/%v: estimate %.4f off exact %.4f by %.4f, CI half-width %.4f",
					w.Name, scheme, est.IPC, exact.IPC(), diff, est.CIHalfWidth)
			}
			// Architectural counts come from the functional pass: exact.
			if est.Stats.ElimSaves != exact.ElimSaves || est.Stats.ElimRests != exact.ElimRests {
				t.Errorf("%s/%v: sampled eliminations %d/%d, exact %d/%d",
					w.Name, scheme, est.Stats.ElimSaves, est.Stats.ElimRests,
					exact.ElimSaves, exact.ElimRests)
			}
			if est.Stats.Committed != exact.Committed {
				t.Errorf("%s/%v: sampled committed %d, exact %d",
					w.Name, scheme, est.Stats.Committed, exact.Committed)
			}
			if est.DetailedInsts >= est.TotalInsts {
				t.Errorf("%s/%v: %d detailed instructions of %d total — sampling saved nothing",
					w.Name, scheme, est.DetailedInsts, est.TotalInsts)
			}
		}
	}
}

// TestSampledDeterministicAcrossWorkerCounts pins the scheduling
// determinism contract: the same plan yields bit-identical estimates at
// one worker and at eight.
func TestSampledDeterministicAcrossWorkerCounts(t *testing.T) {
	ctx := context.Background()
	w, _ := workload.ByName("go")
	so := samplingTestOpts()

	run := func(workers int) sample.Estimate {
		t.Helper()
		sess := session.New(session.WithWorkers(workers))
		est, err := sess.SimulateSampled(ctx, w,
			session.WithScheme(emu.ElimLVMStack),
			session.WithSamplingOptions(so))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return est
	}

	one := run(1)
	eight := run(8)
	if !reflect.DeepEqual(one, eight) {
		t.Errorf("estimates differ across worker counts:\n-j1: %+v\n-j8: %+v", one, eight)
	}
	// And re-running in the same session (pooled, warm instances) is
	// also identical.
	again := run(1)
	if !reflect.DeepEqual(one, again) {
		t.Errorf("estimate changed between runs:\nfirst: %+v\nagain: %+v", one, again)
	}
}

// TestSimulateRoutesThroughSampler pins that WithSampling changes
// Simulate's path: the returned stats are the estimate's rendering
// (identical to SimulateSampled's Stats), not an exact run.
func TestSimulateRoutesThroughSampler(t *testing.T) {
	ctx := context.Background()
	sess := session.New()
	w, _ := workload.ByName("li")
	so := samplingTestOpts()

	est, err := sess.SimulateSampled(ctx, w, session.WithSamplingOptions(so))
	if err != nil {
		t.Fatal(err)
	}
	viaSimulate, err := sess.Simulate(ctx, w, session.WithSamplingOptions(so))
	if err != nil {
		t.Fatal(err)
	}
	if viaSimulate != est.Stats {
		t.Errorf("Simulate(WithSampling) = %+v\nwant %+v", viaSimulate, est.Stats)
	}
}

// TestSampledTargetCIDensifies pins adaptive densification: demanding a
// tighter CI than the initial sparse plan delivers makes the sampler
// measure more intervals, and the final estimate reports a CI no wider
// than the target (or a full census).
func TestSampledTargetCIDensifies(t *testing.T) {
	ctx := context.Background()
	sess := session.New()
	w, _ := workload.ByName("go")

	loose, err := sess.SimulateSampled(ctx, w,
		session.WithSamplingOptions(sample.Options{Interval: 4000, Warmup: 1000, Period: 8}))
	if err != nil {
		t.Fatal(err)
	}
	tight, err := sess.SimulateSampled(ctx, w,
		session.WithSamplingOptions(sample.Options{
			Interval: 4000, Warmup: 1000, Period: 8,
			TargetCI: loose.RelCI * 0.9,
		}))
	if err != nil {
		t.Fatal(err)
	}
	if tight.Measured <= loose.Measured {
		t.Errorf("target CI %.4f did not densify: measured %d, loose plan measured %d",
			loose.RelCI*0.9, tight.Measured, loose.Measured)
	}
	if tight.RelCI > loose.RelCI*0.9 && tight.Measured < tight.Intervals {
		t.Errorf("final RelCI %.4f misses target %.4f with %d/%d intervals measured",
			tight.RelCI, loose.RelCI*0.9, tight.Measured, tight.Intervals)
	}
}

// TestCollectSampledMixedBatch pins CollectSampled's contract: Timing
// jobs come back with estimates and rendered stats, non-Timing jobs run
// exactly, and results keep submission order.
func TestCollectSampledMixedBatch(t *testing.T) {
	ctx := context.Background()
	sess := session.New()
	li, _ := workload.ByName("li")
	goW, _ := workload.ByName("go")

	timing := func(w workload.Spec, scheme emu.Scheme) session.Job {
		cfg := ooo.DefaultConfig()
		cfg.Emu = session.EmuConfigFor(core.Full, scheme)
		return session.Job{
			Workload: w, Scale: 1,
			Build:   session.BuildOptionsFor(core.Full),
			Kind:    runner.Timing,
			Machine: cfg,
		}
	}
	functional := func(w workload.Spec, scheme emu.Scheme) session.Job {
		return session.Job{
			Workload: w, Scale: 1,
			Build: session.BuildOptionsFor(core.Full),
			Kind:  runner.Functional,
			Emu:   session.EmuConfigFor(core.Full, scheme),
		}
	}

	jobs := []session.Job{
		timing(li, emu.ElimLVMStack),
		functional(goW, emu.ElimLVMStack),
		timing(goW, emu.ElimOff),
	}

	results, err := sess.CollectSampled(ctx, jobs, samplingTestOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("got %d results, want 3", len(results))
	}
	for i, res := range results {
		if res.Index != i {
			t.Errorf("result %d has index %d", i, res.Index)
		}
	}
	if results[0].Sampled == nil || results[2].Sampled == nil {
		t.Error("timing results missing sampled estimates")
	}
	if results[1].Sampled != nil {
		t.Error("functional result carries a sampled estimate")
	}
	if results[0].Timing != results[0].Sampled.Stats {
		t.Error("timing stats do not match the estimate's rendering")
	}
	if results[1].Func.Original() == 0 {
		t.Error("functional job did not run")
	}
}
