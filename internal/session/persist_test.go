package session_test

import (
	"context"
	"reflect"
	"testing"

	"dvi/internal/emu"
	"dvi/internal/sample"
	"dvi/internal/session"
	"dvi/internal/store"
	"dvi/internal/workload"
)

// TestSampledPersistenceBitIdentical is the sampled half of the
// crash-recovery contract: a session restarted over the same artifact
// store serves a sampled simulation from the persisted interval-result
// set — no scan, no interval simulation — and the restored estimate is
// bit-identical to the one computed live.
func TestSampledPersistenceBitIdentical(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	w, _ := workload.ByName("go")
	so := samplingTestOpts()

	run := func() (sample.Estimate, *store.Store) {
		t.Helper()
		st, err := store.Open(store.Options{Dir: dir})
		if err != nil {
			t.Fatal(err)
		}
		sess := session.New(session.WithStore(st))
		est, err := sess.SimulateSampled(ctx, w,
			session.WithScheme(emu.ElimLVMStack),
			session.WithSamplingOptions(so))
		if err != nil {
			t.Fatal(err)
		}
		return est, st
	}

	cold, st1 := run()
	s1 := st1.Stats()
	if s1.Puts < 2 { // one build artifact + one sampled record
		t.Fatalf("cold run persisted too little: %+v", s1)
	}

	warm, st2 := run()
	if !reflect.DeepEqual(cold, warm) {
		t.Errorf("restored estimate differs:\ncold: %+v\nwarm: %+v", cold, warm)
	}
	s2 := st2.Stats()
	if s2.Hits < 2 { // build + sampled record both served from disk
		t.Fatalf("warm run did not hit the store: %+v", s2)
	}
	if s2.Puts != 0 {
		t.Fatalf("warm run re-persisted: %+v", s2)
	}

	// A different plan is a different key: no false sharing.
	st3, err := store.Open(store.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	sess := session.New(session.WithStore(st3))
	other := so
	other.Period = so.Period * 2
	est, err := sess.SimulateSampled(ctx, w,
		session.WithScheme(emu.ElimLVMStack),
		session.WithSamplingOptions(other))
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(est, cold) {
		t.Error("distinct sampling plans produced identical estimates — key collision?")
	}
	if st3.Stats().Puts == 0 {
		t.Error("new plan was not persisted")
	}
}
