package session_test

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dvi/internal/core"
	"dvi/internal/emu"
	"dvi/internal/ooo"
	"dvi/internal/prog"
	"dvi/internal/runner"
	"dvi/internal/session"
	"dvi/internal/workload"
)

// recordingCompile wraps the real compiler and records every requested
// build flavour, so tests can assert which binaries a run asked for.
type recordingCompile struct {
	mu    sync.Mutex
	keys  []workload.BuildKey
	count atomic.Int64
}

func (rc *recordingCompile) fn() runner.CompileFunc {
	return func(s workload.Spec, scale int, opt workload.BuildOptions) (*prog.Program, *prog.Image, error) {
		rc.count.Add(1)
		rc.mu.Lock()
		rc.keys = append(rc.keys, s.Key(scale, opt))
		rc.mu.Unlock()
		return workload.CompileSpec(s, scale, opt)
	}
}

func (rc *recordingCompile) edviRequested() bool {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	for _, k := range rc.keys {
		if k.EDVI {
			return true
		}
	}
	return false
}

// TestBuildOptionsForDerivation pins the centralized E-DVI rule: exactly
// the full-DVI level requests annotated binaries.
func TestBuildOptionsForDerivation(t *testing.T) {
	cases := []struct {
		level core.Level
		edvi  bool
	}{
		{core.None, false},
		{core.IDVI, false},
		{core.Full, true},
	}
	for _, c := range cases {
		if got := session.BuildOptionsFor(c.level).EDVI; got != c.edvi {
			t.Errorf("BuildOptionsFor(%v).EDVI = %v, want %v", c.level, got, c.edvi)
		}
	}
}

// TestIDVIRunsUseNoEDVIBinaries is the satellite regression: IDVI-level
// runs must never request E-DVI binaries, on any run method. The I-DVI
// hardware exploits only the calling convention; shipping kill
// annotations to it would measure fetch overhead the hardware ignores.
func TestIDVIRunsUseNoEDVIBinaries(t *testing.T) {
	w, _ := workload.ByName("li")
	for _, level := range []core.Level{core.None, core.IDVI} {
		rc := &recordingCompile{}
		sess := session.New(session.WithCompile(rc.fn()), session.WithWorkers(2))
		ctx := context.Background()

		if _, err := sess.Simulate(ctx, w, session.WithDVILevel(level), session.WithMaxInsts(10_000)); err != nil {
			t.Fatal(err)
		}
		if _, err := sess.Emulate(ctx, w, session.WithDVILevel(level)); err != nil {
			t.Fatal(err)
		}
		if _, err := sess.MeasureCtxSwitch(ctx, w, session.WithDVILevel(level),
			session.WithInterval(97), session.WithMaxInsts(10_000)); err != nil {
			t.Fatal(err)
		}
		if _, _, err := sess.Build(ctx, w, session.WithDVILevel(level)); err != nil {
			t.Fatal(err)
		}
		if rc.edviRequested() {
			t.Errorf("%v-level runs requested an E-DVI binary; want plain", level)
		}
	}

	// And the full level must request annotated binaries everywhere.
	rc := &recordingCompile{}
	sess := session.New(session.WithCompile(rc.fn()))
	if _, err := sess.Simulate(context.Background(), w, session.WithDVILevel(core.Full), session.WithMaxInsts(10_000)); err != nil {
		t.Fatal(err)
	}
	if !rc.edviRequested() {
		t.Error("full-level Simulate did not request an E-DVI binary")
	}
}

// TestMachineConfigDerivesFlavour checks the rule also fires when the
// level arrives inside a whole machine config (the facade's
// dvi.Simulate(w, scale, cfg) path).
func TestMachineConfigDerivesFlavour(t *testing.T) {
	w, _ := workload.ByName("compress")
	rc := &recordingCompile{}
	sess := session.New(session.WithCompile(rc.fn()))

	cfg := ooo.DefaultConfig()
	cfg.MaxInsts = 10_000
	cfg.Emu = session.EmuConfigFor(core.IDVI, emu.ElimOff)
	if _, err := sess.Simulate(context.Background(), w, session.WithMachineConfig(cfg)); err != nil {
		t.Fatal(err)
	}
	if rc.edviRequested() {
		t.Error("IDVI machine config requested an E-DVI binary")
	}
}

// TestSimulateMatchesDirect pins the session path against a hand-rolled
// build-and-run: same flavour, same machine, same statistics.
func TestSimulateMatchesDirect(t *testing.T) {
	w, _ := workload.ByName("gcc")
	cfg := ooo.DefaultConfig()
	cfg.MaxInsts = 50_000

	sess := session.New()
	got, err := sess.Simulate(context.Background(), w, session.WithMachineConfig(cfg))
	if err != nil {
		t.Fatal(err)
	}

	pr, img, err := workload.CompileSpec(w, 1, workload.BuildOptions{EDVI: true})
	if err != nil {
		t.Fatal(err)
	}
	want, err := ooo.New(pr, img, cfg).Run()
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("session Simulate stats differ from direct run:\n got %+v\nwant %+v", got, want)
	}
}

// TestConcurrentSimulateOneCompile mirrors the service's 64-way
// coalescing load test at the session layer: concurrent identical calls
// share one single-flight compile.
func TestConcurrentSimulateOneCompile(t *testing.T) {
	w, _ := workload.ByName("ijpeg")
	rc := &recordingCompile{}
	sess := session.New(session.WithCompile(rc.fn()), session.WithWorkers(8))

	const n = 64
	var wg sync.WaitGroup
	errs := make([]error, n)
	stats := make([]ooo.Stats, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			stats[i], errs[i] = sess.Simulate(context.Background(), w, session.WithMaxInsts(20_000))
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		if stats[i] != stats[0] {
			t.Fatalf("call %d stats differ", i)
		}
	}
	if got := rc.count.Load(); got != 1 {
		t.Fatalf("%d concurrent identical Simulate calls compiled %d times, want 1", n, got)
	}
}

// TestBuildCachedVersusFresh checks the artifact ownership contract:
// cached builds share one read-only copy, WithFreshBuild hands out a
// private one and never pollutes the cache.
func TestBuildCachedVersusFresh(t *testing.T) {
	w, _ := workload.ByName("li")
	sess := session.New()
	ctx := context.Background()

	pr1, img1, err := sess.Build(ctx, w, session.WithEDVI(false))
	if err != nil {
		t.Fatal(err)
	}
	pr2, _, err := sess.Build(ctx, w, session.WithEDVI(false))
	if err != nil {
		t.Fatal(err)
	}
	if pr1 != pr2 {
		t.Error("two cached Builds returned different artifacts")
	}
	if img1 == nil || img1.TextWords() == 0 {
		t.Fatal("empty image")
	}

	fresh, _, err := sess.Build(ctx, w, session.WithEDVI(false), session.WithFreshBuild())
	if err != nil {
		t.Fatal(err)
	}
	if fresh == pr1 {
		t.Error("WithFreshBuild returned the cached artifacts")
	}
	if _, misses := sess.Cache().Stats(); misses != 1 {
		t.Errorf("fresh build went through the cache: %d misses, want 1", misses)
	}
}

// buildOnly returns a fast fake compile for pure-orchestration tests: the
// artifacts are placeholders and the jobs are Build-kind, so nothing
// executes them.
func buildOnly(delay func(name string)) runner.CompileFunc {
	return func(s workload.Spec, scale int, opt workload.BuildOptions) (*prog.Program, *prog.Image, error) {
		if delay != nil {
			delay(s.Name)
		}
		if strings.HasPrefix(s.Name, "fail") {
			return nil, nil, fmt.Errorf("boom: %s", s.Name)
		}
		return &prog.Program{}, &prog.Image{}, nil
	}
}

// spec makes a distinct synthetic spec per name (distinct build keys).
func spec(name string) workload.Spec { return workload.Spec{Name: name} }

// TestRunStreamsInSubmissionOrder floods a multi-worker session with
// out-of-order completions and checks delivery is still 0..n-1, each
// result carrying its index.
func TestRunStreamsInSubmissionOrder(t *testing.T) {
	sess := session.New(session.WithWorkers(4), session.WithCompile(buildOnly(nil)))
	const n = 24
	jobs := make([]session.Job, n)
	for i := range jobs {
		jobs[i] = session.Job{Workload: spec(fmt.Sprintf("w%02d", i)), Kind: runner.Build}
	}
	var order []int
	err := sess.Run(context.Background(), jobs, func(res session.Result) error {
		order = append(order, res.Index)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != n {
		t.Fatalf("delivered %d results, want %d", len(order), n)
	}
	for i, idx := range order {
		if idx != i {
			t.Fatalf("result %d delivered at position %d", idx, i)
		}
	}
}

// TestRunStreamsPrefixBeforeBatchCompletes proves streaming is real: with
// job 0 gated, nothing is delivered even though the rest finished; once
// the gate opens, everything arrives in order.
func TestRunStreamsPrefixBeforeBatchCompletes(t *testing.T) {
	gate := make(chan struct{})
	var done atomic.Int64
	compile := buildOnly(func(name string) {
		if name == "slow" {
			<-gate
		}
	})
	progress := func(ev runner.Event) {
		if ev.Phase == runner.JobDone {
			done.Add(1)
		}
	}
	sess := session.New(session.WithWorkers(4), session.WithCompile(compile), session.WithProgress(progress))

	jobs := []session.Job{
		{Workload: spec("slow"), Kind: runner.Build},
		{Workload: spec("fast1"), Kind: runner.Build},
		{Workload: spec("fast2"), Kind: runner.Build},
		{Workload: spec("fast3"), Kind: runner.Build},
	}
	var mu sync.Mutex
	var delivered []int
	errCh := make(chan error, 1)
	go func() {
		errCh <- sess.Run(context.Background(), jobs, func(res session.Result) error {
			mu.Lock()
			delivered = append(delivered, res.Index)
			mu.Unlock()
			return nil
		})
	}()

	// All three fast jobs finish while job 0 is gated...
	deadline := time.Now().Add(5 * time.Second)
	for done.Load() < 3 {
		if time.Now().After(deadline) {
			t.Fatal("fast jobs never finished")
		}
		time.Sleep(time.Millisecond)
	}
	mu.Lock()
	early := len(delivered)
	mu.Unlock()
	if early != 0 {
		t.Fatalf("delivered %d results before the head of the batch finished", early)
	}
	// ...and open the gate: everything must now stream out in order.
	close(gate)
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(delivered) != 4 {
		t.Fatalf("delivered %d results, want 4", len(delivered))
	}
	for i, idx := range delivered {
		if idx != i {
			t.Fatalf("delivery order %v", delivered)
		}
	}
}

// TestRunToleratesPerJobFailures checks the batch contract: a failing job
// arrives as a Result with Err set (wrapped with its label) and the rest
// of the batch still runs.
func TestRunToleratesPerJobFailures(t *testing.T) {
	sess := session.New(session.WithWorkers(2), session.WithCompile(buildOnly(nil)))
	jobs := []session.Job{
		{Workload: spec("ok1"), Kind: runner.Build},
		{Label: "job-two", Workload: spec("fail2"), Kind: runner.Build},
		{Workload: spec("ok3"), Kind: runner.Build},
	}
	var results []session.Result
	err := sess.Run(context.Background(), jobs, func(res session.Result) error {
		results = append(results, res)
		return nil
	})
	if err != nil {
		t.Fatalf("tolerant Run returned batch error: %v", err)
	}
	if len(results) != 3 {
		t.Fatalf("delivered %d results, want 3", len(results))
	}
	if results[0].Err != nil || results[2].Err != nil {
		t.Fatalf("healthy jobs carry errors: %v, %v", results[0].Err, results[2].Err)
	}
	if results[1].Err == nil {
		t.Fatal("failed job delivered without error")
	}
	if msg := results[1].Err.Error(); !strings.Contains(msg, "job-two") || !strings.Contains(msg, "boom") {
		t.Fatalf("error %q does not carry the label and cause", msg)
	}
}

// TestRunEmitErrorCancelsBatch: a non-nil error from the callback aborts
// the stream and is returned verbatim.
func TestRunEmitErrorCancelsBatch(t *testing.T) {
	sess := session.New(session.WithWorkers(2), session.WithCompile(buildOnly(nil)))
	var jobs []session.Job
	for i := 0; i < 8; i++ {
		jobs = append(jobs, session.Job{Workload: spec(fmt.Sprintf("w%d", i)), Kind: runner.Build})
	}
	stop := errors.New("enough")
	seen := 0
	err := sess.Run(context.Background(), jobs, func(res session.Result) error {
		seen++
		if seen == 2 {
			return stop
		}
		return nil
	})
	if !errors.Is(err, stop) {
		t.Fatalf("Run returned %v, want the emit error", err)
	}
	if seen != 2 {
		t.Fatalf("emit called %d times after cancellation, want 2", seen)
	}
}

// TestRunHonoursCancellation: external context cancellation stops the
// stream with the context's error.
func TestRunHonoursCancellation(t *testing.T) {
	gate := make(chan struct{})
	defer close(gate)
	compile := buildOnly(func(name string) {
		if name == "blocked" {
			<-gate
		}
	})
	sess := session.New(session.WithWorkers(1), session.WithCompile(compile))
	ctx, cancel := context.WithCancel(context.Background())
	jobs := []session.Job{
		{Workload: spec("blocked"), Kind: runner.Build},
		{Workload: spec("never"), Kind: runner.Build},
	}
	errCh := make(chan error, 1)
	go func() {
		errCh <- sess.Run(ctx, jobs, func(session.Result) error { return nil })
	}()
	cancel()
	select {
	case err := <-errCh:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Run returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not return after cancellation")
	}
}

// TestEmulateMatchesFacadeConfig checks Emulate's flavour/stat parity
// with a direct emulator over the same binary.
func TestEmulateMatchesFacadeConfig(t *testing.T) {
	w, _ := workload.ByName("compress")
	sess := session.New()
	ecfg := session.EmuConfigFor(core.Full, emu.ElimLVMStack)

	got, err := sess.Emulate(context.Background(), w, session.WithEmulatorConfig(ecfg))
	if err != nil {
		t.Fatal(err)
	}

	pr, img, err := workload.CompileSpec(w, 1, workload.BuildOptions{EDVI: true})
	if err != nil {
		t.Fatal(err)
	}
	e := emu.New(pr, img, ecfg)
	if err := e.Run(runner.DefaultEmuBudget); err != nil {
		t.Fatal(err)
	}
	if got != e.Stats {
		t.Fatalf("session Emulate stats differ from direct emulator:\n got %+v\nwant %+v", got, e.Stats)
	}
}
