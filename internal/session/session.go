// Package session is the reproduction's orchestration layer: one
// long-lived, concurrency-safe handle that owns an execution engine
// (bounded worker pool), its single-flight build cache, and the pooled
// machine and emulator instances. Every front door — the dvi facade's
// one-shot functions, the experiment harness and its CLIs, and the HTTP
// service — routes through a Session, so they all share the same
// memoized builds, the same zero-alloc hot path, and the same
// cancellation and progress plumbing.
//
// A Session is constructed once with functional options (WithWorkers,
// WithCacheCapacity, WithProgress, WithCompile) and then serves any
// number of concurrent calls. Run methods take a context.Context and
// per-call options (WithScale, WithDVILevel, WithScheme,
// WithMachineConfig, ...); defaults reproduce the paper's configuration:
// full DVI hardware, LVM-Stack elimination, and E-DVI annotated binaries
// whenever the DVI level honours them.
//
//	sess := session.New(session.WithWorkers(8))
//	w, _ := workload.ByName("perl")
//	stats, err := sess.Simulate(ctx, w, session.WithScale(2))
//
// Batches stream ordered results while later jobs still run:
//
//	err := sess.Run(ctx, jobs, func(res session.Result) error {
//	    fmt.Println(res.Index, res.Timing.IPC())
//	    return nil
//	})
package session

import (
	"context"
	"fmt"

	"dvi/internal/ctxswitch"
	"dvi/internal/emu"
	"dvi/internal/ooo"
	"dvi/internal/prog"
	"dvi/internal/runner"
	"dvi/internal/workload"
)

// Job is one unit of batch work; it is the engine's job type, re-exported
// so batch callers need not import internal/runner alongside session.
type Job = runner.Job

// Result is the outcome of one job, in submission order. Stream-delivered
// results carry per-job failures on Result.Err.
type Result = runner.Result

// Session owns one execution engine: a bounded worker pool over a
// single-flight, LRU-bounded build cache, plus pools of reusable machine
// and emulator instances. All methods are safe for concurrent use; one
// Session should serve a whole process (report, daemon, test suite) so
// every call shares the memoized builds and warm simulator instances.
type Session struct {
	eng     *runner.Engine
	compile runner.CompileFunc
}

// New builds a Session. With no options it sizes the worker pool to
// runtime.GOMAXPROCS(0), keeps the build cache unbounded (right for
// report runs over the fixed benchmark suite; long-lived daemons serving
// arbitrary client programs should set WithCacheCapacity), and compiles
// through workload.CompileSpec.
func New(opts ...Option) *Session {
	var cfg config
	for _, o := range opts {
		o(&cfg)
	}
	compile := cfg.opts.Compile
	if compile == nil {
		compile = workload.CompileSpec
	}
	return &Session{eng: runner.New(cfg.opts), compile: compile}
}

// Engine exposes the session's execution engine (build cache accounting,
// worker count). The engine is owned by the session; callers must not
// submit work that assumes exclusive use.
func (s *Session) Engine() *runner.Engine { return s.eng }

// Workers returns the configured worker pool size.
func (s *Session) Workers() int { return s.eng.Workers() }

// Cache exposes the session's build cache (hit/miss/eviction accounting).
func (s *Session) Cache() *runner.BuildCache { return s.eng.Cache() }

// PoolStats reports the session's simulator instance pool effectiveness:
// how many jobs ran on a reset warm machine or emulator versus having to
// construct a fresh one. A healthy steady state (daemon or report run)
// reuses nearly always; a low reuse ratio means instances are being
// dropped (oversized client programs) or the pool is cold.
func (s *Session) PoolStats() runner.PoolStats { return s.eng.PoolStats() }

// Build compiles and links one workload, or returns the shared artifacts
// from the build cache. The binary flavour follows the session's central
// E-DVI rule (BuildOptionsFor) applied to the effective DVI level —
// override it with WithEDVI. Cached artifacts are shared and must be
// treated as read-only; callers that need to mutate the program (binary
// rewriting, re-linking) must pass WithFreshBuild, which compiles a
// private copy outside the cache.
func (s *Session) Build(ctx context.Context, w workload.Spec, opts ...RunOption) (*prog.Program, *prog.Image, error) {
	rs := resolve(opts)
	bopt := rs.buildOptions(rs.effectiveLevel())
	if rs.fresh {
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		return s.compile(w, rs.scale, bopt)
	}
	return s.eng.Cache().Get(ctx, w, rs.scale, bopt)
}

// Simulate builds a workload (E-DVI annotations iff the machine's DVI
// level honours them; see BuildOptionsFor) and runs it on the out-of-order
// timing simulator, drawn from the session's machine pool. With
// WithSampling the run goes through the statistical sampler instead and
// the returned stats are the estimate rendered in machine-stat shape
// (SimulateSampled returns the estimate itself, CI included).
func (s *Session) Simulate(ctx context.Context, w workload.Spec, opts ...RunOption) (ooo.Stats, error) {
	rs := resolve(opts)
	cfg := rs.machineConfig()
	if err := cfg.CheckContexts(); err != nil {
		return ooo.Stats{}, err
	}
	if rs.sampling != nil {
		if cfg.ContextCount() > 1 {
			return ooo.Stats{}, fmt.Errorf("session: sampling is single-context (Contexts=%d)", cfg.Contexts)
		}
		est, _, err := s.sampleJob(ctx, Job{
			Label:    rs.label,
			Workload: w,
			Scale:    rs.scale,
			Build:    rs.buildOptions(cfg.Emu.DVI.Level),
			Kind:     runner.Timing,
			Machine:  cfg,
		}, *rs.sampling)
		return est.Stats, err
	}
	res, err := s.one(ctx, Job{
		Label:    rs.label,
		Workload: w,
		Scale:    rs.scale,
		Build:    rs.buildOptions(cfg.Emu.DVI.Level),
		Kind:     runner.Timing,
		Machine:  cfg,
	})
	return res.Timing, err
}

// SimulateContexts is Simulate for multi-context (SMT) machines: the
// aggregate statistics come back together with the per-context
// breakdown (nil on a single-context machine — matching the wire
// format, where ctx_stats is omitted). Additive counters across the
// breakdown sum to the aggregate. Exact execution only: sampling is
// single-context, use Simulate/SimulateSampled for it.
func (s *Session) SimulateContexts(ctx context.Context, w workload.Spec, opts ...RunOption) (ooo.Stats, []ooo.Stats, error) {
	rs := resolve(opts)
	cfg := rs.machineConfig()
	if err := cfg.CheckContexts(); err != nil {
		return ooo.Stats{}, nil, err
	}
	if rs.sampling != nil {
		return ooo.Stats{}, nil, fmt.Errorf("session: SimulateContexts is exact; sampling is single-context (use Simulate)")
	}
	res, err := s.one(ctx, Job{
		Label:    rs.label,
		Workload: w,
		Scale:    rs.scale,
		Build:    rs.buildOptions(cfg.Emu.DVI.Level),
		Kind:     runner.Timing,
		Machine:  cfg,
	})
	return res.Timing, res.CtxStats, err
}

// Emulate runs a workload on the functional reference emulator (drawn
// from the session's emulator pool) and returns its statistics. The
// instruction budget is WithMaxInsts (0 = the engine's default safety
// net, runner.DefaultEmuBudget).
func (s *Session) Emulate(ctx context.Context, w workload.Spec, opts ...RunOption) (emu.Stats, error) {
	rs := resolve(opts)
	ecfg := rs.emulatorConfig()
	res, err := s.one(ctx, Job{
		Label:     rs.label,
		Workload:  w,
		Scale:     rs.scale,
		Build:     rs.buildOptions(ecfg.DVI.Level),
		Kind:      runner.Functional,
		Emu:       ecfg,
		EmuBudget: rs.maxInsts,
	})
	return res.Func, err
}

// MeasureCtxSwitch samples live-register counts at preemption points
// (paper §6.2, Figure 12) over a cached build of the workload.
// WithInterval sets the preemption sampling interval (0 = the measurement
// default); WithMaxInsts bounds the run.
func (s *Session) MeasureCtxSwitch(ctx context.Context, w workload.Spec, opts ...RunOption) (ctxswitch.Result, error) {
	rs := resolve(opts)
	ecfg := rs.emulatorConfig()
	res, err := s.one(ctx, Job{
		Label:     rs.label,
		Workload:  w,
		Scale:     rs.scale,
		Build:     rs.buildOptions(ecfg.DVI.Level),
		Kind:      runner.CtxSwitch,
		Emu:       ecfg,
		EmuBudget: rs.maxInsts,
		Interval:  rs.interval,
	})
	return res.Switch, err
}

// Run executes a heterogeneous job batch and streams results to emit in
// submission order: result i is delivered only after results 0..i-1, as
// soon as that prefix is complete, while later jobs still run. Per-job
// failures arrive on Result.Err (wrapped with the job's label) and do not
// abort the batch; jobs sharing a failed build fail identically through
// the build cache. emit is never called concurrently; returning a non-nil
// error cancels the batch and Run returns it. External cancellation of
// ctx returns ctx's error.
func (s *Session) Run(ctx context.Context, jobs []Job, emit func(Result) error) error {
	return s.eng.Stream(ctx, jobs, emit)
}

// Collect executes a job batch and returns all results in submission
// order. Unlike Run it fails fast: the first job error cancels the rest
// of the batch and is returned (wrapped with the job's label). Use it
// when a batch is all-or-nothing — the experiment harness renders
// figures only from complete grids.
func (s *Session) Collect(ctx context.Context, jobs []Job) ([]Result, error) {
	return s.eng.Run(ctx, jobs)
}

// one runs a single job through the engine (pooled instances, shared
// cache, fail-fast error shape).
func (s *Session) one(ctx context.Context, job Job) (Result, error) {
	out, err := s.eng.Run(ctx, []Job{job})
	if err != nil {
		return Result{}, err
	}
	return out[0], nil
}
