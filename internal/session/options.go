package session

import (
	"dvi/internal/core"
	"dvi/internal/emu"
	"dvi/internal/ooo"
	"dvi/internal/rewrite"
	"dvi/internal/runner"
	"dvi/internal/sample"
	"dvi/internal/store"
)

// Option configures a Session at construction time.
type Option func(*config)

// config collects construction options; it resolves onto the engine's
// option struct.
type config struct {
	opts runner.Options
}

// WithWorkers bounds the session's worker pool (<=0 means
// runtime.GOMAXPROCS(0)). Results are deterministic at any setting; only
// wall-clock changes.
func WithWorkers(n int) Option {
	return func(c *config) { c.opts.Workers = n }
}

// WithCacheCapacity bounds the build cache to this many binaries with LRU
// eviction (<=0 = unbounded). Report runs over the fixed benchmark suite
// can stay unbounded; long-lived daemons compiling arbitrary client
// programs should set a bound.
func WithCacheCapacity(n int) Option {
	return func(c *config) { c.opts.CacheCapacity = n }
}

// WithProgress installs a per-job lifecycle observer. It is called from
// worker goroutines and must be safe for concurrent use.
func WithProgress(fn runner.ProgressFunc) Option {
	return func(c *config) { c.opts.Progress = fn }
}

// WithCompile overrides the build function (nil = workload.CompileSpec).
// The service wraps the default to compile client-submitted assembly;
// tests substitute counting or failing variants.
func WithCompile(fn runner.CompileFunc) Option {
	return func(c *config) { c.opts.Compile = fn }
}

// WithStore backs the session's build cache with an on-disk artifact
// store: compiled binaries and sampled-run results persist across
// restarts, so a warm session skips compiles and sampled re-scans
// entirely. Nil keeps everything in memory.
func WithStore(st *store.Store) Option {
	return func(c *config) { c.opts.Store = st }
}

// RunOption configures one Session call (Build, Simulate, Emulate,
// MeasureCtxSwitch).
type RunOption func(*runSettings)

// runSettings is the resolved per-call configuration.
type runSettings struct {
	scale int

	machine    ooo.Config
	machineSet bool
	emu        emu.Config
	emuSet     bool

	level     core.Level
	levelSet  bool
	scheme    emu.Scheme
	schemeSet bool

	maxInsts uint64
	maxSet   bool

	contexts    int
	contextsSet bool
	fetchPolicy ooo.FetchPolicy
	fetchSet    bool

	edvi   *bool
	infer  bool
	policy rewrite.Policy

	interval uint64
	fresh    bool
	label    string

	// sampling, when set, routes Simulate through the statistical
	// sampler (WithSampling / WithSamplingOptions).
	sampling *sample.Options
}

// resolve folds opts over the defaults: scale 1, the paper's Figure 2
// machine, full DVI, LVM-Stack elimination.
func resolve(opts []RunOption) runSettings {
	rs := runSettings{scale: 1}
	for _, o := range opts {
		o(&rs)
	}
	return rs
}

// WithScale multiplies the workload's iteration count (default 1).
func WithScale(n int) RunOption {
	return func(rs *runSettings) { rs.scale = n }
}

// WithMachineConfig replaces the whole timing-machine configuration
// (default ooo.DefaultConfig()). WithDVILevel, WithScheme and
// WithMaxInsts still apply on top of it.
func WithMachineConfig(cfg ooo.Config) RunOption {
	return func(rs *runSettings) { rs.machine, rs.machineSet = cfg, true }
}

// WithEmulatorConfig replaces the whole functional-emulator configuration
// for Emulate and MeasureCtxSwitch (default: full DVI, LVM-Stack).
// WithDVILevel and WithScheme still apply on top of it.
func WithEmulatorConfig(cfg emu.Config) RunOption {
	return func(rs *runSettings) { rs.emu, rs.emuSet = cfg, true }
}

// WithDVILevel selects which DVI sources the hardware honours (paper
// Figure 5's three configurations). It also selects the binary flavour
// through the session's central E-DVI rule unless WithEDVI overrides it.
func WithDVILevel(level core.Level) RunOption {
	return func(rs *runSettings) { rs.level, rs.levelSet = level, true }
}

// WithScheme selects the save/restore elimination scheme (paper §5.2).
func WithScheme(scheme emu.Scheme) RunOption {
	return func(rs *runSettings) { rs.scheme, rs.schemeSet = scheme, true }
}

// WithMaxInsts caps committed (Simulate) or executed (Emulate,
// MeasureCtxSwitch) instructions. 0 keeps the method default: run to
// completion for Simulate, the engine's safety net for emulator runs.
func WithMaxInsts(n uint64) RunOption {
	return func(rs *runSettings) { rs.maxInsts, rs.maxSet = n, true }
}

// WithContexts sets the number of SMT hardware contexts a Simulate
// machine runs (default: the machine config's own Contexts, usually 1 —
// the single-context paper machine). Each context runs its own copy of
// the workload through one shared core. The physical register file must
// hold at least Contexts*32+1 registers (ooo.Config.CheckContexts);
// incompatible with WithSampling (checkpointing is single-context).
func WithContexts(n int) RunOption {
	return func(rs *runSettings) { rs.contexts, rs.contextsSet = n, true }
}

// WithFetchPolicy selects how a multi-context machine arbitrates its one
// fetch access per cycle among contexts (default round-robin; no effect
// on a single-context machine).
func WithFetchPolicy(p ooo.FetchPolicy) RunOption {
	return func(rs *runSettings) { rs.fetchPolicy, rs.fetchSet = p, true }
}

// WithEDVI forces the binary flavour, overriding the central derivation
// rule (BuildOptionsFor) that otherwise picks E-DVI binaries exactly for
// full-DVI runs.
func WithEDVI(on bool) RunOption {
	return func(rs *runSettings) { rs.edvi = &on }
}

// WithPolicy selects the kill placement policy for annotated builds
// (default rewrite.KillsBeforeCalls).
func WithPolicy(p rewrite.Policy) RunOption {
	return func(rs *runSettings) { rs.policy = p }
}

// WithInferredDVI derives the kill annotations with the interprocedural
// inference pass (rewrite.Infer) instead of the compiler's
// liveness-assisted rewriter: the binary is built plain and every kill is
// discovered from the machine code alone. Effective only when the run's
// DVI level honours explicit annotations (core.Full), mirroring the
// central E-DVI derivation rule.
func WithInferredDVI() RunOption {
	return func(rs *runSettings) { rs.infer = true }
}

// WithInterval sets the preemption sampling interval for MeasureCtxSwitch
// (0 = the measurement default).
func WithInterval(n uint64) RunOption {
	return func(rs *runSettings) { rs.interval = n }
}

// WithFreshBuild makes Build compile a private copy outside the build
// cache. Use it when the caller will mutate the artifacts — run the
// binary rewriter, re-link — which the shared cached copies must never
// see.
func WithFreshBuild() RunOption {
	return func(rs *runSettings) { rs.fresh = true }
}

// WithLabel names the call in progress output and errors (default: a
// label derived from the job kind and build key).
func WithLabel(label string) RunOption {
	return func(rs *runSettings) { rs.label = label }
}

// machineConfig resolves the timing-machine configuration: the explicit
// machine config (or the paper default), overlaid with any level, scheme
// and instruction-budget options.
func (rs *runSettings) machineConfig() ooo.Config {
	cfg := ooo.DefaultConfig()
	if rs.machineSet {
		cfg = rs.machine
	}
	if rs.emuSet {
		cfg.Emu = rs.emu
	}
	cfg.Emu = rs.overlayEmu(cfg.Emu)
	if rs.maxSet {
		cfg.MaxInsts = rs.maxInsts
	}
	if rs.contextsSet {
		cfg.Contexts = rs.contexts
	}
	if rs.fetchSet {
		cfg.FetchPolicy = rs.fetchPolicy
	}
	return cfg
}

// overlayEmu applies WithDVILevel and WithScheme on top of an emulator
// configuration without disturbing its other knobs (CheckDeadReads,
// MaxOutputs): an explicit level replaces only the DVI hardware block,
// an explicit scheme only the elimination scheme.
func (rs *runSettings) overlayEmu(cfg emu.Config) emu.Config {
	if rs.levelSet {
		cfg.DVI = EmuConfigFor(rs.level, cfg.Scheme).DVI
	}
	if rs.schemeSet {
		cfg.Scheme = rs.scheme
	}
	return cfg
}

// emulatorConfig resolves the functional-emulator configuration the same
// way for Emulate and MeasureCtxSwitch.
func (rs *runSettings) emulatorConfig() emu.Config {
	cfg := EmuConfigFor(core.Full, emu.ElimLVMStack)
	if rs.emuSet {
		cfg = rs.emu
	}
	return rs.overlayEmu(cfg)
}

// effectiveLevel is the DVI level a bare Build derives its flavour from:
// an explicit WithDVILevel, else the level inside an explicit machine or
// emulator config, else full DVI.
func (rs *runSettings) effectiveLevel() core.Level {
	switch {
	case rs.levelSet:
		return rs.level
	case rs.emuSet:
		return rs.emu.DVI.Level
	case rs.machineSet:
		return rs.machine.Emu.DVI.Level
	}
	return core.Full
}
