package emu

import (
	"math/rand"
	"testing"

	"dvi/internal/core"
	"dvi/internal/isa"
	"dvi/internal/prog"
)

// run links pr and executes it to completion under cfg.
func run(t *testing.T, pr *prog.Program, cfg Config) *Emulator {
	t.Helper()
	img, err := pr.Link()
	if err != nil {
		t.Fatalf("link: %v", err)
	}
	e := New(pr, img, cfg)
	if err := e.Run(2_000_000); err != nil {
		t.Fatalf("run: %v", err)
	}
	return e
}

func defaultCfg() Config {
	return Config{DVI: core.DefaultConfig(), Scheme: ElimLVMStack, CheckDeadReads: true}
}

func TestArithmeticBasics(t *testing.T) {
	pr := prog.New()
	m := pr.Assembler("main")
	m.Li(isa.T0, 7).Li(isa.T1, 3)
	m.Add(isa.T2, isa.T0, isa.T1) // 10
	m.Sub(isa.T3, isa.T0, isa.T1) // 4
	m.Mul(isa.T4, isa.T0, isa.T1) // 21
	m.Div(isa.T5, isa.T0, isa.T1) // 2
	m.Rem(isa.T6, isa.T0, isa.T1) // 1
	m.Li(isa.A0, 0)
	m.Sys(isa.A0, isa.T2).Sys(isa.A0, isa.T3).Sys(isa.A0, isa.T4).Sys(isa.A0, isa.T5).Sys(isa.A0, isa.T6)
	m.Ret()
	e := run(t, pr, defaultCfg())
	want := []uint64{10, 4, 21, 2, 1}
	for i, w := range want {
		if e.Outputs[i] != w {
			t.Errorf("output %d = %d, want %d", i, e.Outputs[i], w)
		}
	}
}

func TestDivisionEdgeCases(t *testing.T) {
	pr := prog.New()
	m := pr.Assembler("main")
	m.Li(isa.T0, 5).Li(isa.T1, 0)
	m.Div(isa.T2, isa.T0, isa.T1) // div by zero -> 0
	m.Rem(isa.T3, isa.T0, isa.T1) // rem by zero -> rs1
	// INT_MIN / -1 must not trap: (1<<63) / -1 wraps to itself.
	m.Li(isa.T4, 1).Slli(isa.T4, isa.T4, 63)
	m.Li(isa.T5, -1)
	m.Div(isa.T6, isa.T4, isa.T5)
	m.Rem(isa.T7, isa.T4, isa.T5)
	m.Li(isa.A0, 0)
	m.Sys(isa.A0, isa.T2).Sys(isa.A0, isa.T3).Sys(isa.A0, isa.T6).Sys(isa.A0, isa.T7)
	m.Ret()
	e := run(t, pr, defaultCfg())
	want := []uint64{0, 5, 1 << 63, 0}
	for i, w := range want {
		if e.Outputs[i] != w {
			t.Errorf("output %d = %#x, want %#x", i, e.Outputs[i], w)
		}
	}
}

func TestShiftAndCompareSemantics(t *testing.T) {
	pr := prog.New()
	m := pr.Assembler("main")
	m.Li(isa.T0, -8)
	m.Srai(isa.T1, isa.T0, 1)        // -4
	m.Srli(isa.T2, isa.T0, 60)       // high bits of two's complement
	m.Slt(isa.T3, isa.T0, isa.Zero)  // -8 < 0 -> 1
	m.Sltu(isa.T4, isa.T0, isa.Zero) // huge unsigned < 0 -> 0
	m.Li(isa.A0, 0)
	m.Sys(isa.A0, isa.T1).Sys(isa.A0, isa.T2).Sys(isa.A0, isa.T3).Sys(isa.A0, isa.T4)
	m.Ret()
	e := run(t, pr, defaultCfg())
	minusFour := uint64(0xFFFFFFFFFFFFFFFC)
	want := []uint64{minusFour, (1<<64 - 8) >> 60, 1, 0}
	for i, w := range want {
		if e.Outputs[i] != w {
			t.Errorf("output %d = %#x, want %#x", i, e.Outputs[i], w)
		}
	}
}

// TestALUAgainstGo cross-checks R-type ALU results against Go's own
// arithmetic on random operands.
func TestALUAgainstGo(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	ops := []struct {
		op   isa.Op
		gold func(a, b uint64) uint64
	}{
		{isa.ADD, func(a, b uint64) uint64 { return a + b }},
		{isa.SUB, func(a, b uint64) uint64 { return a - b }},
		{isa.MUL, func(a, b uint64) uint64 { return a * b }},
		{isa.AND, func(a, b uint64) uint64 { return a & b }},
		{isa.OR, func(a, b uint64) uint64 { return a | b }},
		{isa.XOR, func(a, b uint64) uint64 { return a ^ b }},
		{isa.NOR, func(a, b uint64) uint64 { return ^(a | b) }},
		{isa.SLL, func(a, b uint64) uint64 { return a << (b & 63) }},
		{isa.SRL, func(a, b uint64) uint64 { return a >> (b & 63) }},
		{isa.SRA, func(a, b uint64) uint64 { return uint64(int64(a) >> (b & 63)) }},
		{isa.DIV, divS},
		{isa.REM, remS},
	}
	for trial := 0; trial < 60; trial++ {
		a, b := r.Uint64(), r.Uint64()
		if trial%4 == 0 {
			b &= 0xFF // exercise small operands and zero
		}
		pr := prog.New()
		m := pr.Assembler("main")
		m.Li32(isa.T0, uint32(a)).Li32(isa.T8, uint32(a>>32)).Slli(isa.T8, isa.T8, 32).Or(isa.T0, isa.T0, isa.T8)
		m.Li32(isa.T1, uint32(b)).Li32(isa.T8, uint32(b>>32)).Slli(isa.T8, isa.T8, 32).Or(isa.T1, isa.T1, isa.T8)
		ch := isa.Zero
		for _, o := range ops {
			m.Inst(isa.Inst{Op: o.op, Rd: isa.T2, Rs1: isa.T0, Rs2: isa.T1})
			m.Sys(ch, isa.T2)
		}
		m.Ret()
		e := run(t, pr, Config{DVI: core.DefaultConfig()})
		for i, o := range ops {
			if got, want := e.Outputs[i], o.gold(a, b); got != want {
				t.Fatalf("%v(%#x,%#x) = %#x, want %#x", o.op, a, b, got, want)
			}
		}
	}
}

func TestMemoryAndByteOps(t *testing.T) {
	pr := prog.New()
	pr.AddData(prog.DataSym{Name: "buf", Size: 32})
	m := pr.Assembler("main")
	m.LoadAddr(isa.T0, "buf")
	m.Li(isa.T1, 0x1234)
	m.St(isa.T1, isa.T0, 8)
	m.Ld(isa.T2, isa.T0, 8)
	m.Sb(isa.T1, isa.T0, 0) // low byte 0x34
	m.Lb(isa.T3, isa.T0, 0)
	m.Li(isa.A0, 0)
	m.Sys(isa.A0, isa.T2).Sys(isa.A0, isa.T3)
	m.Ret()
	e := run(t, pr, defaultCfg())
	if e.Outputs[0] != 0x1234 || e.Outputs[1] != 0x34 {
		t.Errorf("outputs = %#x, %#x", e.Outputs[0], e.Outputs[1])
	}
}

// fibProgram builds a recursive fibonacci with proper frames: s0 holds n,
// s1 holds fib(n-1).
func fibProgram(n int64) *prog.Program {
	pr := prog.New()

	f := pr.Assembler("fib")
	epi := f.Frame(0, true, isa.S0, isa.S1)
	f.Li(isa.T0, 2)
	f.Blt(isa.A0, isa.T0, "base")
	f.Move(isa.S0, isa.A0)
	f.Addi(isa.A0, isa.S0, -1)
	f.Call("fib")
	f.Move(isa.S1, isa.V0)
	f.Addi(isa.A0, isa.S0, -2)
	f.Call("fib")
	f.Add(isa.V0, isa.S1, isa.V0)
	f.Jump("done")
	f.Label("base")
	f.Move(isa.V0, isa.A0)
	f.Label("done")
	epi()

	m := pr.Assembler("main")
	mepi := m.Frame(0, true)
	m.Li(isa.A0, n)
	m.Call("fib")
	m.Li(isa.T0, 0)
	m.Sys(isa.T0, isa.V0)
	mepi()
	return pr
}

func TestRecursiveFib(t *testing.T) {
	e := run(t, fibProgram(15), defaultCfg())
	if e.Outputs[0] != 610 {
		t.Errorf("fib(15) = %d, want 610", e.Outputs[0])
	}
	if len(e.Violations) != 0 {
		t.Errorf("dead-read violations: %v", e.Violations)
	}
	if e.Stats.Calls == 0 || e.Stats.Returns == 0 {
		t.Error("call/return stats not collected")
	}
	if e.Stats.Calls != e.Stats.Returns {
		t.Errorf("calls %d != returns %d", e.Stats.Calls, e.Stats.Returns)
	}
}

// TestSchemesProduceIdenticalResults is the core soundness property of the
// paper: eliminating dead saves and restores must not change program
// results. We run fib under all three schemes and compare checksums.
func TestSchemesProduceIdenticalResults(t *testing.T) {
	var sums []uint64
	for _, scheme := range []Scheme{ElimOff, ElimLVM, ElimLVMStack} {
		cfg := Config{DVI: core.DefaultConfig(), Scheme: scheme, CheckDeadReads: true}
		e := run(t, fibProgram(14), cfg)
		sums = append(sums, e.Checksum)
		if len(e.Violations) != 0 {
			t.Errorf("scheme %v: violations %v", scheme, e.Violations)
		}
	}
	if sums[0] != sums[1] || sums[1] != sums[2] {
		t.Errorf("checksums differ across schemes: %v", sums)
	}
}

// TestSaveRestoreElimination reproduces the paper's Figure 7(c) scenario:
// a caller whose callee-saved register is dead kills it before the call;
// the callee's save and restore are then eliminated dynamically.
func TestSaveRestoreElimination(t *testing.T) {
	build := func(kill bool) *prog.Program {
		pr := prog.New()
		callee := pr.Assembler("proc")
		epi := callee.Frame(0, false, isa.S0)
		callee.Li(isa.S0, 42)
		callee.Add(isa.V0, isa.S0, isa.Zero)
		epi()

		m := pr.Assembler("main")
		mepi := m.Frame(0, true)
		m.Li(isa.S0, 7) // s0 defined...
		m.Add(isa.T0, isa.S0, isa.S0)
		m.Li(isa.T1, 0)
		m.Sys(isa.T1, isa.T0) // ...last use of s0
		if kill {
			m.Kill(isa.S0) // E-DVI: s0 dead before the call
		}
		m.Call("proc")
		m.Li(isa.T1, 0)
		m.Sys(isa.T1, isa.V0)
		mepi()
		return pr
	}

	withKill := run(t, build(true), defaultCfg())
	if withKill.Stats.SavesElim != 1 || withKill.Stats.RestoresElim != 1 {
		t.Errorf("elim counts = %d saves, %d restores; want 1,1",
			withKill.Stats.SavesElim, withKill.Stats.RestoresElim)
	}
	if len(withKill.Violations) != 0 {
		t.Errorf("violations: %v", withKill.Violations)
	}

	without := run(t, build(false), defaultCfg())
	if without.Stats.SavesElim != 0 || without.Stats.RestoresElim != 0 {
		t.Errorf("no-kill run eliminated %d/%d", without.Stats.SavesElim, without.Stats.RestoresElim)
	}
	if withKill.Checksum != without.Checksum {
		t.Error("elimination changed program results")
	}
	// LVM scheme eliminates the save but not the restore.
	lvmOnly := run(t, build(true), Config{DVI: core.DefaultConfig(), Scheme: ElimLVM})
	if lvmOnly.Stats.SavesElim != 1 || lvmOnly.Stats.RestoresElim != 0 {
		t.Errorf("LVM scheme elim = %d/%d, want 1/0", lvmOnly.Stats.SavesElim, lvmOnly.Stats.RestoresElim)
	}
}

func TestDeadReadCheckerFiresOnBadKill(t *testing.T) {
	pr := prog.New()
	m := pr.Assembler("main")
	m.Li(isa.S0, 5)
	m.Kill(isa.S0)                // assert dead...
	m.Add(isa.T0, isa.S0, isa.S0) // ...then read: compiler error
	m.Ret()
	e := run(t, pr, defaultCfg())
	if len(e.Violations) == 0 {
		t.Fatal("dead read not detected")
	}
	if e.Violations[0].Reg != isa.S0 {
		t.Errorf("violation register = %v", e.Violations[0].Reg)
	}
}

func TestIDVIKillsTempsAcrossCalls(t *testing.T) {
	pr := prog.New()
	pr.Assembler("leaf").Li(isa.V0, 1).Ret()
	m := pr.Assembler("main")
	epi := m.Frame(0, true)
	m.Li(isa.T0, 99)
	m.Call("leaf")
	m.Add(isa.T1, isa.T0, isa.T0) // t0 is dead after the call: violation
	epi()
	e := run(t, pr, defaultCfg())
	if len(e.Violations) == 0 {
		t.Fatal("I-DVI dead read of t0 across call not detected")
	}
}

func TestLvmSaveLoadRoundTrip(t *testing.T) {
	pr := prog.New()
	pr.AddData(prog.DataSym{Name: "tcb", Size: 8})
	m := pr.Assembler("main")
	m.LoadAddr(isa.T0, "tcb")
	m.Kill(isa.S0, isa.S1)
	m.LvmSave(isa.T0, 0)
	// Clobber liveness with writes, then reload the mask.
	m.Li(isa.S0, 1).Li(isa.S1, 2)
	m.LvmLoad(isa.T0, 0)
	m.Ret()
	img, err := pr.Link()
	if err != nil {
		t.Fatal(err)
	}
	e := New(pr, img, defaultCfg())
	// Inspect the LVM right after the lvm-load executes (the later return
	// legitimately rewrites callee-saved liveness from the LVM-Stack).
	sawLoad := false
	for !e.Halted {
		st := e.Step()
		if st.Inst.Op == isa.LVML {
			sawLoad = true
			if e.Tracker.Live(isa.S0) || e.Tracker.Live(isa.S1) {
				t.Error("LVM load did not restore dead bits")
			}
			if !e.Tracker.Live(isa.S2) {
				t.Error("LVM load killed unrelated register")
			}
		}
	}
	if !sawLoad {
		t.Fatal("lvm-load never executed")
	}
}

func TestStatsCharacterization(t *testing.T) {
	e := run(t, fibProgram(12), defaultCfg())
	s := e.Stats
	if s.Total == 0 || s.Original() == 0 {
		t.Fatal("no instructions counted")
	}
	if s.Original() > s.Total {
		t.Error("original exceeds total")
	}
	if s.MemRefs != s.Loads+s.Stores {
		t.Errorf("memrefs %d != loads %d + stores %d", s.MemRefs, s.Loads, s.Stores)
	}
	if s.SavesRestores() == 0 {
		t.Error("fib saves/restores not counted")
	}
	if s.CondBr == 0 || s.TakenBr > s.CondBr {
		t.Errorf("branch stats wrong: %d taken of %d", s.TakenBr, s.CondBr)
	}
}

func TestRunBudget(t *testing.T) {
	pr := prog.New()
	m := pr.Assembler("main")
	m.Label("spin")
	m.Jump("spin")
	img, err := pr.Link()
	if err != nil {
		t.Fatal(err)
	}
	e := New(pr, img, Config{DVI: core.DefaultConfig()})
	if err := e.Run(1000); err != ErrBudget {
		t.Errorf("Run = %v, want ErrBudget", err)
	}
}

func TestHaltIsSticky(t *testing.T) {
	pr := prog.New()
	pr.Assembler("main").Ret()
	img, err := pr.Link()
	if err != nil {
		t.Fatal(err)
	}
	e := New(pr, img, Config{DVI: core.DefaultConfig()})
	if err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	total := e.Stats.Total
	st := e.Step()
	if !st.Halted || e.Stats.Total != total {
		t.Error("stepping a halted emulator had side effects")
	}
}

func TestStepReportsKilledMask(t *testing.T) {
	pr := prog.New()
	m := pr.Assembler("main")
	m.Li(isa.S0, 1).Li(isa.S1, 2)
	m.Kill(isa.S0, isa.S1)
	m.Ret()
	img, err := pr.Link()
	if err != nil {
		t.Fatal(err)
	}
	e := New(pr, img, Config{DVI: core.DefaultConfig()})
	var killed isa.RegMask
	for !e.Halted {
		st := e.Step()
		if st.Inst.Op == isa.KILL {
			killed = st.Killed
		}
	}
	if !killed.Has(isa.S0) || !killed.Has(isa.S1) {
		t.Errorf("killed mask = %s", killed)
	}
}

func TestResetRestoresInitialState(t *testing.T) {
	pr := fibProgram(10)
	img, err := pr.Link()
	if err != nil {
		t.Fatal(err)
	}
	e := New(pr, img, defaultCfg())
	if err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	sum1 := e.Checksum
	e.Reset()
	if err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	if e.Checksum != sum1 {
		t.Error("rerun after reset produced different checksum")
	}
}

func TestJalrIndirectCall(t *testing.T) {
	// "callee" is declared first, so its address does not depend on main's
	// length; link a probe image to learn it, then emit it as a constant.
	build := func(addr uint32) (*prog.Program, *prog.Image) {
		pr := prog.New()
		pr.Assembler("callee").Li(isa.V0, 77).Ret()
		m := pr.Assembler("main")
		epi := m.Frame(0, true)
		m.Li32(isa.T0, addr)
		m.CallReg(isa.T0)
		m.Li(isa.T1, 0)
		m.Sys(isa.T1, isa.V0)
		epi()
		img, err := pr.Link()
		if err != nil {
			t.Fatalf("link: %v", err)
		}
		return pr, img
	}
	_, probe := build(0)
	pr, img := build(uint32(probe.ProcAddrs["callee"]))
	e := New(pr, img, defaultCfg())
	if err := e.Run(10_000); err != nil {
		t.Fatal(err)
	}
	if e.Outputs[0] != 77 {
		t.Errorf("jalr call returned %d, want 77", e.Outputs[0])
	}
	if e.Stats.Calls != 2 { // trampoline jal + jalr
		t.Errorf("calls = %d, want 2", e.Stats.Calls)
	}
}

// wildJumpProgram computes a jump far past the text segment.
func wildJumpProgram(target int64) *prog.Program {
	pr := prog.New()
	m := pr.Assembler("main")
	m.Li(isa.T0, target)
	m.Inst(isa.Inst{Op: isa.JR, Rs1: isa.T0}) // computed jump, not a return
	m.Ret()
	return pr
}

func TestWildJumpRecordsFault(t *testing.T) {
	e := run(t, wildJumpProgram(0x40_0000), defaultCfg())
	if !e.Halted {
		t.Fatal("emulator did not halt")
	}
	if e.Stats.Faults != 1 {
		t.Fatalf("Faults = %d, want 1", e.Stats.Faults)
	}
}

func TestMisalignedJumpRecordsFault(t *testing.T) {
	// Target inside the text segment but not word-aligned.
	e := run(t, wildJumpProgram(int64(prog.DefaultTextBase+2)), defaultCfg())
	if e.Stats.Faults != 1 {
		t.Fatalf("Faults = %d, want 1", e.Stats.Faults)
	}
}

func TestStepReportsFaulted(t *testing.T) {
	pr := wildJumpProgram(0x40_0000)
	img, err := pr.Link()
	if err != nil {
		t.Fatal(err)
	}
	e := New(pr, img, defaultCfg())
	var faultStep Step
	for i := 0; i < 100 && !e.Halted; i++ {
		faultStep = e.Step()
	}
	if !faultStep.Halted || !faultStep.Faulted {
		t.Fatalf("final step = %+v, want Halted and Faulted", faultStep)
	}
	if faultStep.PC != 0x40_0000 {
		t.Errorf("fault pc = %#x, want 0x400000", faultStep.PC)
	}
	// A clean exit is not a fault.
	clean := prog.New()
	clean.Assembler("main").Ret()
	e2 := run(t, clean, defaultCfg())
	if e2.Stats.Faults != 0 {
		t.Errorf("clean exit recorded %d faults", e2.Stats.Faults)
	}
}

// TestResetForMatchesFresh pins the pooling contract: an emulator reused
// across different programs via ResetFor behaves exactly like a freshly
// constructed one.
func TestResetForMatchesFresh(t *testing.T) {
	prA := prog.New()
	a := prA.Assembler("main")
	a.Li(isa.T0, 3).Li(isa.T1, 9).Mul(isa.T2, isa.T0, isa.T1)
	a.Li(isa.A0, 1).Sys(isa.A0, isa.T2).Ret()
	imgA, err := prA.Link()
	if err != nil {
		t.Fatal(err)
	}
	prB, imgB := func() (*prog.Program, *prog.Image) {
		pr := prog.New()
		m := pr.Assembler("main")
		m.Li(isa.T0, 41).Addi(isa.T0, isa.T0, 1)
		m.Li(isa.A0, 2).Sys(isa.A0, isa.T0).Ret()
		img, err := pr.Link()
		if err != nil {
			t.Fatal(err)
		}
		return pr, img
	}()

	fresh := New(prB, imgB, defaultCfg())
	if err := fresh.Run(10_000); err != nil {
		t.Fatal(err)
	}

	reused := New(prA, imgA, defaultCfg())
	if err := reused.Run(10_000); err != nil {
		t.Fatal(err)
	}
	reused.ResetFor(prB, imgB, defaultCfg())
	if err := reused.Run(10_000); err != nil {
		t.Fatal(err)
	}

	if reused.Checksum != fresh.Checksum {
		t.Errorf("checksum %#x, want %#x", reused.Checksum, fresh.Checksum)
	}
	if reused.Stats != fresh.Stats {
		t.Errorf("stats %+v, want %+v", reused.Stats, fresh.Stats)
	}
}

// TestStepSteadyStateZeroAlloc pins the 0 allocs/op invariant of the
// emulator inner loop: re-running a program on a warm emulator allocates
// nothing (memory pages, output buffers and tracker state are reused).
func TestStepSteadyStateZeroAlloc(t *testing.T) {
	pr := prog.New()
	m := pr.Assembler("main")
	epi := m.Frame(0, true, isa.S0)
	m.Li(isa.S0, 0)
	m.Li(isa.T1, 2000)
	m.Label("loop")
	m.Addi(isa.S0, isa.S0, 3)
	m.Blt(isa.S0, isa.T1, "loop")
	m.Li(isa.A0, 0).Sys(isa.A0, isa.S0)
	epi()
	img, err := pr.Link()
	if err != nil {
		t.Fatal(err)
	}
	cfg := defaultCfg()
	e := New(pr, img, cfg)
	if err := e.Run(1_000_000); err != nil {
		t.Fatal(err) // warm pages and buffer capacities
	}
	allocs := testing.AllocsPerRun(3, func() {
		e.ResetFor(pr, img, cfg)
		if err := e.Run(1_000_000); err != nil {
			t.Error(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state run allocated %.1f objects, want 0", allocs)
	}
}
