package emu

import (
	"math/rand"
	"testing"

	"dvi/internal/core"
	"dvi/internal/isa"
	"dvi/internal/mem"
	"dvi/internal/prog"
	"dvi/internal/workload"
)

// stepN advances e by at most n steps, stopping at halt, and returns the
// steps actually taken.
func stepN(e *Emulator, n uint64) uint64 {
	var taken uint64
	for ; taken < n && !e.Halted; taken++ {
		e.Step()
	}
	return taken
}

// assertSameState fails unless got and want are in bit-identical
// architectural state.
func assertSameState(t *testing.T, label string, got, want *Emulator) {
	t.Helper()
	if got.Stats != want.Stats {
		t.Errorf("%s: stats %+v, want %+v", label, got.Stats, want.Stats)
	}
	if got.Regs != want.Regs {
		t.Errorf("%s: register files differ", label)
	}
	if got.PC != want.PC || got.Halted != want.Halted {
		t.Errorf("%s: pc %#x halted %v, want %#x %v", label, got.PC, got.Halted, want.PC, want.Halted)
	}
	if got.Checksum != want.Checksum {
		t.Errorf("%s: checksum %#x, want %#x", label, got.Checksum, want.Checksum)
	}
	if len(got.Outputs) != len(want.Outputs) {
		t.Errorf("%s: %d outputs, want %d", label, len(got.Outputs), len(want.Outputs))
	}
	if !got.Mem.Equal(want.Mem) {
		t.Errorf("%s: memory images differ", label)
	}
}

// TestSnapshotRestoreFidelityFuzz pins the checkpoint contract behind the
// statistical sampler: snapshotting an emulator at an arbitrary mid-run
// boundary and resuming in a different (pooled, previously-used) emulator
// is bit-identical to never having stopped — same Stats, registers,
// checksum and memory image — across every workload and elimination
// scheme.
func TestSnapshotRestoreFidelityFuzz(t *testing.T) {
	const limit = 120_000 // steps per combination; bounds test cost
	rng := rand.New(rand.NewSource(0xD11))
	schemes := []Scheme{ElimOff, ElimLVM, ElimLVMStack}

	// One reused emulator across all combinations exercises the pooled
	// ResetFor path the engine uses for interval machines.
	resumed := &Emulator{}

	for _, w := range workload.All() {
		for _, scheme := range schemes {
			pr, img, err := workload.CompileSpec(w, 1, workload.BuildOptions{EDVI: true})
			if err != nil {
				t.Fatalf("%s: compile: %v", w.Name, err)
			}
			cfg := Config{DVI: core.DefaultConfig(), Scheme: scheme}

			ref := New(pr, img, cfg)
			total := stepN(ref, limit)
			if total < 2 {
				t.Fatalf("%s/%v: program too short to split", w.Name, scheme)
			}

			base := mem.New()
			img.LoadInto(base, pr.Data)

			cut := uint64(rng.Int63n(int64(total-1))) + 1
			head := New(pr, img, cfg)
			stepN(head, cut)
			var snap Snapshot
			head.CaptureSnapshot(&snap, base)

			resumed.ResetFor(pr, img, cfg)
			resumed.RestoreSnapshot(&snap)
			stepN(resumed, total-cut)
			assertSameState(t, w.Name+"/"+scheme.String(), resumed, ref)
		}
	}
}

// TestSnapshotCaptureReusesBuffers pins that repeated captures into one
// checkpoint buffer settle into a zero-allocation steady state (the
// sampler pools checkpoint buffers through the engine).
func TestSnapshotCaptureReusesBuffers(t *testing.T) {
	pr := fibProgram(12)
	img, err := pr.Link()
	if err != nil {
		t.Fatal(err)
	}
	base := mem.New()
	img.LoadInto(base, pr.Data)
	e := New(pr, img, defaultCfg())
	stepN(e, 500)

	var snap Snapshot
	e.CaptureSnapshot(&snap, base)
	allocs := testing.AllocsPerRun(20, func() {
		e.CaptureSnapshot(&snap, base)
	})
	if allocs > 0 {
		t.Errorf("steady-state capture allocates %.1f/op, want 0", allocs)
	}
}

// TestRunBudgetBoundaryClassifiesFault pins the interval-boundary fix: a
// budget that expires exactly at a faulting fetch still executes the
// synthetic HALT, so the fault is counted in this run (this interval),
// not deferred to a resumption.
func TestRunBudgetBoundaryClassifiesFault(t *testing.T) {
	pr := wildJumpProgram(0x40_0000)
	img, err := pr.Link()
	if err != nil {
		t.Fatal(err)
	}

	// Count the steps up to (excluding) the halting fault.
	probe := New(pr, img, defaultCfg())
	var steps uint64
	for !probe.Halted {
		probe.Step()
		steps++
	}
	work := steps - 1 // the final step is the synthetic HALT

	e := New(pr, img, defaultCfg())
	if err := e.Run(work); err != nil {
		t.Fatalf("Run at fault boundary = %v, want nil", err)
	}
	if !e.Halted || e.Stats.Faults != 1 {
		t.Fatalf("halted %v faults %d, want true 1", e.Halted, e.Stats.Faults)
	}

	// One instruction earlier the budget genuinely expires mid-program.
	e2 := New(pr, img, defaultCfg())
	if err := e2.Run(work - 1); err != ErrBudget {
		t.Fatalf("Run one before boundary = %v, want ErrBudget", err)
	}
	if e2.Stats.Faults != 0 {
		t.Fatalf("early budget run counted %d faults, want 0", e2.Stats.Faults)
	}
}

// TestRunBudgetBoundaryClassifiesCleanExit is the clean-HALT twin: a
// budget equal to the program's work count reports a normal exit, not
// ErrBudget.
func TestRunBudgetBoundaryClassifiesCleanExit(t *testing.T) {
	pr := prog.New()
	m := pr.Assembler("main")
	m.Li(isa.T0, 1).Addi(isa.T0, isa.T0, 1)
	m.Ret()
	img, err := pr.Link()
	if err != nil {
		t.Fatal(err)
	}

	probe := New(pr, img, defaultCfg())
	var steps uint64
	for !probe.Halted {
		probe.Step()
		steps++
	}
	work := steps - 1

	e := New(pr, img, defaultCfg())
	if err := e.Run(work); err != nil {
		t.Fatalf("Run at clean exit boundary = %v, want nil", err)
	}
	if !e.Halted || e.Stats.Faults != 0 {
		t.Fatalf("halted %v faults %d, want true 0", e.Halted, e.Stats.Faults)
	}
}
