package emu

import (
	"dvi/internal/core"
	"dvi/internal/isa"
	"dvi/internal/mem"
)

// Snapshot captures the complete mid-run state of an Emulator: resuming
// from a snapshot is bit-identical to never having stopped (pinned by the
// fidelity fuzz test). Memory is stored as a page delta against a baseline
// — for checkpoints of a running program the natural baseline is the
// pristine loaded image, which keeps snapshots at a few dirty pages
// instead of the whole footprint.
//
// The statistical sampler (internal/sample) captures one Snapshot per
// selected interval boundary; restoring it into a pooled machine's
// embedded emulator positions the detailed simulation mid-program.
type Snapshot struct {
	Regs     [isa.NumRegs]uint64
	PC       uint64
	Halted   bool
	Stats    Stats
	Checksum uint64
	Outputs  []uint64
	Tracker  core.Snapshot

	Violations []Violation

	// Mem is the page delta against the baseline memory passed to
	// CaptureSnapshot.
	Mem []mem.PageDelta
}

// CaptureSnapshot fills dst with the emulator's current state. The memory
// is captured as a delta against base — pass the pristine image-loaded
// memory of the same program (or an empty Memory for a full capture). The
// snapshot's slices are reused across captures, so a pooled checkpoint
// buffer settles into a steady state with no per-capture allocation.
func (e *Emulator) CaptureSnapshot(dst *Snapshot, base *mem.Memory) {
	dst.Regs = e.Regs
	dst.PC = e.PC
	dst.Halted = e.Halted
	dst.Stats = e.Stats
	dst.Checksum = e.Checksum
	dst.Outputs = append(dst.Outputs[:0], e.Outputs...)
	dst.Tracker = e.Tracker.Snapshot()
	dst.Violations = append(dst.Violations[:0], e.Violations...)
	dst.Mem = e.Mem.DeltaFrom(base, dst.Mem)
}

// RestoreSnapshot reinstates a captured state. The emulator's memory must
// currently equal the baseline the snapshot was captured against — the
// state ResetFor leaves a pooled emulator in for the same program — so the
// page delta lands on the right foundation. Program, image and
// configuration must match the capturing emulator's; the snapshot carries
// only dynamic state.
func (e *Emulator) RestoreSnapshot(s *Snapshot) {
	e.Regs = s.Regs
	e.PC = s.PC
	e.Halted = s.Halted
	e.Stats = s.Stats
	e.Checksum = s.Checksum
	e.Outputs = append(e.Outputs[:0], s.Outputs...)
	e.Tracker.Restore(s.Tracker)
	e.Violations = append(e.Violations[:0], s.Violations...)
	e.Mem.ApplyDelta(s.Mem)
}
