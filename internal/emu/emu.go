// Package emu is the functional emulator: it executes linked images with
// exact architectural semantics, tracks DVI state through a core.Tracker,
// applies dynamic save/restore elimination (configurable scheme), checks
// dead-value soundness, and gathers the program characterization statistics
// of the paper's Figure 3.
//
// The out-of-order timing simulator drives an Emulator one instruction per
// dispatch (SimpleScalar style); standalone it serves as the reference
// implementation that timing results are validated against.
package emu

import (
	"fmt"

	"dvi/internal/core"
	"dvi/internal/isa"
	"dvi/internal/mem"
	"dvi/internal/prog"
)

// Scheme selects which save/restore elimination hardware is modelled
// (paper §5.2 presents two schemes).
type Scheme uint8

const (
	// ElimOff: live-stores and live-loads behave as plain stores/loads.
	ElimOff Scheme = iota
	// ElimLVM: the LVM scheme — only saves (live-stores) are eliminated.
	ElimLVM
	// ElimLVMStack: the LVM-Stack scheme — saves and restores eliminated.
	ElimLVMStack
)

// String returns the table label for the scheme.
func (s Scheme) String() string {
	switch s {
	case ElimOff:
		return "off"
	case ElimLVM:
		return "LVM (saves only)"
	default:
		return "LVM-Stack (saves and restores)"
	}
}

// Config parameterizes an emulator.
type Config struct {
	DVI    core.Config
	Scheme Scheme
	// CheckDeadReads records a violation whenever the program reads a
	// register the DVI hardware believes dead. Correct E-DVI never trips
	// this (paper §7: "errors in E-DVI should be considered compiler
	// errors").
	CheckDeadReads bool
	// MaxOutputs caps recorded SYS outputs (0 = 1024).
	MaxOutputs int
}

// Stats aggregates dynamic execution counts. All counts are instruction
// instances except where noted.
type Stats struct {
	Total uint64 // all instructions executed, including kill annotations
	Kills uint64 // E-DVI kill instructions (cycle overhead, not "work")

	Calls   uint64
	Returns uint64
	CondBr  uint64
	TakenBr uint64
	Jumps   uint64
	MemRefs uint64 // loads+stores that accessed memory (eliminated ones excluded)
	Loads   uint64
	Stores  uint64
	LvmOps  uint64
	ALUOps  uint64
	MulDiv  uint64

	SavesExec    uint64 // live-stores that executed
	SavesElim    uint64 // live-stores eliminated (dead data register)
	RestoresExec uint64 // live-loads that executed
	RestoresElim uint64 // live-loads eliminated (LVM-Stack scheme)

	// Faults counts fetches outside the text segment (a wild jump or a
	// misaligned target). The emulator halts on one — like the clean HALT
	// it always synthesized — but the count distinguishes corrupted
	// control flow from a genuine program exit.
	Faults uint64
}

// Original returns the dynamic instruction count excluding E-DVI
// annotations — the paper's unit of work (§3 "Significance of Results").
func (s Stats) Original() uint64 { return s.Total - s.Kills }

// SavesRestores returns total callee-saved save/restore instances,
// executed or eliminated.
func (s Stats) SavesRestores() uint64 {
	return s.SavesExec + s.SavesElim + s.RestoresExec + s.RestoresElim
}

// Violation records a read of a dead register.
type Violation struct {
	PC  uint64
	Reg isa.Reg
}

// Step reports everything the timing simulator needs to know about one
// architecturally executed instruction.
type Step struct {
	PC     uint64
	Inst   isa.Inst
	NextPC uint64

	// Control flow.
	IsCtl bool // branch or jump
	Taken bool // branch taken / jump always true

	// Memory.
	IsMem bool
	Addr  uint64 // effective address when IsMem

	// DVI.
	Eliminated bool        // this live-store/live-load was dropped
	Killed     isa.RegMask // registers transitioned live->dead at this instruction

	Halted bool
	// Faulted reports that this step fetched outside the text segment:
	// the emulator halted, but on corrupted control flow, not a HALT the
	// program actually contains.
	Faulted bool
}

// Emulator executes one program image.
type Emulator struct {
	cfg Config
	img *prog.Image

	Mem     *mem.Memory
	Regs    [isa.NumRegs]uint64
	PC      uint64
	Tracker *core.Tracker
	Halted  bool

	Stats      Stats
	Violations []Violation

	Checksum uint64
	Outputs  []uint64
}

// New builds an emulator for the image with its own memory (text + data
// loaded) and registers initialized: sp at the stack top, gp at the data
// base.
func New(pr *prog.Program, img *prog.Image, cfg Config) *Emulator {
	e := &Emulator{}
	e.ResetFor(pr, img, cfg)
	return e
}

// NewWithMemory builds an emulator over an existing memory (shared-image
// replays clone the memory themselves).
func NewWithMemory(img *prog.Image, m *mem.Memory, cfg Config) *Emulator {
	e := &Emulator{cfg: cfg, img: img, Mem: m, Tracker: core.New(cfg.DVI)}
	e.Reset()
	return e
}

// ResetFor retargets the emulator to a (possibly different) program,
// image and configuration, then rewinds to program start. The memory is
// zeroed in place and the image reloaded, so a pooled emulator runs a
// fresh job without reallocating its footprint; the result is
// indistinguishable from a New emulator.
func (e *Emulator) ResetFor(pr *prog.Program, img *prog.Image, cfg Config) {
	e.cfg = cfg
	e.img = img
	if e.Mem == nil {
		e.Mem = mem.New()
	} else {
		e.Mem.Reset()
	}
	img.LoadInto(e.Mem, pr.Data)
	if e.Tracker == nil {
		e.Tracker = core.New(cfg.DVI)
	} else {
		e.Tracker.Reconfigure(cfg.DVI)
	}
	e.Reset()
}

// Reset rewinds architectural state to program start. Memory is not
// reloaded (ResetFor does both).
func (e *Emulator) Reset() {
	e.Regs = [isa.NumRegs]uint64{}
	e.Regs[isa.SP] = e.img.StackTop
	e.Regs[isa.GP] = e.img.DataBase
	e.PC = e.img.EntryPC
	e.Halted = false
	e.Stats = Stats{}
	e.Violations = e.Violations[:0]
	e.Checksum = 0
	e.Outputs = e.Outputs[:0]
	e.Tracker.Reset()
}

// Image returns the program image being executed.
func (e *Emulator) Image() *prog.Image { return e.img }

func (e *Emulator) read(r isa.Reg, pc uint64) uint64 {
	if e.cfg.CheckDeadReads && !e.Tracker.Live(r) {
		if len(e.Violations) < 64 {
			e.Violations = append(e.Violations, Violation{PC: pc, Reg: r})
		}
	}
	return e.Regs[r]
}

func (e *Emulator) write(r isa.Reg, v uint64) {
	if r != isa.Zero {
		e.Regs[r] = v
		e.Tracker.OnWrite(r)
	}
}

// Step executes one instruction and returns its description. Stepping a
// halted emulator returns Halted without side effects.
func (e *Emulator) Step() Step {
	if e.Halted {
		return Step{PC: e.PC, Halted: true, Inst: isa.Inst{Op: isa.HALT}}
	}
	pc := e.PC
	in, meta, inText := e.img.AtMeta(pc)
	st := Step{PC: pc, Inst: in, NextPC: pc + isa.InstBytes}
	lvmBefore := e.Tracker.LVM()

	e.Stats.Total++

	switch in.Op {
	case isa.NOP:
		// nothing
	case isa.HALT:
		e.Halted = true
		st.Halted = true
		st.NextPC = pc
		e.Stats.Total-- // halt is the simulation boundary, not work
		if !inText {
			// The HALT is synthetic: control flow left the text segment
			// (wild jump or misaligned target). Halt exactly as before,
			// but report the fault instead of a clean exit.
			e.Stats.Faults++
			st.Faulted = true
		}

	case isa.ADD:
		e.opR(in, pc, func(a, b uint64) uint64 { return a + b })
	case isa.SUB:
		e.opR(in, pc, func(a, b uint64) uint64 { return a - b })
	case isa.MUL:
		e.Stats.MulDiv++
		e.opR(in, pc, func(a, b uint64) uint64 { return a * b })
	case isa.DIV:
		e.Stats.MulDiv++
		e.opR(in, pc, divS)
	case isa.REM:
		e.Stats.MulDiv++
		e.opR(in, pc, remS)
	case isa.AND:
		e.opR(in, pc, func(a, b uint64) uint64 { return a & b })
	case isa.OR:
		e.opR(in, pc, func(a, b uint64) uint64 { return a | b })
	case isa.XOR:
		e.opR(in, pc, func(a, b uint64) uint64 { return a ^ b })
	case isa.NOR:
		e.opR(in, pc, func(a, b uint64) uint64 { return ^(a | b) })
	case isa.SLL:
		e.opR(in, pc, func(a, b uint64) uint64 { return a << (b & 63) })
	case isa.SRL:
		e.opR(in, pc, func(a, b uint64) uint64 { return a >> (b & 63) })
	case isa.SRA:
		e.opR(in, pc, func(a, b uint64) uint64 { return uint64(int64(a) >> (b & 63)) })
	case isa.SLT:
		e.opR(in, pc, func(a, b uint64) uint64 { return boolU(int64(a) < int64(b)) })
	case isa.SLTU:
		e.opR(in, pc, func(a, b uint64) uint64 { return boolU(a < b) })

	case isa.ADDI:
		e.opI(in, pc, func(a uint64, i int64) uint64 { return a + uint64(i) })
	case isa.ANDI:
		e.opI(in, pc, func(a uint64, i int64) uint64 { return a & uint64(uint16(i)) })
	case isa.ORI:
		e.opI(in, pc, func(a uint64, i int64) uint64 { return a | uint64(uint16(i)) })
	case isa.XORI:
		e.opI(in, pc, func(a uint64, i int64) uint64 { return a ^ uint64(uint16(i)) })
	case isa.SLTI:
		e.opI(in, pc, func(a uint64, i int64) uint64 { return boolU(int64(a) < i) })
	case isa.SLLI:
		e.opI(in, pc, func(a uint64, i int64) uint64 { return a << (uint64(i) & 63) })
	case isa.SRLI:
		e.opI(in, pc, func(a uint64, i int64) uint64 { return a >> (uint64(i) & 63) })
	case isa.SRAI:
		e.opI(in, pc, func(a uint64, i int64) uint64 { return uint64(int64(a) >> (uint64(i) & 63)) })
	case isa.LUI:
		e.Stats.ALUOps++
		e.write(in.Rd, uint64(uint16(in.Imm))<<16)

	case isa.LD, isa.LB:
		e.Stats.Loads++
		e.Stats.MemRefs++
		addr := e.read(in.Rs1, pc) + uint64(in.Imm)
		st.IsMem, st.Addr = true, addr
		if in.Op == isa.LD {
			e.write(in.Rd, e.Mem.Read64(addr))
		} else {
			e.write(in.Rd, uint64(e.Mem.Load8(addr)))
		}
	case isa.ST, isa.SB:
		e.Stats.Stores++
		e.Stats.MemRefs++
		addr := e.read(in.Rs1, pc) + uint64(in.Imm)
		st.IsMem, st.Addr = true, addr
		if in.Op == isa.ST {
			e.Mem.Write64(addr, e.read(in.Rs2, pc))
		} else {
			e.Mem.Store8(addr, byte(e.read(in.Rs2, pc)))
		}

	case isa.LVST:
		// Save of a callee-saved register: eliminated when the data
		// register is dead in the LVM (paper §5.2, LVM scheme).
		if e.cfg.Scheme != ElimOff && e.Tracker.SaveEliminable(in.Rs2) {
			e.Stats.SavesElim++
			st.Eliminated = true
			break
		}
		e.Stats.SavesExec++
		e.Stats.Stores++
		e.Stats.MemRefs++
		addr := e.read(in.Rs1, pc) + uint64(in.Imm)
		st.IsMem, st.Addr = true, addr
		// The data register of a save is exempt from dead-read checking:
		// saving a dead value is the conservative no-DVI behaviour.
		e.Mem.Write64(addr, e.Regs[in.Rs2])

	case isa.LVLD:
		// Restore: eliminated when the matching save was (LVM-Stack
		// scheme). The register keeps whatever dead value it holds.
		if e.cfg.Scheme == ElimLVMStack && e.Tracker.RestoreEliminable(in.Rd) {
			e.Stats.RestoresElim++
			st.Eliminated = true
			break
		}
		e.Stats.RestoresExec++
		e.Stats.Loads++
		e.Stats.MemRefs++
		addr := e.read(in.Rs1, pc) + uint64(in.Imm)
		st.IsMem, st.Addr = true, addr
		// A restore rewrites the register but restores *entry* liveness,
		// not unconditional liveness; the tracker handles that at return.
		// Between restore and return the value is architecturally the
		// caller's, so mark it live (it was stored from a live value or
		// the restore would have been eliminated under LVM-Stack; under
		// the LVM scheme a garbage reload of a dead value stays dead only
		// via the return's stack pop).
		e.write(in.Rd, e.Mem.Read64(addr))

	case isa.LVMS:
		e.Stats.LvmOps++
		e.Stats.Stores++
		e.Stats.MemRefs++
		addr := e.read(in.Rs1, pc) + uint64(in.Imm)
		st.IsMem, st.Addr = true, addr
		e.Mem.Write32(addr, uint32(e.Tracker.LVM()))
	case isa.LVML:
		e.Stats.LvmOps++
		e.Stats.Loads++
		e.Stats.MemRefs++
		addr := e.read(in.Rs1, pc) + uint64(in.Imm)
		st.IsMem, st.Addr = true, addr
		e.Tracker.SetLVM(isa.RegMask(e.Mem.Read32(addr)))

	case isa.BEQ, isa.BNE, isa.BLT, isa.BGE, isa.BLTU, isa.BGEU:
		e.Stats.CondBr++
		st.IsCtl = true
		a, b := e.read(in.Rs1, pc), e.read(in.Rs2, pc)
		var take bool
		switch in.Op {
		case isa.BEQ:
			take = a == b
		case isa.BNE:
			take = a != b
		case isa.BLT:
			take = int64(a) < int64(b)
		case isa.BGE:
			take = int64(a) >= int64(b)
		case isa.BLTU:
			take = a < b
		case isa.BGEU:
			take = a >= b
		}
		if take {
			e.Stats.TakenBr++
			st.NextPC = meta.Target
		}
		st.Taken = take

	case isa.J:
		e.Stats.Jumps++
		st.IsCtl, st.Taken = true, true
		st.NextPC = meta.Target
	case isa.JAL:
		e.Stats.Calls++
		st.IsCtl, st.Taken = true, true
		e.write(isa.RA, pc+isa.InstBytes)
		st.NextPC = meta.Target
		e.Tracker.OnCall()
	case isa.JALR:
		e.Stats.Calls++
		st.IsCtl, st.Taken = true, true
		target := e.read(in.Rs1, pc)
		e.write(in.Rd, pc+isa.InstBytes)
		st.NextPC = target
		e.Tracker.OnCall()
	case isa.JR:
		st.IsCtl, st.Taken = true, true
		st.NextPC = e.read(in.Rs1, pc)
		if in.IsReturn {
			e.Stats.Returns++
			e.Tracker.OnReturn()
		} else {
			e.Stats.Jumps++
		}

	case isa.KILL:
		e.Stats.Kills++
		e.Tracker.OnKill(in.Mask)

	case isa.SYS:
		ch, v := e.read(in.Rs1, pc), e.read(in.Rs2, pc)
		e.Checksum = e.Checksum*1099511628211 + v + ch // FNV-ish fold
		maxOut := e.cfg.MaxOutputs
		if maxOut == 0 {
			maxOut = 1024
		}
		if len(e.Outputs) < maxOut {
			e.Outputs = append(e.Outputs, v)
		}

	default:
		panic(fmt.Sprintf("emu: unimplemented opcode %v at %#x", in.Op, pc))
	}

	if !st.Halted {
		e.PC = st.NextPC
	}
	st.Killed = lvmBefore &^ e.Tracker.LVM()
	return st
}

func (e *Emulator) opR(in isa.Inst, pc uint64, f func(a, b uint64) uint64) {
	e.Stats.ALUOps++
	e.write(in.Rd, f(e.read(in.Rs1, pc), e.read(in.Rs2, pc)))
}

func (e *Emulator) opI(in isa.Inst, pc uint64, f func(a uint64, imm int64) uint64) {
	e.Stats.ALUOps++
	e.write(in.Rd, f(e.read(in.Rs1, pc), in.Imm))
}

func divS(a, b uint64) uint64 {
	sa, sb := int64(a), int64(b)
	switch {
	case sb == 0:
		return 0
	case sa == -1<<63 && sb == -1:
		return a // wraps
	default:
		return uint64(sa / sb)
	}
}

func remS(a, b uint64) uint64 {
	sa, sb := int64(a), int64(b)
	switch {
	case sb == 0:
		return a
	case sa == -1<<63 && sb == -1:
		return 0
	default:
		return uint64(sa % sb)
	}
}

func boolU(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// ErrBudget is returned by Run when the instruction budget expires before
// the program halts.
var ErrBudget = fmt.Errorf("emu: instruction budget exhausted")

// Run executes until HALT or until maxInsts instructions have executed
// (0 = unlimited). It returns ErrBudget if the budget expired.
//
// A HALT (clean exit or the synthetic fault for control flow that left
// the text segment) sitting exactly on the budget boundary is still
// executed: like Step, Run treats the halt as the simulation boundary
// rather than work, so a run whose budget equals the program's step count
// classifies its exit — in particular, the Faults count lands in this
// run, not in a later resumption of the same emulator. Interval-based
// accounting (internal/sample) depends on faults being attributed to the
// interval containing the faulting fetch.
func (e *Emulator) Run(maxInsts uint64) error {
	for n := uint64(0); !e.Halted; n++ {
		if maxInsts != 0 && n >= maxInsts {
			if in, _, _ := e.img.AtMeta(e.PC); in.Op == isa.HALT {
				e.Step() // boundary classification, not work
				return nil
			}
			return ErrBudget
		}
		e.Step()
	}
	return nil
}
