// Package mem provides the sparse byte-addressable memory used by both the
// functional emulator and the timing simulator. Pages are allocated lazily
// so workloads can scatter data across a 64-bit address space.
package mem

import (
	"encoding/binary"
	"slices"
)

const (
	pageShift = 12
	// PageSize is the allocation granule in bytes.
	PageSize = 1 << pageShift
	pageMask = PageSize - 1
)

// Memory is a sparse, little-endian memory. The zero value is ready to use;
// unwritten locations read as zero.
type Memory struct {
	pages map[uint64]*[PageSize]byte
}

// New returns an empty memory.
func New() *Memory { return &Memory{pages: make(map[uint64]*[PageSize]byte)} }

func (m *Memory) page(addr uint64, create bool) *[PageSize]byte {
	if m.pages == nil {
		if !create {
			return nil
		}
		m.pages = make(map[uint64]*[PageSize]byte)
	}
	key := addr >> pageShift
	p := m.pages[key]
	if p == nil && create {
		p = new([PageSize]byte)
		m.pages[key] = p
	}
	return p
}

// Load8 returns the byte at addr.
func (m *Memory) Load8(addr uint64) byte {
	p := m.page(addr, false)
	if p == nil {
		return 0
	}
	return p[addr&pageMask]
}

// Store8 stores b at addr.
func (m *Memory) Store8(addr uint64, b byte) {
	m.page(addr, true)[addr&pageMask] = b
}

// Read64 returns the little-endian 64-bit word at addr. Unaligned and
// page-crossing reads are handled byte-by-byte.
func (m *Memory) Read64(addr uint64) uint64 {
	if addr&pageMask <= PageSize-8 {
		if p := m.page(addr, false); p != nil {
			off := addr & pageMask
			return binary.LittleEndian.Uint64(p[off : off+8])
		}
		return 0
	}
	var v uint64
	for i := uint64(0); i < 8; i++ {
		v |= uint64(m.Load8(addr+i)) << (8 * i)
	}
	return v
}

// Write64 stores v little-endian at addr.
func (m *Memory) Write64(addr uint64, v uint64) {
	if addr&pageMask <= PageSize-8 {
		p := m.page(addr, true)
		off := addr & pageMask
		binary.LittleEndian.PutUint64(p[off:off+8], v)
		return
	}
	for i := uint64(0); i < 8; i++ {
		m.Store8(addr+i, byte(v>>(8*i)))
	}
}

// Read32 returns the little-endian 32-bit word at addr.
func (m *Memory) Read32(addr uint64) uint32 {
	if addr&pageMask <= PageSize-4 {
		if p := m.page(addr, false); p != nil {
			off := addr & pageMask
			return binary.LittleEndian.Uint32(p[off : off+4])
		}
		return 0
	}
	var v uint32
	for i := uint64(0); i < 4; i++ {
		v |= uint32(m.Load8(addr+i)) << (8 * i)
	}
	return v
}

// Write32 stores v little-endian at addr.
func (m *Memory) Write32(addr uint64, v uint32) {
	if addr&pageMask <= PageSize-4 {
		p := m.page(addr, true)
		off := addr & pageMask
		binary.LittleEndian.PutUint32(p[off:off+4], v)
		return
	}
	for i := uint64(0); i < 4; i++ {
		m.Store8(addr+i, byte(v>>(8*i)))
	}
}

// StoreBytes copies b into memory starting at addr.
func (m *Memory) StoreBytes(addr uint64, b []byte) {
	for i, c := range b {
		m.Store8(addr+uint64(i), c)
	}
}

// Pages returns the number of allocated pages (for footprint accounting).
func (m *Memory) Pages() int { return len(m.pages) }

// maxResetPages bounds the footprint a reusable memory keeps warm
// (4 MiB). The benchmark suite's workloads stay far below it, so pooled
// instances retain their pages across jobs; an outsized footprint — a
// client-submitted program striding across memory — is not worth
// keeping: pools refuse to retain such instances (Oversized) and Reset
// releases the pages rather than zeroing them, so one hostile request
// cannot pin gigabytes in a long-lived daemon or make later resets pay
// for its footprint.
const maxResetPages = 1024

// Oversized reports whether the allocated footprint exceeds what a pool
// should keep warm. Callers drop oversized instances instead of pooling
// them.
func (m *Memory) Oversized() bool { return len(m.pages) > maxResetPages }

// Reset zeroes the memory: every location reads as zero again. Footprints
// up to maxResetPages are zeroed in place, keeping the page map and
// backing arrays allocated — this is what lets a pooled emulator or
// machine run a fresh job without reallocating (and re-garbage-
// collecting) its whole footprint; larger footprints are released.
func (m *Memory) Reset() {
	if len(m.pages) > maxResetPages {
		m.pages = make(map[uint64]*[PageSize]byte)
		return
	}
	for _, p := range m.pages {
		*p = [PageSize]byte{}
	}
}

// PageDelta is one page whose contents diverge from a baseline memory.
// A slice of deltas is the compact representation of "this memory, given
// that baseline": checkpoints of a running program against its pristine
// loaded image stay small because code and read-mostly data pages are
// shared with the baseline and never appear in the delta.
type PageDelta struct {
	Key  uint64 // page index (address >> log2(PageSize))
	Data [PageSize]byte
}

// DeltaFrom appends to dst (sliced to length zero first, so a pooled
// buffer's capacity is reused) every page of m whose contents differ from
// base, sorted by page key, and returns the slice. A page absent from one
// side compares as all-zero — Reset zeroes pages in place, so a zeroed
// page and a never-touched one are the same memory state. The common case
// — m grown from base by execution — never loses pages, but the scan
// covers base-only pages too so the delta is exact for any pair.
func (m *Memory) DeltaFrom(base *Memory, dst []PageDelta) []PageDelta {
	dst = dst[:0]
	var zero [PageSize]byte
	for key, p := range m.pages {
		bp := base.pages[key]
		if bp == nil {
			bp = &zero
		}
		if *p != *bp {
			dst = append(dst, PageDelta{Key: key, Data: *p})
		}
	}
	for key, bp := range base.pages {
		if m.pages[key] == nil && *bp != zero {
			dst = append(dst, PageDelta{Key: key, Data: zero})
		}
	}
	slices.SortFunc(dst, func(a, b PageDelta) int {
		switch {
		case a.Key < b.Key:
			return -1
		case a.Key > b.Key:
			return 1
		}
		return 0
	})
	return dst
}

// ApplyDelta overwrites whole pages from a delta. Applying a delta taken
// with DeltaFrom(base) to a memory currently in the base state reproduces
// the captured memory exactly.
func (m *Memory) ApplyDelta(delta []PageDelta) {
	for i := range delta {
		p := m.page(delta[i].Key<<pageShift, true)
		*p = delta[i].Data
	}
}

// Equal reports whether two memories hold identical contents. Pages absent
// on one side compare as all-zero, so a zeroed-in-place page never breaks
// equality with a never-allocated one.
func (m *Memory) Equal(o *Memory) bool {
	var zero [PageSize]byte
	for key, p := range m.pages {
		op := o.pages[key]
		if op == nil {
			op = &zero
		}
		if *p != *op {
			return false
		}
	}
	for key, op := range o.pages {
		if m.pages[key] == nil && *op != zero {
			return false
		}
	}
	return true
}

// Clone returns a deep copy of the memory. Used to replay a program image
// into multiple simulations.
func (m *Memory) Clone() *Memory {
	c := New()
	for k, p := range m.pages {
		np := new([PageSize]byte)
		*np = *p
		c.pages[k] = np
	}
	return c
}
