package mem

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestZeroValueReadsZero(t *testing.T) {
	var m Memory
	if m.Load8(0x1234) != 0 || m.Read64(0xdeadbeef) != 0 || m.Read32(42) != 0 {
		t.Error("fresh memory should read as zero")
	}
}

func TestByteRoundTrip(t *testing.T) {
	m := New()
	m.Store8(5, 0xAB)
	if got := m.Load8(5); got != 0xAB {
		t.Errorf("Load8 = %#x", got)
	}
	if m.Load8(4) != 0 || m.Load8(6) != 0 {
		t.Error("neighbouring bytes disturbed")
	}
}

func TestWord64RoundTrip(t *testing.T) {
	f := func(addr uint64, v uint64) bool {
		addr &= 0xFFFFFF // keep the page map small
		m := New()
		m.Write64(addr, v)
		return m.Read64(addr) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWord32RoundTrip(t *testing.T) {
	f := func(addr uint64, v uint32) bool {
		addr &= 0xFFFFFF
		m := New()
		m.Write32(addr, v)
		return m.Read32(addr) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPageCrossingAccess(t *testing.T) {
	m := New()
	addr := uint64(PageSize - 3) // straddles first page boundary
	const v = uint64(0x1122334455667788)
	m.Write64(addr, v)
	if got := m.Read64(addr); got != v {
		t.Errorf("page-crossing read = %#x, want %#x", got, v)
	}
	// Byte view must agree (little endian).
	for i := uint64(0); i < 8; i++ {
		want := byte(v >> (8 * i))
		if got := m.Load8(addr + i); got != want {
			t.Errorf("byte %d = %#x, want %#x", i, got, want)
		}
	}
	addr32 := uint64(2*PageSize - 2)
	m.Write32(addr32, 0xCAFEBABE)
	if got := m.Read32(addr32); got != 0xCAFEBABE {
		t.Errorf("page-crossing 32-bit read = %#x", got)
	}
}

func TestLittleEndianLayout(t *testing.T) {
	m := New()
	m.Write64(0x100, 0x0102030405060708)
	if m.Load8(0x100) != 0x08 || m.Load8(0x107) != 0x01 {
		t.Error("layout is not little-endian")
	}
	if m.Read32(0x100) != 0x05060708 {
		t.Errorf("low half = %#x", m.Read32(0x100))
	}
}

func TestStoreBytes(t *testing.T) {
	m := New()
	data := []byte{1, 2, 3, 4, 5}
	m.StoreBytes(PageSize-2, data) // crosses a page
	for i, want := range data {
		if got := m.Load8(PageSize - 2 + uint64(i)); got != want {
			t.Errorf("byte %d = %d, want %d", i, got, want)
		}
	}
}

func TestOverlappingWrites(t *testing.T) {
	m := New()
	m.Write64(0, 0xFFFFFFFFFFFFFFFF)
	m.Write32(2, 0)
	if got := m.Read64(0); got != 0xFFFF0000_0000FFFF {
		t.Errorf("overlap result = %#016x", got)
	}
}

func TestClone(t *testing.T) {
	m := New()
	m.Write64(0x1000, 42)
	c := m.Clone()
	c.Write64(0x1000, 99)
	if m.Read64(0x1000) != 42 {
		t.Error("clone aliases original")
	}
	if c.Read64(0x1000) != 99 {
		t.Error("clone write lost")
	}
	if m.Pages() != c.Pages() {
		t.Errorf("page counts differ: %d vs %d", m.Pages(), c.Pages())
	}
}

func TestRandomAccessAgainstReferenceMap(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	m := New()
	ref := map[uint64]byte{}
	for i := 0; i < 50000; i++ {
		addr := uint64(r.Intn(4 * PageSize))
		if r.Intn(2) == 0 {
			b := byte(r.Uint32())
			m.Store8(addr, b)
			ref[addr] = b
		} else if got, want := m.Load8(addr), ref[addr]; got != want {
			t.Fatalf("addr %#x = %#x, want %#x", addr, got, want)
		}
	}
}

func BenchmarkWrite64(b *testing.B) {
	m := New()
	for i := 0; i < b.N; i++ {
		m.Write64(uint64(i%65536)*8, uint64(i))
	}
}

func BenchmarkRead64(b *testing.B) {
	m := New()
	for i := 0; i < 65536; i++ {
		m.Write64(uint64(i)*8, uint64(i))
	}
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += m.Read64(uint64(i%65536) * 8)
	}
	_ = sink
}

func TestResetZeroesAndRetainsSmallFootprints(t *testing.T) {
	m := New()
	m.Write64(0x1000, 0xDEAD)
	m.Write64(0x2F_F000, 0xBEEF)
	pages := m.Pages()
	m.Reset()
	if m.Read64(0x1000) != 0 || m.Read64(0x2F_F000) != 0 {
		t.Fatal("Reset left non-zero data")
	}
	if m.Pages() != pages {
		t.Fatalf("small footprint not retained: %d pages, want %d", m.Pages(), pages)
	}
}

func TestResetReleasesOutsizedFootprints(t *testing.T) {
	m := New()
	for i := 0; i <= maxResetPages; i++ {
		m.Store8(uint64(i)*PageSize, 1)
	}
	m.Reset()
	if m.Pages() != 0 {
		t.Fatalf("outsized footprint retained: %d pages, want 0", m.Pages())
	}
	if m.Load8(0) != 0 {
		t.Fatal("Reset left non-zero data")
	}
}

func TestOversizedTracksResetBound(t *testing.T) {
	m := New()
	if m.Oversized() {
		t.Fatal("empty memory reported oversized")
	}
	for i := 0; i <= maxResetPages; i++ {
		m.Store8(uint64(i)*PageSize, 1)
	}
	if !m.Oversized() {
		t.Fatal("footprint past the bound not reported oversized")
	}
	m.Reset() // releases it
	if m.Oversized() {
		t.Fatal("oversized after Reset released the pages")
	}
}

func TestDeltaFromApplyDeltaRoundTrip(t *testing.T) {
	base := New()
	base.Write64(0x1000, 0xAABB)
	base.Write64(0x5000, 77)
	base.Store8(0x9000, 3)

	m := base.Clone()
	m.Write64(0x1008, 42)       // modify a base page
	m.Write64(0x2_0000, 0xDEAD) // add a new page
	m.Store8(0x9000, 0)         // zero the only non-zero byte of a page

	delta := m.DeltaFrom(base, nil)
	if len(delta) != 3 {
		t.Fatalf("delta has %d pages, want 3", len(delta))
	}
	for i := 1; i < len(delta); i++ {
		if delta[i-1].Key >= delta[i].Key {
			t.Fatal("delta pages not sorted by key")
		}
	}

	restored := base.Clone()
	restored.ApplyDelta(delta)
	if !restored.Equal(m) {
		t.Fatal("base + delta does not reproduce the captured memory")
	}
}

func TestDeltaFromCoversBaseOnlyPages(t *testing.T) {
	base := New()
	base.Write64(0x7000, 123)
	m := New() // page 0x7 never allocated: reads as zero
	delta := m.DeltaFrom(base, nil)
	restored := base.Clone()
	restored.ApplyDelta(delta)
	if got := restored.Read64(0x7000); got != 0 {
		t.Fatalf("base-only page not cleared by delta: %#x", got)
	}
	if !restored.Equal(m) {
		t.Fatal("restored memory differs from captured")
	}
}

func TestDeltaFromReusesBuffer(t *testing.T) {
	base := New()
	m := base.Clone()
	m.Write64(0x3000, 9)
	buf := make([]PageDelta, 0, 8)
	delta := m.DeltaFrom(base, buf)
	if cap(delta) != cap(buf) {
		t.Fatalf("delta reallocated: cap %d, want %d", cap(delta), cap(buf))
	}
}

func TestEqualTreatsMissingPagesAsZero(t *testing.T) {
	a := New()
	b := New()
	a.Store8(0x4000, 0) // allocates a zero page
	if !a.Equal(b) || !b.Equal(a) {
		t.Fatal("zero page vs missing page reported unequal")
	}
	a.Store8(0x4000, 1)
	if a.Equal(b) || b.Equal(a) {
		t.Fatal("differing memories reported equal")
	}
}
