// Control-flow graphs over basic blocks, and the block-level worklist
// solver for the liveness dataflow. The per-procedure CFG is the shared
// substrate of the rewriter: the hand-annotation path (InsertKills) and
// the automatic inference pass (Infer) both solve their dataflow problems
// over it, and Analyze exposes the combined live-in/live-out result so
// callers needing both masks pay for a single fixed-point iteration.

package rewrite

import (
	"dvi/internal/isa"
	"dvi/internal/prog"
)

// Block is one basic block: a maximal straight-line instruction range.
type Block struct {
	Start, End int // instruction index range [Start, End)

	Succs []int // successor block ids, in control-flow order
	Preds []int // predecessor block ids

	// BoundaryLive marks a block from which control can leave the
	// procedure other than through a return or halt — an out-of-procedure
	// jump, or falling off the end of the instruction list. The dataflow
	// treats such exits with the conservative all-live boundary value.
	BoundaryLive bool
}

// CFG is the control-flow graph of one procedure.
type CFG struct {
	Proc    *prog.Proc
	Blocks  []Block
	BlockOf []int // instruction index -> block id
}

// BuildCFG partitions p into basic blocks and records their edges. Block
// leaders are the procedure entry, every branch target, and every
// instruction following a control transfer; edges mirror succs exactly,
// so any solver over the CFG computes the same fixpoint as one iterating
// instruction by instruction.
func BuildCFG(p *prog.Proc) (*CFG, error) {
	n := len(p.Insts)
	g := &CFG{Proc: p, BlockOf: make([]int, n)}
	if n == 0 {
		return g, nil
	}

	leader := make([]bool, n)
	leader[0] = true
	var sbuf []int
	var err error
	for i := 0; i < n; i++ {
		in := p.Insts[i]
		if !in.Op.IsBranchOrJump() && in.Op != isa.HALT {
			continue
		}
		if sbuf, err = succs(p, i, sbuf); err != nil {
			return nil, err
		}
		for _, s := range sbuf {
			if s < n {
				leader[s] = true
			}
		}
		if i+1 < n {
			leader[i+1] = true
		}
	}

	for i := 0; i < n; i++ {
		if leader[i] {
			g.Blocks = append(g.Blocks, Block{Start: i})
		}
		g.BlockOf[i] = len(g.Blocks) - 1
	}
	for b := range g.Blocks {
		if b+1 < len(g.Blocks) {
			g.Blocks[b].End = g.Blocks[b+1].Start
		} else {
			g.Blocks[b].End = n
		}
	}

	for b := range g.Blocks {
		blk := &g.Blocks[b]
		last := blk.End - 1
		in := p.Insts[last]
		if in.Op == isa.J {
			if _, local := p.LabelAt(in.Target); !local {
				blk.BoundaryLive = true // leaves the procedure: conservative
			}
		}
		if sbuf, err = succs(p, last, sbuf); err != nil {
			return nil, err
		}
		for _, s := range sbuf {
			if s >= n {
				// Falls off the end of the procedure (malformed but
				// tolerated): conservative boundary.
				blk.BoundaryLive = true
				continue
			}
			blk.Succs = append(blk.Succs, g.BlockOf[s])
		}
	}
	for b := range g.Blocks {
		for _, s := range g.Blocks[b].Succs {
			g.Blocks[s].Preds = append(g.Blocks[s].Preds, b)
		}
	}
	return g, nil
}

// Analysis is the combined result of the liveness dataflow: the live-in
// and live-out register mask of every instruction, from one solve.
type Analysis struct {
	In  []isa.RegMask
	Out []isa.RegMask
}

// Analyze runs the backward liveness dataflow over p's CFG to a fixed
// point and returns both per-instruction masks. Liveness and LivenessOut
// are thin views over this.
func Analyze(p *prog.Proc) (Analysis, error) {
	g, err := BuildCFG(p)
	if err != nil {
		return Analysis{}, err
	}
	a := Analysis{
		In:  make([]isa.RegMask, len(p.Insts)),
		Out: make([]isa.RegMask, len(p.Insts)),
	}
	a.solve(g, func(i int, out isa.RegMask) (def, use isa.RegMask) {
		return defUse(p.Insts[i])
	})
	return a, nil
}

// transferFunc returns the def/use masks of instruction i given its
// current live-out mask. Transfers that inspect out (the inference pass's
// faint-value rule) must be monotone in it: out ⊇ out' must imply
// use(out) ⊇ use(out').
type transferFunc func(i int, out isa.RegMask) (def, use isa.RegMask)

// solve runs the block-level worklist to the least fixpoint, storing
// per-instruction masks in a. Blocks are seeded in reverse program order
// (a good order for a backward problem) and re-queued when a successor's
// live-in changes.
func (a *Analysis) solve(g *CFG, transfer transferFunc) {
	nb := len(g.Blocks)
	if nb == 0 {
		return
	}
	queued := make([]bool, nb)
	work := make([]int, 0, nb)
	push := func(b int) {
		if !queued[b] {
			queued[b] = true
			work = append(work, b)
		}
	}
	for b := 0; b < nb; b++ {
		push(b)
	}
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		queued[b] = false

		blk := &g.Blocks[b]
		var out isa.RegMask
		if blk.BoundaryLive {
			out = allLive
		}
		for _, s := range blk.Succs {
			out |= a.In[g.Blocks[s].Start]
		}
		oldIn := a.In[blk.Start]
		for i := blk.End - 1; i >= blk.Start; i-- {
			a.Out[i] = out
			def, use := transfer(i, out)
			out = (out &^ def) | use
			a.In[i] = out
		}
		if a.In[blk.Start] != oldIn {
			for _, pb := range blk.Preds {
				push(pb)
			}
		}
	}
}
