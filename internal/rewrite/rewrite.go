// Package rewrite is the binary rewriting DVI inserter the paper describes
// in §2: "Since liveness information is computed for physical registers,
// E-DVI instructions can be added to an executable using a simple binary
// rewriting tool. This approach is attractive since it requires neither
// compiler nor program source code."
//
// It computes intra-procedural, instruction-granularity register liveness
// over machine code (with calling-convention effects at calls and returns)
// and inserts kill instructions. The default policy is the paper's: one
// kill carrying the mask of dead callee-saved registers before every call
// site (§5.1 bounds the overhead to one annotation per dynamic call).
package rewrite

import (
	"fmt"

	"dvi/internal/isa"
	"dvi/internal/prog"
)

// Policy selects where kill instructions are placed.
type Policy uint8

const (
	// KillsBeforeCalls is the paper's implementation: a single kill-mask
	// for dead callee-saved registers before every procedure call.
	KillsBeforeCalls Policy = iota
	// KillsAtDeath is the denser encoding the paper's §9 raises as future
	// work: a kill immediately after a candidate register's last use.
	KillsAtDeath
)

// Options configures the rewriter.
type Options struct {
	Policy Policy
	// Regs is the candidate kill set; zero means the callee-saved
	// registers (the save/restore elimination targets). Must be a subset
	// of isa.Killable.
	Regs isa.RegMask
	// NoPrune disables the interprocedural kill-pruning pass. By default
	// a kill is only emitted before a direct call whose callee can
	// (transitively) reach a live-store of one of the dead registers —
	// kills before pure-leaf helpers are fetch overhead that can never
	// eliminate anything. Indirect calls keep their kills (the callee is
	// unknown). The paper's §5.1 caller-side condition is intra-
	// procedural; this refinement uses the whole-binary view a rewriting
	// tool naturally has.
	NoPrune bool
}

// allLive is the conservative boundary value.
const allLive = isa.RegMask(0xFFFFFFFF)

// InsertKills rewrites every procedure of pr in place and returns the
// number of kill instructions inserted. Run it once per program, before
// linking.
func InsertKills(pr *prog.Program, opt Options) (int, error) {
	regs := opt.Regs
	if regs == 0 {
		regs = isa.CalleeSaved
	}
	if bad := regs &^ isa.Killable; bad != 0 {
		return 0, fmt.Errorf("rewrite: kill candidates %s are not encodable", bad)
	}
	var reach map[string]isa.RegMask
	if !opt.NoPrune {
		reach = reachableSaves(pr)
	}
	total := 0
	for _, p := range pr.Procs {
		n, err := rewriteProc(p, opt.Policy, regs, reach)
		if err != nil {
			return total, fmt.Errorf("rewrite: %s: %w", p.Name, err)
		}
		total += n
	}
	return total, nil
}

// reachableSaves computes, per procedure, the set of registers that a call
// into it might save with a live-store anywhere in the reachable call
// graph. Indirect calls make a procedure's reach unknown (all registers).
func reachableSaves(pr *prog.Program) map[string]isa.RegMask {
	own := make(map[string]isa.RegMask, len(pr.Procs))
	callees := make(map[string][]string, len(pr.Procs))
	unknown := make(map[string]bool)
	for _, p := range pr.Procs {
		var m isa.RegMask
		for _, in := range p.Insts {
			switch in.Op {
			case isa.LVST:
				m = m.Set(in.Rs2)
			case isa.JAL:
				callees[p.Name] = append(callees[p.Name], in.Target)
			case isa.JALR:
				unknown[p.Name] = true
			}
		}
		own[p.Name] = m
	}
	reach := make(map[string]isa.RegMask, len(pr.Procs))
	for name, m := range own {
		if unknown[name] {
			reach[name] = allLive
		} else {
			reach[name] = m
		}
	}
	for changed := true; changed; {
		changed = false
		for name, cs := range callees {
			m := reach[name]
			for _, c := range cs {
				m |= reach[c] // unresolved names contribute nothing
			}
			if m != reach[name] {
				reach[name] = m
				changed = true
			}
		}
	}
	return reach
}

// Liveness returns the live-in register mask for every instruction of p.
// Callers needing both masks should use Analyze, which solves once.
func Liveness(p *prog.Proc) ([]isa.RegMask, error) {
	a, err := Analyze(p)
	return a.In, err
}

// LivenessOut returns the live-out register mask for every instruction.
// Callers needing both masks should use Analyze, which solves once.
func LivenessOut(p *prog.Proc) ([]isa.RegMask, error) {
	a, err := Analyze(p)
	return a.Out, err
}

// defUse returns the registers written and read by one instruction,
// including calling-convention effects.
func defUse(in prog.Inst) (def, use isa.RegMask) {
	switch {
	case in.Op.IsCall():
		// The callee may clobber every caller-saved register (including
		// the linkage register the call itself writes); it can only
		// observe the argument registers and, for indirect calls, the
		// target register. Callee-saved registers pass through untouched.
		def = isa.CallerSaved
		use = isa.ArgRegs
		if in.Op == isa.JALR {
			use = use.Set(in.Rs1)
		}
		return def, use
	case in.Op == isa.JR && in.IsReturn:
		// A return publishes the value-return registers and hands every
		// callee-saved register (restored or untouched) plus the stack
		// back to the caller.
		use = isa.RetRegs | isa.CalleeSaved | isa.AlwaysLive | isa.Bit(isa.RA)
		return 0, use
	case in.Op == isa.JR:
		// Computed jump with unknown target: everything may be observed.
		return 0, allLive
	case in.Op == isa.KILL:
		// Existing annotations are transparent to the dataflow.
		return 0, 0
	}
	if rd, ok := in.WritesReg(); ok {
		def = isa.Bit(rd)
	}
	var buf [2]isa.Reg
	for _, r := range in.AppendSrcRegs(buf[:0]) {
		if r != isa.Zero {
			use = use.Set(r)
		}
	}
	return def, use
}

// terminator reports whether control never falls through in.
func terminator(in prog.Inst) bool {
	switch in.Op {
	case isa.J, isa.JR, isa.HALT:
		return true
	}
	return false
}

// succs appends the successor indices of instruction i (n = len(insts)).
func succs(p *prog.Proc, i int, buf []int) ([]int, error) {
	in := p.Insts[i]
	buf = buf[:0]
	switch {
	case isa.OpClass(in.Op) == isa.ClassBranch:
		if li, ok := p.LabelAt(in.Target); ok {
			buf = append(buf, li)
		} else {
			return nil, fmt.Errorf("branch to unknown label %q", in.Target)
		}
		buf = append(buf, i+1)
	case in.Op == isa.J:
		if li, ok := p.LabelAt(in.Target); ok {
			buf = append(buf, li)
		}
		// A jump out of the procedure (tail position) has no local
		// successor; boundary liveness applies.
	case in.Op == isa.JR, in.Op == isa.HALT:
		// Exit points: no successors.
	default:
		buf = append(buf, i+1)
	}
	return buf, nil
}

func rewriteProc(p *prog.Proc, policy Policy, regs isa.RegMask, reach map[string]isa.RegMask) (int, error) {
	a, err := Analyze(p)
	if err != nil {
		return 0, err
	}
	liveIn, liveOut := a.In, a.Out

	type insertion struct {
		before int // instruction index to insert before
		mask   isa.RegMask
	}
	var ins []insertion

	switch policy {
	case KillsBeforeCalls:
		for i, in := range p.Insts {
			if !in.Op.IsCall() {
				continue
			}
			// Callee-saved registers are preserved by the call, so a
			// register is dead at the call exactly when it is dead after
			// it. Registers never written in this procedure stay live
			// (the return's use of callee-saved registers keeps the
			// caller's caller's values alive), so the paper's "assigned
			// to in the procedure" condition falls out of the dataflow.
			dead := regs &^ liveOut[i]
			if dead == 0 {
				continue
			}
			// Interprocedural pruning: skip the kill when the (known)
			// callee can never save any of the dead registers.
			if reach != nil && in.Op == isa.JAL {
				if saves, ok := reach[in.Target]; ok && dead&saves == 0 {
					continue
				}
			}
			ins = append(ins, insertion{before: i, mask: dead})
		}
	case KillsAtDeath:
		for i, in := range p.Insts {
			if i+1 >= len(p.Insts) || terminator(in) || in.Op == isa.KILL {
				continue
			}
			// Registers that die exactly here: live into i, dead out of
			// it. The kill goes after i (= before i+1).
			dyingHere := regs & liveIn[i] &^ liveOut[i]
			if dyingHere != 0 {
				ins = append(ins, insertion{before: i + 1, mask: dyingHere})
			}
		}
	}

	// Insert from the highest index down so earlier indices stay valid.
	for k := len(ins) - 1; k >= 0; k-- {
		p.InsertBefore(ins[k].before, prog.Inst{Inst: isa.Inst{Op: isa.KILL, Mask: ins[k].mask}})
	}
	return len(ins), nil
}
