package rewrite

import (
	"strings"
	"testing"

	"dvi/internal/core"
	"dvi/internal/emu"
	"dvi/internal/isa"
	"dvi/internal/prog"
)

// runPlain links and runs pr with no DVI checking, as the unannotated
// reference.
func runPlain(t *testing.T, pr *prog.Program) *emu.Emulator {
	t.Helper()
	img, err := pr.Link()
	if err != nil {
		t.Fatal(err)
	}
	e := emu.New(pr, img, emu.Config{})
	if err := e.Run(10_000_000); err != nil {
		t.Fatal(err)
	}
	return e
}

// runScheme links and runs pr under full DVI with the given scheme.
func runScheme(t *testing.T, pr *prog.Program, scheme emu.Scheme) *emu.Emulator {
	t.Helper()
	img, err := pr.Link()
	if err != nil {
		t.Fatal(err)
	}
	e := emu.New(pr, img, emu.Config{DVI: core.DefaultConfig(), Scheme: scheme})
	if err := e.Run(10_000_000); err != nil {
		t.Fatal(err)
	}
	return e
}

func TestInferFigure7(t *testing.T) {
	ref := runPlain(t, figure7())

	pr := figure7()
	n, err := Infer(pr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("inference inserted no kills")
	}
	// Context sensitivity with zero hints: caller_dead kills s0, caller_live
	// does not.
	foundDead := false
	for i, in := range pr.Proc("caller_dead").Insts {
		if in.Op == isa.KILL && in.Mask.Has(isa.S0) {
			foundDead = true
			if pr.Proc("caller_dead").Insts[i+1].Op != isa.JAL {
				t.Error("caller_dead: inferred kill not immediately before the call")
			}
		}
	}
	if !foundDead {
		t.Error("caller_dead: s0 not inferred dead at the call")
	}
	for _, in := range pr.Proc("caller_live").Insts {
		if in.Op == isa.KILL && in.Mask.Has(isa.S0) {
			t.Error("caller_live: s0 killed while live across the call")
		}
	}
	e := runChecked(t, pr)
	if e.Checksum != ref.Checksum {
		t.Fatalf("inferred annotations changed results: %#x vs %#x", e.Checksum, ref.Checksum)
	}
	if e.Stats.SavesElim == 0 || e.Stats.RestoresElim == 0 {
		t.Errorf("inferred binary eliminated %d saves / %d restores; want > 0",
			e.Stats.SavesElim, e.Stats.RestoresElim)
	}
}

func TestInferMatchesHandOnFib(t *testing.T) {
	for _, policy := range []Policy{KillsBeforeCalls, KillsAtDeath} {
		ref := runPlain(t, fibProgram(15))

		pr := fibProgram(15)
		n, err := Infer(pr, Options{Policy: policy})
		if err != nil {
			t.Fatal(err)
		}
		if n == 0 {
			t.Fatalf("policy %d inferred nothing for recursive fib", policy)
		}
		e := runScheme(t, pr, emu.ElimLVMStack)
		if e.Checksum != ref.Checksum {
			t.Fatalf("policy %d: inference changed results", policy)
		}
		if e.Outputs[0] != 610 {
			t.Errorf("policy %d: fib(15) = %d, want 610", policy, e.Outputs[0])
		}
		if e.Stats.SavesElim == 0 {
			t.Errorf("policy %d: inference eliminated no saves", policy)
		}

		hand := fibProgram(15)
		if _, err := InsertKills(hand, Options{Policy: policy}); err != nil {
			t.Fatal(err)
		}
		h := runScheme(t, hand, emu.ElimLVMStack)
		if e.Stats.SavesElim < h.Stats.SavesElim {
			t.Errorf("policy %d: inference eliminated %d saves, hand path %d",
				policy, e.Stats.SavesElim, h.Stats.SavesElim)
		}
	}
}

// TestInferSoundOnNonABICallee: a callee that reads a callee-saved
// register it never saved (legal machine code, illegal ABI). The hand
// rewriter's calling-convention assumption would kill s0 at the call; the
// inference pass must see the callee's genuine read and keep it live.
func TestInferSoundOnNonABICallee(t *testing.T) {
	build := func() *prog.Program {
		pr := prog.New()
		m := pr.Assembler("main")
		epi := m.Frame(0, true)
		m.Li(isa.S0, 7)
		m.Call("f") // f reads s0; s0 never read again in main
		m.Li(isa.T0, 0)
		m.Sys(isa.T0, isa.V0)
		epi()
		f := pr.Assembler("f")
		f.Add(isa.V0, isa.S0, isa.S0)
		f.Ret()
		return pr
	}
	pr := build()
	if _, err := Infer(pr, Options{}); err != nil {
		t.Fatal(err)
	}
	for _, p := range pr.Procs {
		for _, in := range p.Insts {
			if in.Op == isa.KILL && in.Mask.Has(isa.S0) {
				t.Fatalf("%s: killed s0 although the callee reads it unsaved", p.Name)
			}
		}
	}
	e := runScheme(t, pr, emu.ElimLVMStack)
	ref := runPlain(t, build())
	if e.Checksum != ref.Checksum {
		t.Fatal("inference changed results on non-ABI callee")
	}
}

// TestInferFaintValues: s0's only use after the call is computing s1,
// which is never used. Plain liveness keeps s0 live across the call; the
// faint-value layer sees the whole chain is dead and kills s0 before it.
func TestInferFaintValues(t *testing.T) {
	build := func() *prog.Program {
		pr := prog.New()
		m := pr.Assembler("main")
		epi := m.Frame(0, true, isa.S0, isa.S1)
		m.Li(isa.S0, 5)
		m.Call("g")
		m.Add(isa.S1, isa.S0, isa.S0) // s1 dead: this use of s0 is faint
		m.Li(isa.T0, 0)
		m.Sys(isa.T0, isa.V0)
		epi()
		g := pr.Assembler("g")
		gepi := g.Frame(0, false, isa.S0)
		g.Li(isa.S0, 11)
		g.Add(isa.V0, isa.S0, isa.Zero)
		gepi()
		return pr
	}
	ref := runPlain(t, build())
	pr := build()
	if _, err := Infer(pr, Options{}); err != nil {
		t.Fatal(err)
	}
	killed := false
	m := pr.Proc("main")
	for i, in := range m.Insts {
		if in.Op == isa.KILL && in.Mask.Has(isa.S0) &&
			i+1 < len(m.Insts) && m.Insts[i+1].Op == isa.JAL {
			killed = true
		}
	}
	if !killed {
		t.Error("faint s0 not killed before the call")
	}
	for _, scheme := range []emu.Scheme{emu.ElimOff, emu.ElimLVM, emu.ElimLVMStack} {
		e := runScheme(t, pr, scheme)
		if e.Checksum != ref.Checksum {
			t.Fatalf("scheme %v: faint kill changed results", scheme)
		}
	}
}

// TestInferParseAsmRoundTrip: textual assembly in, kill annotations out,
// with zero manual hints — the /v1/annotate infer-mode contract.
func TestInferParseAsmRoundTrip(t *testing.T) {
	src := prog.FormatAsm(figure7())
	pr, err := prog.ParseAsm(src)
	if err != nil {
		t.Fatal(err)
	}
	n, err := Infer(pr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("no kills inferred from parsed assembly")
	}
	out := prog.FormatAsm(pr)
	if !strings.Contains(out, "kill") {
		t.Error("formatted assembly lacks kill annotations")
	}
	round, err := prog.ParseAsm(out)
	if err != nil {
		t.Fatalf("annotated assembly does not re-parse: %v", err)
	}
	if _, err := round.Link(); err != nil {
		t.Fatalf("annotated assembly does not link: %v", err)
	}
}

// TestInferConservativeOnSPEscape: once sp escapes into a general
// register the frame guards must force the procedure fully conservative.
func TestInferConservativeOnSPEscape(t *testing.T) {
	pr := prog.New()
	m := pr.Assembler("main")
	epi := m.Frame(0, true, isa.S0)
	m.Li(isa.S0, 3)
	m.Add(isa.T0, isa.SP, isa.Zero) // sp escapes
	m.Call("leaf")
	m.Li(isa.T0, 0)
	m.Sys(isa.T0, isa.V0)
	epi()
	l := pr.Assembler("leaf")
	l.Li(isa.V0, 1)
	l.Ret()
	n, err := Infer(pr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range pr.Proc("main").Insts {
		if in.Op == isa.KILL {
			t.Fatalf("kill inserted in sp-escaping procedure (total %d)", n)
		}
	}
}

// TestInferIndirectCallConservative: nothing may be inferred dead at a
// JALR, and an address-taken procedure sees all-live at its return.
func TestInferIndirectCallConservative(t *testing.T) {
	build := func() *prog.Program {
		pr := prog.New()
		m := pr.Assembler("main")
		epi := m.Frame(0, true, isa.S0)
		m.Li(isa.S0, 9)
		m.LoadAddr(isa.T6, "f")
		m.CallReg(isa.T6)
		m.Li(isa.T0, 0)
		m.Sys(isa.T0, isa.V0)
		epi()
		f := pr.Assembler("f")
		fepi := f.Frame(0, false, isa.S0)
		f.Li(isa.S0, 4)
		f.Add(isa.V0, isa.S0, isa.Zero)
		fepi()
		return pr
	}
	ref := runPlain(t, build())
	pr := build()
	if _, err := Infer(pr, Options{}); err != nil {
		t.Fatal(err)
	}
	m := pr.Proc("main")
	for i, in := range m.Insts {
		if in.Op == isa.KILL && i+1 < len(m.Insts) && m.Insts[i+1].Op == isa.JALR {
			t.Error("kill inferred before an indirect call")
		}
	}
	e := runScheme(t, pr, emu.ElimLVMStack)
	if e.Checksum != ref.Checksum {
		t.Fatal("inference changed results around indirect call")
	}
}

// TestInferLVMOpsDisableInference: a program moving the LVM through
// memory would observe any kill, so inference must stand down.
func TestInferLVMOpsDisableInference(t *testing.T) {
	pr := fibProgram(5)
	pr.Proc("main").InsertBefore(0, prog.Inst{Inst: isa.Inst{Op: isa.LVMS, Rs1: isa.SP}})
	n, err := Infer(pr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("inserted %d kills into a program containing LVM stores", n)
	}
}

// referenceSolve is the original per-instruction chaotic iteration the
// block-level solver replaced; the two must agree exactly (the fixpoint
// is unique) or exact-mode reports would change.
func referenceSolve(t *testing.T, p *prog.Proc) (liveIn, liveOut []isa.RegMask) {
	t.Helper()
	n := len(p.Insts)
	liveIn = make([]isa.RegMask, n)
	liveOut = make([]isa.RegMask, n)
	var sbuf []int
	var err error
	for changed := true; changed; {
		changed = false
		for i := n - 1; i >= 0; i-- {
			in := p.Insts[i]
			var out isa.RegMask
			if in.Op == isa.J {
				if _, local := p.LabelAt(in.Target); !local {
					out = allLive
				}
			}
			sbuf, err = succs(p, i, sbuf)
			if err != nil {
				t.Fatal(err)
			}
			for _, s := range sbuf {
				if s < n {
					out |= liveIn[s]
				} else {
					out = allLive
				}
			}
			def, use := defUse(in)
			newIn := (out &^ def) | use
			if out != liveOut[i] || newIn != liveIn[i] {
				liveOut[i] = out
				liveIn[i] = newIn
				changed = true
			}
		}
	}
	return liveIn, liveOut
}

func TestBlockSolverMatchesReference(t *testing.T) {
	programs := []*prog.Program{figure7(), fibProgram(5)}
	{
		pr := prog.New()
		a := pr.Assembler("main")
		a.Li(isa.S0, 5)
		a.Inst(isa.Inst{Op: isa.JR, Rs1: isa.T0})
		programs = append(programs, pr)
	}
	for _, pr := range programs {
		for _, p := range pr.Procs {
			a, err := Analyze(p)
			if err != nil {
				t.Fatal(err)
			}
			refIn, refOut := referenceSolve(t, p)
			for i := range refIn {
				if a.In[i] != refIn[i] || a.Out[i] != refOut[i] {
					t.Fatalf("%s inst %d: block solver (%s,%s) != reference (%s,%s)",
						p.Name, i, a.In[i], a.Out[i], refIn[i], refOut[i])
				}
			}
		}
	}
}
