// Interprocedural dead-value inference: Infer discovers kill annotations
// for an arbitrary program — including assembly with no hand hints — by
// iterating per-procedure summaries over the call graph to a fixed point.
//
// The analysis layers, bottom to top:
//
//   - Frame recognition. Each procedure's stack discipline is checked
//     against the canonical form (one `addi sp, sp, -K` prologue, saves
//     and restores addressed off sp, `addi sp, sp, +K` before returns).
//     Within it, every live-store is paired with the live-loads reading
//     the same entry-relative slot. A procedure that breaks the
//     discipline — sp copied or escaping, irregular adjustment, plain
//     memory operations aliasing save slots — is analyzed fully
//     conservatively, and the breach propagates to the summaries its
//     callers see.
//
//   - Procedure summaries, each solved to its own fixed point over the
//     call graph (ascending iteration handles recursion; indirect calls
//     and calls into the middle of a procedure are conservative):
//     maySurvive (registers whose entry value may reach a return, either
//     untouched or through a save/restore pair), mayUse (registers whose
//     entry value may be read, where a paired save reads its data
//     register only if the restored value is itself live), and
//     liveAtReturn (the union of every known call site's live-out,
//     all-live for procedures whose callers cannot be enumerated:
//     address-taken, tail-jumped-into, or unreachable). mayUse and
//     liveAtReturn are solved as one joint fixed point — under faint
//     propagation each depends on the other, because a caller reading a
//     callee's leftover temporary makes the callee's computation of that
//     temporary genuine.
//
//   - Faint-value propagation on top of liveness: a source of a pure
//     instruction (ALU op or load, which cannot fault and has no side
//     effect) counts as used only if the destination is live, so a value
//     used only to compute dead values is itself dead. Stores, branches,
//     jumps, and SYS keep genuine uses.
//
// Kills only become architecturally visible through save/restore
// elimination, and the emulator's registers retain killed values, so a
// kill of r is sound exactly when r's value can never again be observed —
// which is what the solved liveness states. Inferred runs are therefore
// bit-identical to unannotated runs (pinned by the differential fuzz in
// infer_fuzz_test.go).
package rewrite

import (
	"fmt"

	"dvi/internal/isa"
	"dvi/internal/prog"
)

// Infer analyzes pr and inserts kill annotations in place, like
// InsertKills but with no reliance on calling-convention assumptions:
// everything is derived from the program text. It returns the number of
// kills inserted. Run it once per program, before linking, on a program
// without hand annotations.
//
// Programs containing LVM materialize/load instructions get no
// annotations: the LVM value those instructions move through memory
// depends on every kill executed, so any inserted kill would change
// architectural memory contents.
func Infer(pr *prog.Program, opt Options) (int, error) {
	regs := opt.Regs
	if regs == 0 {
		regs = isa.CalleeSaved
	}
	if bad := regs &^ isa.Killable; bad != 0 {
		return 0, fmt.Errorf("rewrite: kill candidates %s are not encodable", bad)
	}
	inf := &inferrer{pr: pr, regs: regs, opt: opt}
	if err := inf.scan(); err != nil {
		return 0, err
	}
	if inf.hasLVMOps {
		return 0, nil
	}
	inf.propagateFlags()
	for _, pi := range inf.order {
		inf.computeExportTrim(pi)
	}
	inf.solveSurvive()
	inf.solveLiveness()
	return inf.emit()
}

// slotOp is one live-store or live-load addressed off sp at a known
// entry-relative frame offset.
type slotOp struct {
	idx int // instruction index
	reg isa.Reg
	off int64 // entry-sp-relative byte offset (negative inside the frame)
}

// inferProc is the per-procedure working state.
type inferProc struct {
	p   *prog.Proc
	cfg *CFG

	// conservative: the procedure broke a guard (irregular sp, escaping
	// sp, aliased save slots, unresolvable control flow into it). Its
	// liveness is all-live everywhere and its summaries maximal.
	conservative bool
	// foreignAccess: a plain memory access through sp reaches at or above
	// the entry sp — the caller's frame. Sound locally, but callers can no
	// longer assume their save slots are private.
	foreignAccess bool
	// frameUnsafe: this procedure or some transitive callee may touch
	// frames above its own, so save-slot privacy fails: every save's data
	// register is a genuine use.
	frameUnsafe bool
	// spReturnsClean: sp provably back at its entry value at every return.
	spReturnsClean bool

	saves, loads []slotOp
	// pairedLoads maps a save's instruction index to the loads reading the
	// same slot. A frame-safe save absent from the map feeds a slot that
	// is never read.
	pairedLoads map[int][]int

	callees    []string // distinct direct-call targets that name procedures
	hasUnknown bool     // JALR, or JAL into a local label
	addrTaken  bool     // a data reference or tail jump names this procedure
	hasCallers bool     // some known call site (or the entry trampoline) targets it

	// exportTrim[i], for a return instruction i, holds the registers that
	// are provably restored-to-entry-value at that return (saved from an
	// entry-intact register to a private slot, reloaded from it, untouched
	// since). Their live-at-return bits are identity pass-through — the
	// caller observing them observes its own value, which the call-site
	// transfer already models via maySurvive — so the mayUse export solve
	// removes them from the return boundary. The full solve (kill
	// placement, liveAtReturn propagation) keeps the whole boundary.
	exportTrim []isa.RegMask
}

type inferrer struct {
	pr   *prog.Program
	regs isa.RegMask
	opt  Options

	procs     map[string]*inferProc
	order     []*inferProc
	hasLVMOps bool

	mayUse     map[string]isa.RegMask
	maySurvive map[string]isa.RegMask
	liveAtRet  map[string]isa.RegMask
}

func (inf *inferrer) entryName() string {
	if inf.pr.Entry != "" {
		return inf.pr.Entry
	}
	return "main"
}

// scan builds the CFG, frame facts, and call-graph edges of every
// procedure.
func (inf *inferrer) scan() error {
	inf.procs = make(map[string]*inferProc, len(inf.pr.Procs))
	for _, p := range inf.pr.Procs {
		g, err := BuildCFG(p)
		if err != nil {
			return fmt.Errorf("rewrite: %s: %w", p.Name, err)
		}
		pi := &inferProc{p: p, cfg: g}
		inf.scanFrame(pi)
		inf.procs[p.Name] = pi
		inf.order = append(inf.order, pi)
	}
	// Cross-procedure references: direct calls, tail jumps, address takes.
	for _, pi := range inf.order {
		seen := map[string]bool{}
		for _, in := range pi.p.Insts {
			switch {
			case in.Op == isa.LVMS || in.Op == isa.LVML:
				inf.hasLVMOps = true
			case in.Op == isa.JAL:
				if callee, ok := inf.procs[in.Target]; ok {
					callee.hasCallers = true
					if !seen[in.Target] {
						seen[in.Target] = true
						pi.callees = append(pi.callees, in.Target)
					}
				} else {
					// A call into a local label re-enters this procedure
					// mid-body with an unknowable frame state.
					pi.hasUnknown = true
				}
			case in.Op == isa.JALR:
				pi.hasUnknown = true
			case in.Op == isa.J:
				if _, local := pi.p.LabelAt(in.Target); !local {
					if t, ok := inf.procs[in.Target]; ok {
						// Tail jump: t returns to an unknowable caller.
						t.addrTaken = true
					}
				}
			}
			if in.Kind == prog.TargetDataHi || in.Kind == prog.TargetDataLo {
				if t, ok := inf.procs[in.Target]; ok {
					t.addrTaken = true // function pointer material
				}
			}
		}
	}
	if e, ok := inf.procs[inf.entryName()]; ok {
		e.hasCallers = true // the linker's trampoline
	}
	return nil
}

// scanFrame runs the forward sp-offset analysis over one procedure and
// records its save/restore slots, checking the frame-discipline guards.
func (inf *inferrer) scanFrame(pi *inferProc) {
	p, g := pi.p, pi.cfg
	n := len(p.Insts)
	if n == 0 {
		// Control entering here falls into the next procedure: never
		// sp-clean, and no summary of its own worth computing.
		pi.conservative = true
		return
	}
	violate := func() { pi.conservative = true }

	// Forward abstract interpretation of the sp delta (entry = 0). A
	// block's entry delta must be unique; joins of distinct deltas, or any
	// write to sp other than `addi sp, sp, imm`, break the discipline.
	const unknownDelta = int64(-1) << 62
	blockIn := make([]int64, len(g.Blocks))
	delta := make([]int64, n)
	for i := range blockIn {
		blockIn[i] = unknownDelta
	}
	for i := range delta {
		delta[i] = unknownDelta
	}
	blockIn[0] = 0
	work := []int{0}
	queued := make([]bool, len(g.Blocks))
	queued[0] = true
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		queued[b] = false
		blk := &g.Blocks[b]
		d := blockIn[b]
		for i := blk.Start; i < blk.End; i++ {
			delta[i] = d
			in := p.Insts[i]
			if in.Op == isa.ADDI && in.Rd == isa.SP && in.Rs1 == isa.SP {
				d += in.Imm
				continue
			}
			if rd, ok := in.WritesReg(); ok && rd == isa.SP {
				violate()
				return
			}
		}
		for _, s := range blk.Succs {
			switch blockIn[s] {
			case unknownDelta:
				blockIn[s] = d
				if !queued[s] {
					queued[s] = true
					work = append(work, s)
				}
			case d:
				// agreeing join
			default:
				violate()
				return
			}
		}
	}

	// Guard sweep with the solved deltas. Unreachable instructions (delta
	// unknown) never execute and are skipped. A procedure that can fall
	// off its end flows into whatever the linker placed next, so its sp
	// state escapes unclean.
	pi.spReturnsClean = delta[n-1] == unknownDelta || terminator(p.Insts[n-1])
	pi.pairedLoads = make(map[int][]int)
	var srcs [2]isa.Reg
	for i := 0; i < n; i++ {
		in := p.Insts[i]
		d := delta[i]
		if d == unknownDelta {
			continue
		}
		// sp may appear as a source only in the frame adjustment and as
		// the base of a memory access (and never as stored data).
		for _, r := range in.AppendSrcRegs(srcs[:0]) {
			if r != isa.SP {
				continue
			}
			switch {
			case in.Op == isa.ADDI && in.Rs1 == isa.SP && in.Rd == isa.SP:
			case in.Op.IsMem() && in.Rs1 == isa.SP &&
				!(in.Op.IsStore() && in.Op != isa.LVMS && in.Rs2 == isa.SP):
			default:
				violate()
				return
			}
		}
		switch in.Op {
		case isa.LVST, isa.LVLD:
			if in.Rs1 != isa.SP {
				violate()
				return
			}
			rel := d + in.Imm
			if rel >= 0 {
				violate() // a save slot in the caller's frame
				return
			}
			if in.Op == isa.LVST {
				pi.saves = append(pi.saves, slotOp{idx: i, reg: in.Rs2, off: rel})
			} else {
				pi.loads = append(pi.loads, slotOp{idx: i, reg: in.Rd, off: rel})
			}
		case isa.JR:
			if in.IsReturn && d != 0 {
				pi.spReturnsClean = false
			}
		case isa.J:
			if _, local := p.LabelAt(in.Target); !local && d != 0 {
				pi.spReturnsClean = false
			}
		}
	}
	// Plain memory accesses through sp must stay inside this frame's
	// locals: at or above the entry sp is the caller's frame, and
	// overlapping an own save slot would let the program observe an
	// eliminated save.
	for i := 0; i < n; i++ {
		in := p.Insts[i]
		if delta[i] == unknownDelta || in.Rs1 != isa.SP {
			continue
		}
		var width int64
		switch in.Op {
		case isa.LD, isa.ST:
			width = 8
		case isa.LB, isa.SB:
			width = 1
		default:
			continue
		}
		rel := delta[i] + in.Imm
		if rel+width > 0 {
			pi.foreignAccess = true
			continue
		}
		for _, s := range pi.saves {
			if rel < s.off+8 && s.off < rel+width {
				violate()
				return
			}
		}
	}
	for _, s := range pi.saves {
		for _, l := range pi.loads {
			if l.off == s.off {
				pi.pairedLoads[s.idx] = append(pi.pairedLoads[s.idx], l.idx)
			}
		}
	}
}

// propagateFlags closes the per-procedure facts over the call graph:
// frame unsafety flows from callees to callers, and an sp-dirty callee
// (or any dirty procedure reachable from an indirect call) invalidates
// the caller's own frame analysis.
func (inf *inferrer) propagateFlags() {
	// A procedure that can fall off its end flows into the next procedure
	// in image layout, entering it with unknowable linkage.
	for k, pi := range inf.order {
		n := len(pi.p.Insts)
		fallsOff := n == 0 || !terminator(pi.p.Insts[n-1])
		if fallsOff && !pi.spReturnsClean && k+1 < len(inf.order) {
			inf.order[k+1].addrTaken = true
		}
	}
	anyDirty := false
	for _, pi := range inf.order {
		if !pi.spReturnsClean {
			anyDirty = true
		}
	}
	for changed := true; changed; {
		changed = false
		for _, pi := range inf.order {
			if !pi.conservative {
				// The sp-delta analysis assumed calls preserve sp; a callee
				// that provably may not (or, for calls whose callee cannot
				// be resolved, the existence of any such procedure)
				// invalidates the whole frame analysis of this procedure.
				dirty := pi.hasUnknown && anyDirty
				for _, c := range pi.callees {
					if !inf.procs[c].spReturnsClean {
						dirty = true
					}
				}
				if dirty {
					pi.conservative = true
					pi.spReturnsClean = false
					anyDirty = true
					changed = true
				}
			}
			unsafe := pi.conservative || pi.foreignAccess || pi.hasUnknown
			for _, c := range pi.callees {
				if inf.procs[c].frameUnsafe {
					unsafe = true
				}
			}
			if unsafe && !pi.frameUnsafe {
				pi.frameUnsafe = true
				changed = true
			}
		}
	}
}

// solveSurvive iterates the maySurvive summaries to their least fixed
// point: for each procedure, a forward may-analysis of the set of
// registers still holding their own entry value, where a paired restore
// regenerates a register the matching save captured while it still held
// that value. May-information ascends from empty, so recursion converges
// and the result over-approximates every concrete execution.
func (inf *inferrer) solveSurvive() {
	inf.maySurvive = make(map[string]isa.RegMask, len(inf.order))
	for _, pi := range inf.order {
		if pi.conservative {
			inf.maySurvive[pi.p.Name] = allLive
		}
	}
	for changed := true; changed; {
		changed = false
		for _, pi := range inf.order {
			if pi.conservative {
				continue
			}
			m := inf.surviveProc(pi)
			if m != inf.maySurvive[pi.p.Name] {
				inf.maySurvive[pi.p.Name] = m
				changed = true
			}
		}
	}
}

func (inf *inferrer) surviveProc(pi *inferProc) isa.RegMask {
	p := pi.p
	n := len(p.Insts)
	if n == 0 {
		return allLive // empty procedure: falls through, nothing clobbered
	}
	// s[i] = registers that may still hold their entry value before
	// instruction i.
	s := make([]isa.RegMask, n)
	s[0] = allLive
	reached := make([]bool, n)
	reached[0] = true
	// savedEntry[loadIdx]: the loaded slot may hold the entry value of the
	// load's own destination register (recomputed each sweep from the
	// paired saves' states).
	surv := func(i int, cur isa.RegMask) isa.RegMask {
		in := p.Insts[i]
		switch {
		case in.Op == isa.JAL:
			if _, ok := inf.procs[in.Target]; ok {
				cur &= inf.maySurvive[in.Target] // zero until callee solved
			}
			return cur &^ isa.Bit(isa.RA)
		case in.Op == isa.JALR:
			return cur &^ isa.Bit(in.Rd)
		case in.Op == isa.LVLD:
			cur &^= isa.Bit(in.Rd)
			for _, sv := range pi.saves {
				if sv.idx < n && sv.reg == in.Rd && reached[sv.idx] &&
					sameSlot(pi, sv.idx, i) && s[sv.idx].Has(sv.reg) {
					cur |= isa.Bit(in.Rd)
				}
			}
			return cur
		}
		if rd, ok := in.WritesReg(); ok {
			return cur &^ isa.Bit(rd)
		}
		return cur
	}
	var sbuf []int
	for changed := true; changed; {
		changed = false
		for i := 0; i < n; i++ {
			if !reached[i] {
				continue
			}
			out := surv(i, s[i])
			sbuf, _ = succs(p, i, sbuf) // CFG construction already validated targets
			for _, nx := range sbuf {
				if nx >= n {
					continue
				}
				if !reached[nx] {
					reached[nx] = true
					changed = true
				}
				if out&^s[nx] != 0 {
					s[nx] |= out
					changed = true
				}
			}
		}
	}
	var m isa.RegMask
	for i := 0; i < n; i++ {
		if !reached[i] {
			continue
		}
		in := p.Insts[i]
		switch {
		case in.Op == isa.JR: // return, or computed jump leaving the procedure
			m |= s[i]
		case in.Op == isa.J:
			if _, local := p.LabelAt(in.Target); !local {
				m |= s[i] // tail jump: the target may preserve anything
			}
		case i == n-1 && !terminator(in):
			m |= surv(i, s[i]) // falls off the end
		}
	}
	return m
}

// sameSlot reports whether a recorded save and load address the same
// entry-relative slot.
func sameSlot(pi *inferProc, saveIdx, loadIdx int) bool {
	var so, lo *slotOp
	for k := range pi.saves {
		if pi.saves[k].idx == saveIdx {
			so = &pi.saves[k]
		}
	}
	for k := range pi.loads {
		if pi.loads[k].idx == loadIdx {
			lo = &pi.loads[k]
		}
	}
	return so != nil && lo != nil && so.off == lo.off
}

// forwardMust runs a forward must-dataflow over pi's CFG: the entry block
// starts at entryInit, joins intersect, and step transforms the mask
// across one instruction. It returns the mask holding *before* each
// instruction. Unreachable blocks keep the top value (all bits), which is
// harmless: backward liveness never flows from unreachable blocks into
// reachable ones.
func forwardMust(pi *inferProc, entryInit isa.RegMask, step func(i int, cur isa.RegMask) isa.RegMask) []isa.RegMask {
	g := pi.cfg
	n := len(pi.p.Insts)
	res := make([]isa.RegMask, n)
	for i := range res {
		res[i] = allLive
	}
	blockIn := make([]isa.RegMask, len(g.Blocks))
	for b := range blockIn {
		blockIn[b] = allLive
	}
	blockIn[0] = entryInit
	queued := make([]bool, len(g.Blocks))
	work := []int{0}
	queued[0] = true
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		queued[b] = false
		blk := &g.Blocks[b]
		cur := blockIn[b]
		for i := blk.Start; i < blk.End; i++ {
			res[i] = cur
			cur = step(i, cur)
		}
		for _, s := range blk.Succs {
			if nv := blockIn[s] & cur; nv != blockIn[s] {
				blockIn[s] = nv
				if !queued[s] {
					queued[s] = true
					work = append(work, s)
				}
			}
		}
	}
	return res
}

// computeExportTrim fills pi.exportTrim: per return, the registers whose
// live-at-return bit is identity pass-through through a qualifying
// save/restore pair. A save qualifies when its slot offset is unique, the
// procedure's frame is safe, and the saved register provably still holds
// its entry value at the save (no write, no intervening call). A restore
// then re-establishes the entry value; the register stays trimmed until
// the next write or call.
func (inf *inferrer) computeExportTrim(pi *inferProc) {
	n := len(pi.p.Insts)
	if n == 0 || pi.conservative || pi.frameUnsafe {
		return
	}
	offCount := make(map[int64]int, len(pi.saves))
	for _, s := range pi.saves {
		offCount[s.off]++
	}

	intact := forwardMust(pi, allLive, func(i int, cur isa.RegMask) isa.RegMask {
		in := pi.p.Insts[i]
		if in.Op.IsCall() {
			return 0 // conservatively nothing is entry-intact across a call
		}
		if rd, ok := in.WritesReg(); ok {
			cur &^= isa.Bit(rd)
		}
		return cur
	})
	loadRestores := make(map[int]isa.Reg)
	for _, s := range pi.saves {
		if offCount[s.off] != 1 || !intact[s.idx].Has(s.reg) {
			continue
		}
		for _, li := range pi.pairedLoads[s.idx] {
			loadRestores[li] = s.reg
		}
	}
	if len(loadRestores) == 0 {
		return
	}
	restored := forwardMust(pi, 0, func(i int, cur isa.RegMask) isa.RegMask {
		in := pi.p.Insts[i]
		if in.Op.IsCall() {
			return 0
		}
		if r, ok := loadRestores[i]; ok {
			return cur | isa.Bit(r)
		}
		if rd, ok := in.WritesReg(); ok {
			cur &^= isa.Bit(rd)
		}
		return cur
	})
	pi.exportTrim = make([]isa.RegMask, n)
	for i, in := range pi.p.Insts {
		if in.Op == isa.JR && in.IsReturn {
			pi.exportTrim[i] = restored[i]
		}
	}
}

// solveLiveness iterates the mayUse and liveAtReturn summaries together
// to their joint least fixed point. They are mutually dependent and must
// not be solved in sequence: whether a callee's read of a register is
// genuine (vs faint) depends on what its *callers* observe after the call
// — a caller may read a non-surviving register after a call and receive
// the callee's leftover value, which makes the callee's computation of
// that leftover genuine, which extends mayUse, which extends liveness in
// the caller, and so on. Every transfer is monotone in both summaries,
// so ascending iteration from the minimal boundaries terminates at a
// sound over-approximation: any concrete observation chain is finite and
// each backward link is one transfer application.
func (inf *inferrer) solveLiveness() {
	inf.mayUse = make(map[string]isa.RegMask, len(inf.order))
	inf.liveAtRet = make(map[string]isa.RegMask, len(inf.order))
	for _, pi := range inf.order {
		if pi.conservative {
			inf.mayUse[pi.p.Name] = allLive
		}
		if pi.addrTaken || (!pi.hasCallers && pi.p.Name != inf.entryName()) {
			inf.liveAtRet[pi.p.Name] = allLive
		}
	}
	for changed := true; changed; {
		changed = false
		for _, pi := range inf.order {
			if len(pi.p.Insts) == 0 {
				continue
			}
			a := inf.solveProc(pi, inf.liveAtRet[pi.p.Name], nil)
			if !pi.conservative {
				export := a
				if pi.exportTrim != nil {
					export = inf.solveProc(pi, inf.liveAtRet[pi.p.Name], pi.exportTrim)
				}
				if add := export.In[0] &^ inf.mayUse[pi.p.Name]; add != 0 {
					inf.mayUse[pi.p.Name] |= add
					changed = true
				}
			}
			for i, in := range pi.p.Insts {
				if in.Op != isa.JAL {
					continue
				}
				if _, known := inf.procs[in.Target]; !known {
					continue
				}
				if add := a.Out[i] &^ inf.liveAtRet[in.Target]; add != 0 {
					inf.liveAtRet[in.Target] |= add
					changed = true
				}
			}
		}
	}
}

// retBoundaryUse is what a return genuinely reads: the jump target, the
// value-return registers a caller may consume, and the always-live set.
var retBoundaryUse = isa.RetRegs | isa.AlwaysLive | isa.Bit(isa.RA)

// solveProc runs the interprocedural, faint-aware liveness of one
// procedure with retOut as the additional live-out mask at every return;
// a non-nil trim removes per-return identity pass-through bits from that
// boundary (the mayUse export solve). Paired saves' conditional uses
// depend on liveness at their restores, a non-local (but monotone)
// coupling: the block solve is re-run until the condition bits stabilize.
func (inf *inferrer) solveProc(pi *inferProc, retOut isa.RegMask, trim []isa.RegMask) Analysis {
	p := pi.p
	n := len(p.Insts)
	a := Analysis{In: make([]isa.RegMask, n), Out: make([]isa.RegMask, n)}
	if pi.conservative {
		for i := range a.In {
			a.In[i], a.Out[i] = allLive, allLive
		}
		return a
	}
	isSave := make(map[int]bool, len(pi.saves))
	for _, s := range pi.saves {
		isSave[s.idx] = true
	}
	isLoad := make(map[int]bool, len(pi.loads))
	for _, l := range pi.loads {
		isLoad[l.idx] = true
	}
	saveDataLive := func(idx int) bool {
		if pi.frameUnsafe {
			return true // slot privacy unknown: genuine use
		}
		for _, li := range pi.pairedLoads[idx] {
			if a.Out[li].Has(p.Insts[li].Rd) {
				return true
			}
		}
		return false
	}
	transfer := func(i int, out isa.RegMask) (def, use isa.RegMask) {
		in := p.Insts[i]
		switch {
		case in.Op == isa.JAL:
			if _, known := inf.procs[in.Target]; known {
				surv := inf.maySurvive[in.Target]
				def = ^surv | isa.Bit(isa.RA)
				use = (inf.mayUse[in.Target] &^ isa.Bit(isa.RA)) | isa.AlwaysLive
				return def, use
			}
			return 0, allLive // call into a local label: unknowable
		case in.Op == isa.JALR:
			return 0, allLive // indirect call: conservative
		case in.Op == isa.JR && in.IsReturn:
			ro := retOut
			if trim != nil {
				ro &^= trim[i]
			}
			return 0, retBoundaryUse | ro
		case in.Op == isa.JR:
			return 0, allLive // computed jump with unknown target
		case in.Op == isa.KILL:
			return 0, 0
		case isSave[i]:
			use = isa.Bit(in.Rs1)
			if saveDataLive(i) {
				use |= isa.Bit(in.Rs2)
			}
			return 0, use
		case isLoad[i]:
			return isa.Bit(in.Rd), isa.Bit(in.Rs1)
		}
		rd, writes := in.WritesReg()
		if writes {
			def = isa.Bit(rd)
		}
		// Faint values: a pure producer's sources are used only if its
		// destination is live. Pure means no side effect and no fault
		// channel: ALU (SYS publishes outputs and is excluded by its
		// missing destination) and loads (sparse memory reads are total).
		pure := in.Op.IsLoad() || !in.Op.IsMem() && !in.Op.IsBranchOrJump() &&
			in.Op != isa.SYS && in.Op != isa.HALT && in.Op != isa.NOP
		if pure && (!writes || out&def == 0) {
			return def, 0
		}
		var buf [2]isa.Reg
		for _, r := range in.AppendSrcRegs(buf[:0]) {
			if r != isa.Zero {
				use = use.Set(r)
			}
		}
		return def, use
	}
	for {
		before := make([]bool, 0, len(pi.saves))
		for _, s := range pi.saves {
			before = append(before, saveDataLive(s.idx))
		}
		a.solve(pi.cfg, transfer)
		stable := true
		for k, s := range pi.saves {
			if saveDataLive(s.idx) != before[k] {
				stable = false
			}
		}
		if stable {
			return a
		}
	}
}

// emit places kill annotations from the final solution, mirroring the
// hand path's placement policies.
func (inf *inferrer) emit() (int, error) {
	var reach map[string]isa.RegMask
	if !inf.opt.NoPrune {
		reach = reachableSaves(inf.pr)
	}
	total := 0
	for _, pi := range inf.order {
		a := inf.solveProc(pi, inf.liveAtRet[pi.p.Name], nil)
		p := pi.p

		type insertion struct {
			before int
			mask   isa.RegMask
		}
		var ins []insertion
		switch inf.opt.Policy {
		case KillsBeforeCalls:
			for i, in := range p.Insts {
				if !in.Op.IsCall() {
					continue
				}
				dead := inf.regs &^ a.In[i]
				if dead == 0 {
					continue
				}
				if reach != nil && in.Op == isa.JAL {
					if saves, ok := reach[in.Target]; ok && dead&saves == 0 {
						continue
					}
				}
				ins = append(ins, insertion{before: i, mask: dead})
			}
		case KillsAtDeath:
			for i, in := range p.Insts {
				if i+1 >= len(p.Insts) || terminator(in) || in.Op == isa.KILL {
					continue
				}
				dyingHere := inf.regs & a.In[i] &^ a.Out[i]
				if dyingHere != 0 {
					ins = append(ins, insertion{before: i + 1, mask: dyingHere})
				}
			}
		}
		for k := len(ins) - 1; k >= 0; k-- {
			p.InsertBefore(ins[k].before, prog.Inst{Inst: isa.Inst{Op: isa.KILL, Mask: ins[k].mask}})
		}
		total += len(ins)
	}
	return total, nil
}
