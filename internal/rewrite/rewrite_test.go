package rewrite

import (
	"testing"

	"dvi/internal/core"
	"dvi/internal/emu"
	"dvi/internal/isa"
	"dvi/internal/prog"
)

func mustLiveness(t *testing.T, p *prog.Proc) ([]isa.RegMask, []isa.RegMask) {
	t.Helper()
	in, err := Liveness(p)
	if err != nil {
		t.Fatalf("liveness: %v", err)
	}
	out, err := LivenessOut(p)
	if err != nil {
		t.Fatalf("liveness out: %v", err)
	}
	return in, out
}

func TestStraightLineLiveness(t *testing.T) {
	pr := prog.New()
	a := pr.Assembler("main")
	a.Li(isa.T0, 1)               // 0: def t0
	a.Add(isa.T1, isa.T0, isa.T0) // 1: use t0, def t1
	a.Add(isa.V0, isa.T1, isa.T1) // 2: use t1, def v0
	a.Ret()                       // 3
	in, out := mustLiveness(t, pr.Proc("main"))
	if in[0].Has(isa.T0) {
		t.Error("t0 live before its definition")
	}
	if !in[1].Has(isa.T0) || !out[0].Has(isa.T0) {
		t.Error("t0 not live between def and use")
	}
	if out[1].Has(isa.T0) {
		t.Error("t0 live after its last use")
	}
	if !out[2].Has(isa.V0) {
		t.Error("return value not live into the return")
	}
}

func TestBranchJoinLiveness(t *testing.T) {
	// s0 is used only on the taken path; it must be live at the branch.
	pr := prog.New()
	a := pr.Assembler("main")
	a.Li(isa.S0, 5)               // 0
	a.Beqz(isa.A0, "skip")        // 1
	a.Add(isa.V0, isa.S0, isa.S0) // 2: use s0
	a.Label("skip")
	a.Li(isa.V0, 0) // 3 — redefines v0 on the skip path? no: fallthrough overwrites
	a.Ret()         // 4
	in, _ := mustLiveness(t, pr.Proc("main"))
	if !in[1].Has(isa.S0) {
		t.Error("s0 dead at branch despite use on one successor")
	}
}

func TestCallClobbersTempsAndPreservesCalleeSaved(t *testing.T) {
	pr := prog.New()
	a := pr.Assembler("caller")
	a.Li(isa.T0, 1)               // 0: t0 dead across the call (clobbered)
	a.Li(isa.S0, 2)               // 1
	a.Call("callee")              // 2
	a.Add(isa.V0, isa.S0, isa.S0) // 3: s0 read after call
	a.Ret()                       // 4
	pr.Assembler("callee").Ret()
	pr.Entry = "caller"
	in, out := mustLiveness(t, pr.Proc("caller"))
	if out[0].Has(isa.T0) && in[2].Has(isa.T0) {
		t.Error("t0 live across call; calls clobber caller-saved registers")
	}
	if !in[2].Has(isa.S0) || !out[2].Has(isa.S0) {
		t.Error("s0 must be live through the call (used after)")
	}
	// Argument registers are conservatively live at calls.
	if !in[2].Has(isa.A0) {
		t.Error("a0 not treated as a call use")
	}
}

func TestReturnKeepsUnassignedCalleeSavedLive(t *testing.T) {
	// A procedure that never touches s3 must keep it live everywhere
	// (it holds an ancestor's value) — the paper's "assigned to in the
	// procedure" precondition.
	pr := prog.New()
	a := pr.Assembler("main")
	a.Li(isa.T0, 1)
	a.Call("main2")
	a.Ret()
	pr.Assembler("main2").Ret()
	in, out := mustLiveness(t, pr.Proc("main"))
	for i := range in {
		if !out[i].Has(isa.S3) && i < len(in)-1 {
			t.Errorf("inst %d: untouched s3 dead", i)
		}
	}
}

// figure7 builds the paper's Figure 7 scenario: two callers of the same
// procedure, one with the callee-saved register live across the call, one
// with it dead.
func figure7() *prog.Program {
	pr := prog.New()

	proc := pr.Assembler("proc")
	pepi := proc.Frame(0, false, isa.S0)
	proc.Li(isa.S0, 42)
	proc.Add(isa.V0, isa.S0, isa.Zero)
	pepi()

	live := pr.Assembler("caller_live")
	lepi := live.Frame(0, true, isa.S0)
	live.Li(isa.S0, 7)
	live.Call("proc")
	live.Add(isa.V0, isa.V0, isa.S0) // s0 read after the call: live
	lepi()

	dead := pr.Assembler("caller_dead")
	depi := dead.Frame(0, true, isa.S0)
	dead.Li(isa.S0, 7)
	dead.Add(isa.A0, isa.S0, isa.S0) // last use of s0
	dead.Call("proc")
	dead.Move(isa.V0, isa.V0)
	depi()

	m := pr.Assembler("main")
	mepi := m.Frame(0, true)
	m.Call("caller_live")
	m.Li(isa.T0, 0)
	m.Sys(isa.T0, isa.V0)
	m.Call("caller_dead")
	m.Li(isa.T0, 0)
	m.Sys(isa.T0, isa.V0)
	mepi()
	return pr
}

func countKills(p *prog.Proc) int {
	n := 0
	for _, in := range p.Insts {
		if in.Op == isa.KILL {
			n++
		}
	}
	return n
}

func TestKillsBeforeCallsMatchesPaperFigure7(t *testing.T) {
	pr := figure7()
	n, err := InsertKills(pr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("no kills inserted")
	}
	// caller_dead must have a kill of s0 before its call; caller_live
	// must not kill s0.
	deadKills := countKills(pr.Proc("caller_dead"))
	if deadKills == 0 {
		t.Error("caller_dead: no kill inserted for the dead s0")
	}
	for _, in := range pr.Proc("caller_live").Insts {
		if in.Op == isa.KILL && in.Mask.Has(isa.S0) {
			t.Error("caller_live: s0 killed while live across the call")
		}
	}
	// The kill in caller_dead immediately precedes the jal.
	p := pr.Proc("caller_dead")
	for i, in := range p.Insts {
		if in.Op == isa.KILL {
			if i+1 >= len(p.Insts) || p.Insts[i+1].Op != isa.JAL {
				t.Error("kill not immediately before the call")
			}
			if !in.Mask.Has(isa.S0) {
				t.Errorf("kill mask %s missing s0", in.Mask)
			}
		}
	}
}

// runChecked links and runs pr under full DVI with dead-read checking.
func runChecked(t *testing.T, pr *prog.Program) *emu.Emulator {
	t.Helper()
	img, err := pr.Link()
	if err != nil {
		t.Fatal(err)
	}
	e := emu.New(pr, img, emu.Config{
		DVI:            core.DefaultConfig(),
		Scheme:         emu.ElimLVMStack,
		CheckDeadReads: true,
	})
	if err := e.Run(10_000_000); err != nil {
		t.Fatal(err)
	}
	if len(e.Violations) != 0 {
		t.Fatalf("dead-value violations after rewrite: %v", e.Violations)
	}
	return e
}

func TestRewriteSoundnessFigure7(t *testing.T) {
	plain := figure7()
	imgPlain, err := plain.Link()
	if err != nil {
		t.Fatal(err)
	}
	ref := emu.New(plain, imgPlain, emu.Config{})
	if err := ref.Run(0); err != nil {
		t.Fatal(err)
	}

	rewritten := figure7()
	if _, err := InsertKills(rewritten, Options{}); err != nil {
		t.Fatal(err)
	}
	e := runChecked(t, rewritten)
	if e.Checksum != ref.Checksum {
		t.Fatalf("rewrite changed results: %#x vs %#x", e.Checksum, ref.Checksum)
	}
	if e.Stats.SavesElim == 0 || e.Stats.RestoresElim == 0 {
		t.Errorf("rewritten binary eliminated %d saves / %d restores; want > 0",
			e.Stats.SavesElim, e.Stats.RestoresElim)
	}
}

// fibProgram for deeper soundness testing.
func fibProgram(n int64) *prog.Program {
	pr := prog.New()
	f := pr.Assembler("fib")
	epi := f.Frame(0, true, isa.S0, isa.S1)
	f.Li(isa.T0, 2)
	f.Blt(isa.A0, isa.T0, "base")
	f.Move(isa.S0, isa.A0)
	f.Addi(isa.A0, isa.S0, -1)
	f.Call("fib")
	f.Move(isa.S1, isa.V0)
	f.Addi(isa.A0, isa.S0, -2)
	f.Call("fib")
	f.Add(isa.V0, isa.S1, isa.V0)
	f.Jump("done")
	f.Label("base")
	f.Move(isa.V0, isa.A0)
	f.Label("done")
	epi()
	m := pr.Assembler("main")
	mepi := m.Frame(0, true)
	m.Li(isa.A0, n)
	m.Call("fib")
	m.Li(isa.T0, 0)
	m.Sys(isa.T0, isa.V0)
	mepi()
	return pr
}

func TestRewriteSoundnessFib(t *testing.T) {
	for _, policy := range []Policy{KillsBeforeCalls, KillsAtDeath} {
		pr := fibProgram(15)
		n, err := InsertKills(pr, Options{Policy: policy})
		if err != nil {
			t.Fatal(err)
		}
		if n == 0 {
			t.Fatalf("policy %d inserted nothing", policy)
		}
		e := runChecked(t, pr)
		if e.Outputs[0] != 610 {
			t.Errorf("policy %d: fib(15) = %d, want 610", policy, e.Outputs[0])
		}
		if e.Stats.SavesElim == 0 {
			t.Errorf("policy %d: no saves eliminated", policy)
		}
	}
}

func TestFibKillPlacement(t *testing.T) {
	// In fib: s1 is dead at the first recursive call (assigned after it),
	// s0 is dead at the second (last use computing a0).
	pr := fibProgram(5)
	if _, err := InsertKills(pr, Options{}); err != nil {
		t.Fatal(err)
	}
	f := pr.Proc("fib")
	var masks []isa.RegMask
	for i, in := range f.Insts {
		if in.Op == isa.KILL {
			if f.Insts[i+1].Op != isa.JAL {
				t.Fatalf("kill %d not before a call", i)
			}
			masks = append(masks, in.Mask)
		}
	}
	if len(masks) != 2 {
		t.Fatalf("kills in fib = %d, want 2 (one per recursive call)", len(masks))
	}
	if !masks[0].Has(isa.S1) || masks[0].Has(isa.S0) {
		t.Errorf("first call kill = %s, want {s1}", masks[0])
	}
	if !masks[1].Has(isa.S0) || masks[1].Has(isa.S1) {
		t.Errorf("second call kill = %s, want s0 without s1", masks[1])
	}
}

func TestAtDeathInsertsMoreKills(t *testing.T) {
	a := fibProgram(5)
	na, _ := InsertKills(a, Options{Policy: KillsBeforeCalls})
	b := fibProgram(5)
	nb, _ := InsertKills(b, Options{Policy: KillsAtDeath})
	if nb < na {
		t.Errorf("at-death inserted %d kills < before-calls %d", nb, na)
	}
}

func TestStaticCodeSizeAccounting(t *testing.T) {
	plain := fibProgram(5)
	imgPlain, _ := plain.Link()
	rewritten := fibProgram(5)
	n, _ := InsertKills(rewritten, Options{})
	imgRw, err := rewritten.Link()
	if err != nil {
		t.Fatal(err)
	}
	if imgRw.TextWords() != imgPlain.TextWords()+n {
		t.Errorf("code grew by %d words, want %d",
			imgRw.TextWords()-imgPlain.TextWords(), n)
	}
}

func TestNonKillableCandidatesRejected(t *testing.T) {
	pr := fibProgram(3)
	if _, err := InsertKills(pr, Options{Regs: isa.MaskOf(isa.V0)}); err == nil {
		t.Error("v0 (not killable) accepted as candidate")
	}
}

func TestComputedJumpIsConservative(t *testing.T) {
	pr := prog.New()
	a := pr.Assembler("main")
	a.Li(isa.S0, 5)
	a.Inst(isa.Inst{Op: isa.JR, Rs1: isa.T0}) // computed jump
	in, _ := mustLiveness(t, pr.Proc("main"))
	if !in[1].Has(isa.S0) {
		t.Error("computed jump must keep everything live")
	}
	// And no kills are inserted before a call that precedes it... there is
	// no call; just ensure the rewriter runs without error.
	if _, err := InsertKills(pr, Options{}); err != nil {
		t.Fatal(err)
	}
}
