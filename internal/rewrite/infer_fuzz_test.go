package rewrite

import (
	"fmt"
	"math/rand"
	"testing"

	"dvi/internal/core"
	"dvi/internal/emu"
	"dvi/internal/isa"
	"dvi/internal/prog"
)

// The inference differential fuzzer (the sibling of ooo's
// fuzz_test.go): random terminating programs with frames, call DAGs,
// bounded loops, branches, and memory traffic — but NO kill annotations —
// are annotated by rewrite.Infer and must run architecturally
// bit-identical to the unannotated original under every elimination
// scheme. A shadow taint interpreter additionally proves every inferred
// kill is of a truly-dead value: killed registers (and the stale stack
// slots of eliminated saves) are tainted, taint propagates through
// arithmetic and memory, and reaching any observable sink — a store
// address, a branch or jump input, a system output — is a soundness
// violation regardless of whether the value happened to be bit-equal.

type inferGen struct {
	r      *rand.Rand
	nProcs int
}

var inferTemps = []isa.Reg{isa.T0, isa.T1, isa.T2, isa.T3, isa.T4, isa.T5}

func (g *inferGen) reg() isa.Reg { return inferTemps[g.r.Intn(len(inferTemps))] }

func (g *inferGen) savedPool() []isa.Reg {
	all := []isa.Reg{isa.S1, isa.S2, isa.S3, isa.S4, isa.S5}
	n := g.r.Intn(len(all) + 1)
	return all[:n]
}

func (g *inferGen) emitBody(a *prog.Asm, self int, saved []isa.Reg) {
	r := g.r
	nOps := 4 + r.Intn(24)
	label := 0
	calls := 0
	for i := 0; i < nOps; i++ {
		switch r.Intn(12) {
		case 0, 1, 2: // arithmetic on temps
			ops := []isa.Op{isa.ADD, isa.SUB, isa.MUL, isa.AND, isa.OR, isa.XOR, isa.SLT}
			a.Inst(isa.Inst{Op: ops[r.Intn(len(ops))], Rd: g.reg(), Rs1: g.reg(), Rs2: g.reg()})
		case 3:
			a.Addi(g.reg(), g.reg(), int64(r.Intn(4096)-2048))
		case 4:
			if r.Intn(2) == 0 {
				a.Div(g.reg(), g.reg(), g.reg())
			} else {
				a.Rem(g.reg(), g.reg(), g.reg())
			}
		case 5: // memory round trip through the scratch array
			off := int64(r.Intn(32)) * 8
			a.LoadAddr(isa.T6, "scratch")
			if r.Intn(2) == 0 {
				a.St(g.reg(), isa.T6, off)
			} else {
				a.Ld(g.reg(), isa.T6, off)
			}
		case 6: // bounded loop on a callee-saved counter
			if len(saved) > 0 {
				cnt := saved[r.Intn(len(saved))]
				lbl := fmt.Sprintf("l%d_%d", self, label)
				label++
				a.Li(cnt, int64(1+r.Intn(6)))
				a.Label(lbl)
				a.Inst(isa.Inst{Op: isa.ADD, Rd: g.reg(), Rs1: g.reg(), Rs2: cnt})
				a.Addi(cnt, cnt, -1)
				a.Bnez(cnt, lbl)
			}
		case 7: // forward branch
			lbl := fmt.Sprintf("f%d_%d", self, label)
			label++
			ops := []isa.Op{isa.BEQ, isa.BNE, isa.BLT, isa.BGE}
			a.Inst(isa.Inst{Op: ops[r.Intn(len(ops))], Rs1: g.reg(), Rs2: g.reg()})
			p := a.Proc()
			p.Insts[len(p.Insts)-1].Kind = prog.TargetBranch
			p.Insts[len(p.Insts)-1].Target = lbl
			a.Addi(g.reg(), g.reg(), 1)
			a.Xor(g.reg(), g.reg(), g.reg())
			a.Label(lbl)
		case 8: // call deeper into the DAG
			if self+1 < g.nProcs && calls < 2 {
				calls++
				callee := self + 1 + r.Intn(g.nProcs-self-1)
				a.Move(isa.A0, g.reg())
				a.Call(fmt.Sprintf("q%d", callee))
				a.Move(g.reg(), isa.V0)
			}
		case 9: // frame-local spill round trip (slots are init'd at entry)
			slot := int64(r.Intn(2)) * 8
			a.St(g.reg(), isa.SP, slot)
			a.Addi(g.reg(), g.reg(), int64(r.Intn(8)))
			a.Ld(g.reg(), isa.SP, slot)
		case 10: // compute with a callee-saved register
			if len(saved) > 0 {
				s := saved[r.Intn(len(saved))]
				if r.Intn(2) == 0 {
					a.Add(s, g.reg(), s)
				} else {
					a.Add(g.reg(), s, g.reg())
				}
			}
		case 11: // emit an output
			a.Sys(isa.Zero, g.reg())
		}
	}
	a.Add(isa.V0, g.reg(), g.reg())
}

// buildInferFuzzProgram generates a random annotation-free program.
// Unlike the ooo fuzzer it emits no kill instructions (those are the
// inference pass's job) and initializes frame locals before any body
// instruction can load them, so no run ever observes leftover stack.
func buildInferFuzzProgram(seed int64) *prog.Program {
	r := rand.New(rand.NewSource(seed))
	g := &inferGen{r: r, nProcs: 3 + r.Intn(4)}
	pr := prog.New()
	pr.AddData(prog.DataSym{Name: "scratch", Size: 64 * 8})

	for i := 0; i < g.nProcs; i++ {
		a := pr.Assembler(fmt.Sprintf("q%d", i))
		saved := g.savedPool()
		hasCalls := i+1 < g.nProcs
		epi := a.Frame(16, hasCalls, saved...)
		a.St(isa.A0, isa.SP, 0) // initialize the local slots
		a.St(isa.A0, isa.SP, 8)
		for j, s := range saved {
			a.Li(s, int64(seed)%97+int64(j))
		}
		g.emitBody(a, i, saved)
		epi()
	}

	m := pr.Assembler("main")
	mepi := m.Frame(0, true, isa.S0)
	m.Li(isa.S0, int64(2+r.Intn(3)))
	m.Label("top")
	m.Li(isa.A0, 5)
	m.Call("q0")
	m.Sys(isa.Zero, isa.V0)
	m.Addi(isa.S0, isa.S0, -1)
	m.Bnez(isa.S0, "top")
	mepi()
	return pr
}

// taintOracle shadows an emulator run. A taint bit means "the analysis
// asserted this value is dead"; the oracle's transfer rules mirror
// exactly what the faint-value analysis is allowed to assume.
type taintOracle struct {
	reg [32]bool
	mem map[uint64]bool // per tainted byte
}

func newTaintOracle() *taintOracle { return &taintOracle{mem: make(map[uint64]bool)} }

func (o *taintOracle) memTainted(addr uint64, width int) bool {
	for i := 0; i < width; i++ {
		if o.mem[addr+uint64(i)] {
			return true
		}
	}
	return false
}

func (o *taintOracle) setMem(addr uint64, width int, taint bool) {
	for i := 0; i < width; i++ {
		if taint {
			o.mem[addr+uint64(i)] = true
		} else {
			delete(o.mem, addr+uint64(i))
		}
	}
}

// step applies one executed instruction to the shadow state and returns
// an error if a dead (tainted) value reached an observable sink.
func (o *taintOracle) step(st emu.Step, e *emu.Emulator) error {
	in := st.Inst
	sink := func(rs ...isa.Reg) error {
		for _, r := range rs {
			if o.reg[r] {
				return fmt.Errorf("pc %#x %v: dead value in %v reaches an observable sink", st.PC, in.Op, r)
			}
		}
		return nil
	}
	switch {
	case in.Op == isa.KILL:
		for r := isa.Reg(0); r < 32; r++ {
			if in.Mask.Has(r) && !isa.AlwaysLive.Has(r) {
				o.reg[r] = true
			}
		}
	case in.Op == isa.JAL:
		o.reg[isa.RA] = false
	case in.Op == isa.JALR:
		if err := sink(in.Rs1); err != nil {
			return err
		}
		o.reg[in.Rd] = false
	case in.Op == isa.JR:
		return sink(in.Rs1)
	case in.Op == isa.SYS:
		return sink(in.Rs1, in.Rs2)
	case isa.OpClass(in.Op) == isa.ClassBranch:
		return sink(in.Rs1, in.Rs2)
	case in.Op == isa.J, in.Op == isa.NOP, in.Op == isa.HALT:
		// no data flow
	case in.Op == isa.LVST:
		// SP is never killable, so the address is clean by construction;
		// an eliminated save leaves the slot stale — taint it.
		addr := e.Regs[in.Rs1] + uint64(in.Imm)
		if st.Eliminated {
			o.setMem(addr, 8, true)
		} else {
			o.setMem(addr, 8, o.reg[in.Rs2])
		}
	case in.Op == isa.LVLD:
		// An eliminated restore leaves the register (and its taint)
		// untouched; an executed one reloads whatever the slot holds.
		if !st.Eliminated {
			o.reg[in.Rd] = o.reg[in.Rs1] || o.memTainted(st.Addr, 8)
		}
	case in.Op == isa.LD, in.Op == isa.LB:
		// Loading through a dead address is permitted (the faint layer
		// relies on loads being total) — the result is simply dead too.
		w := 8
		if in.Op == isa.LB {
			w = 1
		}
		if in.Rd != isa.Zero {
			o.reg[in.Rd] = o.reg[in.Rs1] || o.memTainted(st.Addr, w)
		}
	case in.Op == isa.ST, in.Op == isa.SB:
		// A dead store address would corrupt arbitrary memory: a sink.
		if err := sink(in.Rs1); err != nil {
			return err
		}
		w := 8
		if in.Op == isa.SB {
			w = 1
		}
		o.setMem(st.Addr, w, o.reg[in.Rs2])
	default: // arithmetic, immediates, lui
		if rd, ok := in.WritesReg(); ok {
			t := false
			var buf [2]isa.Reg
			for _, r := range in.AppendSrcRegs(buf[:0]) {
				t = t || o.reg[r]
			}
			o.reg[rd] = t
		}
	}
	o.reg[isa.Zero] = false
	return nil
}

// runOracle executes pr step by step with the taint shadow attached.
func runOracle(t *testing.T, pr *prog.Program, scheme emu.Scheme) *emu.Emulator {
	t.Helper()
	img, err := pr.Link()
	if err != nil {
		t.Fatal(err)
	}
	e := emu.New(pr, img, emu.Config{DVI: core.DefaultConfig(), Scheme: scheme})
	o := newTaintOracle()
	for steps := 0; ; steps++ {
		if steps > 2_000_000 {
			t.Fatal("oracle run exceeded instruction budget")
		}
		st := e.Step()
		if st.Halted {
			break
		}
		if err := o.step(st, e); err != nil {
			t.Fatalf("scheme %v: unsound inferred kill: %v", scheme, err)
		}
	}
	return e
}

func TestInferFuzzDifferential(t *testing.T) {
	seeds := 40
	if testing.Short() {
		seeds = 8
	}
	schemes := []emu.Scheme{emu.ElimOff, emu.ElimLVM, emu.ElimLVMStack}
	totalKills, totalElim := 0, uint64(0)
	for seed := int64(1); seed <= int64(seeds); seed++ {
		ref := runPlain(t, buildInferFuzzProgram(seed))
		for _, policy := range []Policy{KillsBeforeCalls, KillsAtDeath} {
			pr := buildInferFuzzProgram(seed)
			n, err := Infer(pr, Options{Policy: policy})
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			totalKills += n
			for _, scheme := range schemes {
				e := runOracle(t, pr, scheme)
				if e.Checksum != ref.Checksum {
					t.Fatalf("seed %d policy %d scheme %v: checksum %#x != reference %#x",
						seed, policy, scheme, e.Checksum, ref.Checksum)
				}
				if len(e.Outputs) != len(ref.Outputs) {
					t.Fatalf("seed %d policy %d scheme %v: %d outputs != %d",
						seed, policy, scheme, len(e.Outputs), len(ref.Outputs))
				}
				for i := range e.Outputs {
					if e.Outputs[i] != ref.Outputs[i] {
						t.Fatalf("seed %d policy %d scheme %v: output %d diverges", seed, policy, scheme, i)
					}
				}
				if e.Stats.Original() != ref.Stats.Original() {
					t.Fatalf("seed %d policy %d scheme %v: original inst count %d != %d",
						seed, policy, scheme, e.Stats.Original(), ref.Stats.Original())
				}
				if len(e.Violations) != 0 {
					t.Fatalf("seed %d policy %d scheme %v: %d tracker violations",
						seed, policy, scheme, len(e.Violations))
				}
				if scheme == emu.ElimLVMStack {
					totalElim += e.Stats.SavesElim
				}
			}
		}
	}
	// The pass must not be vacuously sound: across the corpus it has to
	// find kills and those kills have to eliminate real save traffic.
	if totalKills == 0 {
		t.Error("inference inserted no kills across the entire fuzz corpus")
	}
	if totalElim == 0 {
		t.Error("inferred kills eliminated no saves across the entire fuzz corpus")
	}
}

// TestInferFuzzOracleCatchesBadKills sanity-checks the oracle itself: an
// unsound kill of main's live loop counter must be flagged.
func TestInferFuzzOracleCatchesBadKills(t *testing.T) {
	pr := buildInferFuzzProgram(1)
	m := pr.Proc("main")
	for i, in := range m.Insts {
		if in.Op == isa.JAL { // kill the live counter right before the call
			m.InsertBefore(i, prog.Inst{Inst: isa.Inst{Op: isa.KILL, Mask: isa.MaskOf(isa.S0)}})
			break
		}
	}
	img, err := pr.Link()
	if err != nil {
		t.Fatal(err)
	}
	e := emu.New(pr, img, emu.Config{DVI: core.DefaultConfig(), Scheme: emu.ElimLVMStack})
	o := newTaintOracle()
	caught := false
	for steps := 0; steps < 2_000_000; steps++ {
		st := e.Step()
		if st.Halted {
			break
		}
		if o.step(st, e) != nil {
			caught = true
			break
		}
	}
	if !caught {
		t.Fatal("oracle failed to flag a kill of a live register")
	}
}
