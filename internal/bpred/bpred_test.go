package bpred

import (
	"math/rand"
	"testing"
)

func TestCounterSaturation(t *testing.T) {
	c := counter(0)
	for i := 0; i < 10; i++ {
		c = c.update(true)
	}
	if c != 3 {
		t.Errorf("counter saturated at %d", c)
	}
	for i := 0; i < 10; i++ {
		c = c.update(false)
	}
	if c != 0 {
		t.Errorf("counter floored at %d", c)
	}
	if counter(2).taken() != true || counter(1).taken() != false {
		t.Error("threshold wrong")
	}
}

// train performs the full pipeline protocol for one branch instance:
// predict, resolve, and repair the speculative history on a mispredict
// (the pipeline restores the checkpointed history at recovery).
func train(p *Predictor, pc uint64, taken bool) (pred bool) {
	pred, info := p.Predict(pc)
	p.Resolve(pc, taken, info)
	if pred != taken {
		p.RestoreHistory(info.Hist, taken)
	}
	return pred
}

func TestAlwaysTakenBranchLearns(t *testing.T) {
	p := New(DefaultConfig())
	pc := uint64(0x4000)
	wrong := 0
	for i := 0; i < 100; i++ {
		if !train(p, pc, true) {
			wrong++
		}
	}
	if wrong > 2 {
		t.Errorf("always-taken branch mispredicted %d/100", wrong)
	}
}

func TestAlternatingBranchGshareLearns(t *testing.T) {
	// A strict alternation is history-predictable: gshare should converge
	// and the chooser should select it.
	p := New(DefaultConfig())
	pc := uint64(0x4000)
	taken := false
	wrong := 0
	for i := 0; i < 400; i++ {
		if train(p, pc, taken) != taken {
			wrong++
		}
		taken = !taken
	}
	if wrong > 60 { // generous warm-up allowance
		t.Errorf("alternating branch mispredicted %d/400", wrong)
	}
}

func TestLoopBranchAccuracy(t *testing.T) {
	// 7-iteration loop: 16-bit history covers two full periods; accuracy
	// should approach 7/8+ after warm-up.
	p := New(DefaultConfig())
	pc := uint64(0x8000)
	wrong := 0
	n := 0
	for iter := 0; iter < 300; iter++ {
		for i := 0; i < 8; i++ {
			taken := i < 7
			pred := train(p, pc, taken)
			if iter >= 50 {
				n++
				if pred != taken {
					wrong++
				}
			}
		}
	}
	if rate := float64(wrong) / float64(n); rate > 0.10 {
		t.Errorf("loop branch mispredict rate = %.3f", rate)
	}
}

func TestHistoryCheckpointRestore(t *testing.T) {
	p := New(DefaultConfig())
	// Predict a few branches, checkpoint, predict more (wrong path), then
	// restore with the actual outcome.
	for i := 0; i < 5; i++ {
		p.Predict(uint64(0x100 + 4*i))
	}
	h := p.History()
	pred, _ := p.Predict(0x200) // the mispredicted branch: shifts pred
	for i := 0; i < 7; i++ {
		p.Predict(uint64(0x300 + 4*i)) // wrong-path pollution
	}
	p.RestoreHistory(h, !pred)
	want := (h<<1 | boolBit(!pred)) & 0xFFFF
	if p.History() != want {
		t.Errorf("history after restore = %#x, want %#x", p.History(), want)
	}
}

func boolBit(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

func TestMispredictRateAccounting(t *testing.T) {
	p := New(DefaultConfig())
	pc := uint64(0x40)
	for i := 0; i < 10; i++ {
		_, info := p.Predict(pc)
		p.Resolve(pc, i%2 == 0, info)
	}
	if p.Lookups != 10 {
		t.Errorf("lookups = %d", p.Lookups)
	}
	if p.Mispredicts == 0 || p.Mispredicts > 10 {
		t.Errorf("mispredicts = %d", p.Mispredicts)
	}
	if p.MispredictRate() != float64(p.Mispredicts)/10 {
		t.Error("rate arithmetic wrong")
	}
}

func TestChooserAdapts(t *testing.T) {
	// Branch A: direction correlates with history (alternating); branch B:
	// heavily biased. After training, overall accuracy must be high, which
	// requires the chooser to route A to gshare and B to either.
	p := New(DefaultConfig())
	wrong, n := 0, 0
	taken := false
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 2000; i++ {
		predA := train(p, 0x1000, taken)
		if i > 500 {
			n++
			if predA != taken {
				wrong++
			}
		}
		taken = !taken

		bTaken := r.Intn(10) != 0
		predB := train(p, 0x2000, bTaken)
		if i > 500 {
			n++
			if predB != bTaken {
				wrong++
			}
		}
	}
	if rate := float64(wrong) / float64(n); rate > 0.2 {
		t.Errorf("combined mispredict rate = %.3f", rate)
	}
}

func TestBTBBasics(t *testing.T) {
	b := NewBTB(16, 2)
	if _, ok := b.Lookup(0x100); ok {
		t.Error("empty BTB hit")
	}
	b.Update(0x100, 0x5000)
	if tgt, ok := b.Lookup(0x100); !ok || tgt != 0x5000 {
		t.Errorf("lookup = %#x,%v", tgt, ok)
	}
	b.Update(0x100, 0x6000) // refresh target
	if tgt, _ := b.Lookup(0x100); tgt != 0x6000 {
		t.Errorf("updated target = %#x", tgt)
	}
	if b.Lookups != 3 || b.Hits != 2 {
		t.Errorf("stats: %d lookups %d hits", b.Lookups, b.Hits)
	}
}

func TestBTBConflictEviction(t *testing.T) {
	b := NewBTB(16, 2)
	// Same set: pc increments of 16*4 bytes.
	pcs := []uint64{0x100, 0x100 + 64, 0x100 + 128}
	for i, pc := range pcs {
		b.Update(pc, uint64(0x1000*(i+1)))
	}
	hits := 0
	for _, pc := range pcs {
		if _, ok := b.Lookup(pc); ok {
			hits++
		}
	}
	if hits != 2 {
		t.Errorf("2-way set retained %d of 3 conflicting entries", hits)
	}
}

func TestRASPushPop(t *testing.T) {
	r := NewRAS(4)
	r.Push(0x100)
	r.Push(0x200)
	if a, ok := r.Pop(); !ok || a != 0x200 {
		t.Errorf("pop = %#x,%v", a, ok)
	}
	if a, ok := r.Pop(); !ok || a != 0x100 {
		t.Errorf("pop = %#x,%v", a, ok)
	}
	if _, ok := r.Pop(); ok {
		t.Error("underflow returned a prediction")
	}
}

func TestRASOverflowWraps(t *testing.T) {
	r := NewRAS(2)
	r.Push(1)
	r.Push(2)
	r.Push(3) // overwrites 1
	if a, _ := r.Pop(); a != 3 {
		t.Errorf("pop = %d", a)
	}
	if a, _ := r.Pop(); a != 2 {
		t.Errorf("pop = %d", a)
	}
	if _, ok := r.Pop(); ok {
		t.Error("entry 1 should have been overwritten")
	}
}

func TestRASSnapshotRestore(t *testing.T) {
	r := NewRAS(8)
	r.Push(0xA)
	r.Push(0xB)
	snap := r.Snapshot()
	r.Pop()
	r.Push(0xC)
	r.Push(0xD)
	r.Restore(snap)
	if a, _ := r.Pop(); a != 0xB {
		t.Errorf("after restore pop = %#x, want 0xB", a)
	}
	if a, _ := r.Pop(); a != 0xA {
		t.Errorf("after restore pop = %#x, want 0xA", a)
	}
}

func TestDeepCallChainWithinDepth(t *testing.T) {
	r := NewRAS(16)
	for i := 0; i < 16; i++ {
		r.Push(uint64(i))
	}
	for i := 15; i >= 0; i-- {
		a, ok := r.Pop()
		if !ok || a != uint64(i) {
			t.Fatalf("pop %d = %d,%v", i, a, ok)
		}
	}
}

func TestPredictorCaptureRestoreRoundTrip(t *testing.T) {
	cfg := DefaultConfig()
	p := New(cfg)
	for i := uint64(0); i < 500; i++ {
		pc := (i % 13) * 4
		_, info := p.Predict(pc)
		taken := i%3 != 0
		p.Resolve(pc, taken, info)
		if info.Pred != taken {
			p.RestoreHistory(info.Hist, taken)
		}
	}

	var snap PredictorSnapshot
	p.Capture(&snap)

	twin := New(cfg)
	twin.Restore(&snap)
	if twin.hist != p.hist || twin.Lookups != p.Lookups || twin.Mispredicts != p.Mispredicts {
		t.Fatal("restore did not reinstate predictor state")
	}
	// Identical state must keep predicting identically.
	for i := uint64(0); i < 50; i++ {
		pc := (i % 7) * 4
		a, _ := p.Predict(pc)
		b, _ := twin.Predict(pc)
		if a != b {
			t.Fatalf("prediction diverged at %d", i)
		}
	}

	allocs := testing.AllocsPerRun(10, func() { p.Capture(&snap) })
	if allocs > 0 {
		t.Errorf("steady-state capture allocates %.1f/op, want 0", allocs)
	}
}

func TestBTBCaptureRestoreRoundTrip(t *testing.T) {
	b := NewBTB(64, 2)
	for i := uint64(0); i < 300; i++ {
		pc := (i % 90) * 4
		if _, ok := b.Lookup(pc); !ok {
			b.Update(pc, pc+100)
		}
	}

	var snap BTBSnapshot
	b.Capture(&snap)

	twin := NewBTB(64, 2)
	twin.Restore(&snap)
	if twin.Lookups != b.Lookups || twin.Hits != b.Hits || twin.tick != b.tick {
		t.Fatal("restore did not reinstate BTB counters")
	}
	for i := uint64(0); i < 90; i++ {
		ta, oka := b.Lookup(i * 4)
		tb, okb := twin.Lookup(i * 4)
		if ta != tb || oka != okb {
			t.Fatalf("BTB diverged at pc %#x", i*4)
		}
	}

	allocs := testing.AllocsPerRun(10, func() { b.Capture(&snap) })
	if allocs > 0 {
		t.Errorf("steady-state capture allocates %.1f/op, want 0", allocs)
	}
}
