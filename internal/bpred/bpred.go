// Package bpred implements the branch prediction hardware of the simulated
// machine (paper Figure 2): a combining predictor choosing between a
// bimodal table and a gshare table with 16-bit global history, a
// set-associative branch target buffer for indirect jumps, and a return
// address stack.
//
// History is updated speculatively at prediction time; the pipeline
// checkpoints the history register (and the RAS) per control instruction
// and restores both on misprediction recovery. Pattern tables are updated
// non-speculatively at branch resolution.
package bpred

// Config sizes the predictor.
type Config struct {
	BimodBits  uint // log2 entries of the bimodal table
	GshareBits uint // log2 entries of the gshare table; also history length cap
	ChoiceBits uint // log2 entries of the chooser table
	HistBits   uint // global history length (paper: 16)
	BTBSets    int
	BTBAssoc   int
	RASDepth   int
}

// DefaultConfig mirrors the paper's configuration: 16-bit history
// gshare/bimod combining predictor with a BTB and an 8-entry RAS.
func DefaultConfig() Config {
	return Config{
		BimodBits:  13,
		GshareBits: 16,
		ChoiceBits: 13,
		HistBits:   16,
		BTBSets:    512,
		BTBAssoc:   4,
		RASDepth:   16,
	}
}

// counter is a 2-bit saturating counter; taken >= 2.
type counter uint8

func (c counter) taken() bool { return c >= 2 }

func (c counter) update(taken bool) counter {
	if taken {
		if c < 3 {
			return c + 1
		}
		return c
	}
	if c > 0 {
		return c - 1
	}
	return c
}

// Info carries the prediction-time state a branch needs for its
// non-speculative table update at resolution.
type Info struct {
	Hist   uint32 // history register value used for the gshare index
	Bimod  bool   // bimodal component's prediction
	Gshare bool   // gshare component's prediction
	Pred   bool   // chosen overall prediction
}

// Predictor is the direction predictor with speculative global history.
type Predictor struct {
	cfg    Config
	bimod  []counter
	gshare []counter
	choice []counter
	hist   uint32

	Lookups     uint64
	Mispredicts uint64
}

// New builds a predictor with weakly-taken initial counters.
func New(cfg Config) *Predictor {
	p := &Predictor{
		cfg:    cfg,
		bimod:  make([]counter, 1<<cfg.BimodBits),
		gshare: make([]counter, 1<<cfg.GshareBits),
		choice: make([]counter, 1<<cfg.ChoiceBits),
	}
	for i := range p.bimod {
		p.bimod[i] = 2
	}
	for i := range p.gshare {
		p.gshare[i] = 2
	}
	for i := range p.choice {
		p.choice[i] = 2 // weakly prefer gshare
	}
	return p
}

// Reset returns the predictor to its freshly-constructed state
// (weakly-taken counters, clear history, zero statistics) without
// reallocating the tables. The geometry is unchanged; pooled machines
// reallocate only when the configuration itself differs.
func (p *Predictor) Reset() {
	for i := range p.bimod {
		p.bimod[i] = 2
	}
	for i := range p.gshare {
		p.gshare[i] = 2
	}
	for i := range p.choice {
		p.choice[i] = 2
	}
	p.hist = 0
	p.Lookups, p.Mispredicts = 0, 0
}

func (p *Predictor) bimodIdx(pc uint64) uint64 {
	return (pc >> 2) & (uint64(len(p.bimod)) - 1)
}

func (p *Predictor) gshareIdx(pc uint64, hist uint32) uint64 {
	return ((pc >> 2) ^ uint64(hist)) & (uint64(len(p.gshare)) - 1)
}

func (p *Predictor) choiceIdx(pc uint64) uint64 {
	return (pc >> 2) & (uint64(len(p.choice)) - 1)
}

// Predict returns the direction prediction for the conditional branch at pc
// and speculatively shifts the predicted outcome into the history register.
func (p *Predictor) Predict(pc uint64) (bool, Info) {
	p.Lookups++
	info := Info{Hist: p.hist}
	info.Bimod = p.bimod[p.bimodIdx(pc)].taken()
	info.Gshare = p.gshare[p.gshareIdx(pc, p.hist)].taken()
	if p.choice[p.choiceIdx(pc)].taken() {
		info.Pred = info.Gshare
	} else {
		info.Pred = info.Bimod
	}
	p.shiftHist(info.Pred)
	return info.Pred, info
}

func (p *Predictor) shiftHist(taken bool) {
	p.hist <<= 1
	if taken {
		p.hist |= 1
	}
	p.hist &= (1 << p.cfg.HistBits) - 1
}

// Resolve performs the non-speculative update for a branch whose actual
// outcome is known: both component tables train, and the chooser trains
// toward whichever component was right when they disagreed.
func (p *Predictor) Resolve(pc uint64, taken bool, info Info) {
	if info.Pred != taken {
		p.Mispredicts++
	}
	bi := p.bimodIdx(pc)
	p.bimod[bi] = p.bimod[bi].update(taken)
	gi := p.gshareIdx(pc, info.Hist)
	p.gshare[gi] = p.gshare[gi].update(taken)
	if info.Bimod != info.Gshare {
		ci := p.choiceIdx(pc)
		p.choice[ci] = p.choice[ci].update(info.Gshare == taken)
	}
}

// History returns the speculative history register (checkpointed per
// fetched control instruction).
func (p *Predictor) History() uint32 { return p.hist }

// RestoreHistory reinstates a checkpointed history register after a
// conditional-branch misprediction, then shifts in the now-known actual
// outcome.
func (p *Predictor) RestoreHistory(hist uint32, actual bool) {
	p.hist = hist
	p.shiftHist(actual)
}

// SetHistory reinstates a checkpointed history register verbatim (used
// when recovering from a target misprediction of an unconditional
// transfer, which never shifted history itself).
func (p *Predictor) SetHistory(hist uint32) { p.hist = hist }

// PredictorSnapshot captures the full direction-predictor state — all
// three counter tables, the history register, statistics — so a
// functionally-warmed predictor can be transplanted into a pooled machine
// at a sampled-simulation checkpoint. Table slices are reused across
// captures.
type PredictorSnapshot struct {
	bimod, gshare, choice []counter
	hist                  uint32
	lookups, mispredicts  uint64
}

// Capture fills dst with the predictor's current state.
func (p *Predictor) Capture(dst *PredictorSnapshot) {
	dst.bimod = append(dst.bimod[:0], p.bimod...)
	dst.gshare = append(dst.gshare[:0], p.gshare...)
	dst.choice = append(dst.choice[:0], p.choice...)
	dst.hist = p.hist
	dst.lookups, dst.mispredicts = p.Lookups, p.Mispredicts
}

// Restore reinstates a captured state into an identically configured
// predictor.
func (p *Predictor) Restore(s *PredictorSnapshot) {
	if len(s.bimod) != len(p.bimod) || len(s.gshare) != len(p.gshare) || len(s.choice) != len(p.choice) {
		panic("bpred: restoring predictor snapshot with mismatched geometry")
	}
	copy(p.bimod, s.bimod)
	copy(p.gshare, s.gshare)
	copy(p.choice, s.choice)
	p.hist = s.hist
	p.Lookups, p.Mispredicts = s.lookups, s.mispredicts
}

// MispredictRate returns mispredicts/lookups.
func (p *Predictor) MispredictRate() float64 {
	if p.Lookups == 0 {
		return 0
	}
	return float64(p.Mispredicts) / float64(p.Lookups)
}

// --- BTB ---

type btbEntry struct {
	tag    uint64
	target uint64
	valid  bool
	used   uint64
}

// BTB is a set-associative branch target buffer used for indirect jumps.
type BTB struct {
	sets  [][]btbEntry
	tick  uint64
	nsets uint64

	Lookups uint64
	Hits    uint64
}

// NewBTB builds a BTB with the given geometry (sets must be a power of 2).
func NewBTB(nSets, assoc int) *BTB {
	if nSets <= 0 || nSets&(nSets-1) != 0 {
		panic("bpred: BTB sets must be a power of two")
	}
	b := &BTB{nsets: uint64(nSets)}
	backing := make([]btbEntry, nSets*assoc)
	b.sets = make([][]btbEntry, nSets)
	for i := range b.sets {
		b.sets[i] = backing[i*assoc : (i+1)*assoc]
	}
	return b
}

// Reset invalidates every entry and zeroes the statistics, keeping the
// arrays for reuse.
func (b *BTB) Reset() {
	for _, set := range b.sets {
		for i := range set {
			set[i] = btbEntry{}
		}
	}
	b.tick = 0
	b.Lookups, b.Hits = 0, 0
}

// Lookup returns the predicted target for the control instruction at pc.
func (b *BTB) Lookup(pc uint64) (uint64, bool) {
	b.Lookups++
	set := b.sets[(pc>>2)&(b.nsets-1)]
	for i := range set {
		if set[i].valid && set[i].tag == pc {
			b.tick++
			set[i].used = b.tick
			b.Hits++
			return set[i].target, true
		}
	}
	return 0, false
}

// Update installs or refreshes the target for pc.
func (b *BTB) Update(pc, target uint64) {
	b.tick++
	set := b.sets[(pc>>2)&(b.nsets-1)]
	victim := 0
	for i := range set {
		if set[i].valid && set[i].tag == pc {
			set[i].target = target
			set[i].used = b.tick
			return
		}
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].used < set[victim].used {
			victim = i
		}
	}
	set[victim] = btbEntry{tag: pc, target: target, valid: true, used: b.tick}
}

// BTBSnapshot captures the branch target buffer's content; the entry
// array is reused across captures.
type BTBSnapshot struct {
	entries       []btbEntry
	tick          uint64
	lookups, hits uint64
}

// Capture fills dst with the BTB's current state.
func (b *BTB) Capture(dst *BTBSnapshot) {
	assoc := len(b.sets[0])
	need := len(b.sets) * assoc
	if cap(dst.entries) < need {
		dst.entries = make([]btbEntry, need)
	}
	dst.entries = dst.entries[:need]
	for i, set := range b.sets {
		copy(dst.entries[i*assoc:], set)
	}
	dst.tick = b.tick
	dst.lookups, dst.hits = b.Lookups, b.Hits
}

// Restore reinstates a captured state into an identically configured BTB.
func (b *BTB) Restore(s *BTBSnapshot) {
	assoc := len(b.sets[0])
	if len(s.entries) != len(b.sets)*assoc {
		panic("bpred: restoring BTB snapshot with mismatched geometry")
	}
	for i, set := range b.sets {
		copy(set, s.entries[i*assoc:(i+1)*assoc])
	}
	b.tick = s.tick
	b.Lookups, b.Hits = s.lookups, s.hits
}

// --- RAS ---

// MaxRASDepth bounds the return address stack so snapshots can be plain
// values (the pipeline checkpoints the RAS at every fetched control
// instruction; snapshots must not allocate).
const MaxRASDepth = 32

// RAS is the return address stack. It is a circular buffer: overflow
// overwrites the oldest entry, underflow returns no prediction.
type RAS struct {
	entries [MaxRASDepth]uint64
	depth   int
	sp      int
	count   int
}

// NewRAS builds a return address stack of the given depth.
func NewRAS(depth int) *RAS {
	if depth <= 0 || depth > MaxRASDepth {
		panic("bpred: RAS depth out of range")
	}
	return &RAS{depth: depth}
}

// Reset empties the stack (depth unchanged).
func (r *RAS) Reset() {
	r.sp = 0
	r.count = 0
}

// Push records a return address at a call.
func (r *RAS) Push(addr uint64) {
	r.entries[r.sp] = addr
	r.sp = (r.sp + 1) % r.depth
	if r.count < r.depth {
		r.count++
	}
}

// Pop predicts the target of a return.
func (r *RAS) Pop() (uint64, bool) {
	if r.count == 0 {
		return 0, false
	}
	r.count--
	r.sp--
	if r.sp < 0 {
		r.sp = r.depth - 1
	}
	return r.entries[r.sp], true
}

// RASSnapshot captures the full RAS state (checkpointed per fetched
// control instruction so recovery is exact). It is a plain value: copying
// it does not allocate.
type RASSnapshot struct {
	entries [MaxRASDepth]uint64
	sp      int
	count   int
}

// Snapshot copies the current state.
func (r *RAS) Snapshot() RASSnapshot {
	return RASSnapshot{entries: r.entries, sp: r.sp, count: r.count}
}

// Restore reinstates a snapshot.
func (r *RAS) Restore(s RASSnapshot) {
	r.entries = s.entries
	r.sp = s.sp
	r.count = s.count
}
