package workload

import (
	"testing"

	"dvi/internal/core"
	"dvi/internal/emu"
	"dvi/internal/rewrite"
)

// runSpec compiles and runs one benchmark under full DVI with the
// dead-read checker armed.
func runSpec(t *testing.T, s Spec, scale int, opt BuildOptions) *emu.Emulator {
	t.Helper()
	pr, img, err := CompileSpec(s, scale, opt)
	if err != nil {
		t.Fatalf("%s: %v", s.Name, err)
	}
	e := emu.New(pr, img, emu.Config{
		DVI:            core.DefaultConfig(),
		Scheme:         emu.ElimLVMStack,
		CheckDeadReads: true,
	})
	if err := e.Run(100_000_000); err != nil {
		t.Fatalf("%s: %v", s.Name, err)
	}
	if len(e.Violations) != 0 {
		t.Fatalf("%s: dead-value violations: %v", s.Name, e.Violations[:min(4, len(e.Violations))])
	}
	if len(e.Outputs) == 0 {
		t.Fatalf("%s: produced no checksum output", s.Name)
	}
	return e
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestAllBenchmarksRunCleanly(t *testing.T) {
	for _, s := range All() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			e := runSpec(t, s, 1, BuildOptions{EDVI: true})
			st := e.Stats
			t.Logf("%-9s insts=%8d calls=%5.2f%% mem=%5.2f%% s/r=%5.2f%% elim(s/r)=%d/%d kills=%d",
				s.Name, st.Original(),
				100*float64(st.Calls)/float64(st.Original()),
				100*float64(st.MemRefs)/float64(st.Original()),
				100*float64(st.SavesRestores())/float64(st.Original()),
				st.SavesElim, st.RestoresElim, st.Kills)
			if st.Original() < 50_000 {
				t.Errorf("%s: only %d instructions at scale 1; too small", s.Name, st.Original())
			}
		})
	}
}

func TestEDVIDoesNotChangeResults(t *testing.T) {
	for _, s := range All() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			base := runSpec(t, s, 1, BuildOptions{})
			edvi := runSpec(t, s, 1, BuildOptions{EDVI: true})
			if base.Checksum != edvi.Checksum {
				t.Errorf("%s: checksum differs between baseline and E-DVI builds", s.Name)
			}
			if base.Stats.Kills != 0 {
				t.Errorf("%s: baseline contains kills", s.Name)
			}
			atDeath := runSpec(t, s, 1, BuildOptions{EDVI: true, Policy: rewrite.KillsAtDeath})
			if atDeath.Checksum != base.Checksum {
				t.Errorf("%s: at-death build changed results", s.Name)
			}
		})
	}
}

func TestDeterministicChecksums(t *testing.T) {
	for _, s := range All() {
		a := runSpec(t, s, 1, BuildOptions{EDVI: true})
		b := runSpec(t, s, 1, BuildOptions{EDVI: true})
		if a.Checksum != b.Checksum {
			t.Errorf("%s: nondeterministic checksum", s.Name)
		}
	}
}

func TestScaleGrowsWork(t *testing.T) {
	s, _ := ByName("ijpeg")
	small := runSpec(t, s, 1, BuildOptions{})
	big := runSpec(t, s, 3, BuildOptions{})
	if big.Stats.Original() < 2*small.Stats.Original() {
		t.Errorf("scale 3 ran %d insts vs %d at scale 1", big.Stats.Original(), small.Stats.Original())
	}
}

func TestSuiteShape(t *testing.T) {
	// The structural properties the paper's results rest on, as loose
	// bounds: compress has the least save/restore activity; perl the
	// most; interpreter/compiler workloads are call-heavy.
	type profile struct {
		srFrac   float64 // saves+restores / original insts
		callFrac float64
		elimFrac float64 // eliminated / total saves+restores
	}
	prof := map[string]profile{}
	for _, s := range All() {
		e := runSpec(t, s, 1, BuildOptions{EDVI: true})
		st := e.Stats
		p := profile{
			srFrac:   float64(st.SavesRestores()) / float64(st.Original()),
			callFrac: float64(st.Calls) / float64(st.Original()),
		}
		if sr := st.SavesRestores(); sr > 0 {
			p.elimFrac = float64(st.SavesElim+st.RestoresElim) / float64(sr)
		}
		prof[s.Name] = p
	}
	for name, p := range prof {
		if name == "compress" {
			continue
		}
		if prof["compress"].srFrac >= p.srFrac {
			t.Errorf("compress s/r fraction %.4f >= %s %.4f; compress must be lowest",
				prof["compress"].srFrac, name, p.srFrac)
		}
	}
	// Paper Figure 9's headline ordering: perl eliminates the largest
	// fraction of its saves and restores, go the smallest.
	for name, p := range prof {
		if name == "compress" || name == "perl" {
			continue
		}
		if p.elimFrac > prof["perl"].elimFrac {
			t.Errorf("%s eliminates %.2f > perl %.2f; perl should lead", name, p.elimFrac, prof["perl"].elimFrac)
		}
	}
	for name, p := range prof {
		if name == "compress" || name == "go" {
			continue
		}
		if p.elimFrac < prof["go"].elimFrac {
			t.Errorf("%s eliminates %.2f < go %.2f; go should trail", name, p.elimFrac, prof["go"].elimFrac)
		}
	}
	for _, name := range []string{"li", "perl", "gcc", "vortex"} {
		if prof[name].callFrac < 0.01 {
			t.Errorf("%s call fraction %.4f; expected call-heavy", name, prof[name].callFrac)
		}
	}
}

func TestByNameAndNames(t *testing.T) {
	if _, ok := ByName("perl"); !ok {
		t.Error("perl missing")
	}
	if _, ok := ByName("nope"); ok {
		t.Error("unknown benchmark found")
	}
	if len(Names()) != 7 {
		t.Errorf("suite size = %d, want 7", len(Names()))
	}
	if len(SaveRestoreActive()) != 6 {
		t.Errorf("save/restore-active set = %d, want 6", len(SaveRestoreActive()))
	}
	for _, s := range SaveRestoreActive() {
		if s.Name == "compress" {
			t.Error("compress in the save/restore-active set")
		}
	}
	if got := sortedNames(); len(got) != 7 {
		t.Errorf("sortedNames = %v", got)
	}
}
