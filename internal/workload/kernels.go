package workload

import (
	"dvi/internal/ir"
	"dvi/internal/prog"
)

// specCompress models compress95: an LZW-style compressor. One large loop
// body with hash-table probing and almost no procedure calls — the paper
// excludes compress from the save/restore studies because it has little
// save/restore activity; that property emerges here from its structure.
func specCompress() Spec {
	return Spec{
		Name:     "compress",
		Describe: "LZW-style compressor; tight loop, hash probes, few calls",
		Build:    buildCompress,
	}
}

const (
	czInputLen = 4096
	czHashSize = 4096
)

func buildCompress(scale int) *ir.Module {
	m := ir.NewModule()
	addRand(m)
	m.AddData(prog.DataSym{Name: "cz_input", Size: czInputLen})
	m.AddData(prog.DataSym{Name: "cz_keys", Size: czHashSize * 8})
	m.AddData(prog.DataSym{Name: "cz_codes", Size: czHashSize * 8})
	m.AddData(prog.DataSym{Name: "cz_state", Size: 32}) // next code, checksum, emit count

	// fill_input(): pseudo-random bytes with enough repetition for the
	// dictionary to be useful (values folded to 16 symbols).
	{
		f := m.Func("cz_fill", 0)
		b := f.Block("entry")
		n := b.Const(czInputLen)
		done := loopN(f, b, "fill", n, func(b *ir.Block, i ir.Value) *ir.Block {
			r := b.Call("rand")
			sym := b.AndI(b.ShrI(r, 17), 15)
			base := b.AddrOf("cz_input")
			addr := b.Add(base, i)
			b.StoreB(addr, 0, sym)
			return b
		})
		done.Ret(ir.NoValue)
	}

	// cz_reset(): clear the dictionary (rare call from the main loop).
	{
		f := m.Func("cz_reset", 0)
		b := f.Block("entry")
		n := b.Const(czHashSize)
		done := loopN(f, b, "clr", n, func(b *ir.Block, i ir.Value) *ir.Block {
			off := b.ShlI(i, 3)
			zero := b.Const(0)
			b.Store(b.Add(b.AddrOf("cz_keys"), off), 0, zero)
			b.Store(b.Add(b.AddrOf("cz_codes"), off), 0, zero)
			return b
		})
		st := done.AddrOf("cz_state")
		done.Store(st, 0, done.Const(256)) // next code
		done.Ret(ir.NoValue)
	}

	// cz_compress(): the LZW loop, inline probing, rare emit helper.
	{
		f := m.Func("cz_compress", 0)
		entry := f.Block("entry")
		entry.CallVoid("cz_reset")
		prefix := f.Var()
		in0 := entry.LoadB(entry.AddrOf("cz_input"), 0)
		entry.Set(prefix, in0)

		n := entry.Const(czInputLen)
		done := loopN(f, entry, "main", n, func(b *ir.Block, i ir.Value) *ir.Block {
			ch := b.LoadB(b.Add(b.AddrOf("cz_input"), i), 0)
			key := b.Or(b.ShlI(prefix, 8), ch)
			key = b.AddI(key, 1) // keep zero as "empty"
			h := f.Var()
			hv := b.AndI(b.MulI(key, 40503), czHashSize-1)
			b.Set(h, hv)
			b.Jmp("probe")

			probe := f.Block("probe")
			off := probe.ShlI(h, 3)
			k := probe.Load(probe.Add(probe.AddrOf("cz_keys"), off), 0)
			probe.Br(ir.EQ, k, key, "hit", "checkempty")

			checkempty := f.Block("checkempty")
			zero := checkempty.Const(0)
			checkempty.Br(ir.EQ, k, zero, "insert", "collide")

			collide := f.Block("collide")
			collide.Set(h, collide.AndI(collide.AddI(h, 1), czHashSize-1))
			collide.Jmp("probe")

			hit := f.Block("hit")
			off2 := hit.ShlI(h, 3)
			code := hit.Load(hit.Add(hit.AddrOf("cz_codes"), off2), 0)
			hit.Set(prefix, code)
			hit.Jmp("cont")

			insert := f.Block("insert")
			st := insert.AddrOf("cz_state")
			next := insert.Load(st, 0)
			off3 := insert.ShlI(h, 3)
			insert.Store(insert.Add(insert.AddrOf("cz_keys"), off3), 0, key)
			insert.Store(insert.Add(insert.AddrOf("cz_codes"), off3), 0, next)
			insert.Store(st, 0, insert.AddI(next, 1))
			// emit(prefix): checksum fold, inline.
			sum := insert.Load(st, 8)
			sum = insert.Add(insert.MulI(sum, 31), prefix)
			insert.Store(st, 8, sum)
			cnt := insert.Load(st, 16)
			insert.Store(st, 16, insert.AddI(cnt, 1))
			insert.Set(prefix, ch)
			// Reset the table when it fills (rare call).
			limit := insert.Const(czHashSize - 512)
			insert.Br(ir.GE, next, limit, "reset", "cont")

			reset := f.Block("reset")
			reset.CallVoid("cz_reset")
			reset.Jmp("cont")

			return f.Block("cont") // loopN's increment lands here
		})
		st := done.AddrOf("cz_state")
		done.Ret(done.Load(st, 8))
	}

	// main: fill once, compress `scale` times.
	{
		f := m.Func("main", 0)
		b := f.Block("entry")
		b.CallVoid("cz_fill")
		sum := f.Var()
		b.SetI(sum, 0)
		n := b.Const(int64(scale))
		done := loopN(f, b, "runs", n, func(b *ir.Block, i ir.Value) *ir.Block {
			v := b.Call("cz_compress")
			b.Set(sum, b.Add(b.Xor(sum, v), i))
			return b
		})
		done.Out(0, sum)
		done.Ret(ir.NoValue)
	}
	return m
}

// specGo models go: branchy board evaluation with accumulators held live
// across calls — the structure that makes its save/restore elimination the
// lowest of the suite.
func specGo() Spec {
	return Spec{
		Name:     "go",
		Describe: "board evaluation; branchy, accumulators live across calls",
		Build:    buildGo,
	}
}

const goN = 19 // board side

func buildGo(scale int) *ir.Module {
	m := ir.NewModule()
	addRand(m)
	m.AddData(prog.DataSym{Name: "go_board", Size: (goN + 2) * (goN + 2)}) // padded

	// cell(pos) -> board value with a bounds check (the dominant leaf).
	{
		f := m.Func("go_cell", 1)
		b := f.Block("entry")
		pos := f.Param(0)
		lim := b.Const((goN + 2) * (goN + 2))
		b.Br(ir.GEU, pos, lim, "oob", "in")
		oob := f.Block("oob")
		oob.Ret(oob.Const(3)) // border sentinel
		in := f.Block("in")
		in.Ret(in.LoadB(in.Add(in.AddrOf("go_board"), pos), 0))
	}

	// neighbors(pos, color) -> count of 4-neighbors matching color.
	// Holds pos, color, and the count live across its go_cell calls, so it
	// saves several callee-saved registers.
	{
		f := m.Func("go_neighbors", 2)
		b := f.Block("entry")
		pos, color := f.Param(0), f.Param(1)
		cnt := f.Var()
		b.SetI(cnt, 0)
		cur := b
		// Vertical neighbors go through the bounds-checked reader (they can
		// fall off the padded board); horizontal reads are inline.
		for di, delta := range []int64{-(goN + 2), goN + 2} {
			v := cur.Call("go_cell", cur.AddI(pos, delta))
			thenB := "n_inc" + string(rune('0'+di))
			elseB := "n_next" + string(rune('0'+di))
			cur.Br(ir.EQ, v, color, thenB, elseB)
			inc := f.Block(thenB)
			inc.Set(cnt, inc.AddI(cnt, 1))
			inc.Jmp(elseB)
			cur = f.Block(elseB)
		}
		for di, delta := range []int64{-1, 1} {
			base := cur.AddrOf("go_board")
			v := cur.LoadB(cur.Add(base, cur.AddI(pos, delta)), 0)
			thenB := "h_inc" + string(rune('0'+di))
			elseB := "h_next" + string(rune('0'+di))
			cur.Br(ir.EQ, v, color, thenB, elseB)
			inc := f.Block(thenB)
			inc.Set(cnt, inc.AddI(cnt, 1))
			inc.Jmp(elseB)
			cur = f.Block(elseB)
		}
		cur.Ret(cnt)
	}

	// liberties(pos) -> count of empty 4-neighbors.
	{
		f := m.Func("go_liberties", 1)
		b := f.Block("entry")
		zero := b.Const(0)
		b.Ret(b.Call("go_neighbors", f.Param(0), zero))
	}

	// score_point(pos): combines two calls; intermediate live across the
	// second call (stays in a callee-saved register, live at the call).
	{
		f := m.Func("go_score", 1)
		b := f.Block("entry")
		pos := f.Param(0)
		base := b.AddrOf("go_board")
		v := b.LoadB(b.Add(base, pos), 0)
		zero := b.Const(0)
		b.Br(ir.EQ, v, zero, "empty", "stone")
		empty := f.Block("empty")
		empty.Ret(empty.Const(0))
		stone := f.Block("stone")
		same := stone.Call("go_neighbors", pos, v) // v live across
		libs := stone.Call("go_liberties", pos)    // same live across
		score := stone.Add(stone.ShlI(same, 2), libs)
		two := stone.Const(2)
		stone.Br(ir.LT, libs, two, "atari", "ok")
		atari := f.Block("atari")
		atari.Ret(atari.SubI(score, 16))
		ok := f.Block("ok")
		ok.Ret(score)
	}

	// evaluate(): sum score over the board; accumulator live across every
	// call (the elimination-hostile pattern).
	{
		f := m.Func("go_evaluate", 0)
		b := f.Block("entry")
		acc := f.Var()
		b.SetI(acc, 0)
		n := b.Const(goN * goN)
		done := loopN(f, b, "ev", n, func(b *ir.Block, i ir.Value) *ir.Block {
			row := b.DivI(i, goN)
			col := b.RemI(i, goN)
			pos := b.Add(b.MulI(b.AddI(row, 1), goN+2), b.AddI(col, 1))
			s := b.Call("go_score", pos)
			b.Set(acc, b.Add(acc, s))
			return b
		})
		done.Ret(acc)
	}

	// play(pos, color): place a stone if empty, return local delta.
	{
		f := m.Func("go_play", 2)
		b := f.Block("entry")
		pos, color := f.Param(0), f.Param(1)
		base := b.AddrOf("go_board")
		cell := b.Add(base, pos)
		v := b.LoadB(cell, 0)
		zero := b.Const(0)
		b.Br(ir.NE, v, zero, "occupied", "place")
		occ := f.Block("occupied")
		occ.Ret(occ.Const(0))
		place := f.Block("place")
		place.StoreB(cell, 0, color)
		place.Ret(place.Call("go_score", pos))
	}

	// main: random moves with periodic whole-board evaluation.
	{
		f := m.Func("main", 0)
		b := f.Block("entry")
		sum := f.Var()
		b.SetI(sum, 0)
		n := b.Const(int64(220 * scale))
		done := loopN(f, b, "game", n, func(b *ir.Block, i ir.Value) *ir.Block {
			r := b.Call("rand")
			row := b.AddI(b.RemI(b.AndI(r, 1023), goN), 1)
			col := b.AddI(b.RemI(b.AndI(b.ShrI(r, 10), 1023), goN), 1)
			pos := b.Add(b.MulI(row, goN+2), col)
			color := b.AddI(b.AndI(b.ShrI(r, 20), 1), 1)
			d := b.Call("go_play", pos, color)
			b.Set(sum, b.Add(sum, d))
			// Every 32 moves, evaluate the whole board.
			masked := b.AndI(i, 31)
			zero := b.Const(0)
			b.Br(ir.EQ, masked, zero, "eval", "skip")
			ev := f.Block("eval")
			e := ev.Call("go_evaluate")
			ev.Set(sum, ev.Xor(sum, e))
			ev.Jmp("skip")
			return f.Block("skip")
		})
		done.Out(0, sum)
		done.Ret(ir.NoValue)
	}
	return m
}

// specIjpeg models ijpeg: nested loops over 8x8 blocks with per-block
// transform helpers — array math heavy, moderate call frequency.
func specIjpeg() Spec {
	return Spec{
		Name:     "ijpeg",
		Describe: "8x8 block transform kernels over an image",
		Build:    buildIjpeg,
	}
}

const ijSide = 64 // image side in pixels

func buildIjpeg(scale int) *ir.Module {
	m := ir.NewModule()
	addRand(m)
	m.AddData(prog.DataSym{Name: "ij_image", Size: ijSide * ijSide})
	m.AddData(prog.DataSym{Name: "ij_block", Size: 64 * 8})
	m.AddData(prog.DataSym{Name: "ij_quant", Size: 64 * 8})

	// init(): fill image with pseudo-random pixels and the quant table.
	{
		f := m.Func("ij_init", 0)
		b := f.Block("entry")
		n := b.Const(ijSide * ijSide)
		done := loopN(f, b, "pix", n, func(b *ir.Block, i ir.Value) *ir.Block {
			r := b.Call("rand")
			b.StoreB(b.Add(b.AddrOf("ij_image"), i), 0, b.AndI(r, 255))
			return b
		})
		n2 := done.Const(64)
		done2 := loopN(f, done, "qt", n2, func(b *ir.Block, i ir.Value) *ir.Block {
			q := b.AddI(b.ShrI(b.MulI(i, 3), 1), 4)
			b.Store(b.Add(b.AddrOf("ij_quant"), b.ShlI(i, 3)), 0, q)
			return b
		})
		done2.Ret(ir.NoValue)
	}

	// load_block(bx, by): copy one 8x8 tile into the work buffer.
	{
		f := m.Func("ij_load", 2)
		b := f.Block("entry")
		bx, by := f.Param(0), f.Param(1)
		x0 := b.ShlI(bx, 3)
		y0 := b.ShlI(by, 3)
		n := b.Const(64)
		done := loopN(f, b, "ld", n, func(b *ir.Block, i ir.Value) *ir.Block {
			r := b.ShrI(i, 3)
			c := b.AndI(i, 7)
			src := b.Add(b.MulI(b.Add(y0, r), ijSide), b.Add(x0, c))
			px := b.LoadB(b.Add(b.AddrOf("ij_image"), src), 0)
			b.Store(b.Add(b.AddrOf("ij_block"), b.ShlI(i, 3)), 0, b.SubI(px, 128))
			return b
		})
		done.Ret(ir.NoValue)
	}

	// dct_pass(stride, step): in-place butterfly pass over 8 lanes —
	// called twice (rows then columns).
	{
		f := m.Func("ij_dct", 2)
		b := f.Block("entry")
		stride, step := f.Param(0), f.Param(1)
		n := b.Const(8)
		done := loopN(f, b, "lane", n, func(b *ir.Block, lane ir.Value) *ir.Block {
			base := b.Add(b.AddrOf("ij_block"), b.ShlI(b.Mul(lane, stride), 3))
			// Butterfly pairs (i, 7-i).
			for i := int64(0); i < 4; i++ {
				lo := b.ShlI(b.MulI(step, i), 3)
				hiIdx := b.MulI(step, 7-i)
				hi := b.ShlI(hiIdx, 3)
				a := b.Load(b.Add(base, lo), 0)
				c := b.Load(b.Add(base, hi), 0)
				s := b.Add(a, c)
				d := b.Sub(a, c)
				// Scaled rotation-ish update.
				s2 := b.Add(s, b.SraI(d, 2))
				d2 := b.Sub(d, b.SraI(s, 2))
				b.Store(b.Add(base, lo), 0, s2)
				b.Store(b.Add(base, hi), 0, d2)
			}
			return b
		})
		done.Ret(ir.NoValue)
	}

	// quantize(): divide by the table, return count of nonzero coeffs
	// plus a folded checksum.
	{
		f := m.Func("ij_quantize", 0)
		b := f.Block("entry")
		acc := f.Var()
		b.SetI(acc, 0)
		n := b.Const(64)
		done := loopN(f, b, "q", n, func(b *ir.Block, i ir.Value) *ir.Block {
			off := b.ShlI(i, 3)
			v := b.Load(b.Add(b.AddrOf("ij_block"), off), 0)
			q := b.Load(b.Add(b.AddrOf("ij_quant"), off), 0)
			t := b.Div(v, q)
			b.Store(b.Add(b.AddrOf("ij_block"), off), 0, t)
			b.Set(acc, b.Add(b.MulI(acc, 7), t))
			return b
		})
		done.Ret(acc)
	}

	// mean(): average of the loaded block (analysis pass).
	{
		f := m.Func("ij_mean", 0)
		b := f.Block("entry")
		acc := f.Var()
		b.SetI(acc, 0)
		n := b.Const(64)
		done := loopN(f, b, "mu", n, func(b *ir.Block, i ir.Value) *ir.Block {
			v := b.Load(b.Add(b.AddrOf("ij_block"), b.ShlI(i, 3)), 0)
			b.Set(acc, b.Add(acc, v))
			return b
		})
		done.Ret(done.SraI(acc, 6))
	}

	// dct2d(): both passes. The pass parameters live across the first
	// call, so this function saves callee-saved registers — the saves a
	// caller's dead values can eliminate.
	{
		f := m.Func("ij_dct2d", 0)
		b := f.Block("entry")
		one := b.Const(1)
		eight := b.Const(8)
		b.CallVoid("ij_dct", eight, one) // rows; one and eight live across
		b.CallVoid("ij_dct", one, eight) // columns
		b.Ret(ir.NoValue)
	}

	// range(): max-min spread of the loaded block (second analysis pass).
	{
		f := m.Func("ij_range", 0)
		b := f.Block("entry")
		lo := f.Var()
		hi := f.Var()
		b.SetI(lo, 1<<20)
		b.SetI(hi, -(1 << 20))
		n := b.Const(64)
		done := loopN(f, b, "rg", n, func(b *ir.Block, i ir.Value) *ir.Block {
			v := b.Load(b.Add(b.AddrOf("ij_block"), b.ShlI(i, 3)), 0)
			b.Br(ir.LT, v, lo, "newlo", "cklohi")
			nl := f.Block("newlo")
			nl.Set(lo, v)
			nl.Jmp("cklohi")
			ck := f.Block("cklohi")
			ck.Br(ir.LT, hi, v, "newhi", "rgnext")
			nh := f.Block("newhi")
			nh.Set(hi, v)
			nh.Jmp("rgnext")
			return f.Block("rgnext")
		})
		done.Ret(done.Sub(hi, lo))
	}

	// zeros(): count of zero coefficients (bit-budget estimation).
	{
		f := m.Func("ij_zeros", 0)
		b := f.Block("entry")
		cnt := f.Var()
		b.SetI(cnt, 0)
		n := b.Const(64)
		done := loopN(f, b, "zc", n, func(b *ir.Block, i ir.Value) *ir.Block {
			v := b.Load(b.Add(b.AddrOf("ij_block"), b.ShlI(i, 3)), 0)
			zero := b.Const(0)
			b.Br(ir.NE, v, zero, "zcnext", "zhit")
			zh := f.Block("zhit")
			zh.Set(cnt, zh.AddI(cnt, 1))
			zh.Jmp("zcnext")
			return f.Block("zcnext")
		})
		done.Ret(cnt)
	}

	// process(bx, by): the per-block pipeline: load, analyze (the mean,
	// range and zero-count are dead once the bias is derived — their
	// registers are killed before the transform call, eliminating dct2d's
	// saves), transform, quantize.
	{
		f := m.Func("ij_process", 2)
		b := f.Block("entry")
		b.CallVoid("ij_load", f.Param(0), f.Param(1))
		mu := b.Call("ij_mean")
		rng := b.Call("ij_range") // mu live across
		zc := b.Call("ij_zeros")  // mu, rng live across
		bias := b.AddI(b.SraI(b.Add(b.Add(mu, rng), zc), 4), 1)
		b.CallVoid("ij_dct2d") // mu, rng, zc dead here: killed
		q := b.Call("ij_quantize")
		b.Ret(b.Add(q, bias))
	}

	// main: sweep the block grid `scale` times.
	{
		f := m.Func("main", 0)
		b := f.Block("entry")
		b.CallVoid("ij_init")
		sum := f.Var()
		b.SetI(sum, 0)
		n := b.Const(int64(scale) * (ijSide / 8) * (ijSide / 8))
		done := loopN(f, b, "blk", n, func(b *ir.Block, i ir.Value) *ir.Block {
			bx := b.RemI(i, ijSide/8)
			by := b.RemI(b.DivI(i, ijSide/8), ijSide/8)
			v := b.Call("ij_process", bx, by)
			b.Set(sum, b.Add(b.Xor(sum, v), i))
			return b
		})
		done.Out(0, sum)
		done.Ret(ir.NoValue)
	}
	return m
}
