package workload

import (
	"testing"

	"dvi/internal/prog"
	"dvi/internal/rewrite"
)

// TestAsmRoundTripAllWorkloads is the wire-format guarantee the annotation
// service depends on: for every benchmark, in both binary flavours,
// rendering the symbolic program to assembly text, parsing it back, and
// re-rendering is a fixed point — and the reparsed program links to a
// byte-identical image.
func TestAsmRoundTripAllWorkloads(t *testing.T) {
	for _, s := range All() {
		for _, edvi := range []bool{false, true} {
			opt := BuildOptions{EDVI: edvi}
			name := s.Key(1, opt).String()
			t.Run(name, func(t *testing.T) {
				pr, img, err := CompileSpec(s, 1, opt)
				if err != nil {
					t.Fatal(err)
				}
				text1 := prog.FormatAsm(pr)
				pr2, err := prog.ParseAsm(text1)
				if err != nil {
					t.Fatalf("reparse: %v", err)
				}
				text2 := prog.FormatAsm(pr2)
				if text1 != text2 {
					t.Fatal("assembly text is not a fixed point under parse+format")
				}
				img2, err := pr2.Link()
				if err != nil {
					t.Fatalf("relink: %v", err)
				}
				if len(img.Code) != len(img2.Code) {
					t.Fatalf("code size differs: %d vs %d words", len(img.Code), len(img2.Code))
				}
				for i := range img.Code {
					if img.Code[i] != img2.Code[i] {
						t.Fatalf("word %d differs: %s vs %s", i, img.Insts[i], img2.Insts[i])
					}
				}
			})
		}
	}
}

// TestAsmRewriteAfterParse checks the annotation pipeline end to end at the
// library level: a plain binary rendered to text, parsed, and run through
// the DVI inserter picks up the same kill count as rewriting the original.
func TestAsmRewriteAfterParse(t *testing.T) {
	s, _ := ByName("li")
	pr, _, err := CompileSpec(s, 1, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	pr2, err := prog.ParseAsm(prog.FormatAsm(pr))
	if err != nil {
		t.Fatal(err)
	}
	n1, err := rewrite.InsertKills(pr, rewrite.Options{})
	if err != nil {
		t.Fatal(err)
	}
	n2, err := rewrite.InsertKills(pr2, rewrite.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if n1 == 0 || n1 != n2 {
		t.Fatalf("kill counts differ after round trip: %d vs %d", n1, n2)
	}
	if _, err := pr2.Link(); err != nil {
		t.Fatalf("link annotated reparse: %v", err)
	}
}
