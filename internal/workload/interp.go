package workload

import (
	"dvi/internal/ir"
	"dvi/internal/prog"
)

// specLi models li (xlisp): a recursive expression-tree evaluator over an
// arena of cons cells. Deep recursion with two recursive calls per interior
// node is what stresses the LVM-Stack depth (paper §5.2: li is the one
// benchmark where a 16-entry stack captures only 94% of the benefit).
func specLi() Spec {
	return Spec{
		Name:     "li",
		Describe: "lisp-style recursive tree evaluator; deep recursion",
		Build:    buildLi,
	}
}

const (
	// liDepth full binary trees have 2^(liDepth+1)-1 cells each; the arena
	// must hold liTrees of them.
	liDepth = 10
	liTrees = 12
	liCells = liTrees * (1 << (liDepth + 1))
)

// Node layout in the arena (24 bytes per cell): tag, left/value, right.
// Tags: 0 literal, 1 add, 2 sub, 3 mul-low, 4 xor.
func buildLi(scale int) *ir.Module {
	m := ir.NewModule()
	addRand(m)
	m.AddData(prog.DataSym{Name: "li_arena", Size: liCells * 24})
	m.AddData(prog.DataSym{Name: "li_state", Size: 16}) // bump pointer, roots base
	m.AddData(prog.DataSym{Name: "li_roots", Size: liTrees * 8})

	// li_cons(tag, l, r) -> cell index (bump allocation).
	{
		f := m.Func("li_cons", 3)
		b := f.Block("entry")
		st := b.AddrOf("li_state")
		idx := b.Load(st, 0)
		b.Store(st, 0, b.AddI(idx, 1))
		cell := b.Add(b.AddrOf("li_arena"), b.MulI(idx, 24))
		b.Store(cell, 0, f.Param(0))
		b.Store(cell, 8, f.Param(1))
		b.Store(cell, 16, f.Param(2))
		b.Ret(idx)
	}

	// li_build(depth) -> node: random tree of the given depth.
	{
		f := m.Func("li_build", 1)
		b := f.Block("entry")
		depth := f.Param(0)
		zero := b.Const(0)
		b.Br(ir.EQ, depth, zero, "leaf", "node")

		leaf := f.Block("leaf")
		r := leaf.Call("rand")
		val := leaf.AndI(leaf.ShrI(r, 5), 1023)
		z := leaf.Const(0)
		leaf.Ret(leaf.Call("li_cons", z, val, z))

		node := f.Block("node")
		r2 := node.Call("rand")
		tag := node.AddI(node.AndI(r2, 3), 1)
		d1 := node.AddI(depth, -1)
		l := node.Call("li_build", d1)
		// depth and l live across the second recursive call.
		d2 := node.AddI(depth, -1)
		rr := node.Call("li_build", d2)
		node.Ret(node.Call("li_cons", tag, l, rr))
	}

	// li_apply(tag, l, r): the small leaf the evaluator dispatches to.
	{
		f := m.Func("li_apply", 3)
		b := f.Block("entry")
		tag, l, r := f.Param(0), f.Param(1), f.Param(2)
		one := b.Const(1)
		two := b.Const(2)
		three := b.Const(3)
		b.Br(ir.EQ, tag, one, "add", "c2")
		f.Block("add").Ret(f.Block("add").Add(l, r))
		c2 := f.Block("c2")
		c2.Br(ir.EQ, tag, two, "sub", "c3")
		f.Block("sub").Ret(f.Block("sub").Sub(l, r))
		c3 := f.Block("c3")
		c3.Br(ir.EQ, tag, three, "mul", "xor")
		mul := f.Block("mul")
		mul.Ret(mul.AndI(mul.Mul(l, r), 0xFFFF))
		x := f.Block("xor")
		x.Ret(x.Xor(l, r))
	}

	// li_eval(node) -> value: the recursive evaluator.
	{
		f := m.Func("li_eval", 1)
		b := f.Block("entry")
		node := f.Param(0)
		cell := b.Add(b.AddrOf("li_arena"), b.MulI(node, 24))
		tag := b.Load(cell, 0)
		zero := b.Const(0)
		b.Br(ir.EQ, tag, zero, "lit", "interior")

		lit := f.Block("lit")
		lcell := lit.Add(lit.AddrOf("li_arena"), lit.MulI(node, 24))
		lit.Ret(lit.Load(lcell, 8))

		in := f.Block("interior")
		icell := in.Add(in.AddrOf("li_arena"), in.MulI(node, 24))
		lnode := in.Load(icell, 8)
		rnode := in.Load(icell, 16)
		itag := in.Load(icell, 0)
		lv := in.Call("li_eval", lnode)
		// rnode and itag live across the first call; lv across the second.
		rv := in.Call("li_eval", rnode)
		in.Ret(in.Call("li_apply", itag, lv, rv))
	}

	// main: build the forest once, evaluate it `scale` times.
	{
		f := m.Func("main", 0)
		b := f.Block("entry")
		nt := b.Const(liTrees)
		done := loopN(f, b, "bld", nt, func(b *ir.Block, i ir.Value) *ir.Block {
			d := b.Const(liDepth)
			root := b.Call("li_build", d)
			b.Store(b.Add(b.AddrOf("li_roots"), b.ShlI(i, 3)), 0, root)
			return b
		})
		sum := f.Var()
		done.SetI(sum, 0)
		n := done.Const(int64(scale) * liTrees)
		done2 := loopN(f, done, "ev", n, func(b *ir.Block, i ir.Value) *ir.Block {
			idx := b.RemI(i, liTrees)
			root := b.Load(b.Add(b.AddrOf("li_roots"), b.ShlI(idx, 3)), 0)
			v := b.Call("li_eval", root)
			b.Set(sum, b.Add(b.MulI(sum, 3), v))
			return b
		})
		done2.Out(0, sum)
		done2.Ret(ir.NoValue)
	}
	return m
}

// specVortex models vortex: an object-oriented database — records with
// classes, method dispatch through function-pointer tables, hash index
// lookups. Call-heavy with short methods.
func specVortex() Spec {
	return Spec{
		Name:     "vortex",
		Describe: "OO database; vtable dispatch, index lookups, short methods",
		Build:    buildVortex,
	}
}

const (
	vxRecords = 256
	vxRecSize = 32 // 4 fields of 8 bytes: key, class, balance, touches
	vxIndex   = 512
)

func buildVortex(scale int) *ir.Module {
	m := ir.NewModule()
	addRand(m)
	m.AddData(prog.DataSym{Name: "vx_db", Size: vxRecords * vxRecSize})
	m.AddData(prog.DataSym{Name: "vx_index", Size: vxIndex * 8}) // key -> rec+1
	m.AddData(prog.DataSym{Name: "vx_vtab", Size: 3 * 2 * 8})    // 3 classes x 2 methods
	m.AddData(prog.DataSym{Name: "vx_stats", Size: 16})

	// vx_hash(key) -> index slot.
	{
		f := m.Func("vx_hash", 1)
		b := f.Block("entry")
		k := f.Param(0)
		h := b.MulI(k, 2654435761)
		h = b.Xor(h, b.ShrI(h, 9))
		b.Ret(b.AndI(h, vxIndex-1))
	}
	// vx_log(delta): fold a transaction delta into running statistics.
	{
		f := m.Func("vx_log", 1)
		b := f.Block("entry")
		st := b.AddrOf("vx_stats")
		acc := b.Load(st, 0)
		b.Store(st, 0, b.Add(b.MulI(acc, 3), f.Param(0)))
		cnt := b.Load(st, 8)
		b.Store(st, 8, b.AddI(cnt, 1))
		b.Ret(ir.NoValue)
	}

	// Methods: validate(rec) -> 0/1 and update(rec) -> delta, one pair per
	// class with slightly different logic. Updates log their delta, which
	// keeps record state live across a call (callee-saved registers).
	method := func(name string, mulv int64, addv int64) {
		f := m.Func(name, 1)
		b := f.Block("entry")
		rec := f.Param(0)
		base := b.Add(b.AddrOf("vx_db"), b.MulI(rec, vxRecSize))
		bal := b.Load(base, 16)
		t := b.Load(base, 24)
		nb := b.AddI(b.MulI(bal, mulv), addv)
		nb = b.AndI(nb, 0xFFFFF)
		delta := b.Sub(nb, bal)
		b.CallVoid("vx_log", delta)
		// base, nb, t live across the log call.
		b.Store(base, 16, nb)
		b.Store(base, 24, b.AddI(t, 1))
		b.Ret(delta)
	}
	method("vx_upd0", 3, 7)
	method("vx_upd1", 5, 11)
	method("vx_upd2", 7, 13)

	check := func(name string, threshold int64) {
		f := m.Func(name, 1)
		b := f.Block("entry")
		rec := f.Param(0)
		base := b.Add(b.AddrOf("vx_db"), b.MulI(rec, vxRecSize))
		bal := b.Load(base, 16)
		lim := b.Const(threshold)
		b.Br(ir.LT, bal, lim, "low", "high")
		f.Block("low").Ret(f.Block("low").Const(0))
		f.Block("high").Ret(f.Block("high").Const(1))
	}
	check("vx_chk0", 1000)
	check("vx_chk1", 5000)
	check("vx_chk2", 20000)

	// vx_init(): populate records and the hash index, build vtables.
	{
		f := m.Func("vx_init", 0)
		b := f.Block("entry")
		n := b.Const(vxRecords)
		done := loopN(f, b, "rec", n, func(b *ir.Block, i ir.Value) *ir.Block {
			r := b.Call("rand")
			key := b.AndI(r, 0xFFFF)
			base := b.Add(b.AddrOf("vx_db"), b.MulI(i, vxRecSize))
			b.Store(base, 0, key)
			b.Store(base, 8, b.AndI(b.ShrI(r, 16), 2))
			b.Store(base, 16, b.AndI(b.ShrI(r, 20), 4095))
			zero := b.Const(0)
			b.Store(base, 24, zero)
			// Insert into the index with linear probing.
			h := f.Var()
			b.Set(h, b.Call("vx_hash", key))
			b.Jmp("probe")
			probe := f.Block("probe")
			slot := probe.Add(probe.AddrOf("vx_index"), probe.ShlI(h, 3))
			v := probe.Load(slot, 0)
			z := probe.Const(0)
			probe.Br(ir.EQ, v, z, "put", "bump")
			bump := f.Block("bump")
			bump.Set(h, bump.AndI(bump.AddI(h, 1), vxIndex-1))
			bump.Jmp("probe")
			put := f.Block("put")
			pslot := put.Add(put.AddrOf("vx_index"), put.ShlI(h, 3))
			put.Store(pslot, 0, put.AddI(i, 1))
			return put
		})
		// vtables: [class*2] = check, [class*2+1] = update.
		vt := done.AddrOf("vx_vtab")
		done.Store(vt, 0, done.AddrOf("vx_chk0"))
		done.Store(vt, 8, done.AddrOf("vx_upd0"))
		done.Store(vt, 16, done.AddrOf("vx_chk1"))
		done.Store(vt, 24, done.AddrOf("vx_upd1"))
		done.Store(vt, 32, done.AddrOf("vx_chk2"))
		done.Store(vt, 40, done.AddrOf("vx_upd2"))
		done.Ret(ir.NoValue)
	}

	// vx_lookup(key) -> record index (or vxRecords if absent after a
	// bounded probe).
	{
		f := m.Func("vx_lookup", 1)
		b := f.Block("entry")
		key := f.Param(0)
		h := f.Var()
		tries := f.Var()
		b.Set(h, b.Call("vx_hash", key))
		b.SetI(tries, 0)
		b.Jmp("probe")
		probe := f.Block("probe")
		slot := probe.Add(probe.AddrOf("vx_index"), probe.ShlI(h, 3))
		v := probe.Load(slot, 0)
		zero := probe.Const(0)
		probe.Br(ir.EQ, v, zero, "miss", "cmp")
		cmp := f.Block("cmp")
		rec := cmp.AddI(v, -1)
		base := cmp.Add(cmp.AddrOf("vx_db"), cmp.MulI(rec, vxRecSize))
		k2 := cmp.Load(base, 0)
		cmp.Br(ir.EQ, k2, key, "hit", "next")
		next := f.Block("next")
		next.Set(h, next.AndI(next.AddI(h, 1), vxIndex-1))
		next.Set(tries, next.AddI(tries, 1))
		lim := next.Const(16)
		next.Br(ir.GE, tries, lim, "miss", "probe")
		hit := f.Block("hit")
		hslot := hit.Add(hit.AddrOf("vx_index"), hit.ShlI(h, 3))
		hit.Ret(hit.AddI(hit.Load(hslot, 0), -1))
		miss := f.Block("miss")
		miss.Ret(miss.Const(vxRecords))
	}

	// vx_txn(key): lookup, dispatch check then update via the vtable.
	{
		f := m.Func("vx_txn", 1)
		b := f.Block("entry")
		rec := b.Call("vx_lookup", f.Param(0))
		lim := b.Const(vxRecords)
		b.Br(ir.GE, rec, lim, "absent", "found")
		absent := f.Block("absent")
		absent.Ret(absent.Const(0))
		found := f.Block("found")
		base := found.Add(found.AddrOf("vx_db"), found.MulI(rec, vxRecSize))
		cls := found.Load(base, 8)
		vt := found.Add(found.AddrOf("vx_vtab"), found.ShlI(cls, 4))
		chk := found.Load(vt, 0)
		ok := found.CallPtr(chk, rec)
		zero := found.Const(0)
		found.Br(ir.EQ, ok, zero, "skip", "update")
		skip := f.Block("skip")
		skip.Ret(skip.Const(1))
		upd := f.Block("update")
		ubase := upd.Add(upd.AddrOf("vx_db"), upd.MulI(rec, vxRecSize))
		uvt := upd.Add(upd.AddrOf("vx_vtab"), upd.ShlI(upd.Load(ubase, 8), 4))
		updFn := upd.Load(uvt, 8)
		delta := upd.CallPtr(updFn, rec)
		upd.Ret(delta)
	}

	// main: transaction loop.
	{
		f := m.Func("main", 0)
		b := f.Block("entry")
		b.CallVoid("vx_init")
		sum := f.Var()
		b.SetI(sum, 0)
		n := b.Const(int64(1500 * scale))
		done := loopN(f, b, "txn", n, func(b *ir.Block, i ir.Value) *ir.Block {
			r := b.Call("rand")
			key := b.AndI(r, 0xFFFF)
			d := b.Call("vx_txn", key)
			b.Set(sum, b.Add(b.MulI(sum, 5), d))
			return b
		})
		done.Out(0, sum)
		done.Ret(ir.NoValue)
	}
	return m
}

// specPerl models perl: a bytecode interpreter with a function-pointer
// dispatch loop and short opcode handlers — the structure behind its
// table-topping save/restore elimination in the paper (74.6% of saves and
// restores, 7.2% of all instructions). The dispatch loop keeps the VM
// pointer live across the dispatch (its save in handlers executes) while
// the opcode and trace temporaries die at the dispatch call (their saves
// are eliminated) — reproducing the paper's mixed-but-high elimination.
func specPerl() Spec {
	return Spec{
		Name:     "perl",
		Describe: "bytecode interpreter; dispatch loop, short handlers",
		Build:    buildPerl,
	}
}

// Opcodes of the little stack machine.
const (
	popHalt = iota
	popPushI
	popLoad
	popStore
	popAdd
	popSub
	popMul
	popJnzBack
	popHash
	popCallSub
)

// perlBytecode assembles the benchmark's bytecode program: an outer
// countdown loop doing arithmetic and hashing, calling a subroutine every
// iteration. Instruction format: one byte opcode, one byte operand.
func perlBytecode() (main, sub []byte) {
	emit := func(buf *[]byte, op, arg byte) { *buf = append(*buf, op, arg) }

	// Subroutine: hash the top of stack a few times.
	emit(&sub, popPushI, 17)
	emit(&sub, popAdd, 0)
	emit(&sub, popHash, 0)
	emit(&sub, popStore, 3)
	emit(&sub, popLoad, 3)
	emit(&sub, popHalt, 0)

	// Main program: g0 = counter, g1 = accumulator.
	emit(&main, popPushI, 40) // loop count
	emit(&main, popStore, 0)
	loopStart := len(main)
	emit(&main, popLoad, 1)
	emit(&main, popPushI, 3)
	emit(&main, popMul, 0)
	emit(&main, popPushI, 7)
	emit(&main, popAdd, 0)
	emit(&main, popHash, 0)
	emit(&main, popCallSub, 0)
	emit(&main, popStore, 1)
	emit(&main, popLoad, 0)
	emit(&main, popPushI, 1)
	emit(&main, popSub, 0)
	emit(&main, popStore, 0)
	emit(&main, popLoad, 0)
	back := len(main) + 2 - loopStart
	emit(&main, popJnzBack, byte(back))
	emit(&main, popHalt, 0)
	return main, sub
}

func buildPerl(scale int) *ir.Module {
	m := ir.NewModule()
	mainCode, subCode := perlBytecode()
	m.AddData(prog.DataSym{Name: "pl_main", Init: mainCode})
	m.AddData(prog.DataSym{Name: "pl_sub", Init: subCode})
	m.AddData(prog.DataSym{Name: "pl_stack", Size: 64 * 8})
	m.AddData(prog.DataSym{Name: "pl_globals", Size: 16 * 8})
	m.AddData(prog.DataSym{Name: "pl_vm", Size: 40}) // sp, pc, code, halted, profile
	m.AddData(prog.DataSym{Name: "pl_handlers", Size: 16 * 8})

	// Stack helpers: the short leaf calls every handler makes.
	{
		f := m.Func("pl_push", 1)
		b := f.Block("entry")
		v := b.AddrOf("pl_vm")
		sp := b.Load(v, 0)
		b.Store(b.Add(b.AddrOf("pl_stack"), b.ShlI(sp, 3)), 0, f.Param(0))
		b.Store(v, 0, b.AddI(sp, 1))
		b.Ret(ir.NoValue)
	}
	{
		f := m.Func("pl_pop", 0)
		b := f.Block("entry")
		v := b.AddrOf("pl_vm")
		sp := b.AddI(b.Load(v, 0), -1)
		b.Store(v, 0, sp)
		b.Ret(b.Load(b.Add(b.AddrOf("pl_stack"), b.ShlI(sp, 3)), 0))
	}

	// pl_arg() -> the operand byte at pc+1.
	{
		f := m.Func("pl_arg", 0)
		b := f.Block("entry")
		v := b.AddrOf("pl_vm")
		pc := b.Load(v, 8)
		code := b.Load(v, 16)
		b.Ret(b.LoadB(b.Add(code, pc), 1))
	}

	// pl_count(mix): opcode profiling (perl's runtime statistics).
	{
		f := m.Func("pl_count", 1)
		b := f.Block("entry")
		v := b.AddrOf("pl_vm")
		old := b.Load(v, 32)
		b.Store(v, 32, b.Add(b.MulI(old, 7), f.Param(0)))
		b.Ret(ir.NoValue)
	}

	// Handlers. Each begins by reading its operand byte (live across the
	// handler's helper calls) and ends by logging — giving each handler
	// several values with staggered lifetimes in callee-saved registers.
	handler := func(name string, gen func(f *ir.Func, b *ir.Block, t ir.Value)) {
		f := m.Func(name, 0)
		b := f.Block("entry")
		t := b.Call("pl_arg")
		gen(f, b, t)
	}
	handler("pl_op_halt", func(f *ir.Func, b *ir.Block, t ir.Value) {
		v := b.AddrOf("pl_vm")
		one := b.Const(1)
		b.Store(v, 24, one)
		b.Ret(ir.NoValue)
	})
	handler("pl_op_pushi", func(f *ir.Func, b *ir.Block, t ir.Value) {
		b.CallVoid("pl_push", t)
		b.CallVoid("pl_count", t) // t live across the push
		b.Ret(ir.NoValue)
	})
	handler("pl_op_load", func(f *ir.Func, b *ir.Block, t ir.Value) {
		val := b.Load(b.Add(b.AddrOf("pl_globals"), b.ShlI(t, 3)), 0)
		b.CallVoid("pl_push", val)
		b.CallVoid("pl_count", val) // val live across the push
		b.Ret(ir.NoValue)
	})
	handler("pl_op_store", func(f *ir.Func, b *ir.Block, t ir.Value) {
		val := b.Call("pl_pop") // t live across the pop
		b.Store(b.Add(b.AddrOf("pl_globals"), b.ShlI(t, 3)), 0, val)
		b.CallVoid("pl_count", val)
		b.Ret(ir.NoValue)
	})
	binop := func(name string, apply func(b *ir.Block, x, y ir.Value) ir.Value) {
		handler(name, func(f *ir.Func, b *ir.Block, t ir.Value) {
			y := b.Call("pl_pop")
			x := b.Call("pl_pop") // y live across
			r := apply(b, x, y)
			b.CallVoid("pl_push", r) // t, x, r live across the push
			// The interpreter tracks the last value and operand pair.
			g := b.AddrOf("pl_globals")
			b.Store(g, 15*8, r)
			b.Store(g, 14*8, x)
			b.CallVoid("pl_count", t)
			b.Ret(ir.NoValue)
		})
	}
	binop("pl_op_add", func(b *ir.Block, x, y ir.Value) ir.Value { return b.Add(x, y) })
	binop("pl_op_sub", func(b *ir.Block, x, y ir.Value) ir.Value { return b.Sub(x, y) })
	binop("pl_op_mul", func(b *ir.Block, x, y ir.Value) ir.Value {
		return b.AndI(b.Mul(x, y), 0xFFFFFF)
	})
	handler("pl_op_jnz", func(f *ir.Func, b *ir.Block, t ir.Value) {
		v := b.Call("pl_pop") // t (branch offset) live across the pop
		zero := b.Const(0)
		b.Br(ir.NE, v, zero, "taken", "fall")
		taken := f.Block("taken")
		tv := taken.AddrOf("pl_vm")
		pc := taken.Load(tv, 8)
		taken.Store(tv, 8, taken.Sub(pc, t))
		taken.Ret(ir.NoValue)
		fall := f.Block("fall")
		fall.Ret(ir.NoValue)
	})
	handler("pl_op_hash", func(f *ir.Func, b *ir.Block, t ir.Value) {
		v := b.Call("pl_pop")
		h := b.Xor(v, b.ShlI(v, 7))
		h = b.Xor(h, b.ShrI(h, 9))
		h = b.AndI(h, 0xFFFFFF)
		b.CallVoid("pl_push", h) // h dead after (stored copy is the live one)
		b.CallVoid("pl_count", t)
		b.Ret(ir.NoValue)
	})
	handler("pl_op_callsub", func(f *ir.Func, b *ir.Block, t ir.Value) {
		v := b.AddrOf("pl_vm")
		savedPC := b.Load(v, 8)
		savedCode := b.Load(v, 16)
		sub := b.AddrOf("pl_sub")
		b.CallVoid("pl_run", sub)
		// savedPC and savedCode live across the recursive interpreter.
		v2 := b.AddrOf("pl_vm")
		b.Store(v2, 8, savedPC)
		b.Store(v2, 16, savedCode)
		zero := b.Const(0)
		b.Store(v2, 24, zero)
		b.Ret(ir.NoValue)
	})

	// pl_run(code): the dispatch loop. The VM pointer stays live across
	// every dispatch (callee-saved, saves below it execute); the opcode
	// and the trace temp die at the dispatch call (their registers are
	// killed, saves below are eliminated).
	{
		f := m.Func("pl_run", 1)
		b := f.Block("entry")
		v := b.AddrOf("pl_vm")
		zero := b.Const(0)
		b.Store(v, 8, zero)
		b.Store(v, 16, f.Param(0))
		b.Store(v, 24, zero)
		b.Jmp("loop")

		loop := f.Block("loop")
		lv := loop.AddrOf("pl_vm")
		halted := loop.Load(lv, 24)
		z := loop.Const(0)
		loop.Br(ir.NE, halted, z, "out", "step")

		// The VM base is rematerialized per block (it is a constant), so
		// the only values this loop carries across calls are the opcode
		// and trace temporaries — which die at the dispatch call. Their
		// callee-saved registers are killed there, making the handlers'
		// saves of those registers dead on arrival.
		step := f.Block("step")
		sv := step.AddrOf("pl_vm")
		pc := step.Load(sv, 8)
		code := step.Load(sv, 16)
		op := step.LoadB(step.Add(code, pc), 0)
		tr := step.Xor(pc, step.ShlI(op, 3)) // trace value
		mix := step.Add(step.MulI(op, 31), pc)
		step.CallVoid("pl_count", mix) // op, tr, pc live across this call
		sv2 := step.AddrOf("pl_vm")
		step.Store(sv2, 32, tr) // last use of tr
		ht := step.Add(step.AddrOf("pl_handlers"), step.ShlI(op, 3))
		h := step.Load(ht, 0)
		step.CallPtr(h) // op, tr, pc dead here: killed before the dispatch
		sv3 := step.AddrOf("pl_vm")
		npc := step.Load(sv3, 8)
		step.Store(sv3, 8, step.AddI(npc, 2))
		step.Jmp("loop")

		out := f.Block("out")
		out.Ret(ir.NoValue)
	}

	// main: install handlers, run the program repeatedly.
	{
		f := m.Func("main", 0)
		b := f.Block("entry")
		ht := b.AddrOf("pl_handlers")
		for i, name := range []string{
			"pl_op_halt", "pl_op_pushi", "pl_op_load", "pl_op_store",
			"pl_op_add", "pl_op_sub", "pl_op_mul", "pl_op_jnz",
			"pl_op_hash", "pl_op_callsub",
		} {
			b.Store(ht, int64(i)*8, b.AddrOf(name))
		}
		sum := f.Var()
		b.SetI(sum, 0)
		n := b.Const(int64(6 * scale))
		done := loopN(f, b, "runs", n, func(b *ir.Block, i ir.Value) *ir.Block {
			mainAddr := b.AddrOf("pl_main")
			b.CallVoid("pl_run", mainAddr)
			acc := b.Load(b.AddrOf("pl_globals"), 8)
			b.Set(sum, b.Add(b.MulI(sum, 9), acc))
			return b
		})
		done.Out(0, sum)
		done.Ret(ir.NoValue)
	}
	return m
}
