package workload

import (
	"math/rand"

	"dvi/internal/ir"
	"dvi/internal/prog"
)

// specGcc models gcc: a compiler front end — recursive descent parsing of
// an expression token stream into an arena of tree nodes, followed by
// recursive constant folding and a code-size estimation walk. Many
// mid-sized mutually recursive functions with high call frequency.
func specGcc() Spec {
	return Spec{
		Name:     "gcc",
		Describe: "recursive descent parser + tree folding passes",
		Build:    buildGcc,
	}
}

// Token kinds (token word = kind<<8 | value).
const (
	gtNum = iota
	gtPlus
	gtMinus
	gtStar
	gtLParen
	gtRParen
	gtEnd
	gtSemi // expression separator
)

// gccTokens generates a deterministic well-formed expression token stream.
func gccTokens(seed int64, approxLen int) []byte {
	r := rand.New(rand.NewSource(seed))
	var toks []uint64
	var emitExpr func(depth int)
	emitFactor := func(depth int) {
		if depth > 0 && r.Intn(3) == 0 {
			toks = append(toks, gtLParen<<8)
			emitExpr(depth - 1)
			toks = append(toks, gtRParen<<8)
			return
		}
		toks = append(toks, gtNum<<8|uint64(r.Intn(200)))
	}
	emitExpr = func(depth int) {
		emitFactor(depth)
		n := r.Intn(3)
		for i := 0; i < n; i++ {
			ops := []uint64{gtPlus, gtMinus, gtStar}
			toks = append(toks, ops[r.Intn(3)]<<8)
			emitFactor(depth)
		}
	}
	for len(toks) < approxLen {
		emitExpr(4)
		toks = append(toks, gtSemi<<8)
	}
	toks = append(toks, gtEnd<<8)
	// Render little-endian 8-byte words.
	out := make([]byte, 0, len(toks)*8)
	for _, t := range toks {
		out = append(out, le64(t)...)
	}
	return out
}

const gccArena = 16384

// Tree node layout (32 bytes): tag(0=num,1=+,2=-,3=*), value, left, right.
func buildGcc(scale int) *ir.Module {
	m := ir.NewModule()
	tokens := gccTokens(42, 700)
	m.AddData(prog.DataSym{Name: "gc_toks", Init: tokens})
	m.AddData(prog.DataSym{Name: "gc_arena", Size: gccArena * 32})
	m.AddData(prog.DataSym{Name: "gc_state", Size: 32}) // tokpos, nodecount, exprs

	// gc_peek() -> current token word.
	{
		f := m.Func("gc_peek", 0)
		b := f.Block("entry")
		st := b.AddrOf("gc_state")
		pos := b.Load(st, 0)
		b.Ret(b.Load(b.Add(b.AddrOf("gc_toks"), b.ShlI(pos, 3)), 0))
	}
	// gc_next() -> token word, advancing.
	{
		f := m.Func("gc_next", 0)
		b := f.Block("entry")
		st := b.AddrOf("gc_state")
		pos := b.Load(st, 0)
		t := b.Load(b.Add(b.AddrOf("gc_toks"), b.ShlI(pos, 3)), 0)
		b.Store(st, 0, b.AddI(pos, 1))
		b.Ret(t)
	}
	// gc_node(tag, val, l, r packed): allocate an arena node. Four args is
	// the ABI limit, so left and right are packed as (l<<20|r) — arena
	// indices stay well below 2^20.
	{
		f := m.Func("gc_node", 3)
		b := f.Block("entry")
		st := b.AddrOf("gc_state")
		idx := b.Load(st, 8)
		b.Store(st, 8, b.AddI(idx, 1))
		cell := b.Add(b.AddrOf("gc_arena"), b.ShlI(idx, 5))
		b.Store(cell, 0, f.Param(0))
		b.Store(cell, 8, f.Param(1))
		lr := f.Param(2)
		b.Store(cell, 16, b.ShrI(lr, 20))
		b.Store(cell, 24, b.AndI(lr, 0xFFFFF))
		b.Ret(idx)
	}

	// Mutually recursive parser: expr := factor ((+|-|*) factor)*, with
	// parenthesized sub-expressions recursing into gc_expr.
	{
		f := m.Func("gc_factor", 0)
		b := f.Block("entry")
		t := b.Call("gc_next")
		kind := b.ShrI(t, 8)
		lp := b.Const(gtLParen)
		b.Br(ir.EQ, kind, lp, "paren", "num")
		paren := f.Block("paren")
		inner := paren.Call("gc_expr")
		paren.CallVoid("gc_next") // consume ')'
		paren.Ret(inner)
		num := f.Block("num")
		val := num.AndI(t, 255)
		zero := num.Const(0)
		num.Ret(num.Call("gc_node", zero, val, zero))
	}
	{
		f := m.Func("gc_expr", 0)
		entry := f.Block("entry")
		left := f.Var()
		entry.Set(left, entry.Call("gc_factor"))
		entry.Jmp("more")

		more := f.Block("more")
		t := more.Call("gc_peek")
		kind := more.ShrI(t, 8)
		one := more.Const(gtPlus)
		three := more.Const(gtStar)
		// Operators are contiguous kinds 1..3.
		more.Br(ir.LT, kind, one, "done", "ge")
		ge := f.Block("ge")
		ge.Br(ir.LT, three, kind, "done", "op")

		op := f.Block("op")
		op.CallVoid("gc_next") // consume operator
		right := op.Call("gc_factor")
		// kind and left live across the gc_factor call.
		packed := op.Or(op.ShlI(left, 20), right)
		zero := op.Const(0)
		node := op.Call("gc_node", kind, zero, packed)
		op.Set(left, node)
		op.Jmp("more")

		done := f.Block("done")
		done.Ret(left)
	}

	// gc_fold(node) -> value: recursive constant folding.
	{
		f := m.Func("gc_fold", 1)
		b := f.Block("entry")
		node := f.Param(0)
		cell := b.Add(b.AddrOf("gc_arena"), b.ShlI(node, 5))
		tag := b.Load(cell, 0)
		zero := b.Const(0)
		b.Br(ir.EQ, tag, zero, "num", "binop")
		num := f.Block("num")
		ncell := num.Add(num.AddrOf("gc_arena"), num.ShlI(node, 5))
		num.Ret(num.Load(ncell, 8))
		bo := f.Block("binop")
		bcell := bo.Add(bo.AddrOf("gc_arena"), bo.ShlI(node, 5))
		l := bo.Load(bcell, 16)
		r := bo.Load(bcell, 24)
		btag := bo.Load(bcell, 0)
		lv := bo.Call("gc_fold", l)
		rv := bo.Call("gc_fold", r) // lv, btag live across
		one := bo.Const(gtPlus)
		two := bo.Const(gtMinus)
		bo.Br(ir.EQ, btag, one, "add", "c2")
		add := f.Block("add")
		add.Ret(add.Add(lv, rv))
		c2 := f.Block("c2")
		c2.Br(ir.EQ, btag, two, "sub", "mul")
		sub := f.Block("sub")
		sub.Ret(sub.Sub(lv, rv))
		mul := f.Block("mul")
		mul.Ret(mul.AndI(mul.Mul(lv, rv), 0x3FFFFFF))
	}

	// gc_size(node) -> instruction count estimate: second recursive walk.
	{
		f := m.Func("gc_size", 1)
		b := f.Block("entry")
		node := f.Param(0)
		cell := b.Add(b.AddrOf("gc_arena"), b.ShlI(node, 5))
		tag := b.Load(cell, 0)
		zero := b.Const(0)
		b.Br(ir.EQ, tag, zero, "leafn", "innern")
		leafn := f.Block("leafn")
		leafn.Ret(leafn.Const(1))
		in := f.Block("innern")
		icell := in.Add(in.AddrOf("gc_arena"), in.ShlI(node, 5))
		l := in.Load(icell, 16)
		r := in.Load(icell, 24)
		ls := in.Call("gc_size", l)
		rs := in.Call("gc_size", r)
		in.Ret(in.AddI(in.Add(ls, rs), 1))
	}

	// gc_compile(): parse every expression in the stream, fold and size it.
	{
		f := m.Func("gc_compile", 0)
		entry := f.Block("entry")
		st := entry.AddrOf("gc_state")
		zero := entry.Const(0)
		entry.Store(st, 0, zero) // tokpos
		entry.Store(st, 8, zero) // node count
		sum := f.Var()
		entry.SetI(sum, 0)
		entry.Jmp("loop")

		loop := f.Block("loop")
		t := loop.Call("gc_peek")
		kind := loop.ShrI(t, 8)
		end := loop.Const(gtEnd)
		loop.Br(ir.EQ, kind, end, "out", "one")

		one := f.Block("one")
		root := one.Call("gc_expr")
		v := one.Call("gc_fold", root)  // root live across
		sz := one.Call("gc_size", root) // v live across
		one.Set(sum, one.Add(one.MulI(sum, 13), one.Add(v, sz)))
		one.CallVoid("gc_next") // consume the expression separator
		one.Jmp("loop")

		out := f.Block("out")
		out.Ret(sum)
	}

	// main.
	{
		f := m.Func("main", 0)
		b := f.Block("entry")
		sum := f.Var()
		b.SetI(sum, 0)
		n := b.Const(int64(3 * scale))
		done := loopN(f, b, "runs", n, func(b *ir.Block, i ir.Value) *ir.Block {
			v := b.Call("gc_compile")
			b.Set(sum, b.Add(b.Xor(sum, v), i))
			return b
		})
		done.Out(0, sum)
		done.Ret(ir.NoValue)
	}
	return m
}
