// Package workload provides the seven synthetic benchmark programs that
// stand in for the paper's SPEC95int suite (compress95, go, ijpeg, li,
// vortex, perl, gcc). Each program is authored in the mini-IR and compiled
// by internal/compiler; each structurally mimics its namesake so that the
// properties the paper's optimizations exploit — call frequency,
// callee-saved register usage, context-sensitive liveness at call sites,
// memory bandwidth demand — arise from program structure rather than from
// tuned constants. DESIGN.md records the substitution rationale.
package workload

import (
	"fmt"
	"sort"

	"dvi/internal/compiler"
	"dvi/internal/ir"
	"dvi/internal/prog"
	"dvi/internal/rewrite"
)

// Spec describes one benchmark program.
type Spec struct {
	Name     string
	Describe string
	// Build constructs the IR module; scale multiplies the outer
	// iteration count (scale 1 is roughly 200k-600k dynamic
	// instructions).
	Build func(scale int) *ir.Module
	// Asm, when non-empty, backs the spec with textual assembly instead
	// of an IR builder: synthetic specs for client-submitted programs
	// (internal/service) carry their source with the spec, so a build
	// needs no side lookup that could expire. Build is nil then, and the
	// Name must content-address the text so equal sources share one
	// BuildKey.
	Asm string
}

// All returns the seven benchmarks in the paper's Figure 3 order.
func All() []Spec {
	return []Spec{
		specCompress(),
		specGo(),
		specIjpeg(),
		specLi(),
		specVortex(),
		specPerl(),
		specGcc(),
	}
}

// Names returns the benchmark names in order.
func Names() []string {
	var ns []string
	for _, s := range All() {
		ns = append(ns, s.Name)
	}
	return ns
}

// ByName finds a benchmark.
func ByName(name string) (Spec, bool) {
	for _, s := range All() {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}

// SaveRestoreActive returns the six benchmarks the paper uses for the
// save/restore elimination studies (Figure 9: "the six benchmarks that
// exhibit significant save and restore activity" — compress is excluded).
func SaveRestoreActive() []Spec {
	var out []Spec
	for _, s := range All() {
		if s.Name != "compress" {
			out = append(out, s)
		}
	}
	return out
}

// BuildOptions selects the binary flavour.
type BuildOptions struct {
	EDVI   bool
	Policy rewrite.Policy
	// Infer derives the kill annotations with the interprocedural
	// inference pass (rewrite.Infer) instead of the compiler's
	// liveness-assisted rewriter: the program is built plain and the
	// analysis discovers every kill from the machine code alone. When
	// set, EDVI is ignored.
	Infer bool
}

// BuildKey uniquely identifies one compiled binary flavour: a benchmark
// name, a scale factor, and the build options. It is comparable and is
// the memoization key for build caches (internal/runner): two builds with
// equal keys produce identical Program/Image pairs, so the compiled
// artifacts may be shared freely — they are read-only after linking
// (every emulator and machine copies the memory image it mutates).
type BuildKey struct {
	Name   string
	Scale  int
	EDVI   bool
	Policy rewrite.Policy
	Infer  bool
}

// Key returns the build cache key for compiling s at scale with opt. The
// scale is clamped exactly as CompileSpec clamps it, so keys that compile
// identically compare equal.
func (s Spec) Key(scale int, opt BuildOptions) BuildKey {
	if scale < 1 {
		scale = 1
	}
	k := BuildKey{Name: s.Name, Scale: scale, Infer: opt.Infer}
	if !opt.Infer {
		k.EDVI = opt.EDVI
	}
	k.Policy = opt.Policy
	return k
}

// String renders the key for logs and progress labels.
func (k BuildKey) String() string {
	flavor := "plain"
	switch {
	case k.Infer:
		flavor = "infer"
		if k.Policy == rewrite.KillsAtDeath {
			flavor = "infer@death"
		}
	case k.EDVI:
		flavor = "edvi"
		if k.Policy == rewrite.KillsAtDeath {
			flavor = "edvi@death"
		}
	}
	return fmt.Sprintf("%s/x%d/%s", k.Name, k.Scale, flavor)
}

// CompileSpec builds and links one benchmark. The Infer flavour compiles
// the program plain and lets the interprocedural analysis discover the
// kills the annotation-assisted path gets from the compiler's liveness.
func CompileSpec(s Spec, scale int, opt BuildOptions) (*prog.Program, *prog.Image, error) {
	if scale < 1 {
		scale = 1
	}
	m := s.Build(scale)
	pr, err := compiler.Compile(m, compiler.Options{EDVI: opt.EDVI && !opt.Infer, Policy: opt.Policy})
	if err != nil {
		return nil, nil, fmt.Errorf("workload %s: %w", s.Name, err)
	}
	if opt.Infer {
		if _, err := rewrite.Infer(pr, rewrite.Options{Policy: opt.Policy}); err != nil {
			return nil, nil, fmt.Errorf("workload %s: %w", s.Name, err)
		}
	}
	img, err := pr.Link()
	if err != nil {
		return nil, nil, fmt.Errorf("workload %s: %w", s.Name, err)
	}
	return pr, img, nil
}

// --- shared IR helpers ---

// addRand installs a 64-bit xorshift-style PRNG:
//
//	func rand() -> next pseudo-random value (also stored in rand_seed)
func addRand(m *ir.Module) {
	m.AddData(prog.DataSym{Name: "rand_seed", Size: 8, Init: le64(0x9E3779B97F4A7C15)})
	f := m.Func("rand", 0)
	b := f.Block("entry")
	base := b.AddrOf("rand_seed")
	s := b.Load(base, 0)
	s = b.Xor(s, b.ShlI(s, 13))
	s = b.Xor(s, b.ShrI(s, 7))
	s = b.Xor(s, b.ShlI(s, 17))
	b.Store(base, 0, s)
	b.Ret(s)
}

// le64 renders a little-endian 8-byte initializer.
func le64(v uint64) []byte {
	b := make([]byte, 8)
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
	return b
}

// loopN emits a counted loop: body receives the induction variable and the
// body block, and returns the block where its control flow ends (the same
// block for straight-line bodies). Blocks created: prefix+"_head",
// prefix+"_body", prefix+"_done"; the caller continues in the returned
// done block.
func loopN(f *ir.Func, from *ir.Block, prefix string, n ir.Value, body func(b *ir.Block, i ir.Value) *ir.Block) *ir.Block {
	i := f.Var()
	from.SetI(i, 0)
	from.Jmp(prefix + "_head")
	head := f.Block(prefix + "_head")
	head.Br(ir.GE, i, n, prefix+"_done", prefix+"_body")
	b := f.Block(prefix + "_body")
	end := body(b, i)
	end.Set(i, end.AddI(i, 1))
	end.Jmp(prefix + "_head")
	return f.Block(prefix + "_done")
}

// sortedNames is a test helper exposed for deterministic iteration.
func sortedNames() []string {
	ns := Names()
	sort.Strings(ns)
	return ns
}
