package ooo

import (
	"errors"
	"testing"

	"dvi/internal/core"
	"dvi/internal/emu"
	"dvi/internal/isa"
	"dvi/internal/obs"
	"dvi/internal/prog"
)

// runBoth executes the program on the timing simulator and on a standalone
// emulator with the same DVI configuration and checks that architectural
// results agree.
func runBoth(t *testing.T, pr *prog.Program, cfg Config) (Stats, *Machine) {
	t.Helper()
	img, err := pr.Link()
	if err != nil {
		t.Fatalf("link: %v", err)
	}
	m := New(pr, img, cfg)
	stats, err := m.Run()
	if err != nil {
		t.Fatalf("ooo run: %v", err)
	}

	ref := emu.New(pr, img, cfg.Emu)
	if err := ref.Run(50_000_000); err != nil {
		t.Fatalf("emu run: %v", err)
	}
	if cfg.MaxInsts == 0 {
		if m.Emu().Checksum != ref.Checksum {
			t.Fatalf("checksum mismatch: ooo %#x vs emu %#x", m.Emu().Checksum, ref.Checksum)
		}
		// The timing simulator commits exactly the original instructions
		// the reference executed (eliminated ones included).
		if want := ref.Stats.Original(); stats.Committed != want {
			t.Fatalf("committed %d, want %d", stats.Committed, want)
		}
	}
	return stats, m
}

// fibProgram mirrors the emulator test workload: recursive, call-heavy,
// with callee-saved save/restore traffic.
func fibProgram(n int64) *prog.Program {
	pr := prog.New()
	f := pr.Assembler("fib")
	epi := f.Frame(0, true, isa.S0, isa.S1)
	f.Li(isa.T0, 2)
	f.Blt(isa.A0, isa.T0, "base")
	f.Move(isa.S0, isa.A0)
	f.Addi(isa.A0, isa.S0, -1)
	f.Call("fib")
	f.Move(isa.S1, isa.V0)
	f.Addi(isa.A0, isa.S0, -2)
	f.Call("fib")
	f.Add(isa.V0, isa.S1, isa.V0)
	f.Jump("done")
	f.Label("base")
	f.Move(isa.V0, isa.A0)
	f.Label("done")
	epi()

	m := pr.Assembler("main")
	mepi := m.Frame(0, true)
	m.Li(isa.A0, n)
	m.Call("fib")
	m.Li(isa.T0, 0)
	m.Sys(isa.T0, isa.V0)
	mepi()
	return pr
}

// loopProgram: a tight arithmetic loop with a data-dependent exit only at
// the end — mostly predictable.
func loopProgram(iters int64) *prog.Program {
	pr := prog.New()
	m := pr.Assembler("main")
	m.Li(isa.T0, iters)
	m.Li(isa.T1, 0)
	m.Label("loop")
	m.Addi(isa.T1, isa.T1, 3)
	m.Addi(isa.T0, isa.T0, -1)
	m.Bnez(isa.T0, "loop")
	m.Li(isa.T2, 0)
	m.Sys(isa.T2, isa.T1)
	m.Ret()
	return pr
}

func TestStraightLineResults(t *testing.T) {
	pr := prog.New()
	m := pr.Assembler("main")
	m.Li(isa.T0, 21)
	m.Add(isa.T1, isa.T0, isa.T0)
	m.Li(isa.T2, 0)
	m.Sys(isa.T2, isa.T1)
	m.Ret()
	stats, mach := runBoth(t, pr, DefaultConfig())
	if mach.Emu().Outputs[0] != 42 {
		t.Errorf("output = %d", mach.Emu().Outputs[0])
	}
	if stats.Cycles == 0 || stats.IPC() <= 0 {
		t.Errorf("stats empty: %+v", stats)
	}
}

func TestLoopMatchesEmulator(t *testing.T) {
	stats, _ := runBoth(t, loopProgram(5000), DefaultConfig())
	if stats.IPC() < 0.5 {
		t.Errorf("loop IPC = %.2f, implausibly low", stats.IPC())
	}
}

func TestFibMatchesEmulatorAllSchemes(t *testing.T) {
	for _, scheme := range []emu.Scheme{emu.ElimOff, emu.ElimLVM, emu.ElimLVMStack} {
		cfg := DefaultConfig()
		cfg.Emu.Scheme = scheme
		stats, mach := runBoth(t, fibProgram(13), cfg)
		if mach.Emu().Outputs[0] != 233 {
			t.Errorf("scheme %v: fib(13) = %d", scheme, mach.Emu().Outputs[0])
		}
		switch scheme {
		case emu.ElimOff:
			if stats.ElimSaves != 0 || stats.ElimRests != 0 {
				t.Errorf("scheme off eliminated %d/%d", stats.ElimSaves, stats.ElimRests)
			}
		case emu.ElimLVM:
			if stats.ElimRests != 0 {
				t.Errorf("LVM scheme eliminated %d restores", stats.ElimRests)
			}
		}
	}
}

func TestDependentChainIPCNearOne(t *testing.T) {
	// A fully serial dependence chain cannot exceed IPC 1. Loop over hot
	// code so cold I-cache misses do not dominate.
	pr := prog.New()
	m := pr.Assembler("main")
	m.Li(isa.T0, 1)
	m.Li(isa.S0, 200) // outer iterations
	m.Label("outer")
	for i := 0; i < 30; i++ {
		m.Addi(isa.T0, isa.T0, 1)
	}
	m.Addi(isa.S0, isa.S0, -1)
	m.Bnez(isa.S0, "outer")
	m.Li(isa.T1, 0)
	m.Sys(isa.T1, isa.T0)
	m.Ret()
	stats, _ := runBoth(t, pr, DefaultConfig())
	if stats.IPC() > 1.10 {
		t.Errorf("serial chain IPC = %.2f > 1", stats.IPC())
	}
	if stats.IPC() < 0.8 {
		t.Errorf("serial chain IPC = %.2f, pipeline not streaming", stats.IPC())
	}
}

func TestIndependentOpsReachWideIPC(t *testing.T) {
	// Four independent accumulator chains: should approach the 4-wide
	// machine's width (bounded by fetch of the loop branch).
	pr := prog.New()
	m := pr.Assembler("main")
	m.Li(isa.T0, 0).Li(isa.T1, 0).Li(isa.T2, 0).Li(isa.T3, 0)
	m.Li(isa.S0, 300)
	m.Label("outer")
	for i := 0; i < 24; i++ {
		m.Addi(isa.Reg(8+i%4), isa.Reg(8+i%4), 1)
	}
	m.Addi(isa.S0, isa.S0, -1)
	m.Bnez(isa.S0, "outer")
	m.Ret()
	stats, _ := runBoth(t, pr, DefaultConfig())
	if stats.IPC() < 2.5 {
		t.Errorf("independent stream IPC = %.2f, want near width", stats.IPC())
	}
}

func TestMispredictionRecoveryCorrectness(t *testing.T) {
	// Data-dependent unpredictable branches (pseudo-random LCG parity):
	// the predictor will miss often; results must still be exact.
	pr := prog.New()
	m := pr.Assembler("main")
	m.Li(isa.S0, 12345) // lcg state
	m.Li(isa.S1, 0)     // parity accumulator
	m.Li(isa.S2, 400)   // iterations
	m.Label("loop")
	// s0 = s0*1103515245 + 12345 (lower bits)
	m.Li32(isa.T0, 1103515245)
	m.Mul(isa.S0, isa.S0, isa.T0)
	m.Addi(isa.S0, isa.S0, 12345)
	m.Srli(isa.T1, isa.S0, 16)
	m.Andi(isa.T1, isa.T1, 1)
	m.Beqz(isa.T1, "even")
	m.Addi(isa.S1, isa.S1, 7)
	m.Jump("next")
	m.Label("even")
	m.Addi(isa.S1, isa.S1, 3)
	m.Label("next")
	m.Addi(isa.S2, isa.S2, -1)
	m.Bnez(isa.S2, "loop")
	m.Li(isa.T2, 0)
	m.Sys(isa.T2, isa.S1)
	m.Ret()

	stats, _ := runBoth(t, pr, DefaultConfig())
	if stats.Mispredicts == 0 {
		t.Error("expected mispredictions on random branches")
	}
	if stats.WrongPath == 0 {
		t.Error("wrong-path instructions should have been dispatched")
	}
}

func TestRecursionWithMispredicts(t *testing.T) {
	stats, _ := runBoth(t, fibProgram(16), DefaultConfig())
	if stats.Mispredicts == 0 {
		t.Log("note: no mispredicts in fib (predictor fully captured it)")
	}
	if stats.Committed == 0 {
		t.Fatal("nothing committed")
	}
}

func TestWrongPathFetchAblation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.WrongPathFetch = false
	stats, _ := runBoth(t, fibProgram(14), cfg)
	if stats.WrongPath != 0 {
		t.Errorf("fetch-stall mode dispatched %d wrong-path instructions", stats.WrongPath)
	}
}

func TestTinyRegisterFileStallsButCompletes(t *testing.T) {
	// Without DVI a 34-entry file has only two spare registers; renaming
	// must stall. (With DVI the I-DVI kills around calls unmap the dead
	// temporaries and the same file barely stalls — that contrast is the
	// paper's Figure 5 and is asserted in TestDVIRaisesIPCUnderRegisterPressure.)
	cfg := DefaultConfig()
	cfg.PhysRegs = 34
	cfg.Emu.DVI = core.Config{Level: core.None}
	cfg.Emu.Scheme = emu.ElimOff
	stats, _ := runBoth(t, fibProgram(12), cfg)
	if stats.RenameStallCycles == 0 {
		t.Error("34-register file without DVI should stall renaming")
	}
}

func TestDVIRaisesIPCUnderRegisterPressure(t *testing.T) {
	// The §4 claim: with a small physical register file, DVI reclaims
	// dead registers early and recovers IPC. Compare IPC at 36 registers
	// with and without DVI on a call-heavy workload.
	base := DefaultConfig()
	base.PhysRegs = 38
	base.Emu.DVI = core.Config{Level: core.None}
	base.Emu.Scheme = emu.ElimOff
	noDVI, _ := runBoth(t, fibProgram(14), base)

	with := DefaultConfig()
	with.PhysRegs = 38
	withStats, _ := runBoth(t, fibProgram(14), with)

	if withStats.IPC() <= noDVI.IPC() {
		t.Errorf("DVI IPC %.3f <= no-DVI IPC %.3f at 38 registers",
			withStats.IPC(), noDVI.IPC())
	}
	if withStats.EarlyReclaimed == 0 {
		t.Error("no registers were reclaimed early")
	}
}

func TestEliminationReducesCycles(t *testing.T) {
	// Figure 10's effect: eliminating dead saves/restores improves IPC on
	// a call-heavy program. Build a caller that kills s-registers before
	// calls so the callee's saves/restores are dead.
	build := func() *prog.Program {
		pr := prog.New()
		callee := pr.Assembler("work")
		saved := []isa.Reg{isa.S0, isa.S1, isa.S2, isa.S3, isa.S4, isa.S5, isa.S6, isa.S7}
		cepi := callee.Frame(0, false, saved...)
		for i, r := range saved {
			callee.Li(r, int64(i+1))
		}
		// A real procedure body: enough work between the prologue saves
		// and the epilogue restores that the saves leave the instruction
		// window (no store-to-load forwarding shortcut at the restores).
		callee.Li(isa.V0, 0)
		for i := 0; i < 80; i++ {
			callee.Add(isa.V0, isa.V0, saved[i%len(saved)])
		}
		cepi()
		m := pr.Assembler("main")
		// fp survives the calls (callee-saved, untouched by work).
		mepi := m.Frame(0, true, isa.FP)
		m.Li(isa.FP, 200)
		m.Label("loop")
		m.Kill(saved...)
		m.Call("work")
		m.Addi(isa.FP, isa.FP, -1)
		m.Bnez(isa.FP, "loop")
		mepi()
		return pr
	}

	// Use a single cache port so the machine is data-bandwidth bound —
	// the regime where the paper's §5.3 sensitivity analysis shows the
	// optimization matters most.
	off := DefaultConfig()
	off.CachePorts = 1
	off.Emu.Scheme = emu.ElimOff
	offStats, _ := runBoth(t, build(), off)

	on := DefaultConfig()
	on.CachePorts = 1
	onStats, _ := runBoth(t, build(), on)

	if onStats.ElimSaves == 0 || onStats.ElimRests == 0 {
		t.Fatalf("nothing eliminated: %d/%d", onStats.ElimSaves, onStats.ElimRests)
	}
	if onStats.Cycles >= offStats.Cycles {
		t.Errorf("elimination did not reduce cycles: %d vs %d", onStats.Cycles, offStats.Cycles)
	}
}

func TestLoadStoreForwarding(t *testing.T) {
	pr := prog.New()
	pr.AddData(prog.DataSym{Name: "x", Size: 8})
	m := pr.Assembler("main")
	m.LoadAddr(isa.T0, "x")
	m.Li(isa.T1, 0)
	for i := 0; i < 100; i++ {
		m.Addi(isa.T1, isa.T1, 1)
		m.St(isa.T1, isa.T0, 0)
		m.Ld(isa.T2, isa.T0, 0) // must forward from the store
	}
	m.Li(isa.T3, 0)
	m.Sys(isa.T3, isa.T2)
	m.Ret()
	stats, mach := runBoth(t, pr, DefaultConfig())
	if mach.Emu().Outputs[0] != 100 {
		t.Errorf("final value = %d", mach.Emu().Outputs[0])
	}
	if stats.LoadForwarded == 0 {
		t.Error("no store-to-load forwarding observed")
	}
}

func TestCachePortContention(t *testing.T) {
	// A load-saturated loop on 1 port vs 3 ports: more ports, fewer cycles.
	build := func() *prog.Program {
		pr := prog.New()
		pr.AddData(prog.DataSym{Name: "arr", Size: 8 * 64})
		m := pr.Assembler("main")
		m.LoadAddr(isa.T0, "arr")
		m.Li(isa.S0, 200)
		m.Label("loop")
		m.Ld(isa.T1, isa.T0, 0)
		m.Ld(isa.T2, isa.T0, 8)
		m.Ld(isa.T3, isa.T0, 16)
		m.Ld(isa.T4, isa.T0, 24)
		m.Addi(isa.S0, isa.S0, -1)
		m.Bnez(isa.S0, "loop")
		m.Ret()
		return pr
	}
	one := DefaultConfig()
	one.CachePorts = 1
	oneStats, _ := runBoth(t, build(), one)
	three := DefaultConfig()
	three.CachePorts = 3
	threeStats, _ := runBoth(t, build(), three)
	if threeStats.Cycles >= oneStats.Cycles {
		t.Errorf("3 ports (%d cycles) not faster than 1 port (%d cycles)",
			threeStats.Cycles, oneStats.Cycles)
	}
}

func TestInstructionBudgetStopsEarly(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxInsts = 1000
	pr := loopProgram(1_000_000)
	img, err := pr.Link()
	if err != nil {
		t.Fatal(err)
	}
	m := New(pr, img, cfg)
	stats, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Committed < 1000 || stats.Committed > 1000+uint64(cfg.IssueWidth) {
		t.Errorf("committed %d, want ~1000", stats.Committed)
	}
}

func TestDeadlockDetection(t *testing.T) {
	// An infinite loop with no commits is impossible (commits happen), so
	// craft a budgetless run and ensure it terminates via the budget.
	cfg := DefaultConfig()
	cfg.MaxInsts = 5000
	pr := prog.New()
	m := pr.Assembler("main")
	m.Label("spin")
	m.Jump("spin")
	img, err := pr.Link()
	if err != nil {
		t.Fatal(err)
	}
	mach := New(pr, img, cfg)
	if _, err := mach.Run(); err != nil && !errors.Is(err, ErrDeadlock) {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestKillsAreOverheadNotWork(t *testing.T) {
	pr := prog.New()
	m := pr.Assembler("main")
	m.Li(isa.S0, 1)
	m.Kill(isa.S0)
	m.Li(isa.S1, 2)
	m.Kill(isa.S1)
	m.Ret()
	stats, _ := runBoth(t, pr, DefaultConfig())
	if stats.KillsSeen != 2 {
		t.Errorf("kills committed = %d, want 2", stats.KillsSeen)
	}
}

func TestMulDivLatency(t *testing.T) {
	// A chain of dependent divides is dominated by the divide latency.
	pr := prog.New()
	m := pr.Assembler("main")
	m.Li32(isa.T0, 1<<30)
	m.Li(isa.T1, 2)
	for i := 0; i < 20; i++ {
		m.Div(isa.T0, isa.T0, isa.T1)
	}
	m.Ret()
	stats, _ := runBoth(t, pr, DefaultConfig())
	if stats.Cycles < 20*uint64(DefaultConfig().DivLatency) {
		t.Errorf("20 dependent divides in %d cycles, want >= %d",
			stats.Cycles, 20*DefaultConfig().DivLatency)
	}
}

func TestICacheMissesSlowFetch(t *testing.T) {
	// A huge straight-line body overflows the 64KB L1I on first touch:
	// cold misses should show up in the I-cache stats.
	pr := prog.New()
	m := pr.Assembler("main")
	for i := 0; i < 4000; i++ {
		m.Addi(isa.T0, isa.T0, 1)
	}
	m.Ret()
	_, mach := runBoth(t, pr, DefaultConfig())
	if mach.Hierarchy().L1I.Stats.Misses == 0 {
		t.Error("no I-cache misses on a 16KB straight-line body")
	}
}

func TestStatsAccounting(t *testing.T) {
	stats, mach := runBoth(t, fibProgram(12), DefaultConfig())
	if stats.Fetched < stats.Dispatched {
		t.Error("fetched < dispatched")
	}
	if stats.Committed != mach.Emu().Stats.Original() {
		t.Errorf("committed %d != emulator original %d", stats.Committed, mach.Emu().Stats.Original())
	}
	if stats.ElimSaves != mach.Emu().Stats.SavesElim || stats.ElimRests != mach.Emu().Stats.RestoresElim {
		t.Error("elimination counters disagree with emulator")
	}
	if stats.MaxPhysInUse > DefaultConfig().PhysRegs {
		t.Error("in-use high-water mark exceeds file size")
	}
}

// TestWildJumpRecordsFault pins the satellite fix: a computed jump past
// the text segment halts the machine (as it always did) but now records a
// fault instead of looking like a clean program exit.
func TestWildJumpRecordsFault(t *testing.T) {
	pr := prog.New()
	m := pr.Assembler("main")
	m.Li(isa.T0, 0x40_0000)
	m.Inst(isa.Inst{Op: isa.JR, Rs1: isa.T0}) // computed jump, not a return
	m.Ret()
	img, err := pr.Link()
	if err != nil {
		t.Fatal(err)
	}
	mach := New(pr, img, DefaultConfig())
	stats, err := mach.Run()
	if err != nil {
		t.Fatal(err)
	}
	// The machine detects the fault at dispatch (the embedded emulator is
	// never stepped for the synthetic HALT), so the machine-level counter
	// is the one that records it.
	if stats.Faults != 1 {
		t.Fatalf("Faults = %d, want 1", stats.Faults)
	}

	clean, mach2 := runBoth(t, fibProgram(10), DefaultConfig())
	if clean.Faults != 0 || mach2.Emu().Stats.Faults != 0 {
		t.Errorf("clean run recorded faults: machine %d, emulator %d", clean.Faults, mach2.Emu().Stats.Faults)
	}
}

// TestResetMatchesFresh pins the pooling contract: a machine reused
// across programs and configurations via Reset produces exactly the
// statistics a freshly constructed machine does.
func TestResetMatchesFresh(t *testing.T) {
	prA := fibProgram(10)
	imgA, err := prA.Link()
	if err != nil {
		t.Fatal(err)
	}
	prB := fibProgram(13)
	imgB, err := prB.Link()
	if err != nil {
		t.Fatal(err)
	}

	cfgA := DefaultConfig()
	cfgA.PhysRegs = 40 // different rename table shape
	cfgB := DefaultConfig()

	fresh := New(prB, imgB, cfgB)
	want, err := fresh.Run()
	if err != nil {
		t.Fatal(err)
	}

	reused := New(prA, imgA, cfgA)
	if _, err := reused.Run(); err != nil {
		t.Fatal(err)
	}
	reused.Reset(prB, imgB, cfgB)
	got, err := reused.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("reused machine stats diverge:\n got %+v\nwant %+v", got, want)
	}
}

// TestMachineSteadyStateZeroAlloc pins the 0 allocs/op invariant of the
// simulation loop for both schedulers: re-running a job on a warm machine
// allocates nothing — under the event-driven scheduler the completion
// wheel, ready set, wakeup lists and last-store table must all reuse
// their storage.
func TestMachineSteadyStateZeroAlloc(t *testing.T) {
	pr := fibProgram(14)
	img, err := pr.Link()
	if err != nil {
		t.Fatal(err)
	}
	for _, sched := range []Scheduler{SchedEventDriven, SchedPolled} {
		t.Run(sched.String(), func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.Scheduler = sched
			m := New(pr, img, cfg)
			if _, err := m.Run(); err != nil {
				t.Fatal(err) // warm pages, ring buffers and victim lists
			}
			allocs := testing.AllocsPerRun(3, func() {
				m.Reset(pr, img, cfg)
				if _, err := m.Run(); err != nil {
					t.Error(err)
				}
			})
			if allocs != 0 {
				t.Fatalf("steady-state run allocated %.1f objects, want 0", allocs)
			}

			// With a live pipeline-trace sink attached the steady state
			// must hold too: the machine writes records through the
			// reusable traceRec field, and a warm PipeBuffer (capacity
			// grown by a first traced run) reuses its backing array on
			// Reset, so re-running a traced job allocates nothing.
			tcfg := cfg
			buf := obs.NewPipeBuffer(0)
			tcfg.Trace = buf
			m.Reset(pr, img, tcfg)
			if _, err := m.Run(); err != nil {
				t.Fatal(err) // grow the trace buffer
			}
			if buf.Len() == 0 {
				t.Fatal("traced warm-up run emitted no records")
			}
			allocs = testing.AllocsPerRun(3, func() {
				buf.Reset()
				m.Reset(pr, img, tcfg)
				if _, err := m.Run(); err != nil {
					t.Error(err)
				}
			})
			if allocs != 0 {
				t.Fatalf("traced steady-state run allocated %.1f objects, want 0", allocs)
			}
		})
	}
}
