package ooo

import (
	"math/bits"

	"dvi/internal/isa"
	"dvi/internal/rename"
)

// This file is the event-driven scheduler (Config.Scheduler ==
// SchedEventDriven): the same pipeline semantics as the polled
// issuePolled/writebackPolled/olderStoreConflict trio, restructured so a
// cycle's host cost is proportional to what happens in it rather than to
// the window size. The two implementations must stay observably
// identical — every Stats field, every cycle count — which the
// differential tests in sched_test.go enforce across random programs and
// machine shapes. When touching one side, touch the other.

// wheelSlots is the completion wheel's size (a power of two). It covers
// the default machine's longest latency chain (L1 miss + L2 miss + memory
// is 59 cycles, a divide 20); an instruction finishing beyond the horizon
// parks in its slot and is revisited one wheel turn later, so arbitrary
// configured latencies remain correct.
const wheelSlots = 128

// wheelEvent schedules one instruction's completion. seq validates that
// the slot still holds the same instruction when the event fires:
// squashed or recycled entries are skipped.
type wheelEvent struct {
	due  uint64
	seq  uint64
	slot int32
}

// storeRef identifies the youngest in-flight store to one 8-byte block.
type storeRef struct {
	seq  uint64
	slot int32
}

// evSched is the event-driven scheduler's state. All storage is retained
// across Reset: a warm machine's steady state allocates nothing.
type evSched struct {
	// ready is a bitset over window slots: dispatched, all sources
	// ready, not yet issued. Issue walks it oldest-first, preserving the
	// polled scheduler's seniority arbitration.
	ready []uint64
	// wheel is the completion calendar queue, indexed by cycle mod
	// wheelSlots.
	wheel [wheelSlots][]wheelEvent
	// due is the per-cycle scratch of events firing now, insertion-sorted
	// by seq so writeback processes them oldest-first (predictor training
	// and recovery order must match the polled age-order scan).
	due []wheelEvent
	// stores maps addr>>3 to the youngest in-flight store writing that
	// block (storeTable, an open-addressed hash with no per-op
	// allocation).
	stores storeTable
	// liveTok is the recovery predicate passed to rename.PurgeWatchers,
	// built once so recoveries don't allocate a closure.
	liveTok func(token uint32) bool
}

// reset rebuilds the scheduler state for a (possibly reshaped) machine,
// reusing storage.
func (s *evSched) reset(m *Machine) {
	need := (len(m.rob) + 63) / 64
	if len(s.ready) != need {
		s.ready = make([]uint64, need)
	} else {
		for i := range s.ready {
			s.ready[i] = 0
		}
	}
	for i := range s.wheel {
		s.wheel[i] = s.wheel[i][:0]
	}
	s.due = s.due[:0]
	s.stores.reset()
	if s.liveTok == nil {
		s.liveTok = func(token uint32) bool {
			return m.inWindow(int(token)) && !m.rob[token].squashed
		}
	}
}

func (s *evSched) setReady(slot int)   { s.ready[slot>>6] |= 1 << (uint(slot) & 63) }
func (s *evSched) clearReady(slot int) { s.ready[slot>>6] &^= 1 << (uint(slot) & 63) }

// schedDispatch registers a freshly dispatched window entry with the
// event structures: its completion dependencies (wakeup lists or the
// ready set), and the last-store table / conflict record for memory
// ordering. Runs for correct- and wrong-path entries alike, after the
// entry is fully initialized.
func (m *Machine) schedDispatch(e *robEntry, slot int) {
	if e.st != stDispatched {
		return // NOPs and wrong-path HALTs are done at dispatch
	}
	e.hasConflict = false // the slot's previous occupant may have left one
	if !e.wrongPath {
		// Memory ordering bookkeeping. Only correct-path entries
		// participate: wrong-path stores have no address, and a
		// correct-path load's older window entries are always
		// correct-path (wrong-path entries are strictly younger than the
		// mispredicted branch).
		if e.isStore {
			m.es.stores.put(e.addr>>3, storeRef{seq: e.seq, slot: int32(slot)})
		} else if e.isLoad {
			if ref, ok := m.es.stores.get(e.addr >> 3); ok {
				// Validity (is that store still in flight?) is checked at
				// each issue attempt; in-order commit guarantees that when
				// it leaves the window no older store to the block remains.
				e.hasConflict, e.conflictSlot, e.conflictSeq = true, ref.slot, ref.seq
			}
		}
	}
	waits := uint8(0)
	for i := 0; i < e.nSrc; i++ {
		if p := e.srcPhys[i]; !m.rt.Ready(p) {
			m.rt.Watch(p, uint32(slot))
			waits++
		}
	}
	e.waits = waits
	if waits == 0 {
		m.es.setReady(slot)
	}
}

// schedComplete drops an instruction entering execution into the
// completion wheel. Writeback runs before issue within a cycle, so a
// result due "now or earlier" (zero-latency classes) is seen next cycle —
// exactly when the polled scan would pick it up.
func (m *Machine) schedComplete(e *robEntry, slot int) {
	due := e.doneCycle
	if due <= m.cycle {
		due = m.cycle + 1
	}
	w := &m.es.wheel[due&(wheelSlots-1)]
	*w = append(*w, wheelEvent{due: due, seq: e.seq, slot: int32(slot)})
}

// Recovery cleanup (resolveControl): squashed entries leave the ready set
// as they are marked, and their wakeup registrations are purged with
// rename.PurgeWatchers(liveTok) so a recycled slot cannot be woken by a
// stale token. Wheel events and last-store records are invalidated lazily
// by their seq and squashed checks.

// wakeup publishes a produced result: the ready bit plus the watchers
// registered on the register. A watcher whose last outstanding source
// this was becomes issuable.
func (m *Machine) wakeup(p rename.PhysReg) {
	m.rt.SetReady(p)
	for _, tok := range m.rt.TakeWatchers(p) {
		e := &m.rob[tok]
		if e.st == stDispatched && e.waits > 0 {
			if e.waits--; e.waits == 0 {
				m.es.setReady(int(tok))
			}
		}
	}
}

// --- writeback (event-driven) ---

func (m *Machine) writebackEvent() {
	w := &m.es.wheel[m.cycle&(wheelSlots-1)]
	evs := *w
	if len(evs) == 0 {
		return
	}
	// Partition the slot: events due now (sorted by seq, i.e. age) fire;
	// events parked beyond the horizon stay for the next wheel turn.
	due := m.es.due[:0]
	keep := evs[:0]
	for _, ev := range evs {
		if ev.due > m.cycle {
			keep = append(keep, ev)
			continue
		}
		due = append(due, ev)
		for i := len(due) - 1; i > 0 && due[i-1].seq > due[i].seq; i-- {
			due[i-1], due[i] = due[i], due[i-1]
		}
	}
	*w = keep
	m.es.due = due

	for i := range due {
		ev := &due[i]
		e := &m.rob[ev.slot]
		// A recovery earlier in this loop (or cycle) may have squashed
		// the entry — in place (a hole) or with its slot popped and
		// recycled; in every case the event is stale.
		if e.seq != ev.seq || e.squashed || e.st != stIssued || !m.inWindow(int(ev.slot)) {
			continue
		}
		e.st = stDone
		if e.hasDest {
			m.wakeup(e.destPhys)
		}
		if e.isCtl && !e.wrongPath {
			m.resolveControl(e, m.robOffset(int(ev.slot)))
			// On a mispredict, recovery squashed the context's younger
			// entries; their remaining due events fail validation above.
			// Other contexts' younger completions still fire this cycle.
		}
	}
}

// --- issue (event-driven) ---

// storeConflict is the O(1) replacement for olderStoreConflict: the
// conflicting store was recorded at dispatch; the check each issue
// attempt is whether it is still in flight and whether its data is ready.
func (m *Machine) storeConflict(e *robEntry) (conflict, dataReady bool) {
	if !e.hasConflict {
		return false, false
	}
	o := &m.rob[e.conflictSlot]
	if o.seq != e.conflictSeq || !m.inWindow(int(e.conflictSlot)) {
		// The store committed (in-order, so every older store to the
		// block is gone too). Clear the record so later attempts skip
		// straight to the cache.
		e.hasConflict = false
		return false, false
	}
	return true, m.srcsReady(o)
}

func (m *Machine) issueEvent() {
	if m.robLen == 0 || m.issued >= m.cfg.IssueWidth {
		return
	}
	// Walk ready bits oldest-first: the live window is [head, head+len)
	// in the circular buffer, so age order is one or two ascending-slot
	// ranges.
	n := len(m.rob)
	tail := m.robHead + m.robLen
	if tail <= n {
		m.issueRange(m.robHead, tail)
		return
	}
	if m.issueRange(m.robHead, n) {
		m.issueRange(0, tail-n)
	}
}

// issueRange attempts to issue the ready entries with slots in [lo, hi),
// in slot order. It returns false when the cycle's issue width is
// exhausted.
func (m *Machine) issueRange(lo, hi int) bool {
	words := m.es.ready
	loWord := lo >> 6
	for wi := loWord; wi <= (hi-1)>>6; wi++ {
		w := words[wi]
		if wi == loWord {
			w &^= 1<<(uint(lo)&63) - 1
		}
		if upper := (wi + 1) << 6; upper > hi {
			w &= 1<<(uint(hi)&63) - 1
		}
		for ; w != 0; w &= w - 1 {
			m.tryIssue(wi<<6 + bits.TrailingZeros64(w))
			if m.issued >= m.cfg.IssueWidth {
				return false
			}
		}
	}
	return true
}

// tryIssue attempts to issue the ready entry in slot, mirroring one
// iteration of the polled issue loop: the entry issues, or stays in the
// ready set blocked on a structural resource or an unready forwarding
// store.
func (m *Machine) tryIssue(slot int) {
	e := &m.rob[slot]
	switch e.class {
	case isa.ClassStore:
		// Stores complete when operands are ready (the cache access
		// happens at commit, sim-outorder behaviour) but still consume
		// an issue slot for address generation.
		m.issued++
		e.st = stDone
		e.issueCycle = m.cycle
		e.doneCycle = m.cycle
		m.es.clearReady(slot)
	case isa.ClassLoad:
		if e.wrongPath {
			if m.portUsed >= m.cfg.CachePorts {
				return
			}
			m.portUsed++
			m.issued++
			m.Stats.WrongPathLoads++
			m.ctxs[e.ctx].stats.WrongPathLoads++
			e.st = stIssued
			e.issueCycle = m.cycle
			e.doneCycle = m.cycle + uint64(m.cfg.Hierarchy.L1D.HitLatency)
			m.es.clearReady(slot)
			m.schedComplete(e, slot)
			return
		}
		conflict, dataReady := m.storeConflict(e)
		if conflict {
			if !dataReady {
				return // wait for the producing store's data
			}
			// Store-to-load forwarding: one cycle, no cache port.
			m.issued++
			m.Stats.LoadForwarded++
			m.ctxs[e.ctx].stats.LoadForwarded++
			e.st = stIssued
			e.issueCycle = m.cycle
			e.doneCycle = m.cycle + 1
			m.es.clearReady(slot)
			m.schedComplete(e, slot)
			return
		}
		if m.portUsed >= m.cfg.CachePorts {
			return
		}
		m.portUsed++
		m.issued++
		m.Stats.LoadsIssued++
		m.ctxs[e.ctx].stats.LoadsIssued++
		lat := m.hier.L1D.Access(e.addr, false)
		e.st = stIssued
		e.issueCycle = m.cycle
		e.doneCycle = m.cycle + uint64(lat)
		m.es.clearReady(slot)
		m.schedComplete(e, slot)
	case isa.ClassIntMul, isa.ClassIntDiv:
		if m.mdUsed >= m.cfg.IntMulDiv {
			return
		}
		m.mdUsed++
		m.issued++
		e.st = stIssued
		e.issueCycle = m.cycle
		if e.class == isa.ClassIntMul {
			e.doneCycle = m.cycle + uint64(m.cfg.MulLatency)
		} else {
			e.doneCycle = m.cycle + uint64(m.cfg.DivLatency)
		}
		m.es.clearReady(slot)
		m.schedComplete(e, slot)
	default: // ALU, branches, jumps
		if m.aluUsed >= m.cfg.IntALUs {
			return
		}
		m.aluUsed++
		m.issued++
		e.st = stIssued
		e.issueCycle = m.cycle
		e.doneCycle = m.cycle + uint64(e.lat)
		m.es.clearReady(slot)
		m.schedComplete(e, slot)
	}
}

// --- last-store table ---

// storeTable is an open-addressed hash from 8-byte block number to the
// youngest in-flight store writing it. Entries are never deleted: a
// lookup's result is validated against the window by (slot, seq), so a
// stale record is indistinguishable from "no conflict". Storage is
// retained across reset; re-running the same program on a warm machine
// allocates nothing.
type storeTable struct {
	keys []uint64 // block+1; 0 marks an empty cell
	vals []storeRef
	n    int
}

const storeTableMinSize = 256 // power of two

func (t *storeTable) reset() {
	if t.keys == nil {
		t.keys = make([]uint64, storeTableMinSize)
		t.vals = make([]storeRef, storeTableMinSize)
		t.n = 0
		return
	}
	for i := range t.keys {
		t.keys[i] = 0
	}
	t.n = 0
}

// slotFor probes for block's cell (Fibonacci hashing, linear probing).
func (t *storeTable) slotFor(block uint64) int {
	mask := uint64(len(t.keys) - 1)
	key := block + 1
	i := (block * 0x9E3779B97F4A7C15) >> 32 & mask
	for t.keys[i] != 0 && t.keys[i] != key {
		i = (i + 1) & mask
	}
	return int(i)
}

func (t *storeTable) put(block uint64, ref storeRef) {
	i := t.slotFor(block)
	if t.keys[i] == 0 {
		t.keys[i] = block + 1
		t.n++
		if t.n > len(t.keys)*3/4 {
			t.vals[i] = ref
			t.grow()
			return
		}
	}
	t.vals[i] = ref
}

func (t *storeTable) get(block uint64) (storeRef, bool) {
	i := t.slotFor(block)
	if t.keys[i] == 0 {
		return storeRef{}, false
	}
	return t.vals[i], true
}

func (t *storeTable) grow() {
	oldKeys, oldVals := t.keys, t.vals
	t.keys = make([]uint64, len(oldKeys)*2)
	t.vals = make([]storeRef, len(oldVals)*2)
	t.n = 0
	for i, k := range oldKeys {
		if k != 0 {
			t.put(k-1, oldVals[i])
		}
	}
}
